#!/usr/bin/env python3
"""Randomness-discipline audit for the schedule fuzzer (CI docs job).

Every stochastic choice in the fuzz pipeline must flow from the single 64-bit
campaign seed through the repo's deterministic common::Rng — that is what
makes `generate(seed)` a pure function, repro files replayable, and
`ctest -L fuzz` stable. This check greps src/fuzz/ for ambient entropy and
wall-clock sources that would silently break that contract:

  * C / C++ RNGs seeded outside the schedule seed: rand(), srand(),
    <random> (std::mt19937, std::random_device, distributions), /dev/urandom.
  * Time as entropy: time(), clock(), gettimeofday, std::chrono clocks.

One scoped exception: campaign.cpp may read std::chrono::steady_clock for the
--duration wall-clock budget. That decides *how many* seeds run, never what
any schedule contains — each seed's schedule and verdict stay deterministic.

Exits non-zero listing every offending file:line.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
FUZZ_DIR = ROOT / "src" / "fuzz"

FORBIDDEN = [
    (re.compile(r"\bsrand\s*\("), "srand() seeds the libc RNG"),
    (re.compile(r"(?<![\w:])rand\s*\("), "rand() draws from ambient state"),
    (re.compile(r"#\s*include\s*<random>"), "<random> engines bypass the seed"),
    (re.compile(r"\bstd::(mt19937|minstd_rand|default_random_engine|"
                r"random_device|uniform_int_distribution|"
                r"uniform_real_distribution|bernoulli_distribution)\b"),
     "std <random> machinery bypasses common::Rng"),
    (re.compile(r"/dev/u?random"), "kernel entropy is not replayable"),
    (re.compile(r"(?<![\w:])time\s*\(|\bgettimeofday\b|\bclock\s*\("),
     "wall-clock time as input"),
    (re.compile(r"std::chrono::(system_clock|high_resolution_clock|"
                r"steady_clock)"), "chrono clock as input"),
]

# campaign.cpp's --duration budget may poll steady_clock: it bounds how many
# seeds run, not what any schedule contains.
ALLOWED = {("campaign.cpp", "std::chrono::steady_clock")}


def main():
    sources = sorted(
        list(FUZZ_DIR.glob("*.h")) + list(FUZZ_DIR.glob("*.cpp")))
    if not sources:
        print(f"check_randomness: no sources under {FUZZ_DIR} — "
              f"did src/fuzz move?")
        return 1
    errors = []
    for source in sources:
        for lineno, line in enumerate(
                source.read_text(encoding="utf-8").splitlines(), start=1):
            code = line.split("//", 1)[0]  # comments may name the offenders
            for pattern, why in FORBIDDEN:
                match = pattern.search(code)
                if not match:
                    continue
                if (source.name, match.group(0)) in ALLOWED:
                    continue
                errors.append(
                    f"src/fuzz/{source.name}:{lineno}: {why} "
                    f"[{match.group(0).strip()}]")
    if errors:
        print(f"check_randomness: {len(errors)} ambient-entropy use(s) in "
              f"src/fuzz — every draw must flow from the campaign seed "
              f"through common::Rng:")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(f"check_randomness: OK ({len(sources)} files — all fuzz "
          f"randomness flows from the campaign seed)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
