#!/usr/bin/env python3
"""Randomness-discipline audit — compatibility shim.

The src/fuzz-only audit this script used to run has been generalized to all
of src/ as the `entropy` check of the BFT lint suite (tools/lint/bft_lint.py,
docs/static_analysis.md). Every stochastic choice anywhere in the simulated
system must flow from a seed through common::Rng; scoped exceptions live in
tools/lint/allowlists/entropy.allow with per-entry justifications.

This shim keeps the historical entry point (CI docs job, docs/fuzzing.md)
working by delegating to `bft_lint.py --check entropy`.
"""
import runpy
import sys
from pathlib import Path

sys.argv = [
    "bft_lint.py", "--check", "entropy",
    "--root", str(Path(__file__).resolve().parent.parent),
]
runpy.run_path(
    str(Path(__file__).resolve().parent / "lint" / "bft_lint.py"),
    run_name="__main__")
