"""Shared infrastructure for the BFT lint suite (tools/lint/bft_lint.py).

Checks operate on comment-stripped source text so that prose naming an
offending construct (a comment saying "no rand() here") never trips a lint.
Suppression goes through per-check allowlist files with a mandatory
justification per entry; an entry that matches no current finding is itself
an error ("stale allowlist entry"), which keeps every allowlist entry
explained and current — see docs/static_analysis.md.
"""
from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path


@dataclass
class Finding:
    """One lint hit: a (file, line, token) with a human explanation."""
    path: str       # repo-relative, forward slashes
    lineno: int
    token: str      # the matched construct, used for allowlist matching
    message: str
    line: str = ""  # the stripped source line the token was found on

    def render(self) -> str:
        return f"{self.path}:{self.lineno}: {self.message} [{self.token}]"


@dataclass
class AllowEntry:
    path: str
    token: str
    justification: str
    lineno: int  # in the allowlist file
    used: bool = False


class Allowlist:
    """Parses `<path> | <token> | <justification>` lines.

    A finding is suppressed when an entry's path equals the finding's
    repo-relative path and the entry's token is a substring of the finding's
    token or source line. Entries with an empty justification are rejected,
    and entries that suppress nothing are reported as stale.
    """

    def __init__(self, file: Path):
        self.file = file
        self.entries: list[AllowEntry] = []
        self.errors: list[str] = []
        if not file.exists():
            return
        for lineno, raw in enumerate(
                file.read_text(encoding="utf-8").splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = [p.strip() for p in line.split("|")]
            if len(parts) != 3 or not all(parts):
                self.errors.append(
                    f"{file.name}:{lineno}: malformed entry (want "
                    f"'<path> | <token> | <justification>'): {raw!r}")
                continue
            self.entries.append(AllowEntry(parts[0], parts[1], parts[2], lineno))

    def suppresses(self, finding: Finding) -> bool:
        hit = False
        for entry in self.entries:
            if entry.path == finding.path and (
                    entry.token in finding.token or entry.token in finding.line):
                entry.used = True
                hit = True  # keep scanning: several entries may cover one line
        return hit

    def stale_entries(self) -> list[AllowEntry]:
        return [e for e in self.entries if not e.used]


def strip_comments(text: str) -> list[str]:
    """Returns source lines with //- and /* */-comment text blanked out.

    Line structure is preserved so findings carry real line numbers. String
    literals are left alone (good enough for this codebase: no lint pattern
    appears inside a string that is not itself a finding).
    """
    out: list[str] = []
    in_block = False
    for line in text.splitlines():
        result = []
        i = 0
        while i < len(line):
            if in_block:
                end = line.find("*/", i)
                if end == -1:
                    i = len(line)
                else:
                    i = end + 2
                    in_block = False
            else:
                slash = line.find("//", i)
                block = line.find("/*", i)
                if slash != -1 and (block == -1 or slash < block):
                    result.append(line[i:slash])
                    i = len(line)
                elif block != -1:
                    result.append(line[i:block])
                    i = block + 2
                    in_block = True
                else:
                    result.append(line[i:])
                    i = len(line)
        out.append("".join(result))
    return out


@dataclass
class SourceFile:
    path: Path        # absolute
    rel: str          # repo-relative, forward slashes
    lines: list[str]  # comment-stripped

    @property
    def text(self) -> str:
        return "\n".join(self.lines)


def load_sources(root: Path, subdirs=("src",), suffixes=(".h", ".cpp")) -> list[SourceFile]:
    sources = []
    for subdir in subdirs:
        base = root / subdir
        for path in sorted(base.rglob("*")):
            if path.suffix in suffixes and path.is_file():
                rel = path.relative_to(root).as_posix()
                lines = strip_comments(path.read_text(encoding="utf-8"))
                sources.append(SourceFile(path, rel, lines))
    return sources


def finish(check: str, findings: list[Finding], allow: Allowlist | None,
           scanned: int) -> int:
    """Applies the allowlist, prints the verdict, returns the exit code."""
    errors: list[str] = []
    if allow is not None:
        errors.extend(allow.errors)
        findings = [f for f in findings if not allow.suppresses(f)]
        for entry in allow.stale_entries():
            errors.append(
                f"{allow.file.name}:{entry.lineno}: stale allowlist entry "
                f"(suppresses nothing — remove it): "
                f"{entry.path} | {entry.token}")
    for f in findings:
        errors.append(f.render())
    if errors:
        print(f"lint:{check}: {len(errors)} problem(s):")
        for err in errors:
            print(f"  - {err}")
        return 1
    suffix = ""
    if allow is not None and allow.entries:
        suffix = f", {len(allow.entries)} justified allowlist entr(y/ies)"
    print(f"lint:{check}: OK ({scanned} files scanned{suffix})")
    return 0


IDENT = r"[A-Za-z_]\w*"


def struct_body(text: str, name: str) -> str | None:
    """Extracts the top-level body of `struct <name> ... { ... };`."""
    m = re.search(rf"struct\s+{name}\b[^;{{]*{{", text)
    if not m:
        return None
    depth = 1
    i = m.end()
    while i < len(text) and depth:
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
        i += 1
    return text[m.end():i - 1]
