#!/usr/bin/env python3
"""BFT protocol-safety lint suite (run as `ctest -L lint`; docs/static_analysis.md).

Five checks grounded in this repo's real hazard classes — each one encodes an
invariant that a reviewer cannot reliably police by eye and whose violation
has already bitten (or would silently bite) replay determinism, wire
compatibility, or reconfiguration safety:

  determinism  No iteration over std::unordered_map/unordered_set anywhere in
               src/. Hash-order iteration leaking into a message, digest,
               snapshot, or trace breaks byte-identical fuzzer replays (PR 8)
               and the cores=1-vs-8 identical-trace guarantee (PR 7).
  entropy      All of src/ draws randomness only through common::Rng and
               never reads wall clocks as input (generalizes the old
               tools/check_randomness.py from src/fuzz to the whole tree).
  epoch_math   Slot-scoped protocol code must resolve rosters and quorums via
               epoch_for_seq(s); every direct config/f/c/n/quorum read in the
               ordering engines needs a justification naming its scope
               (boot, view-change, or epoch-derived parameter).
  wire_format  Wire Tag values are unique and dense, every Tag maps to a
               Message variant alternative and vice versa, every message type
               is serde-round-tripped in tests/message_test.cpp, and the
               ExperimentPoint bench cache bumps kCacheVersion whenever the
               point's field list changes (manifest-pinned).
  counters     Every uint64/int64 field of the *Stats structs is visited by
               its struct's for_each (the single descriptor the harness uses
               to fold counters into RunMetrics/bench JSON) or carries a
               justified exemption.

Usage: bft_lint.py --check <name> [--root <repo>]   (or --check all)
Exit status is non-zero with one line per finding; suppression goes through
tools/lint/allowlists/<check>.allow (see lintlib.Allowlist for the format —
every entry needs a justification and must still match a finding).
"""
from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))
import lintlib
from lintlib import Allowlist, Finding, finish, load_sources, struct_body


def allowlist(root: Path, check: str) -> Allowlist:
    return Allowlist(root / "tools" / "lint" / "allowlists" / f"{check}.allow")


# ---------------------------------------------------------------------------
# determinism: no unordered-container iteration can feed wire/digest state

UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set)\b")
# Trailing identifier of a single-line member/local declaration.
DECL_ID_RE = re.compile(r">\s*(\w+)\s*[;={]")


def check_determinism(root: Path) -> int:
    sources = load_sources(root)
    findings: list[Finding] = []
    unordered_ids: set[str] = set()
    for src in sources:
        for lineno, line in enumerate(src.lines, start=1):
            if "#include" in line:
                continue
            if UNORDERED_RE.search(line):
                for ident in DECL_ID_RE.findall(line):
                    unordered_ids.add(ident)
                findings.append(Finding(
                    src.rel, lineno, "std::unordered",
                    "unordered container in src/ — hash iteration order can "
                    "leak into messages/digests/snapshots/traces; use "
                    "std::map/std::set (or justify why order cannot escape)",
                    line.strip()))
    # Any iteration over a variable declared with an unordered type is flagged
    # wherever it happens, including a different file than the declaration.
    iter_res = [
        re.compile(r"for\s*\([^;)]*:\s*(?:this->)?(\w+)\s*\)"),
        re.compile(r"\b(\w+)\s*\.\s*c?begin\s*\("),
    ]
    for src in sources:
        for lineno, line in enumerate(src.lines, start=1):
            for rx in iter_res:
                for ident in rx.findall(line):
                    if ident in unordered_ids:
                        findings.append(Finding(
                            src.rel, lineno, f"iterate:{ident}",
                            f"iteration over unordered container '{ident}' — "
                            f"order is hash-seed dependent; convert the "
                            f"container to std::map or iterate a sorted copy",
                            line.strip()))
    return finish("determinism", findings, allowlist(root, "determinism"),
                  len(sources))


# ---------------------------------------------------------------------------
# entropy: every stochastic choice flows from a seed through common::Rng

ENTROPY_FORBIDDEN = [
    (re.compile(r"\bsrand\s*\("), "srand() seeds the libc RNG"),
    (re.compile(r"(?<![\w:.>])rand\s*\("), "rand() draws from ambient state"),
    (re.compile(r"#\s*include\s*<random>"), "<random> engines bypass common::Rng"),
    (re.compile(r"\bstd::(mt19937(?:_64)?|minstd_rand0?|default_random_engine|"
                r"random_device|uniform_int_distribution|"
                r"uniform_real_distribution|bernoulli_distribution|"
                r"normal_distribution|discrete_distribution)\b"),
     "std <random> machinery bypasses common::Rng"),
    (re.compile(r"/dev/u?random"), "kernel entropy is not replayable"),
    (re.compile(r"(?<![\w:.>])time\s*\(|\bgettimeofday\b|(?<![\w:.>])clock\s*\("),
     "wall-clock time as input"),
    (re.compile(r"std::chrono::(system_clock|high_resolution_clock|"
                r"steady_clock)"), "chrono clock as input"),
]


def check_entropy(root: Path) -> int:
    sources = load_sources(root)
    findings: list[Finding] = []
    for src in sources:
        for lineno, line in enumerate(src.lines, start=1):
            for rx, why in ENTROPY_FORBIDDEN:
                m = rx.search(line)
                if m:
                    findings.append(Finding(
                        src.rel, lineno, m.group(0).strip(),
                        f"{why} — all simulator/workload/fuzzer randomness "
                        f"must flow from an explicit seed through common::Rng",
                        line.strip()))
    return finish("entropy", findings, allowlist(root, "entropy"), len(sources))


# ---------------------------------------------------------------------------
# epoch_math: slot-scoped roster/quorum reads must route through epoch_for_seq

# A config object holding genesis or current-epoch-derived sizing. Bare
# `config` needs the lookbehind so `opts_.config.f` is counted once.
CONFIG_OBJ = r"(?:cfg_|config_|opts_\.config|(?<![\w.])config)"
EPOCH_MATH_RES = [
    (re.compile(CONFIG_OBJ + r"\.(?:f|c)\b"),
     "direct f/c read on a config object"),
    (re.compile(CONFIG_OBJ + r"\.n\(\)"),
     "direct roster-size read on a config object"),
    (re.compile(CONFIG_OBJ + r"\.(?:fast_quorum|slow_quorum|exec_quorum|"
                r"view_change_quorum|num_collectors)\(\)"),
     "direct quorum read on a config object"),
    (re.compile(r"\bepoch\(\)\.(?:primary_of|rank_of|fast_quorum|slow_quorum|"
                r"exec_quorum|n)\s*\("),
     "current-epoch roster/quorum read"),
]
ENGINE_DIRS = ("src/core/", "src/pbft/")


def check_epoch_math(root: Path) -> int:
    sources = [s for s in load_sources(root)
               if s.rel.startswith(ENGINE_DIRS)]
    findings: list[Finding] = []
    for src in sources:
        for lineno, line in enumerate(src.lines, start=1):
            for rx, why in EPOCH_MATH_RES:
                for m in rx.finditer(line):
                    findings.append(Finding(
                        src.rel, lineno, m.group(0).strip(),
                        f"{why} in engine code — slot-scoped paths must use "
                        f"epoch_for_seq(s) (a post-reconfiguration quorum "
                        f"read against the wrong epoch is a latent safety "
                        f"bug); justify the scope in the allowlist if this "
                        f"is boot-, view-, or epoch-derived",
                        line.strip()))
    return finish("epoch_math", findings, allowlist(root, "epoch_math"),
                  len(sources))


# ---------------------------------------------------------------------------
# wire_format: tags, serde coverage, and bench-cache versioning discipline

def parse_enum(text: str, name: str) -> list[tuple[str, int]]:
    m = re.search(rf"enum class {name}\s*:\s*\w+\s*{{(.*?)}};", text, re.S)
    if not m:
        return []
    out: list[tuple[str, int]] = []
    next_value = 0
    for part in m.group(1).split(","):
        part = part.strip()
        if not part:
            continue
        em = re.match(r"(\w+)(?:\s*=\s*(\d+))?$", part)
        if not em:
            continue
        value = int(em.group(2)) if em.group(2) else next_value
        out.append((em.group(1), value))
        next_value = value + 1
    return out


def parse_fields(body: str) -> list[str]:
    """Field names of a struct body: one declaration per line, last
    identifier before `=` or `;` (methods and using-decls are skipped)."""
    fields = []
    for line in body.splitlines():
        line = line.strip()
        if not line or line.startswith(("using ", "template", "static")):
            continue
        if re.search(r"\)\s*(?:const\s*)?[{;]", line):  # method decl/def
            continue
        m = re.match(r"[\w:<>,&()\s]+?(\w+)\s*(?:=[^;]*)?;", line)
        if m:
            fields.append(m.group(1))
    return fields


def check_wire_format(root: Path) -> int:
    findings: list[Finding] = []
    msg_cpp = "\n".join(lintlib.strip_comments(
        (root / "src/proto/message.cpp").read_text(encoding="utf-8")))
    msg_h = "\n".join(lintlib.strip_comments(
        (root / "src/proto/message.h").read_text(encoding="utf-8")))
    test_cpp = "\n".join(lintlib.strip_comments(
        (root / "tests/message_test.cpp").read_text(encoding="utf-8")))

    # (a) Tag uniqueness.
    tags = parse_enum(msg_cpp, "Tag")
    if not tags:
        findings.append(Finding("src/proto/message.cpp", 1, "Tag",
                                "wire Tag enum not found"))
    seen: dict[int, str] = {}
    for name, value in tags:
        if value in seen:
            findings.append(Finding(
                "src/proto/message.cpp", 1, name,
                f"duplicate wire tag value {value} ({seen[value]} vs {name}) "
                f"— decode_message would mis-route one of them"))
        seen[value] = name

    # (b) Tag <-> Message variant alternatives stay in sync.
    vm = re.search(r"using Message = std::variant<(.*?)>;", msg_h, re.S)
    variant = [t.strip() for t in vm.group(1).split(",")] if vm else []
    if not variant:
        findings.append(Finding("src/proto/message.h", 1, "Message",
                                "Message variant not found"))
    variant_set = set(variant)
    for name, _ in tags:
        expect = name[1:] + "Msg" if name.startswith("k") else name
        if expect not in variant_set:
            findings.append(Finding(
                "src/proto/message.cpp", 1, name,
                f"wire tag {name} has no Message alternative named {expect}"))
    if tags and variant and len(tags) != len(variant):
        findings.append(Finding(
            "src/proto/message.h", 1, "Message",
            f"{len(variant)} Message alternatives but {len(tags)} wire tags "
            f"— every message type needs exactly one tag"))

    # (c) Serde coverage: every alternative is named in a message_test
    # round-trip, and the auto-derived exhaustiveness test is present (it
    # covers alternatives added later even before a named test exists).
    for type_name in variant:
        if not re.search(rf"\b{type_name}\b", test_cpp):
            findings.append(Finding(
                "tests/message_test.cpp", 1, type_name,
                f"message type {type_name} has no serde round-trip in "
                f"message_test.cpp — untested wire types cannot ship"))
    if "AllWireMessages" not in test_cpp:
        findings.append(Finding(
            "tests/message_test.cpp", 1, "AllWireMessages",
            "auto-derived exhaustiveness test (AllWireMessages) missing — "
            "it is what forces future wire types through serde testing"))

    # (d) ExperimentPoint cache-key discipline: every field participates in
    # cache_key() (or is exempted in the manifest), and any change to the
    # field list bumps kCacheVersion (manifest-pinned).
    exp_h = "\n".join(lintlib.strip_comments(
        (root / "src/harness/experiment.h").read_text(encoding="utf-8")))
    exp_cpp = "\n".join(lintlib.strip_comments(
        (root / "src/harness/experiment.cpp").read_text(encoding="utf-8")))
    body = struct_body(exp_h, "ExperimentPoint")
    fields = parse_fields(body) if body else []
    if not fields:
        findings.append(Finding("src/harness/experiment.h", 1,
                                "ExperimentPoint", "ExperimentPoint not found"))
    km = re.search(r"kCacheVersion\s*=\s*(\d+)", exp_cpp)
    version = int(km.group(1)) if km else -1
    ckm = re.search(r"std::string cache_key\([^)]*\)\s*{(.*?)\n}", exp_cpp, re.S)
    key_body = ckm.group(1) if ckm else ""

    manifest_file = root / "tools/lint/wire_format.manifest"
    manifest: dict[str, str] = {}
    exempt: dict[str, str] = {}
    if manifest_file.exists():
        for raw in manifest_file.read_text(encoding="utf-8").splitlines():
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if line.startswith("exempt="):
                name, _, why = line[len("exempt="):].partition("|")
                exempt[name.strip()] = why.strip()
            else:
                k, _, v = line.partition("=")
                manifest[k.strip()] = v.strip()
    for name, why in exempt.items():
        if not why:
            findings.append(Finding(
                "tools/lint/wire_format.manifest", 1, name,
                f"exempt field {name} has no justification"))
        if name not in fields:
            findings.append(Finding(
                "tools/lint/wire_format.manifest", 1, name,
                f"exempt field {name} is not an ExperimentPoint field"))
    for name in fields:
        if name in exempt:
            continue
        if not re.search(rf"\bp\.{name}\b", key_body):
            findings.append(Finding(
                "src/harness/experiment.cpp", 1, name,
                f"ExperimentPoint::{name} missing from cache_key() — two "
                f"points differing only in {name} would share a cache file"))
    pinned_fields = manifest.get("fields", "").split(",") if manifest else []
    pinned_fields = [f for f in pinned_fields if f]
    pinned_version = int(manifest.get("cache_version", "-1"))
    if fields and pinned_fields != fields:
        if pinned_version == version:
            findings.append(Finding(
                "src/harness/experiment.h", 1, "ExperimentPoint",
                f"ExperimentPoint field list changed "
                f"({sorted(set(fields) ^ set(pinned_fields))}) without "
                f"bumping kCacheVersion — stale cache files from older "
                f"builds would mis-parse; bump kCacheVersion in "
                f"experiment.cpp and update tools/lint/wire_format.manifest"))
        else:
            findings.append(Finding(
                "tools/lint/wire_format.manifest", 1, "fields",
                f"manifest field list out of date — set fields="
                f"{','.join(fields)}"))
    elif version != pinned_version:
        findings.append(Finding(
            "tools/lint/wire_format.manifest", 1, "cache_version",
            f"manifest pins kCacheVersion={pinned_version} but "
            f"experiment.cpp has {version} — update the manifest"))

    return finish("wire_format", findings, None, 5)


# ---------------------------------------------------------------------------
# counters: every stats field reaches the metrics registry (or is exempted)

def check_counters(root: Path) -> int:
    findings: list[Finding] = []
    structs = 0
    for src in load_sources(root, suffixes=(".h",)):
        for m in re.finditer(r"struct\s+(\w*Stats)\b[^;{]*{", src.text):
            name = m.group(1)
            body = struct_body(src.text, name)
            if body is None:
                continue
            counters = re.findall(r"\b(?:u?int64_t)\s+(\w+)\s*=", body)
            if not counters:
                continue
            structs += 1
            visited = set(re.findall(r'fn\("(\w+)"\s*,', body))
            derived = "RuntimeStats::for_each(fn)" in body
            has_for_each = "for_each" in body
            if not has_for_each:
                findings.append(Finding(
                    src.rel, 1, name,
                    f"{name} has counters but no for_each descriptor — "
                    f"nothing threads them into RunMetrics/bench JSON"))
                continue
            base = name != "RuntimeStats" and "RuntimeStats" in \
                re.search(rf"struct\s+{name}\b([^{{]*){{", src.text).group(1)
            if base and not derived:
                findings.append(Finding(
                    src.rel, 1, name,
                    f"{name} derives from RuntimeStats but its for_each "
                    f"does not call RuntimeStats::for_each(fn) — the base "
                    f"counters would silently vanish from the registry"))
            for counter in counters:
                if counter not in visited:
                    findings.append(Finding(
                        src.rel, 1, f"{name}::{counter}",
                        f"counter {name}::{counter} is not visited by "
                        f"for_each — it can never reach RunMetrics or the "
                        f"bench JSON; visit it or exempt it with a "
                        f"justification"))
    return finish("counters", findings, allowlist(root, "counters"), structs)


# ---------------------------------------------------------------------------

CHECKS = {
    "determinism": check_determinism,
    "entropy": check_entropy,
    "epoch_math": check_epoch_math,
    "wire_format": check_wire_format,
    "counters": check_counters,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--check", required=True,
                        choices=sorted(CHECKS) + ["all"])
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels up from here)")
    args = parser.parse_args()
    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent.parent
    names = sorted(CHECKS) if args.check == "all" else [args.check]
    return max(CHECKS[name](root) for name in names)


if __name__ == "__main__":
    sys.exit(main())
