#!/usr/bin/env python3
"""Documentation consistency checks (run by the CI docs job).

1. Every relative markdown link in docs/*.md and README.md resolves to an
   existing file (anchors are stripped; http(s) links are skipped).
2. Every public class declared in src/runtime/*.h appears by name in
   docs/architecture.md — the runtime layer is the protocol-agnostic core
   both ordering engines share, so its surface must stay documented
   (MembershipManager, StateTransferManager, ... are discovered, not listed).
3. Every page under docs/ is linked from at least one *other* checked
   document — a doc nobody can reach from README.md or its siblings is
   effectively unpublished.
4. Every public class declared in src/obs/*.h appears by name in
   docs/observability.md or docs/architecture.md — same contract as the
   runtime layer, for the observability surface.
5. Every public class declared in src/sim/*.h appears by name in
   docs/performance.md or docs/architecture.md — the simulator's execution
   model (lanes, offload, determinism) is the foundation everything else
   builds on, so its surface must stay documented.
6. Every public class declared in src/fuzz/*.h appears by name in
   docs/fuzzing.md or docs/architecture.md — the schedule fuzzer is the
   repo's randomized safety net, so its surface must stay documented.
7. Every public class declared in src/shard/*.h appears by name in
   docs/sharding.md or docs/architecture.md — the multi-group deployment
   and its BFT 2PC are a protocol surface of their own, so it must stay
   documented.
8. Every lint check registered in tools/lint/bft_lint.py (the CHECKS
   registry) appears by name in docs/static_analysis.md — the lint suite
   encodes protocol invariants, so adding a check without documenting what
   it enforces (and its allowlist policy) fails here.

Exits non-zero with a summary of every violation.
"""
import re
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
# Top-level class *definitions* only: 'class Foo {' / 'class Foo final ...'
# at the start of a line. Member/nested classes are indented; forward
# declarations ('class Foo;') belong to other layers and are excluded.
CLASS_RE = re.compile(r"^class\s+(\w+)[^;]*$", re.MULTILINE)


def doc_files():
    docs = sorted((ROOT / "docs").glob("*.md"))
    readme = ROOT / "README.md"
    return docs + ([readme] if readme.exists() else [])


def check_links():
    errors = []
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                errors.append(f"{doc.relative_to(ROOT)}: broken link -> {target}")
    return errors


def check_docs_reachable():
    """Every docs/*.md page must be linked from another checked document."""
    errors = []
    linked = set()
    for doc in doc_files():
        text = doc.read_text(encoding="utf-8")
        for target in LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if resolved.exists() and resolved != doc.resolve():
                linked.add(resolved)
    for doc in sorted((ROOT / "docs").glob("*.md")):
        if doc.resolve() not in linked:
            errors.append(
                f"{doc.relative_to(ROOT)}: not linked from any other document "
                f"(orphaned page)"
            )
    return errors


def check_runtime_classes():
    errors = []
    arch = ROOT / "docs" / "architecture.md"
    if not arch.exists():
        return [f"missing {arch.relative_to(ROOT)}"]
    arch_text = arch.read_text(encoding="utf-8")
    for header in sorted((ROOT / "src" / "runtime").glob("*.h")):
        for cls in CLASS_RE.findall(header.read_text(encoding="utf-8")):
            if cls not in arch_text:
                errors.append(
                    f"src/runtime/{header.name}: public class '{cls}' is not "
                    f"mentioned in docs/architecture.md"
                )
    return errors


def check_obs_classes():
    errors = []
    corpus = ""
    for name in ("observability.md", "architecture.md"):
        page = ROOT / "docs" / name
        if not page.exists():
            return [f"missing docs/{name}"]
        corpus += page.read_text(encoding="utf-8")
    for header in sorted((ROOT / "src" / "obs").glob("*.h")):
        for cls in CLASS_RE.findall(header.read_text(encoding="utf-8")):
            if cls not in corpus:
                errors.append(
                    f"src/obs/{header.name}: public class '{cls}' is not "
                    f"mentioned in docs/observability.md or docs/architecture.md"
                )
    return errors


def check_sim_classes():
    errors = []
    corpus = ""
    for name in ("performance.md", "architecture.md"):
        page = ROOT / "docs" / name
        if not page.exists():
            return [f"missing docs/{name}"]
        corpus += page.read_text(encoding="utf-8")
    for header in sorted((ROOT / "src" / "sim").glob("*.h")):
        for cls in CLASS_RE.findall(header.read_text(encoding="utf-8")):
            if cls not in corpus:
                errors.append(
                    f"src/sim/{header.name}: public class '{cls}' is not "
                    f"mentioned in docs/performance.md or docs/architecture.md"
                )
    return errors


def check_fuzz_classes():
    errors = []
    corpus = ""
    for name in ("fuzzing.md", "architecture.md"):
        page = ROOT / "docs" / name
        if not page.exists():
            return [f"missing docs/{name}"]
        corpus += page.read_text(encoding="utf-8")
    for header in sorted((ROOT / "src" / "fuzz").glob("*.h")):
        for cls in CLASS_RE.findall(header.read_text(encoding="utf-8")):
            if cls not in corpus:
                errors.append(
                    f"src/fuzz/{header.name}: public class '{cls}' is not "
                    f"mentioned in docs/fuzzing.md or docs/architecture.md"
                )
    return errors


def check_shard_classes():
    errors = []
    corpus = ""
    for name in ("sharding.md", "architecture.md"):
        page = ROOT / "docs" / name
        if not page.exists():
            return [f"missing docs/{name}"]
        corpus += page.read_text(encoding="utf-8")
    for header in sorted((ROOT / "src" / "shard").glob("*.h")):
        for cls in CLASS_RE.findall(header.read_text(encoding="utf-8")):
            if cls not in corpus:
                errors.append(
                    f"src/shard/{header.name}: public class '{cls}' is not "
                    f"mentioned in docs/sharding.md or docs/architecture.md"
                )
    return errors


def check_lint_checks_documented():
    """Every check in tools/lint/bft_lint.py's CHECKS registry is documented."""
    lint = ROOT / "tools" / "lint" / "bft_lint.py"
    page = ROOT / "docs" / "static_analysis.md"
    if not lint.exists():
        return [f"missing {lint.relative_to(ROOT)}"]
    if not page.exists():
        return ["missing docs/static_analysis.md"]
    registry = re.search(r"CHECKS\s*=\s*\{(.*?)\}", lint.read_text(
        encoding="utf-8"), re.DOTALL)
    if not registry:
        return ["tools/lint/bft_lint.py: CHECKS registry not found"]
    names = re.findall(r"\"(\w+)\"\s*:", registry.group(1))
    if not names:
        return ["tools/lint/bft_lint.py: CHECKS registry is empty"]
    text = page.read_text(encoding="utf-8")
    return [
        f"tools/lint/bft_lint.py: lint check '{name}' is not documented in "
        f"docs/static_analysis.md"
        for name in names if f"`{name}`" not in text
    ]


def main():
    errors = (check_links() + check_docs_reachable() + check_runtime_classes()
              + check_obs_classes() + check_sim_classes()
              + check_fuzz_classes() + check_shard_classes()
              + check_lint_checks_documented())
    docs = len(doc_files())
    if errors:
        print(f"check_docs: {len(errors)} problem(s) across {docs} documents:")
        for err in errors:
            print(f"  - {err}")
        return 1
    print(f"check_docs: OK ({docs} documents, links resolve, no orphaned "
          f"pages, runtime, obs, sim, fuzz, and shard classes documented, "
          f"lint checks documented)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
