#!/usr/bin/env bash
# clang-tidy gate (docs/static_analysis.md): runs the curated .clang-tidy
# profile over src/ using a build tree's compile database. CI installs
# clang-tidy and treats findings as errors (WarningsAsErrors: '*'); locally
# the tool may be absent, in which case this exits 0 with a notice so
# developer machines without LLVM are not blocked.
set -u

build_dir="${1:-build}"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy: clang-tidy not installed — skipping (CI runs it)"
  exit 0
fi

if [ ! -f "${build_dir}/compile_commands.json" ]; then
  echo "run_clang_tidy: ${build_dir}/compile_commands.json missing —" \
       "configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 1
fi

cd "$(dirname "$0")/.."

# Library sources only: test TUs are gtest-macro-heavy and covered by the
# sanitizer job instead.
mapfile -t sources < <(find src -name '*.cpp' | sort)

echo "run_clang_tidy: ${#sources[@]} files, profile $(pwd)/.clang-tidy"

fail=0
for chunk_start in $(seq 0 8 $((${#sources[@]} - 1))); do
  chunk=("${sources[@]:chunk_start:8}")
  clang-tidy -p "${build_dir}" --quiet "${chunk[@]}" || fail=1
done

if [ "${fail}" -ne 0 ]; then
  echo "run_clang_tidy: findings above must be fixed (or the rule excluded" \
       "in .clang-tidy with a reason)" >&2
  exit 1
fi
echo "run_clang_tidy: OK"
