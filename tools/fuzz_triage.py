#!/usr/bin/env python3
"""Summarize a fuzz campaign's JSON log (docs/fuzzing.md, triage workflow).

bench_fuzz_campaign emits one JSON object per run on stdout. Pipe that (or a
saved log file) through this tool to get a triage summary: pass/fail counts,
failures grouped by violation class (liveness / agreement / trace /
convergence / reply-cache), and for every failing seed its schedule summary,
violations, and the repro file to replay with
`bench_fuzz_campaign --replay <file>`.

Usage:
  ./build/bench_fuzz_campaign --seeds 100 | python3 tools/fuzz_triage.py
  python3 tools/fuzz_triage.py campaign.jsonl [more.jsonl ...]

Exits 1 when any run failed (so CI jobs can gate on it), 2 on unusable input.
"""
import json
import sys
from collections import Counter


def violation_class(message):
    """The oracle that fired: the prefix up to the first ':'."""
    head, sep, _ = message.partition(":")
    return head if sep else "other"


def read_runs(streams):
    runs = []
    bad_lines = 0
    for stream in streams:
        for line in stream:
            line = line.strip()
            if not line or not line.startswith("{"):
                continue  # human-readable noise interleaved with the log
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                bad_lines += 1
                continue
            if "seed" in record and "ok" in record:
                runs.append(record)
    return runs, bad_lines


def main(argv):
    if len(argv) > 1:
        streams = [open(path, encoding="utf-8") for path in argv[1:]]
    else:
        streams = [sys.stdin]
    runs, bad_lines = read_runs(streams)
    if not runs:
        print("fuzz_triage: no campaign records found "
              "(expected JSON lines from bench_fuzz_campaign)")
        return 2

    failures = [r for r in runs if not r["ok"]]
    classes = Counter()
    for run in failures:
        for violation in run.get("violations", []):
            classes[violation_class(violation)] += 1

    print(f"fuzz_triage: {len(runs)} run(s), {len(failures)} failure(s)"
          + (f", {bad_lines} unparseable line(s)" if bad_lines else ""))
    total_exec = sum(r.get("executed", 0) for r in runs)
    total_vc = sum(r.get("view_changes", 0) for r in runs)
    total_rec = sum(r.get("recoveries", 0) for r in runs)
    print(f"  coverage: {total_exec} blocks executed, {total_vc} view "
          f"change(s), {total_rec} recover(ies) across all runs")

    if not failures:
        return 0

    print("  violations by oracle:")
    for name, count in classes.most_common():
        print(f"    {name}: {count}")
    print("  failing seeds:")
    for run in failures:
        print(f"    seed {run['seed']}: {run.get('schedule', '?')}")
        for violation in run.get("violations", []):
            print(f"      - {violation}")
        if "repro" in run:
            print(f"      replay: ./build/bench_fuzz_campaign --replay "
                  f"{run['repro']}")
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
