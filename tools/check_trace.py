#!/usr/bin/env python3
"""Schema guard for dumped Chrome-trace-event JSON (run by CI after the
trace tour — see docs/observability.md).

Validates that a trace produced by obs::write_chrome_trace is loadable by
Perfetto and internally consistent:

1. Top level is an object with a non-empty "traceEvents" array.
2. Every event carries name/cat/ph/pid/tid, uses a known phase
   (M metadata, i instant, b/e async span), and non-metadata events carry a
   numeric "ts" plus an "args" object with "seq" and "view".
3. Span events pair up strictly per (cat, id): an "e" without a prior "b"
   is an error (the emit sites guarantee every end has a begin); a "b"
   still open at dump time is fine — that is an in-flight or superseded
   span truncated by the end of the run.
4. The categories a protocol run necessarily produces are present:
   slot, viewchange, statetransfer.

Exits non-zero with a summary of every violation.
"""
import json
import sys

PHASES = {"M", "i", "b", "e"}
REQUIRED_CATEGORIES = {"slot", "viewchange", "statetransfer"}


def check_trace(doc):
    errors = []
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        return ["traceEvents missing, not an array, or empty"]

    open_spans = {}  # (cat, id) -> count of unmatched begins
    categories = set()
    for i, e in enumerate(events):
        where = f"event[{i}]"
        ph = e.get("ph")
        if ph not in PHASES:
            errors.append(f"{where}: unknown phase {ph!r}")
            continue
        # Metadata events name processes/threads and carry no category.
        keys = ("name", "ph", "pid", "tid") if ph == "M" else (
            "name", "cat", "ph", "pid", "tid")
        for key in keys:
            if key not in e:
                errors.append(f"{where}: missing '{key}'")
        if ph == "M":
            continue
        categories.add(e.get("cat"))
        if not isinstance(e.get("ts"), (int, float)):
            errors.append(f"{where}: non-metadata event without numeric 'ts'")
        args = e.get("args")
        if not isinstance(args, dict) or "seq" not in args or "view" not in args:
            errors.append(f"{where}: 'args' must carry 'seq' and 'view'")
        if ph in ("b", "e"):
            if "id" not in e:
                errors.append(f"{where}: span event without 'id'")
                continue
            key = (e.get("cat"), e["id"])
            if ph == "b":
                open_spans[key] = open_spans.get(key, 0) + 1
            elif open_spans.get(key, 0) > 0:
                open_spans[key] -= 1
            else:
                errors.append(
                    f"{where}: end without begin for span {key[1]!r} "
                    f"(cat {key[0]!r})"
                )

    missing = REQUIRED_CATEGORIES - categories
    if missing:
        errors.append(f"missing required categories: {sorted(missing)}")
    return errors


def main(argv):
    if len(argv) != 2:
        print(f"usage: {argv[0]} <trace.json>", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_trace: cannot load {argv[1]}: {exc}")
        return 1

    errors = check_trace(doc)
    if errors:
        print(f"check_trace: {len(errors)} problem(s) in {argv[1]}:")
        for err in errors[:50]:
            print(f"  - {err}")
        if len(errors) > 50:
            print(f"  ... and {len(errors) - 50} more")
        return 1
    events = doc["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "b")
    print(
        f"check_trace: OK ({len(events)} events, {spans} spans, "
        f"categories: {sorted(c for c in {e.get('cat') for e in events} if c)})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
