// Sharded-deployment scaling bench (docs/sharding.md).
//
// Two workloads, each swept over SBFT and scale-optimized PBFT groups:
//
//  1. Single-shard scaling: 1 -> 4 independent groups under a shared
//     simulator, offered load scaled with the group count (fixed clients and
//     requests per group). Because the keyspace is hash-partitioned and
//     single-key requests never leave their group, aggregate throughput
//     should grow near-linearly; the bench asserts >= 2.5x aggregate
//     ops/second at 4 groups vs 1 for both protocols.
//
//  2. Cross-shard 2PC under faults: a 4-group deployment where every Nth
//     client request is a two-key transfer ordered through BFT 2PC, with the
//     group-0 primary (group 0 coordinates every transaction it
//     participates in) crashed mid-run and restarted later. The bench
//     asserts the deployment-wide atomicity audit comes back clean and
//     every group still satisfies per-group agreement.
//
// Every point emits one JSON line (grep '^{') with `groups`,
// `aggregate_ops_per_s`, `cross_shard_commits`, and `cross_shard_aborts`;
// CI runs `--quick` and guards those fields.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "harness/metrics.h"
#include "shard/deployment.h"

using namespace sbft;
using namespace sbft::shard;
using sbft::harness::ProtocolKind;

namespace {

struct ProtocolSpec {
  ProtocolKind kind;
  const char* label;
};

const ProtocolSpec kProtocols[] = {
    {ProtocolKind::kSbft, "SBFT"},
    {ProtocolKind::kPbft, "PBFT"},
};

struct PointResult {
  double aggregate_ops_per_s = 0.0;
  uint64_t completed = 0;
  uint64_t cross_commits = 0;
  uint64_t cross_aborts = 0;
  bool ok = true;
};

DeploymentOptions base_options(ProtocolKind kind, uint32_t groups, bool quick) {
  DeploymentOptions o;
  o.num_groups = groups;
  o.group.kind = kind;
  o.group.f = 1;
  // Offered load scales with the group count so the sweep measures capacity,
  // not a fixed load spread ever thinner: each group gets the same client
  // pressure at every point.
  o.num_clients = groups * (quick ? 3 : 4);
  o.requests_per_client = quick ? 50 : 200;
  o.keyspace = 4096;
  o.seed = 42;
  return o;
}

PointResult run_point(const DeploymentOptions& opts, sim::SimTime deadline_us,
                      const char* workload, const char* label) {
  Deployment dep(opts);
  bool done = dep.run_until_done(deadline_us);
  // Clients finishing does not mean every backup executed its group's tail;
  // drain so the atomicity audit sees final state everywhere.
  dep.run_for(10'000'000);

  PointResult r;
  r.completed = dep.total_completed();
  r.cross_commits = dep.cross_shard_commits();
  r.cross_aborts = dep.cross_shard_aborts();
  const double elapsed_s =
      static_cast<double>(dep.simulator().now()) / 1e6;
  if (elapsed_s > 0) r.aggregate_ops_per_s = r.completed / elapsed_s;

  std::vector<std::string> violations = dep.audit_cross_shard_atomicity();
  bool agreement = true;
  for (uint32_t g = 0; g < dep.num_groups(); ++g) {
    if (!dep.group(g).check_agreement()) agreement = false;
  }
  r.ok = done && violations.empty() && agreement;
  if (!done) std::fprintf(stderr, "FAIL: %s/%s did not finish\n", workload, label);
  for (const std::string& v : violations) {
    std::fprintf(stderr, "ATOMICITY VIOLATION: %s\n", v.c_str());
  }
  if (!agreement) std::fprintf(stderr, "FAIL: per-group agreement broken\n");

  std::printf(
      "%s\n",
      harness::JsonWriter()
          .field("bench", "shard_scaling")
          .field("workload", workload)
          .field("protocol", label)
          .field("groups", static_cast<uint64_t>(opts.num_groups))
          .field("clients", static_cast<uint64_t>(opts.num_clients))
          .field("requests_per_client", opts.requests_per_client)
          .field("completed", r.completed)
          .field("aggregate_ops_per_s", r.aggregate_ops_per_s)
          .field("cross_shard_commits", r.cross_commits)
          .field("cross_shard_aborts", r.cross_aborts)
          .field("atomicity_ok", static_cast<uint64_t>(violations.empty() ? 1 : 0))
          .field("agreement_ok", static_cast<uint64_t>(agreement ? 1 : 0))
          .str()
          .c_str());
  std::fflush(stdout);
  return r;
}

// Workload 1: single-shard keyspace partitioning, 1 -> 4 groups.
bool scaling_sweep(bool quick) {
  bool ok = true;
  for (const ProtocolSpec& p : kProtocols) {
    double at_one = 0.0, at_four = 0.0;
    for (uint32_t groups : {1u, 2u, 4u}) {
      DeploymentOptions opts = base_options(p.kind, groups, quick);
      PointResult r = run_point(opts, /*deadline_us=*/300'000'000,
                                "single_shard", p.label);
      ok = ok && r.ok;
      if (groups == 1) at_one = r.aggregate_ops_per_s;
      if (groups == 4) at_four = r.aggregate_ops_per_s;
    }
    const double speedup = at_one > 0 ? at_four / at_one : 0.0;
    std::printf("# %s single-shard speedup at 4 groups: %.2fx\n", p.label,
                speedup);
    if (speedup < 2.5) {
      std::fprintf(stderr,
                   "FAIL: %s 4-group aggregate throughput %.2fx of 1 group "
                   "(need >= 2.5x)\n",
                   p.label, speedup);
      ok = false;
    }
  }
  return ok;
}

// Workload 2: cross-shard transfers with the group-0 primary crashed
// mid-2PC. Group 0 is the coordinator of every transaction it touches, so
// the crash lands on in-flight coordinators; atomicity must survive the
// view change, and the restarted primary must catch back up.
bool cross_shard_faults(bool quick) {
  bool ok = true;
  for (const ProtocolSpec& p : kProtocols) {
    DeploymentOptions opts = base_options(p.kind, /*groups=*/4, quick);
    opts.cross_shard_every = 4;
    opts.requests_per_client = quick ? 30 : 100;

    Deployment dep(opts);
    const ReplicaId primary = dep.group(0).config().primary_of(0);
    dep.simulator().schedule(2'000'000,
                             [&] { dep.group(0).crash_replica(primary); });
    dep.simulator().schedule(60'000'000,
                             [&] { dep.group(0).restart_replica(primary); });
    bool done = dep.run_until_done(/*deadline_us=*/400'000'000);
    dep.run_for(10'000'000);

    std::vector<std::string> violations = dep.audit_cross_shard_atomicity();
    bool agreement = true;
    for (uint32_t g = 0; g < dep.num_groups(); ++g) {
      if (!dep.group(g).check_agreement()) agreement = false;
    }
    const uint64_t commits = dep.cross_shard_commits();
    const uint64_t aborts = dep.cross_shard_aborts();
    const double elapsed_s =
        static_cast<double>(dep.simulator().now()) / 1e6;
    const double rate =
        elapsed_s > 0 ? dep.total_completed() / elapsed_s : 0.0;

    if (!done) std::fprintf(stderr, "FAIL: %s cross-shard run did not finish\n", p.label);
    for (const std::string& v : violations) {
      std::fprintf(stderr, "ATOMICITY VIOLATION: %s\n", v.c_str());
    }
    if (!agreement) std::fprintf(stderr, "FAIL: per-group agreement broken\n");
    if (commits == 0) {
      std::fprintf(stderr, "FAIL: %s committed no cross-shard transfers\n",
                   p.label);
    }
    ok = ok && done && violations.empty() && agreement && commits > 0;

    std::printf(
        "%s\n",
        harness::JsonWriter()
            .field("bench", "shard_scaling")
            .field("workload", "cross_shard_crash")
            .field("protocol", p.label)
            .field("groups", static_cast<uint64_t>(opts.num_groups))
            .field("clients", static_cast<uint64_t>(opts.num_clients))
            .field("requests_per_client", opts.requests_per_client)
            .field("completed", dep.total_completed())
            .field("aggregate_ops_per_s", rate)
            .field("cross_shard_commits", commits)
            .field("cross_shard_aborts", aborts)
            .field("crashed_replica", static_cast<uint64_t>(primary))
            .field("atomicity_ok", static_cast<uint64_t>(violations.empty() ? 1 : 0))
            .field("agreement_ok", static_cast<uint64_t>(agreement ? 1 : 0))
            .str()
            .c_str());
    std::fflush(stdout);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }
  std::printf("# shard_scaling: keyspace-partitioned multi-group deployment\n");
  std::printf("# (1 -> 4 groups, SBFT + PBFT; --quick for the CI subset)\n\n");

  bool ok = scaling_sweep(quick);
  ok = cross_shard_faults(quick) && ok;

  if (!ok) {
    std::fprintf(stderr, "\nshard_scaling: FAILED\n");
    return 1;
  }
  std::printf("\n# shard_scaling: all assertions passed\n");
  return 0;
}
