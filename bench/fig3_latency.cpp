// Figure 3 reproduction: latency vs throughput curves (one point per client
// count) for the five protocols, same six panels as Figure 2. Shares the
// cached sweep with fig2_throughput.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

struct ProtocolSpec {
  ProtocolKind kind;
  uint32_t c;
  const char* label;
};

const ProtocolSpec kProtocols[] = {
    {ProtocolKind::kPbft, 0, "PBFT"},
    {ProtocolKind::kLinearPbft, 0, "Linear-PBFT"},
    {ProtocolKind::kLinearPbftFast, 0, "Linear-PBFT+Fast"},
    {ProtocolKind::kSbft, 0, "SBFT(c=0)"},
    {ProtocolKind::kSbft, 8, "SBFT(c=8)"},
};

}  // namespace

int main() {
  const uint32_t f = 64;
  const std::vector<uint32_t> clients = bench_client_grid();
  const std::vector<uint32_t> failures = {0, 8, 64};
  const std::vector<uint32_t> batches = {64, 1};

  std::printf("=== Figure 3: latency vs throughput — f=%u, continent WAN ===\n",
              f);
  std::printf("each series lists (throughput ops/s -> median/p99 latency ms) "
              "per client count %s\n\n",
              bench_full_mode() ? "{4,32,64,128,192,256}" : "{4,64,256}");

  for (uint32_t batch : batches) {
    for (uint32_t crashed : failures) {
      std::printf("--- panel: %s, %u failures ---\n",
                  batch > 1 ? "batch=64" : "no batch", crashed);
      for (const ProtocolSpec& proto : kProtocols) {
        std::printf("%-18s", proto.label);
        for (uint32_t num_clients : clients) {
          ExperimentPoint point;
          point.kind = proto.kind;
          point.f = f;
          point.c = proto.c;
          point.num_clients = num_clients;
          point.ops_per_request = batch;
          point.crash_replicas = crashed;
          point.warmup_us = 800'000;
          point.measure_us = bench_full_mode() ? 4'000'000 : 1'200'000;
          ExperimentResult r = run_point_cached(point);
          std::printf("  (%7.0f -> %5.0f/%5.0fms)", r.metrics.ops_per_second,
                      r.metrics.latency.median_ms, r.metrics.latency.p99_ms);
          std::fflush(stdout);
        }
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  std::printf("Paper shape to match: SBFT sits below-and-right of PBFT "
              "(more throughput at lower latency); the fast path cuts "
              "latency vs Linear-PBFT in failure-free panels.\n");
  return 0;
}
