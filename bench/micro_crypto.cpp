// Microbenchmarks for the cryptographic substrates (§III): SHA-256, HMAC,
// RSA, Shoup threshold RSA (sign/verify/combine), the simulated-BLS scheme,
// and Merkle structures. Real wall-clock numbers for this implementation —
// the simulator's CostModel documents the paper-calibrated figures.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "crypto/hmac.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/threshold.h"
#include "merkle/merkle_tree.h"

using namespace sbft;
using namespace sbft::crypto;

namespace {

void BM_Sha256(benchmark::State& state) {
  Rng rng(1);
  Bytes data = rng.bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(sha256(as_span(data)));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  Rng rng(2);
  Bytes key = rng.bytes(32);
  Bytes data = rng.bytes(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(as_span(key), as_span(data)));
  }
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_RsaSign(benchmark::State& state) {
  Rng rng(3);
  RsaKeyPair kp = rsa_generate(rng, static_cast<int>(state.range(0)));
  Digest d = sha256("bench");
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.priv.sign(d));
  }
}
BENCHMARK(BM_RsaSign)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_RsaVerify(benchmark::State& state) {
  Rng rng(4);
  RsaKeyPair kp = rsa_generate(rng, static_cast<int>(state.range(0)));
  Digest d = sha256("bench");
  Bytes sig = kp.priv.sign(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kp.pub.verify(d, as_span(sig)));
  }
}
BENCHMARK(BM_RsaVerify)->Arg(512)->Arg(1024)->Unit(benchmark::kMicrosecond);

void BM_ShoupSignShare(benchmark::State& state) {
  Rng rng(5);
  ThresholdScheme s = deal_shoup_rsa(rng, 7, 5, 384);
  Digest d = sha256("share");
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.signers[0]->sign_share(d));
  }
}
BENCHMARK(BM_ShoupSignShare)->Unit(benchmark::kMicrosecond);

void BM_ShoupVerifyShare(benchmark::State& state) {
  Rng rng(6);
  ThresholdScheme s = deal_shoup_rsa(rng, 7, 5, 384);
  Digest d = sha256("share");
  Bytes share = s.signers[0]->sign_share(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.verifier->verify_share(1, d, as_span(share)));
  }
}
BENCHMARK(BM_ShoupVerifyShare)->Unit(benchmark::kMicrosecond);

void BM_ShoupCombine(benchmark::State& state) {
  Rng rng(7);
  uint32_t k = static_cast<uint32_t>(state.range(0));
  ThresholdScheme s = deal_shoup_rsa(rng, k + 2, k, 384);
  Digest d = sha256("combine");
  std::vector<SignatureShare> shares;
  for (uint32_t i = 0; i < k; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.verifier->combine(d, shares));
  }
}
BENCHMARK(BM_ShoupCombine)->Arg(3)->Arg(5)->Arg(7)->Unit(benchmark::kMillisecond);

void BM_SimBlsSignShare(benchmark::State& state) {
  Rng rng(8);
  ThresholdScheme s = deal_sim_bls(rng, 209, 197);
  Digest d = sha256("share");
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.signers[0]->sign_share(d));
  }
}
BENCHMARK(BM_SimBlsSignShare);

void BM_SimBlsCombine197(benchmark::State& state) {
  Rng rng(9);
  ThresholdScheme s = deal_sim_bls(rng, 209, 197);
  Digest d = sha256("combine");
  std::vector<SignatureShare> shares;
  for (uint32_t i = 0; i < 197; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.verifier->combine(d, shares));
  }
}
BENCHMARK(BM_SimBlsCombine197)->Unit(benchmark::kMicrosecond);

void BM_BlockMerkleBuild(benchmark::State& state) {
  size_t leaves_count = static_cast<size_t>(state.range(0));
  std::vector<Digest> leaves;
  for (size_t i = 0; i < leaves_count; ++i) {
    leaves.push_back(merkle::leaf_hash(as_span(std::to_string(i))));
  }
  for (auto _ : state) {
    merkle::BlockMerkleTree tree(leaves);
    benchmark::DoNotOptimize(tree.root());
  }
}
BENCHMARK(BM_BlockMerkleBuild)->Arg(64)->Arg(256);

void BM_SmtUpdate(benchmark::State& state) {
  merkle::SparseMerkleTree tree;
  Rng rng(10);
  uint64_t i = 0;
  for (auto _ : state) {
    Bytes key = rng.bytes(16);
    tree.update(as_span(key), merkle::leaf_hash(as_span(key)));
    ++i;
  }
}
BENCHMARK(BM_SmtUpdate)->Unit(benchmark::kMicrosecond);

void BM_SmtProveVerify(benchmark::State& state) {
  merkle::SparseMerkleTree tree;
  std::vector<Bytes> keys;
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    keys.push_back(rng.bytes(16));
    tree.update(as_span(keys.back()), merkle::leaf_hash(as_span(keys.back())));
  }
  size_t idx = 0;
  for (auto _ : state) {
    const Bytes& key = keys[idx++ % keys.size()];
    auto proof = tree.prove(as_span(key));
    benchmark::DoNotOptimize(merkle::SparseMerkleTree::verify(
        tree.root(), as_span(key), merkle::leaf_hash(as_span(key)), proof));
  }
}
BENCHMARK(BM_SmtProveVerify)->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
