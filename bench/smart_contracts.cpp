// Smart-contract benchmark reproduction (§IX "Smart-Contract benchmark
// evaluation"): Ethereum-like transactions executed by the replicated EVM
// ledger at f=64, on the continent-scale and world-scale WANs, for SBFT
// (c=8) vs scale-optimized PBFT, plus the unreplicated single-machine
// baseline.
//
// Paper results: continent scale SBFT 378 tps @ 254 ms vs PBFT 204 tps @
// 538 ms; world scale SBFT 172 tps @ 622 ms vs PBFT 98 tps @ 934 ms;
// single-machine baseline 840 tps.
#include <chrono>
#include <cstdio>

#include "evm/evm_service.h"
#include "harness/cluster.h"
#include "harness/eth_workload.h"
#include "harness/experiment.h"
#include "harness/metrics.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

struct Row {
  const char* setting;
  const char* protocol;
  double tps;
  double median_ms;
  double p99_ms;
};

Row run_replicated(const char* setting, ProtocolKind kind, uint32_t c,
                   sim::Topology topology, uint32_t f, uint32_t clients,
                   sim::SimTime measure_us) {
  EthWorkloadOptions workload;  // ~50 txs / 12KB per request
  ClusterOptions opts;
  opts.kind = kind;
  opts.c = c;
  opts.f = f;
  opts.num_clients = clients;
  opts.requests_per_client = 0;
  opts.topology = std::move(topology);
  opts.seed = 11;
  opts.service_factory = [] { return std::make_unique<evm::EvmLedgerService>(); };
  opts.per_client_op_factory = [workload](ClientId id) {
    return eth_op_factory(id, workload);
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'000'000);
  sim::SimTime from = cluster.simulator().now();
  cluster.run_for(measure_us);
  RunMetrics m = collect_metrics(cluster, from, cluster.simulator().now(),
                                 workload.txs_per_request);
  if (!cluster.check_agreement()) std::printf("!!AGREEMENT VIOLATION!!\n");
  return {setting, protocol_name(kind), m.ops_per_second, m.latency.median_ms,
          m.latency.p99_ms};
}

Row run_single_machine(uint64_t txs) {
  // Unreplicated baseline: execute the trace on one EVM ledger and commit to
  // disk-modeled storage; tps derives from the calibrated cost model, which
  // is what the replicated runs charge per execution.
  evm::EvmLedgerService ledger;
  sim::CostModel costs;
  EthWorkloadOptions workload;
  auto factory = eth_op_factory(1, workload);
  Rng rng(4);
  int64_t simulated_us = 0;
  uint64_t executed = 0;
  for (uint64_t i = 0; executed < txs; ++i) {
    Bytes request = factory(i, rng);
    ledger.execute(as_span(request));
    simulated_us += ledger.last_execute_cost_us(costs);
    simulated_us += costs.persist_us(request.size());
    executed += workload.txs_per_request;
  }
  double tps = static_cast<double>(executed) / (static_cast<double>(simulated_us) / 1e6);
  return {"single machine", "no replication", tps, 0, 0};
}

}  // namespace

int main() {
  const bool full = bench_full_mode();
  const uint32_t f = full ? 64 : 16;
  const uint32_t c = 8;
  const uint32_t clients = 24;
  const sim::SimTime measure = full ? 8'000'000 : 4'000'000;

  std::printf("=== Smart-contract benchmark — Ethereum-like trace, f=%u ===\n",
              f);
  if (!full) {
    std::printf("(reduced sizing f=16/n=65 by default; SBFT_BENCH_FULL=1 for "
                "the paper's f=64/n=209)\n");
  }
  std::printf("\n%-16s %-16s %12s %14s %10s\n", "setting", "protocol", "tps",
              "median ms", "p99 ms");

  std::vector<Row> rows;
  rows.push_back(run_replicated("continent WAN", ProtocolKind::kSbft, c,
                                sim::continent_topology(), f, clients, measure));
  rows.push_back(run_replicated("continent WAN", ProtocolKind::kPbft, 0,
                                sim::continent_topology(), f, clients, measure));
  rows.push_back(run_replicated("world WAN", ProtocolKind::kSbft, c,
                                sim::world_topology(), f, clients, measure));
  rows.push_back(run_replicated("world WAN", ProtocolKind::kPbft, 0,
                                sim::world_topology(), f, clients, measure));
  rows.push_back(run_single_machine(full ? 100'000 : 20'000));

  for (const Row& row : rows) {
    std::printf("%-16s %-16s %12.0f %14.0f %10.0f\n", row.setting, row.protocol,
                row.tps, row.median_ms, row.p99_ms);
  }

  std::printf("\nPaper rows: continent SBFT 378tps/254ms vs PBFT 204tps/538ms; "
              "world SBFT 172tps/622ms vs PBFT 98tps/934ms; baseline 840tps.\n");
  return 0;
}
