// Byzantine schedule fuzzing campaign CLI (docs/fuzzing.md).
//
// Modes:
//   bench_fuzz_campaign --seeds 25 --seed-base 1      # fixed seed range
//   bench_fuzz_campaign --duration 300                # wall-clock budget (s)
//   bench_fuzz_campaign --replay repro/seed-7.sched   # re-run one repro file
//
// Every run emits one JSON line (consumed by tools/fuzz_triage.py). Failing
// seeds are delta-debugged down and written as replayable repro files under
// --repro-dir. Exit status: 0 all clean, 1 failures found, 2 usage/replay
// error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "fuzz/campaign.h"

using namespace sbft;
using namespace sbft::fuzz;

namespace {

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--seeds N] [--seed-base S] [--duration SECONDS]\n"
               "          [--repro-dir DIR] [--no-minimize] [--quick]\n"
               "          [--replay FILE]\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  CampaignOptions options;
  options.repro_dir = "fuzz-repros";
  std::string replay_path;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        usage(argv[0]);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      options.num_seeds = std::strtoull(need_value("--seeds"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed-base") == 0) {
      options.seed_base = std::strtoull(need_value("--seed-base"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--duration") == 0) {
      options.wall_clock_budget_ms =
          1000 * std::strtoll(need_value("--duration"), nullptr, 10);
    } else if (std::strcmp(argv[i], "--repro-dir") == 0) {
      options.repro_dir = need_value("--repro-dir");
    } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
      options.minimize = false;
    } else if (std::strcmp(argv[i], "--quick") == 0) {
      options.num_seeds = 5;
    } else if (std::strcmp(argv[i], "--replay") == 0) {
      replay_path = need_value("--replay");
    } else {
      usage(argv[0]);
      return 2;
    }
  }

  if (!replay_path.empty()) {
    FuzzResult result;
    std::string error;
    if (!replay_file(replay_path, &result, &error)) {
      std::fprintf(stderr, "replay failed: %s\n", error.c_str());
      return 2;
    }
    std::printf("%s\n", result.summary().c_str());
    return result.ok() ? 0 : 1;
  }

  options.log = &std::cout;
  CampaignReport report = run_campaign(options);
  std::fprintf(stderr, "fuzz campaign: %llu run(s), %llu failure(s)\n",
               static_cast<unsigned long long>(report.runs),
               static_cast<unsigned long long>(report.failures));
  for (size_t i = 0; i < report.failing_seeds.size(); ++i) {
    std::fprintf(stderr, "  seed %llu%s%s\n",
                 static_cast<unsigned long long>(report.failing_seeds[i]),
                 i < report.repro_paths.size() ? " -> " : "",
                 i < report.repro_paths.size() ? report.repro_paths[i].c_str()
                                               : "");
  }
  return report.ok() ? 0 : 1;
}
