// Ablation: adaptive batching (§VIII). Compares the adaptive batch-size
// controller against fixed batch sizes across load levels.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

ExperimentResult run_with_batching(uint32_t f, uint32_t clients, bool adaptive,
                                   uint32_t fixed_batch, sim::SimTime measure) {
  ExperimentPoint point;
  point.kind = ProtocolKind::kSbft;
  point.f = f;
  point.num_clients = clients;
  point.ops_per_request = 1;
  point.warmup_us = 1'000'000;
  point.measure_us = measure;
  point.tweak = [adaptive, fixed_batch](ClusterOptions& opts) {
    opts.tweak_config = [adaptive, fixed_batch](ProtocolConfig& config) {
      config.adaptive_batching = adaptive;
      config.max_batch = fixed_batch;
    };
  };
  return run_point(point);
}

}  // namespace

int main() {
  const bool full = bench_full_mode();
  const uint32_t f = full ? 64 : 16;
  const sim::SimTime measure = full ? 4'000'000 : 2'000'000;

  std::printf("=== Ablation: adaptive batching (§VIII), f=%u, continent WAN, "
              "single-op requests ===\n\n", f);
  std::printf("%-18s %10s %14s %14s %10s\n", "policy", "clients", "req/s",
              "median ms", "p99 ms");

  for (uint32_t clients : {16u, 128u}) {
    ExperimentResult adaptive = run_with_batching(f, clients, true, 64, measure);
    std::printf("%-18s %10u %14.0f %14.0f %10.0f\n", "adaptive", clients,
                adaptive.metrics.requests_per_second,
                adaptive.metrics.latency.median_ms, adaptive.metrics.latency.p99_ms);
    std::fflush(stdout);
    for (uint32_t fixed : {1u, 16u, 64u}) {
      ExperimentResult r = run_with_batching(f, clients, false, fixed, measure);
      std::printf("batch=%-12u %10u %14.0f %14.0f %10.0f\n", fixed, clients,
                  r.metrics.requests_per_second, r.metrics.latency.median_ms,
                  r.metrics.latency.p99_ms);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Expected: tiny fixed batches choke throughput at high load; "
              "huge fixed batches add latency at low load; adaptive tracks "
              "the better fixed policy at each load level.\n");
  return 0;
}
