// Recovery cost (§VIII): how long a restarted replica takes to rebuild its
// state as a function of ledger length — full replay from genesis versus
// snapshot + suffix replay — plus a simulated kill-and-restart measuring the
// end-to-end rejoin time inside a running cluster.
//
// Emits one JSON line per measurement (machine-readable) alongside the table.
#include <chrono>
#include <cstdio>
#include <memory>

#include "harness/cluster.h"
#include "harness/experiment.h"
#include "harness/workload.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "storage/ledger_storage.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

Bytes encoded_block(SeqNum s, uint32_t ops_per_block) {
  Block block;
  for (uint32_t i = 0; i < ops_per_block; ++i) {
    Request req;
    req.client = 100 + i;
    req.timestamp = s;
    req.op = Bytes(64, static_cast<uint8_t>(s + i));
    block.requests.push_back(std::move(req));
  }
  return encode_message(Message(PrePrepareMsg{s, 0, std::move(block)}));
}

struct ReplayResult {
  double wall_ms = 0;
  uint64_t replayed = 0;
  uint64_t replayed_bytes = 0;
};

ReplayResult measure_replay(uint64_t blocks, bool with_snapshot) {
  auto ledger = std::make_shared<storage::MemoryLedgerStorage>();
  for (SeqNum s = 1; s <= blocks; ++s) {
    ledger->append_block(s, as_span(encoded_block(s, /*ops_per_block=*/4)));
  }
  auto factory = [] { return std::make_unique<FastKvService>(); };
  auto wal = std::make_shared<recovery::MemoryWal>();
  if (with_snapshot) {
    // Checkpoint halfway: replay the prefix once to derive the certificate.
    recovery::RecoveryManager prefix(ledger, nullptr);
    auto state = prefix.recover(factory);
    SeqNum half = blocks / 2;
    wal->record_checkpoint(state->replayed[half - 1].cert, [&] {
      auto service = factory();
      for (SeqNum s = 1; s <= half; ++s) {
        for (const Request& r : state->replayed[s - 1].block.requests) {
          service->execute(as_span(r.op));
        }
      }
      return service->snapshot();
    }());
  }

  recovery::RecoveryManager manager(ledger, wal);
  auto begin = std::chrono::steady_clock::now();
  auto recovered = manager.recover(factory);
  auto end = std::chrono::steady_clock::now();
  ReplayResult out;
  out.wall_ms = std::chrono::duration<double, std::milli>(end - begin).count();
  out.replayed = recovered ? recovered->replayed.size() : 0;
  out.replayed_bytes = recovered ? recovered->replayed_bytes : 0;
  return out;
}

/// Simulated rejoin: kill a backup under load, restart it, and measure the
/// virtual time from restart until it has caught back up with the cluster.
double measure_rejoin_ms(sim::SimTime downtime_us) {
  ClusterOptions opts;
  opts.kind = ProtocolKind::kSbft;
  opts.f = 1;
  opts.num_clients = 4;
  opts.requests_per_client = 0;  // free-running load
  opts.topology = sim::lan_topology();
  opts.seed = 17;
  opts.tweak_config = [](ProtocolConfig& config) { config.win = 32; };
  Cluster cluster(std::move(opts));
  cluster.run_for(1'000'000);
  cluster.crash_replica(3);
  cluster.run_for(downtime_us);
  cluster.restart_replica(3);
  sim::SimTime restarted_at = cluster.simulator().now();
  for (int i = 0; i < 600; ++i) {
    cluster.run_for(50'000);
    SeqNum cluster_le = 0;
    for (ReplicaId r = 1; r <= cluster.n(); ++r) {
      if (r != 3) cluster_le = std::max(cluster_le, cluster.sbft_replica(r)->last_executed());
    }
    if (cluster.sbft_replica(3)->last_executed() + 2 >= cluster_le) {
      return static_cast<double>(cluster.simulator().now() - restarted_at) / 1000.0;
    }
  }
  return -1.0;  // did not catch up
}

}  // namespace

int main() {
  std::printf("=== Recovery latency vs ledger length (§VIII durability) ===\n\n");
  std::printf("%10s %14s %12s %14s %14s\n", "blocks", "mode", "replayed",
              "bytes", "recover ms");
  std::vector<uint64_t> sizes = {256, 1024, 4096, 16384};
  if (bench_full_mode()) sizes.push_back(65536);
  for (uint64_t blocks : sizes) {
    for (bool snapshot : {false, true}) {
      ReplayResult r = measure_replay(blocks, snapshot);
      const char* mode = snapshot ? "snapshot+tail" : "full-replay";
      std::printf("%10llu %14s %12llu %14llu %14.2f\n",
                  static_cast<unsigned long long>(blocks), mode,
                  static_cast<unsigned long long>(r.replayed),
                  static_cast<unsigned long long>(r.replayed_bytes), r.wall_ms);
      std::printf("{\"bench\":\"recovery_replay\",\"ledger_blocks\":%llu,"
                  "\"mode\":\"%s\",\"replayed\":%llu,\"replayed_bytes\":%llu,"
                  "\"recover_wall_ms\":%.3f}\n",
                  static_cast<unsigned long long>(blocks), mode,
                  static_cast<unsigned long long>(r.replayed),
                  static_cast<unsigned long long>(r.replayed_bytes), r.wall_ms);
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Simulated rejoin time vs downtime (kill + restart under "
              "load) ===\n\n");
  std::printf("%14s %16s\n", "downtime ms", "rejoin ms");
  for (sim::SimTime down : {500'000, 2'000'000, 8'000'000}) {
    double rejoin = measure_rejoin_ms(down);
    std::printf("%14lld %16.1f\n", static_cast<long long>(down / 1000), rejoin);
    std::printf("{\"bench\":\"recovery_rejoin\",\"downtime_ms\":%lld,"
                "\"rejoin_ms\":%.1f}\n",
                static_cast<long long>(down / 1000), rejoin);
    std::fflush(stdout);
  }
  std::printf("\nExpected: full replay grows linearly with ledger length; the "
              "snapshot halves the replayed suffix. Rejoin time is dominated "
              "by replay plus one state-transfer round when the cluster's "
              "checkpoint moved past the local log.\n");
  return 0;
}
