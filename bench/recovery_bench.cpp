// Recovery cost (§VIII): how long a restarted replica takes to rebuild its
// state as a function of ledger length — full replay from genesis versus
// snapshot + suffix replay — plus simulated kill-and-restart runs measuring
// the end-to-end rejoin time inside a running cluster for *both* protocols
// (SBFT and the PBFT baseline share the replica runtime, so their recovery
// paths are directly comparable), and a WAL compaction-policy comparison
// that asserts the incremental policy writes fewer bytes than the
// rewrite-everything policy.
//
// Emits one JSON line per measurement (machine-readable) alongside the
// table. Pass --quick for the CI-sized run.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>

#include "evm/contracts.h"
#include "harness/cluster.h"
#include "harness/eth_workload.h"
#include "harness/experiment.h"
#include "harness/metrics.h"
#include "harness/workload.h"
#include "kv/kv_service.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "runtime/snapshot.h"
#include "storage/ledger_storage.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

Bytes encoded_block(SeqNum s, uint32_t ops_per_block) {
  Block block;
  for (uint32_t i = 0; i < ops_per_block; ++i) {
    Request req;
    req.client = 100 + i;
    req.timestamp = s;
    req.op = Bytes(64, static_cast<uint8_t>(s + i));
    block.requests.push_back(std::move(req));
  }
  return encode_message(Message(PrePrepareMsg{s, 0, std::move(block)}));
}

struct ReplayResult {
  double wall_ms = 0;
  uint64_t replayed = 0;
  uint64_t replayed_bytes = 0;
};

ReplayResult measure_replay(uint64_t blocks, bool with_snapshot) {
  auto ledger = std::make_shared<storage::MemoryLedgerStorage>();
  for (SeqNum s = 1; s <= blocks; ++s) {
    ledger->append_block(s, as_span(encoded_block(s, /*ops_per_block=*/4)));
  }
  auto factory = [] { return std::make_unique<FastKvService>(); };
  auto wal = std::make_shared<recovery::MemoryWal>();
  if (with_snapshot) {
    // Checkpoint halfway: replay the prefix once to derive the certificate
    // and the reply cache that rides in the snapshot envelope.
    recovery::RecoveryManager prefix(ledger, nullptr);
    auto state = prefix.recover(factory);
    SeqNum half = blocks / 2;
    auto service = factory();
    runtime::ReplyCache cache;
    for (SeqNum s = 1; s <= half; ++s) {
      for (const Request& r : state->replayed[s - 1].block.requests) {
        cache.store(r.client, r.timestamp, s, 0, service->execute(as_span(r.op)));
      }
    }
    wal->record_checkpoint(
        state->replayed[half - 1].cert,
        as_span(runtime::encode_checkpoint_snapshot(as_span(service->snapshot()),
                                                    cache)));
  }

  recovery::RecoveryManager manager(ledger, wal);
  auto begin = std::chrono::steady_clock::now();
  auto recovered = manager.recover(factory);
  auto end = std::chrono::steady_clock::now();
  ReplayResult out;
  out.wall_ms = std::chrono::duration<double, std::milli>(end - begin).count();
  out.replayed = recovered ? recovered->replayed.size() : 0;
  out.replayed_bytes = recovered ? recovered->replayed_bytes : 0;
  return out;
}

/// Simulated rejoin: kill a backup under load, restart it, and measure the
/// virtual time from restart until it has caught back up with the cluster.
/// Runs on either protocol through the identical Cluster API.
double measure_rejoin_ms(ProtocolKind kind, sim::SimTime downtime_us) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.num_clients = 4;
  opts.requests_per_client = 0;  // free-running load
  opts.topology = sim::lan_topology();
  opts.seed = 17;
  opts.tweak_config = [](ProtocolConfig& config) { config.win = 32; };
  Cluster cluster(std::move(opts));
  cluster.run_for(1'000'000);
  cluster.crash_replica(3);
  cluster.run_for(downtime_us);
  cluster.restart_replica(3);
  sim::SimTime restarted_at = cluster.simulator().now();
  for (int i = 0; i < 600; ++i) {
    cluster.run_for(50'000);
    SeqNum cluster_le = 0;
    for (ReplicaId r = 1; r <= cluster.n(); ++r) {
      if (r != 3) cluster_le = std::max(cluster_le, cluster.replica(r).last_executed());
    }
    if (cluster.replica(3).last_executed() + 2 >= cluster_le) {
      return static_cast<double>(cluster.simulator().now() - restarted_at) / 1000.0;
    }
  }
  return -1.0;  // did not catch up
}

/// Snapshot-size sweep (docs/state_transfer.md): a wiped replica rejoins via
/// state transfer with either a small KV state or a large EVM state, under
/// the monolithic protocol (chunk_size = 0) and the chunked protocol.
/// Measures the virtual rejoin time plus the bytes state transfer put on the
/// wire, and surfaces the chunk counters the harness metrics now carry.
struct WipeRejoinResult {
  double rejoin_ms = -1.0;
  uint64_t snapshot_bytes = 0;     // envelope adopted by the wiped replica
  uint64_t wire_bytes = 0;         // state-transfer messages on the wire
  uint64_t chunks_fetched = 0;
  uint64_t chunks_served = 0;      // summed over donors
  uint64_t bytes_transferred = 0;  // fetcher-side chunk payload
  uint64_t resumes = 0;
};

uint64_t state_transfer_wire_bytes(Cluster& cluster) {
  const auto& stats = cluster.network().stats_by_type();
  auto bytes_of = [&](auto tag) { return stats[Message(decltype(tag){}).index()].bytes; };
  return bytes_of(StateTransferRequestMsg{}) + bytes_of(StateTransferReplyMsg{}) +
         bytes_of(StateManifestMsg{}) + bytes_of(StateChunkRequestMsg{}) +
         bytes_of(StateChunkMsg{});
}

WipeRejoinResult measure_wipe_rejoin(ProtocolKind kind, bool evm_state,
                                     uint32_t chunk_size) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.num_clients = 2;
  opts.requests_per_client = 0;  // free-running load
  // LAN latency, constrained uplinks (~40 Mbit/s): payload serialization
  // dominates the transfer, which is what the monolithic-vs-chunked
  // comparison is about (chunking fans the payload across donor uplinks).
  opts.topology = sim::lan_topology();
  opts.topology.bandwidth_bytes_per_us = 5.0;
  opts.seed = 31;
  if (evm_state) {
    opts.service_factory = [] { return std::make_unique<evm::EvmLedgerService>(); };
    opts.per_client_op_factory = [](ClientId id) {
      EthWorkloadOptions eth;
      eth.txs_per_request = 10;  // keep the interpreter cost bench-friendly
      return eth_op_factory(id, eth);
    };
  } else {
    opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
    KvWorkloadOptions kv;
    kv.key_space = 64;
    kv.value_size = 64;
    opts.op_factory = kv_op_factory(kv);
  }
  opts.tweak_config = [chunk_size](ProtocolConfig& config) {
    config.win = 32;
    config.state_transfer_chunk_size = chunk_size;
    config.state_transfer_retry_us = 200'000;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(1'500'000);  // build service state + stable checkpoints
  cluster.crash_replica(3);
  cluster.run_for(300'000);
  uint64_t wire_before = state_transfer_wire_bytes(cluster);
  cluster.restart_replica(3, /*wipe_storage=*/true);
  sim::SimTime restarted_at = cluster.simulator().now();

  WipeRejoinResult out;
  for (int i = 0; i < 5000; ++i) {
    if (cluster.replica(3).last_executed() > 0) {
      out.rejoin_ms =
          static_cast<double>(cluster.simulator().now() - restarted_at) / 1000.0;
      break;
    }
    cluster.run_for(2'000);
  }
  const runtime::RuntimeStats& st = cluster.replica(3).runtime_stats();
  out.snapshot_bytes = cluster.replica(3).runtime().checkpoints().snapshot().size();
  out.wire_bytes = state_transfer_wire_bytes(cluster) - wire_before;
  out.chunks_fetched = st.state_transfer_chunks_fetched;
  out.bytes_transferred = st.state_transfer_bytes_transferred;
  out.resumes = st.state_transfer_resumes;
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    if (r != 3) {
      out.chunks_served +=
          cluster.replica(r).runtime_stats().state_transfer_chunks_served;
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Delta sweep (docs/state_transfer.md "delta manifests"): a replica crashes
// for a bounded number of checkpoints, keeps its disk, and rejoins — with
// delta transfer on vs. forced full-chunked — under workloads whose steady
// state mutates a controlled fraction of the keyspace.

/// EVM workload with a bounded mutation set: each client deploys a token and
/// mints; the first `growth_requests` requests transfer to fresh accounts
/// (state grows), later requests transfer only among `hot_accounts` fixed
/// recipients — so between consecutive checkpoints in steady state only a
/// handful of balance slots (plus the sender's) mutate in a large ledger.
std::function<std::function<Bytes(uint64_t, Rng&)>(ClientId)> hot_eth_factory(
    uint32_t growth_requests, uint32_t hot_accounts) {
  return [=](ClientId id) {
    return [=](uint64_t request_index, Rng& rng) -> Bytes {
      evm::Address deployer = eth_account_of(90'000 + id);  // any unique address
      evm::Address token = evm::EvmLedgerService::derive_address(deployer, 0);
      evm::Address self = eth_account_of(id);
      auto word = [](const evm::Address& a) {
        return evm::U256::from_bytes_be(ByteSpan{a.data(), a.size()});
      };
      if (request_index == 0) {
        std::vector<Bytes> txs;
        txs.push_back(evm::encode_create({deployer, evm::token_contract()}));
        evm::CallTx mint;
        mint.sender = self;
        mint.contract = token;
        mint.calldata = evm::token_call_mint(word(self), evm::U256(1'000'000'000));
        txs.push_back(evm::encode_call(mint));
        return evm::encode_tx_batch(txs);
      }
      std::vector<Bytes> txs;
      for (uint32_t i = 0; i < 10; ++i) {
        uint64_t pool = request_index < growth_requests ? 1u << 20 : hot_accounts;
        evm::CallTx call;
        call.sender = self;
        call.contract = token;
        call.calldata = evm::token_call_transfer(
            word(eth_account_of(static_cast<ClientId>(rng.below(pool)))),
            evm::U256(1));
        txs.push_back(evm::encode_call(call));
      }
      return evm::encode_tx_batch(txs);
    };
  };
}

struct DeltaRejoinResult {
  double rejoin_ms = -1.0;
  uint64_t snapshot_bytes = 0;      // envelope held by the rejoined replica
  uint64_t bytes_transferred = 0;   // chunk payload fetched over the wire
  uint64_t delta_chunks_skipped = 0;
  uint64_t delta_bytes_saved = 0;
  uint64_t chunks_fetched = 0;
};

DeltaRejoinResult measure_delta_rejoin(ProtocolKind kind, bool evm_state,
                                       uint32_t hot, bool delta_enabled) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.num_clients = 2;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.topology.bandwidth_bytes_per_us = 5.0;
  opts.seed = 37;
  if (evm_state) {
    opts.service_factory = [] { return std::make_unique<evm::EvmLedgerService>(); };
    opts.per_client_op_factory = hot_eth_factory(/*growth_requests=*/60, hot);
  } else {
    // `hot / key_space` approximates the fraction of keys mutated between
    // consecutive checkpoints.
    opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
    opts.op_factory = hot_range_kv_op_factory(/*key_space=*/4096, hot,
                                              /*value_size=*/256,
                                              /*ops_per_request=*/16);
  }
  opts.tweak_config = [delta_enabled](ProtocolConfig& config) {
    config.win = 32;
    // Finer chunks than the wipe sweep: delta resolution is one chunk, so the
    // grid must be small next to the mutated working set.
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
    config.state_transfer_delta_enabled = delta_enabled;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'500'000);  // build state + steady-state checkpoints
  cluster.crash_replica(3);
  // Let the cluster seal exactly two more checkpoints, then restart with the
  // disk intact — the briefly-behind case the delta path is built for.
  SeqNum stable_at_crash = cluster.replica(1).last_stable();
  uint64_t interval = cluster.config().checkpoint_interval();
  for (int i = 0; i < 600; ++i) {
    if (cluster.replica(1).last_stable() >= stable_at_crash + 2 * interval) break;
    cluster.run_for(25'000);
  }
  cluster.restart_replica(3);
  sim::SimTime restarted_at = cluster.simulator().now();

  DeltaRejoinResult out;
  for (int i = 0; i < 2000; ++i) {
    if (cluster.replica(3).last_stable() > stable_at_crash) {
      out.rejoin_ms =
          static_cast<double>(cluster.simulator().now() - restarted_at) / 1000.0;
      break;
    }
    cluster.run_for(5'000);
  }
  const runtime::RuntimeStats& st = cluster.replica(3).runtime_stats();
  out.snapshot_bytes = cluster.replica(3).runtime().checkpoints().snapshot().size();
  out.bytes_transferred = st.state_transfer_bytes_transferred;
  out.delta_chunks_skipped = st.delta_chunks_skipped;
  out.delta_bytes_saved = st.delta_bytes_saved;
  out.chunks_fetched = st.state_transfer_chunks_fetched;
  return out;
}

// ---------------------------------------------------------------------------
// Group reconfiguration (docs/reconfiguration.md): grow 4 -> 7 (f 1 -> 2)
// with wiped joiners, then shrink back to 4 — the operable-service loop.

struct ReconfigResult {
  double join_ms = -1.0;          // reconfig submission -> every joiner joined
  uint64_t epochs_activated = 0;  // summed over all replicas, both epochs
  uint64_t joins_completed = 0;
  uint64_t joiner_wire_bytes = 0;  // snapshot payload fetched by the joiners
  bool removal_drained = false;    // removed replicas froze; cluster advanced
};

ReconfigResult measure_reconfig(ProtocolKind kind) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.num_clients = 2;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 71;
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(1'500'000);

  ReconfigResult out;
  ReplicaId a = cluster.add_replica();
  ReplicaId b = cluster.add_replica();
  ReplicaId c = cluster.add_replica();
  cluster.submit_reconfig({a, b, c}, {}, /*new_f=*/2);
  sim::SimTime submitted_at = cluster.simulator().now();
  for (int i = 0; i < 1200; ++i) {
    bool joined = true;
    for (ReplicaId r : {a, b, c}) {
      joined = joined && cluster.replica(r).runtime_stats().joins_completed == 1;
    }
    if (joined) {
      out.join_ms =
          static_cast<double>(cluster.simulator().now() - submitted_at) / 1000.0;
      break;
    }
    cluster.run_for(25'000);
  }
  if (out.join_ms < 0) return out;
  cluster.run_for(500'000);

  // Shrink back: the joiners leave, f returns to 1.
  cluster.submit_reconfig({}, {a, b, c}, /*new_f=*/1);
  for (int i = 0; i < 1200; ++i) {
    if (cluster.replica(1).runtime_stats().epochs_activated >= 2) break;
    cluster.run_for(25'000);
  }
  cluster.run_for(500'000);  // drain in-flight pre-epoch work
  SeqNum frozen = cluster.replica(a).last_executed();
  SeqNum before = cluster.replica(1).last_executed();
  cluster.run_for(1'500'000);
  out.removal_drained = cluster.replica(a).last_executed() == frozen &&
                        cluster.replica(1).last_executed() > before;

  for (ReplicaId r = 1; r <= cluster.num_replicas(); ++r) {
    const runtime::RuntimeStats& st = cluster.replica(r).runtime_stats();
    out.epochs_activated += st.epochs_activated;
    out.joins_completed += st.joins_completed;
  }
  for (ReplicaId r : {a, b, c}) {
    out.joiner_wire_bytes +=
        cluster.replica(r).runtime_stats().state_transfer_bytes_transferred;
  }
  return out;
}

/// WAL bytes written across a run of checkpoints under each compaction
/// policy, with a realistic in-flight window of votes ahead of the stable
/// sequence. Returns {incremental, full_rewrite}.
std::pair<uint64_t, uint64_t> measure_wal_compaction(SeqNum seqs, SeqNum window,
                                                     SeqNum interval,
                                                     size_t snapshot_bytes) {
  auto run = [&](recovery::WalCompaction policy) {
    std::string path =
        std::string("/tmp/sbft-recovery-bench-wal-") +
        (policy == recovery::WalCompaction::kIncremental ? "inc" : "full");
    std::remove(path.c_str());
    recovery::FileWal wal(path, policy);
    Digest d{};
    d.fill(0x42);
    const Bytes snap(snapshot_bytes, 0xab);
    for (SeqNum s = 1; s <= seqs; ++s) {
      wal.record_vote(s, 1, d);
      if (s % interval == 0 && s > window) {
        ExecCertificate cert;
        cert.seq = s - window;
        cert.state_root = d;
        cert.ops_root = d;
        cert.prev_exec_digest = d;
        wal.record_checkpoint(cert, as_span(snap));
      }
    }
    uint64_t written = wal.bytes_written();
    std::remove(path.c_str());
    return written;
  };
  return {run(recovery::WalCompaction::kIncremental),
          run(recovery::WalCompaction::kFullRewrite)};
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::printf("=== Recovery latency vs ledger length (§VIII durability) ===\n\n");
  std::printf("%10s %14s %12s %14s %14s\n", "blocks", "mode", "replayed",
              "bytes", "recover ms");
  std::vector<uint64_t> sizes =
      quick ? std::vector<uint64_t>{256, 1024} : std::vector<uint64_t>{256, 1024, 4096, 16384};
  if (!quick && bench_full_mode()) sizes.push_back(65536);
  for (uint64_t blocks : sizes) {
    for (bool snapshot : {false, true}) {
      ReplayResult r = measure_replay(blocks, snapshot);
      const char* mode = snapshot ? "snapshot+tail" : "full-replay";
      std::printf("%10llu %14s %12llu %14llu %14.2f\n",
                  static_cast<unsigned long long>(blocks), mode,
                  static_cast<unsigned long long>(r.replayed),
                  static_cast<unsigned long long>(r.replayed_bytes), r.wall_ms);
      std::printf("%s\n", JsonWriter()
                              .field("bench", "recovery_replay")
                              .field("ledger_blocks", blocks)
                              .field("mode", mode)
                              .field("replayed", r.replayed)
                              .field("replayed_bytes", r.replayed_bytes)
                              .field("recover_wall_ms", r.wall_ms)
                              .str()
                              .c_str());
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Simulated rejoin time vs downtime, per protocol (kill + "
              "restart under load) ===\n\n");
  std::printf("%10s %14s %16s\n", "protocol", "downtime ms", "rejoin ms");
  std::vector<sim::SimTime> downtimes =
      quick ? std::vector<sim::SimTime>{500'000, 2'000'000}
            : std::vector<sim::SimTime>{500'000, 2'000'000, 8'000'000};
  for (ProtocolKind kind : {ProtocolKind::kSbft, ProtocolKind::kPbft}) {
    for (sim::SimTime down : downtimes) {
      double rejoin = measure_rejoin_ms(kind, down);
      std::printf("%10s %14lld %16.1f\n", protocol_name(kind),
                  static_cast<long long>(down / 1000), rejoin);
      std::printf("%s\n", JsonWriter()
                              .field("bench", "recovery_rejoin")
                              .field("protocol", protocol_name(kind))
                              .field("downtime_ms", static_cast<int64_t>(down / 1000))
                              .field("rejoin_ms", rejoin)
                              .str()
                              .c_str());
      std::fflush(stdout);
    }
  }

  std::printf("\n=== Snapshot-size sweep: monolithic vs chunked state transfer "
              "(wiped-disk rejoin) ===\n\n");
  std::printf("%10s %10s %12s %14s %12s %12s %10s %10s\n", "protocol", "state",
              "mode", "snapshot B", "rejoin ms", "wire B", "fetched", "served");
  std::vector<ProtocolKind> sweep_kinds =
      quick ? std::vector<ProtocolKind>{ProtocolKind::kSbft}
            : std::vector<ProtocolKind>{ProtocolKind::kSbft, ProtocolKind::kPbft};
  for (ProtocolKind kind : sweep_kinds) {
    for (bool evm : {false, true}) {
      for (uint32_t chunk_size : {0u, 4096u}) {
        WipeRejoinResult r = measure_wipe_rejoin(kind, evm, chunk_size);
        const char* state = evm ? "evm-large" : "kv-small";
        const char* mode = chunk_size == 0 ? "monolithic" : "chunked";
        std::printf("%10s %10s %12s %14llu %12.1f %12llu %10llu %10llu\n",
                    protocol_name(kind), state, mode,
                    static_cast<unsigned long long>(r.snapshot_bytes),
                    r.rejoin_ms,
                    static_cast<unsigned long long>(r.wire_bytes),
                    static_cast<unsigned long long>(r.chunks_fetched),
                    static_cast<unsigned long long>(r.chunks_served));
        std::printf("%s\n", JsonWriter()
                                .field("bench", "state_transfer_sweep")
                                .field("protocol", protocol_name(kind))
                                .field("state", state)
                                .field("mode", mode)
                                .field("snapshot_bytes", r.snapshot_bytes)
                                .field("rejoin_ms", r.rejoin_ms)
                                .field("wire_bytes", r.wire_bytes)
                                .field("state_transfer_chunks_fetched", r.chunks_fetched)
                                .field("state_transfer_chunks_served", r.chunks_served)
                                .field("state_transfer_bytes_transferred",
                                       r.bytes_transferred)
                                .field("state_transfer_resumes", r.resumes)
                                .str()
                                .c_str());
        std::fflush(stdout);
        if (r.rejoin_ms < 0) {
          std::printf("FAIL: wiped replica never rejoined (%s, %s, %s)\n",
                      protocol_name(kind), state, mode);
          return 1;
        }
      }
    }
  }

  std::printf("\n=== Delta state transfer: briefly-behind rejoin, delta vs "
              "full-chunked (mutation fraction x state) ===\n\n");
  std::printf("%10s %10s %10s %8s %14s %12s %12s %10s\n", "protocol", "state",
              "mutation", "mode", "snapshot B", "wire B", "saved B", "skipped");
  struct DeltaCase {
    bool evm;
    uint32_t hot;
    const char* state;
    const char* mutation;
  };
  std::vector<DeltaCase> delta_cases =
      quick ? std::vector<DeltaCase>{{false, 32, "kv-large", "low"},
                                     {true, 8, "evm-large", "low"}}
            : std::vector<DeltaCase>{{false, 32, "kv-large", "low"},
                                     {false, 2048, "kv-large", "high"},
                                     {true, 8, "evm-large", "low"}};
  bool delta_criterion_ok = true;
  for (ProtocolKind kind : sweep_kinds) {
    for (const DeltaCase& c : delta_cases) {
      DeltaRejoinResult full = measure_delta_rejoin(kind, c.evm, c.hot,
                                                    /*delta_enabled=*/false);
      DeltaRejoinResult delta = measure_delta_rejoin(kind, c.evm, c.hot,
                                                     /*delta_enabled=*/true);
      for (const auto& [mode, r] :
           {std::pair<const char*, const DeltaRejoinResult&>{"full", full},
            {"delta", delta}}) {
        std::printf("%10s %10s %10s %8s %14llu %12llu %12llu %10llu\n",
                    protocol_name(kind), c.state, c.mutation, mode,
                    static_cast<unsigned long long>(r.snapshot_bytes),
                    static_cast<unsigned long long>(r.bytes_transferred),
                    static_cast<unsigned long long>(r.delta_bytes_saved),
                    static_cast<unsigned long long>(r.delta_chunks_skipped));
        std::printf("%s\n", JsonWriter()
                                .field("bench", "delta_state_transfer")
                                .field("protocol", protocol_name(kind))
                                .field("state", c.state)
                                .field("mutation", c.mutation)
                                .field("mode", mode)
                                .field("snapshot_bytes", r.snapshot_bytes)
                                .field("rejoin_ms", r.rejoin_ms)
                                .field("state_transfer_bytes_transferred",
                                       r.bytes_transferred)
                                .field("state_transfer_chunks_fetched", r.chunks_fetched)
                                .field("delta_chunks_skipped", r.delta_chunks_skipped)
                                .field("delta_bytes_saved", r.delta_bytes_saved)
                                .str()
                                .c_str());
        std::fflush(stdout);
        if (r.rejoin_ms < 0) {
          std::printf("FAIL: briefly-behind replica never rejoined (%s, %s, "
                      "%s, %s)\n",
                      protocol_name(kind), c.state, c.mutation, mode);
          return 1;
        }
      }
      // The headline criterion: with a low mutation fraction, a delta rejoin
      // must move at most 25%% of the bytes of a full chunked rejoin.
      if (std::string(c.mutation) == "low" &&
          delta.bytes_transferred * 4 > full.bytes_transferred) {
        delta_criterion_ok = false;
        std::printf("FAIL: delta rejoin moved %llu bytes, full moved %llu "
                    "(%s, %s) — expected <= 25%%\n",
                    static_cast<unsigned long long>(delta.bytes_transferred),
                    static_cast<unsigned long long>(full.bytes_transferred),
                    protocol_name(kind), c.state);
      }
    }
  }
  if (!delta_criterion_ok) return 1;

  std::printf("\n=== Group reconfiguration: grow 4 -> 7 (f 1 -> 2) with wiped "
              "joiners, then shrink back ===\n\n");
  std::printf("%10s %12s %10s %10s %14s %10s\n", "protocol", "join ms",
              "epochs", "joins", "joiner wire B", "drained");
  for (ProtocolKind kind : sweep_kinds) {
    ReconfigResult r = measure_reconfig(kind);
    std::printf("%10s %12.1f %10llu %10llu %14llu %10s\n", protocol_name(kind),
                r.join_ms, static_cast<unsigned long long>(r.epochs_activated),
                static_cast<unsigned long long>(r.joins_completed),
                static_cast<unsigned long long>(r.joiner_wire_bytes),
                r.removal_drained ? "yes" : "NO");
    std::printf("%s\n", JsonWriter()
                            .field("bench", "reconfiguration")
                            .field("protocol", protocol_name(kind))
                            .field("join_ms", r.join_ms)
                            .field("epochs_activated", r.epochs_activated)
                            .field("joins_completed", r.joins_completed)
                            .field("joiner_wire_bytes", r.joiner_wire_bytes)
                            .field_raw("removal_drained",
                                       r.removal_drained ? "true" : "false")
                            .str()
                            .c_str());
    std::fflush(stdout);
    if (r.join_ms < 0 || r.joins_completed < 3 || !r.removal_drained) {
      std::printf("FAIL: reconfiguration cycle broke on %s (join_ms=%.1f, "
                  "joins=%llu, drained=%d)\n",
                  protocol_name(kind), r.join_ms,
                  static_cast<unsigned long long>(r.joins_completed),
                  r.removal_drained ? 1 : 0);
      return 1;
    }
  }

  std::printf("\n=== WAL compaction policy (bytes written across %s run) ===\n\n",
              quick ? "a quick" : "a full");
  auto [inc_bytes, full_bytes] =
      measure_wal_compaction(quick ? 512 : 4096, /*window=*/256, /*interval=*/16,
                             /*snapshot_bytes=*/256);
  std::printf("%16s %16s %10s\n", "incremental", "full-rewrite", "ratio");
  std::printf("%16llu %16llu %9.2fx\n",
              static_cast<unsigned long long>(inc_bytes),
              static_cast<unsigned long long>(full_bytes),
              inc_bytes > 0 ? static_cast<double>(full_bytes) /
                                  static_cast<double>(inc_bytes)
                            : 0.0);
  std::printf("%s\n", JsonWriter()
                          .field("bench", "wal_compaction")
                          .field("incremental_bytes", inc_bytes)
                          .field("full_rewrite_bytes", full_bytes)
                          .str()
                          .c_str());
  if (inc_bytes >= full_bytes) {
    std::printf("FAIL: incremental compaction wrote >= bytes than full "
                "rewrite\n");
    return 1;
  }

  std::printf("\nExpected: full replay grows linearly with ledger length; the "
              "snapshot halves the replayed suffix. Rejoin time is dominated "
              "by replay plus one state-transfer round when the cluster's "
              "checkpoint moved past the local log; PBFT and SBFT recover "
              "through the same runtime so their curves are comparable. "
              "Incremental WAL compaction writes strictly fewer bytes than "
              "rewriting the log at every checkpoint. In the snapshot sweep, "
              "chunking adds a small per-chunk proof overhead on the wire but "
              "fans the payload out across every donor's uplink, so large "
              "(EVM) snapshots rejoin faster chunked than monolithic — and "
              "only the chunked path can resume after donor loss. In the "
              "delta sweep, a briefly-behind replica under a low mutation "
              "fraction seeds almost every chunk from the checkpoint it "
              "already holds: the wire bytes collapse to the mutated "
              "working set (<= 25%% of a full chunked rejoin, asserted "
              "above) and the rejoin time follows. The reconfiguration cycle "
              "shows an operable service: joiners bootstrap as wiped "
              "fetchers, the epoch flips at a checkpoint boundary, and "
              "removed replicas drain without disturbing the survivors.\n");
  return 0;
}
