// Figure 2 reproduction: throughput (operations/second) vs number of clients,
// for the five protocols, in six panels: {no failures, 8 failures, 64
// failures} x {batch=64, no batching}. All points withstand f=64 Byzantine
// failures on the continent-scale WAN (§IX, "Key-Value benchmark").
//
// Defaults run a reduced-but-representative grid; SBFT_BENCH_FULL=1 runs the
// paper's full client sweep. Results are cached and shared with
// fig3_latency.
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

struct ProtocolSpec {
  ProtocolKind kind;
  uint32_t c;
  const char* label;
};

const ProtocolSpec kProtocols[] = {
    {ProtocolKind::kPbft, 0, "PBFT"},
    {ProtocolKind::kLinearPbft, 0, "Linear-PBFT"},
    {ProtocolKind::kLinearPbftFast, 0, "Linear-PBFT+Fast"},
    {ProtocolKind::kSbft, 0, "SBFT(c=0)"},
    {ProtocolKind::kSbft, 8, "SBFT(c=8)"},
};

}  // namespace

int main() {
  const uint32_t f = 64;
  const std::vector<uint32_t> clients = bench_client_grid();
  const std::vector<uint32_t> failures = {0, 8, 64};
  const std::vector<uint32_t> batches = {64, 1};

  std::printf("=== Figure 2: throughput (ops/s) vs clients — f=%u, continent "
              "WAN ===\n", f);
  std::printf("(reduced grid by default; SBFT_BENCH_FULL=1 for the paper's "
              "full sweep)\n\n");

  for (uint32_t batch : batches) {
    for (uint32_t crashed : failures) {
      std::printf("--- panel: %s, %u failures ---\n",
                  batch > 1 ? "batch=64" : "no batch", crashed);
      std::printf("%-18s", "clients");
      for (uint32_t c : clients) std::printf("%10u", c);
      std::printf("\n");
      for (const ProtocolSpec& proto : kProtocols) {
        std::printf("%-18s", proto.label);
        for (uint32_t num_clients : clients) {
          ExperimentPoint point;
          point.kind = proto.kind;
          point.f = f;
          point.c = proto.c;
          point.num_clients = num_clients;
          point.ops_per_request = batch;
          point.crash_replicas = crashed;
          point.warmup_us = 800'000;
          point.measure_us = bench_full_mode() ? 4'000'000 : 1'200'000;
          ExperimentResult r = run_point_cached(point);
          std::printf("%10.0f", r.metrics.ops_per_second);
          if (!r.agreement_ok) std::printf("!!AGREEMENT VIOLATION!!");
          std::fflush(stdout);
        }
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  std::printf("Paper shape to match (batch=64, no failures, 256 clients): "
              "SBFT ~2x PBFT throughput; fast path > Linear-PBFT > PBFT; "
              "c=8 best under 8 failures.\n");
  return 0;
}
