// Figure 2 reproduction: throughput (operations/second) vs number of clients,
// for the five protocols, in six panels: {no failures, 8 failures, 64
// failures} x {batch=64, no batching}. All points withstand f=64 Byzantine
// failures on the continent-scale WAN (§IX, "Key-Value benchmark").
//
// Also sweeps the multi-core lane model (docs/performance.md): a
// batch x window x cores grid, plus the paper-scale SBFT f=64 pair that
// asserts cores=8 delivers >= 3x the throughput of cores=1 under saturating
// clients (the §VIII parallelized-crypto claim). Every point additionally
// emits one JSON line (grep '^{') with the knobs and the per-lane CPU
// counters; CI runs `--quick` and guards those fields.
//
// Defaults run a reduced-but-representative grid; SBFT_BENCH_FULL=1 runs the
// paper's full client sweep. Results are cached and shared with
// fig3_latency.
#include <cstdio>
#include <cstring>
#include <vector>

#include "harness/experiment.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

struct ProtocolSpec {
  ProtocolKind kind;
  uint32_t c;
  const char* label;
};

const ProtocolSpec kProtocols[] = {
    {ProtocolKind::kPbft, 0, "PBFT"},
    {ProtocolKind::kLinearPbft, 0, "Linear-PBFT"},
    {ProtocolKind::kLinearPbftFast, 0, "Linear-PBFT+Fast"},
    {ProtocolKind::kSbft, 0, "SBFT(c=0)"},
    {ProtocolKind::kSbft, 8, "SBFT(c=8)"},
};

// Runs one point and emits its JSON line (knobs + lane counters). The JSON
// reports the *effective* window/batch so rows with the 0 = "keep default"
// sentinel stay comparable with explicit overrides.
ExperimentResult run_and_emit(const ExperimentPoint& point, const char* label) {
  ExperimentResult r = run_point_cached(point);
  const obs::MetricsRegistry& reg = r.metrics.registry;
  std::printf(
      "%s\n",
      JsonWriter()
          .field("bench", "fig2_throughput")
          .field("protocol", label)
          .field("f", static_cast<uint64_t>(point.f))
          .field("c", static_cast<uint64_t>(point.c))
          .field("clients", static_cast<uint64_t>(point.num_clients))
          .field("ops_per_request", static_cast<uint64_t>(point.ops_per_request))
          .field("batch", static_cast<uint64_t>(point.max_batch > 0 ? point.max_batch : 64))
          .field("window", static_cast<uint64_t>(point.window > 0 ? point.window : 256))
          .field("cores", static_cast<uint64_t>(point.cores > 0 ? point.cores : 1))
          .field("crash_replicas", static_cast<uint64_t>(point.crash_replicas))
          .field("adaptive", static_cast<int64_t>(point.adaptive))
          .field("requests_per_second", r.metrics.requests_per_second)
          .field("ops_per_second", r.metrics.ops_per_second)
          .field("median_latency_ms", r.metrics.latency.median_ms)
          .field("fast_ack_fraction", r.metrics.fast_ack_fraction)
          .field("cpu_lane0_used_us", reg.value("cpu_lane0_used_us"))
          .field("cpu_worker_used_us", reg.value("cpu_worker_used_us"))
          .field("cpu_offloads_run", reg.value("cpu_offloads_run"))
          .field("agreement_ok", static_cast<uint64_t>(r.agreement_ok ? 1 : 0))
          .str()
          .c_str());
  std::fflush(stdout);
  return r;
}

void classic_panels() {
  const uint32_t f = 64;
  const std::vector<uint32_t> clients = bench_client_grid();
  const std::vector<uint32_t> failures = {0, 8, 64};
  const std::vector<uint32_t> batches = {64, 1};

  for (uint32_t batch : batches) {
    for (uint32_t crashed : failures) {
      std::printf("--- panel: %s, %u failures ---\n",
                  batch > 1 ? "batch=64" : "no batch", crashed);
      std::printf("%-18s", "clients");
      for (uint32_t c : clients) std::printf("%10u", c);
      std::printf("\n");
      for (const ProtocolSpec& proto : kProtocols) {
        std::printf("%-18s", proto.label);
        std::vector<ExperimentResult> row;
        for (uint32_t num_clients : clients) {
          ExperimentPoint point;
          point.kind = proto.kind;
          point.f = f;
          point.c = proto.c;
          point.num_clients = num_clients;
          point.ops_per_request = batch;
          point.crash_replicas = crashed;
          point.warmup_us = 800'000;
          point.measure_us = bench_full_mode() ? 4'000'000 : 1'200'000;
          ExperimentResult r = run_point_cached(point);
          row.push_back(r);
          std::printf("%10.0f", r.metrics.ops_per_second);
          if (!r.agreement_ok) std::printf("!!AGREEMENT VIOLATION!!");
          std::fflush(stdout);
        }
        std::printf("\n");
        // JSON rows after the text row so the panel table stays readable.
        for (size_t i = 0; i < clients.size(); ++i) {
          ExperimentPoint point;
          point.kind = proto.kind;
          point.f = f;
          point.c = proto.c;
          point.num_clients = clients[i];
          point.ops_per_request = batch;
          point.crash_replicas = crashed;
          point.warmup_us = 800'000;
          point.measure_us = bench_full_mode() ? 4'000'000 : 1'200'000;
          run_and_emit(point, proto.label);  // cache hit: already ran above
        }
      }
      std::printf("\n");
    }
  }
  std::printf("Paper shape to match (batch=64, no failures, 256 clients): "
              "SBFT ~2x PBFT throughput; fast path > Linear-PBFT > PBFT; "
              "c=8 best under 8 failures.\n\n");
}

// batch x window x cores grid: how the lane count interacts with pipelining
// (win) and request batching (max_batch). Quick mode shrinks the grid and f
// so CI stays fast; full mode runs f=64 at paper scale.
void cores_grid(bool quick) {
  const uint32_t f = quick ? 4 : 64;
  const uint32_t clients = quick ? 64 : 256;
  std::vector<uint32_t> cores_grid = quick ? std::vector<uint32_t>{1, 2, 8}
                                           : std::vector<uint32_t>{1, 2, 4, 8};
  std::vector<uint32_t> batch_grid = quick ? std::vector<uint32_t>{16, 64}
                                           : std::vector<uint32_t>{8, 16, 64};
  std::vector<uint64_t> window_grid = quick ? std::vector<uint64_t>{64, 256}
                                            : std::vector<uint64_t>{16, 64, 256};

  std::printf("=== Multi-core lanes: batch x window x cores (f=%u, %u clients, "
              "SBFT c=0) ===\n\n", f, clients);
  std::printf("%8s %8s %8s %14s %14s %16s\n", "batch", "window", "cores",
              "ops/s", "median ms", "worker cpu ms");
  for (uint32_t batch : batch_grid) {
    for (uint64_t window : window_grid) {
      for (uint32_t cores : cores_grid) {
        ExperimentPoint point;
        point.kind = ProtocolKind::kSbft;
        point.f = f;
        point.num_clients = clients;
        point.ops_per_request = 1;
        point.max_batch = batch;
        point.window = window;
        point.cores = cores;
        point.warmup_us = 500'000;
        point.measure_us = quick ? 1'000'000 : 2'000'000;
        ExperimentResult r = run_and_emit(point, "SBFT(c=0)");
        std::printf("%8u %8llu %8u %14.0f %14.2f %16.1f\n", batch,
                    static_cast<unsigned long long>(window), cores,
                    r.metrics.ops_per_second, r.metrics.latency.median_ms,
                    static_cast<double>(
                        r.metrics.registry.value("cpu_worker_used_us")) /
                        1000.0);
        std::fflush(stdout);
      }
    }
  }
  std::printf("\n");
}

// The acceptance pair: SBFT at paper scale (f=64, n=193), batch=64,
// saturating closed-loop clients. cores=8 must deliver >= 3x the cores=1
// throughput — the whole point of offloading signature verification to
// worker lanes is that the serial lane stops being the bottleneck.
bool paper_scale_pair(bool quick) {
  const uint32_t kClients = 2048;
  double ops[2] = {0, 0};
  const uint32_t cores_pair[2] = {1, 8};
  std::printf("=== Paper scale: SBFT f=64, batch=64, %u clients, cores 1 vs 8 "
              "===\n\n", kClients);
  std::printf("%8s %14s %14s %16s %16s\n", "cores", "ops/s", "median ms",
              "lane0 cpu ms", "worker cpu ms");
  for (int i = 0; i < 2; ++i) {
    ExperimentPoint point;
    point.kind = ProtocolKind::kSbft;
    point.f = 64;
    point.num_clients = kClients;
    point.ops_per_request = 1;
    point.max_batch = 64;
    point.cores = cores_pair[i];
    point.warmup_us = 600'000;
    point.measure_us = quick ? 1'500'000 : 3'000'000;
    ExperimentResult r = run_and_emit(point, "SBFT(c=0)");
    ops[i] = r.metrics.ops_per_second;
    std::printf("%8u %14.0f %14.2f %16.1f %16.1f\n", cores_pair[i],
                r.metrics.ops_per_second, r.metrics.latency.median_ms,
                static_cast<double>(
                    r.metrics.registry.value("cpu_lane0_used_us")) / 1000.0,
                static_cast<double>(
                    r.metrics.registry.value("cpu_worker_used_us")) / 1000.0);
    std::fflush(stdout);
  }
  double ratio = ops[0] > 0 ? ops[1] / ops[0] : 0;
  std::printf("\ncores=8 / cores=1 throughput ratio: %.2fx (require >= 3x)\n\n",
              ratio);
  if (ratio < 3.0) {
    std::printf("FAIL: multi-core speedup below 3x\n");
    return false;
  }
  return true;
}

// Adaptive vs static batching (§VIII): for each protocol, sweep static batch
// sizes with the controller forced off, then run the adaptive controller with
// the same cap. The controller must land within 10% of the best hand-tuned
// static point — the paper's claim is that the adaptive parameter removes the
// need to tune the batch size per deployment.
bool adaptive_vs_static(bool quick) {
  const uint32_t f = quick ? 4 : 16;
  const uint32_t clients = quick ? 64 : 128;
  const std::vector<uint32_t> static_batches = {1, 16, 64};
  struct Pair { ProtocolKind kind; const char* label; };
  const Pair pairs[] = {
      {ProtocolKind::kSbft, "SBFT(c=0)"},
      {ProtocolKind::kPbft, "PBFT"},
  };

  std::printf("=== Adaptive vs static batching (f=%u, %u clients) ===\n\n", f,
              clients);
  std::printf("%12s %10s %14s %14s\n", "protocol", "batch", "ops/s",
              "median ms");
  bool ok = true;
  for (const Pair& p : pairs) {
    double best_static = 0;
    auto base_point = [&] {
      ExperimentPoint point;
      point.kind = p.kind;
      point.f = f;
      point.num_clients = clients;
      point.ops_per_request = 1;
      point.warmup_us = 500'000;
      point.measure_us = quick ? 1'000'000 : 2'000'000;
      return point;
    };
    for (uint32_t batch : static_batches) {
      ExperimentPoint point = base_point();
      point.max_batch = batch;
      point.adaptive = 0;
      ExperimentResult r = run_and_emit(point, p.label);
      best_static = std::max(best_static, r.metrics.ops_per_second);
      std::printf("%12s %10u %14.0f %14.2f\n", p.label, batch,
                  r.metrics.ops_per_second, r.metrics.latency.median_ms);
    }
    ExperimentPoint point = base_point();
    point.max_batch = 64;
    point.adaptive = 1;
    ExperimentResult r = run_and_emit(point, p.label);
    std::printf("%12s %10s %14.0f %14.2f\n", p.label, "adaptive",
                r.metrics.ops_per_second, r.metrics.latency.median_ms);
    double ratio = best_static > 0 ? r.metrics.ops_per_second / best_static : 0;
    std::printf("%12s adaptive / best-static ratio: %.2fx (require >= 0.9x)\n\n",
                p.label, ratio);
    if (ratio < 0.9) {
      std::printf("FAIL: %s adaptive batching below 0.9x of best static\n",
                  p.label);
      ok = false;
    }
    std::fflush(stdout);
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  std::printf("=== Figure 2: throughput (ops/s) vs clients — f=64, continent "
              "WAN ===\n");
  std::printf("(reduced grid by default; SBFT_BENCH_FULL=1 for the paper's "
              "full sweep; --quick for the CI subset)\n\n");

  if (!quick) classic_panels();
  cores_grid(quick);
  bool ok = paper_scale_pair(quick);
  ok = adaptive_vs_static(quick) && ok;
  return ok ? 0 : 1;
}
