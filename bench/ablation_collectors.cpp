// Ablation: redundant collectors (ingredient 4). Sweeps c under straggler
// faults, showing how c+1 collectors keep the fast path alive and improve
// the latency/throughput trade-off — the paper's heuristic is c <= f/8 (§I).
#include <cstdio>
#include <vector>

#include "harness/experiment.h"

using namespace sbft;
using namespace sbft::harness;

int main() {
  const bool full = bench_full_mode();
  const uint32_t f = full ? 64 : 16;
  std::vector<uint32_t> cs = full ? std::vector<uint32_t>{0, 1, 2, 8, 16}
                                  : std::vector<uint32_t>{0, 1, 2, 4};

  std::printf("=== Ablation: redundant servers/collectors (c sweep), f=%u, "
              "continent WAN ===\n\n", f);
  std::printf("%6s %6s %10s %14s %14s %12s %12s\n", "c", "n", "stragglers",
              "ops/s", "median ms", "fast", "slow");

  for (uint32_t stragglers : {0u, 2u}) {
    for (uint32_t c : cs) {
      ExperimentPoint point;
      point.kind = ProtocolKind::kSbft;
      point.f = f;
      point.c = c;
      point.num_clients = 64;
      point.ops_per_request = 64;
      point.straggler_replicas = stragglers;
      point.warmup_us = 1'000'000;
      point.measure_us = full ? 4'000'000 : 2'000'000;
      ExperimentResult r = run_point_cached(point);
      std::printf("%6u %6u %10u %14.0f %14.0f %12llu %12llu%s\n", c,
                  3 * f + 2 * c + 1, stragglers, r.metrics.ops_per_second,
                  r.metrics.latency.median_ms,
                  static_cast<unsigned long long>(r.metrics.counter("fast_commits")),
                  static_cast<unsigned long long>(r.metrics.counter("slow_commits")),
                  r.agreement_ok ? "" : "  !!AGREEMENT VIOLATION!!");
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  std::printf("Expected: with stragglers, c=0 falls off the fast path (slow "
              "commits dominate, latency jumps); small c restores it at "
              "modest extra replication.\n");
  return 0;
}
