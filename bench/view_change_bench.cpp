// View-change cost at scale (§V-G, §VII): crash the primary under load and
// measure how long the cluster takes to elect the next view and resume
// executing, across cluster sizes.
#include <cstdio>
#include <vector>

#include "harness/cluster.h"
#include "harness/experiment.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

struct VcResult {
  double recovery_ms;  // crash -> first post-crash execution progress
  uint64_t view_changes;
  bool recovered;
  bool agreement;
};

VcResult measure(uint32_t f, uint32_t c) {
  ClusterOptions opts;
  opts.kind = ProtocolKind::kSbft;
  opts.f = f;
  opts.c = c;
  opts.num_clients = 8;
  opts.requests_per_client = 0;
  opts.topology = sim::continent_topology();
  opts.seed = 23;
  opts.tweak_config = [](ProtocolConfig& config) {
    config.view_change_timeout_us = 500'000;  // brisk demo timer
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'000'000);
  SeqNum before = cluster.max_executed();
  sim::SimTime crash_at = cluster.simulator().now();
  cluster.network().crash(0);  // primary of view 0

  VcResult out{0, 0, false, true};
  while (cluster.simulator().now() < crash_at + 60'000'000) {
    cluster.run_for(100'000);
    // Recovered when a non-crashed replica executed past the pre-crash mark.
    SeqNum now_hi = 0;
    for (ReplicaId r = 2; r <= cluster.n(); ++r) {
      now_hi = std::max(now_hi, cluster.sbft_replica(r)->last_executed());
    }
    if (now_hi > before + 2) {
      out.recovered = true;
      break;
    }
  }
  out.recovery_ms =
      static_cast<double>(cluster.simulator().now() - crash_at) / 1000.0;
  out.view_changes = cluster.total_view_changes();
  out.agreement = cluster.check_agreement();
  return out;
}

}  // namespace

int main() {
  std::printf("=== View change under primary crash (§V-G): recovery time vs "
              "cluster size ===\n\n");
  std::printf("%6s %6s %6s %16s %14s %10s\n", "f", "c", "n", "recovery ms",
              "view changes", "safe");
  std::vector<std::pair<uint32_t, uint32_t>> sizes = {{1, 0}, {2, 0}, {4, 1},
                                                      {8, 1}};
  if (bench_full_mode()) sizes.push_back({16, 2});
  for (auto [f, c] : sizes) {
    VcResult r = measure(f, c);
    std::printf("%6u %6u %6u %16.0f %14llu %10s%s\n", f, c, 3 * f + 2 * c + 1,
                r.recovery_ms, static_cast<unsigned long long>(r.view_changes),
                r.agreement ? "yes" : "NO",
                r.recovered ? "" : "  !!DID NOT RECOVER!!");
    std::fflush(stdout);
  }
  std::printf("\nExpected: recovery dominated by the failure-detection timer "
              "plus one view-change round; grows mildly with n (linear "
              "message complexity), never quadratically.\n");
  return 0;
}
