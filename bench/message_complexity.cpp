// Linearity audit (Fig. 1 / §II "Linearity"): messages per committed
// operation as the cluster grows. PBFT's all-to-all rounds grow
// quadratically with n; SBFT's collector pattern stays linear, and the
// execution collector gives each client a single acknowledgement message.
#include <cstdio>
#include <vector>

#include "harness/cluster.h"
#include "harness/experiment.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

struct Audit {
  double msgs_per_request;
  double bytes_per_request;
  double acks_per_request;  // messages from replicas to clients
};

Audit audit(ProtocolKind kind, uint32_t f, uint32_t c) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = f;
  opts.c = c;
  opts.num_clients = 4;
  opts.requests_per_client = 25;
  opts.topology = sim::lan_topology();
  opts.seed = 17;
  Cluster cluster(std::move(opts));
  if (!cluster.run_until_done(600'000'000)) {
    std::printf("!!INCOMPLETE RUN!!\n");
  }
  if (!cluster.check_agreement()) std::printf("!!AGREEMENT VIOLATION!!\n");

  uint64_t requests = 0;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    requests += cluster.client(i).completed();
  }
  auto& stats = cluster.network().stats_by_type();
  auto totals = cluster.network().total_stats();
  // Client-facing acknowledgements: execute-ack + client-reply.
  auto type_index = [](auto tag) {
    return Message(decltype(tag){}).index();
  };
  uint64_t acks = stats[type_index(ExecuteAckMsg{})].count +
                  stats[type_index(ClientReplyMsg{})].count;
  Audit out;
  out.msgs_per_request = static_cast<double>(totals.count) / requests;
  out.bytes_per_request = static_cast<double>(totals.bytes) / requests;
  out.acks_per_request = static_cast<double>(acks) / requests;
  return out;
}

}  // namespace

int main() {
  std::printf("=== Message complexity per committed request (Fig. 1 / §II "
              "Linearity) ===\n\n");
  std::vector<uint32_t> fs = {1, 2, 4, 8};
  if (bench_full_mode()) fs = {1, 2, 4, 8, 16, 32, 64};

  std::printf("%-22s", "protocol \\ n");
  for (uint32_t f : fs) std::printf("%12u", 3 * f + 1);
  std::printf("\n");

  struct Spec {
    ProtocolKind kind;
    uint32_t c;
    const char* label;
  };
  const Spec specs[] = {
      {ProtocolKind::kPbft, 0, "PBFT msgs/req"},
      {ProtocolKind::kLinearPbft, 0, "Linear-PBFT msgs/req"},
      {ProtocolKind::kSbft, 0, "SBFT msgs/req"},
  };
  std::vector<std::vector<Audit>> audits(std::size(specs));
  for (size_t s = 0; s < std::size(specs); ++s) {
    std::printf("%-22s", specs[s].label);
    for (uint32_t f : fs) {
      Audit a = audit(specs[s].kind, f, specs[s].c);
      audits[s].push_back(a);
      std::printf("%12.1f", a.msgs_per_request);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\n%-22s", "SBFT client acks/req");
  for (size_t i = 0; i < fs.size(); ++i)
    std::printf("%12.2f", audits[2][i].acks_per_request);
  std::printf("\n%-22s", "PBFT client acks/req");
  for (size_t i = 0; i < fs.size(); ++i)
    std::printf("%12.2f", audits[0][i].acks_per_request);

  // Growth factors: quadratic protocols scale ~ (n2/n1)^2 between sizes.
  std::printf("\n\ngrowth from n=%u to n=%u:  PBFT %.1fx,  Linear-PBFT %.1fx,  "
              "SBFT %.1fx  (n ratio %.1fx)\n",
              3 * fs.front() + 1, 3 * fs.back() + 1,
              audits[0].back().msgs_per_request / audits[0].front().msgs_per_request,
              audits[1].back().msgs_per_request / audits[1].front().msgs_per_request,
              audits[2].back().msgs_per_request / audits[2].front().msgs_per_request,
              static_cast<double>(3 * fs.back() + 1) / (3 * fs.front() + 1));
  std::printf("Expected: PBFT grows ~quadratically; Linear-PBFT/SBFT grow "
              "~linearly; SBFT clients receive ~1 ack vs PBFT's >= f+1.\n");
  return 0;
}
