// Protocol-agnostic replica runtime: reply-cache persistence across
// checkpoints (including the non-idempotent EVM-transfer re-execution
// hazard), the checkpoint snapshot envelope, seed-bug regressions, and the
// cross-protocol crash→recover→rejoin scenario family — every simulated
// scenario here runs on both SBFT and the PBFT baseline through the
// identical Cluster API.
#include <gtest/gtest.h>

#include "evm/contracts.h"
#include "evm/evm_service.h"
#include "harness/cluster.h"
#include "harness/workload.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "runtime/checkpoint_manager.h"
#include "runtime/reply_cache.h"
#include "runtime/replica_runtime.h"
#include "runtime/snapshot.h"
#include "storage/ledger_storage.h"

// ---------------------------------------------------------------------------
// ReplyCache + snapshot envelope

namespace sbft::runtime {
namespace {

TEST(ReplyCache, StoresAndServesNewestPerClient) {
  ReplyCache cache;
  EXPECT_FALSE(cache.is_duplicate(7, 1));
  cache.store(7, 1, 10, 0, to_bytes("a"));
  cache.store(7, 3, 12, 1, to_bytes("b"));
  EXPECT_TRUE(cache.is_duplicate(7, 1));  // watermark covers older timestamps
  EXPECT_TRUE(cache.is_duplicate(7, 3));
  EXPECT_FALSE(cache.is_duplicate(7, 4));
  ASSERT_NE(cache.find(7), nullptr);
  EXPECT_EQ(cache.find(7)->value, to_bytes("b"));
  EXPECT_EQ(cache.find(7)->seq, 12u);
  // A stale store must never regress the watermark.
  cache.store(7, 2, 11, 0, to_bytes("stale"));
  EXPECT_EQ(cache.find(7)->timestamp, 3u);
  EXPECT_EQ(cache.find(7)->value, to_bytes("b"));
}

TEST(ReplyCache, EncodeDecodeRoundTrip) {
  ReplyCache cache;
  cache.store(4, 9, 3, 2, to_bytes("val-4"));
  cache.store(900, 1, 1, 0, Bytes{});
  auto decoded = ReplyCache::decode(as_span(cache.encode()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 2u);
  ASSERT_NE(decoded->find(4), nullptr);
  EXPECT_EQ(decoded->find(4)->timestamp, 9u);
  EXPECT_EQ(decoded->find(4)->index, 2u);
  EXPECT_EQ(decoded->find(4)->value, to_bytes("val-4"));
  ASSERT_NE(decoded->find(900), nullptr);
  EXPECT_TRUE(decoded->find(900)->value.empty());
}

TEST(ReplyCache, DecodeRejectsMalformed) {
  EXPECT_FALSE(ReplyCache::decode(as_span(to_bytes("garbage"))).has_value());
  ReplyCache cache;
  cache.store(1, 1, 1, 0, to_bytes("x"));
  Bytes encoded = cache.encode();
  encoded.pop_back();  // truncated value
  EXPECT_FALSE(ReplyCache::decode(as_span(encoded)).has_value());
}

TEST(CheckpointSnapshot, EnvelopeRoundTrip) {
  ReplyCache cache;
  cache.store(11, 5, 2, 0, to_bytes("r"));
  Bytes envelope = encode_checkpoint_snapshot(as_span(to_bytes("svc-state")), cache);
  auto decoded = decode_checkpoint_snapshot(as_span(envelope));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_state, to_bytes("svc-state"));
  ASSERT_NE(decoded->replies.find(11), nullptr);
  EXPECT_EQ(decoded->replies.find(11)->timestamp, 5u);
}

TEST(CheckpointSnapshot, BareLegacySnapshotFallsBack) {
  // Pre-envelope WAL records carry the raw service snapshot; it must decode
  // as the service part with an empty cache, not fail.
  Bytes bare = to_bytes("raw-service-snapshot");
  auto decoded = decode_checkpoint_snapshot(as_span(bare));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_state, bare);
  EXPECT_TRUE(decoded->replies.empty());
}

TEST(CheckpointSnapshot, CorruptCacheSectionRejectsEnvelope) {
  // The reply cache has no state-root covering it; an envelope whose cache
  // section is corrupt must be rejected outright — decoding it as "empty
  // cache" would silently reintroduce the duplicate re-execution hazard.
  ReplyCache cache;
  cache.store(11, 5, 2, 0, to_bytes("r"));
  Bytes envelope = encode_checkpoint_snapshot(as_span(to_bytes("svc")), cache);
  envelope.pop_back();  // truncate inside the cache section
  EXPECT_FALSE(decode_checkpoint_snapshot(as_span(envelope)).has_value());
}

}  // namespace
}  // namespace sbft::runtime

// ---------------------------------------------------------------------------
// Seed-bug regressions (ROADMAP "known seed bugs")

namespace sbft::harness {
namespace {

TEST(SeedRegressions, CheckpointSnapshotCapturedAtExecutionNotCertification) {
  // Seed bug: checkpoint snapshots were captured when the certificate formed;
  // by then the service had often executed further, so the shipped
  // (certificate, snapshot) pair failed state-transfer verification. The
  // CheckpointManager must promote the snapshot captured when the checkpoint
  // sequence *executed*, never a live capture from a moved-on service.
  FastKvService service;
  runtime::ReplyCache replies;
  runtime::CheckpointManager manager(4);

  for (int i = 0; i < 4; ++i) service.execute(as_span(to_bytes("op"))); // 1..4
  Digest root4 = service.state_digest();
  manager.capture_pending(
      4, runtime::encode_checkpoint_snapshot(as_span(service.snapshot()), replies));

  // The service executes past the checkpoint before its certificate forms.
  service.execute(as_span(to_bytes("op5")));
  service.execute(as_span(to_bytes("op6")));

  ExecCertificate cert;
  cert.seq = 4;
  cert.state_root = root4;
  bool recorded = manager.make_stable(cert, /*last_executed=*/6, []() -> Bytes {
    ADD_FAILURE() << "live capture would pair moved-on state with the cert";
    return {};
  });
  ASSERT_TRUE(recorded);

  // The shippable pair is consistent: restoring the snapshot reproduces
  // exactly the certified state root.
  auto decoded = runtime::decode_checkpoint_snapshot(as_span(manager.snapshot()));
  ASSERT_TRUE(decoded.has_value());
  FastKvService fresh;
  ASSERT_TRUE(fresh.restore(as_span(decoded->service_state)));
  EXPECT_EQ(fresh.state_digest(), manager.snapshot_cert().state_root);

  // A later checkpoint whose execution-time snapshot is missing (executed by
  // a previous incarnation) must keep the previous consistent pair.
  ExecCertificate cert8;
  cert8.seq = 8;
  cert8.state_root = service.state_digest();
  EXPECT_FALSE(manager.make_stable(cert8, /*last_executed=*/10,
                                   []() -> Bytes { return {}; }));
  EXPECT_EQ(manager.last_stable(), 8u);          // stable advanced...
  EXPECT_EQ(manager.snapshot_cert().seq, 4u);    // ...shippable pair kept
}

TEST(SeedRegressions, ExactlyQuorumViewChangeRecommitsStalledSlots) {
  // Seed bug: Slot::sent_commit_share was bound to the slot, not to the
  // certificate, so a slot whose slow round stalled in view v could never
  // commit in a later view — with exactly 2f+1 replicas alive every commit
  // share is needed and the view change livelocked.
  ClusterOptions opts;
  opts.kind = ProtocolKind::kLinearPbft;  // slow path only: commit shares on every slot
  opts.f = 1;
  opts.num_clients = 2;
  opts.requests_per_client = 150;
  opts.topology = sim::lan_topology();
  opts.seed = 7;
  Cluster cluster(std::move(opts));
  cluster.run_for(100'000);  // slow-path slots in flight in view 0
  cluster.crash_replica(1);  // view-0 primary; exactly 2f+1 = 3 remain
  ASSERT_TRUE(cluster.run_until_done(600'000'000))
      << "clients stalled: stalled slots were not re-committed in the new view";
  EXPECT_GT(cluster.total_view_changes(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::harness

// ---------------------------------------------------------------------------
// Reply-cache persistence across checkpoints (EVM-transfer hazard)

namespace sbft::recovery {
namespace {

using evm::CallTx;
using evm::CreateTx;
using evm::EvmLedgerService;
using evm::U256;

evm::U256 word_of(const evm::Address& a) {
  return U256::from_bytes_be(ByteSpan{a.data(), a.size()});
}

struct EvmLedgerFixture {
  evm::Address deployer{{1}};
  evm::Address alice{{2}};
  evm::Address bob{{3}};
  evm::Address token = EvmLedgerService::derive_address(evm::Address{{1}}, 0);

  Bytes op_create() const {
    return evm::encode_create(CreateTx{deployer, evm::token_contract()});
  }
  Bytes op_mint(uint64_t amount) const {
    return evm::encode_call(
        CallTx{alice, token, evm::token_call_mint(word_of(alice), U256(amount))});
  }
  Bytes op_transfer(uint64_t amount) const {
    return evm::encode_call(
        CallTx{alice, token, evm::token_call_transfer(word_of(bob), U256(amount))});
  }
  Bytes op_balance() const {
    return evm::encode_call(
        CallTx{alice, token, evm::token_call_balance_of(word_of(alice))});
  }

  static Bytes block_of(SeqNum s, std::vector<std::pair<uint64_t, Bytes>> reqs) {
    Block block;
    for (auto& [ts, op] : reqs) {
      Request req;
      req.client = 7;
      req.timestamp = ts;
      req.op = std::move(op);
      block.requests.push_back(std::move(req));
    }
    return encode_message(Message(PrePrepareMsg{s, 0, std::move(block)}));
  }

  /// Ledger where block 3 carries a *duplicate* (same client, timestamp 3) of
  /// the transfer executed in block 1 — i.e. a retry that slipped into a
  /// later decision block, whose duplicate lands beyond the checkpoint at 2.
  std::shared_ptr<storage::MemoryLedgerStorage> full_ledger() const {
    auto ledger = std::make_shared<storage::MemoryLedgerStorage>();
    ledger->append_block(1, as_span(block_of(1, {{1, op_create()},
                                                 {2, op_mint(100)},
                                                 {3, op_transfer(10)}})));
    ledger->append_block(2, as_span(block_of(2, {{4, op_balance()}})));
    ledger->append_block(3, as_span(block_of(3, {{3, op_transfer(10)}})));  // dup
    ledger->append_block(4, as_span(block_of(4, {{5, op_balance()}})));
    return ledger;
  }

  static std::function<std::unique_ptr<IService>()> factory() {
    return [] { return std::make_unique<EvmLedgerService>(); };
  }
};

TEST(ReplyCachePersistence, EvmTransferNotReExecutedAfterRecovery) {
  EvmLedgerFixture fx;
  auto ledger = fx.full_ledger();

  // Reference: contiguous replay from genesis. The reply cache built along
  // the way suppresses the duplicate transfer, so alice ends at 90.
  RecoveryManager reference_manager(ledger, nullptr);
  auto reference = reference_manager.recover(fx.factory());
  ASSERT_TRUE(reference.has_value());

  // Checkpoint at 2: replay the prefix once to derive the certificate, the
  // service snapshot, and — the point of this test — the reply cache.
  auto prefix = std::make_shared<storage::MemoryLedgerStorage>();
  prefix->append_block(1, *ledger->read_block(1));
  prefix->append_block(2, *ledger->read_block(2));
  RecoveryManager prefix_manager(prefix, nullptr);
  auto at2 = prefix_manager.recover(fx.factory());
  ASSERT_TRUE(at2.has_value());
  ASSERT_EQ(at2->last_executed, 2u);

  auto wal = std::make_shared<MemoryWal>();
  wal->record_checkpoint(
      at2->replayed[1].cert,
      as_span(runtime::encode_checkpoint_snapshot(as_span(at2->service->snapshot()),
                                                  at2->reply_cache)));

  // Recover from checkpoint + suffix: the persisted cache must suppress the
  // pre-checkpoint duplicate in block 3 instead of re-executing the transfer.
  RecoveryManager manager(ledger, wal);
  auto recovered = manager.recover(fx.factory());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_stable, 2u);
  EXPECT_EQ(recovered->last_executed, 4u);
  EXPECT_EQ(recovered->replayed.size(), 2u);  // only the suffix re-executed
  EXPECT_EQ(recovered->service->state_digest(), reference->service->state_digest());
  EXPECT_EQ(recovered->exec_digests.at(4), reference->exec_digests.at(4));
  // The recovered cache serves retries of every pre-crash request.
  ASSERT_NE(recovered->reply_cache.find(7), nullptr);
  EXPECT_EQ(recovered->reply_cache.find(7)->timestamp, 5u);
}

TEST(ReplyCachePersistence, WithoutPersistedCacheTheTransferDoubles) {
  // Hazard demonstration: a checkpoint snapshot *without* the reply cache
  // (the pre-envelope format) replays the duplicate transfer a second time —
  // the recovered state diverges from the certified execution. This is the
  // ROADMAP open item this subsystem closes; benign for idempotent KV puts,
  // wrong for EVM transfers.
  EvmLedgerFixture fx;
  auto ledger = fx.full_ledger();

  RecoveryManager reference_manager(ledger, nullptr);
  auto reference = reference_manager.recover(fx.factory());
  ASSERT_TRUE(reference.has_value());

  auto prefix = std::make_shared<storage::MemoryLedgerStorage>();
  prefix->append_block(1, *ledger->read_block(1));
  prefix->append_block(2, *ledger->read_block(2));
  RecoveryManager prefix_manager(prefix, nullptr);
  auto at2 = prefix_manager.recover(fx.factory());
  ASSERT_TRUE(at2.has_value());

  auto wal = std::make_shared<MemoryWal>();
  wal->record_checkpoint(at2->replayed[1].cert,
                         as_span(at2->service->snapshot()));  // bare: no cache

  RecoveryManager manager(ledger, wal);
  auto recovered = manager.recover(fx.factory());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_executed, 4u);
  // The transfer re-executed: alice lost another 10 — state diverged.
  EXPECT_FALSE(recovered->service->state_digest() ==
               reference->service->state_digest());
}

}  // namespace
}  // namespace sbft::recovery

// ---------------------------------------------------------------------------
// Cross-protocol crash / restart / disk-wipe scenarios (identical Cluster API)

namespace sbft::harness {
namespace {

class CrossProtocolRecovery : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ClusterOptions base(uint64_t requests) const {
    ClusterOptions opts;
    opts.kind = GetParam();
    opts.f = 1;
    opts.c = 0;
    opts.num_clients = 2;
    opts.requests_per_client = requests;
    opts.topology = sim::lan_topology();
    opts.seed = 11;
    opts.tweak_config = [](ProtocolConfig& config) {
      config.win = 32;  // frequent checkpoints: recovery exercises snapshots
    };
    return opts;
  }
};

TEST_P(CrossProtocolRecovery, CrashRestartRejoinsFromWal) {
  // Acceptance scenario: kill a non-primary replica mid-run, restart it, and
  // watch it recover from WAL + ledger, rejoin, and keep executing — on both
  // protocols, through the same restart_schedule API.
  auto opts = base(400);
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/4'000'000,
                                   /*replica=*/3, /*wipe_storage=*/false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";

  const ReplicaHandle& restarted = cluster.replica(3);
  EXPECT_EQ(restarted.runtime_stats().recoveries, 1u);
  EXPECT_GT(restarted.runtime_stats().blocks_replayed, 0u)
      << "WAL/ledger were empty";
  // Rejoined: executed well past whatever it recovered to.
  EXPECT_GT(restarted.last_executed(), restarted.runtime_stats().blocks_replayed);
  if (GetParam() == ProtocolKind::kSbft) {
    // Re-entered the fast path (f=1, c=0: fast quorum needs all n=4 replicas,
    // so post-restart fast commits prove the recovered replica participates).
    EXPECT_GT(restarted.sbft()->stats().fast_commits, 0u);
  }
  EXPECT_EQ(cluster.total_recoveries(), 1u);
  EXPECT_GT(cluster.total_wal_bytes_written(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 400u);
  }
}

TEST_P(CrossProtocolRecovery, WipedDiskRecoversViaStateTransfer) {
  auto opts = base(300);
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/5'000'000,
                                   /*replica=*/4, /*wipe_storage=*/true});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  // Fast protocols may drain the clients before the scheduled restart; play
  // the schedule out and give the wiped replica time to state-transfer.
  if (cluster.simulator().now() < 6'000'000) {
    cluster.run_for(6'000'000 - cluster.simulator().now());
  }
  cluster.run_for(5'000'000);

  const ReplicaHandle& restarted = cluster.replica(4);
  EXPECT_EQ(restarted.runtime_stats().recoveries, 0u);  // nothing local survived
  EXPECT_GT(restarted.runtime_stats().state_transfers, 0u)
      << "empty replica never requested state transfer";
  EXPECT_GT(restarted.last_executed(), 0u) << "never caught up";
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 300u);
  }
}

TEST_P(CrossProtocolRecovery, RollingRestartKeepsClusterLiveAndSafe) {
  auto opts = base(400);
  opts.restart_schedule.push_back({1'000'000, 3'000'000, 2, false});
  opts.restart_schedule.push_back({5'000'000, 7'000'000, 3, false});
  opts.restart_schedule.push_back({9'000'000, 11'000'000, 4, false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(900'000'000)) << "clients stalled";
  // Clients may drain before the tail of the schedule; play it out so every
  // scheduled restart (and its recovery) actually happens.
  if (cluster.simulator().now() < 12'000'000) {
    cluster.run_for(12'000'000 - cluster.simulator().now());
  }
  EXPECT_EQ(cluster.total_recoveries(), 3u);
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 400u);
  }
}

TEST_P(CrossProtocolRecovery, RestartedReplicaServesPreCheckpointDuplicateFromCache) {
  // The acceptance criterion's sharp edge: after recovery, a duplicate of a
  // request executed *before* the stable checkpoint must be answered from the
  // reply cache persisted in the checkpoint snapshot — not re-executed, not
  // dropped. We replay such a duplicate straight at the restarted replica.
  auto opts = base(120);
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;  // checkpoint every 8 blocks
  };
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  ASSERT_GT(cluster.replica(2).last_stable(), 0u) << "no checkpoint formed";

  cluster.crash_replica(2);
  cluster.run_for(300'000);
  cluster.restart_replica(2);
  cluster.run_for(2'000'000);  // recover + settle

  const ReplicaHandle& restarted = cluster.replica(2);
  EXPECT_EQ(restarted.runtime_stats().recoveries, 1u);

  // Replay client n's first request (timestamp 1 — executed long before the
  // stable checkpoint) against the restarted replica.
  ClientId client = cluster.n();  // first client's node id == its ClientId
  ASSERT_NE(restarted.runtime().replies().find(client), nullptr)
      << "recovered reply cache lost the client";
  uint64_t hits_before = restarted.runtime_stats().reply_cache_hits;
  uint64_t executed_before = restarted.runtime_stats().requests_executed;
  Request dup;
  dup.client = client;
  dup.timestamp = 1;
  dup.op = to_bytes("retry-of-first-request");
  cluster.network().inject(client, restarted.node(),
                           make_message(ClientRequestMsg{dup}));
  cluster.run_for(200'000);

  EXPECT_GT(restarted.runtime_stats().reply_cache_hits, hits_before)
      << "duplicate was not served from the recovered reply cache";
  EXPECT_EQ(restarted.runtime_stats().requests_executed, executed_before)
      << "duplicate re-executed instead of being served from cache";
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Protocols, CrossProtocolRecovery,
                         ::testing::Values(ProtocolKind::kSbft,
                                           ProtocolKind::kPbft),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return info.param == ProtocolKind::kSbft ? "Sbft"
                                                                    : "Pbft";
                         });

}  // namespace
}  // namespace sbft::harness
