// Protocol-agnostic replica runtime: reply-cache persistence across
// checkpoints (including the non-idempotent EVM-transfer re-execution
// hazard), the checkpoint snapshot envelope, seed-bug regressions, and the
// cross-protocol crash→recover→rejoin scenario family — every simulated
// scenario here runs on both SBFT and the PBFT baseline through the
// identical Cluster API.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>

#include "common/serde.h"
#include "crypto/sha256.h"
#include "evm/contracts.h"
#include "evm/evm_service.h"
#include "harness/cluster.h"
#include "harness/eth_workload.h"
#include "harness/workload.h"
#include "kv/kv_service.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "runtime/checkpoint_manager.h"
#include "runtime/evidence_store.h"
#include "runtime/reply_cache.h"
#include "runtime/replica_runtime.h"
#include "runtime/snapshot.h"
#include "runtime/state_transfer.h"
#include "storage/ledger_storage.h"

// ---------------------------------------------------------------------------
// ReplyCache + snapshot envelope

namespace sbft::runtime {
namespace {

TEST(ReplyCache, StoresAndServesNewestPerClient) {
  ReplyCache cache;
  EXPECT_FALSE(cache.is_duplicate(7, 1));
  cache.store(7, 1, 10, 0, to_bytes("a"));
  cache.store(7, 3, 12, 1, to_bytes("b"));
  EXPECT_TRUE(cache.is_duplicate(7, 1));  // watermark covers older timestamps
  EXPECT_TRUE(cache.is_duplicate(7, 3));
  EXPECT_FALSE(cache.is_duplicate(7, 4));
  ASSERT_NE(cache.find(7), nullptr);
  EXPECT_EQ(cache.find(7)->value, to_bytes("b"));
  EXPECT_EQ(cache.find(7)->seq, 12u);
  // A stale store must never regress the watermark.
  cache.store(7, 2, 11, 0, to_bytes("stale"));
  EXPECT_EQ(cache.find(7)->timestamp, 3u);
  EXPECT_EQ(cache.find(7)->value, to_bytes("b"));
}

TEST(ReplyCache, EncodeDecodeRoundTrip) {
  ReplyCache cache;
  cache.store(4, 9, 3, 2, to_bytes("val-4"));
  cache.store(900, 1, 1, 0, Bytes{});
  auto decoded = ReplyCache::decode(as_span(cache.encode()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->size(), 2u);
  ASSERT_NE(decoded->find(4), nullptr);
  EXPECT_EQ(decoded->find(4)->timestamp, 9u);
  EXPECT_EQ(decoded->find(4)->index, 2u);
  EXPECT_EQ(decoded->find(4)->value, to_bytes("val-4"));
  ASSERT_NE(decoded->find(900), nullptr);
  EXPECT_TRUE(decoded->find(900)->value.empty());
}

TEST(ReplyCache, DecodeRejectsMalformed) {
  EXPECT_FALSE(ReplyCache::decode(as_span(to_bytes("garbage"))).has_value());
  ReplyCache cache;
  cache.store(1, 1, 1, 0, to_bytes("x"));
  Bytes encoded = cache.encode();
  encoded.pop_back();  // truncated value
  EXPECT_FALSE(ReplyCache::decode(as_span(encoded)).has_value());
}

TEST(EvidenceStore, PreparedHighestViewWinsProofsFirstWins) {
  EvidenceStore store;
  Digest d1 = crypto::sha256(as_span(to_bytes("one")));
  Digest d2 = crypto::sha256(as_span(to_bytes("two")));

  // Prepared: a newer view supersedes, an older view is rejected.
  EXPECT_TRUE(store.record_prepared(5, 2, d1, to_bytes("tau-v2")));
  EXPECT_FALSE(store.record_prepared(5, 1, d2, to_bytes("tau-v1")));
  EXPECT_TRUE(store.record_prepared(5, 4, d2, to_bytes("tau-v4")));
  const SlotEvidenceRecord* rec = store.find(5);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->prepared_view, 4u);
  EXPECT_TRUE(rec->prepared_digest == d2);
  EXPECT_EQ(rec->prepared_sig, to_bytes("tau-v4"));

  // Proofs: the first recorded one is final.
  EXPECT_TRUE(store.record_fast_proof(5, 4, d2, to_bytes("sigma")));
  EXPECT_FALSE(store.record_fast_proof(5, 9, d1, to_bytes("later")));
  EXPECT_TRUE(store.record_slow_proof(5, 4, d2, to_bytes("tau"), to_bytes("tt")));
  EXPECT_FALSE(store.record_slow_proof(5, 9, d1, to_bytes("x"), to_bytes("y")));
  rec = store.find(5);
  EXPECT_EQ(rec->fast_view, 4u);
  EXPECT_EQ(rec->fast_sig, to_bytes("sigma"));
  EXPECT_EQ(rec->slow_view, 4u);
  EXPECT_EQ(rec->slow_inner_sig, to_bytes("tau"));
  EXPECT_EQ(rec->slow_sig, to_bytes("tt"));
}

TEST(EvidenceStore, RangeIterationAndGc) {
  EvidenceStore store;
  Digest d = crypto::sha256(as_span(to_bytes("d")));
  for (SeqNum s = 1; s <= 10; ++s) store.record_prepared(s, 1, d, {});
  std::vector<SeqNum> seen;
  store.for_each_in(3, 7, [&](SeqNum s, const SlotEvidenceRecord&) {
    seen.push_back(s);
  });
  EXPECT_EQ(seen, (std::vector<SeqNum>{4, 5, 6, 7}));

  store.gc_through(8);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.find(8), nullptr);
  ASSERT_NE(store.find(9), nullptr);
  store.clear();
  EXPECT_EQ(store.size(), 0u);
}

TEST(CheckpointSnapshot, EnvelopeRoundTrip) {
  ReplyCache cache;
  cache.store(11, 5, 2, 0, to_bytes("r"));
  Bytes envelope = encode_checkpoint_snapshot(as_span(to_bytes("svc-state")), cache);
  auto decoded = decode_checkpoint_snapshot(as_span(envelope));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_state, to_bytes("svc-state"));
  ASSERT_NE(decoded->replies.find(11), nullptr);
  EXPECT_EQ(decoded->replies.find(11)->timestamp, 5u);
}

TEST(CheckpointSnapshot, MembershipSectionRoundTrip) {
  ReplyCache cache;
  cache.store(11, 5, 2, 0, to_bytes("r"));
  Bytes membership = to_bytes("membership-section-bytes");
  Bytes envelope = encode_checkpoint_snapshot(as_span(to_bytes("svc-state")),
                                              cache, 1, as_span(membership));
  auto decoded = decode_checkpoint_snapshot(as_span(envelope));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_state, to_bytes("svc-state"));
  EXPECT_EQ(decoded->membership, membership);
  ASSERT_NE(decoded->replies.find(11), nullptr);
}

// ---------------------------------------------------------------------------
// Membership epochs (docs/reconfiguration.md)

std::vector<ReplicaInfo> genesis_members4() {
  return {{1, 0}, {2, 1}, {3, 2}, {4, 3}};
}

TEST(Membership, StagesAndActivatesAtCheckpointBoundary) {
  MembershipManager m;
  m.init_genesis(1, 0, genesis_members4());
  ASSERT_TRUE(m.configured());
  EXPECT_TRUE(m.is_member(2));
  EXPECT_FALSE(m.is_member(5));
  EXPECT_EQ(m.active().primary_of(0), 1u);
  EXPECT_EQ(m.active().slow_quorum(), 3u);

  ReconfigDelta delta;
  delta.adds = {{5, 10}, {6, 11}, {7, 12}};
  delta.new_f = 2;
  ASSERT_TRUE(m.stage(delta, /*exec_seq=*/5, /*interval=*/8));
  EXPECT_EQ(m.pending_activation(), 8u);
  EXPECT_FALSE(m.stage(delta, 6, 8));  // one reconfiguration in flight

  EXPECT_FALSE(m.activate_up_to(7));
  ASSERT_TRUE(m.activate_up_to(8));
  EXPECT_EQ(m.active().epoch, 1u);
  EXPECT_EQ(m.active().n(), 7u);
  EXPECT_EQ(m.active().f, 2u);
  EXPECT_EQ(m.active().slow_quorum(), 5u);
  EXPECT_TRUE(m.is_member(7));
  EXPECT_EQ(m.active().node_of(7), 12u);
  EXPECT_EQ(m.active().rank_of(5), 4);
  // Boundary slots belong to the epoch that ordered them.
  EXPECT_EQ(m.epoch_for_seq(8).epoch, 0u);
  EXPECT_EQ(m.epoch_for_seq(9).epoch, 1u);

  // Removal epoch: drop the three new members again, back to f=1.
  ReconfigDelta removal;
  removal.removes = {5, 6, 7};
  removal.new_f = 1;
  ASSERT_TRUE(m.stage(removal, 17, 8));
  EXPECT_EQ(m.pending_activation(), 24u);
  ASSERT_TRUE(m.activate_up_to(24));
  EXPECT_EQ(m.active().epoch, 2u);
  EXPECT_EQ(m.active().n(), 4u);
  EXPECT_FALSE(m.is_member(6));
  EXPECT_EQ(m.epoch_for_seq(20).epoch, 1u);
}

TEST(Membership, RejectsInconsistentDeltas) {
  MembershipManager m;
  m.init_genesis(1, 0, genesis_members4());

  ReconfigDelta bad;
  bad.removes = {9};  // not a member
  bad.new_f = 1;
  EXPECT_FALSE(m.stage(bad, 5, 8));

  bad = {};
  bad.adds = {{2, 9}};  // id already a member
  bad.new_f = 1;
  EXPECT_FALSE(m.stage(bad, 5, 8));

  bad = {};
  bad.adds = {{5, 1}};  // node already occupied
  bad.new_f = 1;
  EXPECT_FALSE(m.stage(bad, 5, 8));

  bad = {};
  bad.adds = {{5, 10}};  // 5 replicas can satisfy no 3f+2c+1 with f>=1
  bad.new_f = 1;
  EXPECT_FALSE(m.stage(bad, 5, 8));

  bad = {};
  bad.adds = {{5, 10}, {6, 11}, {7, 12}};
  bad.new_f = 2;
  EXPECT_FALSE(m.stage(bad, 5, /*interval=*/0));  // checkpoints disabled
  EXPECT_TRUE(m.stage(bad, 5, 8));
}

TEST(Membership, EncodeRestoreMovesForwardOnly) {
  MembershipManager donor;
  donor.init_genesis(1, 0, genesis_members4());
  ReconfigDelta delta;
  delta.adds = {{5, 10}, {6, 11}, {7, 12}};
  delta.new_f = 2;
  ASSERT_TRUE(donor.stage(delta, 5, 8));

  // A fetcher at the same epoch adopts the staged reconfiguration.
  MembershipManager fetcher;
  fetcher.init_genesis(1, 0, genesis_members4());
  ASSERT_TRUE(fetcher.restore(as_span(donor.encode())));
  EXPECT_EQ(fetcher.pending_activation(), 8u);
  ASSERT_TRUE(fetcher.activate_up_to(8));
  EXPECT_EQ(fetcher.active().epoch, 1u);

  // A joiner bootstrapped with the old roster learns the new epoch whole.
  ASSERT_TRUE(donor.activate_up_to(8));
  MembershipManager joiner;
  joiner.init_genesis(1, 0, genesis_members4());
  ASSERT_TRUE(joiner.restore(as_span(donor.encode())));
  EXPECT_EQ(joiner.active().epoch, 1u);
  EXPECT_TRUE(joiner.active().contains(7));

  // Stale sections never regress an advanced manager.
  MembershipManager stale;
  stale.init_genesis(1, 0, genesis_members4());
  EXPECT_FALSE(joiner.restore(as_span(stale.encode())));
  EXPECT_EQ(joiner.active().epoch, 1u);

  // Malformed sections are ignored.
  EXPECT_FALSE(joiner.restore(as_span(to_bytes("garbage"))));
}

TEST(CheckpointSnapshot, BareLegacySnapshotFallsBack) {
  // Pre-envelope WAL records carry the raw service snapshot; it must decode
  // as the service part with an empty cache, not fail.
  Bytes bare = to_bytes("raw-service-snapshot");
  auto decoded = decode_checkpoint_snapshot(as_span(bare));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_state, bare);
  EXPECT_TRUE(decoded->replies.empty());
}

TEST(CheckpointSnapshot, CorruptCacheSectionRejectsEnvelope) {
  // The reply cache has no state-root covering it; an envelope whose cache
  // section is corrupt must be rejected outright — decoding it as "empty
  // cache" would silently reintroduce the duplicate re-execution hazard.
  ReplyCache cache;
  cache.store(11, 5, 2, 0, to_bytes("r"));
  Bytes envelope = encode_checkpoint_snapshot(as_span(to_bytes("svc")), cache);
  envelope.pop_back();  // truncate inside the cache section
  EXPECT_FALSE(decode_checkpoint_snapshot(as_span(envelope)).has_value());
}

// ---------------------------------------------------------------------------
// Chunked state transfer: ChunkedSnapshot + StateTransferManager unit level
// (the protocol spec these implement is docs/state_transfer.md)

StateChunkMsg chunk_msg_of(const ChunkedSnapshot& snap, ByteSpan envelope,
                           ReplicaId donor, SeqNum seq, uint32_t index) {
  StateChunkMsg m;
  m.donor = donor;
  m.seq = seq;
  m.chunk_root = snap.transfer_root();
  m.index = index;
  m.chunk_count = snap.chunk_count();
  m.data = to_bytes(snap.chunk(envelope, index));
  m.proof = snap.proof(index);
  return m;
}

StateManifestMsg manifest_of(const ChunkedSnapshot& snap, ReplicaId donor,
                             SeqNum seq) {
  StateManifestMsg m;
  m.donor = donor;
  m.seq = seq;
  m.cert.seq = seq;
  m.chunk_root = snap.chunk_root();
  m.chunk_count = snap.chunk_count();
  m.chunk_size = snap.chunk_size();
  m.total_bytes = snap.total_bytes();
  return m;
}

/// Feeds a manifest with no local base checkpoint (no delta seeding) — the
/// plain chunked-path behaviour the tests below exercise.
bool feed_manifest(StateTransferManager& mgr, const StateManifestMsg& m,
                   SeqNum last_executed) {
  CheckpointManager cp(16);
  RuntimeStats stats;
  return mgr.on_manifest(m, last_executed, cp, stats);
}

Bytes patterned_envelope(size_t size) {
  Bytes envelope(size);
  for (size_t i = 0; i < size; ++i) {
    envelope[i] = static_cast<uint8_t>(i * 131 + (i >> 8));
  }
  return envelope;
}

TEST(ChunkedSnapshotTest, SplitsProvesAndVerifies) {
  Bytes envelope = patterned_envelope(10'000);
  ChunkedSnapshot snap(as_span(envelope), 1024);
  EXPECT_EQ(snap.chunk_count(), 10u);  // 9 full chunks + a 784-byte tail
  EXPECT_EQ(snap.total_bytes(), 10'000u);
  EXPECT_EQ(snap.chunk(as_span(envelope), 9).size(), 10'000u - 9 * 1024u);

  Bytes reassembled;
  for (uint32_t i = 0; i < snap.chunk_count(); ++i) {
    ByteSpan c = snap.chunk(as_span(envelope), i);
    reassembled.insert(reassembled.end(), c.begin(), c.end());
    EXPECT_TRUE(merkle::BlockMerkleTree::verify(
        snap.chunk_root(), ChunkedSnapshot::chunk_leaf(c), snap.proof(i)));
  }
  EXPECT_EQ(reassembled, envelope);

  // A bit flip in the payload must not verify under the honest proof.
  Bytes tampered = to_bytes(snap.chunk(as_span(envelope), 3));
  tampered[0] ^= 0x01;
  EXPECT_FALSE(merkle::BlockMerkleTree::verify(
      snap.chunk_root(), ChunkedSnapshot::chunk_leaf(as_span(tampered)),
      snap.proof(3)));
}

TEST(StateTransferManagerTest, FansOutResumesAndReassembles) {
  Bytes envelope = patterned_envelope(8 * 1024);
  ChunkedSnapshot snap(as_span(envelope), 1024);  // 8 chunks
  StateTransferManager mgr(1024, /*max_chunks_per_request=*/2);
  RuntimeStats stats;

  mgr.begin_probe();
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, /*donor=*/1, /*seq=*/16), 0));
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, /*donor=*/2, /*seq=*/16), 0));
  EXPECT_EQ(mgr.donor_count(), 2u);

  // First plan: 2 donors x cap 2 = 4 outstanding chunks.
  auto plan = mgr.plan_requests(/*self=*/4);
  ASSERT_EQ(plan.size(), 2u);
  size_t planned = 0;
  for (const auto& [donor, req] : plan) {
    EXPECT_LE(req.indices.size(), 2u);
    planned += req.indices.size();
  }
  EXPECT_EQ(planned, 4u);

  // Donor 1 answers its batch; donor 2 dies silently.
  using Verdict = StateTransferManager::ChunkVerdict;
  for (const auto& [donor, req] : plan) {
    if (donor != 1) continue;
    for (uint32_t i : req.indices) {
      EXPECT_EQ(mgr.on_chunk(chunk_msg_of(snap, as_span(envelope), donor, 16, i), stats),
                Verdict::kStored);
    }
  }
  uint32_t received_before_retry = mgr.chunks_received();
  EXPECT_GT(received_before_retry, 0u);

  // Retry tick: partial data in hand => this is a *resume*, and nothing
  // already received is thrown away.
  EXPECT_TRUE(mgr.on_retry(stats));
  EXPECT_EQ(stats.state_transfer_resumes, 1u);
  EXPECT_EQ(mgr.chunks_received(), received_before_retry);

  // Drain the remaining chunks (donor 1 keeps serving across plans).
  for (int guard = 0; guard < 32; ++guard) {
    auto next = mgr.plan_requests(4);
    if (next.empty()) break;
    bool done = false;
    for (const auto& [donor, req] : next) {
      for (uint32_t i : req.indices) {
        Verdict v = mgr.on_chunk(chunk_msg_of(snap, as_span(envelope), donor, 16, i), stats);
        done = done || v == Verdict::kCompleted;
      }
    }
    if (done) break;
  }
  ASSERT_EQ(mgr.chunks_received(), snap.chunk_count());
  // Each chunk fetched exactly once — the resume never re-fetched data.
  EXPECT_EQ(stats.state_transfer_chunks_fetched, snap.chunk_count());
  EXPECT_EQ(stats.state_transfer_bytes_transferred, envelope.size());
  EXPECT_EQ(mgr.take_envelope(), envelope);
}

TEST(StateTransferManagerTest, InvalidChunkExcludesDonorForGood) {
  Bytes envelope = patterned_envelope(4 * 1024);
  ChunkedSnapshot snap(as_span(envelope), 1024);
  StateTransferManager mgr(1024, 4);
  RuntimeStats stats;

  mgr.begin_probe();
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, 1, 16), 0));
  auto plan = mgr.plan_requests(4);
  ASSERT_EQ(plan.size(), 1u);

  StateChunkMsg bad = chunk_msg_of(snap, as_span(envelope), 1, 16, plan[0].second.indices[0]);
  bad.data[0] ^= 0xff;  // bit flip; the honest proof no longer matches
  EXPECT_EQ(mgr.on_chunk(bad, stats),
            StateTransferManager::ChunkVerdict::kInvalid);
  EXPECT_EQ(stats.state_transfer_invalid_chunks, 1u);
  EXPECT_EQ(mgr.chunks_received(), 0u);
  EXPECT_EQ(mgr.donor_count(), 0u);       // excluded
  EXPECT_TRUE(mgr.plan_requests(4).empty());  // nobody left to ask

  // An excluded donor's manifests are ignored; an honest donor re-enables
  // the fetch and its indices re-plan immediately.
  EXPECT_FALSE(feed_manifest(mgr, manifest_of(snap, 1, 16), 0));
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, 2, 16), 0));
  auto retry = mgr.plan_requests(4);
  ASSERT_EQ(retry.size(), 1u);
  EXPECT_EQ(retry[0].first, 2u);
  EXPECT_EQ(retry[0].second.indices.size(), snap.chunk_count());
}

TEST(StateTransferManagerTest, ExcludeDonorRePlansItsOutstandingChunks) {
  Bytes envelope = patterned_envelope(4 * 1024);
  ChunkedSnapshot snap(as_span(envelope), 1024);
  StateTransferManager mgr(1024, 4);
  mgr.begin_probe();
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, 1, 16), 0));
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, 2, 16), 0));
  ASSERT_FALSE(mgr.plan_requests(4).empty());
  // Protocol-layer exclusion (e.g. a failed PBFT checkpoint certificate):
  // donor 2 is dropped and its outstanding indices re-plan onto donor 1.
  mgr.exclude_donor(2);
  EXPECT_TRUE(mgr.donor_excluded(2));
  EXPECT_EQ(mgr.donor_count(), 1u);
  auto plan = mgr.plan_requests(4);
  ASSERT_FALSE(plan.empty());
  for (const auto& [donor, req] : plan) EXPECT_EQ(donor, 1u);
  EXPECT_FALSE(feed_manifest(mgr, manifest_of(snap, 2, 16), 0));  // stays out
}

TEST(StateTransferManagerTest, BogusRootManifestCannotWedgeTheFetch) {
  // A Byzantine donor holding the genuine certificate can advertise a
  // fabricated chunk root (the certificate does not cover the root). Honest
  // same-seq manifests carry the true root and must eventually re-target:
  // immediately when the liar serves an invalid chunk, or once the liar has
  // struck out silently — never "first manifest wins" forever.
  Bytes envelope = patterned_envelope(4 * 1024);
  ChunkedSnapshot honest(as_span(envelope), 1024);
  RuntimeStats stats;

  // Liar serves an invalid chunk: target dropped at once, honest re-targets.
  {
    StateTransferManager mgr(1024, 4);
    mgr.begin_probe();
    StateManifestMsg bogus = manifest_of(honest, /*donor=*/1, /*seq=*/16);
    bogus.chunk_root[0] ^= 0xff;
    ASSERT_TRUE(feed_manifest(mgr, bogus, 0));
    auto plan = mgr.plan_requests(4);
    ASSERT_FALSE(plan.empty());
    StateChunkMsg garbage =
        chunk_msg_of(honest, as_span(envelope), 1, 16, plan[0].second.indices[0]);
    garbage.chunk_root = plan[0].second.chunk_root;  // matches target, fails proof
    EXPECT_EQ(mgr.on_chunk(garbage, stats),
              StateTransferManager::ChunkVerdict::kInvalid);
    EXPECT_FALSE(mgr.has_target());  // suspect root dropped with its author
    ASSERT_TRUE(feed_manifest(mgr, manifest_of(honest, /*donor=*/2, 16), 0));
    EXPECT_EQ(mgr.target_cert().seq, 16u);
  }

  // Liar goes silent instead: after it strikes out, the honest root wins.
  // Faithful to the engine loop: plan_requests runs after *every* tick (its
  // forgiveness branch clears strikes_ for planning) and the honest manifest
  // arrives between ticks — the struck-out evidence must survive all that.
  {
    StateTransferManager mgr(1024, 4);
    mgr.begin_probe();
    StateManifestMsg bogus = manifest_of(honest, /*donor=*/1, /*seq=*/16);
    bogus.chunk_root[0] ^= 0xff;
    ASSERT_TRUE(feed_manifest(mgr, bogus, 0));
    StateManifestMsg truth = manifest_of(honest, /*donor=*/2, /*seq=*/16);
    EXPECT_FALSE(feed_manifest(mgr, truth, 0));  // liar's donors not yet dead
    ASSERT_FALSE(mgr.plan_requests(4).empty());
    mgr.on_retry_tick(0, true, stats);  // strike 1
    ASSERT_FALSE(mgr.plan_requests(4).empty());
    auto tick = mgr.on_retry_tick(0, true, stats);  // strike 2: struck out
    EXPECT_TRUE(tick.probe);
    ASSERT_FALSE(mgr.plan_requests(4).empty());  // forgiveness retries the liar...
    ASSERT_TRUE(feed_manifest(mgr, truth, 0));      // ...but cannot mask its record
    EXPECT_TRUE(mgr.has_target());
    auto plan = mgr.plan_requests(4);
    ASSERT_FALSE(plan.empty());
    EXPECT_EQ(plan[0].first, 2u);  // fetching the honest root from donor 2
  }
}

TEST(StateTransferManagerTest, GeometryLieNamesADifferentTransfer) {
  // The wedge variant the transfer key exists for: a manifest reusing the
  // HONEST tree root but shrinking chunk_size passes the manifest geometry
  // sanity check, yet must name a *different* transfer — honest donors then
  // ignore its requests (key mismatch) instead of serving chunks that would
  // violate the lied size bound and get the donors excluded.
  Bytes envelope = patterned_envelope(10 * 1024);
  ChunkedSnapshot snap(as_span(envelope), 1024);  // 10 chunks of 1024
  RuntimeStats stats;
  StateTransferManager mgr(1024, 4);
  mgr.begin_probe();
  StateManifestMsg shrunk = manifest_of(snap, /*donor=*/1, /*seq=*/16);
  shrunk.chunk_size = 512;  // honest root, lying grid
  shrunk.chunk_count = 20;  // passes ceil(10240 / 512) == 20
  ASSERT_TRUE(feed_manifest(mgr, shrunk, 0));
  auto plan = mgr.plan_requests(4);
  ASSERT_FALSE(plan.empty());
  EXPECT_FALSE(plan[0].second.chunk_root == snap.transfer_root());

  // Nobody serves the liar's transfer; once it strikes out (the engine
  // re-plans after every tick, so its outstanding requests keep going
  // unanswered), the honest same-seq manifest re-targets and requests carry
  // the honest key.
  mgr.on_retry_tick(0, true, stats);
  ASSERT_FALSE(mgr.plan_requests(4).empty());
  mgr.on_retry_tick(0, true, stats);
  ASSERT_FALSE(mgr.plan_requests(4).empty());  // engine plans before manifests land
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, /*donor=*/2, 16), 0));
  auto honest_plan = mgr.plan_requests(4);
  ASSERT_FALSE(honest_plan.empty());
  EXPECT_TRUE(honest_plan[0].second.chunk_root == snap.transfer_root());
  EXPECT_EQ(honest_plan[0].first, 2u);
}

TEST(StateTransferManagerTest, RetryTickReprobesWhenEveryDonorStruckOut) {
  // Livelock guard: if the only registered donor dies, the strike counter
  // alone keeps retrying it forever — the tick must re-raise the probe so
  // replicas that acquired the checkpoint since then can register.
  Bytes envelope = patterned_envelope(4 * 1024);
  ChunkedSnapshot snap(as_span(envelope), 1024);
  StateTransferManager mgr(1024, 4);
  RuntimeStats stats;

  mgr.begin_probe();
  auto first = mgr.on_retry_tick(/*last_executed=*/0, /*behind=*/true, stats);
  EXPECT_FALSE(first.stop);
  EXPECT_TRUE(first.probe);  // no manifest adopted yet

  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, 1, 16), 0));
  ASSERT_FALSE(mgr.plan_requests(4).empty());  // donor 1 has outstanding chunks
  auto tick1 = mgr.on_retry_tick(0, true, stats);
  EXPECT_FALSE(tick1.stop);
  EXPECT_FALSE(tick1.probe);  // one strike: donor may just be slow
  ASSERT_FALSE(mgr.plan_requests(4).empty());
  auto tick2 = mgr.on_retry_tick(0, true, stats);
  EXPECT_FALSE(tick2.stop);
  EXPECT_TRUE(tick2.probe);  // struck out: only a fresh probe finds donors

  // The fetch becomes moot once the replica caught up past the target.
  auto done = mgr.on_retry_tick(/*last_executed=*/16, /*behind=*/false, stats);
  EXPECT_TRUE(done.stop);
  EXPECT_FALSE(mgr.active());
}

TEST(StateTransferManagerTest, AdoptResultDistinguishesStaleFromLyingManifest) {
  Bytes envelope = patterned_envelope(1024);
  ChunkedSnapshot snap(as_span(envelope), 1024);
  RuntimeStats stats;

  // Lying manifest: adoption failed and the target is still ahead of the
  // replica — the sender is excluded and the caller must re-probe.
  StateTransferManager mgr(1024, 4);
  mgr.begin_probe();
  ASSERT_TRUE(feed_manifest(mgr, manifest_of(snap, 1, 16), 0));
  EXPECT_TRUE(mgr.on_adopt_result(/*adopted=*/false, /*last_executed=*/0));
  EXPECT_TRUE(mgr.active());                 // fetch restarts
  EXPECT_FALSE(mgr.has_target());            // against a fresh manifest
  EXPECT_FALSE(feed_manifest(mgr, manifest_of(snap, 1, 16), 0));  // liar excluded

  // Stale target: adoption failed only because the replica caught up past
  // the checkpoint through the ordering protocol — nothing went wrong.
  StateTransferManager stale(1024, 4);
  stale.begin_probe();
  ASSERT_TRUE(feed_manifest(stale, manifest_of(snap, 2, 16), 0));
  EXPECT_FALSE(stale.on_adopt_result(/*adopted=*/false, /*last_executed=*/16));
  EXPECT_FALSE(stale.active());

  // Success clears everything.
  StateTransferManager ok(1024, 4);
  ok.begin_probe();
  ASSERT_TRUE(feed_manifest(ok, manifest_of(snap, 3, 16), 0));
  EXPECT_FALSE(ok.on_adopt_result(/*adopted=*/true, /*last_executed=*/16));
  EXPECT_FALSE(ok.active());
}

// ---------------------------------------------------------------------------
// Chunk-stable snapshot encoding (the layout delta transfer relies on)

/// Chunks `base`/`target` and counts how many of `target`'s chunks carry
/// content no chunk of `base` carries — exactly the donor's delta diff.
uint32_t differing_chunks(const Bytes& base, const Bytes& target,
                          uint32_t chunk_size) {
  ChunkedSnapshot b(as_span(base), chunk_size);
  ChunkedSnapshot t(as_span(target), chunk_size);
  std::set<Digest> base_hashes(b.leaf_hashes().begin(), b.leaf_hashes().end());
  uint32_t differing = 0;
  for (const Digest& leaf : t.leaf_hashes()) {
    if (!base_hashes.count(leaf)) ++differing;
  }
  return differing;
}

Bytes kv_key(uint32_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "key-%06u", i);
  return to_bytes(buf);
}

TEST(ChunkStableSnapshot, SmallMutationPerturbsFewChunks) {
  // 2000 keys with the paged layout: overwriting a handful of values must
  // dirty only their sections' chunks, not shift every byte after them (the
  // flat layout re-wrote the whole tail on any size change).
  kv::KvService a;
  a.set_snapshot_chunk_hint(1024);
  for (uint32_t i = 0; i < 2000; ++i) {
    a.put(as_span(kv_key(i)), as_span(Bytes(48, static_cast<uint8_t>(i))));
  }
  Bytes before = a.snapshot();
  for (uint32_t i : {17u, 444u, 902u, 1500u, 1999u}) {
    a.put(as_span(kv_key(i)), as_span(Bytes(48, 0xAB)));
  }
  Bytes after = a.snapshot();
  ReplyCache replies;
  Bytes env_before = encode_checkpoint_snapshot(as_span(before), replies, 1024);
  Bytes env_after = encode_checkpoint_snapshot(as_span(after), replies, 1024);
  uint32_t total = ChunkedSnapshot(as_span(env_after), 1024).chunk_count();
  uint32_t differing = differing_chunks(env_before, env_after, 1024);
  EXPECT_GT(differing, 0u);
  EXPECT_GE(total, 100u);
  EXPECT_LE(differing, 30u) << "a 5-key mutation dirtied " << differing << "/"
                            << total << " chunks — layout is not chunk-stable";

  // An *insertion* must stay local too: sections after it may shift by whole
  // pages, which the content-addressed diff absorbs.
  a.put(as_span(to_bytes("key-000500-new")), as_span(Bytes(48, 0xCD)));
  Bytes env_ins = encode_checkpoint_snapshot(as_span(a.snapshot()), replies, 1024);
  EXPECT_LE(differing_chunks(env_after, env_ins, 1024), 8u);
}

TEST(ChunkStableSnapshot, PagedRoundTripAndLegacyRestore) {
  kv::KvService a;
  a.set_snapshot_chunk_hint(1024);
  for (uint32_t i = 0; i < 300; ++i) {
    a.put(as_span(kv_key(i)), as_span(Bytes(40, static_cast<uint8_t>(i * 7))));
  }
  Bytes paged = a.snapshot();
  EXPECT_EQ(paged.size() % 1024, 0u);  // sections padded to the page grid

  kv::KvService b;
  ASSERT_TRUE(b.restore(as_span(paged)));
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.size(), 300u);

  // The pre-paged flat format (u64 count + pairs) still restores: snapshots
  // persisted by older WALs.
  Writer w;
  w.u64(2);
  w.bytes(as_span(to_bytes("k1")));
  w.bytes(as_span(to_bytes("v1")));
  w.bytes(as_span(to_bytes("k2")));
  w.bytes(as_span(to_bytes("v2")));
  kv::KvService legacy;
  ASSERT_TRUE(legacy.restore(as_span(w.data())));
  EXPECT_EQ(legacy.get(as_span(to_bytes("k2"))), to_bytes("v2"));

  // Truncated paged input must be rejected.
  Bytes truncated(paged.begin(), paged.begin() + paged.size() - 512);
  kv::KvService c;
  EXPECT_FALSE(c.restore(as_span(truncated)));
}

TEST(CheckpointSnapshot, AlignedEnvelopeRoundTrip) {
  ReplyCache cache;
  cache.store(11, 5, 2, 0, to_bytes("r"));
  Bytes state(5000, 0x5a);  // >= 4 chunks of 512: the aligned layout engages
  Bytes envelope = encode_checkpoint_snapshot(as_span(state), cache, 512);
  EXPECT_EQ((envelope.size() - cache.encode().size()) % 512, 0u);
  auto decoded = decode_checkpoint_snapshot(as_span(envelope));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->service_state, state);
  ASSERT_NE(decoded->replies.find(11), nullptr);

  // Truncation anywhere must reject the envelope, exactly like version 1.
  Bytes cut(envelope.begin(), envelope.end() - 1);
  EXPECT_FALSE(decode_checkpoint_snapshot(as_span(cut)).has_value());

  // A small state skips the padding (compact layout) but round-trips the same.
  Bytes tiny = encode_checkpoint_snapshot(as_span(to_bytes("svc")), cache, 65536);
  EXPECT_LT(tiny.size(), 1000u);
  auto tiny_decoded = decode_checkpoint_snapshot(as_span(tiny));
  ASSERT_TRUE(tiny_decoded.has_value());
  EXPECT_EQ(tiny_decoded->service_state, to_bytes("svc"));
}

// ---------------------------------------------------------------------------
// Delta state transfer + donor-side rate limiting (unit level)

ExecCertificate cert_at(SeqNum seq) {
  ExecCertificate cert;
  cert.seq = seq;
  return cert;
}

TEST(StateTransferManagerTest, DeltaManifestSeedsUnchangedChunks) {
  // Base: 8 chunks. Target: chunks 2 and 5 mutated, one chunk appended. A
  // briefly-behind fetcher advertising the base must seed the 6 shared chunks
  // locally and fetch only the 3 that differ.
  Bytes base_env = patterned_envelope(8 * 1024);
  Bytes target_env = base_env;
  std::fill(target_env.begin() + 2 * 1024, target_env.begin() + 3 * 1024, 0xAB);
  std::fill(target_env.begin() + 5 * 1024, target_env.begin() + 6 * 1024, 0xCD);
  target_env.insert(target_env.end(), 1024, 0xEE);  // 9 chunks now

  // Donor: sealed the base checkpoint, then the target (retiring the base's
  // chunk hashes into its delta history).
  StateTransferManager donor(1024, 8);
  CheckpointManager donor_cp(16);
  donor_cp.adopt(cert_at(16), base_env);
  EXPECT_TRUE(donor.note_checkpoint(donor_cp));
  donor_cp.adopt(cert_at(32), target_env);
  EXPECT_TRUE(donor.note_checkpoint(donor_cp));

  // Fetcher: retains the base as its shippable pair.
  StateTransferManager fetcher(1024, 8);
  CheckpointManager fetcher_cp(16);
  fetcher_cp.adopt(cert_at(16), base_env);
  StateTransferRequestMsg probe = fetcher.make_probe(fetcher_cp, /*self=*/4,
                                                     /*last_executed=*/16);
  EXPECT_EQ(probe.base_seq, 16u);

  auto manifest = donor.make_manifest(donor_cp, probe, /*donor=*/1);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->base_seq, 16u);
  EXPECT_EQ(manifest->base_map.size(), 6u);

  RuntimeStats stats;
  ASSERT_TRUE(fetcher.on_manifest(*manifest, 16, fetcher_cp, stats));
  EXPECT_EQ(stats.delta_chunks_skipped, 6u);
  EXPECT_EQ(stats.delta_bytes_saved, 6u * 1024u);
  EXPECT_FALSE(fetcher.fetch_complete());

  // Only the differing chunks go on the wire.
  auto plan = fetcher.plan_requests(4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].second.indices, (std::vector<uint32_t>{2, 5, 8}));
  RuntimeStats donor_stats;
  using Verdict = StateTransferManager::ChunkVerdict;
  Verdict last = Verdict::kRejected;
  for (StateChunkMsg& c :
       donor.make_chunks(donor_cp, plan[0].second, 1, donor_stats)) {
    last = fetcher.on_chunk(c, stats);
  }
  EXPECT_EQ(last, Verdict::kCompleted);
  EXPECT_EQ(stats.state_transfer_chunks_fetched, 3u);
  EXPECT_EQ(stats.state_transfer_bytes_transferred, 3u * 1024u);
  EXPECT_EQ(fetcher.take_envelope(), target_env);
}

TEST(StateTransferManagerTest, LateDeltaManifestSeedsMidFetch) {
  // The adopted manifest may come from a donor without the base (full); a
  // later same-transfer manifest carrying the delta section must still seed
  // the missing unchanged chunks — delta savings must not depend on message
  // arrival order.
  Bytes base_env = patterned_envelope(8 * 1024);
  Bytes target_env = base_env;
  std::fill(target_env.begin() + 2 * 1024, target_env.begin() + 3 * 1024, 0xAB);

  StateTransferManager donor(1024, 8);
  CheckpointManager donor_cp(16);
  donor_cp.adopt(cert_at(16), base_env);
  donor.note_checkpoint(donor_cp);
  donor_cp.adopt(cert_at(32), target_env);
  donor.note_checkpoint(donor_cp);

  StateTransferManager fetcher(1024, 16);
  CheckpointManager fetcher_cp(16);
  fetcher_cp.adopt(cert_at(16), base_env);
  StateTransferRequestMsg probe = fetcher.make_probe(fetcher_cp, 4, 16);

  // A full manifest (donor 9 lost its history) adopts the target first and
  // every chunk gets planned onto it.
  ChunkedSnapshot tsnap(as_span(target_env), 1024);
  RuntimeStats stats;
  ASSERT_TRUE(fetcher.on_manifest(manifest_of(tsnap, /*donor=*/9, /*seq=*/32),
                                  16, fetcher_cp, stats));
  EXPECT_EQ(stats.delta_chunks_skipped, 0u);
  ASSERT_FALSE(fetcher.plan_requests(4).empty());  // all 8 outstanding at 9

  // Donor 1's delta manifest for the same transfer arrives later: the seven
  // unchanged chunks seed immediately, leaving only chunk 2 on the wire.
  auto delta = donor.make_manifest(donor_cp, probe, /*donor=*/1);
  ASSERT_TRUE(delta.has_value());
  ASSERT_EQ(delta->base_seq, 16u);
  ASSERT_TRUE(fetcher.on_manifest(*delta, 16, fetcher_cp, stats));
  EXPECT_EQ(stats.delta_chunks_skipped, 7u);
  EXPECT_EQ(fetcher.chunks_received(), 7u);
  // The seeded chunks were retired from the outstanding marks: a retry tick
  // re-plans exactly the one differing chunk.
  fetcher.on_retry(stats);
  auto plan = fetcher.plan_requests(4);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].second.indices, (std::vector<uint32_t>{2}));

  // Seeded bytes are only covered by the final state-root check; if that
  // fails, the delta's seeder must fall with the adopted manifest's sender —
  // a lying delta section can never wedge the fetch by getting only the
  // honest adopter blamed.
  EXPECT_TRUE(fetcher.on_adopt_result(/*adopted=*/false, /*last_executed=*/16));
  EXPECT_TRUE(fetcher.donor_excluded(9));  // adopted manifest's sender
  EXPECT_TRUE(fetcher.donor_excluded(1));  // delta seeder
}

TEST(StateTransferManagerTest, UnknownBaseFallsBackToFullManifest) {
  Bytes target_env = patterned_envelope(6 * 1024);
  StateTransferManager donor(1024, 8);
  CheckpointManager donor_cp(16);
  donor_cp.adopt(cert_at(32), target_env);
  EXPECT_TRUE(donor.note_checkpoint(donor_cp));  // no retired base: no history

  // A probe advertising a base this donor never held gets a full manifest —
  // the wiped/long-gone fetcher path, and the "base it no longer holds" path
  // of the repeated-wipe scenario.
  StateTransferRequestMsg probe;
  probe.requester = 4;
  probe.have_seq = 16;
  probe.base_seq = 16;
  probe.base_root = crypto::sha256(as_span(to_bytes("unknown-base")));
  auto manifest = donor.make_manifest(donor_cp, probe, /*donor=*/1);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->base_seq, 0u);
  EXPECT_TRUE(manifest->delta_bitmap.empty());
  EXPECT_TRUE(manifest->base_map.empty());

  // A wiped fetcher (no shippable pair) advertises no base at all.
  StateTransferManager fetcher(1024, 8);
  CheckpointManager empty_cp(16);
  StateTransferRequestMsg wiped = fetcher.make_probe(empty_cp, 4, 0);
  EXPECT_EQ(wiped.base_seq, 0u);
}

TEST(StateTransferManagerTest, ThrottledRequestReservedOnDonorTick) {
  // The max_chunks_per_request_ / rate-limiter interplay: a request within
  // the per-request cap but beyond the per-tick budget is trimmed, and the
  // remainder is re-served on subsequent donor ticks — never dropped.
  Bytes env = patterned_envelope(8 * 1024);
  StateTransferManager donor(1024, /*max_chunks_per_request=*/8,
                             /*donor_chunks_per_tick=*/2);
  CheckpointManager cp(16);
  cp.adopt(cert_at(16), env);
  ChunkedSnapshot snap(as_span(env), 1024);
  RuntimeStats stats;

  StateChunkRequestMsg req;
  req.requester = 4;
  req.seq = 16;
  req.chunk_root = snap.transfer_root();
  req.indices = {0, 1, 2, 3, 4};
  auto served = donor.make_chunks(cp, req, /*self=*/1, stats,
                                  /*requester_node=*/3);
  EXPECT_EQ(served.size(), 2u);  // budget for this tick
  EXPECT_EQ(stats.donor_chunks_throttled, 3u);
  EXPECT_EQ(donor.donor_deferred_requests(), 1u);
  ASSERT_TRUE(donor.donor_tick_needed());

  // The fetcher's retry tick re-requests chunks the limiter is still sitting
  // on: those must dedup against the queue, not pile up as duplicates.
  StateChunkRequestMsg retry_req = req;
  retry_req.indices = {2, 3, 4};
  EXPECT_TRUE(donor.make_chunks(cp, retry_req, 1, stats, 3).empty());
  EXPECT_EQ(donor.donor_deferred_requests(), 1u);
  EXPECT_EQ(stats.donor_chunks_throttled, 3u);  // nothing newly queued

  // Tick 1 re-serves within a fresh budget (and re-defers the overflow).
  auto tick1 = donor.on_donor_tick(cp, 1, stats);
  ASSERT_EQ(tick1.size(), 2u);
  EXPECT_EQ(tick1[0].first, 3u);  // addressed to the requester's node
  EXPECT_EQ(tick1[0].second.index, 2u);
  auto tick2 = donor.on_donor_tick(cp, 1, stats);
  ASSERT_EQ(tick2.size(), 1u);
  EXPECT_EQ(tick2[0].second.index, 4u);
  // All five indices ultimately served, each chunk Merkle-valid.
  EXPECT_EQ(stats.state_transfer_chunks_served, 5u);
  for (const auto& [requester, c] : tick1) {
    EXPECT_TRUE(merkle::BlockMerkleTree::verify(
        snap.chunk_root(), ChunkedSnapshot::chunk_leaf(as_span(c.data)), c.proof));
  }
  auto tick3 = donor.on_donor_tick(cp, 1, stats);
  EXPECT_TRUE(tick3.empty());
  EXPECT_FALSE(donor.donor_tick_needed());  // budget idle, queue drained

  // A deferred request the checkpoint advanced past is dropped on the tick
  // (the fetcher's retry re-plans it); the queue never wedges.
  auto again = donor.make_chunks(cp, req, 1, stats, 3);
  EXPECT_EQ(again.size(), 2u);
  EXPECT_EQ(donor.donor_deferred_requests(), 1u);
  cp.adopt(cert_at(32), patterned_envelope(2 * 1024));
  EXPECT_TRUE(donor.on_donor_tick(cp, 1, stats).empty());
  EXPECT_FALSE(donor.donor_tick_needed());
}

}  // namespace
}  // namespace sbft::runtime

// ---------------------------------------------------------------------------
// Seed-bug regressions (ROADMAP "known seed bugs")

namespace sbft::harness {
namespace {

TEST(SeedRegressions, CheckpointSnapshotCapturedAtExecutionNotCertification) {
  // Seed bug: checkpoint snapshots were captured when the certificate formed;
  // by then the service had often executed further, so the shipped
  // (certificate, snapshot) pair failed state-transfer verification. The
  // CheckpointManager must promote the snapshot captured when the checkpoint
  // sequence *executed*, never a live capture from a moved-on service.
  FastKvService service;
  runtime::ReplyCache replies;
  runtime::CheckpointManager manager(4);

  for (int i = 0; i < 4; ++i) service.execute(as_span(to_bytes("op"))); // 1..4
  Digest root4 = service.state_digest();
  manager.capture_pending(
      4, runtime::encode_checkpoint_snapshot(as_span(service.snapshot()), replies));

  // The service executes past the checkpoint before its certificate forms.
  service.execute(as_span(to_bytes("op5")));
  service.execute(as_span(to_bytes("op6")));

  ExecCertificate cert;
  cert.seq = 4;
  cert.state_root = root4;
  bool recorded = manager.make_stable(cert, /*last_executed=*/6, []() -> Bytes {
    ADD_FAILURE() << "live capture would pair moved-on state with the cert";
    return {};
  });
  ASSERT_TRUE(recorded);

  // The shippable pair is consistent: restoring the snapshot reproduces
  // exactly the certified state root.
  auto decoded = runtime::decode_checkpoint_snapshot(as_span(manager.snapshot()));
  ASSERT_TRUE(decoded.has_value());
  FastKvService fresh;
  ASSERT_TRUE(fresh.restore(as_span(decoded->service_state)));
  EXPECT_EQ(fresh.state_digest(), manager.snapshot_cert().state_root);

  // A later checkpoint whose execution-time snapshot is missing (executed by
  // a previous incarnation) must keep the previous consistent pair.
  ExecCertificate cert8;
  cert8.seq = 8;
  cert8.state_root = service.state_digest();
  EXPECT_FALSE(manager.make_stable(cert8, /*last_executed=*/10,
                                   []() -> Bytes { return {}; }));
  EXPECT_EQ(manager.last_stable(), 8u);          // stable advanced...
  EXPECT_EQ(manager.snapshot_cert().seq, 4u);    // ...shippable pair kept
}

TEST(SeedRegressions, ExactlyQuorumViewChangeRecommitsStalledSlots) {
  // Seed bug: Slot::sent_commit_share was bound to the slot, not to the
  // certificate, so a slot whose slow round stalled in view v could never
  // commit in a later view — with exactly 2f+1 replicas alive every commit
  // share is needed and the view change livelocked.
  ClusterOptions opts;
  opts.kind = ProtocolKind::kLinearPbft;  // slow path only: commit shares on every slot
  opts.f = 1;
  opts.num_clients = 2;
  opts.requests_per_client = 150;
  opts.topology = sim::lan_topology();
  opts.seed = 7;
  Cluster cluster(std::move(opts));
  cluster.run_for(100'000);  // slow-path slots in flight in view 0
  cluster.crash_replica(1);  // view-0 primary; exactly 2f+1 = 3 remain
  ASSERT_TRUE(cluster.run_until_done(600'000'000))
      << "clients stalled: stalled slots were not re-committed in the new view";
  EXPECT_GT(cluster.total_view_changes(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::harness

// ---------------------------------------------------------------------------
// Reply-cache persistence across checkpoints (EVM-transfer hazard)

namespace sbft::recovery {
namespace {

using evm::CallTx;
using evm::CreateTx;
using evm::EvmLedgerService;
using evm::U256;

evm::U256 word_of(const evm::Address& a) {
  return U256::from_bytes_be(ByteSpan{a.data(), a.size()});
}

struct EvmLedgerFixture {
  evm::Address deployer{{1}};
  evm::Address alice{{2}};
  evm::Address bob{{3}};
  evm::Address token = EvmLedgerService::derive_address(evm::Address{{1}}, 0);

  Bytes op_create() const {
    return evm::encode_create(CreateTx{deployer, evm::token_contract()});
  }
  Bytes op_mint(uint64_t amount) const {
    return evm::encode_call(
        CallTx{alice, token, evm::token_call_mint(word_of(alice), U256(amount))});
  }
  Bytes op_transfer(uint64_t amount) const {
    return evm::encode_call(
        CallTx{alice, token, evm::token_call_transfer(word_of(bob), U256(amount))});
  }
  Bytes op_balance() const {
    return evm::encode_call(
        CallTx{alice, token, evm::token_call_balance_of(word_of(alice))});
  }

  static Bytes block_of(SeqNum s, std::vector<std::pair<uint64_t, Bytes>> reqs) {
    Block block;
    for (auto& [ts, op] : reqs) {
      Request req;
      req.client = 7;
      req.timestamp = ts;
      req.op = std::move(op);
      block.requests.push_back(std::move(req));
    }
    return encode_message(Message(PrePrepareMsg{s, 0, std::move(block)}));
  }

  /// Ledger where block 3 carries a *duplicate* (same client, timestamp 3) of
  /// the transfer executed in block 1 — i.e. a retry that slipped into a
  /// later decision block, whose duplicate lands beyond the checkpoint at 2.
  std::shared_ptr<storage::MemoryLedgerStorage> full_ledger() const {
    auto ledger = std::make_shared<storage::MemoryLedgerStorage>();
    ledger->append_block(1, as_span(block_of(1, {{1, op_create()},
                                                 {2, op_mint(100)},
                                                 {3, op_transfer(10)}})));
    ledger->append_block(2, as_span(block_of(2, {{4, op_balance()}})));
    ledger->append_block(3, as_span(block_of(3, {{3, op_transfer(10)}})));  // dup
    ledger->append_block(4, as_span(block_of(4, {{5, op_balance()}})));
    return ledger;
  }

  static std::function<std::unique_ptr<IService>()> factory() {
    return [] { return std::make_unique<EvmLedgerService>(); };
  }
};

TEST(ReplyCachePersistence, EvmTransferNotReExecutedAfterRecovery) {
  EvmLedgerFixture fx;
  auto ledger = fx.full_ledger();

  // Reference: contiguous replay from genesis. The reply cache built along
  // the way suppresses the duplicate transfer, so alice ends at 90.
  RecoveryManager reference_manager(ledger, nullptr);
  auto reference = reference_manager.recover(fx.factory());
  ASSERT_TRUE(reference.has_value());

  // Checkpoint at 2: replay the prefix once to derive the certificate, the
  // service snapshot, and — the point of this test — the reply cache.
  auto prefix = std::make_shared<storage::MemoryLedgerStorage>();
  prefix->append_block(1, *ledger->read_block(1));
  prefix->append_block(2, *ledger->read_block(2));
  RecoveryManager prefix_manager(prefix, nullptr);
  auto at2 = prefix_manager.recover(fx.factory());
  ASSERT_TRUE(at2.has_value());
  ASSERT_EQ(at2->last_executed, 2u);

  auto wal = std::make_shared<MemoryWal>();
  wal->record_checkpoint(
      at2->replayed[1].cert,
      as_span(runtime::encode_checkpoint_snapshot(as_span(at2->service->snapshot()),
                                                  at2->reply_cache)));

  // Recover from checkpoint + suffix: the persisted cache must suppress the
  // pre-checkpoint duplicate in block 3 instead of re-executing the transfer.
  RecoveryManager manager(ledger, wal);
  auto recovered = manager.recover(fx.factory());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_stable, 2u);
  EXPECT_EQ(recovered->last_executed, 4u);
  EXPECT_EQ(recovered->replayed.size(), 2u);  // only the suffix re-executed
  EXPECT_EQ(recovered->service->state_digest(), reference->service->state_digest());
  EXPECT_EQ(recovered->exec_digests.at(4), reference->exec_digests.at(4));
  // The recovered cache serves retries of every pre-crash request.
  ASSERT_NE(recovered->reply_cache.find(7), nullptr);
  EXPECT_EQ(recovered->reply_cache.find(7)->timestamp, 5u);
}

TEST(ReplyCachePersistence, WithoutPersistedCacheTheTransferDoubles) {
  // Hazard demonstration: a checkpoint snapshot *without* the reply cache
  // (the pre-envelope format) replays the duplicate transfer a second time —
  // the recovered state diverges from the certified execution. This is the
  // ROADMAP open item this subsystem closes; benign for idempotent KV puts,
  // wrong for EVM transfers.
  EvmLedgerFixture fx;
  auto ledger = fx.full_ledger();

  RecoveryManager reference_manager(ledger, nullptr);
  auto reference = reference_manager.recover(fx.factory());
  ASSERT_TRUE(reference.has_value());

  auto prefix = std::make_shared<storage::MemoryLedgerStorage>();
  prefix->append_block(1, *ledger->read_block(1));
  prefix->append_block(2, *ledger->read_block(2));
  RecoveryManager prefix_manager(prefix, nullptr);
  auto at2 = prefix_manager.recover(fx.factory());
  ASSERT_TRUE(at2.has_value());

  auto wal = std::make_shared<MemoryWal>();
  wal->record_checkpoint(at2->replayed[1].cert,
                         as_span(at2->service->snapshot()));  // bare: no cache

  RecoveryManager manager(ledger, wal);
  auto recovered = manager.recover(fx.factory());
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_executed, 4u);
  // The transfer re-executed: alice lost another 10 — state diverged.
  EXPECT_FALSE(recovered->service->state_digest() ==
               reference->service->state_digest());
}

}  // namespace
}  // namespace sbft::recovery

// ---------------------------------------------------------------------------
// Cross-protocol crash / restart / disk-wipe scenarios (identical Cluster API)

namespace sbft::harness {
namespace {

class CrossProtocolRecovery : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ClusterOptions base(uint64_t requests) const {
    ClusterOptions opts;
    opts.kind = GetParam();
    opts.f = 1;
    opts.c = 0;
    opts.num_clients = 2;
    opts.requests_per_client = requests;
    opts.topology = sim::lan_topology();
    opts.seed = 11;
    opts.tweak_config = [](ProtocolConfig& config) {
      config.win = 32;  // frequent checkpoints: recovery exercises snapshots
    };
    return opts;
  }
};

TEST_P(CrossProtocolRecovery, CrashRestartRejoinsFromWal) {
  // Acceptance scenario: kill a non-primary replica mid-run, restart it, and
  // watch it recover from WAL + ledger, rejoin, and keep executing — on both
  // protocols, through the same restart_schedule API.
  auto opts = base(400);
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/4'000'000,
                                   /*replica=*/3, /*wipe_storage=*/false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";

  const ReplicaHandle& restarted = cluster.replica(3);
  EXPECT_EQ(restarted.runtime_stats().recoveries, 1u);
  EXPECT_GT(restarted.runtime_stats().blocks_replayed, 0u)
      << "WAL/ledger were empty";
  // Rejoined: executed well past whatever it recovered to.
  EXPECT_GT(restarted.last_executed(), restarted.runtime_stats().blocks_replayed);
  if (GetParam() == ProtocolKind::kSbft) {
    // Re-entered the fast path (f=1, c=0: fast quorum needs all n=4 replicas,
    // so post-restart fast commits prove the recovered replica participates).
    EXPECT_GT(restarted.sbft()->stats().fast_commits, 0u);
  }
  EXPECT_EQ(cluster.total_recoveries(), 1u);
  EXPECT_GT(cluster.total_wal_bytes_written(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 400u);
  }
}

TEST_P(CrossProtocolRecovery, WipedDiskRecoversViaStateTransfer) {
  auto opts = base(300);
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/5'000'000,
                                   /*replica=*/4, /*wipe_storage=*/true});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  // Fast protocols may drain the clients before the scheduled restart; play
  // the schedule out and give the wiped replica time to state-transfer.
  if (cluster.simulator().now() < 6'000'000) {
    cluster.run_for(6'000'000 - cluster.simulator().now());
  }
  cluster.run_for(5'000'000);

  const ReplicaHandle& restarted = cluster.replica(4);
  EXPECT_EQ(restarted.runtime_stats().recoveries, 0u);  // nothing local survived
  EXPECT_GT(restarted.runtime_stats().state_transfers, 0u)
      << "empty replica never requested state transfer";
  EXPECT_GT(restarted.last_executed(), 0u) << "never caught up";
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 300u);
  }
}

TEST_P(CrossProtocolRecovery, RollingRestartKeepsClusterLiveAndSafe) {
  auto opts = base(400);
  opts.restart_schedule.push_back({1'000'000, 3'000'000, 2, false});
  opts.restart_schedule.push_back({5'000'000, 7'000'000, 3, false});
  opts.restart_schedule.push_back({9'000'000, 11'000'000, 4, false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(900'000'000)) << "clients stalled";
  // Clients may drain before the tail of the schedule; play it out so every
  // scheduled restart (and its recovery) actually happens.
  if (cluster.simulator().now() < 12'000'000) {
    cluster.run_for(12'000'000 - cluster.simulator().now());
  }
  EXPECT_EQ(cluster.total_recoveries(), 3u);
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 400u);
  }
}

TEST_P(CrossProtocolRecovery, RestartedReplicaServesPreCheckpointDuplicateFromCache) {
  // The acceptance criterion's sharp edge: after recovery, a duplicate of a
  // request executed *before* the stable checkpoint must be answered from the
  // reply cache persisted in the checkpoint snapshot — not re-executed, not
  // dropped. We replay such a duplicate straight at the restarted replica.
  auto opts = base(120);
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;  // checkpoint every 8 blocks
  };
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  ASSERT_GT(cluster.replica(2).last_stable(), 0u) << "no checkpoint formed";

  cluster.crash_replica(2);
  cluster.run_for(300'000);
  cluster.restart_replica(2);
  cluster.run_for(2'000'000);  // recover + settle

  const ReplicaHandle& restarted = cluster.replica(2);
  EXPECT_EQ(restarted.runtime_stats().recoveries, 1u);

  // Replay client n's first request (timestamp 1 — executed long before the
  // stable checkpoint) against the restarted replica.
  ClientId client = cluster.n();  // first client's node id == its ClientId
  ASSERT_NE(restarted.runtime().replies().find(client), nullptr)
      << "recovered reply cache lost the client";
  uint64_t hits_before = restarted.runtime_stats().reply_cache_hits;
  uint64_t executed_before = restarted.runtime_stats().requests_executed;
  Request dup;
  dup.client = client;
  dup.timestamp = 1;
  dup.op = to_bytes("retry-of-first-request");
  cluster.network().inject(client, restarted.node(),
                           make_message(ClientRequestMsg{dup}));
  cluster.run_for(200'000);

  EXPECT_GT(restarted.runtime_stats().reply_cache_hits, hits_before)
      << "duplicate was not served from the recovered reply cache";
  EXPECT_EQ(restarted.runtime_stats().requests_executed, executed_before)
      << "duplicate re-executed instead of being served from cache";
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Protocols, CrossProtocolRecovery,
                         ::testing::Values(ProtocolKind::kSbft,
                                           ProtocolKind::kPbft),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return info.param == ProtocolKind::kSbft ? "Sbft"
                                                                    : "Pbft";
                         });

// ---------------------------------------------------------------------------
// Chunked state transfer scenarios (docs/state_transfer.md describes the
// exact message flow these exercise; docs/scenarios.md indexes them). All run
// on both protocols through the identical Cluster API.

class ChunkedStateTransfer : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  /// Cluster whose replicas carry a real (multi-hundred-KB) KV state, so the
  /// checkpoint snapshot spans many chunks at the configured chunk size.
  ClusterOptions base(uint64_t requests, uint32_t chunk_size,
                      uint32_t value_size) const {
    ClusterOptions opts;
    opts.kind = GetParam();
    opts.f = 1;
    opts.c = 0;
    opts.num_clients = 2;
    opts.requests_per_client = requests;
    opts.topology = sim::lan_topology();
    opts.seed = 23;
    opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
    KvWorkloadOptions kv;
    kv.value_size = value_size;
    kv.key_space = 4096;
    opts.op_factory = kv_op_factory(kv);
    opts.tweak_config = [chunk_size](ProtocolConfig& config) {
      config.win = 32;  // frequent checkpoints
      config.state_transfer_chunk_size = chunk_size;
      config.state_transfer_retry_us = 200'000;
    };
    return opts;
  }

  const runtime::RuntimeStats& stats_of(Cluster& cluster, ReplicaId r) const {
    return cluster.replica(r).runtime_stats();
  }

  /// Runs until the wiped replica has stored its first chunks but not yet
  /// adopted the checkpoint — i.e. provably mid-transfer.
  ::testing::AssertionResult run_until_mid_transfer(Cluster& cluster,
                                                    ReplicaId fetcher) {
    for (int i = 0; i < 2000; ++i) {
      if (stats_of(cluster, fetcher).state_transfer_chunks_fetched > 0) break;
      cluster.run_for(5'000);
    }
    if (stats_of(cluster, fetcher).state_transfer_chunks_fetched == 0) {
      return ::testing::AssertionFailure() << "state transfer never started";
    }
    if (cluster.replica(fetcher).last_executed() != 0) {
      return ::testing::AssertionFailure()
             << "transfer completed before the fault could be injected";
    }
    return ::testing::AssertionSuccess();
  }

  /// Runs until the fetcher adopted a checkpoint (last_executed > 0).
  bool run_until_adopted(Cluster& cluster, ReplicaId fetcher) {
    for (int i = 0; i < 1200; ++i) {
      if (cluster.replica(fetcher).last_executed() > 0) return true;
      cluster.run_for(50'000);
    }
    return false;
  }
};

TEST_P(ChunkedStateTransfer, WipedReplicaRejoinsViaMultiChunkEvmTransfer) {
  // The acceptance scenario: a disk-wiped replica with a large EVM snapshot
  // (ERC-20-style tokens, balances, contract code) rejoins through chunked
  // state transfer on both protocols.
  ClusterOptions opts;
  opts.kind = GetParam();
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 40;
  opts.topology = sim::lan_topology();
  opts.seed = 29;
  opts.service_factory = [] { return std::make_unique<evm::EvmLedgerService>(); };
  opts.per_client_op_factory = [](ClientId id) {
    return eth_op_factory(id, EthWorkloadOptions{});
  };
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;  // checkpoint every 8 blocks
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
  };
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/4'000'000,
                                   /*replica=*/4, /*wipe_storage=*/true});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  if (cluster.simulator().now() < 5'000'000) {
    cluster.run_for(5'000'000 - cluster.simulator().now());
  }
  ASSERT_TRUE(run_until_adopted(cluster, 4)) << "wiped replica never caught up";

  const ReplicaHandle& restarted = cluster.replica(4);
  EXPECT_EQ(restarted.runtime_stats().recoveries, 0u);  // nothing local survived
  EXPECT_GT(restarted.runtime_stats().state_transfers, 0u);
  // The EVM snapshot spans many chunks at a 1KB chunk size.
  EXPECT_GE(restarted.runtime_stats().state_transfer_chunks_fetched, 4u);
  EXPECT_GT(restarted.last_stable(), 0u);
  EXPECT_EQ(restarted.runtime_stats().state_transfer_invalid_chunks, 0u);
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 40u);
  }
}

TEST_P(ChunkedStateTransfer, MidTransferDonorCrashIsSurvivedByResume) {
  auto opts = base(/*requests=*/250, /*chunk_size=*/2048, /*value_size=*/1024);
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  // Wipe replica 4; stretch its RTTs so the transfer takes many rounds and
  // the fault window below is wide.
  cluster.crash_replica(4);
  cluster.run_for(200'000);
  cluster.network().set_extra_latency(cluster.replica(4).node(), 20'000);
  cluster.restart_replica(4, /*wipe_storage=*/true);
  ASSERT_TRUE(run_until_mid_transfer(cluster, 4));

  // One of the donors dies mid-transfer. Its outstanding chunks go
  // unanswered; the retry tick re-plans them onto the surviving donors and
  // the fetch *resumes* — received chunks are never re-fetched.
  cluster.crash_replica(2);
  ASSERT_TRUE(run_until_adopted(cluster, 4)) << "transfer never completed";

  const runtime::RuntimeStats& st = stats_of(cluster, 4);
  EXPECT_GE(st.state_transfer_resumes, 1u) << "fetch restarted instead of resuming";
  EXPECT_EQ(st.state_transfer_invalid_chunks, 0u);
  EXPECT_GT(cluster.replica(4).last_stable(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST_P(ChunkedStateTransfer, PartitionDuringTransferResumesAfterHeal) {
  // First of the ROADMAP scenario ideas (docs/scenarios.md): partition during
  // restart — here cutting the fetcher off mid-transfer — must suspend the
  // fetch and resume it after the heal, not restart it.
  auto opts = base(/*requests=*/250, /*chunk_size=*/2048, /*value_size=*/1024);
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  cluster.crash_replica(4);
  cluster.run_for(200'000);
  cluster.network().set_extra_latency(cluster.replica(4).node(), 20'000);
  cluster.restart_replica(4, /*wipe_storage=*/true);
  ASSERT_TRUE(run_until_mid_transfer(cluster, 4));

  // Cut the fetcher off from every peer mid-transfer.
  NodeId fetcher_node = cluster.replica(4).node();
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    if (r != 4) cluster.network().disconnect(fetcher_node, cluster.replica(r).node());
  }
  cluster.run_for(300'000);  // drain whatever was already in flight
  uint64_t fetched_at_cut = stats_of(cluster, 4).state_transfer_chunks_fetched;
  ASSERT_GT(fetched_at_cut, 0u);
  cluster.run_for(1'000'000);  // several retry ticks fire into the void
  EXPECT_EQ(stats_of(cluster, 4).state_transfer_chunks_fetched, fetched_at_cut)
      << "chunks crossed a cut link";
  EXPECT_EQ(cluster.replica(4).last_executed(), 0u);

  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    if (r != 4) cluster.network().reconnect(fetcher_node, cluster.replica(r).node());
  }
  ASSERT_TRUE(run_until_adopted(cluster, 4)) << "transfer never completed after heal";

  const runtime::RuntimeStats& st = stats_of(cluster, 4);
  // The partition's retry ticks ran with partial data in hand: resumes, and
  // the pre-partition chunks were kept (total fetched only grew).
  EXPECT_GE(st.state_transfer_resumes, 1u);
  EXPECT_GT(st.state_transfer_chunks_fetched, fetched_at_cut);
  EXPECT_GT(cluster.replica(4).last_stable(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST_P(ChunkedStateTransfer, CorruptChunkDetectedAndRefetchedFromHonestDonor) {
  // A donor serving a bit-flipped chunk is caught by per-chunk Merkle
  // verification, excluded, and its chunks are re-fetched from the honest
  // donors — on both protocols (the corruption sits in the shared
  // chunk-serving path, so this needs no Byzantine ordering behaviour).
  auto opts = base(/*requests=*/120, /*chunk_size=*/2048, /*value_size=*/512);
  opts.corrupt_chunk_replicas = {2};
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/4'000'000,
                                   /*replica=*/4, /*wipe_storage=*/true});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  if (cluster.simulator().now() < 5'000'000) {
    cluster.run_for(5'000'000 - cluster.simulator().now());
  }
  ASSERT_TRUE(run_until_adopted(cluster, 4)) << "wiped replica never caught up";

  const runtime::RuntimeStats& st = stats_of(cluster, 4);
  EXPECT_GT(st.state_transfer_invalid_chunks, 0u)
      << "the corrupt donor was never detected";
  EXPECT_GT(cluster.replica(4).last_stable(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

// ---------------------------------------------------------------------------
// Delta state transfer, donor rate limiting, repeated disk wipe
// (docs/state_transfer.md "delta manifests"; docs/scenarios.md)

TEST_P(ChunkedStateTransfer, BrieflyLaggingReplicaRejoinsViaDelta) {
  // A replica that crashes for a couple of checkpoints and keeps its disk
  // must rejoin by fetching only the chunks that changed, seeding the rest
  // from the checkpoint it already holds.
  ClusterOptions opts;
  opts.kind = GetParam();
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 41;
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  opts.op_factory = hot_range_kv_op_factory(/*key_space=*/4096, /*hot=*/32,
                                            /*value_size=*/256,
                                            /*ops_per_request=*/16);
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 32;
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(4'000'000);  // populate the keyspace + form checkpoints
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  cluster.crash_replica(3);
  // Let the cluster seal a bounded number of new checkpoints (so the downed
  // replica's base stays within the donors' delta history) before restart.
  SeqNum stable_at_crash = cluster.replica(1).last_stable();
  uint64_t interval = cluster.config().checkpoint_interval();
  for (int i = 0; i < 400; ++i) {
    if (cluster.replica(1).last_stable() >= stable_at_crash + 2 * interval) break;
    cluster.run_for(50'000);
  }
  ASSERT_GE(cluster.replica(1).last_stable(), stable_at_crash + 2 * interval)
      << "cluster never advanced past the crashed replica";
  cluster.restart_replica(3);  // disk intact: recovers, then probes with a base

  for (int i = 0; i < 400; ++i) {
    if (stats_of(cluster, 3).delta_chunks_skipped > 0 &&
        cluster.replica(3).last_stable() > stable_at_crash) {
      break;
    }
    cluster.run_for(50'000);
  }
  const runtime::RuntimeStats& st = stats_of(cluster, 3);
  EXPECT_EQ(st.recoveries, 1u);  // local WAL survived
  EXPECT_GT(st.state_transfers, 0u);
  EXPECT_GT(st.delta_chunks_skipped, 0u)
      << "delta rejoin never engaged (full transfer instead)";
  EXPECT_GT(cluster.replica(3).last_stable(), stable_at_crash);
  // The point of the delta: with ~32 of 4096 keys hot, the bytes fetched over
  // the wire are a small fraction of the bytes seeded from the local base.
  EXPECT_GE(st.delta_bytes_saved, 3 * st.state_transfer_bytes_transferred)
      << "delta saved too little: " << st.delta_bytes_saved << " saved vs "
      << st.state_transfer_bytes_transferred << " fetched";
  EXPECT_EQ(st.state_transfer_invalid_chunks, 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST_P(ChunkedStateTransfer, RepeatedDiskWipeOfSameReplicaRefetchesFull) {
  // ROADMAP scenario "repeated disk wipe of the same replica": the second
  // wipe must re-fetch the full snapshot — never attempt a delta against a
  // base the wiped disk no longer holds.
  auto opts = base(/*requests=*/0, /*chunk_size=*/2048, /*value_size=*/512);
  // Pin static batching: the zero-delta assertions below require catch-up to
  // finish in ONE transfer round. The adaptive controller changes the block
  // cadence enough for the cluster to seal a checkpoint mid-transfer, which
  // adds a second round that legitimately deltas against the full snapshot
  // this incarnation just fetched — not the stale-base bug this test guards.
  auto inner = opts.tweak_config;
  opts.tweak_config = [inner](ProtocolConfig& config) {
    inner(config);
    config.adaptive_batching = false;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'500'000);
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  for (int wipe = 1; wipe <= 2; ++wipe) {
    cluster.crash_replica(4);
    cluster.run_for(300'000);
    cluster.restart_replica(4, /*wipe_storage=*/true);
    ASSERT_TRUE(run_until_adopted(cluster, 4))
        << "wiped replica never caught up (wipe #" << wipe << ")";
    const runtime::RuntimeStats& st = stats_of(cluster, 4);  // this incarnation
    EXPECT_EQ(st.recoveries, 0u) << "nothing local should survive a wipe";
    EXPECT_GT(st.state_transfer_chunks_fetched, 0u);
    EXPECT_EQ(st.delta_chunks_skipped, 0u)
        << "wipe #" << wipe << " attempted a delta without a base";
    EXPECT_EQ(st.delta_bytes_saved, 0u);
    cluster.run_for(1'000'000);  // participate before the next wipe
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST_P(ChunkedStateTransfer, DeltaHistoryDepthBoundsDelta) {
  // ROADMAP carry-over "deepen the donor delta history": the per-donor
  // retention is ProtocolConfig::state_transfer_delta_history (default 16).
  // A rejoiner whose base fell 17+ checkpoints behind must fall back to a
  // full-chunked transfer at the default depth, and succeed as a delta when
  // the deployment configures a deeper history.
  for (bool deep : {false, true}) {
    SCOPED_TRACE(deep ? "history=64" : "history=default(16)");
    auto opts = base(/*requests=*/600, /*chunk_size=*/2048, /*value_size=*/512);
    // Hot/cold workload: uniform-random puts shift the snapshot layout in
    // nearly every chunk, leaving nothing for a delta to skip regardless of
    // history depth. Populate 512 keys once, then churn only the first 32,
    // so the cold chunks stay byte-identical across the 18-checkpoint gap.
    opts.op_factory = hot_range_kv_op_factory(/*key_space=*/512, /*hot=*/32,
                                              /*value_size=*/512,
                                              /*ops_per_request=*/1);
    auto inner = opts.tweak_config;
    opts.tweak_config = [inner, deep](ProtocolConfig& config) {
      inner(config);
      if (deep) config.state_transfer_delta_history = 64;
    };
    Cluster cluster(std::move(opts));
    cluster.run_for(2'000'000);
    ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

    cluster.crash_replica(3);
    SeqNum stable_at_crash = cluster.replica(1).last_stable();
    uint64_t interval = cluster.config().checkpoint_interval();
    // Let the survivors seal 18 more checkpoints — safely past the default
    // 16-deep history — then drain ALL client traffic before the restart, so
    // the rejoin is exactly one transfer round against a frozen stable seq
    // (a moving target could legitimately add a second, delta round).
    for (int i = 0; i < 2000; ++i) {
      if (cluster.replica(1).last_stable() >= stable_at_crash + 18 * interval)
        break;
      cluster.run_for(50'000);
    }
    ASSERT_GE(cluster.replica(1).last_stable(), stable_at_crash + 18 * interval)
        << "workload too small to outrun the delta history";
    ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";

    cluster.restart_replica(3);  // disk intact: recovers, probes with a base
    for (int i = 0; i < 400; ++i) {
      if (cluster.replica(3).last_stable() > stable_at_crash) break;
      cluster.run_for(50'000);
    }
    const runtime::RuntimeStats& st = stats_of(cluster, 3);
    EXPECT_GT(cluster.replica(3).last_stable(), stable_at_crash)
        << "rejoiner never caught up";
    EXPECT_EQ(st.recoveries, 1u);
    EXPECT_GT(st.state_transfer_chunks_fetched, 0u);
    if (deep) {
      EXPECT_GT(st.delta_chunks_skipped, 0u)
          << "deep history should have served a delta";
    } else {
      EXPECT_EQ(st.delta_chunks_skipped, 0u)
          << "base beyond the history depth must fall back to full-chunked";
    }
    EXPECT_EQ(st.state_transfer_invalid_chunks, 0u);
    EXPECT_TRUE(cluster.check_agreement());
  }
}

TEST_P(ChunkedStateTransfer, ThrottledDonorsStillCompleteWipedRejoin) {
  // Donor-side chunk-rate limiting: donors bound chunks served per tick, the
  // trimmed remainders are re-served on donor ticks, and the wiped fetcher
  // still completes — on both protocols.
  auto opts = base(/*requests=*/250, /*chunk_size=*/2048, /*value_size=*/1024);
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 32;
    config.state_transfer_chunk_size = 2048;
    config.state_transfer_retry_us = 200'000;
    config.state_transfer_donor_chunks_per_tick = 4;   // well under the plans
    config.state_transfer_donor_tick_us = 50'000;
  };
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/4'000'000,
                                   /*replica=*/4, /*wipe_storage=*/true});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";
  if (cluster.simulator().now() < 5'000'000) {
    cluster.run_for(5'000'000 - cluster.simulator().now());
  }
  ASSERT_TRUE(run_until_adopted(cluster, 4)) << "throttled transfer never completed";

  uint64_t throttled = 0;
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    if (r != 4) throttled += stats_of(cluster, r).donor_chunks_throttled;
  }
  EXPECT_GT(throttled, 0u) << "rate limiter never engaged";
  EXPECT_GT(cluster.replica(4).last_stable(), 0u);
  EXPECT_EQ(stats_of(cluster, 4).state_transfer_invalid_chunks, 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Protocols, ChunkedStateTransfer,
                         ::testing::Values(ProtocolKind::kSbft,
                                           ProtocolKind::kPbft),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return info.param == ProtocolKind::kSbft ? "Sbft"
                                                                    : "Pbft";
                         });

// ---------------------------------------------------------------------------
// Group reconfiguration scenarios (docs/reconfiguration.md; ctest -L reconfig)

class Reconfiguration : public ::testing::TestWithParam<ProtocolKind> {
 protected:
  ClusterOptions base(uint32_t f, uint64_t seed) const {
    ClusterOptions opts;
    opts.kind = GetParam();
    opts.f = f;
    opts.c = 0;
    opts.num_clients = 2;
    opts.requests_per_client = 0;  // free-running: reconfig needs live traffic
    opts.topology = sim::lan_topology();
    opts.seed = seed;
    opts.tweak_config = [](ProtocolConfig& config) {
      config.win = 16;  // checkpoint every 8 blocks: epochs activate quickly
      config.state_transfer_chunk_size = 1024;
      config.state_transfer_retry_us = 200'000;
    };
    return opts;
  }

  /// Runs until `pred` holds, in 100ms steps, up to ~60s of simulated time.
  template <typename Pred>
  bool run_until(Cluster& cluster, Pred&& pred) {
    for (int i = 0; i < 600; ++i) {
      if (pred()) return true;
      cluster.run_for(100'000);
    }
    return pred();
  }

  uint64_t total_completed(Cluster& cluster) const {
    uint64_t total = 0;
    for (size_t i = 0; i < cluster.num_clients(); ++i) {
      total += cluster.client(i).completed();
    }
    return total;
  }
};

TEST_P(Reconfiguration, AddedReplicasJoinViaStateTransferAndSurviveNewF) {
  // The acceptance scenario: three replicas added by one ReconfigBlockMsg
  // join an f=1 cluster as wiped state-transfer fetchers; the enlarged
  // cluster (n=7, f=2) then keeps committing with two replicas crashed —
  // impossible at the old f.
  Cluster cluster(base(/*f=*/1, /*seed=*/51));
  cluster.run_for(1'500'000);
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  ReplicaId a = cluster.add_replica();
  ReplicaId b = cluster.add_replica();
  ReplicaId c = cluster.add_replica();
  ASSERT_EQ(a, 5u);
  ASSERT_EQ(c, 7u);
  cluster.submit_reconfig({a, b, c}, {}, /*new_f=*/2);

  ASSERT_TRUE(run_until(cluster, [&] {
    return cluster.replica(a).runtime_stats().joins_completed == 1 &&
           cluster.replica(b).runtime_stats().joins_completed == 1 &&
           cluster.replica(c).runtime_stats().joins_completed == 1;
  })) << "added replicas never joined";
  EXPECT_GE(cluster.replica(1).runtime_stats().epochs_activated, 1u);
  for (ReplicaId r : {a, b, c}) {
    const runtime::RuntimeStats& st = cluster.replica(r).runtime_stats();
    EXPECT_EQ(st.recoveries, 0u) << "joiner " << r << " had local state";
    EXPECT_GT(st.state_transfer_chunks_fetched, 0u)
        << "joiner " << r << " did not arrive via wiped state transfer";
    EXPECT_GT(cluster.replica(r).last_executed(), 0u);
  }

  // Joined replicas participate: the cluster keeps executing past the join.
  SeqNum joined_le = cluster.replica(1).last_executed();
  ASSERT_TRUE(run_until(cluster, [&] {
    return cluster.replica(a).last_executed() > joined_le;
  })) << "joined replica never executed new blocks";

  // f faults at the new f: one original and one added replica crash.
  cluster.crash_replica(4);
  cluster.crash_replica(b);
  SeqNum le_before = cluster.replica(1).last_executed();
  uint64_t completed_before = total_completed(cluster);
  ASSERT_TRUE(run_until(cluster, [&] {
    return cluster.replica(1).last_executed() > le_before + 4 &&
           total_completed(cluster) > completed_before + 8;
  })) << "enlarged cluster lost liveness under f=2 faults";
  EXPECT_TRUE(cluster.check_agreement());
}

TEST_P(Reconfiguration, RemovedReplicasDrainAndClusterStaysLive) {
  // Shrink n=7 (f=2) to n=4 (f=1): the removed replicas stop executing and
  // voting the moment the epoch activates, and the survivors keep serving.
  Cluster cluster(base(/*f=*/2, /*seed=*/53));
  cluster.run_for(1'500'000);
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  cluster.submit_reconfig({}, {5, 6, 7}, /*new_f=*/1);
  ASSERT_TRUE(run_until(cluster, [&] {
    return cluster.replica(1).runtime_stats().epochs_activated >= 1 &&
           cluster.replica(5).runtime_stats().epochs_activated >= 1;
  })) << "removal epoch never activated";

  // Drain: the removed replicas refuse post-epoch work — their execution
  // freezes while the shrunk cluster keeps committing.
  cluster.run_for(500'000);  // let in-flight pre-epoch work settle
  SeqNum frozen5 = cluster.replica(5).last_executed();
  SeqNum frozen6 = cluster.replica(6).last_executed();
  SeqNum le_before = cluster.replica(1).last_executed();
  uint64_t completed_before = total_completed(cluster);
  ASSERT_TRUE(run_until(cluster, [&] {
    return cluster.replica(1).last_executed() > le_before + 8 &&
           total_completed(cluster) > completed_before + 8;
  })) << "shrunk cluster lost liveness";
  EXPECT_EQ(cluster.replica(5).last_executed(), frozen5)
      << "removed replica kept executing";
  EXPECT_EQ(cluster.replica(6).last_executed(), frozen6);

  // A removed replica that crashes and restarts re-retires from its
  // recovered WAL (which carries the epoch that excluded it): it must not
  // come back as a perpetual state-transfer prober, let alone a voter.
  cluster.crash_replica(6);
  cluster.run_for(300'000);
  cluster.restart_replica(6);
  cluster.run_for(2'000'000);
  EXPECT_EQ(cluster.replica(6).last_executed(), frozen6)
      << "restarted removed replica resumed executing";
  EXPECT_EQ(cluster.replica(6).runtime_stats().state_transfers, 0u)
      << "restarted removed replica probes state transfer forever";
  EXPECT_TRUE(cluster.check_agreement());
}

TEST_P(Reconfiguration, IdleClusterNoopFillsToTheActivationBoundary) {
  // A staged reconfiguration activates at the next stable checkpoint — but a
  // checkpoint needs committed sequence numbers. With zero clients nothing
  // would ever commit, so the primary fills the gap with no-op blocks until
  // the activation boundary (docs/performance.md, "no-op fill").
  ClusterOptions opts = base(/*f=*/2, /*seed=*/61);
  opts.num_clients = 0;
  Cluster cluster(std::move(opts));
  cluster.run_for(500'000);
  EXPECT_EQ(cluster.max_executed(), 0u) << "idle cluster committed blocks";

  cluster.submit_reconfig({}, {5, 6, 7}, /*new_f=*/1);
  ASSERT_TRUE(run_until(cluster, [&] {
    return cluster.replica(1).runtime_stats().epochs_activated >= 1 &&
           cluster.replica(5).runtime_stats().epochs_activated >= 1;
  })) << "idle cluster never reached the activation boundary";

  uint64_t noops = 0;
  cluster.replica(1).for_each_stat([&](std::string_view name, uint64_t value) {
    if (name == "noop_fill_blocks") noops = value;
  });
  EXPECT_GT(noops, 0u) << "activation progressed without no-op fill";
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Protocols, Reconfiguration,
                         ::testing::Values(ProtocolKind::kSbft,
                                           ProtocolKind::kPbft),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return info.param == ProtocolKind::kSbft ? "Sbft"
                                                                    : "Pbft";
                         });

TEST(PbftWipedRejoin, AfterGrowReconfigCatchesUp) {
  // Regression for a schedule-fuzzer find (tests/fuzz_corpus/
  // seed-5-pbft-wiped-rejoin.sched): after a grow reconfiguration (f 1 -> 2),
  // a replica that crashes and restarts wiped was stranded at sequence 0
  // forever. Two compounding PBFT bugs:
  //   1. The history-less fetcher only knows its boot roster (activated_at
  //      0), so it demanded 2*f_new+1 = 5 checkpoint signature shares for a
  //      checkpoint that donors — correctly attributing it to the
  //      pre-activation epoch — prove with 2*f_old+1 = 3. Every certificate
  //      was rejected, forever. The weak-certificate rule (f+1 distinct
  //      member shares contain an honest voucher) is the sound threshold for
  //      a fetcher that cannot date the checkpoint.
  //   2. Once a checkpoint far behind the live frontier was adopted, the
  //      replica dropped every current pre-prepare as out-of-window, so
  //      execution_gap() (which inspects the slot map) never re-armed state
  //      transfer and checkpoint evidence a full window ahead was ignored.
  ClusterOptions opts;
  opts.kind = ProtocolKind::kPbft;
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 51;
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(1'500'000);
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  ReplicaId a = cluster.add_replica();
  ReplicaId b = cluster.add_replica();
  ReplicaId c = cluster.add_replica();
  cluster.submit_reconfig({a, b, c}, {}, /*new_f=*/2);
  bool joined = false;
  for (int i = 0; i < 600 && !joined; ++i) {
    joined = cluster.replica(c).runtime_stats().joins_completed == 1;
    cluster.run_for(100'000);
  }
  ASSERT_TRUE(joined) << "grow reconfiguration never completed";

  // The fuzzer's minimized shape: crash an *original* replica shortly after
  // activation, restart it wiped. Its newest reachable checkpoint then sits
  // at (or before) the activation boundary with only the old epoch's shares.
  cluster.crash_replica(3);
  cluster.run_for(1'000'000);
  cluster.restart_replica(3, /*wipe_storage=*/true);
  cluster.run_for(10'000'000);

  const runtime::RuntimeStats& st = cluster.replica(3).runtime_stats();
  EXPECT_GE(st.state_transfers, 1u) << "wiped replica never fetched state";
  EXPECT_GE(cluster.replica(3).last_executed(),
            cluster.replica(1).last_stable())
      << "wiped replica stranded behind the stable frontier (bug 1/2 "
         "resurfaced)";
  EXPECT_LT(cluster.pbft_replica(3)->stats().checkpoint_certs_rejected, 5u)
      << "fetcher stuck rejecting legitimate old-epoch certificates";
  EXPECT_TRUE(cluster.check_agreement());
}

// ---------------------------------------------------------------------------
// Remaining ROADMAP scenario: restart of the current primary mid-view-change

class PrimaryMidViewChangeRestart : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(PrimaryMidViewChangeRestart, RecoversLivenessWithoutDoubleExecution) {
  ClusterOptions opts;
  opts.kind = GetParam();
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 150;
  opts.topology = sim::lan_topology();
  opts.seed = 57;
  opts.tweak_config = [](ProtocolConfig& config) { config.win = 32; };
  Cluster cluster(std::move(opts));
  cluster.run_for(800'000);  // progress in view 0

  // Crash the view-0 primary plus one backup: the view change the survivors
  // start cannot reach its 2f+1 quorum — the cluster is wedged *mid-view-
  // change* when the primary restarts into it.
  cluster.crash_replica(1);
  cluster.crash_replica(3);
  // Client retry (4s) re-raises the survivors' progress obligation; their
  // progress timers (2s) then start the view change — which stalls short of
  // its 2f+1 quorum with only two replicas alive.
  cluster.run_for(10'000'000);
  EXPECT_GT(cluster.total_view_changes(), 0u) << "view change never started";
  EXPECT_EQ(cluster.replica(2).view(), 0u) << "view change completed early";

  cluster.restart_replica(1);  // the old primary rejoins mid-view-change
  ASSERT_TRUE(cluster.run_until_done(900'000'000)) << "liveness never resumed";
  EXPECT_EQ(cluster.replica(1).runtime_stats().recoveries, 1u);
  EXPECT_GT(cluster.replica(2).view(), 0u) << "no later view took over";
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 150u);
  }
  // No double execution via the reply cache: replicas 2 and 4 lived through
  // the whole run (including the clients' retry storms while wedged) — each
  // of the 300 requests executed at most once on them.
  for (ReplicaId r : {2u, 4u}) {
    EXPECT_LE(cluster.replica(r).runtime_stats().requests_executed, 300u)
        << "replica " << r << " re-executed retried requests";
  }
  // And the sharp form: a replayed duplicate of an executed request is served
  // from the cache, not re-executed.
  ClientId client = cluster.n();  // first client's node id == its ClientId
  const ReplicaHandle& survivor = cluster.replica(2);
  uint64_t executed_before = survivor.runtime_stats().requests_executed;
  Request dup;
  dup.client = client;
  dup.timestamp = 1;
  dup.op = to_bytes("retry-of-first-request");
  cluster.network().inject(client, survivor.node(),
                           make_message(ClientRequestMsg{dup}));
  cluster.run_for(200'000);
  EXPECT_EQ(survivor.runtime_stats().requests_executed, executed_before)
      << "duplicate re-executed instead of being served from cache";
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Protocols, PrimaryMidViewChangeRestart,
                         ::testing::Values(ProtocolKind::kSbft,
                                           ProtocolKind::kPbft),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return info.param == ProtocolKind::kSbft ? "Sbft"
                                                                    : "Pbft";
                         });

// ---------------------------------------------------------------------------
// FastKvService delta state transfer (its snapshots are now chunk-stable)

class FastKvDeltaTransfer : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(FastKvDeltaTransfer, BrieflyLaggingReplicaSkipsUnchangedChunks) {
  // FastKvService used to ignore the snapshot chunk hint, silently degrading
  // every delta rejoin to a full fetch. With the sharded paged serializer, a
  // workload cycling few distinct payloads dirties few shards — and a
  // briefly-lagging replica seeds the rest from its local base.
  ClusterOptions opts;
  opts.kind = GetParam();
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 61;
  // Few distinct op payloads => few dirty shards between checkpoints (the
  // shard is chosen by op-content hash).
  opts.op_factory = [](uint64_t i, Rng&) -> Bytes {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "hot-%u", static_cast<unsigned>(i % 8));
    return to_bytes(buf);
  };
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 32;
    config.state_transfer_chunk_size = 512;
    config.state_transfer_retry_us = 200'000;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'000'000);
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";

  cluster.crash_replica(3);
  SeqNum stable_at_crash = cluster.replica(1).last_stable();
  uint64_t interval = cluster.config().checkpoint_interval();
  for (int i = 0; i < 400; ++i) {
    if (cluster.replica(1).last_stable() >= stable_at_crash + 2 * interval) break;
    cluster.run_for(50'000);
  }
  ASSERT_GE(cluster.replica(1).last_stable(), stable_at_crash + 2 * interval);
  cluster.restart_replica(3);  // disk intact: probes with a delta base

  for (int i = 0; i < 400; ++i) {
    if (cluster.replica(3).runtime_stats().delta_chunks_skipped > 0 &&
        cluster.replica(3).last_stable() > stable_at_crash) {
      break;
    }
    cluster.run_for(50'000);
  }
  const runtime::RuntimeStats& st = cluster.replica(3).runtime_stats();
  EXPECT_EQ(st.recoveries, 1u);
  EXPECT_GT(st.delta_chunks_skipped, 0u)
      << "FastKv delta rejoin degraded to a full fetch";
  EXPECT_GT(st.delta_bytes_saved, 0u);
  EXPECT_GT(cluster.replica(3).last_stable(), stable_at_crash);
  EXPECT_EQ(st.state_transfer_invalid_chunks, 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

INSTANTIATE_TEST_SUITE_P(Protocols, FastKvDeltaTransfer,
                         ::testing::Values(ProtocolKind::kSbft,
                                           ProtocolKind::kPbft),
                         [](const ::testing::TestParamInfo<ProtocolKind>& info) {
                           return info.param == ProtocolKind::kSbft ? "Sbft"
                                                                    : "Pbft";
                         });

TEST(FastKvSnapshots, ChunkHintYieldsStableSectionsAndRoundTrips) {
  FastKvService a(/*shards=*/256);  // 4 KiB of shard state
  a.set_snapshot_chunk_hint(512);
  for (int i = 0; i < 100; ++i) {
    a.execute(as_span(to_bytes("op-" + std::to_string(i))));
  }
  Bytes before = a.snapshot();
  ASSERT_EQ(before.size() % 512, 0u) << "sections not page-aligned";

  // Round trip, independent of the restorer's current hint (the page rides
  // in the snapshot header).
  FastKvService b(/*shards=*/256);
  ASSERT_TRUE(b.restore(as_span(before)));
  EXPECT_TRUE(b.state_digest() == a.state_digest());

  // One more op dirties at most two pages: the header (op counter) and the
  // section of the single shard it folded into.
  a.execute(as_span(to_bytes("one-more-op")));
  Bytes after = a.snapshot();
  ASSERT_EQ(after.size(), before.size());
  size_t dirty = 0;
  for (size_t off = 0; off < before.size(); off += 512) {
    if (!std::equal(before.begin() + static_cast<ptrdiff_t>(off),
                    before.begin() + static_cast<ptrdiff_t>(off + 512),
                    after.begin() + static_cast<ptrdiff_t>(off))) {
      ++dirty;
    }
  }
  EXPECT_LE(dirty, 2u) << "a single op dirtied " << dirty << " pages";
  EXPECT_GE(dirty, 1u);
  EXPECT_FALSE(b.state_digest() == a.state_digest());

  // Without a hint (or with tiny state) the flat layout round-trips too.
  FastKvService flat(/*shards=*/8);
  flat.execute(as_span(to_bytes("x")));
  FastKvService flat2(/*shards=*/8);
  ASSERT_TRUE(flat2.restore(as_span(flat.snapshot())));
  EXPECT_TRUE(flat2.state_digest() == flat.state_digest());
}

// ---------------------------------------------------------------------------
// PBFT malicious-donor checkpoint trust (the quorum certificate bugfix)

TEST(PbftMaliciousDonor, FabricatedCheckpointNeedsQuorumCertificate) {
  // A single faulty donor fabricates a root-consistent checkpoint far ahead
  // of the cluster. On the old trust-the-channel path the wiped fetcher
  // adopts it; with verified quorum checkpoint certificates (2f+1 signed
  // checkpoint digests shipped with the manifest) it is rejected and the
  // fetcher lands on the honest checkpoint.
  for (bool verify : {false, true}) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kPbft;
    opts.f = 1;
    opts.c = 0;
    opts.num_clients = 2;
    opts.requests_per_client = 0;  // free-running
    opts.topology = sim::lan_topology();
    opts.seed = 67;
    opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
    KvWorkloadOptions kv;
    kv.value_size = 256;
    kv.key_space = 1024;
    opts.op_factory = kv_op_factory(kv);
    opts.fabricate_checkpoint_replicas = {2};
    opts.tweak_config = [verify](ProtocolConfig& config) {
      config.win = 16;
      config.state_transfer_chunk_size = 1024;
      config.state_transfer_retry_us = 200'000;
      config.pbft_verify_checkpoint_certs = verify;
    };
    Cluster cluster(std::move(opts));
    cluster.run_for(2'500'000);
    ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";
    uint64_t interval = cluster.config().checkpoint_interval();

    cluster.crash_replica(4);
    cluster.run_for(300'000);
    cluster.restart_replica(4, /*wipe_storage=*/true);
    for (int i = 0; i < 600; ++i) {
      if (cluster.replica(4).last_stable() > 0) break;
      cluster.run_for(50'000);
    }
    ASSERT_GT(cluster.replica(4).last_stable(), 0u)
        << "wiped replica adopted nothing (verify=" << verify << ")";

    SeqNum honest = cluster.replica(1).last_stable();
    SeqNum adopted = cluster.replica(4).last_stable();
    if (!verify) {
      // The regression this feature fixes: the fabricated checkpoint (dozens
      // of intervals ahead of anything real) was swallowed whole.
      EXPECT_GT(adopted, honest + 10 * interval)
          << "fetcher did not adopt the fabricated checkpoint on the "
             "trust-the-channel path — the regression test lost its teeth";
    } else {
      EXPECT_LE(adopted, honest + interval) << "fabricated checkpoint adopted";
      EXPECT_GT(cluster.pbft_replica(4)->stats().checkpoint_certs_rejected, 0u)
          << "the fabricated manifest was never rejected";
      EXPECT_TRUE(cluster.check_agreement());
    }
  }
}

}  // namespace
}  // namespace sbft::harness
