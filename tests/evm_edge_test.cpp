// EVM interpreter edge cases: introspection opcodes, memory ops, gas
// accounting boundaries, malformed code, and stack limits.
#include <gtest/gtest.h>

#include "evm/assembler.h"
#include "evm/vm.h"

namespace sbft::evm {
namespace {

struct NullHost : IEvmHost {
  U256 sload(const Address&, const U256&) const override { return U256(); }
  void sstore(const Address&, const U256&, const U256&) override {}
};

EvmResult run(const Assembler& a, uint64_t gas = 10'000'000) {
  NullHost host;
  Bytes code = a.assemble();
  EvmParams params;
  params.code = as_span(code);
  params.gas_limit = gas;
  return evm_execute(host, params);
}

U256 word(const EvmResult& r) { return U256::from_bytes_be(as_span(r.output)); }

Assembler& return_top(Assembler& a) {
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  return a;
}

TEST(VmEdge, PcReportsCodeOffset) {
  Assembler a;
  a.op(Op::JUMPDEST);  // offset 0
  a.op(Op::PC);        // offset 1: pushes 1
  return_top(a);
  EvmResult r = run(a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(word(r), U256(1));
}

TEST(VmEdge, MsizeTracksTouchedMemory) {
  Assembler a;
  a.push(uint64_t{1}).push(uint64_t{95}).op(Op::MSTORE8);  // touches byte 95
  a.op(Op::MSIZE);
  return_top(a);
  EvmResult r = run(a);
  ASSERT_TRUE(r.ok());
  // Memory grows in 32-byte words: 96 bytes.
  EXPECT_EQ(word(r), U256(96));
}

TEST(VmEdge, GasDecreasesMonotonically) {
  Assembler a;
  a.op(Op::GAS);
  return_top(a);
  EvmResult r = run(a, 50'000);
  ASSERT_TRUE(r.ok());
  U256 remaining = word(r);
  EXPECT_LT(remaining.low64(), 50'000u);
  EXPECT_GT(remaining.low64(), 49'000u);  // only a handful of cheap ops ran
}

TEST(VmEdge, Mstore8WritesSingleByte) {
  Assembler a;
  a.push(uint64_t{0xAB}).push(uint64_t{31}).op(Op::MSTORE8);
  a.push(uint64_t{0}).op(Op::MLOAD);
  return_top(a);
  EvmResult r = run(a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(word(r), U256(0xAB));  // lowest byte of the first word
}

TEST(VmEdge, CalldatacopyZeroFillsPastEnd) {
  NullHost host;
  Assembler a;
  // Copy 64 bytes from offset 0 of a 4-byte calldata into memory.
  a.push(uint64_t{64}).push(uint64_t{0}).push(uint64_t{0}).op(Op::CALLDATACOPY);
  a.push(uint64_t{0}).op(Op::MLOAD);
  return_top(a);
  Bytes code = a.assemble();
  Bytes calldata = {0x11, 0x22, 0x33, 0x44};
  EvmParams params;
  params.code = as_span(code);
  params.calldata = as_span(calldata);
  EvmResult r = evm_execute(host, params);
  ASSERT_TRUE(r.ok());
  // First word: 0x11223344 followed by 28 zero bytes.
  auto w = word(r).to_word();
  EXPECT_EQ(w[0], 0x11);
  EXPECT_EQ(w[3], 0x44);
  EXPECT_EQ(w[4], 0x00);
}

TEST(VmEdge, AddmodMulmodOpcodes) {
  Assembler a;
  // ADDMOD(10, 10, 8) = 4 : push order c, b, a (a on top).
  a.push(uint64_t{8}).push(uint64_t{10}).push(uint64_t{10}).op(Op::ADDMOD);
  return_top(a);
  EXPECT_EQ(word(run(a)), U256(4));
  Assembler m;
  m.push(uint64_t{8}).push(uint64_t{10}).push(uint64_t{10}).op(Op::MULMOD);
  return_top(m);
  EXPECT_EQ(word(run(m)), U256(4));
}

TEST(VmEdge, ExpOpcode) {
  Assembler a;
  a.push(uint64_t{10}).push(uint64_t{2}).op(Op::EXP);  // 2^10
  return_top(a);
  EXPECT_EQ(word(run(a)), U256(1024));
}

TEST(VmEdge, TruncatedPushZeroExtends) {
  // PUSH2 with only one byte of operand at the end of code: the missing byte
  // is treated as zero on the right (value 0xAB00).
  Bytes code = {0x61, 0xAB};  // PUSH2 0xAB<end>
  NullHost host;
  EvmParams params;
  params.code = as_span(code);
  EvmResult r = evm_execute(host, params);
  EXPECT_TRUE(r.ok());  // implicit STOP after the push
}

TEST(VmEdge, StackOverflowCaught) {
  // 1025 pushes exceed the 1024-entry stack.
  Assembler a;
  for (int i = 0; i < 1025; ++i) a.push(uint64_t{1});
  EvmResult r = run(a);
  EXPECT_EQ(r.status, EvmStatus::kInvalid);
  EXPECT_EQ(r.error, "stack overflow");
}

TEST(VmEdge, DupSwapUnderflowCaught) {
  Assembler a;
  a.push(uint64_t{1}).op(static_cast<Op>(0x8f));  // DUP16 with 1 element
  EXPECT_EQ(run(a).status, EvmStatus::kInvalid);
  Assembler b;
  b.push(uint64_t{1}).op(static_cast<Op>(0x9f));  // SWAP16 with 1 element
  EXPECT_EQ(run(b).status, EvmStatus::kInvalid);
}

TEST(VmEdge, JumpIntoPushDataRejected) {
  // Construct code where a JUMPDEST byte value (0x5b) sits inside push data;
  // jumping there must fail.
  Assembler a;
  a.push(uint64_t{0x5b});  // 0x60 0x5b — the 0x5b at offset 1 is data
  a.push(uint64_t{1}).op(Op::JUMP);
  EvmResult r = run(a);
  EXPECT_EQ(r.status, EvmStatus::kInvalid);
  EXPECT_EQ(r.error, "bad jump destination");
}

TEST(VmEdge, MemoryExpansionChargesGas) {
  // Touching a large offset must cost noticeably more than a small one.
  Assembler small;
  small.push(uint64_t{1}).push(uint64_t{0}).op(Op::MSTORE);
  small.op(Op::STOP);
  Assembler large;
  large.push(uint64_t{1}).push(uint64_t{100'000}).op(Op::MSTORE);
  large.op(Op::STOP);
  EvmResult rs = run(small);
  EvmResult rl = run(large);
  ASSERT_TRUE(rs.ok());
  ASSERT_TRUE(rl.ok());
  EXPECT_GT(rl.gas_used, rs.gas_used + 5000);
}

TEST(VmEdge, MemoryCapRejectsAbsurdOffsets) {
  Assembler a;
  a.push(U256(1).shl(40)).push(uint64_t{1});
  a.op(Op::SWAP1).op(Op::MSTORE);  // offset 2^40 — beyond the per-exec cap
  EvmResult r = run(a);
  EXPECT_NE(r.status, EvmStatus::kSuccess);
}

TEST(VmEdge, LogChargesAndCounts) {
  Assembler a;
  a.push(uint64_t{7}).push(uint64_t{32}).push(uint64_t{0}).op(Op::LOG1);
  a.op(Op::STOP);
  EvmResult r = run(a);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.log_count, 1u);
  EXPECT_GT(r.gas_used, 750u);  // LOG1 base cost
}

TEST(VmEdge, UnknownOpcodeFails) {
  Bytes code = {0xfe};  // INVALID
  NullHost host;
  EvmParams params;
  params.code = as_span(code);
  EvmResult r = evm_execute(host, params);
  EXPECT_EQ(r.status, EvmStatus::kInvalid);
}

TEST(VmEdge, RevertReturnsData) {
  Assembler a;
  a.push(uint64_t{0xdead}).push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::REVERT);
  EvmResult r = run(a);
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  EXPECT_EQ(U256::from_bytes_be(as_span(r.output)), U256(0xdead));
}

TEST(VmEdge, AssemblerRejectsUndefinedLabel) {
  Assembler a;
  a.push_label("nowhere").op(Op::JUMP);
  EXPECT_THROW(a.assemble(), std::logic_error);
}

}  // namespace
}  // namespace sbft::evm
