#include <gtest/gtest.h>

#include "sim/network.h"
#include "sim/simulator.h"

namespace sbft::sim {
namespace {

TEST(Simulator, EventsRunInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(300, [&] { order.push_back(3); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, SameTimeFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.schedule(50, [&order, i] { order.push_back(i); });
  }
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int fired = 0;
  sim.schedule(10, [&] {
    sim.after(5, [&] { ++fired; });
  });
  sim.run_until_idle();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 15);
}

TEST(Simulator, RunUntilStopsAtBoundary) {
  Simulator sim;
  int fired = 0;
  sim.schedule(100, [&] { ++fired; });
  sim.schedule(200, [&] { ++fired; });
  sim.run_until(150);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), 150);
  sim.run_until(250);
  EXPECT_EQ(fired, 2);
}

// ---------------------------------------------------------------------------
// Network

struct Recorder : IActor {
  std::vector<std::pair<NodeId, SimTime>> received;
  int64_t cpu_cost = 0;
  std::vector<NodeId> reply_to;

  void on_message(NodeId from, const Message&, ActorContext& ctx) override {
    received.emplace_back(from, ctx.now());
    if (cpu_cost) ctx.charge(cpu_cost);
    for (NodeId to : reply_to) {
      ctx.send(to, make_message(ClientReplyMsg{}));
    }
  }
};

struct Starter : IActor {
  NodeId target = 0;
  int copies = 1;
  void on_start(ActorContext& ctx) override {
    for (int i = 0; i < copies; ++i) {
      ctx.send(target, make_message(ClientRequestMsg{}));
    }
  }
  void on_message(NodeId, const Message&, ActorContext&) override {}
};

TEST(Network, DeliversWithLatency) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  Recorder recorder;
  net.add_node(&starter);
  starter.target = net.add_node(&recorder);
  net.start();
  sim.run_until_idle();
  ASSERT_EQ(recorder.received.size(), 1u);
  // LAN latency is ~100us one-way plus jitter and transmission.
  EXPECT_GE(recorder.received[0].second, 100);
  EXPECT_LT(recorder.received[0].second, 1000);
}

TEST(Network, CrashedNodeReceivesNothing) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  Recorder recorder;
  net.add_node(&starter);
  starter.target = net.add_node(&recorder);
  net.crash(starter.target);
  net.start();
  sim.run_until_idle();
  EXPECT_TRUE(recorder.received.empty());
}

TEST(Network, CutLinkDropsBothDirections) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  Recorder recorder;
  NodeId a = net.add_node(&starter);
  NodeId b = net.add_node(&recorder);
  starter.target = b;
  net.disconnect(a, b);
  net.start();
  sim.run_until_idle();
  EXPECT_TRUE(recorder.received.empty());
}

TEST(Network, CpuSerializesProcessing) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  starter.copies = 3;
  Recorder recorder;
  recorder.cpu_cost = 10'000;  // 10ms per message
  net.add_node(&starter);
  starter.target = net.add_node(&recorder);
  net.start();
  sim.run_until_idle();
  ASSERT_EQ(recorder.received.size(), 3u);
  // Handlers must start at least 10ms apart (sequential CPU).
  EXPECT_GE(recorder.received[1].second, recorder.received[0].second + 10'000);
  EXPECT_GE(recorder.received[2].second, recorder.received[1].second + 10'000);
}

TEST(Network, StragglerCpuFactorSlowsNode) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  starter.copies = 2;
  Recorder recorder;
  recorder.cpu_cost = 1000;
  net.add_node(&starter);
  starter.target = net.add_node(&recorder);
  net.set_cpu_factor(starter.target, 10.0);
  net.start();
  sim.run_until_idle();
  ASSERT_EQ(recorder.received.size(), 2u);
  EXPECT_GE(recorder.received[1].second, recorder.received[0].second + 10'000);
}

TEST(Network, WorldLatencyHigherThanLan) {
  CostModel costs;
  SimTime lan_time, world_time;
  {
    Simulator sim;
    Network net(sim, lan_topology(), costs);
    Starter s;
    Recorder r;
    net.add_node(&s);
    s.target = net.add_node(&r);
    net.start();
    sim.run_until_idle();
    lan_time = r.received[0].second;
  }
  {
    Simulator sim;
    Network net(sim, world_topology(), costs);
    Starter s;
    Recorder r;
    net.add_node(&s, 0);
    s.target = net.add_node(&r, 10);  // different continent
    net.start();
    sim.run_until_idle();
    world_time = r.received[0].second;
  }
  EXPECT_GT(world_time, lan_time * 10);
}

TEST(Network, StatsCountMessagesAndBytes) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  starter.copies = 4;
  Recorder recorder;
  net.add_node(&starter);
  starter.target = net.add_node(&recorder);
  net.start();
  sim.run_until_idle();
  auto totals = net.total_stats();
  EXPECT_EQ(totals.count, 4u);
  EXPECT_GT(totals.bytes, 0u);
  net.reset_stats();
  EXPECT_EQ(net.total_stats().count, 0u);
}

TEST(Network, DropProbabilityLosesMessages) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  starter.copies = 200;
  Recorder recorder;
  net.add_node(&starter);
  starter.target = net.add_node(&recorder);
  net.set_drop_probability(0.5);
  net.start();
  sim.run_until_idle();
  EXPECT_LT(recorder.received.size(), 180u);
  EXPECT_GT(recorder.received.size(), 20u);
}

TEST(Network, TimersFireAfterDelay) {
  struct TimerActor : IActor {
    SimTime fired_at = -1;
    void on_start(ActorContext& ctx) override { ctx.set_timer(5000, 42); }
    void on_message(NodeId, const Message&, ActorContext&) override {}
    void on_timer(uint64_t id, ActorContext& ctx) override {
      EXPECT_EQ(id, 42u);
      fired_at = ctx.now();
    }
  };
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  TimerActor actor;
  net.add_node(&actor);
  net.start();
  sim.run_until_idle();
  EXPECT_EQ(actor.fired_at, 5000);
}

TEST(Network, RestartReadmitsCrashedNode) {
  struct PeriodicSender : IActor {
    NodeId target = 0;
    void on_start(ActorContext& ctx) override { ctx.set_timer(1000, 0); }
    void on_message(NodeId, const Message&, ActorContext&) override {}
    void on_timer(uint64_t, ActorContext& ctx) override {
      ctx.send(target, make_message(ClientRequestMsg{}));
      ctx.set_timer(1000, 0);
    }
  };
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  PeriodicSender sender;
  Recorder recorder;
  net.add_node(&sender);
  NodeId b = net.add_node(&recorder);
  sender.target = b;
  net.crash(b);
  net.start();
  sim.run_until(5000);
  EXPECT_TRUE(recorder.received.empty());  // crashed: deliveries dropped
  EXPECT_EQ(net.incarnation(b), 0u);

  net.restart(b);
  EXPECT_FALSE(net.crashed(b));
  EXPECT_EQ(net.incarnation(b), 1u);
  sim.run_until(15000);
  EXPECT_FALSE(recorder.received.empty());  // messages flow again
}

TEST(Network, RestartSwapsActorAndDeliversOnStart) {
  struct Counter : IActor {
    int started = 0;
    int messages = 0;
    void on_start(ActorContext&) override { ++started; }
    void on_message(NodeId, const Message&, ActorContext&) override { ++messages; }
  };
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Counter first, second;
  Starter starter;
  NodeId n0 = net.add_node(&starter);
  NodeId n1 = net.add_node(&first);
  starter.target = n1;
  (void)n0;
  net.start();
  sim.run_until_idle();
  EXPECT_EQ(first.started, 1);
  EXPECT_EQ(first.messages, 1);

  net.crash(n1);
  net.restart(n1, &second);
  sim.run_until_idle();
  // The replacement incarnation booted; the old object saw nothing new.
  EXPECT_EQ(second.started, 1);
  EXPECT_EQ(first.started, 1);
}

TEST(Network, StaleTimersDieWithTheCrashedIncarnation) {
  struct TimerActor : IActor {
    std::vector<SimTime> fired;
    void on_start(ActorContext& ctx) override { ctx.set_timer(5000, 1); }
    void on_message(NodeId, const Message&, ActorContext&) override {}
    void on_timer(uint64_t, ActorContext& ctx) override { fired.push_back(ctx.now()); }
  };
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  TimerActor actor;
  NodeId node = net.add_node(&actor);
  net.start();
  sim.run_until(1000);  // timer armed at 0, fires at 5000
  net.crash(node);
  sim.run_until(2000);
  net.restart(node);  // on_start arms a fresh timer at ~2000
  sim.run_until_idle();
  // Only the new incarnation's timer fired (at ~7000), never the stale one.
  ASSERT_EQ(actor.fired.size(), 1u);
  EXPECT_GE(actor.fired[0], 7000);
}

// ---------------------------------------------------------------------------
// CPU lanes / offload (docs/performance.md)

struct OffloadActor : IActor {
  int64_t cost = 10'000;
  int copies = 1;
  std::vector<SimTime> completed;
  void on_message(NodeId, const Message&, ActorContext& ctx) override {
    for (int i = 0; i < copies; ++i) {
      ctx.offload(cost, [this](ActorContext& c) { completed.push_back(c.now()); });
    }
  }
};

TEST(Network, OffloadRunsInlineOnSingleLaneNode) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  OffloadActor actor;
  net.add_node(&starter);
  NodeId node = net.add_node(&actor);
  starter.target = node;
  net.start();
  sim.run_until_idle();
  ASSERT_EQ(actor.completed.size(), 1u);
  EXPECT_EQ(net.cores(node), 1u);
  EXPECT_EQ(net.offloads_run(node), 1u);
  // Inline execution charges the serial lane; there is no worker lane.
  ASSERT_EQ(net.lane_used_us(node).size(), 1u);
  EXPECT_GE(net.lane_used_us(node)[0], actor.cost);
  EXPECT_GE(net.cpu_used_us(node), actor.cost);
}

TEST(Network, OffloadsOverlapAcrossWorkerLanes) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  OffloadActor actor;
  actor.copies = 2;
  net.add_node(&starter);
  NodeId node = net.add_node(&actor);
  starter.target = node;
  net.set_cores(node, 3);  // lane 0 + two workers
  net.start();
  sim.run_until_idle();
  ASSERT_EQ(actor.completed.size(), 2u);
  // Both tasks ran in parallel on distinct worker lanes: completions land
  // within one handler overhead of each other, not one task-cost apart.
  EXPECT_LT(actor.completed[1] - actor.completed[0], actor.cost);
  const std::vector<int64_t>& lanes = net.lane_used_us(node);
  ASSERT_EQ(lanes.size(), 3u);
  EXPECT_EQ(lanes[1], actor.cost);
  EXPECT_EQ(lanes[2], actor.cost);
  EXPECT_EQ(net.offloads_run(node), 2u);
}

TEST(Network, OffloadQueuesOnEarliestFreeLane) {
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Starter starter;
  OffloadActor actor;
  actor.copies = 3;  // two lanes -> the third task queues behind the first
  net.add_node(&starter);
  NodeId node = net.add_node(&actor);
  starter.target = node;
  net.set_cores(node, 3);
  net.start();
  sim.run_until_idle();
  ASSERT_EQ(actor.completed.size(), 3u);
  EXPECT_LT(actor.completed[1] - actor.completed[0], actor.cost);
  EXPECT_GE(actor.completed[2], actor.completed[0] + actor.cost);
  const std::vector<int64_t>& lanes = net.lane_used_us(node);
  EXPECT_EQ(lanes[1] + lanes[2], 3 * actor.cost);
}

TEST(Network, OffloadCompletionsDieWithTheCrashedIncarnation) {
  struct Nobody : IActor {
    void on_message(NodeId, const Message&, ActorContext&) override {}
  };
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Nobody actor;
  NodeId node = net.add_node(&actor);
  net.set_cores(node, 2);
  net.start();
  bool completed = false;
  net.offload(node, 10'000, [&](ActorContext&) { completed = true; });
  sim.run_until(2000);
  net.crash(node);
  net.restart(node);
  sim.run_until_idle();
  // The offload was dispatched, but its completion belonged to the old
  // incarnation — exactly like a stale timer, it must never fire.
  EXPECT_EQ(net.offloads_run(node), 1u);
  EXPECT_FALSE(completed);
}

TEST(Network, StragglerCpuFactorScalesWorkerLanes) {
  struct Nobody : IActor {
    void on_message(NodeId, const Message&, ActorContext&) override {}
  };
  Simulator sim;
  Network net(sim, lan_topology(), CostModel{});
  Nobody actor;
  NodeId node = net.add_node(&actor);
  net.set_cores(node, 2);
  net.set_cpu_factor(node, 10.0);
  net.start();
  SimTime done_at = 0;
  net.offload(node, 1000, [&](ActorContext& c) { done_at = c.now(); });
  sim.run_until_idle();
  EXPECT_GE(done_at, 10'000);  // 1ms of work, 10x straggler
  EXPECT_EQ(net.lane_used_us(node)[1], 10'000);
}

TEST(Topologies, Shapes) {
  EXPECT_EQ(lan_topology().num_regions(), 1u);
  EXPECT_EQ(continent_topology().num_regions(), 10u);  // 5 regions x 2 AZ
  EXPECT_EQ(world_topology().num_regions(), 15u);
  // Symmetric and zero-ish diagonal.
  auto world = world_topology();
  for (uint32_t a = 0; a < world.num_regions(); ++a) {
    for (uint32_t b = 0; b < world.num_regions(); ++b) {
      EXPECT_EQ(world.region_latency_us[a][b], world.region_latency_us[b][a]);
    }
  }
}

}  // namespace
}  // namespace sbft::sim
