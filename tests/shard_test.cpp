// Sharded multi-group deployment (docs/sharding.md): router determinism,
// the TxManager lock/decide state machine, single-shard isolation, and
// cross-shard 2PC atomicity — including under a coordinator-group primary
// crash mid-transaction.
#include <gtest/gtest.h>

#include <set>

#include "harness/workload.h"
#include "kv/kv_service.h"
#include "shard/deployment.h"
#include "shard/router.h"
#include "shard/tx_auth.h"
#include "shard/tx_manager.h"

namespace sbft::shard {
namespace {

// --- router ----------------------------------------------------------------

TEST(Router, DeterministicAcrossInstances) {
  Router a(4);
  Router b(4);
  for (int i = 0; i < 1000; ++i) {
    Bytes key = to_bytes("key-" + std::to_string(i));
    EXPECT_EQ(a.group_of(as_span(key)), b.group_of(as_span(key)));
    EXPECT_LT(a.group_of(as_span(key)), 4u);
  }
}

TEST(Router, SpreadsKeysAcrossGroups) {
  Router r(4);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4000; ++i) {
    Bytes key = to_bytes("key-" + std::to_string(i));
    ++hits[r.group_of(as_span(key))];
  }
  for (int g = 0; g < 4; ++g) {
    // Uniform would be 1000 per group; FNV-1a should stay within a loose band.
    EXPECT_GT(hits[g], 600) << "group " << g;
    EXPECT_LT(hits[g], 1400) << "group " << g;
  }
}

TEST(Router, SingleGroupTakesEverything) {
  Router r(1);
  for (int i = 0; i < 100; ++i) {
    Bytes key = to_bytes("k" + std::to_string(i));
    EXPECT_EQ(r.group_of(as_span(key)), 0u);
  }
}

// --- vote authentication ---------------------------------------------------

TEST(TxAuth, SignVerifyRoundTrip) {
  TxAuth auth(to_bytes("deployment-secret"));
  Bytes sig = auth.sign(/*txid=*/42, /*group=*/1, /*replica=*/3, /*commit=*/true);
  EXPECT_TRUE(auth.verify(42, 1, 3, true, as_span(sig)));
  // Any field change breaks the authenticator.
  EXPECT_FALSE(auth.verify(43, 1, 3, true, as_span(sig)));
  EXPECT_FALSE(auth.verify(42, 0, 3, true, as_span(sig)));
  EXPECT_FALSE(auth.verify(42, 1, 2, true, as_span(sig)));
  EXPECT_FALSE(auth.verify(42, 1, 3, false, as_span(sig)));
  // A different deployment secret never cross-verifies.
  TxAuth other(to_bytes("other-secret"));
  EXPECT_FALSE(other.verify(42, 1, 3, true, as_span(sig)));
}

// --- TxManager state machine -----------------------------------------------

ShardTx two_group_tx(uint64_t txid, const Bytes& key0, const Bytes& key1) {
  ShardTx tx;
  tx.txid = txid;
  tx.coordinator = 0;
  tx.shards.push_back({0, {kv::encode_put(as_span(key0), as_span(to_bytes("a")))}});
  tx.shards.push_back({1, {kv::encode_put(as_span(key1), as_span(to_bytes("b")))}});
  return tx;
}

TxDecision decision_of(uint64_t txid, bool commit) {
  TxDecision d;
  d.txid = txid;
  d.commit = commit;
  return d;  // certificates are validated by ShardExecutor, not TxManager
}

TEST(TxManager, PrepareLocksAndCommitApplies) {
  TxManager tm;
  harness::FastKvService service;
  ShardTx tx = two_group_tx(7, to_bytes("x"), to_bytes("y"));
  EXPECT_EQ(tm.prepare(tx, /*client=*/9, /*group=*/0), to_bytes("TX-PREPARED"));
  EXPECT_EQ(tm.locked_keys(), 1u);
  ASSERT_NE(tm.prepared(7), nullptr);
  EXPECT_TRUE(tm.prepared(7)->vote_commit);

  EXPECT_EQ(tm.decide(decision_of(7, true), 0, service), to_bytes("TX-COMMITTED"));
  EXPECT_EQ(tm.locked_keys(), 0u);
  EXPECT_EQ(tm.last_applied_ops(), 1u);  // group 0's slice: the "x" put
  EXPECT_EQ(tm.prepared(7), nullptr);
  ASSERT_TRUE(tm.decided(7).has_value());
  EXPECT_TRUE(*tm.decided(7));
  // Replay is idempotent: same value, no second application.
  EXPECT_EQ(tm.decide(decision_of(7, true), 0, service), to_bytes("TX-COMMITTED"));
  EXPECT_EQ(tm.last_applied_ops(), 0u);
}

TEST(TxManager, ConflictVotesAbortWithoutLocking) {
  TxManager tm;
  harness::FastKvService service;
  ShardTx first = two_group_tx(1, to_bytes("hot"), to_bytes("y"));
  ShardTx second = two_group_tx(2, to_bytes("hot"), to_bytes("z"));
  EXPECT_EQ(tm.prepare(first, 9, 0), to_bytes("TX-PREPARED"));
  EXPECT_EQ(tm.prepare(second, 9, 0), to_bytes("TX-CONFLICT"));
  ASSERT_NE(tm.prepared(2), nullptr);
  EXPECT_FALSE(tm.prepared(2)->vote_commit);
  EXPECT_EQ(tm.locked_keys(), 1u);  // still held by tx 1 only

  // Aborting the loser releases nothing and applies nothing.
  EXPECT_EQ(tm.decide(decision_of(2, false), 0, service), to_bytes("TX-ABORTED"));
  EXPECT_EQ(tm.locked_keys(), 1u);
  // Committing the winner applies and frees the key.
  EXPECT_EQ(tm.decide(decision_of(1, true), 0, service), to_bytes("TX-COMMITTED"));
  EXPECT_EQ(tm.locked_keys(), 0u);
}

TEST(TxManager, AbortBeforePrepareServesDecision) {
  TxManager tm;
  harness::FastKvService service;
  // Another group's conflict aborted tx 5 before this group ordered its
  // prepare: the decision lands first, the late prepare takes no locks.
  EXPECT_EQ(tm.decide(decision_of(5, false), 0, service), to_bytes("TX-ABORTED"));
  ShardTx tx = two_group_tx(5, to_bytes("x"), to_bytes("y"));
  EXPECT_EQ(tm.prepare(tx, 9, 0), to_bytes("TX-ABORTED"));
  EXPECT_EQ(tm.locked_keys(), 0u);
  EXPECT_EQ(tm.prepared(5), nullptr);
}

TEST(TxManager, CommitWithoutPrepareIsRejected) {
  TxManager tm;
  harness::FastKvService service;
  EXPECT_EQ(tm.decide(decision_of(11, true), 0, service), to_bytes("TX-REJECTED"));
  EXPECT_FALSE(tm.decided(11).has_value());
}

TEST(TxManager, NonParticipantPrepareRejected) {
  TxManager tm;
  ShardTx tx = two_group_tx(3, to_bytes("x"), to_bytes("y"));
  EXPECT_EQ(tm.prepare(tx, 9, /*group=*/2), to_bytes("TX-REJECTED"));
  EXPECT_EQ(tm.prepared(3), nullptr);
}

TEST(TxManager, SnapshotRoundTripsByteIdentically) {
  TxManager tm;
  harness::FastKvService service;
  tm.prepare(two_group_tx(1, to_bytes("a"), to_bytes("b")), 9, 0);
  tm.prepare(two_group_tx(2, to_bytes("c"), to_bytes("d")), 10, 0);
  tm.decide(decision_of(2, true), 0, service);

  Bytes snap = tm.snapshot();
  TxManager other;
  ASSERT_TRUE(other.restore(as_span(snap)));
  EXPECT_EQ(other.snapshot(), snap);  // byte-identical re-encode
  EXPECT_EQ(other.locked_keys(), 1u);
  ASSERT_NE(other.prepared(1), nullptr);
  EXPECT_EQ(other.prepared(1)->client, 9u);
  ASSERT_TRUE(other.decided(2).has_value());

  // Restoring empty data (pre-shard envelope) clears everything.
  ASSERT_TRUE(other.restore({}));
  EXPECT_EQ(other.locked_keys(), 0u);
  EXPECT_EQ(other.snapshot(), TxManager{}.snapshot());
}

// --- deployment scenarios --------------------------------------------------

DeploymentOptions small_deployment(harness::ProtocolKind kind, uint32_t groups) {
  DeploymentOptions d;
  d.num_groups = groups;
  d.group.kind = kind;
  d.group.f = 1;
  d.num_clients = 3;
  d.requests_per_client = 40;
  d.keyspace = 512;
  d.seed = 7;
  return d;
}

class ShardDeployment : public ::testing::TestWithParam<harness::ProtocolKind> {};

TEST_P(ShardDeployment, SingleShardRequestsStayIsolated) {
  DeploymentOptions opts = small_deployment(GetParam(), 2);
  Deployment dep(opts);
  ASSERT_TRUE(dep.run_until_done(300'000'000));

  uint64_t executed = 0;
  for (uint32_t g = 0; g < dep.num_groups(); ++g) {
    EXPECT_TRUE(dep.group(g).check_agreement());
    executed += dep.group(g).max_executed();
    // No cross-shard traffic: the shard layer never locked or decided.
    for (ReplicaId r = 1; r <= dep.group(g).num_replicas(); ++r) {
      EXPECT_EQ(dep.executor(g, r).tx_manager().locked_keys(), 0u);
      EXPECT_TRUE(dep.executor(g, r).tx_manager().decided_txs().empty());
    }
  }
  // Both groups ordered real work (the router spreads the keyspace).
  EXPECT_GT(dep.group(0).max_executed(), 0u);
  EXPECT_GT(dep.group(1).max_executed(), 0u);
  EXPECT_EQ(dep.total_completed(), 3u * 40u);
  EXPECT_EQ(dep.cross_shard_commits(), 0u);
  EXPECT_EQ(dep.cross_shard_aborts(), 0u);
  (void)executed;
}

TEST_P(ShardDeployment, CrossShardTransfersCommitAtomically) {
  DeploymentOptions opts = small_deployment(GetParam(), 2);
  opts.cross_shard_every = 4;  // every 4th request is a two-key transfer
  Deployment dep(opts);
  ASSERT_TRUE(dep.run_until_done(600'000'000));
  // Clients finishing does not mean every backup executed the tail of its
  // group's sequence yet; let the final decisions drain everywhere.
  dep.run_for(10'000'000);

  EXPECT_EQ(dep.total_completed(), 3u * 40u);
  EXPECT_GT(dep.cross_shard_commits(), 0u);
  EXPECT_TRUE(dep.audit_cross_shard_atomicity().empty());
  for (uint32_t g = 0; g < dep.num_groups(); ++g) {
    EXPECT_TRUE(dep.group(g).check_agreement());
    // Everything decided: no lock leaks anywhere.
    for (ReplicaId r = 1; r <= dep.group(g).num_replicas(); ++r) {
      EXPECT_EQ(dep.executor(g, r).tx_manager().locked_keys(), 0u);
    }
  }
}

TEST_P(ShardDeployment, AtomicityHoldsAcrossCoordinatorPrimaryCrash) {
  DeploymentOptions opts = small_deployment(GetParam(), 2);
  opts.cross_shard_every = 3;
  opts.requests_per_client = 30;
  Deployment dep(opts);

  // Group 0 is the coordinator for every 2-group transaction (lowest
  // participant group). Kill its primary mid-run — in-flight transactions
  // straddle the view change — and bring it back later.
  const ReplicaId primary = dep.group(0).config().primary_of(0);
  dep.simulator().schedule(2'000'000,
                           [&] { dep.group(0).crash_replica(primary); });
  dep.simulator().schedule(40'000'000,
                           [&] { dep.group(0).restart_replica(primary); });

  ASSERT_TRUE(dep.run_until_done(900'000'000));
  EXPECT_EQ(dep.total_completed(), 3u * 30u);
  EXPECT_GT(dep.cross_shard_commits() + dep.cross_shard_aborts(), 0u);
  // The headline invariant: no transaction committed in one shard and
  // aborted (or split within a group) in another — even across the crash.
  EXPECT_TRUE(dep.audit_cross_shard_atomicity().empty());
  for (uint32_t g = 0; g < dep.num_groups(); ++g) {
    EXPECT_TRUE(dep.group(g).check_agreement());
  }
}

INSTANTIATE_TEST_SUITE_P(Protocols, ShardDeployment,
                         ::testing::Values(harness::ProtocolKind::kSbft,
                                           harness::ProtocolKind::kPbft),
                         [](const auto& info) {
                           return info.param == harness::ProtocolKind::kSbft
                                      ? "Sbft"
                                      : "Pbft";
                         });

}  // namespace
}  // namespace sbft::shard
