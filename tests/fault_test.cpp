// Fault-injection tests: crashes, stragglers, Byzantine replicas, primary
// failure and the dual-mode view change, state transfer.
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace sbft::harness {
namespace {

ClusterOptions base(ProtocolKind kind, uint32_t f, uint32_t c) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = f;
  opts.c = c;
  opts.num_clients = 2;
  opts.requests_per_client = 15;
  opts.topology = sim::lan_topology();
  opts.seed = 7;
  return opts;
}

TEST(Faults, OneCrashWithCzeroFallsBackToSlowPath) {
  // c = 0: a single crashed backup kills the fast path (needs all 3f+c+1),
  // but Linear-PBFT keeps committing (§V-E).
  auto opts = base(ProtocolKind::kSbft, 1, 0);
  opts.crash_replicas = 1;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  EXPECT_EQ(cluster.total_fast_commits(), 0u);
  EXPECT_GT(cluster.total_slow_commits(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Faults, CrashWithinCKeepsFastPath) {
  // Ingredient 4: with c = 1 redundant servers, one crash leaves 3f+c+1
  // signers, so the fast path still commits.
  auto opts = base(ProtocolKind::kSbft, 1, 1);
  opts.crash_replicas = 1;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  EXPECT_GT(cluster.total_fast_commits(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Faults, CrashBeyondCStillLive) {
  // c = 1 but two crashes: fast path dead, slow path still has 2f+c+1.
  auto opts = base(ProtocolKind::kSbft, 1, 1);
  opts.crash_replicas = 2;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  EXPECT_GT(cluster.total_slow_commits(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Faults, StragglersToleratedWithRedundantCollectors) {
  auto opts = base(ProtocolKind::kSbft, 2, 2);
  opts.straggler_replicas = 2;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 15u);
  }
}

TEST(Faults, CorruptSharesAreFilteredNotFatal) {
  // A Byzantine replica emits corrupted threshold shares; collectors filter
  // them and quorums still form from the remaining honest replicas (with
  // c = 1 the fast quorum survives one bad signer).
  auto opts = base(ProtocolKind::kSbft, 1, 1);
  opts.byzantine_behavior = core::ReplicaBehavior::kCorruptShares;
  opts.byzantine_replicas = 1;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  EXPECT_TRUE(cluster.check_agreement());
  uint64_t invalid = 0;
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    invalid += cluster.sbft_replica(r)->stats().invalid_shares_seen;
  }
  EXPECT_GT(invalid, 0u);  // corruption was actually detected
}

TEST(Faults, SilentReplicaWithinQuorums) {
  auto opts = base(ProtocolKind::kSbft, 1, 1);
  opts.byzantine_behavior = core::ReplicaBehavior::kSilent;
  opts.byzantine_replicas = 1;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Faults, PrimaryCrashTriggersViewChange) {
  auto opts = base(ProtocolKind::kSbft, 1, 0);
  opts.requests_per_client = 100;
  Cluster cluster(std::move(opts));
  // Let some traffic commit in view 0, then kill the primary mid-stream.
  cluster.run_for(100'000);
  cluster.network().crash(/*node of replica 1=*/0);
  ASSERT_TRUE(cluster.run_until_done(600'000'000))
      << "clients stalled after primary crash";
  EXPECT_GT(cluster.total_view_changes(), 0u);
  // The new view made progress.
  bool some_new_view = false;
  for (ReplicaId r = 2; r <= cluster.n(); ++r) {
    some_new_view |= cluster.sbft_replica(r)->view() > 0;
  }
  EXPECT_TRUE(some_new_view);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Faults, EquivocatingPrimaryCannotSplitState) {
  // The primary proposes different blocks to different halves. Honest
  // replicas must never commit conflicting blocks for the same sequence;
  // progress resumes after the view change removes the primary.
  ClusterOptions opts;
  opts.kind = ProtocolKind::kSbft;
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 21;
  Cluster cluster(std::move(opts));
  // Replace behaviour: make the view-0 primary equivocate by constructing a
  // dedicated cluster where the primary is Byzantine is not supported via
  // options (fault roles avoid the primary), so emulate: run, then verify
  // agreement holds under the adversarial schedule exercised by
  // SbftProtocol tests. Here we directly test equivocation from a backup
  // becoming primary after a view change.
  cluster.run_for(2'000'000);
  cluster.network().crash(0);  // primary of view 0
  cluster.run_for(30'000'000);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Faults, StateTransferCatchesUpLaggingReplica) {
  // Disconnect one backup from everyone; let the cluster advance past a
  // checkpoint; reconnect and verify the replica catches up via state
  // transfer (it missed the blocks that were garbage collected).
  ClusterOptions opts = base(ProtocolKind::kSbft, 1, 0);
  opts.num_clients = 4;
  opts.requests_per_client = 0;
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.max_batch = 2;
  };
  Cluster cluster(std::move(opts));
  const ReplicaId lagger = 3;
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    if (r != lagger) cluster.network().disconnect(lagger - 1, r - 1);
  }
  for (uint32_t client = 0; client < 4; ++client) {
    cluster.network().disconnect(lagger - 1, cluster.n() + client);
  }
  cluster.run_for(20'000'000);
  SeqNum others = cluster.sbft_replica(1)->last_executed();
  ASSERT_GT(others, 16u) << "cluster did not advance past the window";
  EXPECT_EQ(cluster.sbft_replica(lagger)->last_executed(), 0u);
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    if (r != lagger) cluster.network().reconnect(lagger - 1, r - 1);
  }
  for (uint32_t client = 0; client < 4; ++client) {
    cluster.network().reconnect(lagger - 1, cluster.n() + client);
  }
  cluster.run_for(40'000'000);
  EXPECT_GT(cluster.sbft_replica(lagger)->last_executed(), others / 2)
      << "lagging replica never caught up";
  EXPECT_GT(cluster.sbft_replica(lagger)->stats().state_transfers, 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Faults, SafetyUnderRandomizedFaultSchedules) {
  // Property sweep: random crash/straggler mixes within the c budget and
  // random seeds; Theorem VI.1's invariant must hold in every run.
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    ClusterOptions opts = base(ProtocolKind::kSbft, 1, 1);
    opts.seed = seed;
    opts.requests_per_client = 8;
    Rng rng(seed);
    opts.crash_replicas = static_cast<uint32_t>(rng.below(2));
    opts.straggler_replicas = static_cast<uint32_t>(rng.below(2));
    Cluster cluster(std::move(opts));
    ASSERT_TRUE(cluster.run_until_done(300'000'000)) << "seed " << seed;
    SeqNum bad = 0;
    EXPECT_TRUE(cluster.check_agreement(&bad))
        << "divergence at seq " << bad << " with seed " << seed;
  }
}

}  // namespace
}  // namespace sbft::harness
