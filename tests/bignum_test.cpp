#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/bignum.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"

namespace sbft::crypto {
namespace {

BigUint big(uint64_t v) { return BigUint(v); }

TEST(BigUint, ConstructionAndLow64) {
  EXPECT_TRUE(BigUint().is_zero());
  EXPECT_EQ(big(0x123456789abcdef0ull).low_u64(), 0x123456789abcdef0ull);
}

TEST(BigUint, HexRoundTrip) {
  BigUint v = BigUint::from_hex("deadbeefcafebabe0123456789");
  EXPECT_EQ(v.to_hex(), "deadbeefcafebabe0123456789");
}

TEST(BigUint, BytesRoundTrip) {
  Bytes data = {0x01, 0x00, 0xff, 0xee};
  BigUint v = BigUint::from_bytes_be(as_span(data));
  EXPECT_EQ(v.to_bytes_be(), data);
}

TEST(BigUint, LeadingZerosNormalized) {
  Bytes data = {0x00, 0x00, 0x12};
  EXPECT_EQ(BigUint::from_bytes_be(as_span(data)), big(0x12));
}

TEST(BigUint, Comparison) {
  EXPECT_LT(big(5), big(6));
  EXPECT_GT(BigUint::from_hex("100000000"), big(0xffffffffull));
  EXPECT_EQ(big(7), big(7));
}

TEST(BigUint, AddSubCarries) {
  BigUint a = BigUint::from_hex("ffffffffffffffffffffffff");
  BigUint one = big(1);
  BigUint sum = a + one;
  EXPECT_EQ(sum.to_hex(), "01000000000000000000000000");
  EXPECT_EQ(sum - one, a);
}

TEST(BigUint, MulKnownValue) {
  BigUint a = BigUint::from_hex("ffffffff");
  EXPECT_EQ((a * a).to_hex(), "fffffffe00000001");
}

TEST(BigUint, Shifts) {
  BigUint v = big(1);
  EXPECT_EQ((v << 100).bit_length(), 101);
  EXPECT_EQ(((v << 100) >> 100), v);
  EXPECT_EQ((big(0xff) >> 4), big(0xf));
}

TEST(BigUint, BitAccess) {
  BigUint v = big(0b1010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_FALSE(v.bit(2));
  EXPECT_TRUE(v.bit(3));
  EXPECT_FALSE(v.bit(200));
}

TEST(BigUint, DivModSmall) {
  auto dm = BigUint::divmod(big(100), big(7));
  EXPECT_EQ(dm.quotient, big(14));
  EXPECT_EQ(dm.remainder, big(2));
}

TEST(BigUint, DivModByZeroThrows) {
  EXPECT_THROW(BigUint::divmod(big(1), BigUint()), std::domain_error);
}

TEST(BigUint, DivModReconstructionProperty) {
  Rng rng(11);
  for (int i = 0; i < 200; ++i) {
    BigUint a = BigUint::random_bits(rng, 1 + static_cast<int>(rng.below(512)));
    BigUint b = BigUint::random_bits(rng, 1 + static_cast<int>(rng.below(256)));
    auto dm = BigUint::divmod(a, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(BigUint, DivModAddBackBranch) {
  // Regression guard for Knuth D's rare "add back" case: many divisors with
  // high top digits over random dividends.
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    BigUint b = BigUint::from_hex("ffffffffffffffff0000000000000001") +
                BigUint::random_bits(rng, 40);
    BigUint a = b * BigUint::random_bits(rng, 64) + BigUint::random_bits(rng, 30);
    auto dm = BigUint::divmod(a, b);
    EXPECT_EQ(dm.quotient * b + dm.remainder, a);
    EXPECT_LT(dm.remainder, b);
  }
}

TEST(BigUint, Gcd) {
  EXPECT_EQ(BigUint::gcd(big(48), big(36)), big(12));
  EXPECT_EQ(BigUint::gcd(big(17), big(5)), big(1));
  EXPECT_EQ(BigUint::gcd(big(0), big(9)), big(9));
}

TEST(BigUint, ModExpKnown) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigUint::mod_exp(big(2), big(10), big(1000)), big(24));
  // Anything mod 1 is 0.
  EXPECT_TRUE(BigUint::mod_exp(big(5), big(3), big(1)).is_zero());
}

TEST(BigUint, ModExpFermatProperty) {
  // a^(p-1) = 1 mod p for prime p and gcd(a, p) = 1.
  BigUint p = BigUint::from_hex("ffffffffffffffc5");  // large 64-bit prime
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    BigUint a = BigUint::random_below(rng, p - big(2)) + big(2);
    EXPECT_EQ(BigUint::mod_exp(a, p - big(1), p), big(1));
  }
}

TEST(BigUint, ModInverse) {
  Rng rng(19);
  BigUint m = BigUint::from_hex("ffffffffffffffc5");
  for (int i = 0; i < 20; ++i) {
    BigUint a = BigUint::random_below(rng, m - big(1)) + big(1);
    BigUint inv = BigUint::mod_inverse(a, m);
    ASSERT_FALSE(inv.is_zero());
    EXPECT_EQ(BigUint::mod_mul(a, inv, m), big(1));
  }
}

TEST(BigUint, ModInverseNonCoprimeFails) {
  EXPECT_TRUE(BigUint::mod_inverse(big(6), big(9)).is_zero());
}

TEST(BigUint, MillerRabinKnownPrimes) {
  Rng rng(23);
  for (uint64_t p : {2ull, 3ull, 97ull, 7919ull, 104729ull, 2147483647ull}) {
    EXPECT_TRUE(BigUint::is_probable_prime(big(p), rng)) << p;
  }
}

TEST(BigUint, MillerRabinKnownComposites) {
  Rng rng(29);
  // Includes Carmichael numbers 561 and 41041.
  for (uint64_t c : {1ull, 4ull, 561ull, 41041ull, 7917ull, 104730ull}) {
    EXPECT_FALSE(BigUint::is_probable_prime(big(c), rng)) << c;
  }
}

TEST(BigUint, RandomPrimeHasExactBits) {
  Rng rng(31);
  BigUint p = BigUint::random_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96);
  EXPECT_TRUE(BigUint::is_probable_prime(p, rng));
}

TEST(BigInt, SignedArithmetic) {
  BigInt a(5), b(-8);
  EXPECT_EQ((a + b).mod(big(100)), big(97));
  EXPECT_EQ((a - b).mod(big(100)), big(13));
  EXPECT_EQ((a * b).mod(big(100)), big(60));  // -40 mod 100
}

TEST(BigInt, ModOfNegative) {
  EXPECT_EQ(BigInt(-1).mod(big(7)), big(6));
  EXPECT_EQ(BigInt(-14).mod(big(7)), big(0));
}

TEST(ExtendedGcd, BezoutIdentity) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    BigUint a = BigUint::random_bits(rng, 128);
    BigUint b = BigUint::random_bits(rng, 96);
    EgcdResult e = extended_gcd(a, b);
    // a*x + b*y == g, checked modulo a large prime to avoid signed bigints.
    BigUint m = BigUint::from_hex("ffffffffffffffffffffffffffffff61");
    BigUint lhs = (BigUint::mod_mul(a % m, e.x.mod(m), m) +
                   BigUint::mod_mul(b % m, e.y.mod(m), m)) %
                  m;
    EXPECT_EQ(lhs, e.g % m);
    EXPECT_TRUE((a % e.g).is_zero());
    EXPECT_TRUE((b % e.g).is_zero());
  }
}

TEST(Rsa, SignVerifyRoundTrip) {
  Rng rng(41);
  RsaKeyPair kp = rsa_generate(rng, 512);
  Digest d = crypto::sha256("message");
  Bytes sig = kp.priv.sign(d);
  EXPECT_EQ(sig.size(), kp.pub.signature_size());
  EXPECT_TRUE(kp.pub.verify(d, as_span(sig)));
}

TEST(Rsa, RejectsTamperedSignature) {
  Rng rng(43);
  RsaKeyPair kp = rsa_generate(rng, 512);
  Digest d = crypto::sha256("message");
  Bytes sig = kp.priv.sign(d);
  sig[5] ^= 1;
  EXPECT_FALSE(kp.pub.verify(d, as_span(sig)));
}

TEST(Rsa, RejectsWrongDigest) {
  Rng rng(47);
  RsaKeyPair kp = rsa_generate(rng, 512);
  Bytes sig = kp.priv.sign(crypto::sha256("a"));
  EXPECT_FALSE(kp.pub.verify(crypto::sha256("b"), as_span(sig)));
}

TEST(Rsa, RejectsWrongKey) {
  Rng rng(53);
  RsaKeyPair kp1 = rsa_generate(rng, 512);
  RsaKeyPair kp2 = rsa_generate(rng, 512);
  Digest d = crypto::sha256("message");
  Bytes sig = kp1.priv.sign(d);
  EXPECT_FALSE(kp2.pub.verify(d, as_span(sig)));
}

TEST(Rsa, FdhInRange) {
  Rng rng(59);
  RsaKeyPair kp = rsa_generate(rng, 256);
  for (int i = 0; i < 20; ++i) {
    Digest d = crypto::sha256(std::to_string(i));
    BigUint m = rsa_fdh(d, kp.pub.n);
    EXPECT_LT(m, kp.pub.n);
    EXPECT_GE(m, BigUint(2));
    // Deterministic.
    EXPECT_EQ(rsa_fdh(d, kp.pub.n), m);
  }
}

}  // namespace
}  // namespace sbft::crypto
