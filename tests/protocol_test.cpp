// End-to-end SBFT protocol tests on the simulated network (failure-free
// paths; fault scenarios live in fault_test.cpp).
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/metrics.h"
#include "kv/kv_service.h"

namespace sbft::harness {
namespace {

ClusterOptions small_cluster(ProtocolKind kind, uint32_t f = 1, uint32_t c = 0) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = f;
  opts.c = c;
  opts.num_clients = 3;
  opts.requests_per_client = 20;
  opts.topology = sim::lan_topology();
  opts.seed = 99;
  return opts;
}

TEST(SbftProtocol, FastPathCommitsAndAcksClients) {
  Cluster cluster(small_cluster(ProtocolKind::kSbft));
  ASSERT_TRUE(cluster.run_until_done(60'000'000));
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 20u);
    EXPECT_EQ(cluster.client(i).retries(), 0u);
    EXPECT_EQ(cluster.client(i).rejected_acks(), 0u);
    // Ingredient 3: every request acknowledged by a single execute-ack.
    for (const auto& rec : cluster.client(i).records()) {
      EXPECT_TRUE(rec.via_fast_ack);
    }
  }
  EXPECT_GT(cluster.total_fast_commits(), 0u);
  EXPECT_EQ(cluster.total_slow_commits(), 0u);
  EXPECT_EQ(cluster.total_view_changes(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, AllReplicasConverge) {
  Cluster cluster(small_cluster(ProtocolKind::kSbft));
  ASSERT_TRUE(cluster.run_until_done(60'000'000));
  cluster.run_for(5'000'000);  // settle
  SeqNum lo = cluster.min_executed();
  SeqNum hi = cluster.max_executed();
  EXPECT_GT(lo, 0u);
  EXPECT_EQ(lo, hi);
  // Identical state digests everywhere.
  Digest expect = cluster.sbft_replica(1)->service().state_digest();
  for (ReplicaId r = 2; r <= cluster.n(); ++r) {
    EXPECT_EQ(cluster.sbft_replica(r)->service().state_digest(), expect);
  }
}

TEST(SbftProtocol, LinearPbftVariantUsesSlowPathAndReplies) {
  Cluster cluster(small_cluster(ProtocolKind::kLinearPbft));
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  EXPECT_EQ(cluster.total_fast_commits(), 0u);
  EXPECT_GT(cluster.total_slow_commits(), 0u);
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 20u);
    // No execution collector: acceptance is via f+1 matching replies.
    for (const auto& rec : cluster.client(i).records()) {
      EXPECT_FALSE(rec.via_fast_ack);
    }
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, FastPathVariantWithoutExecCollector) {
  Cluster cluster(small_cluster(ProtocolKind::kLinearPbftFast));
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  EXPECT_GT(cluster.total_fast_commits(), 0u);
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 20u);
    for (const auto& rec : cluster.client(i).records()) {
      EXPECT_FALSE(rec.via_fast_ack);
    }
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, RedundantCollectorsC1) {
  Cluster cluster(small_cluster(ProtocolKind::kSbft, /*f=*/1, /*c=*/1));
  EXPECT_EQ(cluster.n(), 6u);  // 3f + 2c + 1
  ASSERT_TRUE(cluster.run_until_done(60'000'000));
  EXPECT_GT(cluster.total_fast_commits(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, LargerClusterF2) {
  auto opts = small_cluster(ProtocolKind::kSbft, /*f=*/2);
  opts.requests_per_client = 10;
  Cluster cluster(std::move(opts));
  EXPECT_EQ(cluster.n(), 7u);
  ASSERT_TRUE(cluster.run_until_done(60'000'000));
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, RealAuthenticatedKvService) {
  auto opts = small_cluster(ProtocolKind::kSbft);
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(60'000'000));
  cluster.run_for(5'000'000);
  Digest expect = cluster.sbft_replica(1)->service().state_digest();
  for (ReplicaId r = 2; r <= cluster.n(); ++r) {
    EXPECT_EQ(cluster.sbft_replica(r)->service().state_digest(), expect);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, BatchedRequestsExecuteAllOps) {
  auto opts = small_cluster(ProtocolKind::kSbft);
  KvWorkloadOptions workload;
  workload.ops_per_request = 64;
  opts.op_factory = kv_op_factory(workload);
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  opts.requests_per_client = 5;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(60'000'000));
  cluster.run_for(5'000'000);
  // 3 clients x 5 requests x 64 ops; random keys may collide, so the store
  // holds at most 960 keys but far more than 5.
  auto* replica = cluster.sbft_replica(1);
  const auto& svc = dynamic_cast<const kv::KvService&>(replica->service());
  EXPECT_GT(svc.size(), 100u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, CheckpointingAdvancesStableSeq) {
  auto opts = small_cluster(ProtocolKind::kSbft);
  opts.num_clients = 4;
  opts.requests_per_client = 200;
  // Small window so checkpoints trigger during the test.
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.max_batch = 2;
  };
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  cluster.run_for(5'000'000);
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    EXPECT_GT(cluster.sbft_replica(r)->last_stable(), 0u)
        << "replica " << r << " never checkpointed";
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, ThroughputMetricsSane) {
  auto opts = small_cluster(ProtocolKind::kSbft);
  opts.requests_per_client = 0;  // run for the window
  Cluster cluster(std::move(opts));
  cluster.run_for(1'000'000);
  sim::SimTime from = cluster.simulator().now();
  cluster.run_for(4'000'000);
  RunMetrics m = collect_metrics(cluster, from, cluster.simulator().now(), 1);
  EXPECT_GT(m.requests_completed, 0u);
  EXPECT_GT(m.ops_per_second, 0.0);
  EXPECT_GT(m.latency.median_ms, 0.0);
  EXPECT_GT(m.counter("messages_sent"), 0u);
  EXPECT_NEAR(m.fast_ack_fraction, 1.0, 0.01);
}

TEST(SbftProtocol, RealShoupThresholdCrypto) {
  // End-to-end run where sigma/tau/pi are genuine Shoup threshold-RSA
  // schemes: shares, combination and verification are real modular
  // arithmetic, so any protocol-level misuse of the threshold interface
  // (wrong digest, wrong quorum, share misattribution) fails loudly.
  auto opts = small_cluster(ProtocolKind::kSbft);
  opts.use_real_threshold_crypto = true;
  opts.num_clients = 2;
  opts.requests_per_client = 5;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  EXPECT_GT(cluster.total_fast_commits(), 0u);
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 5u);
    EXPECT_EQ(cluster.client(i).rejected_acks(), 0u);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(SbftProtocol, ExactlyOnceUnderClientRetry) {
  // Force client retries by making the retry timeout shorter than commit
  // latency: duplicates must not execute twice.
  auto opts = small_cluster(ProtocolKind::kSbft);
  opts.requests_per_client = 5;
  opts.num_clients = 1;
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  uint32_t counter = 0;
  opts.op_factory = [&counter](uint64_t, Rng&) {
    // Append-style op: key is a running counter, so re-execution would
    // change the count of keys.
    Bytes key = to_bytes("op-" + std::to_string(counter++));
    return kv::encode_put(as_span(key), as_span("x"));
  };
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  cluster.run_for(5'000'000);
  const auto& svc =
      dynamic_cast<const kv::KvService&>(cluster.sbft_replica(1)->service());
  EXPECT_EQ(svc.size(), 5u);
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::harness
