// Seed-corpus regression suite (ctest -L fuzz; docs/fuzzing.md).
//
// Every schedule the fuzzer ever caught a bug with is checked in under
// tests/fuzz_corpus/*.sched (the minimized repro the campaign driver wrote,
// comments preserved). This test replays each one through the real runner
// and requires a clean verdict — so a fixed bug stays fixed, and a revert
// fails CI with the exact schedule that resurfaces it. Add new corpus files
// by copying the repro out of the campaign's --repro-dir once the fix lands.

#include <gtest/gtest.h>

#include <filesystem>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/runner.h"

namespace sbft {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> corpus_files() {
  fs::path dir = fs::path(SBFT_SOURCE_DIR) / "tests" / "fuzz_corpus";
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
    if (entry.path().extension() == ".sched") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(FuzzCorpus, HasAtLeastOneSchedule) {
  // The corpus must never silently empty out (e.g. a rename breaking the
  // glob) — that would turn the whole suite into a vacuous pass.
  EXPECT_GE(corpus_files().size(), 1u);
}

TEST(FuzzCorpus, EveryScheduleReplaysClean) {
  for (const fs::path& path : corpus_files()) {
    SCOPED_TRACE(path.filename().string());
    fuzz::FuzzResult result;
    std::string error;
    ASSERT_TRUE(fuzz::replay_file(path.string(), &result, &error)) << error;
    EXPECT_TRUE(result.ok()) << result.summary();
  }
}

}  // namespace
}  // namespace sbft
