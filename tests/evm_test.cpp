#include <gtest/gtest.h>

#include "crypto/sha256.h"
#include "evm/assembler.h"
#include "evm/contracts.h"
#include "evm/evm_service.h"
#include "evm/u256.h"
#include "evm/vm.h"

namespace sbft::evm {
namespace {

// ---------------------------------------------------------------------------
// U256

TEST(U256, Construction) {
  EXPECT_TRUE(U256().is_zero());
  EXPECT_EQ(U256(42).low64(), 42u);
  EXPECT_TRUE(U256(7).fits64());
}

TEST(U256, BytesRoundTrip) {
  Bytes be = from_hex("0102030405060708090a0b0c0d0e0f10");
  U256 v = U256::from_bytes_be(as_span(be));
  auto word = v.to_word();
  // Right-aligned in the 32-byte word.
  EXPECT_EQ(word[31], 0x10);
  EXPECT_EQ(word[16], 0x01);
  EXPECT_EQ(word[0], 0x00);
}

TEST(U256, AdditionWraps) {
  U256 max = ~U256();
  EXPECT_TRUE((max + U256(1)).is_zero());
}

TEST(U256, SubtractionWraps) {
  U256 r = U256(0) - U256(1);
  EXPECT_EQ(r, ~U256());
}

TEST(U256, MultiplicationLow256) {
  U256 a = U256(1).shl(200);
  U256 b = U256(1).shl(100);
  EXPECT_TRUE((a * b).is_zero());  // overflows past 2^256
  EXPECT_EQ(U256(7) * U256(6), U256(42));
}

TEST(U256, DivModEvmZeroRules) {
  EXPECT_TRUE((U256(5) / U256(0)).is_zero());
  EXPECT_TRUE((U256(5) % U256(0)).is_zero());
  EXPECT_EQ(U256(17) / U256(5), U256(3));
  EXPECT_EQ(U256(17) % U256(5), U256(2));
}

TEST(U256, Comparison) {
  EXPECT_LT(U256(1), U256(2));
  EXPECT_GT(U256(1).shl(128), U256(1).shl(64));
}

TEST(U256, Shifts) {
  U256 v(0xff);
  EXPECT_EQ(v.shl(8).low64(), 0xff00u);
  EXPECT_EQ(v.shl(256), U256(0));
  EXPECT_EQ(v.shl(130).shr(130), v);
}

TEST(U256, Exp) {
  EXPECT_EQ(U256::exp(U256(2), U256(10)), U256(1024));
  EXPECT_EQ(U256::exp(U256(3), U256(0)), U256(1));
  EXPECT_EQ(U256::exp(U256(0), U256(5)), U256(0));
}

TEST(U256, AddMulMod) {
  EXPECT_EQ(U256::addmod(U256(10), U256(10), U256(8)), U256(4));
  EXPECT_EQ(U256::mulmod(U256(10), U256(10), U256(8)), U256(4));
  // addmod computes in 512-bit space: (2^256-1 + 2) mod 7 is well defined.
  U256 max = ~U256();
  EXPECT_EQ(U256::addmod(max, U256(2), U256(7)),
            U256::from_big((max.to_big() + crypto::BigUint(2)) % crypto::BigUint(7)));
}

// ---------------------------------------------------------------------------
// Interpreter

struct MapHost : IEvmHost {
  std::map<std::array<uint8_t, 32>, U256> storage;
  U256 sload(const Address&, const U256& slot) const override {
    auto it = storage.find(slot.to_word());
    return it == storage.end() ? U256() : it->second;
  }
  void sstore(const Address&, const U256& slot, const U256& value) override {
    storage[slot.to_word()] = value;
  }
};

EvmResult run(ByteSpan code, ByteSpan calldata = {}) {
  MapHost host;
  EvmParams params;
  params.code = code;
  params.calldata = calldata;
  return evm_execute(host, params);
}

U256 result_word(const EvmResult& r) { return U256::from_bytes_be(as_span(r.output)); }

TEST(Vm, ArithmeticReturn) {
  // (3 + 4) * 5 = 35
  Assembler a;
  a.push(uint64_t{3}).push(uint64_t{4}).op(Op::ADD);
  a.push(uint64_t{5}).op(Op::MUL);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EvmResult r = run(as_span(a.assemble()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(result_word(r), U256(35));
}

struct BinOpCase {
  const char* name;
  Op op;
  uint64_t lhs, rhs, expect;
};

class VmBinOps : public ::testing::TestWithParam<BinOpCase> {};

TEST_P(VmBinOps, Computes) {
  // Operands pushed rhs-first so lhs is on top (EVM: op pops a=top, b=next,
  // computing a OP b for non-commutative ops like SUB/DIV).
  Assembler a;
  a.push(GetParam().rhs).push(GetParam().lhs).op(GetParam().op);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EvmResult r = run(as_span(a.assemble()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(result_word(r), U256(GetParam().expect)) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Ops, VmBinOps,
    ::testing::Values(BinOpCase{"add", Op::ADD, 9, 5, 14},
                      BinOpCase{"sub", Op::SUB, 9, 5, 4},
                      BinOpCase{"mul", Op::MUL, 9, 5, 45},
                      BinOpCase{"div", Op::DIV, 9, 5, 1},
                      BinOpCase{"mod", Op::MOD, 9, 5, 4},
                      BinOpCase{"lt_true", Op::LT, 3, 5, 1},
                      BinOpCase{"lt_false", Op::LT, 5, 3, 0},
                      BinOpCase{"gt_true", Op::GT, 5, 3, 1},
                      BinOpCase{"eq_true", Op::EQ, 7, 7, 1},
                      BinOpCase{"eq_false", Op::EQ, 7, 8, 0},
                      BinOpCase{"and", Op::AND, 0b1100, 0b1010, 0b1000},
                      BinOpCase{"or", Op::OR, 0b1100, 0b1010, 0b1110},
                      BinOpCase{"xor", Op::XOR, 0b1100, 0b1010, 0b0110},
                      BinOpCase{"shl", Op::SHL, 4, 0xff, 0xff0},
                      BinOpCase{"shr", Op::SHR, 4, 0xff0, 0xff}),
    [](const auto& info) { return std::string(info.param.name); });

TEST(Vm, IsZeroAndNot) {
  Assembler a;
  a.push(uint64_t{0}).op(Op::ISZERO);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EXPECT_EQ(result_word(run(as_span(a.assemble()))), U256(1));
}

TEST(Vm, StorageRoundTrip) {
  // SSTORE(7, 99); return SLOAD(7)
  Assembler a;
  a.push(uint64_t{99}).push(uint64_t{7}).op(Op::SSTORE);
  a.push(uint64_t{7}).op(Op::SLOAD);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EvmResult r = run(as_span(a.assemble()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(result_word(r), U256(99));
}

TEST(Vm, RevertDiscardsStorage) {
  MapHost host;
  Assembler a;
  a.push(uint64_t{1}).push(uint64_t{0}).op(Op::SSTORE);
  a.push(uint64_t{0}).push(uint64_t{0}).op(Op::REVERT);
  EvmParams params;
  Bytes code = a.assemble();
  params.code = as_span(code);
  EvmResult r = evm_execute(host, params);
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  EXPECT_TRUE(host.storage.empty());
}

TEST(Vm, SuccessFlushesStorage) {
  MapHost host;
  Assembler a;
  a.push(uint64_t{123}).push(uint64_t{0}).op(Op::SSTORE);
  a.op(Op::STOP);
  Bytes code = a.assemble();
  EvmParams params;
  params.code = as_span(code);
  EvmResult r = evm_execute(host, params);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(host.storage.size(), 1u);
}

TEST(Vm, CalldataLoad) {
  Bytes calldata = U256(0xabcd).to_bytes();
  Assembler a;
  a.push(uint64_t{0}).op(Op::CALLDATALOAD);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EvmResult r = run(as_span(a.assemble()), as_span(calldata));
  EXPECT_EQ(result_word(r), U256(0xabcd));
}

TEST(Vm, JumpLoop) {
  // Sum 1..10 via JUMPI loop.
  Assembler a;
  a.push(uint64_t{0});   // [sum]
  a.push(uint64_t{0});   // [sum, i]
  a.label("loop");       // [sum, i]
  a.push(uint64_t{1}).op(Op::ADD);              // i += 1
  a.op(Op::DUP1).op(Op::SWAP2).op(Op::ADD);     // [i, sum+i]
  a.op(Op::SWAP1);                              // [sum', i]
  a.op(Op::DUP1).push(uint64_t{10}).op(Op::GT); // [sum', i, 10>i]
  a.push_label("loop").op(Op::JUMPI);
  a.op(Op::POP);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EvmResult r = run(as_span(a.assemble()));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(result_word(r), U256(55));
}

TEST(Vm, InvalidJumpFails) {
  Assembler a;
  a.push(uint64_t{1}).op(Op::JUMP);  // destination 1 is push data, not JUMPDEST
  EvmResult r = run(as_span(a.assemble()));
  EXPECT_EQ(r.status, EvmStatus::kInvalid);
}

TEST(Vm, StackUnderflowFails) {
  Assembler a;
  a.op(Op::ADD);
  EXPECT_EQ(run(as_span(a.assemble())).status, EvmStatus::kInvalid);
}

TEST(Vm, OutOfGasHalts) {
  // Infinite loop must exhaust gas, not hang.
  Assembler a;
  a.label("loop");
  a.push_label("loop").op(Op::JUMP);
  MapHost host;
  Bytes code = a.assemble();
  EvmParams params;
  params.code = as_span(code);
  params.gas_limit = 10'000;
  EvmResult r = evm_execute(host, params);
  EXPECT_EQ(r.status, EvmStatus::kOutOfGas);
  EXPECT_LE(r.gas_used, 10'000u);
}

TEST(Vm, Sha3OverMemory) {
  Assembler a;
  a.push(uint64_t{0xaa}).push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::SHA3);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EvmResult r = run(as_span(a.assemble()));
  ASSERT_TRUE(r.ok());
  Digest expect = crypto::sha256(as_span(U256(0xaa).to_bytes()));
  EXPECT_EQ(result_word(r), U256::from_bytes_be(as_span(expect)));
}

TEST(Vm, CallerAndAddress) {
  MapHost host;
  Assembler a;
  a.op(Op::CALLER);
  a.push(uint64_t{0}).op(Op::MSTORE);
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  Bytes code = a.assemble();
  EvmParams params;
  params.code = as_span(code);
  params.caller.fill(0x11);
  EvmResult r = evm_execute(host, params);
  EXPECT_EQ(result_word(r),
            U256::from_bytes_be(ByteSpan{params.caller.data(), 20}));
}

TEST(Vm, DupAndSwapFamilies) {
  // DUP3 and SWAP2: stack [1,2,3] -> DUP3 -> [1,2,3,1]; SWAP2 -> [1,1,3,2]
  Assembler a;
  a.push(uint64_t{1}).push(uint64_t{2}).push(uint64_t{3});
  a.op(static_cast<Op>(0x82));  // DUP3
  a.op(static_cast<Op>(0x91));  // SWAP2
  a.push(uint64_t{0}).op(Op::MSTORE);  // stores top (2)
  a.push(uint64_t{32}).push(uint64_t{0}).op(Op::RETURN);
  EvmResult r = run(as_span(a.assemble()));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(result_word(r), U256(2));
}

// ---------------------------------------------------------------------------
// Contracts

TEST(Contracts, CounterIncrements) {
  MapHost host;
  Bytes code = counter_contract();
  EvmParams params;
  params.code = as_span(code);
  for (uint64_t i = 1; i <= 5; ++i) {
    EvmResult r = evm_execute(host, params);
    ASSERT_TRUE(r.ok()) << r.error;
    EXPECT_EQ(U256::from_bytes_be(as_span(r.output)), U256(i));
  }
}

class TokenFixture : public ::testing::Test {
 protected:
  EvmResult call(const Address& sender, const Bytes& calldata) {
    EvmParams params;
    params.code = as_span(code_);
    params.calldata = as_span(calldata);
    params.caller = sender;
    return evm_execute(host_, params);
  }
  U256 balance_of(const U256& account) {
    EvmResult r = call(alice_, token_call_balance_of(account));
    return U256::from_bytes_be(as_span(r.output));
  }
  static U256 word_of(const Address& a) {
    return U256::from_bytes_be(ByteSpan{a.data(), a.size()});
  }

  MapHost host_;
  Bytes code_ = token_contract();
  Address alice_{{1}};
  Address bob_{{2}};
};

TEST_F(TokenFixture, MintAndBalance) {
  ASSERT_TRUE(call(alice_, token_call_mint(word_of(alice_), U256(1000))).ok());
  EXPECT_EQ(balance_of(word_of(alice_)), U256(1000));
  EXPECT_EQ(balance_of(word_of(bob_)), U256(0));
}

TEST_F(TokenFixture, TransferMovesFunds) {
  ASSERT_TRUE(call(alice_, token_call_mint(word_of(alice_), U256(1000))).ok());
  EvmResult r = call(alice_, token_call_transfer(word_of(bob_), U256(300)));
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_EQ(balance_of(word_of(alice_)), U256(700));
  EXPECT_EQ(balance_of(word_of(bob_)), U256(300));
}

TEST_F(TokenFixture, InsufficientBalanceReverts) {
  ASSERT_TRUE(call(alice_, token_call_mint(word_of(alice_), U256(10))).ok());
  EvmResult r = call(alice_, token_call_transfer(word_of(bob_), U256(11)));
  EXPECT_EQ(r.status, EvmStatus::kRevert);
  EXPECT_EQ(balance_of(word_of(alice_)), U256(10));
  EXPECT_EQ(balance_of(word_of(bob_)), U256(0));
}

TEST_F(TokenFixture, UnknownSelectorReverts) {
  Bytes calldata = U256(99).to_bytes();
  EXPECT_EQ(call(alice_, calldata).status, EvmStatus::kRevert);
}

TEST(Contracts, SpinContractLoops) {
  MapHost host;
  Bytes code = spin_contract();
  Bytes calldata = spin_call(100);
  EvmParams params;
  params.code = as_span(code);
  params.calldata = as_span(calldata);
  EvmResult r = evm_execute(host, params);
  ASSERT_TRUE(r.ok()) << r.error;
  EXPECT_GT(r.gas_used, 100u * 20);  // at least the loop overhead
}

// ---------------------------------------------------------------------------
// Ledger service

TEST(EvmLedger, CreateThenCall) {
  EvmLedgerService ledger;
  Address sender{{9}};
  CreateTx create;
  create.sender = sender;
  create.code = counter_contract();
  Bytes out = ledger.execute(as_span(encode_create(create)));
  auto created = decode_tx_result(as_span(out));
  ASSERT_TRUE(created.has_value() && created->success);
  ASSERT_EQ(created->output.size(), 20u);
  Address contract;
  std::copy(created->output.begin(), created->output.end(), contract.begin());
  EXPECT_EQ(contract, EvmLedgerService::derive_address(sender, 0));

  CallTx call;
  call.sender = sender;
  call.contract = contract;
  auto result = decode_tx_result(as_span(ledger.execute(as_span(encode_call(call)))));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->success) << result->error;
  EXPECT_EQ(U256::from_bytes_be(as_span(result->output)), U256(1));
}

TEST(EvmLedger, PerSenderNonces) {
  EvmLedgerService ledger;
  Address a{{1}}, b{{2}};
  CreateTx ca{a, counter_contract()};
  CreateTx cb{b, counter_contract()};
  ledger.execute(as_span(encode_create(ca)));
  ledger.execute(as_span(encode_create(cb)));
  ledger.execute(as_span(encode_create(ca)));
  EXPECT_EQ(ledger.creations_by(a), 2u);
  EXPECT_EQ(ledger.creations_by(b), 1u);
  EXPECT_EQ(ledger.contracts_created(), 3u);
}

TEST(EvmLedger, CallUnknownContractFails) {
  EvmLedgerService ledger;
  CallTx call;
  call.contract.fill(0x77);
  auto result = decode_tx_result(as_span(ledger.execute(as_span(encode_call(call)))));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->success);
}

TEST(EvmLedger, DeterministicAcrossReplicas) {
  EvmLedgerService r1, r2;
  Address sender{{3}};
  std::vector<Bytes> ops;
  CreateTx create{sender, token_contract()};
  ops.push_back(encode_create(create));
  Address token = EvmLedgerService::derive_address(sender, 0);
  CallTx mint;
  mint.sender = sender;
  mint.contract = token;
  mint.calldata = token_call_mint(U256(7), U256(500));
  ops.push_back(encode_call(mint));
  for (const Bytes& op : ops) {
    Bytes o1 = r1.execute(as_span(op));
    Bytes o2 = r2.execute(as_span(op));
    EXPECT_EQ(o1, o2);
  }
  EXPECT_EQ(r1.state_digest(), r2.state_digest());
}

TEST(EvmLedger, SnapshotRestore) {
  EvmLedgerService a;
  Address sender{{4}};
  CreateTx create{sender, counter_contract()};
  a.execute(as_span(encode_create(create)));
  CallTx call;
  call.sender = sender;
  call.contract = EvmLedgerService::derive_address(sender, 0);
  a.execute(as_span(encode_call(call)));

  EvmLedgerService b;
  ASSERT_TRUE(b.restore(as_span(a.snapshot())));
  EXPECT_EQ(b.state_digest(), a.state_digest());
  // Continues deterministically after restore.
  Bytes oa = a.execute(as_span(encode_call(call)));
  Bytes ob = b.execute(as_span(encode_call(call)));
  EXPECT_EQ(oa, ob);
}

TEST(EvmLedger, BatchAggregatesGas) {
  EvmLedgerService ledger;
  Address sender{{5}};
  CreateTx create{sender, counter_contract()};
  ledger.execute(as_span(encode_create(create)));
  CallTx call;
  call.sender = sender;
  call.contract = EvmLedgerService::derive_address(sender, 0);
  std::vector<Bytes> txs(10, encode_call(call));
  ledger.execute(as_span(encode_tx_batch(txs)));
  sim::CostModel costs;
  EXPECT_GT(ledger.last_execute_cost_us(costs), 10 * costs.evm_us(21000) / 2);
}

}  // namespace
}  // namespace sbft::evm
