#include <gtest/gtest.h>

#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace sbft::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(as_span(sha256(""))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(as_span(sha256("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(as_span(sha256(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 h;
  std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(as_span(h.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<uint8_t>(i));
  Digest whole = sha256(as_span(data));
  for (size_t split : {1ul, 17ul, 63ul, 64ul, 65ul, 299ul}) {
    Sha256 h;
    h.update(ByteSpan{data.data(), split});
    h.update(ByteSpan{data.data() + split, data.size() - split});
    EXPECT_EQ(h.finish(), whole) << "split at " << split;
  }
}

TEST(Sha256, ExactBlockBoundary) {
  std::string msg(64, 'x');
  Digest a = sha256(msg);
  Sha256 h;
  h.update(msg);
  EXPECT_EQ(h.finish(), a);
}

TEST(Sha256, ConcatHelper) {
  Bytes a = to_bytes("foo");
  Bytes b = to_bytes("bar");
  EXPECT_EQ(sha256_concat(as_span(a), as_span(b)), sha256("foobar"));
}

TEST(Sha256, ResetReuses) {
  Sha256 h;
  h.update("abc");
  Digest first = h.finish();
  h.reset();
  h.update("abc");
  EXPECT_EQ(h.finish(), first);
}

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  EXPECT_EQ(to_hex(as_span(hmac_sha256(as_span(key), as_span("Hi There")))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, Rfc4231Case2) {
  EXPECT_EQ(to_hex(as_span(hmac_sha256(
                as_span("Jefe"), as_span("what do ya want for nothing?")))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case3) {
  Bytes key(20, 0xaa);
  Bytes msg(50, 0xdd);
  EXPECT_EQ(to_hex(as_span(hmac_sha256(as_span(key), as_span(msg)))),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe");
}

TEST(Hmac, LongKeyHashedDown) {
  // RFC 4231 case 6: 131-byte key.
  Bytes key(131, 0xaa);
  EXPECT_EQ(to_hex(as_span(hmac_sha256(
                as_span(key),
                as_span("Test Using Larger Than Block-Size Key - Hash Key First")))),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, FragmentsEqualConcatenation) {
  Bytes key = to_bytes("k");
  Digest split = hmac_sha256(as_span(key), {as_span("ab"), as_span("cd")});
  Digest whole = hmac_sha256(as_span(key), as_span("abcd"));
  EXPECT_EQ(split, whole);
}

TEST(Hmac, KeySensitivity) {
  EXPECT_NE(hmac_sha256(as_span("k1"), as_span("m")),
            hmac_sha256(as_span("k2"), as_span("m")));
}

}  // namespace
}  // namespace sbft::crypto
