#include <gtest/gtest.h>

#include "harness/workload.h"
#include "kv/kv_service.h"

namespace sbft::kv {
namespace {

TEST(KvOps, EncodeDecodePut) {
  Bytes op = encode_put(as_span("k"), as_span("v"));
  auto decoded = decode_op(as_span(op));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, OpType::kPut);
  EXPECT_EQ(decoded->key, to_bytes("k"));
  EXPECT_EQ(decoded->value, to_bytes("v"));
}

TEST(KvOps, DecodeRejectsGarbage) {
  Bytes bad = {0x09, 0x01};
  EXPECT_FALSE(decode_op(as_span(bad)).has_value());
  EXPECT_FALSE(decode_op(ByteSpan{}).has_value());
}

TEST(KvService, PutGetDelete) {
  KvService svc;
  EXPECT_EQ(svc.execute(as_span(encode_put(as_span("k"), as_span("v1")))),
            to_bytes("OK"));
  EXPECT_EQ(svc.execute(as_span(encode_get(as_span("k")))), to_bytes("v1"));
  EXPECT_EQ(svc.execute(as_span(encode_put(as_span("k"), as_span("v2")))),
            to_bytes("OK"));
  EXPECT_EQ(svc.execute(as_span(encode_get(as_span("k")))), to_bytes("v2"));
  EXPECT_EQ(svc.execute(as_span(encode_delete(as_span("k")))), to_bytes("OK"));
  EXPECT_TRUE(svc.execute(as_span(encode_get(as_span("k")))).empty());
}

TEST(KvService, DigestTracksState) {
  KvService a, b;
  EXPECT_EQ(a.state_digest(), b.state_digest());
  a.execute(as_span(encode_put(as_span("k"), as_span("v"))));
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.execute(as_span(encode_put(as_span("k"), as_span("v"))));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(KvService, DigestOrderIndependentForDisjointKeys) {
  KvService a, b;
  a.put(as_span("x"), as_span("1"));
  a.put(as_span("y"), as_span("2"));
  b.put(as_span("y"), as_span("2"));
  b.put(as_span("x"), as_span("1"));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(KvService, SnapshotRestoreRoundTrip) {
  KvService a;
  for (int i = 0; i < 50; ++i) {
    a.put(as_span(to_bytes("key" + std::to_string(i))),
          as_span(to_bytes("value" + std::to_string(i))));
  }
  Bytes snap = a.snapshot();
  KvService b;
  ASSERT_TRUE(b.restore(as_span(snap)));
  EXPECT_EQ(b.state_digest(), a.state_digest());
  EXPECT_EQ(b.get(as_span("key7")), to_bytes("value7"));
  EXPECT_EQ(b.size(), 50u);
}

TEST(KvService, RestoreRejectsMalformed) {
  KvService svc;
  Bytes garbage = {1, 2, 3};
  EXPECT_FALSE(svc.restore(as_span(garbage)));
}

TEST(KvService, ProofsAgainstStateDigest) {
  KvService svc;
  svc.put(as_span("alpha"), as_span("1"));
  svc.put(as_span("beta"), as_span("2"));
  Digest root = svc.state_digest();
  EXPECT_TRUE(KvService::verify(root, as_span("alpha"), to_bytes("1"),
                                svc.prove(as_span("alpha"))));
  EXPECT_FALSE(KvService::verify(root, as_span("alpha"), to_bytes("9"),
                                 svc.prove(as_span("alpha"))));
  // Non-membership.
  EXPECT_TRUE(KvService::verify(root, as_span("gamma"), std::nullopt,
                                svc.prove(as_span("gamma"))));
}

TEST(KvService, BatchOpExecutesAll) {
  KvService svc;
  std::vector<Bytes> ops;
  for (int i = 0; i < 64; ++i) {
    ops.push_back(encode_put(as_span(to_bytes("k" + std::to_string(i))),
                             as_span(to_bytes("v" + std::to_string(i)))));
  }
  svc.execute(as_span(encode_batch(ops)));
  EXPECT_EQ(svc.size(), 64u);
  EXPECT_EQ(svc.get(as_span("k63")), to_bytes("v63"));
  sim::CostModel costs;
  EXPECT_EQ(svc.last_execute_cost_us(costs), 64 * costs.kv_op_us);
}

TEST(KvService, MalformedOpReturnsError) {
  KvService svc;
  Bytes bad = {0x42};
  EXPECT_EQ(svc.execute(as_span(bad)), to_bytes("ERR:malformed"));
}

TEST(KvService, CloneEmptyIsFresh) {
  KvService svc;
  svc.put(as_span("k"), as_span("v"));
  auto fresh = svc.clone_empty();
  EXPECT_NE(fresh->state_digest(), svc.state_digest());
}

TEST(FastKvService, DeterministicDigest) {
  harness::FastKvService a, b;
  EXPECT_EQ(a.state_digest(), b.state_digest());
  Bytes op = encode_put(as_span("k"), as_span("v"));
  a.execute(as_span(op));
  EXPECT_NE(a.state_digest(), b.state_digest());
  b.execute(as_span(op));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(FastKvService, DivergentHistoriesDiverge) {
  harness::FastKvService a, b;
  a.execute(as_span(encode_put(as_span("k"), as_span("1"))));
  b.execute(as_span(encode_put(as_span("k"), as_span("2"))));
  EXPECT_NE(a.state_digest(), b.state_digest());
}

TEST(FastKvService, SnapshotRestore) {
  harness::FastKvService a;
  for (int i = 0; i < 10; ++i) {
    a.execute(as_span(encode_put(as_span("k"), as_span(std::to_string(i)))));
  }
  harness::FastKvService b;
  ASSERT_TRUE(b.restore(as_span(a.snapshot())));
  EXPECT_EQ(a.state_digest(), b.state_digest());
}

TEST(FastKvService, BatchCostReporting) {
  harness::FastKvService svc;
  std::vector<Bytes> ops(64, encode_put(as_span("k"), as_span("v")));
  svc.execute(as_span(encode_batch(ops)));
  sim::CostModel costs;
  EXPECT_EQ(svc.last_execute_cost_us(costs), 64 * costs.kv_op_us);
}

TEST(KvWorkload, GeneratesValidOps) {
  auto factory = harness::kv_op_factory({});
  Rng rng(1);
  KvService svc;
  for (int i = 0; i < 20; ++i) {
    Bytes op = factory(static_cast<uint64_t>(i), rng);
    EXPECT_EQ(svc.execute(as_span(op)), to_bytes("OK"));
  }
  EXPECT_GT(svc.size(), 0u);
}

TEST(KvWorkload, BatchModeGenerates64Ops) {
  harness::KvWorkloadOptions opts;
  opts.ops_per_request = 64;
  auto factory = harness::kv_op_factory(opts);
  Rng rng(2);
  Bytes op = factory(0, rng);
  KvService svc;
  svc.execute(as_span(op));
  sim::CostModel costs;
  EXPECT_EQ(svc.last_execute_cost_us(costs), 64 * costs.kv_op_us);
}

}  // namespace
}  // namespace sbft::kv
