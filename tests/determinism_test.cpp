// Whole-cluster determinism: the discrete-event simulation is a pure
// function of its seed, so experiments (and failures) are reproducible.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/metrics.h"

namespace sbft::harness {
namespace {

struct RunSignature {
  uint64_t events;
  uint64_t messages;
  uint64_t bytes;
  SeqNum max_executed;
  Digest state_root;
  std::vector<int64_t> latencies;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_once(uint64_t seed, ProtocolKind kind, bool tracing = false,
                      uint32_t cores = 0) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.c = 1;
  opts.num_clients = 3;
  opts.requests_per_client = 0;
  opts.topology = sim::continent_topology();
  opts.seed = seed;
  opts.tracing = tracing;
  opts.cores_per_replica = cores;
  Cluster cluster(std::move(opts));
  cluster.run_for(1'000'000);

  RunSignature sig;
  sig.events = cluster.simulator().events_processed();
  auto totals = cluster.network().total_stats();
  sig.messages = totals.count;
  sig.bytes = totals.bytes;
  sig.max_executed = cluster.max_executed();
  sig.state_root = cluster.sbft_replica(1)
                       ? cluster.sbft_replica(1)->service().state_digest()
                       : cluster.pbft_replica(1)->service().state_digest();
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    for (const auto& rec : cluster.client(i).records()) {
      sig.latencies.push_back(rec.latency_us);
    }
  }
  return sig;
}

TEST(Determinism, SbftIdenticalRunsFromSameSeed) {
  RunSignature a = run_once(42, ProtocolKind::kSbft);
  RunSignature b = run_once(42, ProtocolKind::kSbft);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.max_executed, 0u);
}

TEST(Determinism, PbftIdenticalRunsFromSameSeed) {
  RunSignature a = run_once(43, ProtocolKind::kPbft);
  RunSignature b = run_once(43, ProtocolKind::kPbft);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  RunSignature a = run_once(1, ProtocolKind::kSbft);
  RunSignature b = run_once(2, ProtocolKind::kSbft);
  // Different request payloads and jitter draws: traffic must differ.
  EXPECT_NE(a.bytes, b.bytes);
}

TEST(Determinism, TracingDoesNotPerturbTheSimulation) {
  // Tracers only record into memory — never timers, network, or RNG — so
  // enabling tracing must leave the run bit-for-bit identical.
  RunSignature off = run_once(44, ProtocolKind::kSbft, /*tracing=*/false);
  RunSignature on = run_once(44, ProtocolKind::kSbft, /*tracing=*/true);
  EXPECT_EQ(off, on);
  EXPECT_EQ(run_once(45, ProtocolKind::kPbft, false),
            run_once(45, ProtocolKind::kPbft, true));
}

TEST(Determinism, TraceDumpByteIdenticalAcrossRuns) {
  auto trace_of = [](uint64_t seed) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kSbft;
    opts.f = 1;
    opts.num_clients = 3;
    opts.requests_per_client = 0;
    opts.topology = sim::lan_topology();
    opts.seed = seed;
    opts.tracing = true;
    Cluster cluster(std::move(opts));
    cluster.run_for(1'000'000);
    cluster.crash_replica(3);
    cluster.run_for(500'000);
    cluster.restart_replica(3);
    cluster.run_for(1'000'000);
    return cluster.trace_json();
  };
  std::string a = trace_of(46);
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, trace_of(46));
  EXPECT_NE(a, trace_of(47));
}

TEST(Determinism, MultiLaneRunsIdenticalFromSameSeed) {
  // Worker-lane dispatch (earliest-free, lowest index on ties) is part of
  // the deterministic state machine: same seed + same lane count => the
  // same run, for both ordering engines.
  RunSignature a = run_once(48, ProtocolKind::kSbft, false, /*cores=*/8);
  RunSignature b = run_once(48, ProtocolKind::kSbft, false, /*cores=*/8);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.max_executed, 0u);
  EXPECT_EQ(run_once(49, ProtocolKind::kPbft, false, 8),
            run_once(49, ProtocolKind::kPbft, false, 8));
}

TEST(Determinism, MultiLaneTraceDumpByteIdentical) {
  auto trace_of = [](uint64_t seed) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kSbft;
    opts.f = 1;
    opts.num_clients = 3;
    opts.requests_per_client = 0;
    opts.topology = sim::lan_topology();
    opts.seed = seed;
    opts.tracing = true;
    opts.cores_per_replica = 8;
    Cluster cluster(std::move(opts));
    cluster.run_for(1'000'000);
    return cluster.trace_json();
  };
  std::string a = trace_of(50);
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, trace_of(50));
}

TEST(Determinism, LaneCountChangesTimingNotResults) {
  // cores=1 vs cores=8 run the same protocol state machine — offloading
  // only moves crypto cost onto worker lanes, so the committed blocks,
  // final service state, and client outcomes must match; only sim-time
  // (and hence latencies) may differ. One sequential client pins the
  // batching so per-seq blocks are comparable across lane counts.
  struct Outcome {
    SeqNum max_executed;
    Digest state_root;
    size_t client_records;
    std::vector<Bytes> blocks;

    bool operator==(const Outcome&) const = default;
  };
  auto run_with_cores = [](uint32_t cores) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kSbft;
    opts.f = 1;
    opts.c = 1;
    opts.num_clients = 1;
    opts.requests_per_client = 20;
    opts.topology = sim::continent_topology();
    opts.seed = 51;
    opts.cores_per_replica = cores;
    Cluster cluster(std::move(opts));
    EXPECT_TRUE(cluster.run_until_done(60'000'000));
    Outcome out;
    out.max_executed = cluster.max_executed();
    out.state_root = cluster.sbft_replica(1)->service().state_digest();
    out.client_records = cluster.client(0).records().size();
    auto ledger = cluster.replica_ledger(1);
    for (SeqNum s = 1; s <= ledger->last_seq(); ++s) {
      if (auto block = ledger->read_block(s)) out.blocks.push_back(*block);
    }
    return out;
  };
  Outcome serial = run_with_cores(1);
  Outcome parallel = run_with_cores(8);
  EXPECT_EQ(serial, parallel);
  EXPECT_EQ(serial.client_records, 20u);
  EXPECT_GE(serial.blocks.size(), 20u);
}

TEST(Determinism, SnapshotBytesIdenticalAcrossRuns) {
  // Regression for the lint:determinism merkle conversion: state_digest()
  // is the sparse-merkle root, and snapshots carry it into checkpoint
  // certificates, so two same-seed runs must agree on the exported state
  // down to the byte — not just on counters.
  auto state_of = [](uint64_t seed) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kSbft;
    opts.f = 1;
    opts.num_clients = 3;
    opts.requests_per_client = 0;
    opts.topology = sim::lan_topology();
    opts.seed = seed;
    Cluster cluster(std::move(opts));
    cluster.run_for(1'500'000);
    return std::make_pair(cluster.sbft_replica(1)->service().state_digest(),
                          cluster.sbft_replica(1)->service().snapshot());
  };
  auto a = state_of(52);
  EXPECT_GT(a.second.size(), 0u);
  EXPECT_EQ(a, state_of(52));
}

TEST(Determinism, FaultScheduleReproducible) {
  auto run_with_faults = [](uint64_t seed) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kSbft;
    opts.f = 2;
    opts.c = 1;
    opts.num_clients = 2;
    opts.requests_per_client = 0;
    opts.topology = sim::lan_topology();
    opts.seed = seed;
    opts.crash_replicas = 1;
    opts.straggler_replicas = 1;
    Cluster cluster(std::move(opts));
    cluster.run_for(1'000'000);
    return std::make_pair(cluster.simulator().events_processed(),
                          cluster.max_executed());
  };
  EXPECT_EQ(run_with_faults(7), run_with_faults(7));
}

}  // namespace
}  // namespace sbft::harness
