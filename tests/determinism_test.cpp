// Whole-cluster determinism: the discrete-event simulation is a pure
// function of its seed, so experiments (and failures) are reproducible.
#include <gtest/gtest.h>

#include "harness/cluster.h"
#include "harness/metrics.h"

namespace sbft::harness {
namespace {

struct RunSignature {
  uint64_t events;
  uint64_t messages;
  uint64_t bytes;
  SeqNum max_executed;
  Digest state_root;
  std::vector<int64_t> latencies;

  bool operator==(const RunSignature&) const = default;
};

RunSignature run_once(uint64_t seed, ProtocolKind kind, bool tracing = false) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.c = 1;
  opts.num_clients = 3;
  opts.requests_per_client = 0;
  opts.topology = sim::continent_topology();
  opts.seed = seed;
  opts.tracing = tracing;
  Cluster cluster(std::move(opts));
  cluster.run_for(1'000'000);

  RunSignature sig;
  sig.events = cluster.simulator().events_processed();
  auto totals = cluster.network().total_stats();
  sig.messages = totals.count;
  sig.bytes = totals.bytes;
  sig.max_executed = cluster.max_executed();
  sig.state_root = cluster.sbft_replica(1)
                       ? cluster.sbft_replica(1)->service().state_digest()
                       : cluster.pbft_replica(1)->service().state_digest();
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    for (const auto& rec : cluster.client(i).records()) {
      sig.latencies.push_back(rec.latency_us);
    }
  }
  return sig;
}

TEST(Determinism, SbftIdenticalRunsFromSameSeed) {
  RunSignature a = run_once(42, ProtocolKind::kSbft);
  RunSignature b = run_once(42, ProtocolKind::kSbft);
  EXPECT_EQ(a, b);
  EXPECT_GT(a.max_executed, 0u);
}

TEST(Determinism, PbftIdenticalRunsFromSameSeed) {
  RunSignature a = run_once(43, ProtocolKind::kPbft);
  RunSignature b = run_once(43, ProtocolKind::kPbft);
  EXPECT_EQ(a, b);
}

TEST(Determinism, DifferentSeedsDiverge) {
  RunSignature a = run_once(1, ProtocolKind::kSbft);
  RunSignature b = run_once(2, ProtocolKind::kSbft);
  // Different request payloads and jitter draws: traffic must differ.
  EXPECT_NE(a.bytes, b.bytes);
}

TEST(Determinism, TracingDoesNotPerturbTheSimulation) {
  // Tracers only record into memory — never timers, network, or RNG — so
  // enabling tracing must leave the run bit-for-bit identical.
  RunSignature off = run_once(44, ProtocolKind::kSbft, /*tracing=*/false);
  RunSignature on = run_once(44, ProtocolKind::kSbft, /*tracing=*/true);
  EXPECT_EQ(off, on);
  EXPECT_EQ(run_once(45, ProtocolKind::kPbft, false),
            run_once(45, ProtocolKind::kPbft, true));
}

TEST(Determinism, TraceDumpByteIdenticalAcrossRuns) {
  auto trace_of = [](uint64_t seed) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kSbft;
    opts.f = 1;
    opts.num_clients = 3;
    opts.requests_per_client = 0;
    opts.topology = sim::lan_topology();
    opts.seed = seed;
    opts.tracing = true;
    Cluster cluster(std::move(opts));
    cluster.run_for(1'000'000);
    cluster.crash_replica(3);
    cluster.run_for(500'000);
    cluster.restart_replica(3);
    cluster.run_for(1'000'000);
    return cluster.trace_json();
  };
  std::string a = trace_of(46);
  EXPECT_GT(a.size(), 1000u);
  EXPECT_EQ(a, trace_of(46));
  EXPECT_NE(a, trace_of(47));
}

TEST(Determinism, FaultScheduleReproducible) {
  auto run_with_faults = [](uint64_t seed) {
    ClusterOptions opts;
    opts.kind = ProtocolKind::kSbft;
    opts.f = 2;
    opts.c = 1;
    opts.num_clients = 2;
    opts.requests_per_client = 0;
    opts.topology = sim::lan_topology();
    opts.seed = seed;
    opts.crash_replicas = 1;
    opts.straggler_replicas = 1;
    Cluster cluster(std::move(opts));
    cluster.run_for(1'000'000);
    return std::make_pair(cluster.simulator().events_processed(),
                          cluster.max_executed());
  };
  EXPECT_EQ(run_with_faults(7), run_with_faults(7));
}

}  // namespace
}  // namespace sbft::harness
