// Unit and property tests for the dual-mode safe-value computation (§V-G),
// the crux of SBFT's correctness argument (Theorem VI.1).
#include <gtest/gtest.h>

#include "core/crypto_context.h"
#include "core/view_change.h"
#include "crypto/sha256.h"

namespace sbft::core {
namespace {

class ViewChangeFixture : public ::testing::Test {
 protected:
  ViewChangeFixture() {
    config_.f = 1;
    config_.c = 0;  // n = 4; fast quorum 4, slow quorum 3, f+c+1 = 2
    Rng rng(2024);
    keys_ = ClusterKeys::generate(rng, config_);
    verifiers_ = {keys_.sigma.verifier.get(), keys_.tau.verifier.get(),
                  keys_.pi.verifier.get()};
  }

  Block make_block(const std::string& tag) {
    Block b;
    Request r;
    r.client = 100;
    r.timestamp = 1;
    r.op = to_bytes(tag);
    b.requests.push_back(std::move(r));
    return b;
  }

  /// tau(h) certificate over slot j at view v for `block`.
  Bytes make_tau(SeqNum j, ViewNum v, const Digest& digest) {
    Digest h = slot_hash(j, v, digest);
    std::vector<crypto::SignatureShare> shares;
    for (uint32_t i = 1; i <= config_.slow_quorum(); ++i) {
      shares.push_back({i, keys_.tau.signers[i - 1]->sign_share(h)});
    }
    auto sig = keys_.tau.verifier->combine(h, shares);
    return *sig;
  }

  Bytes make_tau_tau(const Bytes& tau_sig) {
    Digest d2 = commit_hash(crypto::sha256(as_span(tau_sig)));
    std::vector<crypto::SignatureShare> shares;
    for (uint32_t i = 1; i <= config_.slow_quorum(); ++i) {
      shares.push_back({i, keys_.tau.signers[i - 1]->sign_share(d2)});
    }
    return *keys_.tau.verifier->combine(d2, shares);
  }

  Bytes make_sigma(SeqNum j, ViewNum v, const Digest& digest) {
    Digest h = slot_hash(j, v, digest);
    std::vector<crypto::SignatureShare> shares;
    for (uint32_t i = 1; i <= config_.fast_quorum(); ++i) {
      shares.push_back({i, keys_.sigma.signers[i - 1]->sign_share(h)});
    }
    return *keys_.sigma.verifier->combine(h, shares);
  }

  Bytes sigma_share(ReplicaId i, SeqNum j, ViewNum v, const Digest& digest) {
    return keys_.sigma.signers[i - 1]->sign_share(slot_hash(j, v, digest));
  }

  ViewChangeMsg vc(ReplicaId sender, std::vector<SlotEvidence> slots) {
    ViewChangeMsg m;
    m.sender = sender;
    m.next_view = 1;
    m.ls = 0;
    m.slots = std::move(slots);
    return m;
  }

  SlotEvidence vote(ReplicaId sender, SeqNum j, ViewNum v, const Block& block) {
    SlotEvidence e;
    e.seq = j;
    e.fm_kind = FastEvidence::kVote;
    e.fm_view = v;
    e.fm_block_digest = block.digest();
    e.fm_sig = sigma_share(sender, j, v, block.digest());
    e.block = block;
    return e;
  }

  SlotEvidence prepare_cert(SeqNum j, ViewNum v, const Block& block) {
    SlotEvidence e;
    e.seq = j;
    e.lm_kind = SlowEvidence::kPrepareCert;
    e.lm_view = v;
    e.lm_block_digest = block.digest();
    e.lm_sig = make_tau(j, v, block.digest());
    e.block = block;
    return e;
  }

  ProtocolConfig config_;
  ClusterKeys keys_;
  ViewChangeVerifiers verifiers_;
};

TEST_F(ViewChangeFixture, EmptyEvidenceYieldsNoop) {
  std::vector<ViewChangeMsg> proofs = {vc(1, {}), vc(2, {}), vc(3, {})};
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kNoop);
  EXPECT_EQ(safe.block_digest, null_block().digest());
}

TEST_F(ViewChangeFixture, FullSlowProofDecides) {
  Block block = make_block("slow-decided");
  SlotEvidence e;
  e.seq = 1;
  e.lm_kind = SlowEvidence::kFullProof;
  e.lm_view = 0;
  e.lm_block_digest = block.digest();
  e.lm_inner_sig = make_tau(1, 0, block.digest());
  e.lm_sig = make_tau_tau(e.lm_inner_sig);
  e.block = block;
  std::vector<ViewChangeMsg> proofs = {vc(1, {e}), vc(2, {}), vc(3, {})};
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kDecided);
  EXPECT_FALSE(safe.decided_fast);
  EXPECT_EQ(safe.block_digest, block.digest());
  ASSERT_TRUE(safe.block.has_value());
}

TEST_F(ViewChangeFixture, FullFastProofDecides) {
  Block block = make_block("fast-decided");
  SlotEvidence e;
  e.seq = 1;
  e.fm_kind = FastEvidence::kFullProof;
  e.fm_view = 0;
  e.fm_block_digest = block.digest();
  e.fm_sig = make_sigma(1, 0, block.digest());
  e.block = block;
  std::vector<ViewChangeMsg> proofs = {vc(1, {e}), vc(2, {}), vc(3, {})};
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kDecided);
  EXPECT_TRUE(safe.decided_fast);
  EXPECT_EQ(safe.block_digest, block.digest());
}

TEST_F(ViewChangeFixture, PrepareCertificateAdopted) {
  Block block = make_block("prepared");
  std::vector<ViewChangeMsg> proofs = {vc(1, {prepare_cert(1, 0, block)}),
                                       vc(2, {}), vc(3, {})};
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kAdopt);
  EXPECT_EQ(safe.block_digest, block.digest());
}

TEST_F(ViewChangeFixture, FastVotesAdoptedWhenQuorum) {
  Block block = make_block("fast-votes");
  // f+c+1 = 2 votes suffice.
  std::vector<ViewChangeMsg> proofs = {vc(1, {vote(1, 1, 0, block)}),
                                       vc(2, {vote(2, 1, 0, block)}), vc(3, {})};
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kAdopt);
  EXPECT_EQ(safe.block_digest, block.digest());
}

TEST_F(ViewChangeFixture, SingleVoteInsufficient) {
  Block block = make_block("lonely-vote");
  std::vector<ViewChangeMsg> proofs = {vc(1, {vote(1, 1, 0, block)}), vc(2, {}),
                                       vc(3, {})};
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kNoop);
}

TEST_F(ViewChangeFixture, SlowCertPreferredOnViewTie) {
  // The paper's tie rule (v* >= v-hat prefers the prepare certificate): this
  // is what makes the two concurrent modes safe together.
  Block slow_block = make_block("slow-value");
  Block fast_block = make_block("fast-value");
  std::vector<ViewChangeMsg> proofs = {
      vc(1, {[&] {
         SlotEvidence e = prepare_cert(1, 0, slow_block);
         // Same sender also voted fast for the other block at the same view.
         e.fm_kind = FastEvidence::kVote;
         e.fm_view = 0;
         e.fm_block_digest = fast_block.digest();
         e.fm_sig = sigma_share(1, 1, 0, fast_block.digest());
         return e;
       }()}),
      vc(2, {vote(2, 1, 0, fast_block)}),
      vc(3, {vote(3, 1, 0, fast_block)}),
  };
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kAdopt);
  EXPECT_EQ(safe.block_digest, slow_block.digest());  // slow wins the tie
}

TEST_F(ViewChangeFixture, HigherFastViewBeatsLowerSlowCert) {
  Block old_slow = make_block("old-slow");
  Block new_fast = make_block("new-fast");
  std::vector<ViewChangeMsg> proofs = {
      vc(1, {prepare_cert(1, 0, old_slow)}),
      vc(2, {vote(2, 1, 3, new_fast)}),
      vc(3, {vote(3, 1, 3, new_fast)}),
  };
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kAdopt);
  EXPECT_EQ(safe.block_digest, new_fast.digest());
}

TEST_F(ViewChangeFixture, AmbiguousFastValueInvalidatesVhat) {
  // Two different values each with f+c+1 votes at the same view: v-hat is
  // ambiguous and must be discarded (§V-G step 2).
  Block a = make_block("candidate-a");
  Block b = make_block("candidate-b");
  std::vector<ViewChangeMsg> proofs = {
      vc(1, {vote(1, 1, 2, a)}),
      vc(2, {vote(2, 1, 2, a)}),
      vc(3, {vote(3, 1, 2, b)}),
      vc(4, {vote(4, 1, 2, b)}),
  };
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kNoop);
}

TEST_F(ViewChangeFixture, ForgedCertificateIgnored) {
  Block block = make_block("forged");
  SlotEvidence e = prepare_cert(1, 0, block);
  e.lm_sig[0] ^= 0x55;  // corrupt the tau signature
  std::vector<ViewChangeMsg> proofs = {vc(1, {e}), vc(2, {}), vc(3, {})};
  SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
  EXPECT_EQ(safe.kind, SafeValue::Kind::kNoop);
}

TEST_F(ViewChangeFixture, ValidateViewChangeRejectsBadEvidence) {
  Block block = make_block("invalid");
  SlotEvidence e = vote(2, 1, 0, block);  // share signed by replica 2
  ViewChangeMsg m = vc(1, {e});           // but claimed by sender 1
  EXPECT_FALSE(validate_view_change(config_, verifiers_, m));
  ViewChangeMsg ok = vc(2, {e});
  EXPECT_TRUE(validate_view_change(config_, verifiers_, ok));
}

TEST_F(ViewChangeFixture, ValidateViewChangeRejectsDuplicateSlots) {
  Block block = make_block("dup");
  ViewChangeMsg m = vc(1, {vote(1, 1, 0, block), vote(1, 1, 0, block)});
  EXPECT_FALSE(validate_view_change(config_, verifiers_, m));
}

TEST_F(ViewChangeFixture, ValidateNewViewChecksQuorumAndSenders) {
  NewViewMsg nv;
  nv.view = 1;
  nv.proofs = {vc(1, {}), vc(2, {}), vc(3, {})};
  EXPECT_TRUE(validate_new_view(config_, verifiers_, nv));
  nv.proofs.pop_back();
  EXPECT_FALSE(validate_new_view(config_, verifiers_, nv));  // below 2f+2c+1
  nv.proofs = {vc(1, {}), vc(1, {}), vc(2, {})};
  EXPECT_FALSE(validate_new_view(config_, verifiers_, nv));  // duplicate sender
}

// Property: whenever a value *could have committed* in the old view (slow
// certificate present, or a fast quorum of votes), the safe value is that
// value — never a no-op, never a different value. Randomized over evidence
// layouts.
TEST_F(ViewChangeFixture, PossiblyCommittedValueAlwaysProtected) {
  Rng rng(4242);
  Block committed = make_block("the-committed-value");
  Block other = make_block("some-other-value");
  for (int round = 0; round < 50; ++round) {
    // The committed value prepared at view vp; noise votes at views < vp.
    ViewNum vp = 1 + rng.below(4);
    std::vector<ViewChangeMsg> proofs;
    proofs.push_back(vc(1, {prepare_cert(1, vp, committed)}));
    for (ReplicaId sender = 2; sender <= 3; ++sender) {
      std::vector<SlotEvidence> slots;
      if (rng.chance(0.7)) {
        ViewNum noise_view = rng.below(vp);  // strictly older than vp
        slots.push_back(vote(sender, 1, noise_view, other));
      }
      proofs.push_back(vc(sender, slots));
    }
    SafeValue safe = compute_safe_value(config_, verifiers_, 1, proofs);
    EXPECT_NE(safe.kind, SafeValue::Kind::kNoop) << "round " << round;
    EXPECT_EQ(safe.block_digest, committed.digest()) << "round " << round;
  }
}

TEST_F(ViewChangeFixture, SelectStableSeqIgnoresUnprovenCheckpoints) {
  ViewChangeMsg bogus = vc(1, {});
  bogus.ls = 128;  // claims a checkpoint without a pi certificate
  std::vector<ViewChangeMsg> proofs = {bogus, vc(2, {}), vc(3, {})};
  EXPECT_EQ(select_stable_seq(config_, verifiers_, proofs), 0u);
}

TEST_F(ViewChangeFixture, SelectStableSeqAcceptsProvenCheckpoint) {
  ExecCertificate cert;
  cert.seq = 128;
  cert.state_root = crypto::sha256("state");
  cert.ops_root = crypto::sha256("ops");
  cert.prev_exec_digest = crypto::sha256("prev");
  Digest d = cert.exec_digest();
  std::vector<crypto::SignatureShare> shares;
  for (uint32_t i = 1; i <= config_.exec_quorum(); ++i) {
    shares.push_back({i, keys_.pi.signers[i - 1]->sign_share(d)});
  }
  cert.pi_sig = *keys_.pi.verifier->combine(d, shares);
  ViewChangeMsg m = vc(1, {});
  m.ls = 128;
  m.checkpoint = cert;
  std::vector<ViewChangeMsg> proofs = {m, vc(2, {}), vc(3, {})};
  EXPECT_EQ(select_stable_seq(config_, verifiers_, proofs), 128u);
  EXPECT_TRUE(validate_view_change(config_, verifiers_, m));
}

}  // namespace
}  // namespace sbft::core
