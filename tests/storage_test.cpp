#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/ledger_storage.h"

namespace sbft::storage {
namespace {

class TempFile {
 public:
  TempFile() {
    path_ = (std::filesystem::temp_directory_path() /
             ("sbft-ledger-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter_++)))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

TEST(MemoryLedger, AppendAndRead) {
  MemoryLedgerStorage ledger;
  ledger.append_block(1, as_span(to_bytes("block-1")));
  ledger.append_block(2, as_span(to_bytes("block-2")));
  EXPECT_EQ(ledger.block_count(), 2u);
  EXPECT_EQ(ledger.last_seq(), 2u);
  EXPECT_EQ(ledger.read_block(1), to_bytes("block-1"));
  EXPECT_FALSE(ledger.read_block(3).has_value());
}

TEST(MemoryLedger, EmptyState) {
  MemoryLedgerStorage ledger;
  EXPECT_EQ(ledger.last_seq(), 0u);
  EXPECT_EQ(ledger.block_count(), 0u);
}

TEST(FileLedger, AppendAndRead) {
  TempFile tmp;
  FileLedgerStorage ledger(tmp.path());
  ledger.append_block(1, as_span(to_bytes("alpha")));
  ledger.append_block(5, as_span(to_bytes("beta")));
  EXPECT_EQ(ledger.read_block(1), to_bytes("alpha"));
  EXPECT_EQ(ledger.read_block(5), to_bytes("beta"));
  EXPECT_EQ(ledger.last_seq(), 5u);
}

TEST(FileLedger, DuplicateAppendIgnored) {
  TempFile tmp;
  FileLedgerStorage ledger(tmp.path());
  ledger.append_block(1, as_span(to_bytes("original")));
  ledger.append_block(1, as_span(to_bytes("overwrite-attempt")));
  EXPECT_EQ(ledger.read_block(1), to_bytes("original"));
  EXPECT_EQ(ledger.block_count(), 1u);
}

TEST(FileLedger, SurvivesReopen) {
  TempFile tmp;
  {
    FileLedgerStorage ledger(tmp.path());
    ledger.append_block(1, as_span(to_bytes("persisted")));
    ledger.append_block(2, as_span(to_bytes("also persisted")));
    ledger.sync();
  }
  FileLedgerStorage reopened(tmp.path());
  EXPECT_EQ(reopened.block_count(), 2u);
  EXPECT_EQ(reopened.read_block(1), to_bytes("persisted"));
  EXPECT_EQ(reopened.read_block(2), to_bytes("also persisted"));
}

TEST(FileLedger, EmptyPayloadAllowed) {
  TempFile tmp;
  FileLedgerStorage ledger(tmp.path());
  ledger.append_block(3, ByteSpan{});
  auto blk = ledger.read_block(3);
  ASSERT_TRUE(blk.has_value());
  EXPECT_TRUE(blk->empty());
}

TEST(FileLedger, TruncatedTailHeaderIsDiscarded) {
  // A crash mid-append can leave a partial header; reopen must index only the
  // complete records and land the next append on a record boundary.
  TempFile tmp;
  {
    FileLedgerStorage ledger(tmp.path());
    ledger.append_block(1, as_span(to_bytes("one")));
    ledger.append_block(2, as_span(to_bytes("two")));
    ledger.sync();
  }
  {
    std::FILE* f = std::fopen(tmp.path().c_str(), "ab");
    const uint8_t garbage[5] = {0x03, 0, 0, 0, 0};  // 5 of 12 header bytes
    std::fwrite(garbage, 1, sizeof(garbage), f);
    std::fclose(f);
  }
  FileLedgerStorage reopened(tmp.path());
  EXPECT_EQ(reopened.block_count(), 2u);
  EXPECT_EQ(reopened.last_seq(), 2u);
  EXPECT_EQ(reopened.read_block(1), to_bytes("one"));
  // Appends after the truncation parse cleanly on the next open.
  reopened.append_block(3, as_span(to_bytes("three")));
  reopened.sync();
  FileLedgerStorage again(tmp.path());
  EXPECT_EQ(again.block_count(), 3u);
  EXPECT_EQ(again.read_block(3), to_bytes("three"));
}

TEST(FileLedger, TruncatedTailPayloadIsDiscarded) {
  // Header fully written but the payload cut short: the record must not be
  // indexed (its bytes are garbage) and must be truncated away.
  TempFile tmp;
  {
    FileLedgerStorage ledger(tmp.path());
    ledger.append_block(1, as_span(to_bytes("complete")));
    ledger.append_block(2, as_span(to_bytes("this-payload-gets-cut")));
    ledger.sync();
  }
  auto size = std::filesystem::file_size(tmp.path());
  std::filesystem::resize_file(tmp.path(), size - 4);
  FileLedgerStorage reopened(tmp.path());
  EXPECT_EQ(reopened.block_count(), 1u);
  EXPECT_EQ(reopened.last_seq(), 1u);
  EXPECT_EQ(reopened.read_block(1), to_bytes("complete"));
  EXPECT_FALSE(reopened.read_block(2).has_value());
  // Re-appending sequence 2 works and survives another reopen.
  reopened.append_block(2, as_span(to_bytes("rewritten")));
  reopened.sync();
  FileLedgerStorage again(tmp.path());
  EXPECT_EQ(again.block_count(), 2u);
  EXPECT_EQ(again.read_block(2), to_bytes("rewritten"));
}

TEST(FileLedger, LargeBlock) {
  TempFile tmp;
  FileLedgerStorage ledger(tmp.path());
  Bytes big(1 << 18, 0x5a);
  ledger.append_block(7, as_span(big));
  EXPECT_EQ(ledger.read_block(7), big);
}

}  // namespace
}  // namespace sbft::storage
