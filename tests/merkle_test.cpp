#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "merkle/merkle_tree.h"

namespace sbft::merkle {
namespace {

std::vector<Digest> make_leaves(size_t count) {
  std::vector<Digest> leaves;
  for (size_t i = 0; i < count; ++i) {
    leaves.push_back(leaf_hash(as_span(to_bytes("leaf-" + std::to_string(i)))));
  }
  return leaves;
}

TEST(LeafHash, DomainSeparatedFromNodes) {
  Digest a = crypto::sha256("x");
  EXPECT_NE(leaf_hash(as_span(a)), node_hash(a, a));
}

TEST(BlockTree, SingleLeaf) {
  auto leaves = make_leaves(1);
  BlockMerkleTree tree(leaves);
  EXPECT_EQ(tree.root(), leaves[0]);
  BlockProof proof = tree.prove(0);
  EXPECT_TRUE(BlockMerkleTree::verify(tree.root(), leaves[0], proof));
}

class BlockTreeSizes : public ::testing::TestWithParam<size_t> {};

TEST_P(BlockTreeSizes, AllProofsVerify) {
  auto leaves = make_leaves(GetParam());
  BlockMerkleTree tree(leaves);
  for (size_t i = 0; i < leaves.size(); ++i) {
    BlockProof proof = tree.prove(i);
    EXPECT_TRUE(BlockMerkleTree::verify(tree.root(), leaves[i], proof)) << i;
  }
}

TEST_P(BlockTreeSizes, WrongLeafFails) {
  auto leaves = make_leaves(GetParam());
  BlockMerkleTree tree(leaves);
  Digest wrong = leaf_hash(as_span(to_bytes("not-a-leaf")));
  for (size_t i = 0; i < leaves.size(); ++i) {
    EXPECT_FALSE(BlockMerkleTree::verify(tree.root(), wrong, tree.prove(i)));
  }
}

TEST_P(BlockTreeSizes, WrongIndexFails) {
  auto leaves = make_leaves(GetParam());
  if (leaves.size() < 2) return;
  BlockMerkleTree tree(leaves);
  BlockProof proof = tree.prove(0);
  proof.index = 1;
  EXPECT_FALSE(BlockMerkleTree::verify(tree.root(), leaves[0], proof));
}

INSTANTIATE_TEST_SUITE_P(Sizes, BlockTreeSizes,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 13, 64, 100));

TEST(BlockTree, TamperedPathFails) {
  auto leaves = make_leaves(8);
  BlockMerkleTree tree(leaves);
  BlockProof proof = tree.prove(3);
  proof.path[0][0] ^= 1;
  EXPECT_FALSE(BlockMerkleTree::verify(tree.root(), leaves[3], proof));
}

TEST(BlockTree, ProofEncodingRoundTrip) {
  auto leaves = make_leaves(9);
  BlockMerkleTree tree(leaves);
  BlockProof proof = tree.prove(5);
  auto decoded = BlockProof::decode(as_span(proof.encode()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->index, proof.index);
  EXPECT_EQ(decoded->leaf_count, proof.leaf_count);
  EXPECT_EQ(decoded->path, proof.path);
  EXPECT_TRUE(BlockMerkleTree::verify(tree.root(), leaves[5], *decoded));
}

TEST(BlockTree, OutOfRangeProofRejected) {
  auto leaves = make_leaves(4);
  BlockMerkleTree tree(leaves);
  BlockProof proof = tree.prove(0);
  proof.index = 9;
  EXPECT_FALSE(BlockMerkleTree::verify(tree.root(), leaves[0], proof));
  proof.index = 0;
  proof.leaf_count = 0;
  EXPECT_FALSE(BlockMerkleTree::verify(tree.root(), leaves[0], proof));
}

// ---------------------------------------------------------------------------
// Sparse Merkle tree

TEST(Smt, EmptyTreeHasDefaultRoot) {
  SparseMerkleTree a, b;
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.size(), 0u);
}

TEST(Smt, InsertChangesRoot) {
  SparseMerkleTree t;
  Digest before = t.root();
  t.update(as_span("key"), leaf_hash(as_span("value")));
  EXPECT_NE(t.root(), before);
  EXPECT_EQ(t.size(), 1u);
}

TEST(Smt, DeleteRestoresDefaultRoot) {
  SparseMerkleTree t;
  Digest empty_root = t.root();
  t.update(as_span("key"), leaf_hash(as_span("value")));
  t.update(as_span("key"), Digest{});
  EXPECT_EQ(t.root(), empty_root);
  EXPECT_EQ(t.size(), 0u);
}

TEST(Smt, OrderIndependentRoot) {
  SparseMerkleTree a, b;
  a.update(as_span("k1"), leaf_hash(as_span("v1")));
  a.update(as_span("k2"), leaf_hash(as_span("v2")));
  b.update(as_span("k2"), leaf_hash(as_span("v2")));
  b.update(as_span("k1"), leaf_hash(as_span("v1")));
  EXPECT_EQ(a.root(), b.root());
}

TEST(Smt, MembershipProofs) {
  SparseMerkleTree t;
  Digest leaf = leaf_hash(as_span("value"));
  t.update(as_span("key"), leaf);
  t.update(as_span("other"), leaf_hash(as_span("other-value")));
  SmtProof proof = t.prove(as_span("key"));
  EXPECT_TRUE(SparseMerkleTree::verify(t.root(), as_span("key"), leaf, proof));
  // Wrong value fails.
  EXPECT_FALSE(SparseMerkleTree::verify(t.root(), as_span("key"),
                                        leaf_hash(as_span("forged")), proof));
}

TEST(Smt, NonMembershipProof) {
  SparseMerkleTree t;
  t.update(as_span("exists"), leaf_hash(as_span("v")));
  SmtProof proof = t.prove(as_span("missing"));
  EXPECT_TRUE(
      SparseMerkleTree::verify(t.root(), as_span("missing"), std::nullopt, proof));
  // Claiming absence of a present key fails.
  SmtProof present = t.prove(as_span("exists"));
  EXPECT_FALSE(
      SparseMerkleTree::verify(t.root(), as_span("exists"), std::nullopt, present));
}

TEST(Smt, ProofForWrongKeyRejected) {
  SparseMerkleTree t;
  Digest leaf = leaf_hash(as_span("v"));
  t.update(as_span("a"), leaf);
  SmtProof proof = t.prove(as_span("a"));
  EXPECT_FALSE(SparseMerkleTree::verify(t.root(), as_span("b"), leaf, proof));
}

TEST(Smt, ProofEncodingRoundTrip) {
  SparseMerkleTree t;
  for (int i = 0; i < 20; ++i) {
    t.update(as_span(to_bytes("key-" + std::to_string(i))),
             leaf_hash(as_span(to_bytes("val-" + std::to_string(i)))));
  }
  SmtProof proof = t.prove(as_span("key-7"));
  auto decoded = SmtProof::decode(as_span(proof.encode()));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(SparseMerkleTree::verify(t.root(), as_span("key-7"),
                                       leaf_hash(as_span("val-7")), *decoded));
}

TEST(Smt, PermutedUpdateOrderByteIdenticalProofs) {
  // Regression for the lint:determinism conversion of the tree's node and
  // leaf containers to std::map (merkle_tree.h): the root is the replicas'
  // state digest, so neither it nor any encoded proof may depend on the
  // order state arrived in — or on a hash seed the old unordered containers
  // would have smuggled in.
  std::vector<std::pair<std::string, Digest>> updates;
  for (int i = 0; i < 64; ++i) {
    updates.emplace_back("key-" + std::to_string(i),
                         leaf_hash(as_span(to_bytes("val-" + std::to_string(i)))));
  }
  auto build = [&](uint64_t shuffle_seed) {
    auto shuffled = updates;
    Rng rng(shuffle_seed);
    for (size_t i = shuffled.size(); i > 1; --i) {
      std::swap(shuffled[i - 1], shuffled[rng.below(i)]);
    }
    SparseMerkleTree t;
    for (const auto& [k, leaf] : shuffled) t.update(as_span(k), leaf);
    return t;
  };
  SparseMerkleTree a = build(1);
  SparseMerkleTree b = build(2);
  SparseMerkleTree c = build(3);
  EXPECT_EQ(a.root(), b.root());
  EXPECT_EQ(a.root(), c.root());
  for (const auto& [k, leaf] : updates) {
    Bytes proof_a = a.prove(as_span(k)).encode();
    EXPECT_EQ(proof_a, b.prove(as_span(k)).encode()) << k;
    EXPECT_EQ(proof_a, c.prove(as_span(k)).encode()) << k;
  }
}

TEST(Smt, RandomizedAgainstReference) {
  SparseMerkleTree t;
  std::map<std::string, Digest> reference;
  Rng rng(55);
  for (int step = 0; step < 500; ++step) {
    std::string key = "k" + std::to_string(rng.below(50));
    if (rng.chance(0.25) && !reference.empty()) {
      t.update(as_span(key), Digest{});
      reference.erase(key);
    } else {
      Digest leaf = leaf_hash(as_span(rng.bytes(8)));
      t.update(as_span(key), leaf);
      reference[key] = leaf;
    }
  }
  EXPECT_EQ(t.size(), reference.size());
  for (const auto& [key, leaf] : reference) {
    auto got = t.leaf(as_span(key));
    ASSERT_TRUE(got.has_value()) << key;
    EXPECT_EQ(*got, leaf);
    EXPECT_TRUE(SparseMerkleTree::verify(t.root(), as_span(key), leaf,
                                         t.prove(as_span(key))));
  }
  // Rebuild from scratch in sorted order: same root.
  SparseMerkleTree rebuilt;
  for (const auto& [key, leaf] : reference) rebuilt.update(as_span(key), leaf);
  EXPECT_EQ(rebuilt.root(), t.root());
}

}  // namespace
}  // namespace sbft::merkle
