// Schedule-fuzzer self-tests and fixed-seed smoke campaign (ctest -L fuzz;
// docs/fuzzing.md).
//
// Four families:
//   * Generator determinism and serialization: the same seed yields a
//     byte-identical schedule text, the text format round-trips canonically,
//     and malformed repro files are rejected rather than half-parsed.
//   * Randomness discipline: every stochastic choice flows from the single
//     fuzzer seed (no global RNG), so generation is a pure function.
//   * Minimizer convergence: ddmin with synthetic failure predicates shrinks
//     to the exact culprit subset and respects its run budget.
//   * Invariant-oracle unit cases: true-positive and true-negative inputs for
//     the cluster-level audits (harness/audit.h) the runner applies after
//     every fuzz run.
// The smoke campaign at the end runs a handful of fixed seeds through the
// full generate -> run -> audit pipeline and must come back clean — the
// per-push CI gate. Long randomized campaigns live in bench_fuzz_campaign.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "fuzz/campaign.h"
#include "fuzz/minimize.h"
#include "fuzz/runner.h"
#include "fuzz/schedule.h"
#include "harness/audit.h"
#include "runtime/reply_cache.h"

namespace sbft {
namespace {

using fuzz::FaultEvent;
using fuzz::FaultKind;
using fuzz::Schedule;
using fuzz::ScheduleFuzzer;

// ---------------------------------------------------------------------------
// Generator determinism and serialization

TEST(ScheduleFuzzer, SameSeedIsByteIdentical) {
  ScheduleFuzzer fuzzer;
  for (uint64_t seed : {1ull, 7ull, 42ull, 0xdeadbeefull, ~0ull}) {
    Schedule a = fuzzer.generate(seed);
    Schedule b = fuzzer.generate(seed);
    EXPECT_EQ(a.to_text(), b.to_text()) << "seed " << seed;
    EXPECT_EQ(a.topology, b.topology);
    EXPECT_EQ(a.events, b.events);
  }
}

TEST(ScheduleFuzzer, DistinctSeedsDiversify) {
  // Not a per-pair guarantee (two seeds may collide), but across a window of
  // seeds the generator must exercise the topology and fault space.
  ScheduleFuzzer fuzzer;
  std::set<std::string> texts;
  std::set<harness::ProtocolKind> protocols;
  std::set<FaultKind> kinds;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    Schedule s = fuzzer.generate(seed);
    texts.insert(s.to_text());
    protocols.insert(s.topology.kind);
    for (const FaultEvent& e : s.events) kinds.insert(e.kind);
  }
  EXPECT_GE(texts.size(), 39u) << "generator barely depends on the seed";
  EXPECT_GE(protocols.size(), 3u);
  EXPECT_GE(kinds.size(), 5u) << "fault vocabulary under-exercised";
}

TEST(ScheduleFuzzer, EventsSortedAndWithinBounds) {
  fuzz::FuzzLimits limits;
  ScheduleFuzzer fuzzer(limits);
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    Schedule s = fuzzer.generate(seed);
    EXPECT_TRUE(std::is_sorted(
        s.events.begin(), s.events.end(),
        [](const FaultEvent& x, const FaultEvent& y) {
          return x.at_us < y.at_us;
        }))
        << "seed " << seed;
    EXPECT_GE(s.events.size(), limits.min_events) << "seed " << seed;
    EXPECT_LE(s.events.size(), limits.max_events) << "seed " << seed;
    EXPECT_GE(s.topology.requests_per_client, limits.min_requests);
    EXPECT_LE(s.topology.requests_per_client, limits.max_requests);
    EXPECT_LE(s.topology.byzantine, s.topology.f);
    for (const FaultEvent& e : s.events) {
      EXPECT_GE(e.at_us, 0);
      EXPECT_LE(e.at_us, s.fault_horizon_us) << "seed " << seed;
    }
    EXPECT_GT(s.liveness_deadline_us, s.fault_horizon_us);
  }
}

TEST(ScheduleText, RoundTripIsCanonical) {
  ScheduleFuzzer fuzzer;
  for (uint64_t seed : {3ull, 5ull, 11ull, 29ull}) {
    Schedule s = fuzzer.generate(seed);
    std::string text = s.to_text();
    std::optional<Schedule> parsed = Schedule::from_text(text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(parsed->to_text(), text);
    EXPECT_EQ(parsed->topology, s.topology);
    EXPECT_EQ(parsed->events, s.events);
    EXPECT_EQ(parsed->seed, s.seed);
  }
}

TEST(ScheduleText, IgnoresCommentsAndSortsEvents) {
  std::string text =
      "# a hand-written repro\n"
      "seed 9\n"
      "protocol pbft\n"
      "f 1\n"
      "\n"
      "event 2000 crash 2 0 0\n"
      "event 1000 crash 3 0 0\n";
  std::optional<Schedule> s = Schedule::from_text(text);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->seed, 9u);
  EXPECT_EQ(s->topology.kind, harness::ProtocolKind::kPbft);
  ASSERT_EQ(s->events.size(), 2u);
  EXPECT_EQ(s->events[0].at_us, 1000);
  EXPECT_EQ(s->events[1].at_us, 2000);
}

TEST(ScheduleText, RejectsMalformedInput) {
  EXPECT_FALSE(Schedule::from_text("").has_value()) << "missing seed";
  EXPECT_FALSE(Schedule::from_text("protocol sbft\n").has_value());
  EXPECT_FALSE(Schedule::from_text("seed 1\nbogus_key 3\n").has_value());
  EXPECT_FALSE(Schedule::from_text("seed 1\nprotocol carrier_pigeon\n")
                   .has_value());
  EXPECT_FALSE(Schedule::from_text("seed 1\nevent 10 meteor 1 0 0\n")
                   .has_value());
  EXPECT_FALSE(Schedule::from_text("seed 1\nevent 10 crash\n").has_value())
      << "event with missing operands";
}

TEST(ScheduleText, FaultKindNamesRoundTrip) {
  for (uint8_t k = 0; k <= static_cast<uint8_t>(FaultKind::kReconfig); ++k) {
    FaultKind kind = static_cast<FaultKind>(k);
    std::optional<FaultKind> back =
        fuzz::fault_kind_from_name(fuzz::fault_kind_name(kind));
    ASSERT_TRUE(back.has_value()) << fuzz::fault_kind_name(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fuzz::fault_kind_from_name("gamma_ray").has_value());
}

// ---------------------------------------------------------------------------
// Minimizer convergence (synthetic predicates — no cluster runs)

Schedule synthetic_schedule(size_t num_events) {
  Schedule s;
  s.seed = 0;
  for (size_t i = 0; i < num_events; ++i) {
    FaultEvent e;
    e.at_us = static_cast<int64_t>(1000 * (i + 1));
    e.kind = FaultKind::kCrash;
    e.a = i + 1;
    s.events.push_back(e);
  }
  return s;
}

TEST(Minimizer, ConvergesToSingleCulprit) {
  Schedule failing = synthetic_schedule(10);
  // Fails iff the event with a == 7 survives.
  auto fails = [](const Schedule& s) {
    return std::any_of(s.events.begin(), s.events.end(),
                       [](const FaultEvent& e) { return e.a == 7; });
  };
  fuzz::MinimizeStats stats;
  Schedule min = fuzz::minimize_schedule(failing, fails, /*max_runs=*/64,
                                         &stats);
  ASSERT_EQ(min.events.size(), 1u);
  EXPECT_EQ(min.events[0].a, 7u);
  EXPECT_TRUE(stats.reached_fixpoint);
  EXPECT_GT(stats.runs, 0u);
}

TEST(Minimizer, ConvergesToInteractingPair) {
  Schedule failing = synthetic_schedule(12);
  // Fails only when events 3 and 9 are both present — the classic case where
  // naive one-at-a-time deletion would get stuck but ddmin's complement
  // passes succeed.
  auto fails = [](const Schedule& s) {
    bool three = false, nine = false;
    for (const FaultEvent& e : s.events) {
      three |= e.a == 3;
      nine |= e.a == 9;
    }
    return three && nine;
  };
  Schedule min = fuzz::minimize_schedule(failing, fails, /*max_runs=*/128);
  ASSERT_EQ(min.events.size(), 2u);
  EXPECT_EQ(min.events[0].a, 3u);
  EXPECT_EQ(min.events[1].a, 9u);
}

TEST(Minimizer, RespectsRunBudget) {
  Schedule failing = synthetic_schedule(64);
  uint32_t calls = 0;
  auto fails = [&calls](const Schedule& s) {
    ++calls;
    // Everything fails, so ddmin keeps shrinking until 1-minimal.
    return !s.events.empty();
  };
  fuzz::MinimizeStats stats;
  fuzz::minimize_schedule(failing, fails, /*max_runs=*/5, &stats);
  EXPECT_LE(stats.runs, 5u);
  EXPECT_LE(calls, 5u);
  EXPECT_FALSE(stats.reached_fixpoint);
}

TEST(Minimizer, PreservesTopologyAndBounds) {
  ScheduleFuzzer fuzzer;
  Schedule failing = fuzzer.generate(17);
  auto fails = [](const Schedule&) { return true; };
  Schedule min = fuzz::minimize_schedule(failing, fails);
  EXPECT_EQ(min.topology, failing.topology);
  EXPECT_EQ(min.seed, failing.seed);
  EXPECT_EQ(min.fault_horizon_us, failing.fault_horizon_us);
  EXPECT_EQ(min.liveness_deadline_us, failing.liveness_deadline_us);
  // ddmin is 1-minimal over non-empty subsets: an always-fails predicate
  // shrinks to a single event, never to the empty schedule.
  EXPECT_EQ(min.events.size(), 1u);
}

// ---------------------------------------------------------------------------
// Invariant-oracle unit cases (the audits behind every fuzz run's verdict)

harness::ReplicaStateView view(ReplicaId id, SeqNum executed, SeqNum stable,
                               uint8_t root_byte, bool live = true,
                               bool member = true) {
  harness::ReplicaStateView v;
  v.id = id;
  v.live = live;
  v.member = member;
  v.executed = executed;
  v.stable = stable;
  v.state_root.fill(root_byte);
  return v;
}

TEST(ConvergenceAudit, CleanClusterPasses) {
  std::vector<harness::ReplicaStateView> views = {
      view(1, 100, 96, 0xaa), view(2, 100, 96, 0xaa), view(3, 100, 96, 0xaa),
      view(4, 100, 96, 0xaa)};
  EXPECT_TRUE(harness::audit_state_convergence(views).empty());
}

TEST(ConvergenceAudit, LaggingMemberBelowStableFrontierFlagged) {
  // Replica 4 never caught up to the cluster's stable checkpoint — exactly
  // the stranded-fetcher shape the fuzzer caught in PBFT (corpus seed 5).
  std::vector<harness::ReplicaStateView> views = {
      view(1, 100, 96, 0xaa), view(2, 100, 96, 0xaa), view(3, 100, 96, 0xaa),
      view(4, 0, 0, 0x00)};
  std::vector<std::string> violations =
      harness::audit_state_convergence(views);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("replica 4"), std::string::npos)
      << violations[0];
}

TEST(ConvergenceAudit, DivergentRootsAtSameCursorFlagged) {
  std::vector<harness::ReplicaStateView> views = {
      view(1, 100, 96, 0xaa), view(2, 100, 96, 0xbb), view(3, 100, 96, 0xaa),
      view(4, 100, 96, 0xaa)};
  EXPECT_FALSE(harness::audit_state_convergence(views).empty());
}

TEST(ConvergenceAudit, DeadAndRemovedReplicasExempt) {
  // A crashed node and a removed member may lag or diverge freely.
  std::vector<harness::ReplicaStateView> views = {
      view(1, 100, 96, 0xaa), view(2, 100, 96, 0xaa), view(3, 100, 96, 0xaa),
      view(4, 10, 8, 0x11, /*live=*/false),
      view(5, 60, 56, 0x22, /*live=*/true, /*member=*/false)};
  EXPECT_TRUE(harness::audit_state_convergence(views).empty());
}

TEST(ReplyCacheAudit, ConsistentCachesPass) {
  runtime::ReplyCache a;
  runtime::ReplyCache b;
  a.store(/*client=*/1, /*timestamp=*/5, /*seq=*/10, /*index=*/0, {1, 2, 3});
  b.store(1, 5, 10, 0, {1, 2, 3});
  // A lagging cache (older timestamp, older seq) is fine.
  a.store(2, 9, 14, 1, {4});
  EXPECT_TRUE(harness::audit_reply_caches({{1, &a}, {2, &b}}).empty());
}

TEST(ReplyCacheAudit, SameTimestampDifferentReplyFlagged) {
  runtime::ReplyCache a;
  runtime::ReplyCache b;
  a.store(1, 5, 10, 0, {1, 2, 3});
  b.store(1, 5, 10, 0, {9, 9, 9});  // same request, different reply value
  EXPECT_FALSE(harness::audit_reply_caches({{1, &a}, {2, &b}}).empty());
}

TEST(ReplyCacheAudit, NewerTimestampAtOlderSeqFlagged) {
  runtime::ReplyCache a;
  runtime::ReplyCache b;
  a.store(1, 5, 10, 0, {1});
  b.store(1, 7, 4, 0, {2});  // newer request supposedly ordered earlier
  EXPECT_FALSE(harness::audit_reply_caches({{1, &a}, {2, &b}}).empty());
}

// ---------------------------------------------------------------------------
// Fixed-seed smoke campaign (the per-push CI gate)

TEST(FuzzSmoke, FixedSeedCampaignIsClean) {
  fuzz::CampaignOptions opts;
  opts.seed_base = 1;
  opts.num_seeds = 4;
  opts.minimize = false;  // a failure here is reported, not triaged
  fuzz::CampaignReport report = fuzz::run_campaign(opts);
  EXPECT_EQ(report.runs, 4u);
  EXPECT_TRUE(report.ok()) << report.failures << " seed(s) failed; re-run "
                              "bench_fuzz_campaign --seeds 4 to triage";
}

TEST(FuzzSmoke, RunnerReportsInjectedLivenessFailure) {
  // True-positive check for the end-to-end oracle: a schedule that crashes
  // f+1 replicas and never restarts them (the horizon restart is the only
  // rescue, so move the deadline before it) must be reported as a liveness
  // violation, not silently passed.
  Schedule s;
  s.seed = 0;
  s.topology.kind = harness::ProtocolKind::kSbft;
  s.topology.f = 1;
  s.topology.clients = 2;
  s.topology.requests_per_client = 30;
  s.topology.cluster_seed = 77;
  FaultEvent crash1{/*at_us=*/200'000, FaultKind::kCrash, /*a=*/1, 0, 0};
  FaultEvent crash2{/*at_us=*/250'000, FaultKind::kCrash, /*a=*/2, 0, 0};
  s.events = {crash1, crash2};
  s.fault_horizon_us = 60'000'000;
  s.liveness_deadline_us = 20'000'000;  // well before the horizon heal
  s.settle_us = 1'000'000;
  fuzz::FuzzResult result = fuzz::run_schedule(s);
  EXPECT_FALSE(result.ok());
  ASSERT_FALSE(result.violations.empty());
  EXPECT_EQ(result.violations[0].rfind("liveness:", 0), 0u)
      << result.violations[0];
}

}  // namespace
}  // namespace sbft
