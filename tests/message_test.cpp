#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/message.h"

namespace sbft {
namespace {

Rng& rng() {
  static Rng r(0xfeed);
  return r;
}

Digest random_digest() {
  Digest d;
  Bytes b = rng().bytes(32);
  std::copy(b.begin(), b.end(), d.begin());
  return d;
}

Request random_request() {
  Request req;
  req.client = static_cast<ClientId>(rng().below(1000));
  req.timestamp = rng().next();
  req.op = rng().bytes(1 + rng().below(64));
  req.client_sig = rng().bytes(33);
  return req;
}

Block random_block(size_t requests) {
  Block b;
  for (size_t i = 0; i < requests; ++i) b.requests.push_back(random_request());
  return b;
}

ExecCertificate random_cert() {
  ExecCertificate c;
  c.seq = rng().next();
  c.state_root = random_digest();
  c.ops_root = random_digest();
  c.prev_exec_digest = random_digest();
  c.pi_sig = rng().bytes(33);
  return c;
}

void expect_roundtrip(const Message& msg) {
  Bytes encoded = encode_message(msg);
  EXPECT_EQ(encoded.size(), message_wire_size(msg));
  auto decoded = decode_message(as_span(encoded));
  ASSERT_TRUE(decoded.has_value()) << message_type_name(msg);
  EXPECT_EQ(decoded->index(), msg.index());
  EXPECT_EQ(encode_message(*decoded), encoded) << message_type_name(msg);
}

TEST(Messages, ClientRequestRoundTrip) {
  expect_roundtrip(Message(ClientRequestMsg{random_request()}));
}

TEST(Messages, PrePrepareRoundTrip) {
  expect_roundtrip(Message(PrePrepareMsg{7, 3, random_block(5)}));
}

TEST(Messages, SignShareRoundTrip) {
  SignShareMsg m;
  m.seq = 9;
  m.view = 2;
  m.block_digest = random_digest();
  m.h = random_digest();
  m.replica = 4;
  m.sigma_share = rng().bytes(33);
  m.tau_share = rng().bytes(33);
  expect_roundtrip(Message(m));
}

TEST(Messages, CommitPathRoundTrips) {
  FullCommitProofMsg fast{1, 2, random_digest(), rng().bytes(33)};
  expect_roundtrip(Message(fast));
  PrepareMsg prep{3, 4, random_digest(), rng().bytes(33)};
  expect_roundtrip(Message(prep));
  CommitShareMsg cs{5, 6, random_digest(), 7, rng().bytes(33)};
  expect_roundtrip(Message(cs));
  FullCommitProofSlowMsg slow{8, 9, random_digest(), rng().bytes(33),
                              rng().bytes(33)};
  expect_roundtrip(Message(slow));
}

TEST(Messages, ExecutionPathRoundTrips) {
  SignStateMsg ss{10, 3, random_digest(), rng().bytes(33)};
  expect_roundtrip(Message(ss));
  FullExecuteProofMsg fep{11, random_digest(), rng().bytes(33)};
  expect_roundtrip(Message(fep));

  ExecuteAckMsg ack;
  ack.client = 12;
  ack.timestamp = 34;
  ack.index = 2;
  ack.value = rng().bytes(16);
  ack.cert = random_cert();
  ack.proof.index = 2;
  ack.proof.leaf_count = 8;
  ack.proof.path = {random_digest(), random_digest(), random_digest()};
  expect_roundtrip(Message(ack));

  ClientReplyMsg reply{3, 12, 34, 11, rng().bytes(16)};
  expect_roundtrip(Message(reply));
}

TEST(Messages, ViewChangeRoundTrip) {
  ViewChangeMsg vc;
  vc.sender = 2;
  vc.next_view = 5;
  vc.ls = 128;
  vc.checkpoint = random_cert();
  SlotEvidence e;
  e.seq = 129;
  e.lm_kind = SlowEvidence::kPrepareCert;
  e.lm_view = 4;
  e.lm_block_digest = random_digest();
  e.lm_sig = rng().bytes(33);
  e.fm_kind = FastEvidence::kVote;
  e.fm_view = 4;
  e.fm_block_digest = random_digest();
  e.fm_sig = rng().bytes(33);
  e.block = random_block(2);
  vc.slots.push_back(e);
  SlotEvidence full;
  full.seq = 130;
  full.lm_kind = SlowEvidence::kFullProof;
  full.lm_view = 3;
  full.lm_block_digest = random_digest();
  full.lm_sig = rng().bytes(33);
  full.lm_inner_sig = rng().bytes(33);
  vc.slots.push_back(full);
  expect_roundtrip(Message(vc));

  NewViewMsg nv;
  nv.view = 5;
  nv.proofs = {vc, vc, vc};
  expect_roundtrip(Message(nv));
}

TEST(Messages, StateTransferRoundTrips) {
  expect_roundtrip(Message(GetBlockRequestMsg{1, 2, random_digest()}));
  expect_roundtrip(Message(GetBlockReplyMsg{2, random_block(3)}));
  expect_roundtrip(Message(StateTransferRequestMsg{3, 44}));
  // Probe advertising a delta base (docs/state_transfer.md).
  StateTransferRequestMsg probe;
  probe.requester = 4;
  probe.have_seq = 48;
  probe.base_seq = 32;
  probe.base_root = random_digest();
  expect_roundtrip(Message(probe));
  StateTransferReplyMsg reply;
  reply.seq = 128;
  reply.cert = random_cert();
  reply.service_snapshot = rng().bytes(500);
  expect_roundtrip(Message(reply));
  // With a PBFT quorum checkpoint certificate attached.
  reply.checkpoint_proof = {{1, rng().bytes(32)}, {2, rng().bytes(32)},
                            {4, rng().bytes(32)}};
  expect_roundtrip(Message(reply));
}

TEST(Messages, ChunkedStateTransferRoundTrips) {
  StateManifestMsg manifest;
  manifest.donor = 3;
  manifest.seq = 128;
  manifest.cert = random_cert();
  manifest.chunk_root = random_digest();
  manifest.chunk_count = 17;
  manifest.chunk_size = 4096;
  manifest.total_bytes = 16 * 4096 + 123;
  expect_roundtrip(Message(manifest));

  // Delta manifest: differing-chunk bitmap + base-index map for the rest.
  StateManifestMsg delta = manifest;
  delta.base_seq = 112;
  delta.delta_bitmap = {0x03, 0x80, 0x01};
  delta.base_map = {2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14};
  expect_roundtrip(Message(delta));

  // PBFT manifest with its quorum checkpoint certificate.
  StateManifestMsg certified = manifest;
  certified.checkpoint_proof = {{1, rng().bytes(32)}, {3, rng().bytes(32)},
                                {4, rng().bytes(32)}};
  expect_roundtrip(Message(certified));

  StateChunkRequestMsg req;
  req.requester = 2;
  req.seq = 128;
  req.chunk_root = manifest.chunk_root;
  req.indices = {0, 5, 16};
  expect_roundtrip(Message(req));

  StateChunkMsg chunk;
  chunk.donor = 3;
  chunk.seq = 128;
  chunk.chunk_root = manifest.chunk_root;
  chunk.index = 5;
  chunk.chunk_count = 17;
  chunk.data = rng().bytes(4096);
  chunk.proof.index = 5;
  chunk.proof.leaf_count = 17;
  chunk.proof.path = {random_digest(), random_digest(), random_digest(),
                      random_digest(), random_digest()};
  expect_roundtrip(Message(chunk));
}

TEST(Messages, PbftRoundTrips) {
  expect_roundtrip(Message(PbftPrepareMsg{1, 2, random_digest(), 3}));
  expect_roundtrip(Message(PbftCommitMsg{4, 5, random_digest(), 6}));
  expect_roundtrip(Message(PbftCheckpointMsg{128, random_digest(), 7}));
  expect_roundtrip(
      Message(PbftCheckpointMsg{128, random_digest(), 7, rng().bytes(32)}));
  PbftViewChangeMsg vc;
  vc.sender = 1;
  vc.next_view = 2;
  vc.ls = 0;
  PbftPreparedCert cert;
  cert.seq = 3;
  cert.view = 1;
  cert.h = random_digest();
  cert.block = random_block(2);
  vc.prepared.push_back(cert);
  expect_roundtrip(Message(vc));
  PbftNewViewMsg nv;
  nv.view = 2;
  nv.proofs = {vc};
  expect_roundtrip(Message(nv));
}

TEST(Messages, DecodeRejectsGarbage) {
  Bytes garbage = {0xff, 0x00, 0x12};
  EXPECT_FALSE(decode_message(as_span(garbage)).has_value());
  EXPECT_FALSE(decode_message(ByteSpan{}).has_value());
}

TEST(Messages, DecodeRejectsTrailingBytes) {
  Bytes encoded = encode_message(Message(StateTransferRequestMsg{1, 2}));
  encoded.push_back(0x00);
  EXPECT_FALSE(decode_message(as_span(encoded)).has_value());
}

TEST(Messages, BlockDigestDependsOnContent) {
  Block a = random_block(3);
  Block b = a;
  EXPECT_EQ(a.digest(), b.digest());
  b.requests[0].timestamp ^= 1;
  EXPECT_NE(a.digest(), b.digest());
  // Order matters.
  Block c = a;
  std::swap(c.requests[0], c.requests[1]);
  EXPECT_NE(a.digest(), c.digest());
}

TEST(Messages, SlotHashBindsAllInputs) {
  Digest d = random_digest();
  EXPECT_NE(slot_hash(1, 0, d), slot_hash(2, 0, d));
  EXPECT_NE(slot_hash(1, 0, d), slot_hash(1, 1, d));
  EXPECT_NE(slot_hash(1, 0, d), slot_hash(1, 0, random_digest()));
}

TEST(Messages, ExecCertificateDigestChains) {
  ExecCertificate a = random_cert();
  ExecCertificate b = a;
  EXPECT_EQ(a.exec_digest(), b.exec_digest());
  b.prev_exec_digest = random_digest();
  EXPECT_NE(a.exec_digest(), b.exec_digest());
  b = a;
  b.seq += 1;
  EXPECT_NE(a.exec_digest(), b.exec_digest());
}

TEST(Messages, ReconfigBlockRoundTrip) {
  ReconfigBlockMsg m;
  m.delta.adds = {{5, 6}, {6, 7}, {7, 8}};
  m.delta.removes = {4};
  m.delta.new_f = 2;
  m.delta.new_c = 0;
  m.nonce = 3;
  expect_roundtrip(Message(m));

  auto decoded = decode_message(as_span(encode_message(Message(m))));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<ReconfigBlockMsg>(*decoded);
  ASSERT_EQ(back.delta.adds.size(), 3u);
  EXPECT_EQ(back.delta.adds[0].id, 5u);
  EXPECT_EQ(back.delta.adds[0].node, 6u);
  EXPECT_EQ(back.delta.removes, std::vector<ReplicaId>{4});
  EXPECT_EQ(back.delta.new_f, 2u);
  EXPECT_EQ(back.nonce, 3u);
}

TEST(Messages, ReconfigMarkerRequestRoundTrip) {
  ReconfigDelta delta;
  delta.adds = {{9, 12}};
  delta.new_f = 1;
  Request req = make_reconfig_request(delta, 7);
  EXPECT_EQ(req.client, kReconfigClient);
  EXPECT_EQ(req.timestamp, 7u);
  auto back = decode_reconfig_request(req);
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->adds.size(), 1u);
  EXPECT_EQ(back->adds[0].id, 9u);
  EXPECT_EQ(back->adds[0].node, 12u);
  // A normal client request never decodes as a marker.
  EXPECT_FALSE(decode_reconfig_request(random_request()).has_value());
  // A client-0 request without the marker magic is not a reconfiguration.
  Request forged;
  forged.client = kReconfigClient;
  forged.op = to_bytes("not-a-marker");
  EXPECT_FALSE(decode_reconfig_request(forged).has_value());
}

ShardTx random_shard_tx() {
  ShardTx tx;
  tx.txid = rng().next();
  tx.coordinator = 1;
  for (uint32_t g : {1u, 3u, 4u}) {
    TxShardOps slice;
    slice.group = g;
    for (uint32_t i = 0; i < 1 + rng().below(3); ++i)
      slice.ops.push_back(rng().bytes(1 + rng().below(48)));
    tx.shards.push_back(std::move(slice));
  }
  return tx;
}

TxGroupCert random_group_cert(uint32_t group, bool commit) {
  TxGroupCert cert;
  cert.group = group;
  cert.commit = commit;
  for (ReplicaId r : {0u, 2u}) cert.votes.push_back({r, commit, rng().bytes(32)});
  return cert;
}

TEST(Messages, ShardTxRoundTrip) {
  ShardTx tx = random_shard_tx();
  auto back = decode_shard_tx(as_span(encode_shard_tx(tx)));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->txid, tx.txid);
  EXPECT_EQ(back->coordinator, tx.coordinator);
  ASSERT_EQ(back->shards.size(), tx.shards.size());
  for (size_t i = 0; i < tx.shards.size(); ++i) {
    EXPECT_EQ(back->shards[i].group, tx.shards[i].group);
    EXPECT_EQ(back->shards[i].ops, tx.shards[i].ops);
  }
  EXPECT_FALSE(decode_shard_tx(as_span(rng().bytes(17))).has_value());
}

TEST(Messages, TxEnvelopeRoundTrips) {
  expect_roundtrip(Message(TxVoteMsg{rng().next(), 3, 2, true, rng().bytes(32)}));
  expect_roundtrip(Message(TxResultMsg{rng().next(), 2, 1, false}));

  TxDecisionMsg dm;
  dm.txid = rng().next();
  dm.commit = true;
  dm.certs.push_back(random_group_cert(1, true));
  dm.certs.push_back(random_group_cert(3, true));
  expect_roundtrip(Message(dm));
  auto decoded = decode_message(as_span(encode_message(Message(dm))));
  ASSERT_TRUE(decoded.has_value());
  const auto& back = std::get<TxDecisionMsg>(*decoded);
  EXPECT_EQ(back.txid, dm.txid);
  EXPECT_TRUE(back.commit);
  ASSERT_EQ(back.certs.size(), 2u);
  EXPECT_EQ(back.certs[1].group, 3u);
  ASSERT_EQ(back.certs[1].votes.size(), 2u);
  EXPECT_EQ(back.certs[1].votes[1].replica, 2u);
  EXPECT_EQ(back.certs[1].votes[1].sig, dm.certs[1].votes[1].sig);
}

TEST(Messages, TxPrepareMarkerRequestRoundTrip) {
  ShardTx tx = random_shard_tx();
  Request req = make_tx_prepare_request(tx, /*client=*/42, /*timestamp=*/9);
  EXPECT_EQ(req.client, 42u);
  EXPECT_EQ(req.timestamp, 9u);
  auto back = decode_tx_prepare_request(req);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->txid, tx.txid);
  ASSERT_EQ(back->shards.size(), tx.shards.size());
  EXPECT_EQ(back->shards[2].ops, tx.shards[2].ops);
  // A normal client request never decodes as a Prepare marker.
  EXPECT_FALSE(decode_tx_prepare_request(random_request()).has_value());
}

TEST(Messages, TxDecisionMarkerRequestRoundTrip) {
  TxDecision decision;
  decision.txid = rng().next();
  decision.commit = false;
  decision.certs.push_back(random_group_cert(1, false));
  Request req = make_tx_decision_request(decision);
  EXPECT_EQ(req.client, kShardTxClient);
  auto back = decode_tx_decision_request(req);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->txid, decision.txid);
  EXPECT_FALSE(back->commit);
  ASSERT_EQ(back->certs.size(), 1u);
  EXPECT_EQ(back->certs[0].votes[0].sig, decision.certs[0].votes[0].sig);
  // The reserved-client markers carry distinct magics: a decision marker is
  // not a reconfiguration and vice versa.
  EXPECT_FALSE(decode_reconfig_request(req).has_value());
  ReconfigDelta delta;
  delta.adds = {{9, 12}};
  EXPECT_FALSE(
      decode_tx_decision_request(make_reconfig_request(delta, 7)).has_value());
  EXPECT_FALSE(decode_tx_decision_request(random_request()).has_value());
}

TEST(Messages, TypeNamesDistinct) {
  EXPECT_STREQ(message_type_name(Message(PrePrepareMsg{})), "pre-prepare");
  EXPECT_STREQ(message_type_name(Message(SignShareMsg{})), "sign-share");
  EXPECT_STREQ(message_type_name(Message(NewViewMsg{})), "new-view");
  EXPECT_STREQ(message_type_name(Message(ReconfigBlockMsg{})), "reconfig-block");
}

// ---------------------------------------------------------------------------
// Auto-derived exhaustiveness over the Message variant (lint:wire_format).
// The loop below is instantiated per alternative at compile time, so a new
// wire type added to the variant is covered the moment it exists — its tag
// must be unique across all message types and a default-constructed instance
// must survive encode -> decode -> re-encode byte-identically. Populated
// round-trips live in the named tests above; this one guarantees no type can
// ship with no serde coverage at all.

template <size_t I = 0>
void visit_all_wire_messages(std::map<uint8_t, std::string>* tags) {
  if constexpr (I < std::variant_size_v<Message>) {
    using Alt = std::variant_alternative_t<I, Message>;
    Message msg{Alt{}};
    const char* name = message_type_name(msg);
    Bytes encoded = encode_message(msg);
    EXPECT_FALSE(encoded.empty()) << name;
    if (!encoded.empty()) {
      auto [it, inserted] = tags->emplace(encoded[0], name);
      EXPECT_TRUE(inserted) << "duplicate wire tag " << int{encoded[0]}
                            << ": " << it->second << " vs " << name;
      EXPECT_EQ(encoded.size(), message_wire_size(msg)) << name;
      auto decoded = decode_message(as_span(encoded));
      if (!decoded.has_value()) {
        ADD_FAILURE() << name << ": default instance does not decode";
      } else {
        EXPECT_EQ(decoded->index(), I) << name;
        EXPECT_EQ(encode_message(*decoded), encoded) << name;
      }
    }
    visit_all_wire_messages<I + 1>(tags);
  }
}

TEST(Messages, AllWireMessagesHaveUniqueTagsAndRoundTrip) {
  std::map<uint8_t, std::string> tags;
  visit_all_wire_messages(&tags);
  EXPECT_EQ(tags.size(), std::variant_size_v<Message>);
}

TEST(Messages, FuzzDecodeDoesNotCrash) {
  Rng fuzz(123);
  for (int i = 0; i < 2000; ++i) {
    Bytes data = fuzz.bytes(fuzz.below(200));
    (void)decode_message(as_span(data));  // must not crash or hang
  }
}

TEST(Messages, FuzzTruncatedRealMessages) {
  Message msg(PrePrepareMsg{7, 3, random_block(4)});
  Bytes encoded = encode_message(msg);
  for (size_t len = 0; len < encoded.size(); ++len) {
    auto decoded = decode_message(ByteSpan{encoded.data(), len});
    // Truncation must never produce a successfully-decoded full message
    // (the reader latches failure on underflow).
    if (decoded.has_value()) {
      EXPECT_EQ(encode_message(*decoded).size(), len);
    }
  }
}

}  // namespace
}  // namespace sbft
