#include <gtest/gtest.h>

#include "common/rng.h"
#include "crypto/sha256.h"
#include "crypto/threshold.h"

namespace sbft::crypto {
namespace {

struct SchemeParam {
  const char* name;
  uint32_t n;
  uint32_t k;
  bool rsa;  // Shoup threshold RSA vs simulated BLS
};

class ThresholdTest : public ::testing::TestWithParam<SchemeParam> {
 protected:
  ThresholdScheme deal() {
    Rng rng(0xbead + GetParam().n * 131 + GetParam().k);
    if (GetParam().rsa) {
      return deal_shoup_rsa(rng, GetParam().n, GetParam().k, /*modulus_bits=*/384);
    }
    return deal_sim_bls(rng, GetParam().n, GetParam().k);
  }
};

TEST_P(ThresholdTest, SharesVerifyIndividually) {
  ThresholdScheme s = deal();
  Digest d = sha256("payload");
  for (const auto& signer : s.signers) {
    Bytes share = signer->sign_share(d);
    EXPECT_TRUE(s.verifier->verify_share(signer->signer_id(), d, as_span(share)));
  }
}

TEST_P(ThresholdTest, CombineFirstKShares) {
  ThresholdScheme s = deal();
  Digest d = sha256("combine-me");
  std::vector<SignatureShare> shares;
  for (uint32_t i = 0; i < GetParam().k; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  auto sig = s.verifier->combine(d, shares);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(s.verifier->verify(d, as_span(*sig)));
}

TEST_P(ThresholdTest, CombineRandomSubsets) {
  ThresholdScheme s = deal();
  Rng rng(77);
  Digest d = sha256("subset");
  for (int round = 0; round < 5; ++round) {
    // Random k-subset of signers.
    std::vector<uint32_t> ids(GetParam().n);
    for (uint32_t i = 0; i < GetParam().n; ++i) ids[i] = i + 1;
    for (size_t i = ids.size(); i > 1; --i) std::swap(ids[i - 1], ids[rng.below(i)]);
    std::vector<SignatureShare> shares;
    for (uint32_t i = 0; i < GetParam().k; ++i) {
      shares.push_back({ids[i], s.signers[ids[i] - 1]->sign_share(d)});
    }
    auto sig = s.verifier->combine(d, shares);
    ASSERT_TRUE(sig.has_value()) << "round " << round;
    EXPECT_TRUE(s.verifier->verify(d, as_span(*sig)));
  }
}

TEST_P(ThresholdTest, TooFewSharesFail) {
  ThresholdScheme s = deal();
  Digest d = sha256("short");
  std::vector<SignatureShare> shares;
  for (uint32_t i = 0; i + 1 < GetParam().k; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  EXPECT_FALSE(s.verifier->combine(d, shares).has_value());
}

TEST_P(ThresholdTest, DuplicateSignerDoesNotCount) {
  ThresholdScheme s = deal();
  Digest d = sha256("dups");
  std::vector<SignatureShare> shares;
  // k-1 distinct + 1 duplicate => must fail.
  for (uint32_t i = 0; i + 1 < GetParam().k; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  if (!shares.empty()) shares.push_back(shares.front());
  EXPECT_FALSE(s.verifier->combine(d, shares).has_value());
}

TEST_P(ThresholdTest, CorruptShareRejectedAndFiltered) {
  ThresholdScheme s = deal();
  Digest d = sha256("corrupt");
  Bytes bad = s.signers[0]->sign_share(d);
  bad[0] ^= 0xff;
  EXPECT_FALSE(s.verifier->verify_share(1, d, as_span(bad)));

  // A corrupt share followed by k good ones (including a good share from the
  // corrupting signer) still combines (robustness, §III).
  std::vector<SignatureShare> shares;
  shares.push_back({1, bad});
  for (uint32_t i = 0; i < GetParam().k; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  auto sig = s.verifier->combine(d, shares);
  ASSERT_TRUE(sig.has_value());
  EXPECT_TRUE(s.verifier->verify(d, as_span(*sig)));
}

TEST_P(ThresholdTest, MisattributedShareRejected) {
  ThresholdScheme s = deal();
  Digest d = sha256("misattributed");
  Bytes share_of_1 = s.signers[0]->sign_share(d);
  EXPECT_FALSE(s.verifier->verify_share(2, d, as_span(share_of_1)));
}

TEST_P(ThresholdTest, SignatureDoesNotVerifyOtherDigest) {
  ThresholdScheme s = deal();
  Digest d = sha256("one");
  std::vector<SignatureShare> shares;
  for (uint32_t i = 0; i < GetParam().k; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  auto sig = s.verifier->combine(d, shares);
  ASSERT_TRUE(sig.has_value());
  EXPECT_FALSE(s.verifier->verify(sha256("two"), as_span(*sig)));
}

TEST_P(ThresholdTest, TamperedCombinedSignatureRejected) {
  ThresholdScheme s = deal();
  Digest d = sha256("tamper");
  std::vector<SignatureShare> shares;
  for (uint32_t i = 0; i < GetParam().k; ++i) {
    shares.push_back({s.signers[i]->signer_id(), s.signers[i]->sign_share(d)});
  }
  auto sig = s.verifier->combine(d, shares);
  ASSERT_TRUE(sig.has_value());
  (*sig)[sig->size() / 2] ^= 0x40;
  EXPECT_FALSE(s.verifier->verify(d, as_span(*sig)));
}

INSTANTIATE_TEST_SUITE_P(
    SimBls, ThresholdTest,
    ::testing::Values(SchemeParam{"bls_4_3", 4, 3, false},
                      SchemeParam{"bls_4_4", 4, 4, false},
                      SchemeParam{"bls_7_5", 7, 5, false},
                      SchemeParam{"bls_13_9", 13, 9, false},
                      SchemeParam{"bls_31_21", 31, 21, false},
                      SchemeParam{"bls_209_197", 209, 197, false}),
    [](const auto& info) { return std::string(info.param.name); });

INSTANTIATE_TEST_SUITE_P(
    ShoupRsa, ThresholdTest,
    ::testing::Values(SchemeParam{"rsa_4_3", 4, 3, true},
                      SchemeParam{"rsa_5_4", 5, 4, true},
                      SchemeParam{"rsa_7_5", 7, 5, true},
                      SchemeParam{"rsa_10_7", 10, 7, true}),
    [](const auto& info) { return std::string(info.param.name); });

// SBFT's three schemes: sigma / tau / pi thresholds for f=1, c=0 (§V).
TEST(ThresholdSbftShapes, SigmaTauPiQuorums) {
  Rng rng(99);
  const uint32_t n = 4;
  for (uint32_t k : {4u, 3u, 2u}) {
    ThresholdScheme s = deal_sim_bls(rng, n, k);
    EXPECT_EQ(s.verifier->threshold(), k);
    EXPECT_EQ(s.verifier->num_signers(), n);
    EXPECT_EQ(s.signers.size(), n);
  }
}

TEST(ThresholdSizes, SimBlsMatchesBls) {
  Rng rng(101);
  ThresholdScheme s = deal_sim_bls(rng, 4, 3);
  // 33 bytes, the BLS BN-P254 compressed size the paper reports (§III).
  EXPECT_EQ(s.verifier->signature_size(), 33u);
  EXPECT_EQ(s.verifier->share_size(), 33u);
  Bytes share = s.signers[0]->sign_share(sha256("x"));
  EXPECT_EQ(share.size(), 33u);
}

TEST(ThresholdInstances, DistinctSchemesDoNotCrossVerify) {
  Rng rng(103);
  ThresholdScheme a = deal_sim_bls(rng, 4, 3);
  ThresholdScheme b = deal_sim_bls(rng, 4, 3);
  Digest d = sha256("cross");
  Bytes share = a.signers[0]->sign_share(d);
  EXPECT_TRUE(a.verifier->verify_share(1, d, as_span(share)));
  EXPECT_FALSE(b.verifier->verify_share(1, d, as_span(share)));
}

}  // namespace
}  // namespace sbft::crypto
