// Tests for the scale-optimized PBFT baseline (§IX).
#include <gtest/gtest.h>

#include "harness/cluster.h"

namespace sbft::harness {
namespace {

ClusterOptions pbft_cluster(uint32_t f = 1) {
  ClusterOptions opts;
  opts.kind = ProtocolKind::kPbft;
  opts.f = f;
  opts.num_clients = 3;
  opts.requests_per_client = 20;
  opts.topology = sim::lan_topology();
  opts.seed = 31;
  return opts;
}

TEST(Pbft, CommitsAndRepliesWithFPlusOne) {
  Cluster cluster(pbft_cluster());
  EXPECT_EQ(cluster.n(), 4u);  // 3f + 1
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 20u);
    for (const auto& rec : cluster.client(i).records()) {
      EXPECT_FALSE(rec.via_fast_ack);  // PBFT has no execute-ack path
    }
  }
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Pbft, AllReplicasConverge) {
  Cluster cluster(pbft_cluster());
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  cluster.run_for(5'000'000);
  SeqNum hi = cluster.max_executed();
  EXPECT_GT(hi, 0u);
  Digest expect = cluster.pbft_replica(1)->service().state_digest();
  for (ReplicaId r = 2; r <= cluster.n(); ++r) {
    EXPECT_EQ(cluster.pbft_replica(r)->service().state_digest(), expect);
  }
}

TEST(Pbft, ToleratesFCrashedBackups) {
  auto opts = pbft_cluster(2);  // n = 7
  opts.crash_replicas = 2;
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Pbft, PrimaryCrashTriggersViewChange) {
  auto opts = pbft_cluster();
  opts.requests_per_client = 100;
  Cluster cluster(std::move(opts));
  cluster.run_for(100'000);
  cluster.network().crash(0);  // primary of view 0
  ASSERT_TRUE(cluster.run_until_done(600'000'000));
  EXPECT_GT(cluster.total_view_changes(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Pbft, QuadraticMessageComplexity) {
  // PBFT's all-to-all rounds vs SBFT's collectors at the same sizing: PBFT
  // must send substantially more messages for the same committed work.
  auto run_messages = [](ProtocolKind kind) {
    ClusterOptions opts;
    opts.kind = kind;
    opts.f = 2;  // n = 7
    opts.num_clients = 2;
    opts.requests_per_client = 10;
    opts.topology = sim::lan_topology();
    opts.seed = 5;
    Cluster cluster(std::move(opts));
    EXPECT_TRUE(cluster.run_until_done(240'000'000));
    EXPECT_TRUE(cluster.check_agreement());
    return cluster.network().total_stats().count;
  };
  uint64_t pbft_msgs = run_messages(ProtocolKind::kPbft);
  uint64_t sbft_msgs = run_messages(ProtocolKind::kSbft);
  EXPECT_GT(pbft_msgs, sbft_msgs);
}

TEST(Pbft, CheckpointsAdvanceStableState) {
  auto opts = pbft_cluster();
  opts.num_clients = 4;
  opts.requests_per_client = 150;
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.max_batch = 2;
  };
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000));
  cluster.run_for(5'000'000);
  EXPECT_GT(cluster.pbft_replica(1)->last_executed(), 16u);
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::harness
