// SBFT client behaviour (§V-A), including adversarial acknowledgements: a
// Byzantine E-collector must not be able to convince a client with a forged
// value, a broken Merkle proof, or a bad pi signature.
#include <gtest/gtest.h>

#include "core/client.h"
#include "core/crypto_context.h"
#include "crypto/sha256.h"
#include "merkle/merkle_tree.h"

namespace sbft::core {
namespace {

// ---------------------------------------------------------------------------
// Pure acknowledgement verification under forgery attempts.

class AckVerification : public ::testing::Test {
 protected:
  AckVerification() {
    config_.f = 1;
    config_.c = 0;
    Rng rng(7);
    keys_ = ClusterKeys::generate(rng, config_);
    crypto_ = ReplicaCrypto::verifier_only(keys_);
  }

  /// A fully valid execute-ack for client 5's request at `timestamp`,
  /// positioned as operation `index` in a 3-operation block.
  ExecuteAckMsg valid_ack(uint64_t timestamp, const Bytes& value,
                          uint64_t index = 1) {
    ExecuteAckMsg ack;
    ack.client = 5;
    ack.timestamp = timestamp;
    ack.index = index;
    ack.value = value;
    std::vector<Digest> leaves = {
        exec_leaf(4, timestamp, crypto::sha256("other-1")),
        exec_leaf(5, timestamp, crypto::sha256(as_span(value))),
        exec_leaf(6, timestamp, crypto::sha256("other-2")),
    };
    merkle::BlockMerkleTree tree(leaves);
    ack.proof = tree.prove(index);
    ack.cert.seq = 1;
    ack.cert.state_root = crypto::sha256("state");
    ack.cert.ops_root = tree.root();
    ack.cert.prev_exec_digest = crypto::sha256("sbft.genesis");
    Digest d = ack.cert.exec_digest();
    std::vector<crypto::SignatureShare> shares;
    for (uint32_t i = 1; i <= config_.exec_quorum(); ++i) {
      shares.push_back({i, keys_.pi.signers[i - 1]->sign_share(d)});
    }
    ack.cert.pi_sig = *keys_.pi.verifier->combine(d, shares);
    return ack;
  }

  ProtocolConfig config_;
  ClusterKeys keys_;
  ReplicaCrypto crypto_;
};

TEST_F(AckVerification, ValidAckAccepted) {
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  EXPECT_TRUE(verify_execute_ack(crypto_, 5, ack));
}

TEST_F(AckVerification, ForgedValueRejected) {
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  ack.value = to_bytes("forged-result");  // proof no longer matches
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
}

TEST_F(AckVerification, WrongClientRejected) {
  // An ack addressed to client 5 does not verify for client 6 (leaf binds
  // the client identity).
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  EXPECT_FALSE(verify_execute_ack(crypto_, 6, ack));
}

TEST_F(AckVerification, WrongTimestampRejected) {
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  ack.timestamp = 2;  // replay against a different request
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
}

TEST_F(AckVerification, TamperedProofRejected) {
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  ASSERT_FALSE(ack.proof.path.empty());
  ack.proof.path[0][0] ^= 1;
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
}

TEST_F(AckVerification, TamperedCertificateRejected) {
  // Changing any certificate field breaks the chained digest under pi(d).
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  ack.cert.state_root[0] ^= 1;
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
  ack = valid_ack(1, to_bytes("result"));
  ack.cert.seq += 1;
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
  ack = valid_ack(1, to_bytes("result"));
  ack.cert.prev_exec_digest[0] ^= 1;
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
}

TEST_F(AckVerification, ForgedSignatureRejected) {
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  ack.cert.pi_sig[0] ^= 0x80;
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
  ack.cert.pi_sig.clear();
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
}

TEST_F(AckVerification, ProofForDifferentPositionRejected) {
  // Valid leaf, valid tree, but the proof claims the wrong index.
  ExecuteAckMsg ack = valid_ack(1, to_bytes("result"));
  ack.proof.index = 0;
  EXPECT_FALSE(verify_execute_ack(crypto_, 5, ack));
}

// ---------------------------------------------------------------------------
// Client actor behaviour on a live (fake) network.

struct FakeReplica : sim::IActor {
  std::vector<Request> requests;
  void on_message(NodeId /*from*/, const Message& msg, sim::ActorContext&) override {
    if (const auto* req = std::get_if<ClientRequestMsg>(&msg)) {
      requests.push_back(req->request);
    }
  }
};

class ClientActorFixture : public ::testing::Test {
 protected:
  ClientActorFixture() : net_(sim_, sim::lan_topology(), sim::CostModel{}) {
    config_.f = 1;
    config_.c = 0;
    Rng rng(9);
    keys_ = ClusterKeys::generate(rng, config_);

    ClientOptions opts;
    opts.config = config_;
    opts.crypto = ReplicaCrypto::verifier_only(keys_);
    opts.num_requests = 3;
    opts.op_factory = [](uint64_t i, Rng&) {
      return to_bytes("op-" + std::to_string(i));
    };
    opts.retry_timeout_us = 300'000;
    opts.id = 4;  // node id n

    for (auto& replica : replicas_) net_.add_node(&replica);
    client_ = std::make_unique<SbftClient>(std::move(opts));
    SBFT_CHECK(net_.add_node(client_.get()) == 4);
    net_.start();
    sim_.run_until(10'000);
  }

  ProtocolConfig config_;
  ClusterKeys keys_;
  sim::Simulator sim_;
  sim::Network net_;
  FakeReplica replicas_[4];
  std::unique_ptr<SbftClient> client_;
};

TEST_F(ClientActorFixture, FirstRequestTargetsPrimaryWithMonotoneTimestamp) {
  ASSERT_FALSE(replicas_[0].requests.empty());
  const Request& req = replicas_[0].requests[0];
  EXPECT_EQ(req.client, 4u);
  EXPECT_EQ(req.timestamp, 1u);
  EXPECT_EQ(req.op, to_bytes("op-0"));
  EXPECT_FALSE(req.client_sig.empty());
  // Only the (believed) primary was contacted initially.
  EXPECT_TRUE(replicas_[1].requests.empty());
  EXPECT_TRUE(replicas_[2].requests.empty());
}

TEST_F(ClientActorFixture, RetryBroadcastsSameTimestampToAllReplicas) {
  sim_.run_until(400'000);  // past the retry timeout
  EXPECT_GE(client_->retries(), 1u);
  for (auto& replica : replicas_) {
    ASSERT_FALSE(replica.requests.empty());
    // Retries re-send the same request, not a new timestamp (§V-A).
    EXPECT_EQ(replica.requests.back().timestamp, 1u);
  }
  EXPECT_EQ(client_->completed(), 0u);
  EXPECT_FALSE(client_->done());
}

TEST_F(ClientActorFixture, RepeatedRetriesKeepRotatingAndRearming) {
  sim_.run_until(1'600'000);  // several retry periods
  EXPECT_GE(client_->retries(), 3u);
  // Still zero completions — no valid acknowledgements were ever sent.
  EXPECT_EQ(client_->completed(), 0u);
}

}  // namespace
}  // namespace sbft::core
