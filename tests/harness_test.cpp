// Harness-level tests: metrics aggregation, experiment runner, and the
// Ethereum-like smart-contract workload end to end on a replicated cluster.
#include <gtest/gtest.h>

#include "evm/evm_service.h"
#include "evm/u256.h"
#include "harness/eth_workload.h"
#include "harness/experiment.h"
#include "harness/metrics.h"

namespace sbft::harness {
namespace {

TEST(Metrics, LatencySummaryPercentiles) {
  std::vector<int64_t> latencies;
  for (int i = 1; i <= 100; ++i) latencies.push_back(i * 1000);  // 1..100 ms
  LatencySummary s = summarize_latencies(latencies);
  EXPECT_EQ(s.count, 100u);
  EXPECT_NEAR(s.mean_ms, 50.5, 0.01);
  EXPECT_NEAR(s.median_ms, 51.0, 1.0);
  EXPECT_NEAR(s.p95_ms, 96.0, 1.0);
  EXPECT_EQ(s.min_ms, 1.0);
  EXPECT_EQ(s.max_ms, 100.0);
}

TEST(Metrics, EmptySummaryIsZero) {
  LatencySummary s = summarize_latencies({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean_ms, 0.0);
}

TEST(Metrics, FormatRowPads) {
  std::string row = format_row({"a", "bb"}, {4, 4});
  EXPECT_EQ(row, "a    bb   ");
}

TEST(Experiment, RunPointProducesMetrics) {
  ExperimentPoint point;
  point.kind = ProtocolKind::kSbft;
  point.f = 1;
  point.c = 0;
  point.num_clients = 4;
  point.warmup_us = 500'000;
  point.measure_us = 2'000'000;
  point.topology = sim::lan_topology();
  ExperimentResult result = run_point(point);
  EXPECT_TRUE(result.agreement_ok);
  EXPECT_GT(result.metrics.requests_completed, 0u);
  EXPECT_GT(result.metrics.ops_per_second, 0.0);
  EXPECT_GT(result.sim_events, 0u);
}

TEST(Experiment, ProtocolNames) {
  EXPECT_STREQ(protocol_name(ProtocolKind::kPbft), "PBFT");
  EXPECT_STREQ(protocol_name(ProtocolKind::kSbft), "SBFT");
}

TEST(EthWorkload, AddressesAreDeterministic) {
  EXPECT_EQ(eth_account_of(5), eth_account_of(5));
  EXPECT_NE(eth_account_of(5), eth_account_of(6));
  EXPECT_EQ(eth_token_of(5), eth_token_of(5));
}

TEST(EthWorkload, BootstrapThenTransfersExecuteOnLedger) {
  evm::EvmLedgerService ledger;
  EthWorkloadOptions wopts;
  wopts.txs_per_request = 10;
  wopts.create_fraction = 0.0;
  auto factory = eth_op_factory(42, wopts);
  Rng rng(1);
  // Bootstrap request deploys + mints.
  ledger.execute(as_span(factory(0, rng)));
  EXPECT_EQ(ledger.contracts_created(), 1u);
  ASSERT_TRUE(ledger.code_of(eth_token_of(42)).has_value());
  // Transfer batches run against the deployed token.
  ledger.execute(as_span(factory(1, rng)));
  sim::CostModel costs;
  EXPECT_GT(ledger.last_execute_cost_us(costs), 10 * costs.evm_us(21000) / 2);
}

TEST(EthWorkload, CreateFractionDeploysContracts) {
  evm::EvmLedgerService ledger;
  EthWorkloadOptions wopts;
  wopts.txs_per_request = 20;
  wopts.create_fraction = 0.5;
  auto factory = eth_op_factory(7, wopts);
  Rng rng(2);
  ledger.execute(as_span(factory(0, rng)));
  ledger.execute(as_span(factory(1, rng)));
  EXPECT_GT(ledger.contracts_created(), 2u);
}

TEST(EthWorkload, RequestSizeNear12KB) {
  EthWorkloadOptions wopts;  // defaults: 50 txs, padded
  auto factory = eth_op_factory(3, wopts);
  Rng rng(3);
  Bytes request = factory(1, rng);
  EXPECT_GT(request.size(), 8'000u);
  EXPECT_LT(request.size(), 16'000u);
}

TEST(EthWorkload, ReplicatedSmartContractsEndToEnd) {
  // The paper's smart-contract benchmark in miniature: an SBFT cluster
  // executing the EVM ledger with per-client token contracts.
  ClusterOptions opts;
  opts.kind = ProtocolKind::kSbft;
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 4;
  opts.topology = sim::lan_topology();
  opts.seed = 3;
  opts.service_factory = [] { return std::make_unique<evm::EvmLedgerService>(); };
  EthWorkloadOptions wopts;
  wopts.txs_per_request = 5;
  wopts.tx_padding_bytes = 16;
  opts.per_client_op_factory = [wopts](ClientId id) {
    return eth_op_factory(id, wopts);
  };
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(240'000'000));
  cluster.run_for(5'000'000);
  const auto& ledger = dynamic_cast<const evm::EvmLedgerService&>(
      cluster.sbft_replica(1)->service());
  EXPECT_GE(ledger.contracts_created(), 2u);  // one token per client
  // Every replica holds the identical ledger.
  Digest expect = cluster.sbft_replica(1)->service().state_digest();
  for (ReplicaId r = 2; r <= cluster.n(); ++r) {
    EXPECT_EQ(cluster.sbft_replica(r)->service().state_digest(), expect);
  }
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::harness
