// Observability pillar tests (docs/observability.md): Tracer ring-buffer
// semantics, histogram/registry behaviour, TraceChecker invariants on
// hand-built streams, and trace-driven invariant checking on real
// cross-protocol cluster scenarios — including the negative cases where a
// fault must leave its detection events in the trace.
#include <gtest/gtest.h>

#include <memory>

#include "harness/cluster.h"
#include "kv/kv_service.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_checker.h"
#include "obs/trace_export.h"

namespace sbft {
namespace {

using harness::Cluster;
using harness::ClusterOptions;
using harness::ProtocolKind;

// ---------------------------------------------------------------------------
// Tracer

TEST(Tracer, RingBufferKeepsMostRecentAndCountsDrops) {
  obs::Tracer t(/*replica=*/1, /*capacity=*/4);
  for (int i = 0; i < 6; ++i) {
    t.instant(i, obs::Category::kSlot, obs::ev::kExecute, 0, /*seq=*/i + 1);
  }
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.dropped(), 2u);
  auto events = t.events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest retained first: events 3..6 survive, 1 and 2 were evicted.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 3);
    EXPECT_EQ(events[i].ts_us, static_cast<int64_t>(i + 2));
  }
}

TEST(Tracer, DisabledTracerIsInertAndNopIsShared) {
  obs::Tracer off;
  EXPECT_FALSE(off.enabled());
  off.instant(1, obs::Category::kSlot, obs::ev::kExecute);
  off.begin(2, obs::Category::kViewChange, obs::ev::kViewChange, 1);
  EXPECT_EQ(off.size(), 0u);
  EXPECT_EQ(off.dropped(), 0u);
  EXPECT_TRUE(off.events().empty());

  obs::Tracer& nop = obs::Tracer::nop();
  EXPECT_FALSE(nop.enabled());
  nop.instant(1, obs::Category::kSlot, obs::ev::kExecute);
  EXPECT_EQ(nop.size(), 0u);
  EXPECT_EQ(&nop, &obs::Tracer::nop());
}

// ---------------------------------------------------------------------------
// Histogram + MetricsRegistry

TEST(Histogram, PercentilesWithinHdrErrorBound) {
  obs::Histogram h;
  EXPECT_TRUE(h.empty());
  EXPECT_EQ(h.percentile(0.5), 0);
  for (int i = 0; i < 1000; ++i) h.record(100);
  for (int i = 0; i < 10; ++i) h.record(10'000);
  EXPECT_EQ(h.count(), 1010u);
  EXPECT_EQ(h.min(), 100);
  EXPECT_EQ(h.max(), 10'000);
  // kSubBits = 3 bounds relative quantile error at 12.5%.
  EXPECT_GE(h.percentile(0.5), 100);
  EXPECT_LE(h.percentile(0.5), 113);
  EXPECT_GE(h.percentile(0.999), 8'000);
  EXPECT_LE(h.percentile(0.999), 10'000);
  EXPECT_NEAR(h.mean(), (1000.0 * 100 + 10 * 10'000) / 1010.0, 1.0);
}

TEST(Histogram, MergeCombinesSamples) {
  obs::Histogram a, b;
  for (int i = 0; i < 100; ++i) a.record(50);
  for (int i = 0; i < 100; ++i) b.record(5'000);
  a.merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 50);
  EXPECT_EQ(a.max(), 5'000);
  EXPECT_GE(a.percentile(0.9), 4'000);
}

TEST(MetricsRegistry, CountersMergeAndJson) {
  obs::MetricsRegistry r;
  r.counter("fast_commits") = 7;
  r.add("fast_commits", 3);
  EXPECT_EQ(r.value("fast_commits"), 10u);
  EXPECT_EQ(r.value("never_touched"), 0u);
  r.histogram("stage.pp_to_commit_us").record(250);

  obs::MetricsRegistry other;
  other.counter("fast_commits") = 5;
  other.counter("slow_commits") = 2;
  other.histogram("stage.pp_to_commit_us").record(750);
  r.merge(other);
  EXPECT_EQ(r.value("fast_commits"), 15u);
  EXPECT_EQ(r.value("slow_commits"), 2u);
  EXPECT_EQ(r.histogram("stage.pp_to_commit_us").count(), 2u);

  std::string json = r.to_json();
  EXPECT_NE(json.find("\"fast_commits\":15"), std::string::npos);
  EXPECT_NE(json.find("\"slow_commits\":2"), std::string::npos);
  EXPECT_NE(json.find("\"stage.pp_to_commit_us\":{\"count\":2"),
            std::string::npos);
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

// ---------------------------------------------------------------------------
// TraceChecker on hand-built streams

obs::TraceEvent exec_event(uint64_t seq, uint64_t digest) {
  obs::TraceEvent e;
  e.name = obs::ev::kExecute;
  e.category = obs::Category::kSlot;
  e.seq = seq;
  e.arg_name = "digest";
  e.arg = digest;
  return e;
}

obs::TraceEvent named_event(obs::Category cat, const char* name,
                            uint64_t seq = 0, uint64_t arg = 0) {
  obs::TraceEvent e;
  e.name = name;
  e.category = cat;
  e.seq = seq;
  e.arg = arg;
  return e;
}

TEST(TraceChecker, AgreeingStreamsPass) {
  obs::TraceChecker checker;
  checker.add_replica(1, {exec_event(1, 0xaa), exec_event(2, 0xbb)});
  checker.add_replica(2, {exec_event(1, 0xaa), exec_event(2, 0xbb)});
  obs::CheckReport report = checker.run();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_EQ(report.events_checked, 4u);
}

TEST(TraceChecker, DivergentDigestIsAgreementViolation) {
  obs::TraceChecker checker;
  checker.add_replica(1, {exec_event(1, 0xaa)});
  checker.add_replica(2, {exec_event(1, 0xcc)});
  obs::CheckReport report = checker.run();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("agreement broken"), std::string::npos);
}

TEST(TraceChecker, DoubleExecutionFlaggedButRestartResetsCursor) {
  obs::TraceChecker bad;
  bad.add_replica(1, {exec_event(1, 0xaa), exec_event(1, 0xaa)});
  EXPECT_FALSE(bad.run().ok());

  // A wiped restart legitimately re-executes earlier sequences.
  obs::TraceChecker restarted;
  restarted.add_replica(
      1, {exec_event(1, 0xaa), exec_event(2, 0xbb),
          named_event(obs::Category::kSlot, obs::ev::kReplicaRestarted),
          exec_event(1, 0xaa), exec_event(2, 0xbb)});
  obs::CheckReport report = restarted.run();
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(TraceChecker, FastCommitNeedsQuorumProof) {
  // The proof event may live in a different stream (the collector's) than
  // the commit; 3 shares do not justify a fast quorum of 4.
  obs::TraceChecker checker(/*fast_quorum=*/4);
  checker.add_replica(
      1, {named_event(obs::Category::kSlot, obs::ev::kFastProofFormed, 1, 4),
          named_event(obs::Category::kSlot, obs::ev::kFastProofFormed, 2, 3)});
  checker.add_replica(
      2, {named_event(obs::Category::kSlot, obs::ev::kCommitFast, 1),
          named_event(obs::Category::kSlot, obs::ev::kCommitFast, 2)});
  obs::CheckReport report = checker.run();
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("seq 2"), std::string::npos);
}

TEST(TraceChecker, UnterminatedStateTransferSessionFlagged) {
  obs::TraceEvent begin;
  begin.name = obs::ev::kStateTransfer;
  begin.category = obs::Category::kStateTransfer;
  begin.phase = obs::EventPhase::kBegin;
  begin.span = 1;
  obs::TraceEvent end = begin;
  end.phase = obs::EventPhase::kEnd;

  obs::TraceChecker open;
  open.add_replica(1, {begin});
  EXPECT_FALSE(open.run().ok());

  obs::TraceChecker closed;
  closed.add_replica(1, {begin, end});
  EXPECT_TRUE(closed.run().ok());
}

TEST(TraceChecker, TruncatedStreamSkipsSpanChecksWithNote) {
  obs::TraceEvent begin;
  begin.name = obs::ev::kStateTransfer;
  begin.category = obs::Category::kStateTransfer;
  begin.phase = obs::EventPhase::kBegin;
  begin.span = 1;
  obs::TraceChecker checker;
  checker.add_replica(1, {begin}, /*dropped=*/10);
  obs::CheckReport report = checker.run();
  EXPECT_TRUE(report.ok()) << report.summary();  // skipped, not violated
  EXPECT_FALSE(report.notes.empty());
}

// ---------------------------------------------------------------------------
// Trace-driven invariant checking on real cluster scenarios

ClusterOptions traced_cluster(ProtocolKind kind, uint64_t seed) {
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.num_clients = 3;
  opts.requests_per_client = 20;
  opts.topology = sim::lan_topology();
  opts.seed = seed;
  opts.tracing = true;
  return opts;
}

obs::TraceChecker make_counter(const Cluster& cluster) {
  obs::TraceChecker checker;
  for (ReplicaId r = 1; r <= cluster.num_replicas(); ++r) {
    const harness::ReplicaHandle& h = cluster.replica(r);
    if (h.tracer()) checker.add_replica(r, h.tracer()->events(), h.tracer()->dropped());
  }
  return checker;
}

TEST(TracedScenarios, SbftFastPathRunPassesChecker) {
  Cluster cluster(traced_cluster(ProtocolKind::kSbft, 21));
  ASSERT_TRUE(cluster.run_until_done(60'000'000));
  obs::CheckReport report = cluster.check_trace();
  EXPECT_TRUE(report.ok()) << report.summary();
  EXPECT_GT(report.events_checked, 0u);

  obs::TraceChecker counter = make_counter(cluster);
  EXPECT_GT(counter.count(obs::Category::kSlot, obs::ev::kCommitFast), 0u);
  EXPECT_GT(counter.count(obs::Category::kSlot, obs::ev::kFastProofFormed), 0u);
  EXPECT_GT(counter.count(obs::Category::kSlot, obs::ev::kExecute), 0u);
}

TEST(TracedScenarios, PbftRunPassesChecker) {
  Cluster cluster(traced_cluster(ProtocolKind::kPbft, 22));
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  obs::CheckReport report = cluster.check_trace();
  EXPECT_TRUE(report.ok()) << report.summary();

  obs::TraceChecker counter = make_counter(cluster);
  EXPECT_GT(counter.count(obs::Category::kSlot, obs::ev::kCommitSlow), 0u);
  EXPECT_EQ(counter.count(obs::Category::kSlot, obs::ev::kCommitFast), 0u);
}

TEST(TracedScenarios, LinearPbftRunPassesChecker) {
  Cluster cluster(traced_cluster(ProtocolKind::kLinearPbft, 23));
  ASSERT_TRUE(cluster.run_until_done(120'000'000));
  obs::CheckReport report = cluster.check_trace();
  EXPECT_TRUE(report.ok()) << report.summary();

  obs::TraceChecker counter = make_counter(cluster);
  EXPECT_GT(counter.count(obs::Category::kSlot, obs::ev::kSlowProofFormed), 0u);
}

TEST(TracedScenarios, WipedRestartLeavesStateTransferSession) {
  auto opts = traced_cluster(ProtocolKind::kSbft, 24);
  opts.requests_per_client = 0;  // free-running
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'000'000);
  cluster.crash_replica(3);
  cluster.run_for(300'000);
  cluster.restart_replica(3, /*wipe_storage=*/true);
  for (int i = 0; i < 600 && cluster.replica(3).last_executed() == 0; ++i) {
    cluster.run_for(50'000);
  }
  ASSERT_GT(cluster.replica(3).last_executed(), 0u);
  cluster.run_for(2'000'000);  // settle so no session is mid-flight

  obs::CheckReport report = cluster.check_trace();
  EXPECT_TRUE(report.ok()) << report.summary();
  obs::TraceChecker counter = make_counter(cluster);
  EXPECT_GT(counter.count(obs::Category::kStateTransfer, obs::ev::kStateTransfer),
            0u);
  EXPECT_GT(counter.count(obs::Category::kStateTransfer, obs::ev::kStAdopt), 0u);
  EXPECT_GT(counter.count(obs::Category::kSlot, obs::ev::kReplicaRestarted), 0u);
}

TEST(TracedScenarios, CorruptChunkDonorLeavesDetectionEvents) {
  auto opts = traced_cluster(ProtocolKind::kSbft, 25);
  opts.requests_per_client = 0;  // free-running
  opts.num_clients = 2;
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  harness::KvWorkloadOptions kv;
  kv.value_size = 512;
  opts.op_factory = harness::kv_op_factory(kv);
  opts.corrupt_chunk_replicas = {2};
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'500'000);
  cluster.crash_replica(4);
  cluster.run_for(300'000);
  cluster.restart_replica(4, /*wipe_storage=*/true);
  for (int i = 0; i < 600 && cluster.replica(4).last_stable() == 0; ++i) {
    cluster.run_for(50'000);
  }
  ASSERT_GT(cluster.replica(4).last_stable(), 0u) << "wiped replica stuck";
  cluster.run_for(2'000'000);

  // The Merkle rejection of the corrupt donor's chunks must be visible in
  // the trace, and the run must still satisfy every invariant.
  obs::TraceChecker counter = make_counter(cluster);
  EXPECT_GT(counter.count(obs::Category::kStateTransfer, obs::ev::kStChunkInvalid),
            0u);
  obs::CheckReport report = cluster.check_trace();
  EXPECT_TRUE(report.ok()) << report.summary();
}

TEST(TracedScenarios, FabricatedCheckpointLeavesRejectionEvents) {
  auto opts = traced_cluster(ProtocolKind::kPbft, 67);
  opts.requests_per_client = 0;  // free-running
  opts.num_clients = 2;
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  harness::KvWorkloadOptions kv;
  kv.value_size = 256;
  kv.key_space = 1024;
  opts.op_factory = harness::kv_op_factory(kv);
  opts.fabricate_checkpoint_replicas = {2};
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 16;
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
    config.pbft_verify_checkpoint_certs = true;
  };
  Cluster cluster(std::move(opts));
  cluster.run_for(2'500'000);
  ASSERT_GT(cluster.replica(1).last_stable(), 0u) << "no checkpoint formed";
  cluster.crash_replica(4);
  cluster.run_for(300'000);
  cluster.restart_replica(4, /*wipe_storage=*/true);
  for (int i = 0; i < 600 && cluster.replica(4).last_stable() == 0; ++i) {
    cluster.run_for(50'000);
  }
  ASSERT_GT(cluster.replica(4).last_stable(), 0u) << "wiped replica stuck";
  cluster.run_for(2'000'000);

  // The quorum-certificate rejection of the fabricated checkpoint must be
  // visible in the trace.
  obs::TraceChecker counter = make_counter(cluster);
  EXPECT_GT(counter.count(obs::Category::kStateTransfer, obs::ev::kStCertRejected),
            0u);
  obs::CheckReport report = cluster.check_trace();
  EXPECT_TRUE(report.ok()) << report.summary();
}

// ---------------------------------------------------------------------------
// Chrome trace export

TEST(TraceExport, EmitsWellFormedSpansAndMetadata) {
  obs::Tracer t(/*replica=*/3, /*capacity=*/64);
  t.begin(100, obs::Category::kViewChange, obs::ev::kViewChange, /*span=*/1, 0, 1);
  t.instant(150, obs::Category::kViewChange, obs::ev::kNewViewSent, 1, 0, 1);
  t.end(200, obs::Category::kViewChange, obs::ev::kViewChange, 1, 0, 1,
        "entered_view", 1);
  std::string json = obs::chrome_trace_json({&t});
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"b\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"viewchange\""), std::string::npos);
  EXPECT_NE(json.find("\"id\":\"r3:viewchange:1\""), std::string::npos);
  EXPECT_NE(json.find("\"entered_view\":1"), std::string::npos);
}

}  // namespace
}  // namespace sbft
