// Collector selection (§V-B) and protocol-configuration arithmetic.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/crypto_context.h"

namespace sbft::core {
namespace {

ProtocolConfig make_config(uint32_t f, uint32_t c) {
  ProtocolConfig config;
  config.f = f;
  config.c = c;
  return config;
}

TEST(Config, ClusterSizing) {
  EXPECT_EQ(make_config(1, 0).n(), 4u);
  EXPECT_EQ(make_config(1, 1).n(), 6u);
  EXPECT_EQ(make_config(2, 0).n(), 7u);
  EXPECT_EQ(make_config(64, 8).n(), 209u);  // the paper's deployment
  EXPECT_EQ(make_config(64, 0).n(), 193u);
}

TEST(Config, QuorumSizes) {
  ProtocolConfig config = make_config(64, 8);
  EXPECT_EQ(config.fast_quorum(), 3 * 64 + 8 + 1);       // sigma: 201
  EXPECT_EQ(config.slow_quorum(), 2 * 64 + 8 + 1);       // tau: 137
  EXPECT_EQ(config.exec_quorum(), 64 + 1);               // pi: 65
  EXPECT_EQ(config.view_change_quorum(), 2 * 64 + 2 * 8 + 1);  // 145
}

TEST(Config, QuorumIntersectionProperties) {
  // Any two slow quorums intersect in at least f+1 replicas (so at least one
  // honest) — the classic safety requirement, for several sizings.
  for (uint32_t f : {1u, 2u, 8u, 64u}) {
    for (uint32_t c : {0u, 1u, 8u}) {
      ProtocolConfig config = make_config(f, c);
      uint32_t n = config.n();
      // |Q1| + |Q2| - n >= f + 1
      EXPECT_GE(2 * config.slow_quorum(), n + f + 1) << "f=" << f << " c=" << c;
      // A fast quorum and a view-change quorum intersect in >= f+c+1.
      EXPECT_GE(config.fast_quorum() + config.view_change_quorum(), n + f + c + 1);
    }
  }
}

TEST(Config, PrimaryRotatesRoundRobin) {
  ProtocolConfig config = make_config(2, 1);  // n = 9
  std::set<ReplicaId> seen;
  for (ViewNum v = 0; v < config.n(); ++v) {
    ReplicaId p = config.primary_of(v);
    EXPECT_GE(p, 1u);
    EXPECT_LE(p, config.n());
    seen.insert(p);
  }
  EXPECT_EQ(seen.size(), config.n());  // every replica gets a turn
  EXPECT_EQ(config.primary_of(0), config.primary_of(config.n()));
}

TEST(Collectors, CorrectCountAndNoPrimary) {
  ProtocolConfig config = make_config(4, 2);  // n = 17, c+1 = 3 collectors
  for (SeqNum s = 1; s <= 50; ++s) {
    auto collectors = c_collectors(config, s, 0);
    ASSERT_EQ(collectors.size(), 3u);
    std::set<ReplicaId> unique(collectors.begin(), collectors.end());
    EXPECT_EQ(unique.size(), collectors.size()) << "duplicates at s=" << s;
    for (ReplicaId r : collectors) {
      EXPECT_NE(r, config.primary_of(0)) << "primary drafted as C-collector";
      EXPECT_GE(r, 1u);
      EXPECT_LE(r, config.n());
    }
  }
}

TEST(Collectors, DeterministicAcrossCalls) {
  ProtocolConfig config = make_config(8, 1);
  EXPECT_EQ(c_collectors(config, 42, 3), c_collectors(config, 42, 3));
  EXPECT_EQ(e_collectors(config, 42, 3), e_collectors(config, 42, 3));
}

TEST(Collectors, VaryWithSequenceAndView) {
  ProtocolConfig config = make_config(8, 2);
  // Across a window of sequence numbers the sets must differ somewhere
  // (load balancing, §V: "By choosing a different C-collector group for each
  // decision block, we balance the load over all replicas").
  bool seq_varies = false, view_varies = false;
  auto base = c_collectors(config, 1, 0);
  for (SeqNum s = 2; s <= 20; ++s) seq_varies |= c_collectors(config, s, 0) != base;
  for (ViewNum v = 1; v <= 20; ++v) view_varies |= c_collectors(config, 1, v) != base;
  EXPECT_TRUE(seq_varies);
  EXPECT_TRUE(view_varies);
}

TEST(Collectors, CDrawsDifferFromEDraws) {
  ProtocolConfig config = make_config(8, 2);
  bool differ = false;
  for (SeqNum s = 1; s <= 20; ++s) {
    differ |= c_collectors(config, s, 0) != e_collectors(config, s, 0);
  }
  EXPECT_TRUE(differ);  // independent pseudo-random draws
}

TEST(Collectors, LoadSpreadsAcrossReplicas) {
  // Over many sequence numbers every non-primary replica should serve as a
  // collector a comparable number of times.
  ProtocolConfig config = make_config(4, 1);  // n = 15, 2 collectors per slot
  std::map<ReplicaId, int> load;
  const int kSlots = 3000;
  for (SeqNum s = 1; s <= kSlots; ++s) {
    for (ReplicaId r : c_collectors(config, s, 0)) ++load[r];
  }
  double expected = 2.0 * kSlots / (config.n() - 1);
  for (ReplicaId r = 1; r <= config.n(); ++r) {
    if (r == config.primary_of(0)) {
      EXPECT_EQ(load.count(r), 0u);
      continue;
    }
    EXPECT_GT(load[r], expected * 0.7) << "replica " << r << " underused";
    EXPECT_LT(load[r], expected * 1.3) << "replica " << r << " overused";
  }
}

TEST(Collectors, CommitCollectorsAppendPrimaryLast) {
  ProtocolConfig config = make_config(4, 2);
  for (ViewNum v : {0ull, 1ull, 7ull}) {
    auto collectors = commit_collectors(config, 5, v);
    ASSERT_EQ(collectors.size(), config.num_collectors() + 1);
    EXPECT_EQ(collectors.back(), config.primary_of(v));  // §V-E: primary last
    auto fallback_e = fallback_e_collectors(config, 5, v);
    EXPECT_EQ(fallback_e.back(), config.primary_of(v));
  }
}

TEST(Collectors, RankLookup) {
  std::vector<ReplicaId> collectors = {7, 3, 9};
  EXPECT_EQ(collector_rank(collectors, 7), 0);
  EXPECT_EQ(collector_rank(collectors, 3), 1);
  EXPECT_EQ(collector_rank(collectors, 9), 2);
  EXPECT_EQ(collector_rank(collectors, 1), -1);
}

TEST(Collectors, SmallClusterClamp) {
  // c+1 collectors must clamp to the available non-primary replicas.
  ProtocolConfig config = make_config(1, 1);  // n = 6, c+1 = 2 of 5 backups
  auto collectors = c_collectors(config, 1, 0);
  EXPECT_EQ(collectors.size(), 2u);
}

TEST(ClusterKeys, SchemesHaveProtocolThresholds) {
  ProtocolConfig config = make_config(2, 1);  // n = 9
  Rng rng(5);
  ClusterKeys keys = ClusterKeys::generate(rng, config);
  EXPECT_EQ(keys.sigma.verifier->threshold(), config.fast_quorum());
  EXPECT_EQ(keys.tau.verifier->threshold(), config.slow_quorum());
  EXPECT_EQ(keys.pi.verifier->threshold(), config.exec_quorum());
  EXPECT_EQ(keys.sigma.signers.size(), config.n());

  ReplicaCrypto rc = ReplicaCrypto::for_replica(keys, 3);
  EXPECT_EQ(rc.sigma_signer->signer_id(), 3u);
  ReplicaCrypto verifier_only = ReplicaCrypto::verifier_only(keys);
  EXPECT_EQ(verifier_only.sigma_signer, nullptr);
  EXPECT_NE(verifier_only.pi_verifier, nullptr);
}

}  // namespace
}  // namespace sbft::core
