#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/serde.h"

namespace sbft {
namespace {

TEST(Hex, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff, 0x10};
  EXPECT_EQ(to_hex(as_span(data)), "0001abff10");
  EXPECT_EQ(from_hex("0001abff10"), data);
}

TEST(Hex, EmptyInput) {
  EXPECT_EQ(to_hex(ByteSpan{}), "");
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Hex, UpperCaseAccepted) { EXPECT_EQ(from_hex("AB"), Bytes{0xab}); }

TEST(Hex, RejectsOddLength) { EXPECT_THROW(from_hex("abc"), std::invalid_argument); }

TEST(Hex, RejectsBadDigit) { EXPECT_THROW(from_hex("zz"), std::invalid_argument); }

TEST(DigestEqual, DetectsDifference) {
  Digest a{};
  Digest b{};
  EXPECT_TRUE(digest_equal(a, b));
  b[31] = 1;
  EXPECT_FALSE(digest_equal(a, b));
}

TEST(Fnv, StableAndSensitive) {
  Bytes a = to_bytes("hello");
  Bytes b = to_bytes("hellp");
  EXPECT_EQ(fnv1a(as_span(a)), fnv1a(as_span(a)));
  EXPECT_NE(fnv1a(as_span(a)), fnv1a(as_span(b)));
}

TEST(Serde, IntegersRoundTrip) {
  Writer w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefull);
  w.i64(-42);
  w.boolean(true);
  Reader r(as_span(w.data()));
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.at_end());
}

TEST(Serde, BytesAndStringsRoundTrip) {
  Writer w;
  w.bytes(as_span(to_bytes("payload")));
  w.str("name");
  Digest d{};
  d[0] = 7;
  w.digest(d);
  Reader r(as_span(w.data()));
  EXPECT_EQ(r.bytes(), to_bytes("payload"));
  EXPECT_EQ(r.str(), "name");
  EXPECT_EQ(r.digest(), d);
  EXPECT_TRUE(r.at_end());
}

TEST(Serde, UnderflowLatchesFailure) {
  Writer w;
  w.u8(1);
  Reader r(as_span(w.data()));
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.u32(), 0u);  // underflow
  EXPECT_FALSE(r.ok());
  EXPECT_FALSE(r.at_end());
}

TEST(Serde, TruncatedLengthPrefix) {
  Writer w;
  w.u32(100);  // claims 100 bytes, provides none
  Reader r(as_span(w.data()));
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(Rng, RangeInclusive) {
  Rng rng(2);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    saw_lo |= v == 5;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, ForkIndependent) {
  Rng a(7);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

}  // namespace
}  // namespace sbft
