// Durability & crash recovery (§VIII): WAL round-trips and compaction, torn
// tail tolerance, ledger replay through RecoveryManager, and full simulated
// kill-and-restart scenarios (within a view, across a view change, and with a
// wiped disk forcing state transfer).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "harness/cluster.h"
#include "harness/workload.h"
#include "recovery/recovery_manager.h"
#include "recovery/wal.h"
#include "runtime/snapshot.h"
#include "storage/ledger_storage.h"

namespace sbft::recovery {
namespace {

class TempFile {
 public:
  TempFile() {
    path_ = (std::filesystem::temp_directory_path() /
             ("sbft-wal-" + std::to_string(::getpid()) + "-" +
              std::to_string(counter_++)))
                .string();
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static inline int counter_ = 0;
  std::string path_;
};

Digest digest_of(uint8_t fill) {
  Digest d{};
  d.fill(fill);
  return d;
}

ExecCertificate make_cert(SeqNum seq) {
  ExecCertificate cert;
  cert.seq = seq;
  cert.state_root = digest_of(0x11);
  cert.ops_root = digest_of(0x22);
  cert.prev_exec_digest = digest_of(0x33);
  cert.pi_sig = to_bytes("pi-signature");
  return cert;
}

// ---------------------------------------------------------------------------
// WAL round-trips

template <typename Wal>
void roundtrip_checks(Wal& wal) {
  EXPECT_TRUE(wal.load().empty());
  wal.record_view(1);
  wal.record_vote(5, 1, digest_of(0xa5));
  wal.record_vote(6, 1, digest_of(0xa6));
  WalState state = wal.load();
  EXPECT_EQ(state.view, 1u);
  ASSERT_EQ(state.votes.size(), 2u);
  EXPECT_EQ(state.votes[0].seq, 5u);
  EXPECT_EQ(state.votes[1].block_digest, digest_of(0xa6));
  EXPECT_GT(wal.bytes_written(), 0u);

  // Checkpoint at 5 compacts the vote at 5 away but keeps the one at 6.
  wal.record_checkpoint(make_cert(5), as_span(to_bytes("snapshot-5")));
  state = wal.load();
  EXPECT_EQ(state.last_stable, 5u);
  EXPECT_EQ(state.checkpoint.pi_sig, to_bytes("pi-signature"));
  EXPECT_EQ(state.snapshot, to_bytes("snapshot-5"));
  ASSERT_EQ(state.votes.size(), 1u);
  EXPECT_EQ(state.votes[0].seq, 6u);
  EXPECT_EQ(state.view, 1u);
}

TEST(MemoryWalTest, RoundTripAndCompaction) {
  MemoryWal wal;
  roundtrip_checks(wal);
}

TEST(FileWalTest, RoundTripAndCompaction) {
  TempFile tmp;
  FileWal wal(tmp.path());
  roundtrip_checks(wal);
}

TEST(FileWalTest, SurvivesReopen) {
  TempFile tmp;
  {
    FileWal wal(tmp.path());
    wal.record_view(3);
    wal.record_checkpoint(make_cert(8), as_span(to_bytes("snap")));
    wal.record_vote(9, 3, digest_of(0x99));
    wal.sync();
  }
  FileWal reopened(tmp.path());
  WalState state = reopened.load();
  EXPECT_EQ(state.view, 3u);
  EXPECT_EQ(state.last_stable, 8u);
  EXPECT_EQ(state.snapshot, to_bytes("snap"));
  ASSERT_EQ(state.votes.size(), 1u);
  EXPECT_EQ(state.votes[0].seq, 9u);
}

TEST(FileWalTest, ToleratesTornTailRecord) {
  TempFile tmp;
  {
    FileWal wal(tmp.path());
    wal.record_view(2);
    wal.record_vote(4, 2, digest_of(0x44));
    wal.sync();
  }
  // Simulate a crash mid-append: chop bytes off the last record.
  auto full = std::filesystem::file_size(tmp.path());
  std::filesystem::resize_file(tmp.path(), full - 7);
  FileWal reopened(tmp.path());
  WalState state = reopened.load();
  EXPECT_EQ(state.view, 2u);
  EXPECT_TRUE(state.votes.empty());  // torn vote ignored
  // The log still accepts appends and the next load sees them.
  reopened.record_vote(5, 2, digest_of(0x55));
  reopened.record_checkpoint(make_cert(4), as_span(to_bytes("s4")));
  state = reopened.load();
  EXPECT_EQ(state.last_stable, 4u);
  ASSERT_EQ(state.votes.size(), 1u);
  EXPECT_EQ(state.votes[0].seq, 5u);
}

TEST(FileWalTest, CorruptMagicRestartsAsFreshLog) {
  // A crash during the initial magic write must not leave a headerless file:
  // appends after reopen have to survive further reopens.
  TempFile tmp;
  {
    FileWal wal(tmp.path());
    wal.record_view(7);
  }
  std::filesystem::resize_file(tmp.path(), 4);  // torn magic
  {
    FileWal reopened(tmp.path());
    EXPECT_TRUE(reopened.load().empty());  // old records unrecoverable
    reopened.record_vote(3, 0, digest_of(0x33));
    reopened.sync();
    ASSERT_EQ(reopened.load().votes.size(), 1u);
  }
  FileWal again(tmp.path());
  WalState state = again.load();
  ASSERT_EQ(state.votes.size(), 1u);  // append survived the second reopen
  EXPECT_EQ(state.votes[0].seq, 3u);
}

TEST(FileWalTest, IncrementalCompactionWritesFewerBytesAndConverges) {
  // ROADMAP open item: compact only records below the stable checkpoint
  // instead of rewriting the whole log (snapshot + every surviving vote) at
  // every checkpoint. With a realistic in-flight window of votes ahead of
  // the stable sequence, the full-rewrite policy re-writes all of them per
  // checkpoint; the incremental policy appends one record and only rewrites
  // when dead bytes dominate.
  TempFile a, b;
  FileWal inc(a.path(), WalCompaction::kIncremental);
  FileWal full(b.path(), WalCompaction::kFullRewrite);
  const Bytes snap(256, 0xab);
  for (SeqNum s = 1; s <= 512; ++s) {
    inc.record_vote(s, 1, digest_of(0x10));
    full.record_vote(s, 1, digest_of(0x10));
    if (s % 16 == 0 && s > 256) {
      // Checkpoint trails the vote head by a 256-deep in-flight window.
      inc.record_checkpoint(make_cert(s - 256), as_span(snap));
      full.record_checkpoint(make_cert(s - 256), as_span(snap));
    }
  }
  EXPECT_LT(inc.bytes_written(), full.bytes_written());
  // Same logical state under either policy.
  WalState si = inc.load();
  WalState sf = full.load();
  EXPECT_EQ(si.last_stable, sf.last_stable);
  EXPECT_EQ(si.snapshot, sf.snapshot);
  EXPECT_EQ(si.votes.size(), sf.votes.size());
  // The threshold rewrite bounds the incremental file to a small multiple of
  // the live state (window of votes + one snapshot).
  EXPECT_LT(inc.file_bytes(), 4 * (256 * 53 + snap.size() + 1024));
  // A reopen of the incrementally-compacted log sees the same state.
  inc.sync();
  FileWal reopened(a.path());
  EXPECT_EQ(reopened.load().last_stable, si.last_stable);
  EXPECT_EQ(reopened.load().votes.size(), si.votes.size());
}

// ---------------------------------------------------------------------------
// RecoveryManager ledger replay

Bytes encoded_block(SeqNum s, ViewNum v, ClientId client, uint64_t timestamp) {
  Block block;
  Request req;
  req.client = client;
  req.timestamp = timestamp;
  req.op = to_bytes("op-" + std::to_string(s));
  block.requests.push_back(std::move(req));
  return encode_message(Message(PrePrepareMsg{s, v, std::move(block)}));
}

TEST(RecoveryManagerTest, FreshStorageRecoversNothing) {
  RecoveryManager manager(std::make_shared<storage::MemoryLedgerStorage>(),
                          std::make_shared<MemoryWal>());
  auto recovered =
      manager.recover([] { return std::make_unique<harness::FastKvService>(); });
  EXPECT_FALSE(recovered.has_value());
}

TEST(RecoveryManagerTest, ReplaysLedgerFromGenesis) {
  auto ledger = std::make_shared<storage::MemoryLedgerStorage>();
  for (SeqNum s = 1; s <= 4; ++s) {
    ledger->append_block(s, as_span(encoded_block(s, 0, 100, s)));
  }
  RecoveryManager manager(ledger, nullptr);
  auto recovered =
      manager.recover([] { return std::make_unique<harness::FastKvService>(); });
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_executed, 4u);
  EXPECT_EQ(recovered->last_stable, 0u);
  ASSERT_EQ(recovered->replayed.size(), 4u);
  // The chained digest d_s links back to genesis.
  EXPECT_EQ(recovered->replayed[0].cert.prev_exec_digest, genesis_exec_digest());
  for (SeqNum s = 1; s <= 4; ++s) {
    EXPECT_EQ(recovered->exec_digests.at(s), recovered->replayed[s - 1].cert.exec_digest());
    if (s > 1) {
      EXPECT_EQ(recovered->replayed[s - 1].cert.prev_exec_digest,
                recovered->exec_digests.at(s - 1));
    }
  }
  // Service state matches the final certificate's state root.
  EXPECT_EQ(recovered->service->state_digest(), recovered->replayed.back().cert.state_root);
  EXPECT_GT(recovered->replayed_bytes, 0u);
}

TEST(RecoveryManagerTest, SnapshotPlusSuffixMatchesFullReplay) {
  auto ledger = std::make_shared<storage::MemoryLedgerStorage>();
  for (SeqNum s = 1; s <= 6; ++s) {
    ledger->append_block(s, as_span(encoded_block(s, 0, 7, s)));
  }
  auto factory = [] { return std::make_unique<harness::FastKvService>(); };

  // Full replay to establish the reference chain.
  RecoveryManager full(ledger, nullptr);
  auto reference = full.recover(factory);
  ASSERT_TRUE(reference.has_value());

  // Replay 1..3 once, checkpoint there, and recover from snapshot + suffix.
  RecoveryManager prefix(ledger, nullptr);
  auto half = prefix.recover(factory);
  ASSERT_TRUE(half.has_value());
  auto wal = std::make_shared<MemoryWal>();
  ExecCertificate cp = half->replayed[2].cert;  // seq 3
  // Rebuild the service up to seq 3 to snapshot it, cache riding along in
  // the checkpoint envelope.
  auto service3 = factory();
  runtime::ReplyCache cache3;
  for (SeqNum s = 1; s <= 3; ++s) {
    const Request& req = half->replayed[s - 1].block.requests[0];
    cache3.store(req.client, req.timestamp, s, 0,
                 service3->execute(as_span(req.op)));
  }
  wal->record_checkpoint(cp, as_span(runtime::encode_checkpoint_snapshot(
                                 as_span(service3->snapshot()), cache3)));
  wal->record_view(0);

  RecoveryManager from_snapshot(ledger, wal);
  auto recovered = from_snapshot.recover(factory);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_stable, 3u);
  EXPECT_EQ(recovered->last_executed, 6u);
  EXPECT_EQ(recovered->replayed.size(), 3u);  // only the suffix re-executed
  EXPECT_EQ(recovered->exec_digests.at(6), reference->exec_digests.at(6));
  EXPECT_EQ(recovered->service->state_digest(), reference->service->state_digest());
  // The recovered reply cache spans checkpoint + suffix.
  ASSERT_NE(recovered->reply_cache.find(7), nullptr);
  EXPECT_EQ(recovered->reply_cache.find(7)->timestamp, 6u);
}

TEST(RecoveryManagerTest, LegacyBareSnapshotStillRecovers) {
  // WALs written before the snapshot envelope carry the raw service
  // snapshot; recovery must keep accepting them (with an empty cache).
  auto ledger = std::make_shared<storage::MemoryLedgerStorage>();
  for (SeqNum s = 1; s <= 4; ++s) {
    ledger->append_block(s, as_span(encoded_block(s, 0, 9, s)));
  }
  auto factory = [] { return std::make_unique<harness::FastKvService>(); };
  RecoveryManager prefix(ledger, nullptr);
  auto half = prefix.recover(factory);
  ASSERT_TRUE(half.has_value());
  auto service2 = factory();
  for (SeqNum s = 1; s <= 2; ++s) {
    service2->execute(as_span(half->replayed[s - 1].block.requests[0].op));
  }
  auto wal = std::make_shared<MemoryWal>();
  wal->record_checkpoint(half->replayed[1].cert, as_span(service2->snapshot()));

  RecoveryManager manager(ledger, wal);
  auto recovered = manager.recover(factory);
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->last_stable, 2u);
  EXPECT_EQ(recovered->last_executed, 4u);
  EXPECT_EQ(recovered->service->state_digest(), half->service->state_digest());
}

TEST(RecoveryManagerTest, CorruptSnapshotAbortsRecovery) {
  auto wal = std::make_shared<MemoryWal>();
  ExecCertificate cp = make_cert(4);  // state_root matches nothing
  wal->record_checkpoint(cp, as_span(to_bytes("not-a-snapshot")));
  RecoveryManager manager(nullptr, wal);
  auto recovered =
      manager.recover([] { return std::make_unique<harness::FastKvService>(); });
  EXPECT_FALSE(recovered.has_value());  // boot fresh, rely on state transfer
}

TEST(RecoveryManagerTest, SurfacesInFlightVotes) {
  auto wal = std::make_shared<MemoryWal>();
  wal->record_view(1);
  wal->record_vote(2, 1, digest_of(0x02));
  RecoveryManager manager(std::make_shared<storage::MemoryLedgerStorage>(), wal);
  auto recovered =
      manager.recover([] { return std::make_unique<harness::FastKvService>(); });
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->view, 1u);
  ASSERT_EQ(recovered->votes.size(), 1u);
  EXPECT_EQ(recovered->votes[0].seq, 2u);
}

}  // namespace
}  // namespace sbft::recovery

// ---------------------------------------------------------------------------
// Simulated kill-and-restart scenarios

namespace sbft::harness {
namespace {

ClusterOptions recovery_base(uint32_t f, uint64_t requests) {
  ClusterOptions opts;
  opts.kind = ProtocolKind::kSbft;
  opts.f = f;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = requests;
  opts.topology = sim::lan_topology();
  opts.seed = 11;
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 32;  // frequent checkpoints: recovery exercises snapshots
  };
  return opts;
}

TEST(Recovery, RestartFromWalWithinView) {
  // Acceptance scenario: kill a non-primary replica mid-run, restart it, and
  // watch it recover from WAL + ledger, rejoin, and re-enter fast commits.
  auto opts = recovery_base(1, 400);
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/4'000'000,
                                   /*replica=*/3, /*wipe_storage=*/false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";

  core::SbftReplica* restarted = cluster.sbft_replica(3);
  EXPECT_EQ(restarted->stats().recoveries, 1u);
  EXPECT_GT(restarted->stats().blocks_replayed, 0u) << "WAL/ledger were empty";
  // Rejoined: executed well past whatever it recovered to.
  EXPECT_GT(restarted->last_executed(), restarted->stats().blocks_replayed);
  // Re-entered the fast path (f=1, c=0: fast quorum needs all n=4 replicas,
  // so post-restart fast commits prove the recovered replica participates).
  EXPECT_GT(restarted->stats().fast_commits, 0u);
  EXPECT_EQ(cluster.total_recoveries(), 1u);
  EXPECT_GT(cluster.total_wal_bytes_written(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 400u);
  }
}

TEST(Recovery, RestartAcrossViewChange) {
  // The replica sleeps through a view change (primary crashed while it was
  // down) and must fast-forward into the new view from verified quorum
  // signatures when it comes back.
  auto opts = recovery_base(2, 150);  // n = 7: tolerates backup + primary down
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 32;
    config.view_change_timeout_us = 1'000'000;
  };
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/12'000'000,
                                   /*replica=*/3, /*wipe_storage=*/false});
  // Crash-only event: the view-0 primary dies while replica 3 is down.
  opts.restart_schedule.push_back({/*crash_at_us=*/2'000'000,
                                   /*restart_at_us=*/0,
                                   /*replica=*/1, /*wipe_storage=*/false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";

  EXPECT_GT(cluster.total_view_changes(), 0u);
  core::SbftReplica* restarted = cluster.sbft_replica(3);
  EXPECT_EQ(restarted->stats().recoveries, 1u);
  EXPECT_GT(restarted->view(), 0u) << "never adopted the post-crash view";
  EXPECT_GT(restarted->last_executed(), 0u);
  EXPECT_TRUE(cluster.check_agreement());
}

TEST(Recovery, WipedDiskFallsBackToStateTransfer) {
  auto opts = recovery_base(1, 300);
  opts.restart_schedule.push_back({/*crash_at_us=*/1'000'000,
                                   /*restart_at_us=*/5'000'000,
                                   /*replica=*/4, /*wipe_storage=*/true});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000)) << "clients stalled";

  core::SbftReplica* restarted = cluster.sbft_replica(4);
  EXPECT_EQ(restarted->stats().recoveries, 0u);  // nothing local survived
  EXPECT_GT(restarted->stats().state_transfers, 0u)
      << "empty replica never requested state transfer";
  EXPECT_GT(restarted->last_executed(), 0u) << "never caught up";
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 300u);
  }
}

TEST(Recovery, RollingRestartKeepsClusterLiveAndSafe) {
  auto opts = recovery_base(1, 500);
  opts.restart_schedule.push_back({1'000'000, 3'000'000, 2, false});
  opts.restart_schedule.push_back({5'000'000, 7'000'000, 3, false});
  opts.restart_schedule.push_back({9'000'000, 11'000'000, 4, false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(900'000'000)) << "clients stalled";
  // Clients may drain before the tail of the schedule; play it out so every
  // scheduled restart (and its recovery) actually happens.
  if (cluster.simulator().now() < 12'000'000) {
    cluster.run_for(12'000'000 - cluster.simulator().now());
  }
  EXPECT_EQ(cluster.total_recoveries(), 3u);
  EXPECT_TRUE(cluster.check_agreement());
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    EXPECT_EQ(cluster.client(i).completed(), 500u);
  }
}

TEST(Recovery, RestartedReplicaServesClientRetries) {
  // The rebuilt reply cache must answer duplicate requests (client retry
  // after the original reply was lost with the crash).
  auto opts = recovery_base(1, 250);
  opts.restart_schedule.push_back({800'000, 2'500'000, 2, false});
  Cluster cluster(std::move(opts));
  ASSERT_TRUE(cluster.run_until_done(600'000'000));
  // Recovery rebuilt a non-empty reply cache is observable indirectly: all
  // clients finished and agreement holds even though a replica vanished and
  // returned mid-conversation.
  EXPECT_EQ(cluster.sbft_replica(2)->stats().recoveries, 1u);
  EXPECT_TRUE(cluster.check_agreement());
}

}  // namespace
}  // namespace sbft::harness
