// Crash-and-recover walkthrough (§VIII durability): a 4-replica cluster
// under client load loses a backup, restarts it from its surviving WAL +
// ledger, and the replica rejoins; then the same replica loses its disk
// entirely and comes back through state transfer; finally it crashes again
// *briefly* with its disk intact and rejoins through a delta transfer —
// fetching only the chunks that changed since the checkpoint it already
// holds, and reporting the bytes that stayed off the wire. The whole
// scenario runs twice — once on SBFT, once on the PBFT baseline — through
// the identical Cluster API, because both ordering engines share the
// replica runtime.
#include <cstdio>
#include <memory>

#include "harness/cluster.h"
#include "harness/workload.h"
#include "kv/kv_service.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

void print_state(Cluster& cluster, const char* label) {
  std::printf("--- %s (t = %.1fs)\n", label,
              static_cast<double>(cluster.simulator().now()) / 1e6);
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    const ReplicaHandle& rep = cluster.replica(r);
    const runtime::RuntimeStats& rt = rep.runtime_stats();
    std::printf("  replica %u: view=%llu last_executed=%llu recoveries=%llu "
                "replayed=%llu state_transfers=%llu cache_hits=%llu%s\n",
                r, static_cast<unsigned long long>(rep.view()),
                static_cast<unsigned long long>(rep.last_executed()),
                static_cast<unsigned long long>(rt.recoveries),
                static_cast<unsigned long long>(rt.blocks_replayed),
                static_cast<unsigned long long>(rt.state_transfers),
                static_cast<unsigned long long>(rt.reply_cache_hits),
                cluster.network().crashed(rep.node()) ? "  [crashed]" : "");
  }
}

void run_scenario(ProtocolKind kind) {
  std::printf("=== %s crash recovery: WAL + ledger replay, then disk loss + "
              "state transfer ===\n\n",
              protocol_name(kind));
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 4;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 42;
  // Real (multi-hundred-KB) KV state with a small hot set, so while replica
  // 3 is briefly down only a sliver of the state changes and the delta
  // rejoin has something to show.
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };
  opts.op_factory = hot_range_kv_op_factory(/*key_space=*/2048, /*hot=*/32,
                                            /*value_size=*/256,
                                            /*ops_per_request=*/16);
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 32;
    config.state_transfer_chunk_size = 1024;  // fine-grained deltas
  };
  Cluster cluster(std::move(opts));

  cluster.run_for(2'000'000);
  print_state(cluster, "steady state");

  std::printf("\n>>> killing replica 3\n");
  cluster.crash_replica(3);
  cluster.run_for(3'000'000);
  print_state(cluster, "replica 3 down: the remaining 2f+1 carry on");

  std::printf("\n>>> restarting replica 3 from its WAL + ledger\n");
  cluster.restart_replica(3);
  cluster.run_for(4'000'000);
  print_state(cluster, "replica 3 recovered (note recoveries/replayed) and "
                       "rejoined");

  std::printf("\n>>> killing replica 3 again and wiping its disk\n");
  cluster.crash_replica(3);
  cluster.run_for(3'000'000);
  cluster.restart_replica(3, /*wipe_storage=*/true);
  cluster.run_for(5'000'000);
  print_state(cluster, "replica 3 rebuilt from a peer's checkpoint "
                       "(state_transfers > 0, recoveries stays 0)");
  uint64_t full_rejoin_bytes =
      cluster.replica(3).runtime_stats().state_transfer_bytes_transferred;

  std::printf("\n>>> killing replica 3 briefly (disk intact) — it rejoins via "
              "a DELTA transfer\n");
  cluster.crash_replica(3);
  cluster.run_for(1'500'000);  // the cluster seals a few more checkpoints
  cluster.restart_replica(3);
  cluster.run_for(4'000'000);
  print_state(cluster, "replica 3 back: it advertised the checkpoint it "
                       "already held, seeded the unchanged chunks locally and "
                       "fetched only the delta");
  const runtime::RuntimeStats& rt = cluster.replica(3).runtime_stats();
  std::printf("\n  wiped rejoin fetched %llu bytes over the wire;\n"
              "  delta rejoin fetched %llu bytes and seeded %llu chunks "
              "(%llu bytes) from the local snapshot\n",
              static_cast<unsigned long long>(full_rejoin_bytes),
              static_cast<unsigned long long>(rt.state_transfer_bytes_transferred),
              static_cast<unsigned long long>(rt.delta_chunks_skipped),
              static_cast<unsigned long long>(rt.delta_bytes_saved));

  std::printf("\nagreement audit: %s\n",
              cluster.check_agreement() ? "OK (Theorem VI.1 holds)" : "VIOLATED");
  std::printf("total WAL bytes written across the cluster: %llu\n\n",
              static_cast<unsigned long long>(cluster.total_wal_bytes_written()));
}

}  // namespace

int main() {
  run_scenario(ProtocolKind::kSbft);
  run_scenario(ProtocolKind::kPbft);
  return 0;
}
