// Crash-and-recover walkthrough (§VIII durability): a 4-replica cluster
// under client load loses a backup, restarts it from its surviving WAL +
// ledger, and the replica rejoins; then the same replica loses its disk
// entirely and comes back through state transfer. The whole scenario runs
// twice — once on SBFT, once on the PBFT baseline — through the identical
// Cluster API, because both ordering engines share the replica runtime.
#include <cstdio>

#include "harness/cluster.h"

using namespace sbft;
using namespace sbft::harness;

namespace {

void print_state(Cluster& cluster, const char* label) {
  std::printf("--- %s (t = %.1fs)\n", label,
              static_cast<double>(cluster.simulator().now()) / 1e6);
  for (ReplicaId r = 1; r <= cluster.n(); ++r) {
    const ReplicaHandle& rep = cluster.replica(r);
    const runtime::RuntimeStats& rt = rep.runtime_stats();
    std::printf("  replica %u: view=%llu last_executed=%llu recoveries=%llu "
                "replayed=%llu state_transfers=%llu cache_hits=%llu%s\n",
                r, static_cast<unsigned long long>(rep.view()),
                static_cast<unsigned long long>(rep.last_executed()),
                static_cast<unsigned long long>(rt.recoveries),
                static_cast<unsigned long long>(rt.blocks_replayed),
                static_cast<unsigned long long>(rt.state_transfers),
                static_cast<unsigned long long>(rt.reply_cache_hits),
                cluster.network().crashed(rep.node()) ? "  [crashed]" : "");
  }
}

void run_scenario(ProtocolKind kind) {
  std::printf("=== %s crash recovery: WAL + ledger replay, then disk loss + "
              "state transfer ===\n\n",
              protocol_name(kind));
  ClusterOptions opts;
  opts.kind = kind;
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 4;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 42;
  opts.tweak_config = [](ProtocolConfig& config) { config.win = 32; };
  Cluster cluster(std::move(opts));

  cluster.run_for(2'000'000);
  print_state(cluster, "steady state");

  std::printf("\n>>> killing replica 3\n");
  cluster.crash_replica(3);
  cluster.run_for(3'000'000);
  print_state(cluster, "replica 3 down: the remaining 2f+1 carry on");

  std::printf("\n>>> restarting replica 3 from its WAL + ledger\n");
  cluster.restart_replica(3);
  cluster.run_for(4'000'000);
  print_state(cluster, "replica 3 recovered (note recoveries/replayed) and "
                       "rejoined");

  std::printf("\n>>> killing replica 3 again and wiping its disk\n");
  cluster.crash_replica(3);
  cluster.run_for(3'000'000);
  cluster.restart_replica(3, /*wipe_storage=*/true);
  cluster.run_for(5'000'000);
  print_state(cluster, "replica 3 rebuilt from a peer's checkpoint "
                       "(state_transfers > 0, recoveries stays 0)");

  std::printf("\nagreement audit: %s\n",
              cluster.check_agreement() ? "OK (Theorem VI.1 holds)" : "VIOLATED");
  std::printf("total WAL bytes written across the cluster: %llu\n\n",
              static_cast<unsigned long long>(cluster.total_wal_bytes_written()));
}

}  // namespace

int main() {
  run_scenario(ProtocolKind::kSbft);
  run_scenario(ProtocolKind::kPbft);
  return 0;
}
