// Observability tour (docs/observability.md): one SBFT cluster with tracing
// enabled walks through the full fault repertoire — fast-path commits, a
// primary crash with the dual-mode view change, slow-path commits while the
// cluster is a replica short, and a wiped-disk rejoin via chunked state
// transfer — then dumps the structured trace as Chrome-trace-event JSON
// (load it at https://ui.perfetto.dev) and audits it with the cross-replica
// invariant checker.
//
//   $ ./examples/example_trace_tour [trace.json]
#include <cstdio>

#include "harness/cluster.h"

using namespace sbft;
using namespace sbft::harness;

int main(int argc, char** argv) {
  const char* path = argc > 1 ? argv[1] : "trace.json";

  ClusterOptions opts;
  opts.kind = ProtocolKind::kSbft;
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 4;
  opts.requests_per_client = 0;  // free-running
  opts.topology = sim::lan_topology();
  opts.seed = 7;
  opts.tracing = true;
  opts.tweak_config = [](ProtocolConfig& config) {
    config.win = 32;
    config.state_transfer_chunk_size = 1024;
    config.state_transfer_retry_us = 200'000;
    // Impatient timers so the whole tour fits in a few simulated seconds:
    // clients re-push quickly after the primary dies and the survivors elect
    // view 1 without the production-scale grace period.
    config.client_retry_timeout_us = 1'000'000;
    config.view_change_timeout_us = 500'000;
  };
  Cluster cluster(std::move(opts));
  std::printf("n=%u SBFT cluster, tracing on (ring capacity %zu events per "
              "replica)\n",
              cluster.n(), cluster.options().trace_capacity);

  // Act 1: healthy — every commit takes the fast path (all 3f+c+1 sign).
  cluster.run_for(1'500'000);
  std::printf("t=%.1fs: healthy run — %llu fast commits, %llu slow\n",
              cluster.simulator().now() / 1e6,
              static_cast<unsigned long long>(cluster.total_fast_commits()),
              static_cast<unsigned long long>(cluster.total_slow_commits()));

  // Act 2: crash the view-0 primary. The survivors elect view 1, and with
  // only 2f+1 replicas left the fast quorum can't form: commits fall back to
  // the linear slow path (sign-share pairs in the trace).
  std::printf("t=%.1fs: crashing the primary (replica 1)\n",
              cluster.simulator().now() / 1e6);
  cluster.crash_replica(1);
  cluster.run_for(4'000'000);
  std::printf("t=%.1fs: view %llu after %llu view change(s) — %llu slow "
              "commits while a replica short\n",
              cluster.simulator().now() / 1e6,
              static_cast<unsigned long long>(cluster.replica(2).view()),
              static_cast<unsigned long long>(cluster.total_view_changes()),
              static_cast<unsigned long long>(cluster.total_slow_commits()));

  // Act 3: bring replica 1 back with its disk wiped — it must rebuild from a
  // peer's checkpoint through the chunked state-transfer session
  // (probe -> manifest -> chunks -> adopt, one span in the trace).
  std::printf("t=%.1fs: restarting replica 1 with a wiped disk\n",
              cluster.simulator().now() / 1e6);
  cluster.restart_replica(1, /*wipe_storage=*/true);
  cluster.run_for(6'000'000);
  const runtime::RuntimeStats& rt = cluster.replica(1).runtime_stats();
  std::printf("t=%.1fs: replica 1 rejoined — %llu state transfer(s), %llu "
              "chunks / %llu bytes fetched, last_executed=%llu\n",
              cluster.simulator().now() / 1e6,
              static_cast<unsigned long long>(rt.state_transfers),
              static_cast<unsigned long long>(rt.state_transfer_chunks_fetched),
              static_cast<unsigned long long>(rt.state_transfer_bytes_transferred),
              static_cast<unsigned long long>(cluster.replica(1).last_executed()));

  bool agree = cluster.check_agreement();
  std::printf("agreement audit: %s\n", agree ? "OK" : "VIOLATED");

  obs::CheckReport report = cluster.check_trace();
  std::printf("trace audit: %s\n", report.summary().c_str());

  if (!cluster.dump_trace(path)) {
    std::printf("FAIL: could not write %s\n", path);
    return 1;
  }
  std::printf("trace written to %s — open it at https://ui.perfetto.dev\n", path);

  bool acts_played = cluster.total_fast_commits() > 0 &&
                     cluster.total_slow_commits() > 0 &&
                     cluster.total_view_changes() > 0 && rt.state_transfers > 0;
  if (!acts_played) {
    std::printf("FAIL: scenario did not exercise all acts (fast=%llu slow=%llu "
                "vc=%llu st=%llu)\n",
                static_cast<unsigned long long>(cluster.total_fast_commits()),
                static_cast<unsigned long long>(cluster.total_slow_commits()),
                static_cast<unsigned long long>(cluster.total_view_changes()),
                static_cast<unsigned long long>(rt.state_transfers));
    return 1;
  }
  return agree && report.ok() ? 0 : 1;
}
