// World-scale geo-replication example (§IX): replicas spread over 15 regions
// on all continents. Defaults to a moderate cluster so it runs in seconds;
// pass "--paper" to run the paper's headline sizing (n=209, f=64, c=8).
//
//   $ ./examples/geo_replication            # f=8, c=1, n=27
//   $ ./examples/geo_replication --paper    # f=64, c=8, n=209
#include <cstdio>
#include <cstring>

#include "harness/cluster.h"
#include "harness/metrics.h"

using namespace sbft;

int main(int argc, char** argv) {
  bool paper_scale = argc > 1 && std::strcmp(argv[1], "--paper") == 0;

  harness::ClusterOptions opts;
  opts.kind = harness::ProtocolKind::kSbft;
  opts.f = paper_scale ? 64 : 8;
  opts.c = paper_scale ? 8 : 1;
  opts.num_clients = paper_scale ? 64 : 16;
  opts.requests_per_client = 0;  // free-running for the measurement window
  opts.topology = sim::world_topology();
  harness::KvWorkloadOptions workload;
  workload.ops_per_request = 64;  // the paper's batching mode
  opts.op_factory = harness::kv_op_factory(workload);

  harness::Cluster cluster(std::move(opts));
  std::printf("world-scale WAN deployment: n=%u replicas across 15 regions, "
              "f=%u Byzantine, c=%u redundant, %zu clients\n",
              cluster.n(), cluster.config().f, cluster.config().c,
              cluster.num_clients());

  cluster.run_for(2'000'000);  // warmup
  sim::SimTime from = cluster.simulator().now();
  cluster.run_for(paper_scale ? 8'000'000 : 6'000'000);
  auto metrics = harness::collect_metrics(cluster, from, cluster.simulator().now(),
                                          workload.ops_per_request);

  std::printf("throughput: %.0f ops/s (%.0f requests/s)\n",
              metrics.ops_per_second, metrics.requests_per_second);
  std::printf("latency: median %.0f ms, mean %.0f ms, p95 %.0f ms, p99 %.0f ms, "
              "p99.9 %.0f ms\n",
              metrics.latency.median_ms, metrics.latency.mean_ms,
              metrics.latency.p95_ms, metrics.latency.p99_ms,
              metrics.latency.p999_ms);
  std::printf("fast-path commits: %llu, slow-path: %llu, single-ack fraction: "
              "%.2f\n",
              static_cast<unsigned long long>(metrics.counter("fast_commits")),
              static_cast<unsigned long long>(metrics.counter("slow_commits")),
              metrics.fast_ack_fraction);
  std::printf("messages: %llu (%.1f MB simulated traffic)\n",
              static_cast<unsigned long long>(metrics.counter("messages_sent")),
              static_cast<double>(metrics.counter("bytes_sent")) / 1e6);

  bool agree = cluster.check_agreement();
  std::printf("agreement audit: %s\n", agree ? "OK" : "VIOLATED");
  return agree ? 0 : 1;
}
