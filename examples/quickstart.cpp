// Quickstart: a 4-replica SBFT cluster (f=1, c=0) with an authenticated
// key-value store, three clients issuing puts, and single-message execution
// acknowledgements — the whole public API in one page.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "harness/cluster.h"
#include "harness/metrics.h"
#include "kv/kv_service.h"

using namespace sbft;

int main() {
  harness::ClusterOptions opts;
  opts.kind = harness::ProtocolKind::kSbft;
  opts.f = 1;                       // tolerate 1 Byzantine replica: n = 4
  opts.c = 0;
  opts.num_clients = 3;
  opts.requests_per_client = 100;   // closed loop
  opts.topology = sim::lan_topology();
  opts.service_factory = [] { return std::make_unique<kv::KvService>(); };

  harness::Cluster cluster(std::move(opts));
  std::printf("SBFT quickstart: n=%u replicas, f=%u, c=%u, %zu clients\n",
              cluster.n(), cluster.config().f, cluster.config().c,
              cluster.num_clients());

  bool done = cluster.run_until_done(/*deadline_us=*/60'000'000);
  std::printf("clients finished: %s (simulated %.2f s, %llu events)\n",
              done ? "yes" : "NO",
              static_cast<double>(cluster.simulator().now()) / 1e6,
              static_cast<unsigned long long>(cluster.simulator().events_processed()));

  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    auto& client = cluster.client(i);
    std::vector<int64_t> latencies;
    for (const auto& rec : client.records()) latencies.push_back(rec.latency_us);
    auto summary = harness::summarize_latencies(latencies);
    std::printf("  client %zu: %llu ops, median latency %.2f ms, all via "
                "single execute-ack: %s\n",
                i, static_cast<unsigned long long>(client.completed()),
                summary.median_ms,
                client.retries() == 0 ? "yes" : "no (had retries)");
  }

  std::printf("fast-path commits: %llu, slow-path commits: %llu\n",
              static_cast<unsigned long long>(cluster.total_fast_commits()),
              static_cast<unsigned long long>(cluster.total_slow_commits()));

  // Every replica converged to the same authenticated state.
  cluster.run_for(5'000'000);
  Digest root = cluster.sbft_replica(1)->service().state_digest();
  bool agree = cluster.check_agreement();
  std::printf("state root: %s...\n", to_hex(ByteSpan{root.data(), 8}).c_str());
  std::printf("agreement audit (Theorem VI.1): %s\n", agree ? "OK" : "VIOLATED");
  return agree && done ? 0 : 1;
}
