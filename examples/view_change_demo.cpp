// View-change demo (§V-G): commit traffic in view 0, crash the primary, and
// watch the cluster elect view 1 via the dual-mode view change and resume —
// including re-committing any value that might have been decided.
//
//   $ ./examples/view_change_demo
#include <cstdio>

#include "harness/cluster.h"

using namespace sbft;

int main() {
  harness::ClusterOptions opts;
  opts.kind = harness::ProtocolKind::kSbft;
  opts.f = 1;
  opts.c = 0;
  opts.num_clients = 2;
  opts.requests_per_client = 150;
  opts.topology = sim::lan_topology();

  harness::Cluster cluster(std::move(opts));
  std::printf("n=%u cluster; primary of view 0 is replica 1\n", cluster.n());

  cluster.run_for(300'000);
  std::printf("t=%.1fs: view-0 progress: replica 2 executed %llu blocks "
              "(%llu fast commits so far)\n",
              cluster.simulator().now() / 1e6,
              static_cast<unsigned long long>(
                  cluster.sbft_replica(2)->last_executed()),
              static_cast<unsigned long long>(cluster.total_fast_commits()));

  std::printf("t=%.1fs: crashing the primary (replica 1)\n",
              cluster.simulator().now() / 1e6);
  cluster.network().crash(0);

  bool done = cluster.run_until_done(600'000'000);
  ViewNum view = 0;
  for (ReplicaId r = 2; r <= cluster.n(); ++r) {
    view = std::max(view, cluster.sbft_replica(r)->view());
  }
  std::printf("t=%.1fs: cluster now in view %llu (new primary: replica %u), "
              "view changes observed: %llu\n",
              cluster.simulator().now() / 1e6,
              static_cast<unsigned long long>(view),
              cluster.config().primary_of(view),
              static_cast<unsigned long long>(cluster.total_view_changes()));

  uint64_t completed = 0;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    completed += cluster.client(i).completed();
  }
  std::printf("clients completed %llu/300 requests across the view change: %s\n",
              static_cast<unsigned long long>(completed),
              done ? "all done" : "INCOMPLETE");

  bool agree = cluster.check_agreement();
  std::printf("agreement audit across views (Theorem VI.1): %s\n",
              agree ? "OK" : "VIOLATED");
  return agree && done ? 0 : 1;
}
