// Smart-contract ledger example (§IV, §VIII): an SBFT cluster replicating the
// EVM ledger service. Each client deploys an ERC-20-style token contract,
// mints itself a balance, and issues transfer batches; one replica also
// persists decision blocks to a real on-disk ledger file.
//
//   $ ./examples/smart_contract_ledger
#include <cstdio>
#include <filesystem>

#include "common/serde.h"
#include "crypto/sha256.h"

#include "evm/evm_service.h"
#include "evm/u256.h"
#include "harness/cluster.h"
#include "harness/eth_workload.h"
#include "storage/ledger_storage.h"

using namespace sbft;

int main() {
  harness::ClusterOptions opts;
  opts.kind = harness::ProtocolKind::kSbft;
  opts.f = 1;
  opts.num_clients = 3;
  opts.requests_per_client = 10;
  opts.topology = sim::lan_topology();
  opts.service_factory = [] { return std::make_unique<evm::EvmLedgerService>(); };

  harness::EthWorkloadOptions workload;
  workload.txs_per_request = 10;
  workload.create_fraction = 0.05;
  opts.per_client_op_factory = [workload](ClientId id) {
    return harness::eth_op_factory(id, workload);
  };

  harness::Cluster cluster(std::move(opts));
  std::printf("EVM ledger on SBFT: n=%u replicas, %zu clients, ~%u txs/request\n",
              cluster.n(), cluster.num_clients(), workload.txs_per_request);

  if (!cluster.run_until_done(240'000'000)) {
    std::printf("clients did not finish in time\n");
    return 1;
  }
  cluster.run_for(5'000'000);

  const auto& ledger = dynamic_cast<const evm::EvmLedgerService&>(
      cluster.sbft_replica(1)->service());
  std::printf("contracts created on-chain: %llu\n",
              static_cast<unsigned long long>(ledger.contracts_created()));

  // Read a token balance straight from replica 1's authenticated state.
  ClientId first_client = cluster.n();
  evm::Address token = harness::eth_token_of(first_client);
  evm::Address account = harness::eth_account_of(first_client);
  auto code = ledger.code_of(token);
  std::printf("client %u token code size: %zu bytes\n", first_client,
              code ? code->size() : 0);

  // balance slot = SHA3(account_word || 0), mirroring the contract.
  Bytes q;
  q.insert(q.end(), token.begin(), token.end());
  evm::U256 acct_word = evm::U256::from_bytes_be(ByteSpan{account.data(), 20});
  Bytes slot_preimage = acct_word.to_bytes();
  Bytes zero_word(32, 0);
  slot_preimage.insert(slot_preimage.end(), zero_word.begin(), zero_word.end());
  Digest slot = crypto::sha256(as_span(slot_preimage));
  {
    Writer w;
    w.bytes(ByteSpan{slot.data(), slot.size()});
    Bytes enc = std::move(w).take();
    q.insert(q.end(), enc.begin(), enc.end());
  }
  Bytes balance = ledger.query(as_span(q));
  std::printf("client %u on-chain balance word: %s\n", first_client,
              to_hex(as_span(balance)).c_str());

  // Replay committed blocks into a real on-disk ledger file.
  auto path = std::filesystem::temp_directory_path() / "sbft-example-ledger.bin";
  std::filesystem::remove(path);
  {
    storage::FileLedgerStorage file_ledger(path.string());
    auto* replica = cluster.sbft_replica(1);
    for (SeqNum s = 1; s <= replica->last_executed(); ++s) {
      if (auto digest = replica->committed_digest_of(s)) {
        file_ledger.append_block(s, ByteSpan{digest->data(), digest->size()});
      }
    }
    file_ledger.sync();
    std::printf("persisted %llu block digests to %s\n",
                static_cast<unsigned long long>(file_ledger.block_count()),
                path.string().c_str());
  }

  bool agree = cluster.check_agreement();
  std::printf("agreement audit: %s\n", agree ? "OK" : "VIOLATED");
  std::filesystem::remove(path);
  return agree ? 0 : 1;
}
