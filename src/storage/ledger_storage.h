// Ledger persistence (§VIII: the paper persists the blockchain through
// RocksDB; DESIGN.md §3 substitutes an append-only log). Replicas write each
// committed decision block; the file-backed implementation exercises a real
// disk path in examples/tests, while the simulator charges persistence cost
// through the cost model.
#pragma once

#include <cstdio>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace sbft::storage {

using SeqNum = uint64_t;

class ILedgerStorage {
 public:
  virtual ~ILedgerStorage() = default;
  /// Persists the encoded decision block at sequence `s` (idempotent).
  virtual void append_block(SeqNum s, ByteSpan encoded) = 0;
  virtual std::optional<Bytes> read_block(SeqNum s) const = 0;
  /// Highest sequence number stored, or 0 if empty.
  virtual SeqNum last_seq() const = 0;
  virtual uint64_t block_count() const = 0;
  /// Flushes buffered writes to stable storage.
  virtual void sync() {}
};

class MemoryLedgerStorage final : public ILedgerStorage {
 public:
  void append_block(SeqNum s, ByteSpan encoded) override;
  std::optional<Bytes> read_block(SeqNum s) const override;
  SeqNum last_seq() const override;
  uint64_t block_count() const override { return blocks_.size(); }

 private:
  std::map<SeqNum, Bytes> blocks_;
};

/// Append-only file of [u64 seq][u32 len][payload] records with an in-memory
/// offset index rebuilt on open. Re-appending an existing sequence number is
/// a no-op (records are immutable once written).
class FileLedgerStorage final : public ILedgerStorage {
 public:
  explicit FileLedgerStorage(const std::string& path);
  ~FileLedgerStorage() override;

  FileLedgerStorage(const FileLedgerStorage&) = delete;
  FileLedgerStorage& operator=(const FileLedgerStorage&) = delete;

  void append_block(SeqNum s, ByteSpan encoded) override;
  std::optional<Bytes> read_block(SeqNum s) const override;
  SeqNum last_seq() const override;
  uint64_t block_count() const override { return index_.size(); }
  void sync() override;

 private:
  void load_index();

  std::string path_;
  std::FILE* file_ = nullptr;
  std::map<SeqNum, std::pair<long, uint32_t>> index_;  // seq -> (offset, len)
};

}  // namespace sbft::storage
