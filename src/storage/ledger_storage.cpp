#include "storage/ledger_storage.h"

#include <unistd.h>

#include <stdexcept>

#include "common/check.h"

namespace sbft::storage {

void MemoryLedgerStorage::append_block(SeqNum s, ByteSpan encoded) {
  blocks_.emplace(s, to_bytes(encoded));
}

std::optional<Bytes> MemoryLedgerStorage::read_block(SeqNum s) const {
  auto it = blocks_.find(s);
  if (it == blocks_.end()) return std::nullopt;
  return it->second;
}

SeqNum MemoryLedgerStorage::last_seq() const {
  return blocks_.empty() ? 0 : blocks_.rbegin()->first;
}

FileLedgerStorage::FileLedgerStorage(const std::string& path) : path_(path) {
  // Open for read/append, creating if needed.
  file_ = std::fopen(path.c_str(), "ab+");
  if (!file_) throw std::runtime_error("FileLedgerStorage: cannot open " + path);
  load_index();
}

FileLedgerStorage::~FileLedgerStorage() {
  if (file_) std::fclose(file_);
}

void FileLedgerStorage::load_index() {
  // A crash can leave a torn tail record (partial header or payload). Index
  // only complete records and truncate the tail away so the next append lands
  // at a record boundary instead of extending the garbage.
  std::fseek(file_, 0, SEEK_END);
  long file_size = std::ftell(file_);
  std::rewind(file_);
  long good_end = 0;
  for (;;) {
    uint8_t header[12];
    long offset = std::ftell(file_);
    if (offset + static_cast<long>(sizeof(header)) > file_size) break;
    if (std::fread(header, 1, sizeof(header), file_) != sizeof(header)) break;
    SeqNum s = 0;
    for (int i = 0; i < 8; ++i) s |= static_cast<SeqNum>(header[i]) << (8 * i);
    uint32_t len = 0;
    for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(header[8 + i]) << (8 * i);
    if (offset + 12 + static_cast<long>(len) > file_size) break;  // torn payload
    index_[s] = {offset + 12, len};
    good_end = offset + 12 + static_cast<long>(len);
    if (std::fseek(file_, static_cast<long>(len), SEEK_CUR) != 0) break;
  }
  if (good_end < file_size) {
    std::fflush(file_);
    if (::ftruncate(fileno(file_), good_end) != 0) {
      throw std::runtime_error("FileLedgerStorage: cannot truncate torn tail of " +
                               path_);
    }
  }
  // Re-sync the write offset to the (possibly truncated) end so appends start
  // on a record boundary.
  std::fseek(file_, good_end, SEEK_SET);
}

void FileLedgerStorage::append_block(SeqNum s, ByteSpan encoded) {
  if (index_.count(s)) return;  // immutable records: duplicate appends ignored
  std::fseek(file_, 0, SEEK_END);
  long offset = std::ftell(file_);
  uint8_t header[12];
  for (int i = 0; i < 8; ++i) header[i] = static_cast<uint8_t>(s >> (8 * i));
  uint32_t len = static_cast<uint32_t>(encoded.size());
  for (int i = 0; i < 4; ++i) header[8 + i] = static_cast<uint8_t>(len >> (8 * i));
  SBFT_CHECK(std::fwrite(header, 1, sizeof(header), file_) == sizeof(header));
  if (len > 0)
    SBFT_CHECK(std::fwrite(encoded.data(), 1, encoded.size(), file_) == encoded.size());
  index_[s] = {offset + 12, len};
}

std::optional<Bytes> FileLedgerStorage::read_block(SeqNum s) const {
  auto it = index_.find(s);
  if (it == index_.end()) return std::nullopt;
  std::FILE* f = file_;
  std::fflush(f);
  if (std::fseek(f, it->second.first, SEEK_SET) != 0) return std::nullopt;
  Bytes out(it->second.second);
  if (!out.empty() && std::fread(out.data(), 1, out.size(), f) != out.size())
    return std::nullopt;
  std::fseek(f, 0, SEEK_END);
  return out;
}

SeqNum FileLedgerStorage::last_seq() const {
  return index_.empty() ? 0 : index_.rbegin()->first;
}

void FileLedgerStorage::sync() { std::fflush(file_); }

}  // namespace sbft::storage
