// Calibrated per-operation CPU costs, in simulated microseconds.
//
// Defaults approximate the paper's testbed (32-VCPU Intel Broadwell E5-2686v4
// @2.3GHz) and published 2018-era numbers for the primitives the paper uses:
// RSA-2048 (client request signatures, [31]) and threshold BLS over BN-P254
// ([21][22]): sign ~0.4ms, pairing-based verification ~1ms, share combination
// by interpolation in the exponent ~60us per share (parallelized in the
// paper's implementation, §VIII), and cheap n-out-of-n group-signature
// combination in the failure-free fast path (§VIII).
#pragma once

#include <cstdint>

namespace sbft::sim {

struct CostModel {
  // Hashing: base + per-byte (SHA-256 on one core).
  double hash_base_us = 0.3;
  double hash_per_byte_us = 0.003;

  // RSA-2048 (clients sign requests; replicas verify them). Costs reflect
  // the effective per-replica compute of the paper's deployment: ~20 replica
  // VMs sharing a 32-VCPU machine, i.e. ~1.5 effective cores per replica.
  int64_t rsa_sign_us = 2500;
  int64_t rsa_verify_us = 120;

  // Threshold BLS (BN-P254).
  int64_t bls_sign_share_us = 380;
  int64_t bls_verify_share_us = 1000;   // one pairing
  int64_t bls_verify_combined_us = 1000;
  // Batch verification of k shares costs ~one pairing plus a small per-share
  // term (§III: "batch verification ... at nearly the same cost of one").
  int64_t bls_batch_verify_base_us = 1000;
  int64_t bls_batch_verify_per_share_us = 40;
  // Combining k shares: Lagrange interpolation in the exponent.
  int64_t bls_combine_per_share_us = 55;
  // n-out-of-n group-signature combination (fast path, no failures): a
  // multiplication per share instead of an exponentiation.
  int64_t bls_group_combine_per_share_us = 3;

  // Service execution.
  int64_t kv_op_us = 2;                 // key-value put/get
  double evm_gas_per_us = 120.0;        // EVM interpreter speed (gas/us)
  int64_t persist_per_kb_us = 25;       // ledger write (RocksDB-style)

  // Per-message envelope handling (deserialization, dispatch, MAC check on
  // the authenticated TLS channel).
  int64_t msg_overhead_us = 15;

  // CPU lanes per node. Lane 0 runs handlers serially; extra lanes absorb
  // offloaded signature verification/combination, modelling the paper's
  // parallelized crypto across a replica's cores (§VIII). 1 = the classic
  // fully-serial node; harness options can override per replica.
  uint32_t cores_per_replica = 1;

  int64_t hash_us(uint64_t bytes) const {
    return static_cast<int64_t>(hash_base_us + hash_per_byte_us * static_cast<double>(bytes));
  }
  int64_t batch_verify_us(uint64_t shares) const {
    return bls_batch_verify_base_us +
           bls_batch_verify_per_share_us * static_cast<int64_t>(shares);
  }
  int64_t combine_us(uint64_t shares, bool group_mode) const {
    return static_cast<int64_t>(shares) *
           (group_mode ? bls_group_combine_per_share_us : bls_combine_per_share_us);
  }
  int64_t evm_us(uint64_t gas) const {
    return static_cast<int64_t>(static_cast<double>(gas) / evm_gas_per_us) + 1;
  }
  int64_t persist_us(uint64_t bytes) const {
    return persist_per_kb_us * static_cast<int64_t>(bytes / 1024 + 1);
  }
};

}  // namespace sbft::sim
