// Simulated network and node runtime.
//
// Nodes (replicas and clients) are actors on a shared discrete-event
// simulator. The model captures exactly the resources the paper's evaluation
// exercises on AWS:
//   * per-node CPU lanes (lane 0 runs handlers sequentially — message
//     dispatch and state mutation stay serial; lanes 1..k-1 absorb work
//     explicitly offloaded by handlers, modelling the paper's parallelized
//     signature verification across a replica's cores — see
//     docs/performance.md),
//   * per-node uplink/downlink serialization (a broadcast is n unicasts that
//     serialize on the sender's uplink — this is what makes all-to-all
//     quadratic patterns hurt and collector patterns win),
//   * region-to-region propagation latency with jitter,
//   * fault injection: crash, straggler slowdown, message drop, partitions.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "proto/message.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"

namespace sbft::sim {

struct Topology {
  std::string name;
  // One-way propagation latency between regions, microseconds.
  std::vector<std::vector<int64_t>> region_latency_us;
  int64_t jitter_us = 500;           // uniform [0, jitter) added per message
  double bandwidth_bytes_per_us = 50.0;  // per-node up/downlink (~400 Mbit/s)

  uint32_t num_regions() const { return static_cast<uint32_t>(region_latency_us.size()); }
};

/// Single-region LAN (unit tests): 100us one-way, high bandwidth.
Topology lan_topology();
/// 5 regions / 2 AZ per region on one continent (§IX "Continent scale WAN").
Topology continent_topology();
/// 15 regions across all continents (§IX "World scale WAN").
Topology world_topology();

class Network;

/// Handler-scoped context: buffers sends and timers so that everything a
/// handler emits departs when its charged CPU time completes.
class ActorContext {
 public:
  SimTime now() const { return start_; }
  const CostModel& costs() const;
  Rng& rng();

  /// Adds simulated CPU time to this handler.
  void charge(int64_t us) { charged_ += us; }

  /// Hands `cost_us` of parallelizable work (signature verification, share
  /// combination) to a worker lane; `done` continues the protocol state
  /// machine as a fresh lane-0 handler when the work completes. On a
  /// single-lane node this degenerates to charge(cost_us) + done(*this)
  /// inline, so engine code restructured around offload() is byte-identical
  /// to the serial model at cores=1. Completions are incarnation-gated: a
  /// callback queued before a crash+restart never fires.
  void offload(int64_t cost_us, std::function<void(ActorContext&)> done);

  void send(NodeId to, MessagePtr msg) { sends_.push_back({to, std::move(msg)}); }
  void multicast(const std::vector<NodeId>& to, MessagePtr msg);
  /// Schedules on_timer(id) `delay` after this handler completes.
  void set_timer(int64_t delay_us, uint64_t id) { timers_.push_back({delay_us, id}); }

 private:
  friend class Network;
  ActorContext(Network& net, NodeId self, SimTime start)
      : net_(net), self_(self), start_(start) {}

  struct PendingSend {
    NodeId to;
    MessagePtr msg;
  };
  struct PendingTimer {
    int64_t delay_us;
    uint64_t id;
  };
  struct PendingOffload {
    int64_t cost_us;
    std::function<void(ActorContext&)> done;
  };

  Network& net_;
  NodeId self_;
  SimTime start_;
  int64_t charged_ = 0;
  std::vector<PendingSend> sends_;
  std::vector<PendingTimer> timers_;
  std::vector<PendingOffload> offloads_;
};

class IActor {
 public:
  virtual ~IActor() = default;
  virtual void on_start(ActorContext&) {}
  virtual void on_message(NodeId from, const Message& msg, ActorContext&) = 0;
  virtual void on_timer(uint64_t, ActorContext&) {}
};

struct MessageStats {
  uint64_t count = 0;
  uint64_t bytes = 0;
};

class Network {
 public:
  Network(Simulator& sim, Topology topology, CostModel costs, uint64_t seed = 1);

  /// Registers an actor; nodes are placed round-robin across regions unless a
  /// region is given. Returns the node id.
  NodeId add_node(IActor* actor);
  NodeId add_node(IActor* actor, uint32_t region);
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }

  /// Delivers on_start to every node at time 0.
  void start();
  /// Delivers on_start to one node at the current simulated time — for nodes
  /// added after start() (e.g. a replica joining via reconfiguration).
  void start_node(NodeId node);

  // --- fault injection -------------------------------------------------------
  void crash(NodeId node);
  bool crashed(NodeId node) const { return nodes_[node].crashed; }
  /// Re-admits a crashed node: clears the crash flag, bumps the node's
  /// incarnation (pending timers from the dead incarnation never fire; in-
  /// flight *messages* still arrive — the network outlives the process), and
  /// delivers on_start at the current simulated time. Pass `actor` to swap in
  /// a freshly constructed actor (a restarted replica rebuilding itself from
  /// its storage); nullptr keeps the existing object.
  void restart(NodeId node, IActor* actor = nullptr);
  /// Restart count of the node (0 = original incarnation).
  uint64_t incarnation(NodeId node) const { return nodes_[node].incarnation; }
  /// Straggler: multiplies the node's CPU costs on every lane (1.0 = nominal).
  void set_cpu_factor(NodeId node, double factor);
  /// Resizes the node's CPU to `k` lanes (k >= 1). Lane 0 stays the serial
  /// handler lane; lanes 1..k-1 serve offload() work. New nodes default to
  /// CostModel::cores_per_replica lanes.
  void set_cores(NodeId node, uint32_t k);
  uint32_t cores(NodeId node) const {
    return static_cast<uint32_t>(nodes_[node].lane_busy.size());
  }
  /// Queues `cost_us` of work on the node's earliest-free worker lane at the
  /// current simulated time; `done` runs as a lane-0 handler on completion.
  /// On a single-lane node the work runs (and is charged) on lane 0. Engines
  /// should prefer ActorContext::offload — this entry point exists for tests
  /// and for work initiated outside a handler.
  void offload(NodeId node, int64_t cost_us,
               std::function<void(ActorContext&)> done);
  /// Extra one-way latency for all messages to/from this node.
  void set_extra_latency(NodeId node, int64_t us);
  /// Uniform message drop probability (applies to every link).
  void set_drop_probability(double p) { drop_probability_ = p; }
  /// Cuts / restores the pair link (both directions).
  void disconnect(NodeId a, NodeId b);
  void reconnect(NodeId a, NodeId b);
  /// Directional blackhole: every message from `from` to `to` is dropped
  /// (the reverse direction stays up). Models asymmetric link loss and
  /// network-level censorship — e.g. a primary that never hears one client.
  void block_link(NodeId from, NodeId to);
  void unblock_link(NodeId from, NodeId to);
  /// Extra one-way propagation delay on the directed link `from -> to`
  /// (0 removes the entry). Composes with region latency and per-node
  /// extra latency.
  void set_link_extra_delay(NodeId from, NodeId to, int64_t us);
  /// Random reordering: each transmitted message independently receives, with
  /// `probability`, an extra uniform delay in [0, max_extra_us) — enough to
  /// overtake later traffic on the same link. probability 0 disables the
  /// feature and draws nothing from the RNG, so runs without it are
  /// byte-identical to the pre-knob model.
  void set_reorder(double probability, int64_t max_extra_us);
  /// Clears every link-level fault in one stroke: pair cuts, directional
  /// blocks, per-link delays, the reorder knob, and the drop probability.
  /// Per-node faults (crash, cpu factor, extra latency) are untouched.
  void clear_link_faults();

  /// Test hook: injects a message from `from` to `to` at the current
  /// simulated time, as if `from` had sent it from a handler (normal latency,
  /// bandwidth, and drop rules apply). Lets scenario tests replay a specific
  /// message — e.g. a duplicate client request against a restarted replica —
  /// without scripting a full actor.
  void inject(NodeId from, NodeId to, MessagePtr msg);

  // --- statistics ------------------------------------------------------------
  const std::array<MessageStats, std::variant_size_v<Message>>& stats_by_type() const {
    return stats_;
  }
  MessageStats total_stats() const;
  void reset_stats();

  const CostModel& costs() const { return costs_; }
  Simulator& simulator() { return sim_; }
  Rng& node_rng(NodeId node) { return nodes_[node].rng; }
  /// Total charged CPU across all lanes (utilization probe).
  int64_t cpu_used_us(NodeId node) const;
  /// Cumulative charged CPU per lane (index 0 = serial handler lane).
  /// Survives restart: utilization is a property of the node, not the
  /// incarnation.
  const std::vector<int64_t>& lane_used_us(NodeId node) const {
    return nodes_[node].lane_used_us;
  }
  /// Number of offloads dispatched to worker lanes (plus inline-run offloads
  /// on single-lane nodes).
  uint64_t offloads_run(NodeId node) const { return nodes_[node].offloads_run; }
  uint64_t handlers_run(NodeId node) const { return nodes_[node].handlers_run; }
  size_t cpu_queue_depth(NodeId node) const { return nodes_[node].cpu_queue.size(); }

 private:
  friend class ActorContext;

  using Handler = std::function<void(ActorContext&)>;

  struct NodeState {
    IActor* actor = nullptr;
    uint32_t region = 0;
    bool crashed = false;
    double cpu_factor = 1.0;
    int64_t extra_latency_us = 0;
    // Per-lane busy-until timestamps. Lane 0 is the serial handler lane
    // (message dispatch, state mutation); lanes 1..k-1 serve offload() work,
    // dispatched earliest-free (ties: lowest index).
    std::vector<SimTime> lane_busy{0};
    SimTime uplink_busy = 0;
    SimTime downlink_busy = 0;
    // FIFO of handlers waiting for the node's serial lane.
    std::deque<Handler> cpu_queue;
    bool drain_scheduled = false;
    uint64_t incarnation = 0;  // bumped by restart(); gates stale timers
    std::vector<int64_t> lane_used_us{0};  // cumulative charged CPU per lane
    uint64_t offloads_run = 0;
    uint64_t handlers_run = 0;
    Rng rng{0};
  };

  void transmit(NodeId from, NodeId to, MessagePtr msg, size_t wire_size,
                SimTime depart);
  void deliver(NodeId from, NodeId to, MessagePtr msg, size_t wire_size,
               SimTime arrival);
  void run_handler(NodeId node, SimTime at, Handler fn);
  void execute_handler(NodeId node, SimTime at, const Handler& fn);
  void dispatch_offload(NodeId node, int64_t cost_us, Handler done,
                        SimTime earliest);
  void schedule_drain(NodeId node, SimTime at);
  void drain(NodeId node);
  void flush(NodeId node, ActorContext& ctx);

  Simulator& sim_;
  Topology topology_;
  CostModel costs_;
  std::vector<NodeState> nodes_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  std::set<std::pair<NodeId, NodeId>> blocked_links_;  // directional
  std::map<std::pair<NodeId, NodeId>, int64_t> link_extra_delay_;
  double reorder_probability_ = 0.0;
  int64_t reorder_max_extra_us_ = 0;
  double drop_probability_ = 0.0;
  Rng link_rng_;
  std::array<MessageStats, std::variant_size_v<Message>> stats_{};
};

}  // namespace sbft::sim
