// Simulated network and node runtime.
//
// Nodes (replicas and clients) are actors on a shared discrete-event
// simulator. The model captures exactly the resources the paper's evaluation
// exercises on AWS:
//   * per-node sequential CPU (handlers charge cost-model time; a saturated
//     node queues work),
//   * per-node uplink/downlink serialization (a broadcast is n unicasts that
//     serialize on the sender's uplink — this is what makes all-to-all
//     quadratic patterns hurt and collector patterns win),
//   * region-to-region propagation latency with jitter,
//   * fault injection: crash, straggler slowdown, message drop, partitions.
#pragma once

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "proto/message.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"

namespace sbft::sim {

struct Topology {
  std::string name;
  // One-way propagation latency between regions, microseconds.
  std::vector<std::vector<int64_t>> region_latency_us;
  int64_t jitter_us = 500;           // uniform [0, jitter) added per message
  double bandwidth_bytes_per_us = 50.0;  // per-node up/downlink (~400 Mbit/s)

  uint32_t num_regions() const { return static_cast<uint32_t>(region_latency_us.size()); }
};

/// Single-region LAN (unit tests): 100us one-way, high bandwidth.
Topology lan_topology();
/// 5 regions / 2 AZ per region on one continent (§IX "Continent scale WAN").
Topology continent_topology();
/// 15 regions across all continents (§IX "World scale WAN").
Topology world_topology();

class Network;

/// Handler-scoped context: buffers sends and timers so that everything a
/// handler emits departs when its charged CPU time completes.
class ActorContext {
 public:
  SimTime now() const { return start_; }
  const CostModel& costs() const;
  Rng& rng();

  /// Adds simulated CPU time to this handler.
  void charge(int64_t us) { charged_ += us; }

  void send(NodeId to, MessagePtr msg) { sends_.push_back({to, std::move(msg)}); }
  void multicast(const std::vector<NodeId>& to, MessagePtr msg);
  /// Schedules on_timer(id) `delay` after this handler completes.
  void set_timer(int64_t delay_us, uint64_t id) { timers_.push_back({delay_us, id}); }

 private:
  friend class Network;
  ActorContext(Network& net, NodeId self, SimTime start)
      : net_(net), self_(self), start_(start) {}

  struct PendingSend {
    NodeId to;
    MessagePtr msg;
  };
  struct PendingTimer {
    int64_t delay_us;
    uint64_t id;
  };

  Network& net_;
  NodeId self_;
  SimTime start_;
  int64_t charged_ = 0;
  std::vector<PendingSend> sends_;
  std::vector<PendingTimer> timers_;
};

class IActor {
 public:
  virtual ~IActor() = default;
  virtual void on_start(ActorContext&) {}
  virtual void on_message(NodeId from, const Message& msg, ActorContext&) = 0;
  virtual void on_timer(uint64_t, ActorContext&) {}
};

struct MessageStats {
  uint64_t count = 0;
  uint64_t bytes = 0;
};

class Network {
 public:
  Network(Simulator& sim, Topology topology, CostModel costs, uint64_t seed = 1);

  /// Registers an actor; nodes are placed round-robin across regions unless a
  /// region is given. Returns the node id.
  NodeId add_node(IActor* actor);
  NodeId add_node(IActor* actor, uint32_t region);
  uint32_t num_nodes() const { return static_cast<uint32_t>(nodes_.size()); }

  /// Delivers on_start to every node at time 0.
  void start();
  /// Delivers on_start to one node at the current simulated time — for nodes
  /// added after start() (e.g. a replica joining via reconfiguration).
  void start_node(NodeId node);

  // --- fault injection -------------------------------------------------------
  void crash(NodeId node);
  bool crashed(NodeId node) const { return nodes_[node].crashed; }
  /// Re-admits a crashed node: clears the crash flag, bumps the node's
  /// incarnation (pending timers from the dead incarnation never fire; in-
  /// flight *messages* still arrive — the network outlives the process), and
  /// delivers on_start at the current simulated time. Pass `actor` to swap in
  /// a freshly constructed actor (a restarted replica rebuilding itself from
  /// its storage); nullptr keeps the existing object.
  void restart(NodeId node, IActor* actor = nullptr);
  /// Restart count of the node (0 = original incarnation).
  uint64_t incarnation(NodeId node) const { return nodes_[node].incarnation; }
  /// Straggler: multiplies the node's CPU costs (1.0 = nominal).
  void set_cpu_factor(NodeId node, double factor);
  /// Extra one-way latency for all messages to/from this node.
  void set_extra_latency(NodeId node, int64_t us);
  /// Uniform message drop probability (applies to every link).
  void set_drop_probability(double p) { drop_probability_ = p; }
  /// Cuts / restores the pair link (both directions).
  void disconnect(NodeId a, NodeId b);
  void reconnect(NodeId a, NodeId b);

  /// Test hook: injects a message from `from` to `to` at the current
  /// simulated time, as if `from` had sent it from a handler (normal latency,
  /// bandwidth, and drop rules apply). Lets scenario tests replay a specific
  /// message — e.g. a duplicate client request against a restarted replica —
  /// without scripting a full actor.
  void inject(NodeId from, NodeId to, MessagePtr msg);

  // --- statistics ------------------------------------------------------------
  const std::array<MessageStats, std::variant_size_v<Message>>& stats_by_type() const {
    return stats_;
  }
  MessageStats total_stats() const;
  void reset_stats();

  const CostModel& costs() const { return costs_; }
  Simulator& simulator() { return sim_; }
  Rng& node_rng(NodeId node) { return nodes_[node].rng; }
  int64_t cpu_used_us(NodeId node) const { return nodes_[node].cpu_used_us; }
  uint64_t handlers_run(NodeId node) const { return nodes_[node].handlers_run; }
  size_t cpu_queue_depth(NodeId node) const { return nodes_[node].cpu_queue.size(); }

 private:
  friend class ActorContext;

  using Handler = std::function<void(ActorContext&)>;

  struct NodeState {
    IActor* actor = nullptr;
    uint32_t region = 0;
    bool crashed = false;
    double cpu_factor = 1.0;
    int64_t extra_latency_us = 0;
    SimTime cpu_busy = 0;
    SimTime uplink_busy = 0;
    SimTime downlink_busy = 0;
    // FIFO of handlers waiting for the node's (sequential) CPU.
    std::deque<Handler> cpu_queue;
    bool drain_scheduled = false;
    uint64_t incarnation = 0;  // bumped by restart(); gates stale timers
    int64_t cpu_used_us = 0;   // cumulative charged CPU (utilization probe)
    uint64_t handlers_run = 0;
    Rng rng{0};
  };

  void transmit(NodeId from, NodeId to, MessagePtr msg, size_t wire_size,
                SimTime depart);
  void deliver(NodeId from, NodeId to, MessagePtr msg, size_t wire_size,
               SimTime arrival);
  void run_handler(NodeId node, SimTime at, Handler fn);
  void execute_handler(NodeId node, SimTime at, const Handler& fn);
  void schedule_drain(NodeId node, SimTime at);
  void drain(NodeId node);
  void flush(NodeId node, ActorContext& ctx);

  Simulator& sim_;
  Topology topology_;
  CostModel costs_;
  std::vector<NodeState> nodes_;
  std::set<std::pair<NodeId, NodeId>> cut_links_;
  double drop_probability_ = 0.0;
  Rng link_rng_;
  std::array<MessageStats, std::variant_size_v<Message>> stats_{};
};

}  // namespace sbft::sim
