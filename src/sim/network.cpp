#include "sim/network.h"

#include <algorithm>
#include <cmath>

namespace sbft::sim {

// ---------------------------------------------------------------------------
// Topologies
//
// Latency values are one-way, synthesized from typical AWS inter-region RTTs
// (see EXPERIMENTS.md for the calibration notes).

Topology lan_topology() {
  Topology t;
  t.name = "lan";
  t.region_latency_us = {{100}};
  t.jitter_us = 50;
  t.bandwidth_bytes_per_us = 1250.0;  // 10 Gbit/s
  return t;
}

Topology continent_topology() {
  // 5 regions, 2 availability zones each => 10 zones. Zones in the same
  // region are ~1ms apart; cross-region one-way latencies 6..22 ms
  // (us-east <-> us-west scale distances).
  Topology t;
  t.name = "continent";
  const int R = 5;
  // Base one-way latency between distinct regions (ms).
  const int64_t base[R][R] = {
      {0, 8, 12, 18, 22},
      {8, 0, 6, 14, 18},
      {12, 6, 0, 10, 14},
      {18, 14, 10, 0, 8},
      {22, 18, 14, 8, 0},
  };
  const int Z = 2 * R;
  t.region_latency_us.assign(Z, std::vector<int64_t>(Z, 0));
  for (int a = 0; a < Z; ++a) {
    for (int b = 0; b < Z; ++b) {
      if (a == b) {
        t.region_latency_us[a][b] = 150;  // same zone
      } else if (a / 2 == b / 2) {
        t.region_latency_us[a][b] = 1000;  // sibling zone, same region
      } else {
        t.region_latency_us[a][b] = base[a / 2][b / 2] * 1000;
      }
    }
  }
  t.jitter_us = 1000;
  t.bandwidth_bytes_per_us = 1000.0;  // ~8 Gbit/s effective per node
  return t;
}

Topology world_topology() {
  // 15 regions spread over all continents (§IX). One-way latencies are
  // derived from a coarse geographic ring: us-e, us-w, ca, br, eu-w, eu-c,
  // eu-n, me, in, sg, jp, kr, au, za, cn.
  Topology t;
  t.name = "world";
  const int R = 15;
  // Coordinates on a coarse "longitude" scale used to synthesize distances.
  const double x[R] = {0, 3, 1, 4, 8, 9, 9.5, 12, 14, 16, 18, 17.5, 17, 11, 16.5};
  const double y[R] = {4, 4, 5, -1, 5, 5, 6, 3, 2, 0, 4, 4, -3, -2, 4};
  t.region_latency_us.assign(R, std::vector<int64_t>(R, 0));
  for (int a = 0; a < R; ++a) {
    for (int b = 0; b < R; ++b) {
      if (a == b) {
        t.region_latency_us[a][b] = 300;
        continue;
      }
      double dx = x[a] - x[b];
      double dy = y[a] - y[b];
      double dist = std::sqrt(dx * dx + dy * dy);
      // ~7ms of one-way latency per coordinate unit + 5ms fixed overhead;
      // yields ~12..140ms one-way, matching world-scale WAN measurements.
      t.region_latency_us[a][b] = static_cast<int64_t>(5000 + 7000 * dist);
    }
  }
  t.jitter_us = 2000;
  t.bandwidth_bytes_per_us = 1000.0;
  return t;
}

// ---------------------------------------------------------------------------
// ActorContext

const CostModel& ActorContext::costs() const { return net_.costs(); }
Rng& ActorContext::rng() { return net_.node_rng(self_); }

void ActorContext::multicast(const std::vector<NodeId>& to, MessagePtr msg) {
  for (NodeId t : to) send(t, msg);
}

void ActorContext::offload(int64_t cost_us,
                           std::function<void(ActorContext&)> done) {
  if (net_.cores(self_) <= 1) {
    // Single lane: the "offloaded" work runs right here, serially, exactly
    // as the pre-lane model charged it.
    ++net_.nodes_[self_].offloads_run;
    charge(cost_us);
    done(*this);
    return;
  }
  // Buffered like sends/timers: the work starts when this handler's charged
  // CPU completes, on the earliest-free worker lane (see Network::flush).
  offloads_.push_back({cost_us, std::move(done)});
}

// ---------------------------------------------------------------------------
// Network

Network::Network(Simulator& sim, Topology topology, CostModel costs, uint64_t seed)
    : sim_(sim), topology_(std::move(topology)), costs_(costs), link_rng_(seed) {}

NodeId Network::add_node(IActor* actor) {
  return add_node(actor, num_nodes() % topology_.num_regions());
}

NodeId Network::add_node(IActor* actor, uint32_t region) {
  SBFT_CHECK(region < topology_.num_regions());
  NodeState state;
  state.actor = actor;
  state.region = region;
  state.rng = link_rng_.fork();
  uint32_t lanes = std::max<uint32_t>(1, costs_.cores_per_replica);
  state.lane_busy.assign(lanes, 0);
  state.lane_used_us.assign(lanes, 0);
  nodes_.push_back(std::move(state));
  return static_cast<NodeId>(nodes_.size() - 1);
}

void Network::start() {
  for (NodeId id = 0; id < num_nodes(); ++id) {
    sim_.schedule(0, [this, id] {
      run_handler(id, sim_.now(),
                  [this, id](ActorContext& ctx) { nodes_[id].actor->on_start(ctx); });
    });
  }
}

void Network::start_node(NodeId node) {
  sim_.schedule(sim_.now(), [this, node] {
    run_handler(node, sim_.now(),
                [this, node](ActorContext& ctx) { nodes_[node].actor->on_start(ctx); });
  });
}

void Network::crash(NodeId node) { nodes_[node].crashed = true; }

void Network::restart(NodeId node, IActor* actor) {
  NodeState& state = nodes_[node];
  SBFT_CHECK(state.crashed);
  state.crashed = false;
  ++state.incarnation;
  if (actor) state.actor = actor;
  // Runtime state died with the process; every lane and the link are idle
  // when it boots. Pending offload completions from the dead incarnation are
  // dropped by the incarnation gate when they fire.
  state.cpu_queue.clear();
  for (SimTime& busy : state.lane_busy) busy = sim_.now();
  state.uplink_busy = sim_.now();
  state.downlink_busy = sim_.now();
  sim_.schedule(sim_.now(), [this, node] {
    run_handler(node, sim_.now(),
                [this, node](ActorContext& ctx) { nodes_[node].actor->on_start(ctx); });
  });
}

void Network::set_cpu_factor(NodeId node, double factor) {
  nodes_[node].cpu_factor = factor;
}

void Network::set_cores(NodeId node, uint32_t k) {
  SBFT_CHECK(k >= 1);
  NodeState& state = nodes_[node];
  state.lane_busy.resize(k, 0);
  state.lane_used_us.resize(k, 0);
}

int64_t Network::cpu_used_us(NodeId node) const {
  int64_t total = 0;
  for (int64_t used : nodes_[node].lane_used_us) total += used;
  return total;
}

void Network::offload(NodeId node, int64_t cost_us,
                      std::function<void(ActorContext&)> done) {
  NodeState& state = nodes_[node];
  if (state.crashed) return;
  if (state.lane_busy.size() <= 1) {
    // Single lane: queue the work as an ordinary serial handler.
    ++state.offloads_run;
    run_handler(node, sim_.now(),
                [cost_us, done = std::move(done)](ActorContext& ctx) {
                  ctx.charge(cost_us);
                  done(ctx);
                });
    return;
  }
  dispatch_offload(node, cost_us, std::move(done), sim_.now());
}

void Network::dispatch_offload(NodeId node, int64_t cost_us, Handler done,
                               SimTime earliest) {
  NodeState& state = nodes_[node];
  // Earliest-free worker lane; ties break to the lowest index (deterministic).
  size_t lane = 1;
  for (size_t l = 2; l < state.lane_busy.size(); ++l) {
    if (state.lane_busy[l] < state.lane_busy[lane]) lane = l;
  }
  SimTime begin = std::max(earliest, state.lane_busy[lane]);
  int64_t scaled =
      static_cast<int64_t>(static_cast<double>(cost_us) * state.cpu_factor);
  SimTime finish = begin + scaled;
  state.lane_busy[lane] = finish;
  state.lane_used_us[lane] += scaled;
  ++state.offloads_run;
  uint64_t inc = state.incarnation;
  sim_.schedule(finish, [this, node, inc, done = std::move(done)]() mutable {
    // The completion continues the protocol state machine, so it re-enters
    // the serial lane — and dies if the incarnation that queued it did.
    if (nodes_[node].crashed || nodes_[node].incarnation != inc) return;
    run_handler(node, sim_.now(), std::move(done));
  });
}

void Network::set_extra_latency(NodeId node, int64_t us) {
  nodes_[node].extra_latency_us = us;
}

void Network::disconnect(NodeId a, NodeId b) {
  cut_links_.insert({std::min(a, b), std::max(a, b)});
}

void Network::reconnect(NodeId a, NodeId b) {
  cut_links_.erase({std::min(a, b), std::max(a, b)});
}

void Network::block_link(NodeId from, NodeId to) {
  blocked_links_.insert({from, to});
}

void Network::unblock_link(NodeId from, NodeId to) {
  blocked_links_.erase({from, to});
}

void Network::set_link_extra_delay(NodeId from, NodeId to, int64_t us) {
  if (us <= 0) {
    link_extra_delay_.erase({from, to});
  } else {
    link_extra_delay_[{from, to}] = us;
  }
}

void Network::set_reorder(double probability, int64_t max_extra_us) {
  reorder_probability_ = probability;
  reorder_max_extra_us_ = max_extra_us;
}

void Network::clear_link_faults() {
  cut_links_.clear();
  blocked_links_.clear();
  link_extra_delay_.clear();
  reorder_probability_ = 0.0;
  reorder_max_extra_us_ = 0;
  drop_probability_ = 0.0;
}

void Network::inject(NodeId from, NodeId to, MessagePtr msg) {
  size_t wire_size = message_wire_size(*msg);
  stats_[msg->index()].count += 1;
  stats_[msg->index()].bytes += wire_size;
  transmit(from, to, std::move(msg), wire_size, sim_.now());
}

MessageStats Network::total_stats() const {
  MessageStats total;
  for (const auto& s : stats_) {
    total.count += s.count;
    total.bytes += s.bytes;
  }
  return total;
}

void Network::reset_stats() { stats_.fill(MessageStats{}); }

void Network::run_handler(NodeId node, SimTime at, Handler fn) {
  NodeState& state = nodes_[node];
  if (state.crashed) return;
  if (state.lane_busy[0] > at || !state.cpu_queue.empty()) {
    // Serial lane busy: enqueue FIFO and make sure a drain fires when it
    // frees up.
    state.cpu_queue.push_back(std::move(fn));
    schedule_drain(node, std::max(state.lane_busy[0], at));
    return;
  }
  execute_handler(node, at, fn);
}

void Network::execute_handler(NodeId node, SimTime at, const Handler& fn) {
  ActorContext ctx(*this, node, at);
  fn(ctx);
  flush(node, ctx);
}

void Network::schedule_drain(NodeId node, SimTime at) {
  NodeState& state = nodes_[node];
  if (state.drain_scheduled) return;
  state.drain_scheduled = true;
  sim_.schedule(std::max(at, sim_.now()), [this, node] { drain(node); });
}

void Network::drain(NodeId node) {
  NodeState& state = nodes_[node];
  state.drain_scheduled = false;
  if (state.crashed) {
    state.cpu_queue.clear();
    return;
  }
  if (state.cpu_queue.empty()) return;
  if (state.lane_busy[0] > sim_.now()) {
    schedule_drain(node, state.lane_busy[0]);
    return;
  }
  Handler fn = std::move(state.cpu_queue.front());
  state.cpu_queue.pop_front();
  execute_handler(node, sim_.now(), fn);
  if (!state.cpu_queue.empty()) schedule_drain(node, state.lane_busy[0]);
}

void Network::flush(NodeId node, ActorContext& ctx) {
  NodeState& state = nodes_[node];
  int64_t cpu = static_cast<int64_t>(static_cast<double>(ctx.charged_) * state.cpu_factor);
  SimTime done = ctx.start_ + cpu;
  state.lane_busy[0] = done;
  state.lane_used_us[0] += cpu;
  ++state.handlers_run;

  // Offloaded work starts when the handler that requested it completes —
  // the handler "hands off" to a worker lane at its end, like sends depart
  // at `done`.
  for (auto& o : ctx.offloads_) {
    dispatch_offload(node, o.cost_us, std::move(o.done), done);
  }

  // Broadcasts enqueue the same payload many times; compute its wire size
  // once per distinct message object.
  const Message* last_msg = nullptr;
  size_t last_size = 0;
  for (auto& p : ctx.sends_) {
    if (p.msg.get() != last_msg) {
      last_msg = p.msg.get();
      last_size = message_wire_size(*p.msg);
    }
    stats_[p.msg->index()].count += 1;
    stats_[p.msg->index()].bytes += last_size;
    transmit(node, p.to, std::move(p.msg), last_size, done);
  }
  for (auto& t : ctx.timers_) {
    uint64_t id = t.id;
    // Timers are process-local: if the node crashes and restarts before the
    // timer fires, the new incarnation must not inherit it.
    uint64_t inc = state.incarnation;
    sim_.schedule(done + t.delay_us, [this, node, id, inc] {
      if (nodes_[node].incarnation != inc) return;
      run_handler(node, sim_.now(), [this, node, id](ActorContext& c) {
        nodes_[node].actor->on_timer(id, c);
      });
    });
  }
}

void Network::transmit(NodeId from, NodeId to, MessagePtr msg, size_t wire_size,
                       SimTime depart) {
  NodeState& src = nodes_[from];
  if (src.crashed) return;
  if (to >= num_nodes()) return;
  if (from == to) {
    // Local delivery: no link involved.
    deliver(from, to, std::move(msg), wire_size, depart);
    return;
  }
  if (cut_links_.count({std::min(from, to), std::max(from, to)})) return;
  if (!blocked_links_.empty() && blocked_links_.count({from, to})) return;
  if (drop_probability_ > 0 && link_rng_.chance(drop_probability_)) return;

  // Uplink serialization at the sender.
  int64_t tx = static_cast<int64_t>(static_cast<double>(wire_size) /
                                    topology_.bandwidth_bytes_per_us) + 1;
  SimTime tx_start = std::max(depart, src.uplink_busy);
  SimTime tx_end = tx_start + tx;
  src.uplink_busy = tx_end;

  // Propagation.
  NodeState& dst = nodes_[to];
  int64_t latency = topology_.region_latency_us[src.region][dst.region] +
                    src.extra_latency_us + dst.extra_latency_us +
                    static_cast<int64_t>(link_rng_.below(
                        static_cast<uint64_t>(std::max<int64_t>(topology_.jitter_us, 1))));
  if (!link_extra_delay_.empty()) {
    if (auto it = link_extra_delay_.find({from, to}); it != link_extra_delay_.end()) {
      latency += it->second;
    }
  }
  if (reorder_probability_ > 0 && link_rng_.chance(reorder_probability_)) {
    latency += static_cast<int64_t>(link_rng_.below(
        static_cast<uint64_t>(std::max<int64_t>(reorder_max_extra_us_, 1))));
  }
  deliver(from, to, std::move(msg), wire_size, tx_end + latency);
}

void Network::deliver(NodeId from, NodeId to, MessagePtr msg, size_t wire_size,
                      SimTime arrival) {
  sim_.schedule(arrival, [this, from, to, msg = std::move(msg), wire_size] {
    NodeState& dst = nodes_[to];
    if (dst.crashed) return;
    // Downlink serialization at the receiver.
    SimTime rx_start = std::max(sim_.now(), dst.downlink_busy);
    int64_t rx = static_cast<int64_t>(static_cast<double>(wire_size) /
                                      topology_.bandwidth_bytes_per_us);
    SimTime ready = rx_start + rx;
    dst.downlink_busy = ready;
    sim_.schedule(ready, [this, from, to, msg] {
      // msg captured by value: run_handler may re-schedule the closure if the
      // target CPU is busy, so the payload must outlive this event.
      run_handler(to, sim_.now(), [this, from, to, msg](ActorContext& ctx) {
        ctx.charge(costs_.msg_overhead_us);
        nodes_[to].actor->on_message(from, *msg, ctx);
      });
    });
  });
}

}  // namespace sbft::sim
