// Deterministic discrete-event simulator. All protocol time in the
// repository is *simulated* microseconds; replicas run real protocol code and
// real (simulated-BLS) cryptography, while CPU and network costs advance the
// virtual clock through the cost model (DESIGN.md §3, substitution 2).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/check.h"

namespace sbft::sim {

using SimTime = int64_t;  // microseconds since simulation start

class Simulator {
 public:
  SimTime now() const { return now_; }
  uint64_t events_processed() const { return processed_; }

  void schedule(SimTime at, std::function<void()> fn) {
    SBFT_CHECK(at >= now_);
    queue_.push(Event{at, next_seq_++, std::move(fn)});
  }

  void after(SimTime delay, std::function<void()> fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Executes the next event; returns false if the queue is empty.
  bool step() {
    if (queue_.empty()) return false;
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.at;
    ++processed_;
    ev.fn();
    return true;
  }

  /// Runs events until the clock passes `t` (events at exactly `t` run).
  void run_until(SimTime t) {
    while (!queue_.empty() && queue_.top().at <= t) step();
    if (now_ < t) now_ = t;
  }

  /// Runs until no events remain or `max_events` were processed.
  void run_until_idle(uint64_t max_events = UINT64_MAX) {
    uint64_t n = 0;
    while (n < max_events && step()) ++n;
  }

  bool idle() const { return queue_.empty(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;  // tie-breaker: FIFO among same-time events
    std::function<void()> fn;

    bool operator>(const Event& o) const {
      return at != o.at ? at > o.at : seq > o.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  SimTime now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t processed_ = 0;
};

}  // namespace sbft::sim
