#include "crypto/hmac.h"

#include <cstring>

#include "crypto/sha256.h"

namespace sbft::crypto {

namespace {
struct Pads {
  uint8_t ipad[64];
  uint8_t opad[64];
};

Pads make_pads(ByteSpan key) {
  uint8_t k[64] = {0};
  if (key.size() > 64) {
    Digest kd = sha256(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }
  Pads p;
  for (int i = 0; i < 64; ++i) {
    p.ipad[i] = static_cast<uint8_t>(k[i] ^ 0x36);
    p.opad[i] = static_cast<uint8_t>(k[i] ^ 0x5c);
  }
  return p;
}
}  // namespace

Digest hmac_sha256(ByteSpan key, ByteSpan message) {
  return hmac_sha256(key, {message});
}

Digest hmac_sha256(ByteSpan key, std::initializer_list<ByteSpan> fragments) {
  Pads p = make_pads(key);
  Sha256 inner;
  inner.update(ByteSpan{p.ipad, 64});
  for (ByteSpan f : fragments) inner.update(f);
  Digest inner_digest = inner.finish();
  Sha256 outer;
  outer.update(ByteSpan{p.opad, 64});
  outer.update(as_span(inner_digest));
  return outer.finish();
}

}  // namespace sbft::crypto
