// HMAC-SHA256 (RFC 2104). Used by the simulated-BLS threshold scheme and by
// tests; the paper's implementation uses HMAC from Crypto++ for channel MACs.
#pragma once

#include "common/bytes.h"

namespace sbft::crypto {

Digest hmac_sha256(ByteSpan key, ByteSpan message);

/// HMAC over the concatenation of several fragments.
Digest hmac_sha256(ByteSpan key, std::initializer_list<ByteSpan> fragments);

}  // namespace sbft::crypto
