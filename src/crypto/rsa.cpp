#include "crypto/rsa.h"

#include "common/check.h"
#include "common/serde.h"
#include "crypto/sha256.h"

namespace sbft::crypto {

BigUint rsa_fdh(const Digest& digest, const BigUint& n) {
  // MGF1-style expansion: concatenate SHA256(digest || counter) blocks until
  // we have modulus-sized output, then reduce mod n. The reduction bias is
  // negligible at >=2 blocks of slack; we generate one extra block.
  size_t need = static_cast<size_t>((n.bit_length() + 7) / 8) + 32;
  Bytes stream;
  stream.reserve(need + 32);
  uint32_t counter = 0;
  while (stream.size() < need) {
    Writer w;
    w.digest(digest);
    w.u32(counter++);
    Digest block = sha256(as_span(w.data()));
    stream.insert(stream.end(), block.begin(), block.end());
  }
  stream.resize(need);
  BigUint v = BigUint::from_bytes_be(as_span(stream)) % n;
  if (v < BigUint(2)) v = v + BigUint(2);
  return v;
}

Bytes RsaPrivateKey::sign(const Digest& digest) const {
  BigUint m = rsa_fdh(digest, pub.n);
  BigUint s = BigUint::mod_exp(m, d, pub.n);
  // Fixed-width encoding so signature sizes are stable on the wire.
  Bytes raw = s.to_bytes_be();
  Bytes out(pub.signature_size(), 0);
  SBFT_CHECK(raw.size() <= out.size());
  std::copy(raw.begin(), raw.end(), out.end() - static_cast<ptrdiff_t>(raw.size()));
  return out;
}

bool RsaPublicKey::verify(const Digest& digest, ByteSpan signature) const {
  if (signature.size() != signature_size()) return false;
  BigUint s = BigUint::from_bytes_be(signature);
  if (s >= n) return false;
  BigUint m = rsa_fdh(digest, n);
  return BigUint::mod_exp(s, e, n) == m;
}

RsaKeyPair rsa_generate(Rng& rng, int bits) {
  SBFT_CHECK(bits >= 128);
  BigUint e(65537);
  for (;;) {
    BigUint p = BigUint::random_prime(rng, bits / 2);
    BigUint q = BigUint::random_prime(rng, bits - bits / 2);
    if (p == q) continue;
    BigUint n = p * q;
    BigUint phi = (p - BigUint(1)) * (q - BigUint(1));
    if (BigUint::gcd(e, phi) != BigUint(1)) continue;
    BigUint d = BigUint::mod_inverse(e, phi);
    if (d.is_zero()) continue;
    RsaKeyPair kp;
    kp.pub = RsaPublicKey{n, e};
    kp.priv = RsaPrivateKey{kp.pub, d};
    return kp;
  }
}

}  // namespace sbft::crypto
