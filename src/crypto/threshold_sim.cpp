// Simulated-BLS threshold scheme (HMAC-based stand-in with BLS wire sizes).
//
// All parties created by the dealer hold the 32-byte master key, so this
// scheme is NOT forgery-resistant against a key holder; it exists so that the
// discrete-event simulator can run hundreds of replicas with realistic message
// sizes (33 bytes, matching BLS BN-P254) and negligible real CPU, while the
// simulated CPU cost of each operation is charged through the cost model
// (src/sim/cost_model.h). Byzantine share corruption is still detected:
// verify_share() recomputes the HMAC, so a corrupted or misattributed share
// never combines.
#include <algorithm>

#include "common/check.h"
#include "common/serde.h"
#include "crypto/hmac.h"
#include "crypto/threshold.h"

namespace sbft::crypto {

namespace {

constexpr size_t kBlsSize = 33;  // BLS BN-P254 compressed signature size.

Bytes tag_bytes(uint8_t tag, const Bytes& instance_id, uint32_t signer) {
  Writer w;
  w.u8(tag);
  w.bytes(as_span(instance_id));
  w.u32(signer);
  return std::move(w).take();
}

class SimBlsVerifier final : public IThresholdVerifier {
 public:
  SimBlsVerifier(Bytes master_key, Bytes instance_id, uint32_t n, uint32_t k)
      : key_(std::move(master_key)), id_(std::move(instance_id)), n_(n), k_(k) {}

  uint32_t threshold() const override { return k_; }
  uint32_t num_signers() const override { return n_; }
  size_t share_size() const override { return kBlsSize; }
  size_t signature_size() const override { return kBlsSize; }

  Bytes make_share(uint32_t signer, const Digest& digest) const {
    Digest mac = hmac_sha256(as_span(key_),
                             {as_span(tag_bytes(1, id_, signer)), as_span(digest)});
    Bytes out(mac.begin(), mac.end());
    out.push_back(0x02);  // pad to the BLS compressed size
    return out;
  }

  Bytes make_signature(const Digest& digest) const {
    Digest mac =
        hmac_sha256(as_span(key_), {as_span(tag_bytes(2, id_, 0)), as_span(digest)});
    Bytes out(mac.begin(), mac.end());
    out.push_back(0x03);
    return out;
  }

  bool verify_share(uint32_t signer, const Digest& digest,
                    ByteSpan share) const override {
    if (signer == 0 || signer > n_ || share.size() != kBlsSize) return false;
    Bytes expect = make_share(signer, digest);
    return std::equal(share.begin(), share.end(), expect.begin());
  }

  std::optional<Bytes> combine(
      const Digest& digest, std::span<const SignatureShare> shares) const override {
    // Count distinct valid signers; any k of them reconstruct.
    std::vector<uint32_t> seen;
    for (const auto& s : shares) {
      if (!verify_share(s.signer, digest, as_span(s.data))) continue;
      if (std::find(seen.begin(), seen.end(), s.signer) != seen.end()) continue;
      seen.push_back(s.signer);
      if (seen.size() >= k_) return make_signature(digest);
    }
    return std::nullopt;
  }

  bool verify(const Digest& digest, ByteSpan signature) const override {
    if (signature.size() != kBlsSize) return false;
    Bytes expect = make_signature(digest);
    return std::equal(signature.begin(), signature.end(), expect.begin());
  }

 private:
  Bytes key_;
  Bytes id_;
  uint32_t n_;
  uint32_t k_;
};

class SimBlsSigner final : public IThresholdSigner {
 public:
  SimBlsSigner(std::shared_ptr<const SimBlsVerifier> pub, uint32_t id)
      : pub_(std::move(pub)), id_(id) {}
  uint32_t signer_id() const override { return id_; }
  Bytes sign_share(const Digest& digest) const override {
    return pub_->make_share(id_, digest);
  }

 private:
  std::shared_ptr<const SimBlsVerifier> pub_;
  uint32_t id_;
};

}  // namespace

ThresholdScheme deal_sim_bls(Rng& rng, uint32_t n, uint32_t k) {
  SBFT_CHECK(n >= 1 && k >= 1 && k <= n);
  auto verifier = std::make_shared<SimBlsVerifier>(rng.bytes(32), rng.bytes(16), n, k);
  ThresholdScheme scheme;
  scheme.verifier = verifier;
  scheme.signers.reserve(n);
  for (uint32_t i = 1; i <= n; ++i)
    scheme.signers.push_back(std::make_shared<SimBlsSigner>(verifier, i));
  return scheme;
}

}  // namespace sbft::crypto
