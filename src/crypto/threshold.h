// Threshold signature abstraction used by the replication protocol (§III).
//
// SBFT instantiates three schemes per cluster: σ with threshold 3f+c+1,
// τ with threshold 2f+c+1 and π with threshold f+1. The protocol code only
// depends on this interface; two implementations are provided:
//   * ShoupRsaThreshold  — real, publicly verifiable threshold RSA (Shoup,
//     EUROCRYPT'00), including non-interactive share-validity proofs.
//   * SimBlsThreshold    — HMAC-based stand-in with BLS wire sizes (33-byte
//     shares/signatures) for large-scale simulation; see DESIGN.md §3.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace sbft::crypto {

struct SignatureShare {
  uint32_t signer = 0;  // 1-based replica identifier
  Bytes data;
};

/// Per-replica secret: produces shares for one scheme instance.
class IThresholdSigner {
 public:
  virtual ~IThresholdSigner() = default;
  virtual uint32_t signer_id() const = 0;
  virtual Bytes sign_share(const Digest& digest) const = 0;
};

/// Public state: verifies shares, combines them, verifies combined signatures.
class IThresholdVerifier {
 public:
  virtual ~IThresholdVerifier() = default;
  virtual uint32_t threshold() const = 0;
  virtual uint32_t num_signers() const = 0;
  /// True iff `share` is a valid share from `signer` over `digest`.
  virtual bool verify_share(uint32_t signer, const Digest& digest,
                            ByteSpan share) const = 0;
  /// Combines exactly threshold() distinct valid shares into a signature.
  /// Returns nullopt if the shares are insufficient or invalid.
  virtual std::optional<Bytes> combine(
      const Digest& digest, std::span<const SignatureShare> shares) const = 0;
  virtual bool verify(const Digest& digest, ByteSpan signature) const = 0;
  virtual size_t share_size() const = 0;
  virtual size_t signature_size() const = 0;
};

/// A dealt scheme: one verifier (public) plus n signers (one per replica).
struct ThresholdScheme {
  std::shared_ptr<const IThresholdVerifier> verifier;
  std::vector<std::shared_ptr<const IThresholdSigner>> signers;  // index i-1 = replica i
};

/// Trusted-dealer setup for the HMAC-based simulated-BLS scheme.
ThresholdScheme deal_sim_bls(Rng& rng, uint32_t n, uint32_t k);

/// Trusted-dealer setup for Shoup threshold RSA. `modulus_bits` defaults small
/// enough for tests; n must be < 2^16 and k <= n.
ThresholdScheme deal_shoup_rsa(Rng& rng, uint32_t n, uint32_t k,
                               int modulus_bits = 512);

}  // namespace sbft::crypto
