// Shoup threshold RSA ("Practical Threshold Signatures", EUROCRYPT 2000).
//
// This is the real-cryptography threshold scheme of the repository. Design
// choices relative to the paper version of the scheme:
//   * The dealer shares d over Z_phi(N) directly (the dealer knows phi). The
//     classical presentation shares over Z_{p'q'} with safe primes to make
//     the square subgroup cyclic for the robustness proofs; correctness of
//     combination only needs integer Lagrange coefficients scaled by
//     Delta = n!, which is what we implement.
//   * Share validity is proven with a Fiat-Shamir Chaum-Pedersen style proof
//     of discrete-log equality between v_i = v^{d_i} and x_i^2 = (x^{4*Delta})^{d_i},
//     exactly as in Shoup section 2.4 (with statistically-hiding randomness).
//
// Shares are therefore publicly verifiable and a Byzantine replica cannot
// slip an invalid share past a collector.
#include <algorithm>

#include "common/check.h"
#include "common/serde.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "crypto/threshold.h"

namespace sbft::crypto {

namespace {

BigUint factorial(uint32_t n) {
  BigUint out(1);
  for (uint32_t i = 2; i <= n; ++i) out = out * BigUint(i);
  return out;
}

/// base^exp mod m for a signed exponent (inverts base when exp < 0).
BigUint mod_exp_signed(const BigUint& base, const BigInt& exp, const BigUint& m) {
  if (!exp.negative()) return BigUint::mod_exp(base, exp.magnitude(), m);
  BigUint inv = BigUint::mod_inverse(base, m);
  SBFT_CHECK(!inv.is_zero());
  return BigUint::mod_exp(inv, exp.magnitude(), m);
}

/// Fiat-Shamir challenge over the proof transcript.
BigUint proof_challenge(const BigUint& v, const BigUint& xt, const BigUint& vi,
                        const BigUint& xi2, const BigUint& vp, const BigUint& xp) {
  Writer w;
  for (const BigUint* b : {&v, &xt, &vi, &xi2, &vp, &xp}) w.bytes(as_span(b->to_bytes_be()));
  Digest d = sha256(as_span(w.data()));
  // 128-bit challenge is ample for soundness here.
  return BigUint::from_bytes_be(ByteSpan{d.data(), 16});
}

struct ShoupPublic {
  BigUint n;               // RSA modulus
  BigUint e;               // public exponent (65537)
  BigUint v;               // verification base (a square mod n)
  std::vector<BigUint> vi; // vi[i-1] = v^{d_i}
  BigUint delta;           // n! for the group size
  uint32_t k = 0;          // threshold
  uint32_t num = 0;        // number of signers
};

class ShoupVerifier final : public IThresholdVerifier {
 public:
  explicit ShoupVerifier(ShoupPublic pub) : p_(std::move(pub)) {
    mod_bytes_ = static_cast<size_t>((p_.n.bit_length() + 7) / 8);
  }

  uint32_t threshold() const override { return p_.k; }
  uint32_t num_signers() const override { return p_.num; }
  size_t share_size() const override { return 3 * mod_bytes_ + 64; }
  size_t signature_size() const override { return mod_bytes_; }
  const ShoupPublic& pub() const { return p_; }

  bool verify_share(uint32_t signer, const Digest& digest,
                    ByteSpan share) const override {
    if (signer == 0 || signer > p_.num) return false;
    Reader r(share);
    BigUint xi = BigUint::from_bytes_be(as_span(r.bytes()));
    BigUint z = BigUint::from_bytes_be(as_span(r.bytes()));
    BigUint c = BigUint::from_bytes_be(as_span(r.bytes()));
    if (!r.at_end()) return false;
    if (xi.is_zero() || xi >= p_.n) return false;

    BigUint x = rsa_fdh(digest, p_.n);
    BigUint xt = BigUint::mod_exp(x, BigUint(4) * p_.delta, p_.n);
    BigUint xi2 = BigUint::mod_mul(xi, xi, p_.n);
    const BigUint& vi = p_.vi[signer - 1];

    // Recompute the commitments: v' = v^z * vi^{-c}, x' = xt^z * xi2^{-c}.
    BigUint vi_inv = BigUint::mod_inverse(vi, p_.n);
    BigUint xi2_inv = BigUint::mod_inverse(xi2, p_.n);
    if (vi_inv.is_zero() || xi2_inv.is_zero()) return false;
    BigUint vp = BigUint::mod_mul(BigUint::mod_exp(p_.v, z, p_.n),
                                  BigUint::mod_exp(vi_inv, c, p_.n), p_.n);
    BigUint xp = BigUint::mod_mul(BigUint::mod_exp(xt, z, p_.n),
                                  BigUint::mod_exp(xi2_inv, c, p_.n), p_.n);
    return proof_challenge(p_.v, xt, vi, xi2, vp, xp) == c;
  }

  std::optional<Bytes> combine(
      const Digest& digest, std::span<const SignatureShare> shares) const override {
    // Collect threshold() distinct valid shares.
    std::vector<std::pair<uint32_t, BigUint>> valid;
    for (const auto& s : shares) {
      if (valid.size() >= p_.k) break;
      bool dup = std::any_of(valid.begin(), valid.end(),
                             [&](const auto& v) { return v.first == s.signer; });
      if (dup) continue;
      if (!verify_share(s.signer, digest, as_span(s.data))) continue;
      Reader r(as_span(s.data));
      valid.emplace_back(s.signer, BigUint::from_bytes_be(as_span(r.bytes())));
    }
    if (valid.size() < p_.k) return std::nullopt;

    const BigUint x = rsa_fdh(digest, p_.n);

    // w = prod x_i^{2 * lambda'_i} where lambda'_i = Delta * lagrange_i(0),
    // an integer thanks to the Delta scaling.
    BigUint w(1);
    for (const auto& [i, xi] : valid) {
      // numerator = Delta * prod_{j != i} j ; denominator = prod_{j != i} (j - i)
      BigUint num = p_.delta;
      BigInt den(1);
      for (const auto& [j, unused] : valid) {
        if (j == i) continue;
        num = num * BigUint(j);
        den = den * BigInt(static_cast<int64_t>(j) - static_cast<int64_t>(i));
      }
      DivMod dm = BigUint::divmod(num, den.magnitude());
      SBFT_CHECK(dm.remainder.is_zero());  // Delta-scaled coefficients are integral
      BigInt lambda(dm.quotient, den.negative());
      BigInt exponent = lambda * BigInt(2);
      w = BigUint::mod_mul(w, mod_exp_signed(xi, exponent, p_.n), p_.n);
    }

    // w^e = x^{4*Delta^2}; lift to y with y^e = x via extended GCD.
    BigUint four_delta_sq = BigUint(4) * p_.delta * p_.delta;
    EgcdResult eg = extended_gcd(four_delta_sq, p_.e);
    SBFT_CHECK(eg.g == BigUint(1));
    BigUint y = BigUint::mod_mul(mod_exp_signed(w, eg.x, p_.n),
                                 mod_exp_signed(x, eg.y, p_.n), p_.n);
    if (BigUint::mod_exp(y, p_.e, p_.n) != x) return std::nullopt;

    Bytes raw = y.to_bytes_be();
    Bytes out(signature_size(), 0);
    SBFT_CHECK(raw.size() <= out.size());
    std::copy(raw.begin(), raw.end(), out.end() - static_cast<ptrdiff_t>(raw.size()));
    return out;
  }

  bool verify(const Digest& digest, ByteSpan signature) const override {
    if (signature.size() != signature_size()) return false;
    BigUint y = BigUint::from_bytes_be(signature);
    if (y.is_zero() || y >= p_.n) return false;
    return BigUint::mod_exp(y, p_.e, p_.n) == rsa_fdh(digest, p_.n);
  }

 private:
  ShoupPublic p_;
  size_t mod_bytes_;
};

class ShoupSigner final : public IThresholdSigner {
 public:
  ShoupSigner(std::shared_ptr<const ShoupVerifier> pub, uint32_t id, BigUint di,
              uint64_t nonce_seed)
      : pub_(std::move(pub)), id_(id), di_(std::move(di)), rng_(nonce_seed) {}

  uint32_t signer_id() const override { return id_; }

  Bytes sign_share(const Digest& digest) const override {
    const ShoupPublic& p = pub_->pub();
    BigUint x = rsa_fdh(digest, p.n);
    BigUint two_delta = BigUint(2) * p.delta;
    BigUint xi = BigUint::mod_exp(x, two_delta * di_, p.n);

    // Share-validity proof (Fiat-Shamir): prove log_v(v_i) == log_xt(x_i^2)
    // where xt = x^{4*Delta}. Randomness is statistically hiding: r is drawn
    // with |N| + 256 bits of slack over d_i * c.
    BigUint xt = BigUint::mod_exp(x, BigUint(4) * p.delta, p.n);
    BigUint xi2 = BigUint::mod_mul(xi, xi, p.n);
    BigUint r = BigUint::random_bits(rng_, p.n.bit_length() + 256);
    BigUint vp = BigUint::mod_exp(p.v, r, p.n);
    BigUint xp = BigUint::mod_exp(xt, r, p.n);
    BigUint c = proof_challenge(p.v, xt, p.vi[id_ - 1], xi2, vp, xp);
    BigUint z = di_ * c + r;

    Writer w;
    w.bytes(as_span(xi.to_bytes_be()));
    w.bytes(as_span(z.to_bytes_be()));
    w.bytes(as_span(c.to_bytes_be()));
    return std::move(w).take();
  }

 private:
  std::shared_ptr<const ShoupVerifier> pub_;
  uint32_t id_;
  BigUint di_;
  mutable Rng rng_;  // per-signer nonce stream (proof randomness)
};

}  // namespace

ThresholdScheme deal_shoup_rsa(Rng& rng, uint32_t n, uint32_t k, int modulus_bits) {
  SBFT_CHECK(n >= 1 && k >= 1 && k <= n && n < 65536);
  BigUint e(65537);
  BigUint N, phi, d;
  for (;;) {
    BigUint p = BigUint::random_prime(rng, modulus_bits / 2);
    BigUint q = BigUint::random_prime(rng, modulus_bits - modulus_bits / 2);
    if (p == q) continue;
    N = p * q;
    phi = (p - BigUint(1)) * (q - BigUint(1));
    if (BigUint::gcd(e, phi) != BigUint(1)) continue;
    d = BigUint::mod_inverse(e, phi);
    if (!d.is_zero()) break;
  }

  // Random polynomial f over Z_phi with f(0) = d; share d_i = f(i) mod phi.
  std::vector<BigUint> coeffs{d};
  for (uint32_t i = 1; i < k; ++i) coeffs.push_back(BigUint::random_below(rng, phi));
  auto eval = [&](uint32_t at) {
    BigUint acc;
    BigUint x(1);
    for (const BigUint& c : coeffs) {
      acc = (acc + BigUint::mod_mul(c, x, phi)) % phi;
      x = BigUint::mod_mul(x, BigUint(at), phi);
    }
    return acc;
  };

  ShoupPublic pub;
  pub.n = N;
  pub.e = e;
  pub.k = k;
  pub.num = n;
  pub.delta = factorial(n);
  BigUint vr = BigUint::random_below(rng, N);
  pub.v = BigUint::mod_mul(vr, vr, N);  // square => in the subgroup of squares

  std::vector<BigUint> shares;
  shares.reserve(n);
  for (uint32_t i = 1; i <= n; ++i) {
    shares.push_back(eval(i));
    pub.vi.push_back(BigUint::mod_exp(pub.v, shares.back(), N));
  }

  auto verifier = std::make_shared<ShoupVerifier>(std::move(pub));
  ThresholdScheme scheme;
  scheme.verifier = verifier;
  scheme.signers.reserve(n);
  for (uint32_t i = 1; i <= n; ++i) {
    scheme.signers.push_back(
        std::make_shared<ShoupSigner>(verifier, i, shares[i - 1], rng.next()));
  }
  return scheme;
}

}  // namespace sbft::crypto
