#include "crypto/bignum.h"

#include <bit>
#include <stdexcept>

#include "common/check.h"

namespace sbft::crypto {

namespace {
constexpr uint64_t kBase = 1ull << 32;
}

BigUint::BigUint(uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

void BigUint::normalize() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigUint BigUint::from_bytes_be(ByteSpan bytes) {
  BigUint out;
  out.limbs_.assign((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    size_t bit_pos = (bytes.size() - 1 - i) * 8;
    out.limbs_[bit_pos / 32] |= static_cast<uint32_t>(bytes[i]) << (bit_pos % 32);
  }
  out.normalize();
  return out;
}

BigUint BigUint::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2 != 0) padded.insert(padded.begin(), '0');
  return from_bytes_be(as_span(sbft::from_hex(padded)));
}

Bytes BigUint::to_bytes_be() const {
  if (is_zero()) return Bytes{0};
  int bytes = (bit_length() + 7) / 8;
  Bytes out(static_cast<size_t>(bytes), 0);
  for (int i = 0; i < bytes; ++i) {
    int bit_pos = i * 8;
    out[static_cast<size_t>(bytes - 1 - i)] =
        static_cast<uint8_t>(limbs_[static_cast<size_t>(bit_pos / 32)] >> (bit_pos % 32));
  }
  return out;
}

std::string BigUint::to_hex() const { return sbft::to_hex(as_span(to_bytes_be())); }

uint64_t BigUint::low_u64() const {
  uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigUint::bit_length() const {
  if (limbs_.empty()) return 0;
  return static_cast<int>(limbs_.size() - 1) * 32 +
         (32 - std::countl_zero(limbs_.back()));
}

bool BigUint::bit(int i) const {
  size_t limb = static_cast<size_t>(i) / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

BigUint BigUint::random_bits(Rng& rng, int bits) {
  SBFT_CHECK(bits > 0);
  BigUint out;
  out.limbs_.resize(static_cast<size_t>(bits + 31) / 32);
  for (auto& l : out.limbs_) l = static_cast<uint32_t>(rng.next());
  int top_bits = bits % 32 == 0 ? 32 : bits % 32;
  uint32_t mask = top_bits == 32 ? 0xffffffffu : ((1u << top_bits) - 1);
  out.limbs_.back() &= mask;
  out.limbs_.back() |= 1u << (top_bits - 1);  // force exact bit length
  out.normalize();
  return out;
}

BigUint BigUint::random_below(Rng& rng, const BigUint& bound) {
  SBFT_CHECK(!bound.is_zero());
  int bits = bound.bit_length();
  for (;;) {
    BigUint candidate;
    candidate.limbs_.resize(static_cast<size_t>(bits + 31) / 32);
    for (auto& l : candidate.limbs_) l = static_cast<uint32_t>(rng.next());
    int top_bits = bits % 32 == 0 ? 32 : bits % 32;
    uint32_t mask = top_bits == 32 ? 0xffffffffu : ((1u << top_bits) - 1);
    candidate.limbs_.back() &= mask;
    candidate.normalize();
    if (candidate < bound) return candidate;
  }
}

int BigUint::cmp(const BigUint& a, const BigUint& b) {
  if (a.limbs_.size() != b.limbs_.size())
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  for (size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigUint BigUint::operator+(const BigUint& o) const {
  BigUint out;
  size_t n = std::max(limbs_.size(), o.limbs_.size());
  out.limbs_.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < limbs_.size()) sum += limbs_[i];
    if (i < o.limbs_.size()) sum += o.limbs_[i];
    out.limbs_.push_back(static_cast<uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.limbs_.push_back(static_cast<uint32_t>(carry));
  return out;
}

BigUint BigUint::operator-(const BigUint& o) const {
  SBFT_CHECK(*this >= o);
  BigUint out;
  out.limbs_.reserve(limbs_.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < limbs_.size(); ++i) {
    int64_t diff = static_cast<int64_t>(limbs_[i]) - borrow -
                   (i < o.limbs_.size() ? static_cast<int64_t>(o.limbs_[i]) : 0);
    borrow = diff < 0 ? 1 : 0;
    out.limbs_.push_back(static_cast<uint32_t>(diff + (borrow ? static_cast<int64_t>(kBase) : 0)));
  }
  out.normalize();
  return out;
}

BigUint BigUint::operator*(const BigUint& o) const {
  if (is_zero() || o.is_zero()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() + o.limbs_.size(), 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = limbs_[i];
    for (size_t j = 0; j < o.limbs_.size(); ++j) {
      uint64_t cur = out.limbs_[i + j] + ai * o.limbs_[j] + carry;
      out.limbs_[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + o.limbs_.size();
    while (carry) {
      uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.normalize();
  return out;
}

BigUint BigUint::operator<<(int bits) const {
  if (is_zero() || bits == 0) return *this;
  int limb_shift = bits / 32;
  int bit_shift = bits % 32;
  BigUint out;
  out.limbs_.assign(limbs_.size() + static_cast<size_t>(limb_shift) + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + static_cast<size_t>(limb_shift)] |= static_cast<uint32_t>(v);
    out.limbs_[i + static_cast<size_t>(limb_shift) + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.normalize();
  return out;
}

BigUint BigUint::operator>>(int bits) const {
  if (is_zero() || bits == 0) return *this;
  size_t limb_shift = static_cast<size_t>(bits) / 32;
  int bit_shift = bits % 32;
  if (limb_shift >= limbs_.size()) return BigUint();
  BigUint out;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift != 0 && i + limb_shift + 1 < limbs_.size())
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.normalize();
  return out;
}

DivMod BigUint::divmod(const BigUint& dividend, const BigUint& divisor) {
  if (divisor.is_zero()) throw std::domain_error("BigUint: division by zero");
  if (cmp(dividend, divisor) < 0) return {BigUint(), dividend};

  // Single-limb fast path.
  if (divisor.limbs_.size() == 1) {
    uint64_t d = divisor.limbs_[0];
    BigUint q;
    q.limbs_.assign(dividend.limbs_.size(), 0);
    uint64_t rem = 0;
    for (size_t i = dividend.limbs_.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | dividend.limbs_[i];
      q.limbs_[i] = static_cast<uint32_t>(cur / d);
      rem = cur % d;
    }
    q.normalize();
    return {q, BigUint(rem)};
  }

  // Knuth Algorithm D with 32-bit digits.
  const int s = std::countl_zero(divisor.limbs_.back());
  BigUint vs = divisor << s;
  BigUint us = dividend << s;
  const size_t n = vs.limbs_.size();
  std::vector<uint32_t> un(us.limbs_);
  un.resize(std::max(un.size(), dividend.limbs_.size() + 1) + 1, 0);
  const std::vector<uint32_t>& vn = vs.limbs_;
  const size_t m = un.size() - n - 1;

  BigUint q;
  q.limbs_.assign(m + 1, 0);
  for (size_t j = m + 1; j-- > 0;) {
    uint64_t num = (static_cast<uint64_t>(un[j + n]) << 32) | un[j + n - 1];
    uint64_t qhat = num / vn[n - 1];
    uint64_t rhat = num % vn[n - 1];
    for (;;) {
      if (qhat >= kBase ||
          qhat * vn[n - 2] > ((rhat << 32) | un[j + n - 2])) {
        --qhat;
        rhat += vn[n - 1];
        if (rhat < kBase) continue;
      }
      break;
    }
    // Multiply-and-subtract.
    uint64_t mul_carry = 0;
    int64_t borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t p = qhat * vn[i] + mul_carry;
      mul_carry = p >> 32;
      int64_t t = static_cast<int64_t>(un[i + j]) -
                  static_cast<int64_t>(p & 0xffffffffull) - borrow;
      un[i + j] = static_cast<uint32_t>(t);
      borrow = t < 0 ? 1 : 0;
    }
    int64_t t = static_cast<int64_t>(un[j + n]) -
                static_cast<int64_t>(mul_carry) - borrow;
    un[j + n] = static_cast<uint32_t>(t);
    if (t < 0) {
      // qhat was one too large; add divisor back.
      --qhat;
      uint64_t carry = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(un[i + j]) + vn[i] + carry;
        un[i + j] = static_cast<uint32_t>(sum);
        carry = sum >> 32;
      }
      un[j + n] = static_cast<uint32_t>(un[j + n] + carry);
    }
    q.limbs_[j] = static_cast<uint32_t>(qhat);
  }
  q.normalize();
  BigUint r;
  r.limbs_.assign(un.begin(), un.begin() + static_cast<ptrdiff_t>(n));
  r.normalize();
  return {q, r >> s};
}

BigUint BigUint::gcd(BigUint a, BigUint b) {
  while (!b.is_zero()) {
    BigUint r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigUint BigUint::mod_mul(const BigUint& a, const BigUint& b, const BigUint& m) {
  return (a * b) % m;
}

BigUint BigUint::mod_exp(const BigUint& base, const BigUint& exp, const BigUint& m) {
  SBFT_CHECK(!m.is_zero());
  if (m == BigUint(1)) return BigUint();
  BigUint result(1);
  BigUint b = base % m;
  int bits = exp.bit_length();
  for (int i = bits - 1; i >= 0; --i) {
    result = mod_mul(result, result, m);
    if (exp.bit(i)) result = mod_mul(result, b, m);
  }
  return result;
}

BigUint BigUint::mod_inverse(const BigUint& a, const BigUint& m) {
  EgcdResult e = extended_gcd(a % m, m);
  if (e.g != BigUint(1)) return BigUint();
  return e.x.mod(m);
}

bool BigUint::is_probable_prime(const BigUint& n, Rng& rng, int rounds) {
  static const uint32_t small_primes[] = {2,  3,  5,  7,  11, 13, 17, 19, 23, 29,
                                          31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
                                          73, 79, 83, 89, 97, 101, 103, 107, 109, 113};
  if (n < BigUint(2)) return false;
  for (uint32_t p : small_primes) {
    BigUint bp(p);
    if (n == bp) return true;
    if ((n % bp).is_zero()) return false;
  }
  // Write n-1 = d * 2^r.
  BigUint n_minus_1 = n - BigUint(1);
  BigUint d = n_minus_1;
  int r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }
  BigUint two(2);
  for (int i = 0; i < rounds; ++i) {
    BigUint a = random_below(rng, n - BigUint(3)) + two;  // in [2, n-2]
    BigUint x = mod_exp(a, d, n);
    if (x == BigUint(1) || x == n_minus_1) continue;
    bool composite = true;
    for (int j = 0; j < r - 1; ++j) {
      x = mod_mul(x, x, n);
      if (x == n_minus_1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

BigUint BigUint::random_prime(Rng& rng, int bits) {
  SBFT_CHECK(bits >= 8);
  for (;;) {
    BigUint candidate = random_bits(rng, bits);
    if (candidate.is_even()) candidate = candidate + BigUint(1);
    if (is_probable_prime(candidate, rng)) return candidate;
  }
}

// ---------------------------------------------------------------------------
// BigInt

BigInt::BigInt(int64_t v)
    : mag_(v < 0 ? BigUint(static_cast<uint64_t>(-v)) : BigUint(static_cast<uint64_t>(v))),
      neg_(v < 0) {}

BigInt BigInt::operator+(const BigInt& o) const {
  if (neg_ == o.neg_) return BigInt(mag_ + o.mag_, neg_);
  // Opposite signs: subtract smaller magnitude from larger.
  if (mag_ >= o.mag_) return BigInt(mag_ - o.mag_, neg_);
  return BigInt(o.mag_ - mag_, o.neg_);
}

BigInt BigInt::operator-(const BigInt& o) const { return *this + (-o); }

BigInt BigInt::operator*(const BigInt& o) const {
  return BigInt(mag_ * o.mag_, neg_ != o.neg_);
}

BigUint BigInt::mod(const BigUint& m) const {
  BigUint r = mag_ % m;
  if (neg_ && !r.is_zero()) return m - r;
  return r;
}

EgcdResult extended_gcd(const BigUint& a, const BigUint& b) {
  // Iterative extended Euclid on (old_r, r) with Bezout coefficient tracking.
  BigUint old_r = a, r = b;
  BigInt old_s(1), s(0), old_t(0), t(1);
  while (!r.is_zero()) {
    DivMod dm = BigUint::divmod(old_r, r);
    BigInt q(dm.quotient);
    old_r = r;
    r = dm.remainder;
    BigInt new_s = old_s - q * s;
    old_s = s;
    s = new_s;
    BigInt new_t = old_t - q * t;
    old_t = t;
    t = new_t;
  }
  return {old_r, old_s, old_t};
}

}  // namespace sbft::crypto
