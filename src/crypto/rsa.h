// Plain RSA with full-domain-hash signatures, built on the bignum substrate.
// The paper signs client requests and server messages with 2048-bit RSA
// (following [31]); tests and examples here default to smaller moduli so the
// from-scratch bignum stays fast.
#pragma once

#include <memory>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/bignum.h"

namespace sbft::crypto {

struct RsaPublicKey {
  BigUint n;
  BigUint e;

  bool verify(const Digest& digest, ByteSpan signature) const;
  size_t signature_size() const { return static_cast<size_t>((n.bit_length() + 7) / 8); }
};

struct RsaPrivateKey {
  RsaPublicKey pub;
  BigUint d;

  Bytes sign(const Digest& digest) const;
};

struct RsaKeyPair {
  RsaPrivateKey priv;
  RsaPublicKey pub;
};

/// Generates an RSA key pair with a modulus of `bits` bits (e = 65537).
RsaKeyPair rsa_generate(Rng& rng, int bits);

/// Full-domain hash: expands a 32-byte digest to an integer in [2, n).
/// Exposed for the threshold-RSA scheme, which hashes to the same domain.
BigUint rsa_fdh(const Digest& digest, const BigUint& n);

}  // namespace sbft::crypto
