// Arbitrary-precision unsigned/signed integers, from scratch.
//
// This replaces Crypto++'s integer arithmetic for the RSA and Shoup
// threshold-RSA substrates. Representation: little-endian vector of 32-bit
// limbs, normalized (no trailing zero limbs; the value 0 has no limbs).
// Division is Knuth's Algorithm D. Performance targets the test/benchmark
// sizes used in this repository (512..2048-bit moduli), not a general crypto
// library.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace sbft::crypto {

class BigUint;
struct DivMod;  // defined after BigUint (quotient/remainder pair)

class BigUint {
 public:
  BigUint() = default;
  explicit BigUint(uint64_t v);

  static BigUint from_bytes_be(ByteSpan bytes);
  static BigUint from_hex(std::string_view hex);
  /// Uniform value with exactly `bits` bits (top bit set) from `rng`.
  static BigUint random_bits(Rng& rng, int bits);
  /// Uniform value in [0, bound).
  static BigUint random_below(Rng& rng, const BigUint& bound);

  Bytes to_bytes_be() const;
  std::string to_hex() const;
  /// Low 64 bits of the value.
  uint64_t low_u64() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_even() const { return limbs_.empty() || (limbs_[0] & 1) == 0; }
  int bit_length() const;
  bool bit(int i) const;

  /// Three-way comparison: <0, 0, >0.
  static int cmp(const BigUint& a, const BigUint& b);
  bool operator==(const BigUint& o) const { return cmp(*this, o) == 0; }
  bool operator!=(const BigUint& o) const { return cmp(*this, o) != 0; }
  bool operator<(const BigUint& o) const { return cmp(*this, o) < 0; }
  bool operator<=(const BigUint& o) const { return cmp(*this, o) <= 0; }
  bool operator>(const BigUint& o) const { return cmp(*this, o) > 0; }
  bool operator>=(const BigUint& o) const { return cmp(*this, o) >= 0; }

  BigUint operator+(const BigUint& o) const;
  /// Requires *this >= o.
  BigUint operator-(const BigUint& o) const;
  BigUint operator*(const BigUint& o) const;
  BigUint operator<<(int bits) const;
  BigUint operator>>(int bits) const;

  /// Throws std::domain_error on division by zero.
  static DivMod divmod(const BigUint& dividend, const BigUint& divisor);
  BigUint operator/(const BigUint& o) const;
  BigUint operator%(const BigUint& o) const;

  static BigUint gcd(BigUint a, BigUint b);

  /// (base ^ exp) mod m, m > 0.
  static BigUint mod_exp(const BigUint& base, const BigUint& exp, const BigUint& m);
  /// Multiplicative inverse of a mod m; returns zero value if gcd(a, m) != 1.
  static BigUint mod_inverse(const BigUint& a, const BigUint& m);
  static BigUint mod_mul(const BigUint& a, const BigUint& b, const BigUint& m);

  /// Miller-Rabin probabilistic primality test.
  static bool is_probable_prime(const BigUint& n, Rng& rng, int rounds = 24);
  /// Random probable prime with exactly `bits` bits.
  static BigUint random_prime(Rng& rng, int bits);

  const std::vector<uint32_t>& limbs() const { return limbs_; }

 private:
  void normalize();
  std::vector<uint32_t> limbs_;
};

struct DivMod {
  BigUint quotient;
  BigUint remainder;
};

inline BigUint BigUint::operator/(const BigUint& o) const {
  return divmod(*this, o).quotient;
}
inline BigUint BigUint::operator%(const BigUint& o) const {
  return divmod(*this, o).remainder;
}

/// Signed big integer: sign-and-magnitude over BigUint. Only the operations
/// required by extended GCD and Shoup signature reconstruction are provided.
class BigInt {
 public:
  BigInt() = default;
  BigInt(const BigUint& mag, bool negative = false)
      : mag_(mag), neg_(negative && !mag.is_zero()) {}
  explicit BigInt(int64_t v);

  const BigUint& magnitude() const { return mag_; }
  bool negative() const { return neg_; }
  bool is_zero() const { return mag_.is_zero(); }

  BigInt operator+(const BigInt& o) const;
  BigInt operator-(const BigInt& o) const;
  BigInt operator*(const BigInt& o) const;
  BigInt operator-() const { return BigInt(mag_, !neg_); }

  /// Value reduced into [0, m): the canonical representative mod m.
  BigUint mod(const BigUint& m) const;

 private:
  BigUint mag_;
  bool neg_ = false;
};

struct EgcdResult {
  BigUint g;  // gcd(a, b)
  BigInt x;   // a*x + b*y == g
  BigInt y;
};
EgcdResult extended_gcd(const BigUint& a, const BigUint& b);

}  // namespace sbft::crypto
