// From-scratch SHA-256 (FIPS 180-4). The paper uses SHA256 (via Crypto++) for
// all protocol digests; this implementation replaces that dependency.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace sbft::crypto {

class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  Sha256& update(ByteSpan data);
  Sha256& update(std::string_view s) { return update(as_span(s)); }
  /// Finalizes and returns the digest. The object must be reset() before reuse.
  Digest finish();

 private:
  void compress(const uint8_t* block);

  uint32_t h_[8];
  uint8_t buf_[64];
  size_t buf_len_ = 0;
  uint64_t total_len_ = 0;
};

/// One-shot convenience.
Digest sha256(ByteSpan data);
Digest sha256(std::string_view s);

/// sha256(a || b) without materializing the concatenation.
Digest sha256_concat(ByteSpan a, ByteSpan b);

}  // namespace sbft::crypto
