// Protocol configuration: cluster sizing (n = 3f + 2c + 1), feature toggles
// corresponding to the paper's four ingredients, and timing parameters.
#pragma once

#include <cstdint>

#include "common/check.h"
#include "proto/types.h"

namespace sbft {

struct ProtocolConfig {
  // --- cluster sizing -------------------------------------------------------
  uint32_t f = 1;  // tolerated Byzantine replicas
  uint32_t c = 0;  // tolerated crashed/slow replicas on the fast path

  uint32_t n() const { return 3 * f + 2 * c + 1; }
  uint32_t fast_quorum() const { return 3 * f + c + 1; }       // sigma threshold
  uint32_t slow_quorum() const { return 2 * f + c + 1; }       // tau threshold
  uint32_t exec_quorum() const { return f + 1; }               // pi threshold
  uint32_t view_change_quorum() const { return 2 * f + 2 * c + 1; }

  // --- ingredient toggles (map to the evaluated protocol variants) ----------
  bool fast_path_enabled = true;        // ingredient 2
  bool execution_collector = true;      // ingredient 3 (single client message)
  uint32_t num_collectors() const { return c + 1; }  // ingredient 4

  // --- windows / batching (§V-F, §VIII) -------------------------------------
  uint64_t win = 256;            // outstanding-block window
  uint64_t checkpoint_interval() const { return win / 2; }
  // Fast-path participation restriction: only within le + win/4 (§V-F).
  bool fast_path_restriction = true;

  uint32_t max_batch = 64;       // upper bound on requests per decision block
  bool adaptive_batching = true; // §VIII adaptive batch parameter

  // --- state transfer (§VIII; normative spec in docs/state_transfer.md) -----
  // Checkpoint snapshots ship as fixed-size chunks addressed by a Merkle tree
  // over chunk hashes, fetched in parallel from every replica holding the
  // stable checkpoint. 0 disables chunking: the whole snapshot envelope ships
  // in one StateTransferReplyMsg (the pre-chunking protocol, kept for the
  // monolithic-vs-chunked comparison in bench_recovery_bench).
  uint32_t state_transfer_chunk_size = 64 * 1024;
  // Upper bound on chunk indices carried by one StateChunkRequestMsg; bounds
  // the per-donor burst a single request can trigger.
  uint32_t state_transfer_max_chunks_per_request = 16;
  // Delta state transfer (docs/state_transfer.md): a probing fetcher
  // advertises its retained checkpoint, and donors still holding that base's
  // chunk hashes answer with a delta manifest so only the chunks that differ
  // travel. false falls back to full-chunked manifests everywhere (kept for
  // the delta-vs-full comparison in bench_recovery_bench).
  bool state_transfer_delta_enabled = true;
  // Delta bases retained per donor: a rejoining fetcher whose retained
  // checkpoint is more than this many checkpoints behind the donor's newest
  // falls back to a full-chunked manifest. Retention costs 32 B per chunk per
  // base (hashes only), so deep histories are cheap for mid-size states.
  uint32_t state_transfer_delta_history = 16;
  // Donor-side chunk-rate limit: at most this many chunks served per donor
  // tick, so a donor serving fetchers under heavy client load bounds its
  // state-transfer burst instead of starving ordering. 0 = unlimited. The
  // trimmed remainder of a throttled request is queued (deduped, bounded)
  // and re-served on the donor tick; only queue overflow under sustained
  // overload falls back to the fetcher's retry, and every trimmed chunk —
  // queued or turned away — counts donor_chunks_throttled.
  uint32_t state_transfer_donor_chunks_per_tick = 0;
  int64_t state_transfer_donor_tick_us = 100'000;
  // PBFT baseline: require a weak checkpoint certificate (f+1 distinct
  // signed checkpoint digests, CheckpointSigShare; donors ship up to 2f+1)
  // with every state-transfer manifest/reply, so a single faulty donor
  // cannot feed a fabricated but root-consistent checkpoint. false restores the old trust-the-channel
  // behaviour (kept for the malicious-donor regression comparison). No effect
  // on SBFT, whose certificates carry the pi threshold signature.
  bool pbft_verify_checkpoint_certs = true;

  // --- timers (microseconds of simulated time) ------------------------------
  int64_t batch_timeout_us = 5'000;        // primary flushes a partial batch
  int64_t fast_path_timeout_us = 150'000;  // collector falls back to slow path
  int64_t view_change_timeout_us = 2'000'000;  // base; doubles per attempt (§VII)
  int64_t client_retry_timeout_us = 4'000'000;
  // Chunked state transfer retry tick: outstanding chunk requests older than
  // this are re-planned onto other donors (resume, never restart).
  int64_t state_transfer_retry_us = 400'000;

  void validate() const {
    SBFT_CHECK(f >= 1);
    SBFT_CHECK(win >= 8);
    SBFT_CHECK(max_batch >= 1);
  }

  /// Primary of a view: round-robin over replica ids 1..n (§V-B).
  ReplicaId primary_of(ViewNum v) const { return static_cast<ReplicaId>(v % n()) + 1; }
};

}  // namespace sbft
