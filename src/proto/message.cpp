#include "proto/message.h"

#include <cstring>

#include "common/serde.h"
#include "crypto/sha256.h"

namespace sbft {

using crypto::Sha256;

// ---------------------------------------------------------------------------
// Digests

Digest Request::digest() const {
  Writer w;
  w.u32(client);
  w.u64(timestamp);
  w.bytes(as_span(op));
  return crypto::sha256(as_span(w.data()));
}

Digest Block::digest() const {
  Sha256 h;
  h.update("sbft.block");
  for (const Request& r : requests) {
    Digest rd = r.digest();
    h.update(as_span(rd));
  }
  return h.finish();
}

size_t Block::wire_size() const {
  size_t total = 4;
  for (const Request& r : requests) total += r.wire_size();
  return total;
}

Digest slot_hash(SeqNum s, ViewNum v, const Digest& block_digest) {
  Writer w;
  w.str("sbft.slot");
  w.u64(s);
  w.u64(v);
  w.digest(block_digest);
  return crypto::sha256(as_span(w.data()));
}

Digest commit_hash(const Digest& tau_signature_digest) {
  Writer w;
  w.str("sbft.commit");
  w.digest(tau_signature_digest);
  return crypto::sha256(as_span(w.data()));
}

Digest ExecCertificate::exec_digest() const {
  Writer w;
  w.str("sbft.exec");
  w.u64(seq);
  w.digest(state_root);
  w.digest(ops_root);
  w.digest(prev_exec_digest);
  return crypto::sha256(as_span(w.data()));
}

Digest genesis_exec_digest() { return crypto::sha256("sbft.genesis"); }

Digest empty_ops_root() { return crypto::sha256("sbft.empty-ops"); }

Digest exec_leaf(ClientId client, uint64_t timestamp, const Digest& value_digest) {
  Writer w;
  w.u32(client);
  w.u64(timestamp);
  w.digest(value_digest);
  return merkle::leaf_hash(as_span(w.data()));
}

size_t SlotEvidence::wire_size() const {
  size_t total = 8 + 2 + 16 + 64 + 8 + lm_sig.size() + fm_sig.size() + 1;
  if (block) total += block->wire_size();
  return total;
}

// ---------------------------------------------------------------------------
// Encoding helpers

namespace {

enum class Tag : uint8_t {
  kClientRequest = 1, kPrePrepare, kSignShare, kFullCommitProof, kPrepare,
  kCommitShare, kFullCommitProofSlow, kSignState, kFullExecuteProof,
  kExecuteAck, kClientReply, kViewChange, kNewView, kGetBlockRequest,
  kGetBlockReply, kStateTransferRequest, kStateTransferReply, kPbftPrepare,
  kPbftCommit, kPbftCheckpoint, kPbftViewChange, kPbftNewView,
  // Chunked state transfer (appended; earlier tag values are wire-stable).
  kStateManifest, kStateChunkRequest, kStateChunk,
  // Group reconfiguration (appended).
  kReconfigBlock,
  // Cross-shard transactions (appended).
  kTxVote, kTxDecision, kTxResult,
};

void put(Writer& w, const Request& r) {
  w.u32(r.client);
  w.u64(r.timestamp);
  w.bytes(as_span(r.op));
  w.bytes(as_span(r.client_sig));
}

Request get_request(Reader& r) {
  Request out;
  out.client = r.u32();
  out.timestamp = r.u64();
  out.op = r.bytes();
  out.client_sig = r.bytes();
  return out;
}

void put(Writer& w, const Block& b) {
  w.u32(static_cast<uint32_t>(b.requests.size()));
  for (const Request& r : b.requests) put(w, r);
}

Block get_block(Reader& r) {
  Block out;
  uint32_t n = r.u32();
  if (n > 1'000'000) return out;  // refuse absurd sizes
  out.requests.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) out.requests.push_back(get_request(r));
  return out;
}

void put(Writer& w, const ExecCertificate& c) {
  w.u64(c.seq);
  w.digest(c.state_root);
  w.digest(c.ops_root);
  w.digest(c.prev_exec_digest);
  w.bytes(as_span(c.pi_sig));
}

ExecCertificate get_cert(Reader& r) {
  ExecCertificate c;
  c.seq = r.u64();
  c.state_root = r.digest();
  c.ops_root = r.digest();
  c.prev_exec_digest = r.digest();
  c.pi_sig = r.bytes();
  return c;
}

void put(Writer& w, const SlotEvidence& e) {
  w.u64(e.seq);
  w.u8(static_cast<uint8_t>(e.lm_kind));
  w.u64(e.lm_view);
  w.digest(e.lm_block_digest);
  w.bytes(as_span(e.lm_sig));
  w.bytes(as_span(e.lm_inner_sig));
  w.u8(static_cast<uint8_t>(e.fm_kind));
  w.u64(e.fm_view);
  w.digest(e.fm_block_digest);
  w.bytes(as_span(e.fm_sig));
  w.boolean(e.block.has_value());
  if (e.block) put(w, *e.block);
}

SlotEvidence get_slot_evidence(Reader& r) {
  SlotEvidence e;
  e.seq = r.u64();
  e.lm_kind = static_cast<SlowEvidence>(r.u8());
  e.lm_view = r.u64();
  e.lm_block_digest = r.digest();
  e.lm_sig = r.bytes();
  e.lm_inner_sig = r.bytes();
  e.fm_kind = static_cast<FastEvidence>(r.u8());
  e.fm_view = r.u64();
  e.fm_block_digest = r.digest();
  e.fm_sig = r.bytes();
  if (r.boolean()) e.block = get_block(r);
  return e;
}

void put(Writer& w, const ViewChangeMsg& m) {
  w.u32(m.sender);
  w.u64(m.next_view);
  w.u64(m.ls);
  put(w, m.checkpoint);
  w.u32(static_cast<uint32_t>(m.slots.size()));
  for (const SlotEvidence& e : m.slots) put(w, e);
}

ViewChangeMsg get_view_change(Reader& r) {
  ViewChangeMsg m;
  m.sender = r.u32();
  m.next_view = r.u64();
  m.ls = r.u64();
  m.checkpoint = get_cert(r);
  uint32_t n = r.u32();
  if (n > 100'000) return m;
  m.slots.reserve(n);
  for (uint32_t i = 0; i < n && r.ok(); ++i) m.slots.push_back(get_slot_evidence(r));
  return m;
}

void put(Writer& w, const ReconfigDelta& d) {
  w.u32(static_cast<uint32_t>(d.adds.size()));
  for (const ReplicaInfo& info : d.adds) {
    w.u32(info.id);
    w.u32(info.node);
  }
  w.u32(static_cast<uint32_t>(d.removes.size()));
  for (ReplicaId r : d.removes) w.u32(r);
  w.u32(d.new_f);
  w.u32(d.new_c);
}

ReconfigDelta get_reconfig_delta(Reader& r) {
  ReconfigDelta d;
  uint32_t adds = r.u32();
  if (adds > 100'000) return d;
  for (uint32_t i = 0; i < adds && r.ok(); ++i) {
    ReplicaInfo info;
    info.id = r.u32();
    info.node = r.u32();
    d.adds.push_back(info);
  }
  uint32_t removes = r.u32();
  if (removes > 100'000) return d;
  for (uint32_t i = 0; i < removes && r.ok(); ++i) d.removes.push_back(r.u32());
  d.new_f = r.u32();
  d.new_c = r.u32();
  return d;
}

void put(Writer& w, const ShardTx& tx) {
  w.u64(tx.txid);
  w.u32(tx.coordinator);
  w.u32(static_cast<uint32_t>(tx.shards.size()));
  for (const TxShardOps& s : tx.shards) {
    w.u32(s.group);
    w.u32(static_cast<uint32_t>(s.ops.size()));
    for (const Bytes& op : s.ops) w.bytes(as_span(op));
  }
}

ShardTx get_shard_tx(Reader& r) {
  ShardTx tx;
  tx.txid = r.u64();
  tx.coordinator = r.u32();
  uint32_t shards = r.u32();
  if (shards > 10'000) return tx;
  for (uint32_t i = 0; i < shards && r.ok(); ++i) {
    TxShardOps s;
    s.group = r.u32();
    uint32_t ops = r.u32();
    if (ops > 1'000'000) return tx;
    for (uint32_t j = 0; j < ops && r.ok(); ++j) s.ops.push_back(r.bytes());
    tx.shards.push_back(std::move(s));
  }
  return tx;
}

void put(Writer& w, const TxGroupCert& c) {
  w.u32(c.group);
  w.boolean(c.commit);
  w.u32(static_cast<uint32_t>(c.votes.size()));
  for (const TxVote& v : c.votes) {
    w.u32(v.replica);
    w.boolean(v.commit);
    w.bytes(as_span(v.sig));
  }
}

TxGroupCert get_tx_group_cert(Reader& r) {
  TxGroupCert c;
  c.group = r.u32();
  c.commit = r.boolean();
  uint32_t n = r.u32();
  if (n > 100'000) return c;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    TxVote v;
    v.replica = r.u32();
    v.commit = r.boolean();
    v.sig = r.bytes();
    c.votes.push_back(std::move(v));
  }
  return c;
}

void put(Writer& w, const TxDecision& d) {
  w.u64(d.txid);
  w.boolean(d.commit);
  w.u32(static_cast<uint32_t>(d.certs.size()));
  for (const TxGroupCert& c : d.certs) put(w, c);
}

TxDecision get_tx_decision(Reader& r) {
  TxDecision d;
  d.txid = r.u64();
  d.commit = r.boolean();
  uint32_t n = r.u32();
  if (n > 10'000) return d;
  for (uint32_t i = 0; i < n && r.ok(); ++i) d.certs.push_back(get_tx_group_cert(r));
  return d;
}

void put(Writer& w, const std::vector<CheckpointSigShare>& proof) {
  w.u32(static_cast<uint32_t>(proof.size()));
  for (const CheckpointSigShare& s : proof) {
    w.u32(s.replica);
    w.bytes(as_span(s.sig));
  }
}

std::vector<CheckpointSigShare> get_checkpoint_proof(Reader& r) {
  std::vector<CheckpointSigShare> proof;
  uint32_t n = r.u32();
  if (n > 100'000) return proof;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    CheckpointSigShare s;
    s.replica = r.u32();
    s.sig = r.bytes();
    proof.push_back(std::move(s));
  }
  return proof;
}

void put(Writer& w, const merkle::BlockProof& p) { w.bytes(as_span(p.encode())); }

merkle::BlockProof get_block_proof(Reader& r) {
  auto p = merkle::BlockProof::decode(as_span(r.bytes()));
  return p.value_or(merkle::BlockProof{});
}

void put(Writer& w, const PbftPreparedCert& c) {
  w.u64(c.seq);
  w.u64(c.view);
  w.digest(c.h);
  put(w, c.block);
}

PbftPreparedCert get_pbft_cert(Reader& r) {
  PbftPreparedCert c;
  c.seq = r.u64();
  c.view = r.u64();
  c.h = r.digest();
  c.block = get_block(r);
  return c;
}

void put(Writer& w, const PbftViewChangeMsg& m) {
  w.u32(m.sender);
  w.u64(m.next_view);
  w.u64(m.ls);
  w.u32(static_cast<uint32_t>(m.prepared.size()));
  for (const auto& c : m.prepared) put(w, c);
}

PbftViewChangeMsg get_pbft_view_change(Reader& r) {
  PbftViewChangeMsg m;
  m.sender = r.u32();
  m.next_view = r.u64();
  m.ls = r.u64();
  uint32_t n = r.u32();
  if (n > 100'000) return m;
  for (uint32_t i = 0; i < n && r.ok(); ++i) m.prepared.push_back(get_pbft_cert(r));
  return m;
}

struct Encoder {
  Writer& w;

  void operator()(const ClientRequestMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kClientRequest));
    put(w, m.request);
  }
  void operator()(const PrePrepareMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kPrePrepare));
    w.u64(m.seq);
    w.u64(m.view);
    put(w, m.block);
  }
  void operator()(const SignShareMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kSignShare));
    w.u64(m.seq);
    w.u64(m.view);
    w.digest(m.block_digest);
    w.digest(m.h);
    w.u32(m.replica);
    w.bytes(as_span(m.sigma_share));
    w.bytes(as_span(m.tau_share));
  }
  void operator()(const FullCommitProofMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kFullCommitProof));
    w.u64(m.seq);
    w.u64(m.view);
    w.digest(m.block_digest);
    w.bytes(as_span(m.sigma_sig));
  }
  void operator()(const PrepareMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kPrepare));
    w.u64(m.seq);
    w.u64(m.view);
    w.digest(m.block_digest);
    w.bytes(as_span(m.tau_sig));
  }
  void operator()(const CommitShareMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kCommitShare));
    w.u64(m.seq);
    w.u64(m.view);
    w.digest(m.commit_digest);
    w.u32(m.replica);
    w.bytes(as_span(m.tau_share));
  }
  void operator()(const FullCommitProofSlowMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kFullCommitProofSlow));
    w.u64(m.seq);
    w.u64(m.view);
    w.digest(m.block_digest);
    w.bytes(as_span(m.tau_sig));
    w.bytes(as_span(m.tau_tau_sig));
  }
  void operator()(const SignStateMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kSignState));
    w.u64(m.seq);
    w.u32(m.replica);
    w.digest(m.exec_digest);
    w.bytes(as_span(m.pi_share));
  }
  void operator()(const FullExecuteProofMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kFullExecuteProof));
    w.u64(m.seq);
    w.digest(m.exec_digest);
    w.bytes(as_span(m.pi_sig));
  }
  void operator()(const ExecuteAckMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kExecuteAck));
    w.u32(m.client);
    w.u64(m.timestamp);
    w.u64(m.index);
    w.bytes(as_span(m.value));
    put(w, m.cert);
    put(w, m.proof);
  }
  void operator()(const ClientReplyMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kClientReply));
    w.u32(m.replica);
    w.u32(m.client);
    w.u64(m.timestamp);
    w.u64(m.seq);
    w.bytes(as_span(m.value));
  }
  void operator()(const ViewChangeMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kViewChange));
    put(w, m);
  }
  void operator()(const NewViewMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kNewView));
    w.u64(m.view);
    w.u32(static_cast<uint32_t>(m.proofs.size()));
    for (const auto& p : m.proofs) put(w, p);
  }
  void operator()(const GetBlockRequestMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kGetBlockRequest));
    w.u32(m.requester);
    w.u64(m.seq);
    w.digest(m.block_digest);
  }
  void operator()(const GetBlockReplyMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kGetBlockReply));
    w.u64(m.seq);
    put(w, m.block);
  }
  void operator()(const StateTransferRequestMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kStateTransferRequest));
    w.u32(m.requester);
    w.u64(m.have_seq);
    w.u64(m.base_seq);
    w.digest(m.base_root);
  }
  void operator()(const StateTransferReplyMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kStateTransferReply));
    w.u64(m.seq);
    put(w, m.cert);
    w.bytes(as_span(m.service_snapshot));
    put(w, m.checkpoint_proof);
  }
  void operator()(const StateManifestMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kStateManifest));
    w.u32(m.donor);
    w.u64(m.seq);
    put(w, m.cert);
    w.digest(m.chunk_root);
    w.u32(m.chunk_count);
    w.u32(m.chunk_size);
    w.u64(m.total_bytes);
    w.u64(m.base_seq);
    w.bytes(as_span(m.delta_bitmap));
    w.u32(static_cast<uint32_t>(m.base_map.size()));
    for (uint32_t j : m.base_map) w.u32(j);
    put(w, m.checkpoint_proof);
  }
  void operator()(const StateChunkRequestMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kStateChunkRequest));
    w.u32(m.requester);
    w.u64(m.seq);
    w.digest(m.chunk_root);
    w.u32(static_cast<uint32_t>(m.indices.size()));
    for (uint32_t i : m.indices) w.u32(i);
  }
  void operator()(const StateChunkMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kStateChunk));
    w.u32(m.donor);
    w.u64(m.seq);
    w.digest(m.chunk_root);
    w.u32(m.index);
    w.u32(m.chunk_count);
    w.bytes(as_span(m.data));
    put(w, m.proof);
  }
  void operator()(const PbftPrepareMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kPbftPrepare));
    w.u64(m.seq);
    w.u64(m.view);
    w.digest(m.h);
    w.u32(m.replica);
  }
  void operator()(const PbftCommitMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kPbftCommit));
    w.u64(m.seq);
    w.u64(m.view);
    w.digest(m.h);
    w.u32(m.replica);
  }
  void operator()(const PbftCheckpointMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kPbftCheckpoint));
    w.u64(m.seq);
    w.digest(m.state_digest);
    w.u32(m.replica);
    w.bytes(as_span(m.sig));
  }
  void operator()(const PbftViewChangeMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kPbftViewChange));
    put(w, m);
  }
  void operator()(const PbftNewViewMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kPbftNewView));
    w.u64(m.view);
    w.u32(static_cast<uint32_t>(m.proofs.size()));
    for (const auto& p : m.proofs) put(w, p);
  }
  void operator()(const ReconfigBlockMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kReconfigBlock));
    put(w, m.delta);
    w.u64(m.nonce);
  }
  void operator()(const TxVoteMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kTxVote));
    w.u64(m.txid);
    w.u32(m.group);
    w.u32(m.replica);
    w.boolean(m.commit);
    w.bytes(as_span(m.sig));
  }
  void operator()(const TxDecisionMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kTxDecision));
    w.u64(m.txid);
    w.boolean(m.commit);
    w.u32(static_cast<uint32_t>(m.certs.size()));
    for (const TxGroupCert& c : m.certs) put(w, c);
  }
  void operator()(const TxResultMsg& m) {
    w.u8(static_cast<uint8_t>(Tag::kTxResult));
    w.u64(m.txid);
    w.u32(m.group);
    w.u32(m.replica);
    w.boolean(m.committed);
  }
};

}  // namespace

Bytes encode_exec_certificate(const ExecCertificate& cert) {
  Writer w;
  put(w, cert);
  return std::move(w).take();
}

std::optional<ExecCertificate> decode_exec_certificate(ByteSpan data) {
  Reader r(data);
  ExecCertificate cert = get_cert(r);
  if (!r.at_end()) return std::nullopt;
  return cert;
}

Bytes encode_message(const Message& msg) {
  Writer w;
  std::visit(Encoder{w}, msg);
  return std::move(w).take();
}

std::optional<Message> decode_message(ByteSpan data) {
  Reader r(data);
  Tag tag = static_cast<Tag>(r.u8());
  std::optional<Message> out;
  switch (tag) {
    case Tag::kClientRequest: {
      ClientRequestMsg m;
      m.request = get_request(r);
      out = m;
      break;
    }
    case Tag::kPrePrepare: {
      PrePrepareMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.block = get_block(r);
      out = m;
      break;
    }
    case Tag::kSignShare: {
      SignShareMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.block_digest = r.digest();
      m.h = r.digest();
      m.replica = r.u32();
      m.sigma_share = r.bytes();
      m.tau_share = r.bytes();
      out = m;
      break;
    }
    case Tag::kFullCommitProof: {
      FullCommitProofMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.block_digest = r.digest();
      m.sigma_sig = r.bytes();
      out = m;
      break;
    }
    case Tag::kPrepare: {
      PrepareMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.block_digest = r.digest();
      m.tau_sig = r.bytes();
      out = m;
      break;
    }
    case Tag::kCommitShare: {
      CommitShareMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.commit_digest = r.digest();
      m.replica = r.u32();
      m.tau_share = r.bytes();
      out = m;
      break;
    }
    case Tag::kFullCommitProofSlow: {
      FullCommitProofSlowMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.block_digest = r.digest();
      m.tau_sig = r.bytes();
      m.tau_tau_sig = r.bytes();
      out = m;
      break;
    }
    case Tag::kSignState: {
      SignStateMsg m;
      m.seq = r.u64();
      m.replica = r.u32();
      m.exec_digest = r.digest();
      m.pi_share = r.bytes();
      out = m;
      break;
    }
    case Tag::kFullExecuteProof: {
      FullExecuteProofMsg m;
      m.seq = r.u64();
      m.exec_digest = r.digest();
      m.pi_sig = r.bytes();
      out = m;
      break;
    }
    case Tag::kExecuteAck: {
      ExecuteAckMsg m;
      m.client = r.u32();
      m.timestamp = r.u64();
      m.index = r.u64();
      m.value = r.bytes();
      m.cert = get_cert(r);
      m.proof = get_block_proof(r);
      out = m;
      break;
    }
    case Tag::kClientReply: {
      ClientReplyMsg m;
      m.replica = r.u32();
      m.client = r.u32();
      m.timestamp = r.u64();
      m.seq = r.u64();
      m.value = r.bytes();
      out = m;
      break;
    }
    case Tag::kViewChange: {
      out = get_view_change(r);
      break;
    }
    case Tag::kNewView: {
      NewViewMsg m;
      m.view = r.u64();
      uint32_t n = r.u32();
      if (n > 100'000) return std::nullopt;
      for (uint32_t i = 0; i < n && r.ok(); ++i)
        m.proofs.push_back(get_view_change(r));
      out = m;
      break;
    }
    case Tag::kGetBlockRequest: {
      GetBlockRequestMsg m;
      m.requester = r.u32();
      m.seq = r.u64();
      m.block_digest = r.digest();
      out = m;
      break;
    }
    case Tag::kGetBlockReply: {
      GetBlockReplyMsg m;
      m.seq = r.u64();
      m.block = get_block(r);
      out = m;
      break;
    }
    case Tag::kStateTransferRequest: {
      StateTransferRequestMsg m;
      m.requester = r.u32();
      m.have_seq = r.u64();
      m.base_seq = r.u64();
      m.base_root = r.digest();
      out = m;
      break;
    }
    case Tag::kStateTransferReply: {
      StateTransferReplyMsg m;
      m.seq = r.u64();
      m.cert = get_cert(r);
      m.service_snapshot = r.bytes();
      m.checkpoint_proof = get_checkpoint_proof(r);
      out = m;
      break;
    }
    case Tag::kStateManifest: {
      StateManifestMsg m;
      m.donor = r.u32();
      m.seq = r.u64();
      m.cert = get_cert(r);
      m.chunk_root = r.digest();
      m.chunk_count = r.u32();
      m.chunk_size = r.u32();
      m.total_bytes = r.u64();
      m.base_seq = r.u64();
      m.delta_bitmap = r.bytes();
      uint32_t n = r.u32();
      // Must admit one entry per chunk up to the manager's chunk-count bound
      // (1u << 20), or an honest mostly-unchanged delta manifest for a huge
      // snapshot would be undecodable. Bound by the bytes actually present
      // before reserving — a forged count must not allocate megabytes.
      if (n > (1u << 20) || uint64_t{n} * 4 > r.remaining()) return std::nullopt;
      m.base_map.reserve(n);
      for (uint32_t i = 0; i < n && r.ok(); ++i) m.base_map.push_back(r.u32());
      m.checkpoint_proof = get_checkpoint_proof(r);
      out = m;
      break;
    }
    case Tag::kStateChunkRequest: {
      StateChunkRequestMsg m;
      m.requester = r.u32();
      m.seq = r.u64();
      m.chunk_root = r.digest();
      uint32_t n = r.u32();
      if (n > 1'000'000) return std::nullopt;
      m.indices.reserve(n);
      for (uint32_t i = 0; i < n && r.ok(); ++i) m.indices.push_back(r.u32());
      out = m;
      break;
    }
    case Tag::kStateChunk: {
      StateChunkMsg m;
      m.donor = r.u32();
      m.seq = r.u64();
      m.chunk_root = r.digest();
      m.index = r.u32();
      m.chunk_count = r.u32();
      m.data = r.bytes();
      m.proof = get_block_proof(r);
      out = m;
      break;
    }
    case Tag::kPbftPrepare: {
      PbftPrepareMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.h = r.digest();
      m.replica = r.u32();
      out = m;
      break;
    }
    case Tag::kPbftCommit: {
      PbftCommitMsg m;
      m.seq = r.u64();
      m.view = r.u64();
      m.h = r.digest();
      m.replica = r.u32();
      out = m;
      break;
    }
    case Tag::kPbftCheckpoint: {
      PbftCheckpointMsg m;
      m.seq = r.u64();
      m.state_digest = r.digest();
      m.replica = r.u32();
      m.sig = r.bytes();
      out = m;
      break;
    }
    case Tag::kPbftViewChange: {
      out = get_pbft_view_change(r);
      break;
    }
    case Tag::kPbftNewView: {
      PbftNewViewMsg m;
      m.view = r.u64();
      uint32_t n = r.u32();
      if (n > 100'000) return std::nullopt;
      for (uint32_t i = 0; i < n && r.ok(); ++i)
        m.proofs.push_back(get_pbft_view_change(r));
      out = m;
      break;
    }
    case Tag::kReconfigBlock: {
      ReconfigBlockMsg m;
      m.delta = get_reconfig_delta(r);
      m.nonce = r.u64();
      out = m;
      break;
    }
    case Tag::kTxVote: {
      TxVoteMsg m;
      m.txid = r.u64();
      m.group = r.u32();
      m.replica = r.u32();
      m.commit = r.boolean();
      m.sig = r.bytes();
      out = m;
      break;
    }
    case Tag::kTxDecision: {
      TxDecisionMsg m;
      m.txid = r.u64();
      m.commit = r.boolean();
      uint32_t n = r.u32();
      if (n > 10'000) return std::nullopt;
      for (uint32_t i = 0; i < n && r.ok(); ++i)
        m.certs.push_back(get_tx_group_cert(r));
      out = m;
      break;
    }
    case Tag::kTxResult: {
      TxResultMsg m;
      m.txid = r.u64();
      m.group = r.u32();
      m.replica = r.u32();
      m.committed = r.boolean();
      out = m;
      break;
    }
    default:
      return std::nullopt;
  }
  if (!r.at_end()) return std::nullopt;
  return out;
}

size_t message_wire_size(const Message& msg) { return encode_message(msg).size(); }

const char* message_type_name(const Message& msg) {
  struct Namer {
    const char* operator()(const ClientRequestMsg&) { return "client-request"; }
    const char* operator()(const PrePrepareMsg&) { return "pre-prepare"; }
    const char* operator()(const SignShareMsg&) { return "sign-share"; }
    const char* operator()(const FullCommitProofMsg&) { return "full-commit-proof"; }
    const char* operator()(const PrepareMsg&) { return "prepare"; }
    const char* operator()(const CommitShareMsg&) { return "commit"; }
    const char* operator()(const FullCommitProofSlowMsg&) { return "full-commit-proof-slow"; }
    const char* operator()(const SignStateMsg&) { return "sign-state"; }
    const char* operator()(const FullExecuteProofMsg&) { return "full-execute-proof"; }
    const char* operator()(const ExecuteAckMsg&) { return "execute-ack"; }
    const char* operator()(const ClientReplyMsg&) { return "client-reply"; }
    const char* operator()(const ViewChangeMsg&) { return "view-change"; }
    const char* operator()(const NewViewMsg&) { return "new-view"; }
    const char* operator()(const GetBlockRequestMsg&) { return "get-block-request"; }
    const char* operator()(const GetBlockReplyMsg&) { return "get-block-reply"; }
    const char* operator()(const StateTransferRequestMsg&) { return "state-transfer-request"; }
    const char* operator()(const StateTransferReplyMsg&) { return "state-transfer-reply"; }
    const char* operator()(const StateManifestMsg&) { return "state-manifest"; }
    const char* operator()(const StateChunkRequestMsg&) { return "state-chunk-request"; }
    const char* operator()(const StateChunkMsg&) { return "state-chunk"; }
    const char* operator()(const PbftPrepareMsg&) { return "pbft-prepare"; }
    const char* operator()(const PbftCommitMsg&) { return "pbft-commit"; }
    const char* operator()(const PbftCheckpointMsg&) { return "pbft-checkpoint"; }
    const char* operator()(const PbftViewChangeMsg&) { return "pbft-view-change"; }
    const char* operator()(const PbftNewViewMsg&) { return "pbft-new-view"; }
    const char* operator()(const ReconfigBlockMsg&) { return "reconfig-block"; }
    const char* operator()(const TxVoteMsg&) { return "tx-vote"; }
    const char* operator()(const TxDecisionMsg&) { return "tx-decision"; }
    const char* operator()(const TxResultMsg&) { return "tx-result"; }
  };
  return std::visit(Namer{}, msg);
}

// ---------------------------------------------------------------------------
// Reconfiguration marker requests (docs/reconfiguration.md)

namespace {
constexpr char kReconfigOpMagic[8] = {'S', 'B', 'F', 'T', 'R', 'C', 'F', 'G'};
}  // namespace

Bytes encode_reconfig_delta(const ReconfigDelta& delta) {
  Writer w;
  put(w, delta);
  return std::move(w).take();
}

std::optional<ReconfigDelta> decode_reconfig_delta(ByteSpan data) {
  Reader r(data);
  ReconfigDelta d = get_reconfig_delta(r);
  if (!r.at_end()) return std::nullopt;
  return d;
}

Request make_reconfig_request(const ReconfigDelta& delta, uint64_t nonce) {
  Request req;
  req.client = kReconfigClient;
  req.timestamp = nonce;
  Writer w;
  w.raw(ByteSpan{reinterpret_cast<const uint8_t*>(kReconfigOpMagic),
                 sizeof(kReconfigOpMagic)});
  put(w, delta);
  req.op = std::move(w).take();
  return req;
}

std::optional<ReconfigDelta> decode_reconfig_request(const Request& req) {
  if (req.client != kReconfigClient) return std::nullopt;
  if (req.op.size() < sizeof(kReconfigOpMagic) ||
      std::memcmp(req.op.data(), kReconfigOpMagic, sizeof(kReconfigOpMagic)) != 0) {
    return std::nullopt;
  }
  return decode_reconfig_delta(
      as_span(req.op).subspan(sizeof(kReconfigOpMagic)));
}

// ---------------------------------------------------------------------------
// Cross-shard transaction marker requests (docs/sharding.md)

namespace {
constexpr char kTxPrepareMagic[8] = {'S', 'B', 'F', 'T', 'T', 'X', 'P', 'R'};
constexpr char kTxDecisionMagic[8] = {'S', 'B', 'F', 'T', 'T', 'X', 'D', 'C'};

bool has_magic(const Bytes& op, const char (&magic)[8]) {
  return op.size() >= sizeof(magic) &&
         std::memcmp(op.data(), magic, sizeof(magic)) == 0;
}
}  // namespace

Bytes encode_shard_tx(const ShardTx& tx) {
  Writer w;
  put(w, tx);
  return std::move(w).take();
}

std::optional<ShardTx> decode_shard_tx(ByteSpan data) {
  Reader r(data);
  ShardTx tx = get_shard_tx(r);
  if (!r.at_end()) return std::nullopt;
  return tx;
}

Request make_tx_prepare_request(const ShardTx& tx, ClientId client,
                                uint64_t timestamp) {
  Request req;
  req.client = client;
  req.timestamp = timestamp;
  Writer w;
  w.raw(ByteSpan{reinterpret_cast<const uint8_t*>(kTxPrepareMagic),
                 sizeof(kTxPrepareMagic)});
  put(w, tx);
  req.op = std::move(w).take();
  return req;
}

std::optional<ShardTx> decode_tx_prepare_request(const Request& req) {
  if (!has_magic(req.op, kTxPrepareMagic)) return std::nullopt;
  return decode_shard_tx(as_span(req.op).subspan(sizeof(kTxPrepareMagic)));
}

Request make_tx_decision_request(const TxDecision& decision) {
  Request req;
  req.client = kShardTxClient;
  req.timestamp = decision.txid;  // txids are unique, not monotone: the
                                  // execution path bypasses the reply cache
  Writer w;
  w.raw(ByteSpan{reinterpret_cast<const uint8_t*>(kTxDecisionMagic),
                 sizeof(kTxDecisionMagic)});
  put(w, decision);
  req.op = std::move(w).take();
  return req;
}

std::optional<TxDecision> decode_tx_decision_request(const Request& req) {
  if (req.client != kShardTxClient) return std::nullopt;
  if (!has_magic(req.op, kTxDecisionMagic)) return std::nullopt;
  Reader r(as_span(req.op).subspan(sizeof(kTxDecisionMagic)));
  TxDecision d = get_tx_decision(r);
  if (!r.at_end()) return std::nullopt;
  return d;
}

}  // namespace sbft
