// Shared protocol identifier types.
#pragma once

#include <cstdint>

namespace sbft {

using SeqNum = uint64_t;    // decision-block sequence number, 1-based
using ViewNum = uint64_t;   // view number, 0-based
using ReplicaId = uint32_t; // replica identifier, 1..n (matches §V)
using ClientId = uint32_t;  // client identifier (disjoint from replica ids)
using NodeId = uint32_t;    // simulator node id (replicas then clients)

}  // namespace sbft
