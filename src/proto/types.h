// Shared protocol identifier types.
#pragma once

#include <cstdint>

namespace sbft {

using SeqNum = uint64_t;    // decision-block sequence number, 1-based
using ViewNum = uint64_t;   // view number, 0-based
using ReplicaId = uint32_t; // replica identifier, 1..n (matches §V)
using ClientId = uint32_t;  // client identifier (disjoint from replica ids)
using NodeId = uint32_t;    // simulator node id (replicas then clients)

/// One member of a membership epoch: the replica's stable identity plus its
/// network address (in the simulator, the node id). Carried by reconfiguration
/// deltas and membership epochs (docs/reconfiguration.md).
struct ReplicaInfo {
  ReplicaId id = 0;
  NodeId node = 0;

  friend bool operator==(const ReplicaInfo& a, const ReplicaInfo& b) {
    return a.id == b.id && a.node == b.node;
  }
};

}  // namespace sbft
