// Protocol messages for SBFT (§V) and the scale-optimized PBFT baseline (§IX).
//
// Messages are passed by shared_ptr inside the simulator; encode()/decode()
// define the canonical wire format used for size accounting (network
// transmission cost) and for the serde round-trip tests. Threshold signature
// payloads are opaque byte strings produced by src/crypto/threshold.h.
#pragma once

#include <memory>
#include <optional>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "merkle/merkle_tree.h"
#include "proto/types.h"

namespace sbft {

// ---------------------------------------------------------------------------
// Requests and decision blocks

struct Request {
  ClientId client = 0;
  uint64_t timestamp = 0;  // strictly monotone per client (§V-A)
  Bytes op;                // opaque service operation
  Bytes client_sig;        // client request signature ([31]; size-modeled)

  Digest digest() const;
  size_t wire_size() const { return 16 + 8 + op.size() + client_sig.size(); }
};

struct Block {
  std::vector<Request> requests;

  Digest digest() const;
  size_t wire_size() const;
};

/// h = H(s || v || digest(block)) — the hash every path signs (§V-C).
Digest slot_hash(SeqNum s, ViewNum v, const Digest& block_digest);
/// Digest signed by the tau(tau(h)) commit round (slow path, §V-E).
Digest commit_hash(const Digest& tau_signature_digest);

/// Chained execution digest d_s = H(s || state_root || ops_root || d_{s-1}).
struct ExecCertificate {
  SeqNum seq = 0;
  Digest state_root{};       // service Merkle root after executing block s
  Digest ops_root{};         // Merkle root over the block's (op, result) leaves
  Digest prev_exec_digest{}; // d_{s-1}
  Bytes pi_sig;              // pi threshold signature over exec_digest()

  Digest exec_digest() const;
  size_t wire_size() const { return 8 + 3 * 32 + pi_sig.size(); }
};

/// d_0 of the chained execution digest (state before any block executed).
Digest genesis_exec_digest();
/// ops_root of a decision block that carries no operations.
Digest empty_ops_root();

/// Standalone ExecCertificate encoding (WAL records, snapshot files); the
/// in-message encoding is identical.
Bytes encode_exec_certificate(const ExecCertificate& cert);
std::optional<ExecCertificate> decode_exec_certificate(ByteSpan data);

/// Leaf of the per-block operations tree for op l. The leaf binds
/// (client, timestamp, output): the pair (client, timestamp) uniquely names
/// the operation (clients sign monotone timestamps, §V-A), and the committed
/// block binds its content, so the client can verify its result without the
/// replicas re-hashing every operation payload.
Digest exec_leaf(ClientId client, uint64_t timestamp, const Digest& value_digest);

// ---------------------------------------------------------------------------
// Common-case messages (§V-C, §V-D, §V-E)

struct ClientRequestMsg {
  Request request;
};

struct PrePrepareMsg {
  SeqNum seq = 0;
  ViewNum view = 0;
  Block block;
};

struct SignShareMsg {  // replica -> C-collectors; carries sigma and tau shares
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest block_digest{};  // collectors verify h == slot_hash(seq, view, .)
  Digest h{};
  ReplicaId replica = 0;
  Bytes sigma_share;
  Bytes tau_share;
};

struct FullCommitProofMsg {  // C-collector -> all (fast path)
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest block_digest{};  // lets receivers rebuild h = slot_hash(seq, view, .)
  Bytes sigma_sig;        // sigma(h)
};

struct PrepareMsg {  // C-collector -> all (slow path trigger)
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest block_digest{};
  Bytes tau_sig;  // tau(h)
};

struct CommitShareMsg {  // replica -> C-collectors (slow path second round)
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest commit_digest{};  // d2 = commit_hash(SHA256(tau(h)))
  ReplicaId replica = 0;
  Bytes tau_share;  // tau_i over d2
};

struct FullCommitProofSlowMsg {  // C-collector -> all (slow path)
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest block_digest{};
  Bytes tau_sig;      // tau(h)
  Bytes tau_tau_sig;  // tau over commit_hash(SHA256(tau(h)))
};

struct SignStateMsg {  // replica -> E-collectors (§V-D)
  SeqNum seq = 0;
  ReplicaId replica = 0;
  Digest exec_digest{};
  Bytes pi_share;
};

struct FullExecuteProofMsg {  // E-collector -> all
  SeqNum seq = 0;
  Digest exec_digest{};
  Bytes pi_sig;
};

struct ExecuteAckMsg {  // E-collector -> client (single-message ack, §V-A)
  ClientId client = 0;
  uint64_t timestamp = 0;
  uint64_t index = 0;  // position l within the decision block
  Bytes value;         // operation output val
  ExecCertificate cert;
  merkle::BlockProof proof;
};

struct ClientReplyMsg {  // per-replica reply (f+1 fallback / non-collector mode)
  ReplicaId replica = 0;
  ClientId client = 0;
  uint64_t timestamp = 0;
  SeqNum seq = 0;
  Bytes value;
};

// ---------------------------------------------------------------------------
// View change (§V-G)

enum class SlowEvidence : uint8_t { kNone = 0, kPrepareCert = 1, kFullProof = 2 };
enum class FastEvidence : uint8_t { kNone = 0, kVote = 1, kFullProof = 2 };

/// Per-slot certificate pair x_j = (lm_j, fm_j) carried by view-change
/// messages. Blocks are attached when the sender has them so the new primary
/// can re-propose without a fetch round.
struct SlotEvidence {
  SeqNum seq = 0;

  SlowEvidence lm_kind = SlowEvidence::kNone;
  ViewNum lm_view = 0;
  Digest lm_block_digest{};
  Bytes lm_sig;        // tau(h) for kPrepareCert; tau(tau(h)) for kFullProof
  Bytes lm_inner_sig;  // the inner tau(h) when lm_kind == kFullProof

  FastEvidence fm_kind = FastEvidence::kNone;
  ViewNum fm_view = 0;
  Digest fm_block_digest{};
  Bytes fm_sig;  // sigma_i(h) share for kVote; sigma(h) for kFullProof

  std::optional<Block> block;  // payload matching the strongest evidence

  size_t wire_size() const;
};

struct ViewChangeMsg {
  ReplicaId sender = 0;
  ViewNum next_view = 0;
  SeqNum ls = 0;  // last stable sequence number
  ExecCertificate checkpoint;  // pi-signed checkpoint at ls (empty at genesis)
  std::vector<SlotEvidence> slots;
};

struct NewViewMsg {
  ViewNum view = 0;
  std::vector<ViewChangeMsg> proofs;  // 2f+2c+1 view-change messages
};

// ---------------------------------------------------------------------------
// Group reconfiguration (docs/reconfiguration.md)

/// Membership delta ordered through the normal agreement path. The resulting
/// roster must satisfy the cluster sizing law exactly:
/// |members ± delta| == 3*new_f + 2*new_c + 1.
struct ReconfigDelta {
  std::vector<ReplicaInfo> adds;  // joining replicas (id + network address)
  std::vector<ReplicaId> removes;
  uint32_t new_f = 0;
  uint32_t new_c = 0;

  size_t wire_size() const { return 8 + adds.size() * 8 + removes.size() * 4 + 8; }
};

Bytes encode_reconfig_delta(const ReconfigDelta& delta);
std::optional<ReconfigDelta> decode_reconfig_delta(ByteSpan data);

/// Administrative request to reorder the replica set. Sent to the primary
/// (the harness injects it on the operator's behalf), which wraps the delta
/// into a reserved marker request (client id 0) and orders it like any block;
/// the epoch takes effect at the next stable checkpoint boundary.
struct ReconfigBlockMsg {
  ReconfigDelta delta;
  uint64_t nonce = 0;  // distinguishes repeated submissions (marker timestamp)
};

/// Client id 0 is reserved for reconfiguration marker requests; real clients
/// occupy node ids >= n and can never carry it.
constexpr ClientId kReconfigClient = 0;

/// Builds the marker Request the primary orders for a reconfiguration.
Request make_reconfig_request(const ReconfigDelta& delta, uint64_t nonce);
/// Decodes a marker request; nullopt when `req` is a normal client request.
std::optional<ReconfigDelta> decode_reconfig_request(const Request& req);

// ---------------------------------------------------------------------------
// Cross-shard transactions (docs/sharding.md)
//
// A deployment partitions the keyspace across independent BFT groups; a
// multi-key transaction touching several groups commits through BFT 2PC:
// every participant group orders a Prepare (locking/validating its keys) and
// votes to the coordinator group, the coordinator orders the Commit/Abort
// decision once it holds a certified vote from every participant, and each
// participant orders the decision to apply or release.

/// One participant group's slice of a cross-shard transaction: the service
/// operations that group applies if the transaction commits.
struct TxShardOps {
  uint32_t group = 0;
  std::vector<Bytes> ops;
};

/// Full transaction body. Every Prepare carries the whole transaction, so
/// each participant (the coordinator group included) can validate the
/// participant set and later apply its own slice without a fetch round.
struct ShardTx {
  uint64_t txid = 0;       // unique (client node id in the high bits)
  uint32_t coordinator = 0;  // lowest participant group id
  std::vector<TxShardOps> shards;  // ascending group order
};

Bytes encode_shard_tx(const ShardTx& tx);
std::optional<ShardTx> decode_shard_tx(ByteSpan data);

/// Client id 1 is reserved for cross-shard decision marker requests (id 0 is
/// kReconfigClient); replica and client node ids in any deployment start past
/// the reserved range, so no real client can carry it.
constexpr ClientId kShardTxClient = 1;

/// Builds the Prepare request a ShardClient sends to one participant group: a
/// normal client request (the sender's own id and per-group monotone
/// timestamp, so the reply cache dedups retries), whose op wraps the
/// transaction under a reserved magic. The marker executor claims it at
/// execution instead of the service.
Request make_tx_prepare_request(const ShardTx& tx, ClientId client,
                                uint64_t timestamp);
/// Decodes a Prepare marker op; nullopt for normal client requests.
std::optional<ShardTx> decode_tx_prepare_request(const Request& req);

/// One replica's vote over (txid, group, commit), authenticated by the
/// deployment's TxAuth HMAC (src/shard/tx_manager.h).
struct TxVote {
  ReplicaId replica = 0;
  bool commit = false;
  Bytes sig;
};

/// f+1 matching votes from one participant group — a certified group vote.
struct TxGroupCert {
  uint32_t group = 0;
  bool commit = false;
  std::vector<TxVote> votes;
};

/// Decision payload ordered as a marker request (client kShardTxClient) in
/// the coordinator and every participant group. Self-certifying: validation
/// happens deterministically at execution, so a Byzantine primary ordering a
/// forged decision is neutralized by every replica rejecting it alike.
struct TxDecision {
  uint64_t txid = 0;
  bool commit = false;  // commit needs f+1 commit votes from EVERY group
  std::vector<TxGroupCert> certs;
};

Request make_tx_decision_request(const TxDecision& decision);
std::optional<TxDecision> decode_tx_decision_request(const Request& req);

/// Participant replica -> coordinator group replicas: this group's vote,
/// emitted when its Prepare executes.
struct TxVoteMsg {
  uint64_t txid = 0;
  uint32_t group = 0;
  ReplicaId replica = 0;
  bool commit = false;
  Bytes sig;  // TxAuth HMAC over (txid, group, replica, commit)
};

/// Coordinator replica -> participant group replicas: the ordered decision
/// plus the vote certificates that justify it.
struct TxDecisionMsg {
  uint64_t txid = 0;
  bool commit = false;
  std::vector<TxGroupCert> certs;
};

/// Participant replica -> client: this group applied (commit) or released
/// (abort) the transaction. The client completes a transaction on f+1
/// matching results from every participant group.
struct TxResultMsg {
  uint64_t txid = 0;
  uint32_t group = 0;
  ReplicaId replica = 0;
  bool committed = false;
};

// ---------------------------------------------------------------------------
// State transfer (§VIII; follows the PBFT code base's mechanism)

/// Fetch of a decision-block payload by digest. Used after a view change when
/// a replica adopted or decided a value whose evidence carried only the
/// digest (a Byzantine view-change sender may omit the block; any of the
/// >= f+c+1 honest replicas that signed it can serve it).
struct GetBlockRequestMsg {
  ReplicaId requester = 0;
  SeqNum seq = 0;
  Digest block_digest{};
};

struct GetBlockReplyMsg {
  SeqNum seq = 0;
  Block block;
};

struct StateTransferRequestMsg {
  ReplicaId requester = 0;
  SeqNum have_seq = 0;  // highest executed sequence at the requester
  // Delta base advertisement (docs/state_transfer.md "delta manifests"): the
  // requester's retained checkpoint, identified by its sequence and the
  // geometry-bound transfer root of its chunked snapshot. base_seq == 0 means
  // no usable base (wiped disk / chunking off): donors answer with a full
  // manifest.
  SeqNum base_seq = 0;
  Digest base_root{};
};

/// One replica's signature over a checkpoint (seq, state_root) pair. The PBFT
/// baseline ships up to 2f+1 of these with a state-transfer manifest; a
/// fetcher accepts from f+1 (a weak certificate: at least one honest voucher)
/// so it never has to take a single donor's word for a checkpoint's
/// legitimacy (SBFT needs none: its certificates carry the pi threshold
/// signature).
struct CheckpointSigShare {
  ReplicaId replica = 0;
  Bytes sig;
};

/// Monolithic reply: the whole snapshot envelope in one message. Legacy path,
/// used when ProtocolConfig::state_transfer_chunk_size == 0; the chunked
/// protocol below replaces it everywhere else (docs/state_transfer.md).
struct StateTransferReplyMsg {
  SeqNum seq = 0;  // checkpoint being shipped
  ExecCertificate cert;
  Bytes service_snapshot;
  // PBFT weak checkpoint certificate (f+1..2f+1 CheckpointSigShare); empty
  // under SBFT.
  std::vector<CheckpointSigShare> checkpoint_proof;
};

// --- chunked state transfer (docs/state_transfer.md is the normative spec) --

/// Donor -> fetcher: describes the chunked form of the donor's shippable
/// (certificate, snapshot) pair. chunk_root is the BlockMerkleTree root over
/// leaf_hash(chunk_i); the fetcher verifies every chunk against it, and the
/// assembled envelope against cert.state_root (the certified binding).
struct StateManifestMsg {
  ReplicaId donor = 0;
  SeqNum seq = 0;  // == cert.seq
  ExecCertificate cert;
  Digest chunk_root{};
  uint32_t chunk_count = 0;
  uint32_t chunk_size = 0;     // bytes per chunk (last chunk may be shorter)
  uint64_t total_bytes = 0;    // size of the snapshot envelope
  // Delta section (base_seq == 0: full manifest, fetch every chunk). When the
  // donor still holds the chunk hashes of the probe's advertised base, it
  // Merkle-diffs the two snapshots: bit i of delta_bitmap set means target
  // chunk i differs from the base and must be fetched; for every unset bit,
  // base_map (in increasing target-index order) names the base chunk index
  // holding identical bytes, so the fetcher seeds it from its local snapshot
  // even across whole-chunk shifts. A lying delta section is caught by the
  // final state-root check and the manifest sender excluded.
  SeqNum base_seq = 0;
  Bytes delta_bitmap;
  std::vector<uint32_t> base_map;
  // PBFT weak checkpoint certificate for `cert` (f+1..2f+1 CheckpointSigShare
  // over (seq, state_root)); empty under SBFT, whose cert carries a pi
  // signature.
  std::vector<CheckpointSigShare> checkpoint_proof;
};

/// Fetcher -> donor: fetch of specific chunks of one transfer. chunk_root
/// here is the *geometry-bound transfer key* (the manifest's tree root hashed
/// with its chunk grid — ChunkedSnapshot::make_transfer_root), so a donor
/// only ever serves a transfer whose geometry it derived itself. Indices are
/// explicit so a resume re-requests exactly the missing set, from whichever
/// donor the fetcher chooses.
struct StateChunkRequestMsg {
  ReplicaId requester = 0;
  SeqNum seq = 0;
  Digest chunk_root{};  // transfer key, not the bare tree root
  std::vector<uint32_t> indices;
};

/// Donor -> fetcher: one chunk plus its Merkle membership proof under the
/// manifest's tree root. Verified chunk-by-chunk, so a corrupt donor is
/// detected on the first bad chunk and the fetch continues from the
/// remaining donors.
struct StateChunkMsg {
  ReplicaId donor = 0;
  SeqNum seq = 0;
  Digest chunk_root{};  // transfer key, matching the request
  uint32_t index = 0;
  uint32_t chunk_count = 0;
  Bytes data;
  merkle::BlockProof proof;
};

// ---------------------------------------------------------------------------
// PBFT baseline messages (all-to-all pattern)

struct PbftPrepareMsg {
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest h{};
  ReplicaId replica = 0;
};

struct PbftCommitMsg {
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest h{};
  ReplicaId replica = 0;
};

struct PbftCheckpointMsg {
  SeqNum seq = 0;
  Digest state_digest{};
  ReplicaId replica = 0;
  // Signature over (seq, state_digest) — accumulated into the checkpoint
  // certificate state transfer ships (CheckpointSigShare). Empty when the
  // cluster runs without checkpoint authentication.
  Bytes sig;
};

struct PbftPreparedCert {
  SeqNum seq = 0;
  ViewNum view = 0;
  Digest h{};
  Block block;
};

struct PbftViewChangeMsg {
  ReplicaId sender = 0;
  ViewNum next_view = 0;
  SeqNum ls = 0;
  std::vector<PbftPreparedCert> prepared;
};

struct PbftNewViewMsg {
  ViewNum view = 0;
  std::vector<PbftViewChangeMsg> proofs;
};

// ---------------------------------------------------------------------------
// The message variant

using Message = std::variant<
    ClientRequestMsg, PrePrepareMsg, SignShareMsg, FullCommitProofMsg,
    PrepareMsg, CommitShareMsg, FullCommitProofSlowMsg, SignStateMsg,
    FullExecuteProofMsg, ExecuteAckMsg, ClientReplyMsg, ViewChangeMsg,
    NewViewMsg, GetBlockRequestMsg, GetBlockReplyMsg, StateTransferRequestMsg,
    StateTransferReplyMsg, StateManifestMsg, StateChunkRequestMsg, StateChunkMsg,
    PbftPrepareMsg, PbftCommitMsg, PbftCheckpointMsg,
    PbftViewChangeMsg, PbftNewViewMsg, ReconfigBlockMsg,
    TxVoteMsg, TxDecisionMsg, TxResultMsg>;

using MessagePtr = std::shared_ptr<const Message>;

template <typename T>
MessagePtr make_message(T msg) {
  return std::make_shared<const Message>(std::move(msg));
}

/// Canonical wire encoding (type tag + payload).
Bytes encode_message(const Message& msg);
/// Decodes a message; nullopt on malformed input.
std::optional<Message> decode_message(ByteSpan data);
/// Wire size of the encoded message (used for network transmission cost).
size_t message_wire_size(const Message& msg);
/// Short human-readable type name (logging, metrics).
const char* message_type_name(const Message& msg);

}  // namespace sbft
