// Chunked, resumable, integrity-verified state transfer (§VIII; the normative
// protocol description lives in docs/state_transfer.md — keep them in sync).
//
// A checkpoint snapshot envelope is split into fixed-size chunks addressed by
// a Merkle tree over chunk hashes (reusing merkle::BlockMerkleTree). A
// rejoining replica broadcasts a probe; every replica holding a newer stable
// checkpoint answers with a manifest (certificate + chunk root + geometry),
// and the fetcher pulls the chunks in parallel from all manifest senders
// (donors), verifying each chunk against the manifest's chunk root before
// storing it. Missing chunks — donor crash, partition, dropped messages — are
// re-planned onto the remaining donors on a retry tick; received chunks are
// never discarded, so a disturbed transfer *resumes* instead of restarting.
// The assembled envelope is finally verified against the certificate's state
// root by ReplicaRuntime::adopt_checkpoint, which closes the trust loop: a
// donor that lied in its manifest is detected there, excluded, and the fetch
// restarts against the remaining donors.
//
// Split of responsibilities: this manager owns the fetch/serve state machine
// and produces/consumes the protocol message *structs*; it never touches the
// network. The ordering engines (SBFT, PBFT) send whatever it hands back and
// feed it what arrives — the same layering rule the rest of the runtime
// follows (the runtime never sends messages).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "merkle/merkle_tree.h"
#include "proto/message.h"

namespace sbft::runtime {

class CheckpointManager;
struct RuntimeStats;

/// Donor-side view of one snapshot envelope: the chunk partition geometry
/// and the Merkle tree over leaf_hash(chunk_i), built once per shippable
/// pair and cached until the stable checkpoint advances. Does NOT retain the
/// envelope bytes — the CheckpointManager already owns them; chunk() slices
/// the caller-provided envelope, so a multi-MB snapshot is never duplicated.
class ChunkedSnapshot {
 public:
  /// `envelope` must be non-empty; `chunk_size` > 0.
  ChunkedSnapshot(ByteSpan envelope, uint32_t chunk_size);

  uint32_t chunk_count() const { return static_cast<uint32_t>(tree_->leaf_count()); }
  uint32_t chunk_size() const { return chunk_size_; }
  uint64_t total_bytes() const { return total_bytes_; }
  const Digest& chunk_root() const { return tree_->root(); }
  /// Geometry-bound transfer key: requests and chunk replies are matched on
  /// this, never on the bare tree root (see make_transfer_root).
  const Digest& transfer_root() const { return transfer_root_; }

  /// Payload bytes of chunk `index` (the last chunk may be shorter).
  /// `envelope` must be the same bytes this snapshot was built over.
  ByteSpan chunk(ByteSpan envelope, uint32_t index) const;
  merkle::BlockProof proof(uint32_t index) const { return tree_->prove(index); }

  /// Leaf digest a verifier recomputes from a received chunk payload.
  static Digest chunk_leaf(ByteSpan data) { return merkle::leaf_hash(data); }

  /// The transfer key binds the chunk tree root to the manifest geometry, so
  /// two manifests agreeing on the envelope but lying about the grid name
  /// *different* transfers: an honest donor never serves (and is never
  /// blamed for) a bogus-geometry fetch — the liar's transfer just starves
  /// and the dead-donors retarget path heals it.
  static Digest make_transfer_root(const Digest& tree_root, uint32_t chunk_size,
                                   uint32_t chunk_count, uint64_t total_bytes);

 private:
  uint32_t chunk_size_;
  uint64_t total_bytes_;
  std::unique_ptr<merkle::BlockMerkleTree> tree_;
  Digest transfer_root_{};
};

/// Fetcher + donor state machine for chunked state transfer. Owned by
/// ReplicaRuntime; driven by the ordering engines.
class StateTransferManager {
 public:
  explicit StateTransferManager(uint32_t chunk_size,
                                uint32_t max_chunks_per_request = 16)
      : chunk_size_(chunk_size),
        max_chunks_per_request_(max_chunks_per_request ? max_chunks_per_request : 1) {}

  /// Chunking enabled? (false => the legacy monolithic reply is used).
  bool chunked() const { return chunk_size_ > 0; }

  // --- fetcher ---------------------------------------------------------------

  /// A fetch round is in progress (probe broadcast, manifest possibly
  /// adopted, chunks possibly partially received).
  bool active() const { return active_; }
  /// A manifest has been adopted (target certificate + chunk root known).
  bool has_target() const { return active_ && target_cert_.seq > 0; }
  const ExecCertificate& target_cert() const { return target_cert_; }
  uint32_t chunks_received() const { return received_; }
  uint32_t chunk_count() const { return chunk_count_; }
  size_t donor_count() const { return donors_.size(); }
  /// Donor was excluded (invalid chunk / failed manifest) for this fetch —
  /// lets engines skip expensive signature checks on its further manifests.
  bool donor_excluded(ReplicaId donor) const { return excluded_.count(donor) > 0; }

  /// Marks a fetch round active (idempotent). The caller broadcasts the
  /// probe; partial state from a disturbed earlier round is kept (resume).
  void begin_probe() { active_ = true; }

  /// Feeds a donor manifest. Returns true when the manifest (re)targeted the
  /// fetch or registered a new donor — i.e. the caller should send the next
  /// request plan. Certificate signature verification (SBFT's pi) is the
  /// caller's job, *before* this call.
  bool on_manifest(const StateManifestMsg& m, SeqNum last_executed);

  enum class ChunkVerdict {
    kRejected,   // stale or off-target; ignore silently
    kInvalid,    // failed Merkle verification: donor excluded, re-plan
    kDuplicate,  // already stored; ignore
    kStored,     // stored; request more
    kCompleted,  // stored and the set is complete: assemble + adopt
  };
  ChunkVerdict on_chunk(const StateChunkMsg& m, RuntimeStats& stats);

  /// Chunk-request batches for missing chunks that are not already
  /// outstanding, fanned out round-robin across the known donors. Empty when
  /// nothing is missing or no donor is usable.
  std::vector<std::pair<ReplicaId, StateChunkRequestMsg>> plan_requests(
      ReplicaId self);

  /// Retry tick: expires outstanding requests, strikes donors that delivered
  /// nothing since the last tick (a struck-out donor is deprioritized; one
  /// serving invalid chunks is excluded outright). Returns true when the
  /// fetch holds partial data and will resume — counted as
  /// stats.state_transfer_resumes.
  bool on_retry(RuntimeStats& stats);

  /// One full retry-timer tick, shared by both ordering engines so the
  /// subtle stop/probe decisions cannot drift between them. `behind` is the
  /// engine's protocol-specific "still demonstrably needs a checkpoint"
  /// check. When `stop`, the fetch is over and the engine disarms its timer;
  /// otherwise the engine re-broadcasts the probe iff `probe`, sends
  /// plan_requests(), and re-arms.
  struct RetryTick {
    bool stop = false;
    bool probe = false;
  };
  RetryTick on_retry_tick(SeqNum last_executed, bool behind, RuntimeStats& stats);

  /// The assembled envelope; valid once on_chunk returned kCompleted.
  Bytes take_envelope();

  /// Folds the result of ReplicaRuntime::adopt_checkpoint(target_cert, ...)
  /// back into the fetch state — shared by both engines so the subtle
  /// stale-target vs lying-manifest distinction cannot drift between them.
  /// Returns true when the engine must re-broadcast the probe (the manifest
  /// sender lied: excluded, fetch restarts against the remaining replicas).
  bool on_adopt_result(bool adopted, SeqNum last_executed);

  /// Final verification against cert.state_root failed: the manifest sender
  /// lied (or raced a bogus manifest in first). Excludes it and drops the
  /// target so the next probe re-targets from the remaining donors.
  void manifest_failed();

  /// Fetch finished (envelope adopted) or became moot (caught up through the
  /// ordering protocol): clears all fetch state.
  void finish();

  // --- donor -----------------------------------------------------------------

  /// Checkpoint sequence the donor chunk cache currently covers (0 = cold).
  /// A manifest/chunk request for a different shippable pair rebuilds the
  /// cache — that rebuild, not every request, is what hashes the envelope.
  SeqNum donor_cached_seq() const { return donor_chunks_ ? donor_seq_ : 0; }

  /// Manifest for the current shippable pair; nullopt when there is none or
  /// it is not newer than `have_seq`.
  std::optional<StateManifestMsg> make_manifest(const CheckpointManager& cp,
                                                SeqNum have_seq, ReplicaId self);

  /// Chunk replies for a fetch request against the current shippable pair;
  /// empty when the request does not match it (stale root, wrong seq).
  std::vector<StateChunkMsg> make_chunks(const CheckpointManager& cp,
                                         const StateChunkRequestMsg& req,
                                         ReplicaId self, RuntimeStats& stats);

 private:
  void retarget(const StateManifestMsg& m);
  /// Clears every per-target field (target, chunks, donors, strike and
  /// outstanding bookkeeping). Exclusions, rotation, and active_ are managed
  /// by the callers (manifest_failed keeps them; finish drops everything).
  void reset_fetch_state();
  const ChunkedSnapshot* donor_snapshot(const CheckpointManager& cp);

  // Refuse absurd manifests (memory-bound guard; a lying donor is caught by
  // verification, but only if we don't allocate ourselves to death first).
  static constexpr uint64_t kMaxTotalBytes = 1ull << 31;
  static constexpr uint32_t kMaxChunks = 1u << 20;
  static constexpr uint32_t kStrikeLimit = 2;

  uint32_t chunk_size_;
  uint32_t max_chunks_per_request_;

  // Fetcher state.
  bool active_ = false;
  ExecCertificate target_cert_;        // seq == 0: no manifest adopted yet
  ReplicaId manifest_donor_ = 0;
  Digest chunk_root_{};                // tree root: chunk proofs verify here
  Digest transfer_root_{};             // geometry-bound key: messages match here
  uint32_t chunk_count_ = 0;
  uint32_t target_chunk_size_ = 0;
  uint64_t total_bytes_ = 0;
  std::vector<Bytes> chunks_;          // empty vector element == missing
  uint32_t received_ = 0;
  std::vector<ReplicaId> donors_;      // manifest senders, arrival order
  std::map<ReplicaId, uint32_t> strikes_;
  // Donors that reached kStrikeLimit. Unlike strikes_ (which plan_requests
  // forgives when nobody else is left to ask), this evidence persists until
  // the donor actually delivers again or the fetch re-targets — it is what
  // the dead-donors re-target decision reads, so forgiveness-for-planning
  // can never erase the proof that the adopted transfer is unobtainable.
  std::set<ReplicaId> struck_out_;
  std::set<ReplicaId> excluded_;       // served an invalid chunk / bad manifest
  // Missing indices partitioned into unplanned (fetchable now) and
  // outstanding (requested since the last retry tick), so a plan refill is
  // O(assigned), not a rescan of every chunk.
  std::set<uint32_t> unplanned_;
  std::set<uint32_t> outstanding_;
  std::map<ReplicaId, std::set<uint32_t>> outstanding_by_donor_;
  std::set<ReplicaId> delivered_since_tick_;
  uint32_t rotation_ = 0;              // donor round-robin offset

  // Donor-side chunk cache for the current shippable pair.
  SeqNum donor_seq_ = 0;
  std::unique_ptr<ChunkedSnapshot> donor_chunks_;
};

}  // namespace sbft::runtime
