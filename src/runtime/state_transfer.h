// Chunked, resumable, integrity-verified state transfer (§VIII; the normative
// protocol description lives in docs/state_transfer.md — keep them in sync).
//
// A checkpoint snapshot envelope is split into fixed-size chunks addressed by
// a Merkle tree over chunk hashes (reusing merkle::BlockMerkleTree). A
// rejoining replica broadcasts a probe; every replica holding a newer stable
// checkpoint answers with a manifest (certificate + chunk root + geometry),
// and the fetcher pulls the chunks in parallel from all manifest senders
// (donors), verifying each chunk against the manifest's chunk root before
// storing it. Missing chunks — donor crash, partition, dropped messages — are
// re-planned onto the remaining donors on a retry tick; received chunks are
// never discarded, so a disturbed transfer *resumes* instead of restarting.
// The assembled envelope is finally verified against the certificate's state
// root by ReplicaRuntime::adopt_checkpoint, which closes the trust loop: a
// donor that lied in its manifest is detected there, excluded, and the fetch
// restarts against the remaining donors.
//
// Two refinements for the common briefly-behind case:
//   * Delta transfer: the probe advertises the fetcher's retained checkpoint
//     (seq + transfer root); a donor still holding that base's chunk hashes
//     Merkle-diffs the two snapshots and its manifest marks the chunks that
//     differ — the fetcher seeds every unchanged chunk from its local
//     snapshot and fetches only the delta. Unknown base or no shared chunks
//     falls back to the full-chunked path automatically.
//   * Donor-side chunk-rate limiting: a donor bounds chunks served per tick
//     so state transfer cannot starve ordering under load; the trimmed
//     remainder of a throttled request is re-served on the donor tick.
//
// Split of responsibilities: this manager owns the fetch/serve state machine
// and produces/consumes the protocol message *structs*; it never touches the
// network. The ordering engines (SBFT, PBFT) send whatever it hands back and
// feed it what arrives — the same layering rule the rest of the runtime
// follows (the runtime never sends messages).
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "merkle/merkle_tree.h"
#include "proto/message.h"

namespace sbft::runtime {

class CheckpointManager;
struct RuntimeStats;

/// Donor-side view of one snapshot envelope: the chunk partition geometry
/// and the Merkle tree over leaf_hash(chunk_i), built once per shippable
/// pair and cached until the stable checkpoint advances. Does NOT retain the
/// envelope bytes — the CheckpointManager already owns them; chunk() slices
/// the caller-provided envelope, so a multi-MB snapshot is never duplicated.
class ChunkedSnapshot {
 public:
  /// `envelope` must be non-empty; `chunk_size` > 0.
  ChunkedSnapshot(ByteSpan envelope, uint32_t chunk_size);

  uint32_t chunk_count() const { return static_cast<uint32_t>(tree_->leaf_count()); }
  uint32_t chunk_size() const { return chunk_size_; }
  uint64_t total_bytes() const { return total_bytes_; }
  const Digest& chunk_root() const { return tree_->root(); }
  /// Geometry-bound transfer key: requests and chunk replies are matched on
  /// this, never on the bare tree root (see make_transfer_root).
  const Digest& transfer_root() const { return transfer_root_; }

  /// Payload bytes of chunk `index` (the last chunk may be shorter).
  /// `envelope` must be the same bytes this snapshot was built over.
  ByteSpan chunk(ByteSpan envelope, uint32_t index) const;
  merkle::BlockProof proof(uint32_t index) const { return tree_->prove(index); }

  /// Leaf digest a verifier recomputes from a received chunk payload.
  static Digest chunk_leaf(ByteSpan data) { return merkle::leaf_hash(data); }

  /// All chunk leaf hashes in index order (delta diffing between snapshots).
  const std::vector<Digest>& leaf_hashes() const { return tree_->leaves(); }

  /// The transfer key binds the chunk tree root to the manifest geometry, so
  /// two manifests agreeing on the envelope but lying about the grid name
  /// *different* transfers: an honest donor never serves (and is never
  /// blamed for) a bogus-geometry fetch — the liar's transfer just starves
  /// and the dead-donors retarget path heals it.
  static Digest make_transfer_root(const Digest& tree_root, uint32_t chunk_size,
                                   uint32_t chunk_count, uint64_t total_bytes);

 private:
  uint32_t chunk_size_;
  uint64_t total_bytes_;
  std::unique_ptr<merkle::BlockMerkleTree> tree_;
  Digest transfer_root_{};
};

/// Fetcher + donor state machine for chunked state transfer. Owned by
/// ReplicaRuntime; driven by the ordering engines.
class StateTransferManager {
 public:
  explicit StateTransferManager(uint32_t chunk_size,
                                uint32_t max_chunks_per_request = 16,
                                uint32_t donor_chunks_per_tick = 0,
                                bool delta_enabled = true,
                                size_t delta_history = kDefaultDonorHistory)
      : chunk_size_(chunk_size),
        max_chunks_per_request_(max_chunks_per_request ? max_chunks_per_request : 1),
        donor_chunks_per_tick_(donor_chunks_per_tick),
        delta_enabled_(delta_enabled),
        delta_history_(delta_history ? delta_history : 1) {}

  /// Delta bases retained per donor (ProtocolConfig::state_transfer_delta_history).
  size_t delta_history() const { return delta_history_; }

  /// Default delta-base retention: a fetcher whose base is older than this
  /// many checkpoints behind a donor falls back to a full-chunked manifest.
  static constexpr size_t kDefaultDonorHistory = 16;

  /// Chunking enabled? (false => the legacy monolithic reply is used).
  bool chunked() const { return chunk_size_ > 0; }

  // --- fetcher ---------------------------------------------------------------

  /// A fetch round is in progress (probe broadcast, manifest possibly
  /// adopted, chunks possibly partially received).
  bool active() const { return active_; }
  /// A manifest has been adopted (target certificate + chunk root known).
  bool has_target() const { return active_ && target_cert_.seq > 0; }
  const ExecCertificate& target_cert() const { return target_cert_; }
  uint32_t chunks_received() const { return received_; }
  uint32_t chunk_count() const { return chunk_count_; }
  size_t donor_count() const { return donors_.size(); }
  /// Donor was excluded (invalid chunk / failed manifest) for this fetch —
  /// lets engines skip expensive signature checks on its further manifests.
  bool donor_excluded(ReplicaId donor) const { return excluded_.count(donor) > 0; }

  /// Marks a fetch round active (idempotent) and clears the delta-base
  /// advertisement. Unit-test/no-base entry point; engines use make_probe.
  void begin_probe() {
    active_ = true;
    probe_base_seq_ = 0;
    probe_base_root_ = Digest{};
  }

  /// Marks a fetch round active and builds the probe to broadcast. When this
  /// replica retains a shippable checkpoint (and delta transfer is on), the
  /// probe advertises it as the delta base: donors still holding that base's
  /// chunk hashes answer with a delta manifest, and the fetcher seeds the
  /// unchanged chunks from its local snapshot. Partial state from a disturbed
  /// earlier round is kept (resume).
  StateTransferRequestMsg make_probe(const CheckpointManager& cp, ReplicaId self,
                                     SeqNum last_executed);

  /// Feeds a donor manifest. Returns true when the manifest (re)targeted the
  /// fetch or registered a new donor — i.e. the caller should send the next
  /// request plan (or, when fetch_complete(), adopt immediately: a delta
  /// manifest may seed every chunk from the local base). Certificate
  /// signature verification (SBFT's pi) is the caller's job, *before* this
  /// call. `cp` is this replica's own checkpoint state — the source the
  /// delta-seeded chunks are copied from.
  bool on_manifest(const StateManifestMsg& m, SeqNum last_executed,
                   const CheckpointManager& cp, RuntimeStats& stats);

  /// Every chunk is in hand (arrived or delta-seeded): assemble + adopt.
  bool fetch_complete() const {
    return has_target() && received_ == chunk_count_;
  }

  enum class ChunkVerdict {
    kRejected,   // stale or off-target; ignore silently
    kInvalid,    // failed Merkle verification: donor excluded, re-plan
    kDuplicate,  // already stored; ignore
    kStored,     // stored; request more
    kCompleted,  // stored and the set is complete: assemble + adopt
  };
  ChunkVerdict on_chunk(const StateChunkMsg& m, RuntimeStats& stats);

  /// Chunk-request batches for missing chunks that are not already
  /// outstanding, fanned out round-robin across the known donors. Empty when
  /// nothing is missing or no donor is usable.
  std::vector<std::pair<ReplicaId, StateChunkRequestMsg>> plan_requests(
      ReplicaId self);

  /// Retry tick: expires outstanding requests, strikes donors that delivered
  /// nothing since the last tick (a struck-out donor is deprioritized; one
  /// serving invalid chunks is excluded outright). Returns true when the
  /// fetch holds partial data and will resume — counted as
  /// stats.state_transfer_resumes.
  bool on_retry(RuntimeStats& stats);

  /// One full retry-timer tick, shared by both ordering engines so the
  /// subtle stop/probe decisions cannot drift between them. `behind` is the
  /// engine's protocol-specific "still demonstrably needs a checkpoint"
  /// check. When `stop`, the fetch is over and the engine disarms its timer;
  /// otherwise the engine re-broadcasts the probe iff `probe`, sends
  /// plan_requests(), and re-arms.
  struct RetryTick {
    bool stop = false;
    bool probe = false;
  };
  RetryTick on_retry_tick(SeqNum last_executed, bool behind, RuntimeStats& stats);

  /// The assembled envelope; valid once on_chunk returned kCompleted.
  Bytes take_envelope();

  /// Folds the result of ReplicaRuntime::adopt_checkpoint(target_cert, ...)
  /// back into the fetch state — shared by both engines so the subtle
  /// stale-target vs lying-manifest distinction cannot drift between them.
  /// Returns true when the engine must re-broadcast the probe (the manifest
  /// sender lied: excluded, fetch restarts against the remaining replicas).
  bool on_adopt_result(bool adopted, SeqNum last_executed);

  /// Final verification against cert.state_root failed: the manifest sender
  /// lied (or raced a bogus manifest in first). Excludes it and drops the
  /// target so the next probe re-targets from the remaining donors.
  void manifest_failed();

  /// Excludes `donor` for the rest of this fetch round on protocol-layer
  /// evidence the manager cannot see itself (e.g. a manifest whose checkpoint
  /// certificate failed quorum verification). Its outstanding chunk requests
  /// become re-plannable immediately; if it authored the adopted manifest the
  /// target is dropped like manifest_failed().
  void exclude_donor(ReplicaId donor);

  /// Fetch finished (envelope adopted) or became moot (caught up through the
  /// ordering protocol): clears all fetch state.
  void finish();

  // --- donor -----------------------------------------------------------------

  /// Checkpoint sequence the donor chunk cache currently covers (0 = cold).
  /// A manifest/chunk request for a different shippable pair rebuilds the
  /// cache — that rebuild, not every request, is what hashes the envelope.
  SeqNum donor_cached_seq() const { return donor_chunks_ ? donor_seq_ : 0; }

  /// A new shippable pair was sealed (stable checkpoint advanced or adopted):
  /// rebuilds the donor chunk cache eagerly, retiring the previous pair's
  /// chunk hashes into the delta-base history. Called by ReplicaRuntime; the
  /// caller charges one envelope hash when it returns true (cache rebuilt).
  bool note_checkpoint(const CheckpointManager& cp);

  /// Manifest for the current shippable pair; nullopt when there is none or
  /// it is not newer than probe.have_seq. When the probe advertises a base
  /// this donor retains (and delta transfer is on), the manifest carries the
  /// chunk diff against it.
  std::optional<StateManifestMsg> make_manifest(const CheckpointManager& cp,
                                                const StateTransferRequestMsg& probe,
                                                ReplicaId self);

  /// Chunk replies for a fetch request against the current shippable pair;
  /// empty when the request does not match it (stale root, wrong seq). When
  /// the donor chunk-rate limit is hit, the trimmed remainder of the request
  /// is queued for the next donor tick instead of being dropped.
  /// `requester_node` is the channel node the request arrived from — the
  /// deferred remainder is re-served there (a joiner's id resolves through
  /// no roster the donor holds yet).
  std::vector<StateChunkMsg> make_chunks(const CheckpointManager& cp,
                                         const StateChunkRequestMsg& req,
                                         ReplicaId self, RuntimeStats& stats,
                                         NodeId requester_node = 0);

  /// Donor tick: resets the per-tick serve budget and re-serves the requests
  /// the rate limiter deferred (dropping the ones the checkpoint advanced
  /// past — the fetcher's retry covers those). The engine sends each chunk to
  /// the returned *node* and re-arms the tick while donor_tick_needed().
  std::vector<std::pair<NodeId, StateChunkMsg>> on_donor_tick(
      const CheckpointManager& cp, ReplicaId self, RuntimeStats& stats);

  /// A donor tick must be scheduled: the budget is in use or requests wait.
  bool donor_tick_needed() const {
    return donor_chunks_per_tick_ > 0 &&
           (donor_served_this_tick_ > 0 || !donor_deferred_.empty());
  }
  size_t donor_deferred_requests() const { return donor_deferred_.size(); }

 private:
  void retarget(const StateManifestMsg& m);
  /// Seeds the chunks a delta manifest marks unchanged from the local base
  /// snapshot (no-op when the delta section is absent or unusable).
  void seed_from_base(const StateManifestMsg& m, const CheckpointManager& cp,
                      RuntimeStats& stats);
  /// Clears every per-target field (target, chunks, donors, strike and
  /// outstanding bookkeeping). Exclusions, rotation, and active_ are managed
  /// by the callers (manifest_failed keeps them; finish drops everything).
  void reset_fetch_state();
  const ChunkedSnapshot* donor_snapshot(const CheckpointManager& cp);

  // Refuse absurd manifests (memory-bound guard; a lying donor is caught by
  // verification, but only if we don't allocate ourselves to death first).
  static constexpr uint64_t kMaxTotalBytes = 1ull << 31;
  static constexpr uint32_t kMaxChunks = 1u << 20;
  static constexpr uint32_t kStrikeLimit = 2;
  // Bound on chunk indices queued by the donor rate limiter; overflow falls
  // back to the fetcher's retry instead of growing donor memory.
  static constexpr size_t kMaxDeferredChunks = 4096;

  uint32_t chunk_size_;
  uint32_t max_chunks_per_request_;
  uint32_t donor_chunks_per_tick_;
  bool delta_enabled_;
  // Delta bases retained per donor (chunk *hashes* only — 32 B per chunk, the
  // envelope bytes are never duplicated).
  size_t delta_history_;

  // Fetcher state.
  bool active_ = false;
  ExecCertificate target_cert_;        // seq == 0: no manifest adopted yet
  ReplicaId manifest_donor_ = 0;
  Digest chunk_root_{};                // tree root: chunk proofs verify here
  Digest transfer_root_{};             // geometry-bound key: messages match here
  uint32_t chunk_count_ = 0;
  uint32_t target_chunk_size_ = 0;
  uint64_t total_bytes_ = 0;
  std::vector<Bytes> chunks_;          // empty vector element == missing
  uint32_t received_ = 0;
  std::vector<ReplicaId> donors_;      // manifest senders, arrival order
  std::map<ReplicaId, uint32_t> strikes_;
  // Donors that reached kStrikeLimit. Unlike strikes_ (which plan_requests
  // forgives when nobody else is left to ask), this evidence persists until
  // the donor actually delivers again or the fetch re-targets — it is what
  // the dead-donors re-target decision reads, so forgiveness-for-planning
  // can never erase the proof that the adopted transfer is unobtainable.
  std::set<ReplicaId> struck_out_;
  std::set<ReplicaId> excluded_;       // served an invalid chunk / bad manifest
  // Missing indices partitioned into unplanned (fetchable now) and
  // outstanding (requested since the last retry tick), so a plan refill is
  // O(assigned), not a rescan of every chunk.
  std::set<uint32_t> unplanned_;
  std::set<uint32_t> outstanding_;
  std::map<ReplicaId, std::set<uint32_t>> outstanding_by_donor_;
  std::set<ReplicaId> delivered_since_tick_;
  uint32_t rotation_ = 0;              // donor round-robin offset
  // Delta base advertised by the most recent probe (0: none). A delta
  // manifest is only honoured when it answers exactly this advertisement.
  SeqNum probe_base_seq_ = 0;
  Digest probe_base_root_{};
  // Donors whose delta sections seeded chunks for the current target. Seeded
  // bytes carry no per-chunk proof (only the final state-root check covers
  // them), so when adoption fails these are excluded alongside the manifest
  // sender — a lying delta section must not survive the round it poisoned,
  // and must never get the adopted manifest's sender blamed in its place.
  std::set<ReplicaId> seed_donors_;

  // Donor-side chunk cache for the current shippable pair.
  SeqNum donor_seq_ = 0;
  std::unique_ptr<ChunkedSnapshot> donor_chunks_;
  // Chunk hashes of recently retired shippable pairs: the delta bases this
  // donor can still diff against. The transfer root binds the full geometry
  // (chunk size, count, total bytes); chunk_size is kept only for the cheap
  // pre-check before the root comparison.
  struct DonorBaseRecord {
    Digest transfer_root{};
    std::vector<Digest> leaves;
    uint32_t chunk_size = 0;
  };
  std::map<SeqNum, DonorBaseRecord> donor_history_;
  // Memoized delta diff (pure function of base seq × current pair): repeat
  // probes from a still-behind fetcher reuse it instead of re-walking every
  // chunk hash. Invalidated by seq mismatch on either side.
  SeqNum diff_base_seq_ = 0;
  SeqNum diff_target_seq_ = 0;
  Bytes diff_bitmap_;
  std::vector<uint32_t> diff_base_map_;
  // Rate limiter: chunks served since the last donor tick, and the trimmed
  // requests awaiting the next tick (re-validated against the then-current
  // shippable pair when drained). Each entry keeps the channel node the
  // request arrived from, so the re-serve reaches joiners too.
  struct DeferredRequest {
    NodeId node = 0;
    StateChunkRequestMsg req;
  };
  uint32_t donor_served_this_tick_ = 0;
  std::vector<DeferredRequest> donor_deferred_;
};

}  // namespace sbft::runtime
