// Protocol-agnostic replica runtime.
//
// Both ordering engines — SBFT (src/core/replica.h) and the scale-optimized
// PBFT baseline (src/pbft/pbft_replica.h) — decide *which* block commits at
// each sequence number; everything that happens after that decision is
// identical and lives here:
//   * the execution pipeline: in-order execution of committed blocks through
//     the generic service, the chained execution digests d_s, and the
//     execution records (values, Merkle leaves, certificates) that back
//     client acks and block fetches,
//   * the per-client ReplyCache, serialized into checkpoint snapshots so a
//     recovered replica answers duplicates of pre-checkpoint requests from
//     cache instead of re-executing them,
//   * checkpointing through the CheckpointManager (snapshot capture at
//     checkpoint-execution time, stable-certificate tracking, record GC),
//   * durability: ledger persistence of decision blocks, the WAL hooks
//     (views, votes, checkpoints), and boot-time recovery through the
//     RecoveryManager (§VIII).
//
// The runtime never sends messages and holds no view/quorum state — that is
// the ordering engine's job. This split is what makes every crash/restart/
// disk-wipe scenario in the harness write-once-run-on-both.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "kv/service.h"
#include "obs/trace.h"
#include "proto/message.h"
#include "recovery/wal.h"
#include "runtime/checkpoint_manager.h"
#include "runtime/evidence_store.h"
#include "runtime/marker_executor.h"
#include "runtime/membership.h"
#include "runtime/reply_cache.h"
#include "runtime/state_transfer.h"
#include "sim/network.h"
#include "storage/ledger_storage.h"

namespace sbft::runtime {

struct RuntimeOptions {
  uint64_t checkpoint_interval = 0;  // 0: checkpoints disabled
  std::shared_ptr<storage::ILedgerStorage> ledger;  // optional persistence
  std::shared_ptr<recovery::IReplicaWal> wal;       // optional consensus WAL
  // Chunked state transfer (ProtocolConfig::state_transfer_chunk_size /
  // _max_chunks_per_request); chunk size 0 keeps the monolithic protocol.
  uint32_t state_transfer_chunk_size = 0;
  uint32_t state_transfer_max_chunks_per_request = 16;
  // Delta state transfer + donor-side chunk-rate limit (docs/state_transfer.md;
  // ProtocolConfig::state_transfer_delta_enabled / _donor_chunks_per_tick).
  bool state_transfer_delta_enabled = true;
  uint32_t state_transfer_donor_chunks_per_tick = 0;
  // Delta bases retained per donor (ProtocolConfig::state_transfer_delta_history).
  uint32_t state_transfer_delta_history = 16;
  // Marker-request executor (src/shard 2PC; docs/sharding.md). Not owned —
  // the harness keeps it alive across replica incarnations, like the ledger.
  // Null routes every non-reconfig request to the service, as before.
  IMarkerExecutor* marker_executor = nullptr;
  // Group reconfiguration (docs/reconfiguration.md): the bootstrap roster
  // this replica starts from (the genesis epoch, or — for a joining replica —
  // the epoch the operator handed it; state transfer moves it forward from
  // there). Empty leaves membership unconfigured: reconfiguration markers are
  // ignored and every membership query is a no-op (runtime-only unit tests).
  uint32_t membership_f = 0;
  uint32_t membership_c = 0;
  std::vector<ReplicaInfo> bootstrap_members;
  ReplicaId self = 0;  // this replica's id (join detection)
  // Structured tracing (docs/observability.md); null leaves the runtime bound
  // to the shared disabled tracer.
  std::shared_ptr<obs::Tracer> tracer;
};

/// Stats common to every protocol. The protocol stats structs (ReplicaStats,
/// PbftStats) inherit this directly — engine snapshots slice-assign the base
/// instead of copying field by field — and for_each is the single descriptor
/// the harness uses to fold every counter into the metrics registry, so a new
/// counter is one field plus one fn() line.
struct RuntimeStats {
  uint64_t blocks_executed = 0;
  uint64_t requests_executed = 0;
  uint64_t reply_cache_hits = 0;  // duplicates served or suppressed
  uint64_t state_transfers = 0;   // requests issued by the owning replica
  uint64_t recoveries = 0;        // 1 when this incarnation rebuilt from storage
  uint64_t blocks_replayed = 0;   // ledger blocks re-executed during recovery
  uint64_t wal_bytes_written = 0; // cumulative WAL appends (handle lifetime)
  // Chunked state transfer (docs/state_transfer.md).
  uint64_t state_transfer_chunks_served = 0;   // donor: chunks shipped
  uint64_t state_transfer_chunks_fetched = 0;  // fetcher: chunks verified+stored
  uint64_t state_transfer_invalid_chunks = 0;  // fetcher: failed Merkle check
  uint64_t state_transfer_resumes = 0;         // retry ticks with partial data
  // Chunk payload verified and stored by this replica's fetcher role; summed
  // across a cluster this equals the snapshot bytes moved exactly once.
  uint64_t state_transfer_bytes_transferred = 0;
  // Delta state transfer (fetcher role): chunks a delta manifest let this
  // replica seed from its retained local snapshot instead of fetching, and
  // the payload bytes that therefore never touched the wire.
  uint64_t delta_chunks_skipped = 0;
  uint64_t delta_bytes_saved = 0;
  // Donor role: chunk serves deferred by the donor-side rate limiter to a
  // later donor tick (a chunk re-deferred across several ticks counts once
  // per deferral).
  uint64_t donor_chunks_throttled = 0;
  // Group reconfiguration (docs/reconfiguration.md).
  uint64_t epochs_activated = 0;  // membership epochs that took effect here
  uint64_t joins_completed = 0;   // this replica became a member via an epoch

  /// Invokes fn(name, value) for every runtime counter.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    fn("blocks_executed", blocks_executed);
    fn("requests_executed", requests_executed);
    fn("reply_cache_hits", reply_cache_hits);
    fn("state_transfers", state_transfers);
    fn("recoveries", recoveries);
    fn("blocks_replayed", blocks_replayed);
    fn("wal_bytes_written", wal_bytes_written);
    fn("state_transfer_chunks_served", state_transfer_chunks_served);
    fn("state_transfer_chunks_fetched", state_transfer_chunks_fetched);
    fn("state_transfer_invalid_chunks", state_transfer_invalid_chunks);
    fn("state_transfer_resumes", state_transfer_resumes);
    fn("state_transfer_bytes_transferred", state_transfer_bytes_transferred);
    fn("delta_chunks_skipped", delta_chunks_skipped);
    fn("delta_bytes_saved", delta_bytes_saved);
    fn("donor_chunks_throttled", donor_chunks_throttled);
    fn("epochs_activated", epochs_activated);
    fn("joins_completed", joins_completed);
  }
};

/// Everything the runtime retains about an executed sequence.
struct ExecutionRecord {
  ExecCertificate cert;  // pi_sig filled in by the E-collector (SBFT only)
  Block block;
  ViewNum pp_view = 0;
  std::vector<Bytes> values;
  std::vector<Digest> leaves;
  sim::SimTime executed_at = 0;
};

/// Protocol-level state handed back from recovery; the generic state (service,
/// execution records, reply cache, checkpoints) is installed directly.
struct RecoveredProtocolState {
  ViewNum view = 0;
  std::vector<recovery::WalVote> votes;  // in-flight votes (anti-equivocation)
  uint64_t replayed_bytes = 0;           // charge as boot-time replay I/O

  /// Folds the persisted in-flight votes into the replica's anti-equivocation
  /// map (seq -> highest voted view + digest) and returns the first sequence
  /// a restarted primary may propose at: past everything executed *and*
  /// everything it pre-prepared before the crash (re-proposing a different
  /// block at a voted sequence would be self-equivocation).
  SeqNum install_votes(std::map<SeqNum, std::pair<ViewNum, Digest>>& wal_votes,
                       SeqNum next_seq) const {
    for (const recovery::WalVote& v : votes) {
      auto& entry = wal_votes[v.seq];
      if (v.view >= entry.first) entry = {v.view, v.block_digest};
    }
    if (!wal_votes.empty()) {
      next_seq = std::max(next_seq, wal_votes.rbegin()->first + 1);
    }
    return next_seq;
  }
};

class ReplicaRuntime {
 public:
  ReplicaRuntime(RuntimeOptions options, std::unique_ptr<IService> service);

  /// Rebuilds state from the attached storage (no-op when fresh or absent).
  /// Call once, before the owning replica starts.
  std::optional<RecoveredProtocolState> recover();

  // --- execution -------------------------------------------------------------
  /// Executes the committed block at s == last_executed() + 1: dedups against
  /// the reply cache, charges service costs, persists the decision block,
  /// extends the d_s chain, and captures the checkpoint snapshot when s is an
  /// interval multiple. Returns the retained record.
  ExecutionRecord& execute_block(SeqNum s, ViewNum pp_view, const Block& block,
                                 sim::ActorContext& ctx);
  SeqNum last_executed() const { return le_; }
  std::optional<Digest> exec_digest_of(SeqNum s) const;
  ExecutionRecord* record(SeqNum s);
  const ExecutionRecord* record(SeqNum s) const;

  // --- reply cache -----------------------------------------------------------
  const ReplyCache& replies() const { return replies_; }
  /// Cached reply when `timestamp` is a duplicate (counts a cache hit);
  /// nullptr when the request is new.
  const CachedReply* cached_reply(ClientId client, uint64_t timestamp);

  // --- checkpoints -----------------------------------------------------------
  CheckpointManager& checkpoints() { return checkpoints_; }
  const CheckpointManager& checkpoints() const { return checkpoints_; }
  SeqNum last_stable() const { return checkpoints_.last_stable(); }
  /// `cert` is the execution certificate of a checkpoint-interval sequence
  /// that the protocol certified stable (pi quorum for SBFT, checkpoint-vote
  /// quorum for PBFT). Advances the stable state, persists the checkpoint to
  /// the WAL, and garbage-collects execution records below it.
  bool advance_stable(ExecCertificate cert, sim::ActorContext& ctx);
  /// Installs a checkpoint received via state transfer after verifying the
  /// snapshot envelope's service part against cert.state_root. The protocol
  /// layer performs any signature verification *before* calling this.
  bool adopt_checkpoint(const ExecCertificate& cert, ByteSpan snapshot_envelope,
                        sim::ActorContext& ctx);

  // --- view-change evidence --------------------------------------------------
  /// Certificates and full proofs the owning replica must carry into a view
  /// change (docs/architecture.md): engines record them as they form and
  /// read them when building view-change messages; checkpoint advance is the
  /// engines' cue to gc_through the new stable seq.
  EvidenceStore& evidence() { return evidence_; }
  const EvidenceStore& evidence() const { return evidence_; }

  // --- state transfer --------------------------------------------------------
  /// Chunked state-transfer state machine (fetcher + donor roles); the
  /// ordering engines drive it and send what it hands back — the runtime
  /// itself never touches the network (docs/state_transfer.md).
  StateTransferManager& state_transfer() { return state_transfer_; }
  const StateTransferManager& state_transfer() const { return state_transfer_; }

  // --- membership ------------------------------------------------------------
  /// Membership epochs (docs/reconfiguration.md): the engines read the active
  /// epoch for every quorum/primary/address computation. Reconfiguration
  /// markers ordered through execute_block stage deltas here; epochs activate
  /// when advance_stable / adopt_checkpoint reach the activation boundary —
  /// both return true through epoch_changed() queries the engines poll.
  const MembershipManager& membership() const { return membership_; }
  /// True once per activation: the active epoch changed since the last call
  /// (the engine refreshes its derived quorum/crypto state and checks for its
  /// own retirement).
  bool take_epoch_change() {
    bool changed = epoch_changed_;
    epoch_changed_ = false;
    return changed;
  }

  // --- WAL -------------------------------------------------------------------
  void wal_record_view(ViewNum v);
  void wal_record_vote(SeqNum s, ViewNum v, const Digest& block_digest);

  IService& service() { return *service_; }
  const IService& service() const { return *service_; }
  RuntimeStats& stats() { return stats_; }
  const RuntimeStats& stats() const { return stats_; }

 private:
  Bytes snapshot_envelope() const;
  void wal_record_checkpoint();
  /// Folds a membership activation (or restore) into the stats and the
  /// engine-visible change flag. `now` timestamps the trace event.
  void note_membership_change(bool was_member, sim::SimTime now);

  RuntimeOptions opts_;
  obs::Tracer& trace_;  // opts_.tracer or the shared disabled instance
  std::unique_ptr<IService> service_;
  ReplyCache replies_;
  CheckpointManager checkpoints_;
  EvidenceStore evidence_;
  StateTransferManager state_transfer_;
  MembershipManager membership_;
  bool epoch_changed_ = false;

  SeqNum le_ = 0;  // last executed sequence
  std::map<SeqNum, ExecutionRecord> records_;
  std::map<SeqNum, Digest> exec_digests_;  // d_s chain (kept across GC)

  RuntimeStats stats_;
};

}  // namespace sbft::runtime
