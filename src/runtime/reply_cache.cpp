#include "runtime/reply_cache.h"

#include "common/serde.h"

namespace sbft::runtime {

const CachedReply* ReplyCache::find(ClientId client) const {
  auto it = entries_.find(client);
  return it == entries_.end() ? nullptr : &it->second;
}

bool ReplyCache::is_duplicate(ClientId client, uint64_t timestamp) const {
  const CachedReply* cached = find(client);
  return cached != nullptr && timestamp <= cached->timestamp;
}

void ReplyCache::store(ClientId client, uint64_t timestamp, SeqNum seq,
                       uint64_t index, Bytes value) {
  CachedReply& entry = entries_[client];
  if (timestamp < entry.timestamp) return;  // never regress the watermark
  entry.timestamp = timestamp;
  entry.seq = seq;
  entry.index = index;
  entry.value = std::move(value);
}

void ReplyCache::absorb(ReplyCache&& other) {
  for (auto& [client, entry] : other.entries_) {
    store(client, entry.timestamp, entry.seq, entry.index, std::move(entry.value));
  }
}

Bytes ReplyCache::encode() const {
  Writer w;
  w.u32(static_cast<uint32_t>(entries_.size()));
  for (const auto& [client, entry] : entries_) {
    w.u64(client);
    w.u64(entry.timestamp);
    w.u64(entry.seq);
    w.u64(entry.index);
    w.bytes(as_span(entry.value));
  }
  return std::move(w).take();
}

std::optional<ReplyCache> ReplyCache::decode(ByteSpan data) {
  Reader r(data);
  ReplyCache cache;
  uint32_t count = r.u32();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    ClientId client = r.u64();
    CachedReply entry;
    entry.timestamp = r.u64();
    entry.seq = r.u64();
    entry.index = r.u64();
    entry.value = r.bytes();
    cache.entries_[client] = std::move(entry);
  }
  if (!r.at_end()) return std::nullopt;
  return cache;
}

}  // namespace sbft::runtime
