#include "runtime/membership.h"

#include <algorithm>
#include <set>

#include "common/check.h"
#include "common/serde.h"

namespace sbft::runtime {

int MembershipEpoch::rank_of(ReplicaId r) const {
  for (size_t i = 0; i < members.size(); ++i) {
    if (members[i].id == r) return static_cast<int>(i);
  }
  return -1;
}

NodeId MembershipEpoch::node_of(ReplicaId r) const {
  int rank = rank_of(r);
  SBFT_CHECK(rank >= 0);
  return members[static_cast<size_t>(rank)].node;
}

void MembershipManager::init_genesis(uint32_t f, uint32_t c,
                                     std::vector<ReplicaInfo> members) {
  SBFT_CHECK(epochs_.empty());
  SBFT_CHECK(!members.empty());
  std::sort(members.begin(), members.end(),
            [](const ReplicaInfo& a, const ReplicaInfo& b) { return a.id < b.id; });
  MembershipEpoch genesis;
  genesis.epoch = 0;
  genesis.f = f;
  genesis.c = c;
  genesis.activated_at = 0;
  genesis.members = std::move(members);
  epochs_.push_back(std::move(genesis));
}

const MembershipEpoch& MembershipManager::epoch_for_seq(SeqNum s) const {
  SBFT_CHECK(configured());
  for (auto it = epochs_.rbegin(); it != epochs_.rend(); ++it) {
    if (it->activated_at < s) return *it;
  }
  return epochs_.front();
}

bool MembershipManager::stage(const ReconfigDelta& delta, SeqNum exec_seq,
                              uint64_t interval) {
  if (!configured() || pending_) return false;
  if (delta.adds.empty() && delta.removes.empty()) return false;
  if (delta.new_f < 1) return false;

  // Compute the candidate roster and reject inconsistent deltas.
  const MembershipEpoch& cur = active();
  std::vector<ReplicaInfo> next = cur.members;
  std::set<ReplicaId> removes(delta.removes.begin(), delta.removes.end());
  if (removes.size() != delta.removes.size()) return false;
  for (ReplicaId r : removes) {
    if (!cur.contains(r)) return false;
  }
  next.erase(std::remove_if(next.begin(), next.end(),
                            [&](const ReplicaInfo& m) { return removes.count(m.id); }),
             next.end());
  for (const ReplicaInfo& add : delta.adds) {
    if (add.id == 0 || cur.contains(add.id) || removes.count(add.id)) return false;
    for (const ReplicaInfo& m : next) {
      if (m.id == add.id || m.node == add.node) return false;
    }
    next.push_back(add);
  }
  // The cluster sizing law must hold exactly — anything else silently skews
  // quorum intersection (e.g. 6 replicas with 2f+1 = 3 quorums can split).
  if (next.size() != 3ull * delta.new_f + 2ull * delta.new_c + 1) return false;

  PendingReconfig pending;
  pending.delta = delta;
  pending.target_epoch = cur.epoch + 1;
  // First checkpoint boundary at or after the ordering position; with
  // checkpoints disabled the delta can never activate — refuse it.
  if (interval == 0) return false;
  pending.activation_seq = (exec_seq + interval - 1) / interval * interval;
  pending_ = std::move(pending);
  return true;
}

bool MembershipManager::activate_up_to(SeqNum stable_seq) {
  if (!pending_ || stable_seq < pending_->activation_seq) return false;
  const MembershipEpoch& cur = active();
  MembershipEpoch next;
  next.epoch = pending_->target_epoch;
  next.f = pending_->delta.new_f;
  next.c = pending_->delta.new_c;
  next.activated_at = pending_->activation_seq;
  next.members = cur.members;
  std::set<ReplicaId> removes(pending_->delta.removes.begin(),
                              pending_->delta.removes.end());
  next.members.erase(
      std::remove_if(next.members.begin(), next.members.end(),
                     [&](const ReplicaInfo& m) { return removes.count(m.id); }),
      next.members.end());
  for (const ReplicaInfo& add : pending_->delta.adds) next.members.push_back(add);
  std::sort(next.members.begin(), next.members.end(),
            [](const ReplicaInfo& a, const ReplicaInfo& b) { return a.id < b.id; });
  // A locally staged delta passed stage()'s validation, but a pending may
  // also arrive via restore() from an unauthenticated envelope section —
  // never activate an epoch that breaks the sizing law.
  if (!epoch_well_formed(next)) {
    pending_.reset();
    return false;
  }
  epochs_.push_back(std::move(next));
  pending_.reset();
  return true;
}

bool MembershipManager::epoch_well_formed(const MembershipEpoch& e) {
  if (e.f < 1) return false;
  if (e.members.size() != 3ull * e.f + 2ull * e.c + 1) return false;
  for (size_t i = 0; i + 1 < e.members.size(); ++i) {  // id-sorted, unique
    if (e.members[i].id >= e.members[i + 1].id) return false;
  }
  return true;
}

namespace {
constexpr uint32_t kSectionMagic = 0x4d425253;  // "SRBM"
constexpr uint16_t kSectionVersion = 1;

void put_epoch(Writer& w, const MembershipEpoch& e) {
  w.u64(e.epoch);
  w.u32(e.f);
  w.u32(e.c);
  w.u64(e.activated_at);
  w.u32(static_cast<uint32_t>(e.members.size()));
  for (const ReplicaInfo& m : e.members) {
    w.u32(m.id);
    w.u32(m.node);
  }
}

std::optional<MembershipEpoch> get_epoch(Reader& r) {
  MembershipEpoch e;
  e.epoch = r.u64();
  e.f = r.u32();
  e.c = r.u32();
  e.activated_at = r.u64();
  uint32_t n = r.u32();
  if (!r.ok() || n == 0 || n > 100'000) return std::nullopt;
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    ReplicaInfo m;
    m.id = r.u32();
    m.node = r.u32();
    e.members.push_back(m);
  }
  if (!r.ok()) return std::nullopt;
  return e;
}
}  // namespace

Bytes MembershipManager::encode() const {
  if (!configured()) return {};
  Writer w;
  w.u32(kSectionMagic);
  w.u16(kSectionVersion);
  put_epoch(w, active());
  w.boolean(pending_.has_value());
  if (pending_) {
    w.bytes(as_span(encode_reconfig_delta(pending_->delta)));
    w.u64(pending_->activation_seq);
    w.u64(pending_->target_epoch);
  }
  return std::move(w).take();
}

bool MembershipManager::restore(ByteSpan section) {
  if (section.empty()) return false;
  Reader r(section);
  if (r.u32() != kSectionMagic || r.u16() != kSectionVersion) return false;
  auto epoch = get_epoch(r);
  if (!epoch) return false;
  std::optional<PendingReconfig> pending;
  if (r.boolean()) {
    auto delta = decode_reconfig_delta(as_span(r.bytes()));
    if (!delta) return false;
    PendingReconfig p;
    p.delta = std::move(*delta);
    p.activation_seq = r.u64();
    p.target_epoch = r.u64();
    pending = std::move(p);
  }
  if (!r.at_end()) return false;
  // Never regress: state transfer can only move membership forward.
  if (configured() && epoch->epoch < active().epoch) return false;
  if (configured() && epoch->epoch == active().epoch) {
    // Same epoch; adopt the staged reconfiguration if we lack it (a fetched
    // checkpoint captured after the marker executed but before activation).
    if (pending && !pending_) pending_ = std::move(pending);
    return pending_.has_value();
  }
  if (!configured() || epoch->epoch > active().epoch) {
    std::sort(epoch->members.begin(), epoch->members.end(),
              [](const ReplicaInfo& a, const ReplicaInfo& b) { return a.id < b.id; });
    // The membership section is not covered by the state root (tail-section
    // trust model): a forged epoch whose f/c break the sizing law would skew
    // or wedge every quorum — re-validate what stage() would have enforced.
    if (!epoch_well_formed(*epoch)) return false;
    epochs_.push_back(std::move(*epoch));
    pending_ = std::move(pending);
  }
  return true;
}

}  // namespace sbft::runtime
