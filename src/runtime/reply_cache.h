// Per-client reply cache (§V-A dedup / retry), shared by every ordering
// protocol through the ReplicaRuntime.
//
// Clients sign strictly monotone timestamps, so one entry per client — the
// reply to its highest executed timestamp — suffices to (a) serve retries of
// the latest request and (b) refuse to re-execute anything at or below it.
// The cache is serialized into checkpoint snapshots: a replica recovering
// from its WAL (or adopting a checkpoint via state transfer) suppresses
// duplicates of *pre-checkpoint* requests instead of re-executing them,
// which is a correctness requirement for non-idempotent services (an EVM
// transfer applied twice diverges from the certified state root).
#pragma once

#include <map>
#include <optional>

#include "common/bytes.h"
#include "proto/types.h"

namespace sbft::runtime {

struct CachedReply {
  uint64_t timestamp = 0;
  SeqNum seq = 0;      // sequence the reply was produced at
  uint64_t index = 0;  // position within that decision block
  Bytes value;
};

class ReplyCache {
 public:
  /// Latest cached reply for the client (nullptr if none).
  const CachedReply* find(ClientId client) const;
  /// True when `timestamp` is at or below the client's executed watermark —
  /// i.e. the request must not execute again.
  bool is_duplicate(ClientId client, uint64_t timestamp) const;
  /// Records the reply for the client's newest executed request.
  void store(ClientId client, uint64_t timestamp, SeqNum seq, uint64_t index,
             Bytes value);
  /// Merges `other` in, keeping the newest entry per client (used when a
  /// state-transfer snapshot carries a cache that may lag our own).
  void absorb(ReplyCache&& other);

  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  /// Full cache contents, client-ordered — cross-replica consistency audits
  /// (harness/audit.h) compare caches entry by entry.
  const std::map<ClientId, CachedReply>& entries() const { return entries_; }
  void clear() { entries_.clear(); }

  /// Canonical encoding (embedded in checkpoint snapshots).
  Bytes encode() const;
  /// nullopt on malformed input.
  static std::optional<ReplyCache> decode(ByteSpan data);

 private:
  std::map<ClientId, CachedReply> entries_;
};

}  // namespace sbft::runtime
