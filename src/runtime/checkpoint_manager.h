// Checkpoint state tracking, shared by every ordering protocol through the
// ReplicaRuntime.
//
// Two invariants drive the design (both were seed bugs at one point, see
// ROADMAP "known seed bugs"):
//   * The shippable (certificate, snapshot) pair must be *consistent*: the
//     snapshot is captured when the checkpoint sequence executes — by the
//     time its certificate forms, the service may have executed further, and
//     a live snapshot then would not match the certificate's state root.
//   * The stable certificate and the shippable pair are tracked separately:
//     a checkpoint can become stable without a usable snapshot (e.g. the
//     sequence executed in a previous incarnation); in that case the previous
//     consistent pair keeps serving state transfer.
#pragma once

#include "proto/message.h"

namespace sbft::runtime {

class CheckpointManager {
 public:
  explicit CheckpointManager(uint64_t interval) : interval_(interval) {}

  uint64_t interval() const { return interval_; }
  SeqNum last_stable() const { return ls_; }
  /// Latest stable checkpoint certificate (valid when last_stable() > 0).
  const ExecCertificate& stable_cert() const { return stable_cert_; }

  /// Shippable state-transfer pair: snapshot_cert().state_root matches the
  /// service part of snapshot() exactly.
  const ExecCertificate& snapshot_cert() const { return snapshot_cert_; }
  const Bytes& snapshot() const { return snapshot_; }
  bool has_shippable() const { return snapshot_cert_.seq > 0 && !snapshot_.empty(); }

  /// Records the snapshot captured when checkpoint sequence `s` executed
  /// (encode_checkpoint_snapshot envelope bytes).
  void capture_pending(SeqNum s, Bytes snapshot_envelope);
  SeqNum pending_seq() const { return pending_seq_; }

  /// `cert` became the stable checkpoint. Promotes the pending snapshot when
  /// it matches; falls back to `live_capture()` only when the service has not
  /// executed past cert.seq (`last_executed == cert.seq`). Returns true when
  /// a new consistent pair was recorded (the caller persists it to the WAL).
  template <typename LiveCapture>
  bool make_stable(const ExecCertificate& cert, SeqNum last_executed,
                   LiveCapture&& live_capture) {
    if (cert.seq <= ls_) return false;
    ls_ = cert.seq;
    stable_cert_ = cert;
    if (pending_seq_ == cert.seq) {
      snapshot_ = std::move(pending_);
      pending_ = {};
      pending_seq_ = 0;
      snapshot_cert_ = cert;
      return true;
    }
    if (last_executed == cert.seq) {
      snapshot_ = live_capture();
      snapshot_cert_ = cert;
      return true;
    }
    return false;  // keep the previous consistent pair
  }

  /// Adopts a verified checkpoint received via state transfer.
  void adopt(const ExecCertificate& cert, Bytes snapshot_envelope);
  /// Reinstalls recovered checkpoint state at boot.
  void restore(const ExecCertificate& cert, Bytes snapshot_envelope,
               SeqNum pending_seq, Bytes pending_envelope);

 private:
  uint64_t interval_;
  SeqNum ls_ = 0;  // last stable (checkpointed) sequence
  ExecCertificate stable_cert_;
  ExecCertificate snapshot_cert_;
  Bytes snapshot_;  // envelope bytes matching snapshot_cert_
  SeqNum pending_seq_ = 0;
  Bytes pending_;  // envelope captured when pending_seq_ executed
};

}  // namespace sbft::runtime
