// View-change evidence store, shared by both ordering engines.
//
// A replica must carry the strongest certificates it holds for every
// in-window slot into a view change: SBFT ships its slow-path prepare
// certificate (combined tau) and the final fast/slow full proofs inside
// ViewChangeMsg slot evidence (§V-D); PBFT re-ships its prepared
// certificates (with their blocks) inside PbftViewChangeMsg. Both engines
// used to keep this state inline in their per-slot protocol structs; the
// runtime owns it here so the retention rules live in one place and a
// sharded deployment does not duplicate them per group.
//
// Retention rules:
//  * prepare certificates: HIGHEST view wins — a later-view certificate for
//    the same slot supersedes an earlier one (the commit round is bound to
//    one certificate).
//  * full proofs (fast or slow): FIRST wins — proofs are final; any valid
//    one is as good as another.
//  * gc_through(stable): evidence at or below a stable checkpoint can never
//    be needed again.
//
// The store is volatile: a restarted incarnation rebuilds it from protocol
// traffic, exactly as the inline slot fields did.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <optional>

#include "proto/message.h"

namespace sbft::runtime {

/// The evidence retained for one slot. Which fields are populated depends on
/// the engine: SBFT uses prepared_sig (tau) and the proof triples; PBFT uses
/// prepared_block (its view-change certificates carry the block itself).
struct SlotEvidenceRecord {
  // Prepare certificate (highest view wins).
  bool has_prepared = false;
  ViewNum prepared_view = 0;
  Digest prepared_digest{};
  Bytes prepared_sig;                   // SBFT: combined tau over slot_hash
  std::optional<Block> prepared_block;  // PBFT: block the certificate binds

  // Fast-path full proof (first wins).
  bool has_fast_proof = false;
  ViewNum fast_view = 0;
  Digest fast_digest{};
  Bytes fast_sig;  // combined sigma

  // Slow-path full proof (first wins).
  bool has_slow_proof = false;
  ViewNum slow_view = 0;
  Digest slow_digest{};
  Bytes slow_inner_sig;  // the tau certificate the proof wraps
  Bytes slow_sig;        // combined tau-tau
};

class EvidenceStore {
 public:
  /// Records a prepare certificate for slot s. A strictly older view never
  /// overwrites a newer one; an equal-or-newer view refreshes the record.
  /// Returns true when the record was stored.
  bool record_prepared(SeqNum s, ViewNum view, const Digest& digest, Bytes sig,
                       std::optional<Block> block = std::nullopt);
  /// Records the fast-path full proof for slot s; only the first is kept.
  /// Returns true when this call stored it.
  bool record_fast_proof(SeqNum s, ViewNum view, const Digest& digest,
                         Bytes sig);
  /// Records the slow-path full proof for slot s; only the first is kept.
  bool record_slow_proof(SeqNum s, ViewNum view, const Digest& digest,
                         Bytes inner_sig, Bytes sig);

  /// Evidence for slot s, or nullptr when none was recorded (or it was
  /// garbage-collected).
  const SlotEvidenceRecord* find(SeqNum s) const;

  /// Invokes fn(seq, record) for every slot in (lo, hi], ascending — the
  /// in-window span a view change must cover.
  void for_each_in(SeqNum lo, SeqNum hi,
                   const std::function<void(SeqNum, const SlotEvidenceRecord&)>&
                       fn) const;

  /// Drops every slot <= stable.
  void gc_through(SeqNum stable);
  void clear() { slots_.clear(); }
  size_t size() const { return slots_.size(); }

 private:
  std::map<SeqNum, SlotEvidenceRecord> slots_;
};

}  // namespace sbft::runtime
