#include "runtime/state_transfer.h"

#include <algorithm>

#include "common/check.h"
#include "common/serde.h"
#include "crypto/sha256.h"
#include "runtime/checkpoint_manager.h"
#include "runtime/replica_runtime.h"

namespace sbft::runtime {

// ---------------------------------------------------------------------------
// ChunkedSnapshot

ChunkedSnapshot::ChunkedSnapshot(ByteSpan envelope, uint32_t chunk_size)
    : chunk_size_(chunk_size), total_bytes_(envelope.size()) {
  SBFT_CHECK(!envelope.empty());
  SBFT_CHECK(chunk_size_ > 0);
  std::vector<Digest> leaves;
  leaves.reserve(envelope.size() / chunk_size_ + 1);
  for (size_t off = 0; off < envelope.size(); off += chunk_size_) {
    size_t len = std::min<size_t>(chunk_size_, envelope.size() - off);
    leaves.push_back(chunk_leaf(envelope.subspan(off, len)));
  }
  tree_ = std::make_unique<merkle::BlockMerkleTree>(std::move(leaves));
  transfer_root_ = make_transfer_root(tree_->root(), chunk_size_, chunk_count(),
                                      total_bytes_);
}

Digest ChunkedSnapshot::make_transfer_root(const Digest& tree_root,
                                           uint32_t chunk_size,
                                           uint32_t chunk_count,
                                           uint64_t total_bytes) {
  Writer w;
  w.str("sbft.state-transfer");
  w.digest(tree_root);
  w.u32(chunk_size);
  w.u32(chunk_count);
  w.u64(total_bytes);
  return crypto::sha256(as_span(w.data()));
}

ByteSpan ChunkedSnapshot::chunk(ByteSpan envelope, uint32_t index) const {
  SBFT_CHECK(envelope.size() == total_bytes_);
  SBFT_CHECK(index < chunk_count());
  size_t off = static_cast<size_t>(index) * chunk_size_;
  size_t len = std::min<size_t>(chunk_size_, envelope.size() - off);
  return envelope.subspan(off, len);
}

// ---------------------------------------------------------------------------
// Fetcher

void StateTransferManager::reset_fetch_state() {
  target_cert_ = ExecCertificate{};
  manifest_donor_ = 0;
  chunk_root_ = Digest{};
  transfer_root_ = Digest{};
  chunk_count_ = 0;
  target_chunk_size_ = 0;
  total_bytes_ = 0;
  chunks_.clear();
  received_ = 0;
  donors_.clear();
  seed_donors_.clear();
  strikes_.clear();
  struck_out_.clear();
  unplanned_.clear();
  outstanding_.clear();
  outstanding_by_donor_.clear();
  delivered_since_tick_.clear();
}

void StateTransferManager::retarget(const StateManifestMsg& m) {
  reset_fetch_state();
  target_cert_ = m.cert;
  manifest_donor_ = m.donor;
  chunk_root_ = m.chunk_root;
  transfer_root_ = ChunkedSnapshot::make_transfer_root(
      m.chunk_root, m.chunk_size, m.chunk_count, m.total_bytes);
  chunk_count_ = m.chunk_count;
  target_chunk_size_ = m.chunk_size;
  total_bytes_ = m.total_bytes;
  chunks_.assign(chunk_count_, Bytes{});
  for (uint32_t i = 0; i < chunk_count_; ++i) unplanned_.insert(unplanned_.end(), i);
  donors_.push_back(m.donor);
}

StateTransferRequestMsg StateTransferManager::make_probe(
    const CheckpointManager& cp, ReplicaId self, SeqNum last_executed) {
  active_ = true;
  probe_base_seq_ = 0;
  probe_base_root_ = Digest{};
  StateTransferRequestMsg req;
  req.requester = self;
  req.have_seq = last_executed;
  if (chunked() && delta_enabled_ && cp.has_shippable()) {
    const ChunkedSnapshot* base = donor_snapshot(cp);
    probe_base_seq_ = cp.snapshot_cert().seq;
    probe_base_root_ = base->transfer_root();
    req.base_seq = probe_base_seq_;
    req.base_root = probe_base_root_;
  }
  return req;
}

bool StateTransferManager::on_manifest(const StateManifestMsg& m,
                                       SeqNum last_executed,
                                       const CheckpointManager& cp,
                                       RuntimeStats& stats) {
  if (!active_ || m.seq <= last_executed) return false;
  if (excluded_.count(m.donor)) return false;
  // Geometry sanity: the chunk grid must tile total_bytes exactly.
  if (m.cert.seq != m.seq || m.chunk_size == 0 || m.chunk_count == 0 ||
      m.total_bytes == 0 || m.total_bytes > kMaxTotalBytes ||
      m.chunk_count > kMaxChunks) {
    return false;
  }
  uint64_t expect_count =
      (m.total_bytes + m.chunk_size - 1) / m.chunk_size;
  if (expect_count != m.chunk_count) return false;

  // Manifests name a *transfer*: the chunk tree root bound to its geometry.
  // Honest replicas derive identical envelopes (hence identical transfers)
  // for a given checkpoint, so two same-seq manifests naming different
  // transfers means one of them lied — about the root or about the grid.
  Digest incoming = ChunkedSnapshot::make_transfer_root(
      m.chunk_root, m.chunk_size, m.chunk_count, m.total_bytes);

  // Same seq, different transfer: first manifest wins while any of its
  // donors is still answering. But once every donor of the adopted transfer
  // is dead, excluded, or struck out, it is unobtainable — a live network
  // offering a different transfer for the same seq means the adopted
  // manifest was the lie. Drop it (excluding its sender) and let this
  // manifest re-target; without this, a Byzantine donor could wedge the
  // fetch forever by advertising a fabricated transfer and going silent.
  if (has_target() && m.seq == target_cert_.seq &&
      !(incoming == transfer_root_)) {
    // struck_out_, not strikes_: planning-time forgiveness must not erase
    // the evidence that the adopted transfer's donors are all unresponsive.
    bool donors_dead = true;
    for (ReplicaId d : donors_) {
      if (!struck_out_.count(d)) donors_dead = false;
    }
    if (!donors_dead) return false;
    manifest_failed();
    // manifest_failed may have just excluded this very sender (it seeded the
    // dropped target's delta): its conflicting manifest must not be the one
    // the fetch re-targets onto.
    if (excluded_.count(m.donor)) return false;
  }
  if (!has_target() || m.seq > target_cert_.seq) {
    retarget(m);
    // Delta manifest: seed the chunks the donor marked unchanged from the
    // local base snapshot before any wire fetch is planned. (Later
    // same-transfer manifests may seed the still-missing chunks too — see
    // the registration branch below.)
    seed_from_base(m, cp, stats);
    return true;
  }
  if (m.seq == target_cert_.seq && incoming == transfer_root_) {
    // Another replica holds the same transfer: register it as a donor — and
    // honour its delta section even mid-fetch. The adopted manifest may have
    // come from a donor without the base (full), while this one carries the
    // diff: same transfer root means the same chunk grid, so seeding the
    // still-missing unchanged chunks now is exactly as safe as at adoption.
    bool registered = false;
    if (std::find(donors_.begin(), donors_.end(), m.donor) == donors_.end()) {
      donors_.push_back(m.donor);
      registered = true;
    }
    uint32_t received_before = received_;
    seed_from_base(m, cp, stats);
    return registered || received_ > received_before;
  }
  return false;
}

void StateTransferManager::seed_from_base(const StateManifestMsg& m,
                                          const CheckpointManager& cp,
                                          RuntimeStats& stats) {
  if (!delta_enabled_ || m.base_seq == 0) return;
  // The delta must answer exactly the base this fetch advertised, and that
  // base must still be the locally retained shippable pair.
  if (m.base_seq != probe_base_seq_ || !cp.has_shippable() ||
      cp.snapshot_cert().seq != m.base_seq) {
    return;
  }
  const ChunkedSnapshot* base = donor_snapshot(cp);
  if (!(base->transfer_root() == probe_base_root_)) return;
  if (m.delta_bitmap.size() != (chunk_count_ + 7) / 8) return;
  // Walk the unset (unchanged) bits; base_map names the base chunk index
  // carrying identical bytes for each, in increasing target-index order.
  size_t map_pos = 0;
  uint64_t tail_size = total_bytes_ - uint64_t{chunk_count_ - 1} * target_chunk_size_;
  for (uint32_t i = 0; i < chunk_count_; ++i) {
    if (m.delta_bitmap[i / 8] & (1u << (i % 8))) continue;  // differs: fetch
    if (map_pos >= m.base_map.size()) return;  // malformed: fetch the rest
    uint32_t j = m.base_map[map_pos++];
    if (j >= base->chunk_count() || !chunks_[i].empty()) continue;
    ByteSpan src = base->chunk(as_span(cp.snapshot()), j);
    // A seeded chunk must be exactly the size its position implies; anything
    // else is a lying map — leave the index to the wire fetch.
    uint64_t want = i + 1 == chunk_count_ ? tail_size : target_chunk_size_;
    if (src.size() != want) continue;
    chunks_[i] = to_bytes(src);
    ++received_;
    unplanned_.erase(i);
    // Mid-fetch seeding (a later same-transfer delta manifest): the chunk
    // may already be outstanding at a donor — retire the request marks so
    // the retry tick neither re-plans it nor blames the donor for it.
    outstanding_.erase(i);
    for (auto& [donor, indices] : outstanding_by_donor_) indices.erase(i);
    seed_donors_.insert(m.donor);
    ++stats.delta_chunks_skipped;
    stats.delta_bytes_saved += src.size();
  }
}

StateTransferManager::ChunkVerdict StateTransferManager::on_chunk(
    const StateChunkMsg& m, RuntimeStats& stats) {
  // Messages match on the geometry-bound transfer key; the Merkle proof
  // below verifies against the tree root that key commits to.
  if (!has_target() || m.seq != target_cert_.seq ||
      !(m.chunk_root == transfer_root_)) {
    return ChunkVerdict::kRejected;
  }
  bool valid = m.index < chunk_count_ && m.chunk_count == chunk_count_ &&
               !m.data.empty() && m.data.size() <= target_chunk_size_ &&
               m.proof.index == m.index && m.proof.leaf_count == chunk_count_ &&
               merkle::BlockMerkleTree::verify(
                   chunk_root_, ChunkedSnapshot::chunk_leaf(as_span(m.data)),
                   m.proof);
  if (!valid) {
    ++stats.state_transfer_invalid_chunks;
    // An invalid chunk from the replica whose manifest we adopted makes the
    // whole target suspect (it authored the chunk root): exclude_donor drops
    // it so honest same-seq manifests can re-target on the next probe,
    // instead of waiting for a completion that may never come.
    exclude_donor(m.donor);
    return ChunkVerdict::kInvalid;
  }
  // A verified chunk proves the donor is alive and serving, even when it
  // loses a re-plan race and arrives as a duplicate — credit it before the
  // duplicate check so the retry tick never strikes an active donor, and
  // clear any strike history it accumulated while unreachable.
  delivered_since_tick_.insert(m.donor);
  strikes_.erase(m.donor);
  struck_out_.erase(m.donor);
  if (!chunks_[m.index].empty()) return ChunkVerdict::kDuplicate;
  chunks_[m.index] = m.data;
  ++received_;
  ++stats.state_transfer_chunks_fetched;
  stats.state_transfer_bytes_transferred += m.data.size();
  unplanned_.erase(m.index);
  outstanding_.erase(m.index);
  if (auto it = outstanding_by_donor_.find(m.donor);
      it != outstanding_by_donor_.end()) {
    it->second.erase(m.index);
  }
  return received_ == chunk_count_ ? ChunkVerdict::kCompleted
                                   : ChunkVerdict::kStored;
}

std::vector<std::pair<ReplicaId, StateChunkRequestMsg>>
StateTransferManager::plan_requests(ReplicaId self) {
  std::vector<std::pair<ReplicaId, StateChunkRequestMsg>> out;
  if (!has_target() || received_ == chunk_count_) return out;

  // Usable donors: not excluded (erased already), preferring ones that have
  // not struck out; if every donor struck out, forgive — the alternative is
  // giving up with partial data in hand.
  std::vector<ReplicaId> pool;
  for (ReplicaId d : donors_) {
    if (strikes_[d] < kStrikeLimit) pool.push_back(d);
  }
  if (pool.empty()) {
    strikes_.clear();
    pool = donors_;
  }
  if (pool.empty()) return out;

  std::map<ReplicaId, StateChunkRequestMsg> batch;
  size_t cursor = rotation_ % pool.size();
  for (auto it = unplanned_.begin(); it != unplanned_.end();) {
    uint32_t i = *it;
    // Round-robin over donors with capacity left this plan.
    ReplicaId donor = 0;
    for (size_t probe = 0; probe < pool.size(); ++probe) {
      ReplicaId cand = pool[(cursor + probe) % pool.size()];
      if (batch[cand].indices.size() < max_chunks_per_request_) {
        donor = cand;
        cursor = (cursor + probe + 1) % pool.size();
        break;
      }
    }
    if (donor == 0) break;  // every donor's batch is full; wait for arrivals
    StateChunkRequestMsg& req = batch[donor];
    if (req.indices.empty()) {
      req.requester = self;
      req.seq = target_cert_.seq;
      req.chunk_root = transfer_root_;
    }
    req.indices.push_back(i);
    it = unplanned_.erase(it);
    outstanding_.insert(i);
    outstanding_by_donor_[donor].insert(i);
  }
  for (auto& [donor, req] : batch) {
    if (!req.indices.empty()) out.emplace_back(donor, std::move(req));
  }
  return out;
}

bool StateTransferManager::on_retry(RuntimeStats& stats) {
  if (!active_) return false;
  // Strike donors that sat on outstanding requests without delivering, and
  // make everything they sat on plannable again.
  for (const auto& [donor, indices] : outstanding_by_donor_) {
    if (indices.empty() || delivered_since_tick_.count(donor)) continue;
    if (++strikes_[donor] >= kStrikeLimit) struck_out_.insert(donor);
  }
  for (uint32_t i : outstanding_) {
    if (chunks_.empty() || chunks_[i].empty()) unplanned_.insert(i);
  }
  outstanding_.clear();
  outstanding_by_donor_.clear();
  delivered_since_tick_.clear();
  ++rotation_;
  bool resuming = has_target() && received_ > 0 && received_ < chunk_count_;
  if (resuming) ++stats.state_transfer_resumes;
  return resuming;
}

StateTransferManager::RetryTick StateTransferManager::on_retry_tick(
    SeqNum last_executed, bool behind, RuntimeStats& stats) {
  // The fetch became moot: caught up to (or past) the target through the
  // ordering protocol, or no manifest yet and no demonstrable lag remains.
  if (has_target() && target_cert_.seq <= last_executed) finish();
  if (active_ && !has_target() && !behind) finish();
  if (!active_) return {/*stop=*/true, /*probe=*/false};
  on_retry(stats);
  // Re-broadcast the probe while no manifest was adopted, every donor went
  // bad, or every registered donor has struck out (all crashed/partitioned:
  // plan_requests will forgive and keep retrying them, but only a fresh
  // probe lets replicas that acquired the checkpoint since then register).
  // struck_out_ persists across planning-time forgiveness, so this decision
  // — like on_manifest's re-target — cannot be erased by a re-plan.
  bool all_struck = !donors_.empty();
  for (ReplicaId d : donors_) {
    if (!struck_out_.count(d)) all_struck = false;
  }
  return {/*stop=*/false,
          /*probe=*/!has_target() || donors_.empty() || all_struck};
}

Bytes StateTransferManager::take_envelope() {
  SBFT_CHECK(has_target() && received_ == chunk_count_);
  Bytes envelope;
  envelope.reserve(total_bytes_);
  for (const Bytes& c : chunks_) {
    envelope.insert(envelope.end(), c.begin(), c.end());
  }
  return envelope;
}

bool StateTransferManager::on_adopt_result(bool adopted, SeqNum last_executed) {
  if (adopted) {
    finish();
    return false;
  }
  if (target_cert_.seq <= last_executed) {
    // Became stale while fetching (the replica caught up through the
    // ordering protocol); nothing went wrong — the retry timer lapses.
    finish();
    return false;
  }
  // The assembled envelope failed the certified state-root check: the
  // manifest sender lied. Exclude it and re-probe from the survivors.
  manifest_failed();
  return true;
}

void StateTransferManager::exclude_donor(ReplicaId donor) {
  excluded_.insert(donor);
  donors_.erase(std::remove(donors_.begin(), donors_.end(), donor), donors_.end());
  // Everything outstanding at the bad donor becomes re-plannable right now.
  if (auto it = outstanding_by_donor_.find(donor);
      it != outstanding_by_donor_.end()) {
    for (uint32_t i : it->second) {
      outstanding_.erase(i);
      if (!chunks_.empty() && chunks_[i].empty()) unplanned_.insert(i);
    }
    outstanding_by_donor_.erase(it);
  }
  if (donor == manifest_donor_ && has_target()) manifest_failed();
}

void StateTransferManager::manifest_failed() {
  excluded_.insert(manifest_donor_);
  // Seeded chunks are unverified until the final state-root check, so a
  // failure can stem from a lying delta section as much as from a lying
  // chunk root — exclude every donor whose delta seeded this target too.
  // When seeder != adopter one honest donor may fall with the liar for this
  // fetch, but the liar always falls: each failed round removes it, so the
  // fetch converges onto honest full/delta manifests instead of wedging.
  for (ReplicaId d : seed_donors_) excluded_.insert(d);
  reset_fetch_state();
  // Stays active (and excluded_ is kept): the caller re-probes and the fetch
  // restarts against the remaining replicas.
}

void StateTransferManager::finish() {
  active_ = false;
  reset_fetch_state();
  excluded_.clear();
  rotation_ = 0;
}

// ---------------------------------------------------------------------------
// Donor

const ChunkedSnapshot* StateTransferManager::donor_snapshot(
    const CheckpointManager& cp) {
  if (!cp.has_shippable()) return nullptr;
  if (donor_seq_ != cp.snapshot_cert().seq || !donor_chunks_) {
    // Retire the outgoing pair's chunk hashes into the delta-base history (a
    // fetcher briefly behind will advertise exactly that checkpoint).
    if (donor_chunks_ && delta_enabled_ && donor_seq_ > 0) {
      DonorBaseRecord rec;
      rec.transfer_root = donor_chunks_->transfer_root();
      rec.leaves = donor_chunks_->leaf_hashes();
      rec.chunk_size = donor_chunks_->chunk_size();
      donor_history_[donor_seq_] = std::move(rec);
      while (donor_history_.size() > delta_history_) {
        donor_history_.erase(donor_history_.begin());
      }
    }
    donor_chunks_ =
        std::make_unique<ChunkedSnapshot>(as_span(cp.snapshot()), chunk_size_);
    donor_seq_ = cp.snapshot_cert().seq;
  }
  return donor_chunks_.get();
}

bool StateTransferManager::note_checkpoint(const CheckpointManager& cp) {
  // Eager sealing only buys the delta-base history; with delta off the lazy
  // cold-probe rebuild (charged at manifest time) is strictly cheaper.
  if (!chunked() || !delta_enabled_ || !cp.has_shippable()) return false;
  if (donor_seq_ == cp.snapshot_cert().seq && donor_chunks_) return false;
  donor_snapshot(cp);
  return true;
}

std::optional<StateManifestMsg> StateTransferManager::make_manifest(
    const CheckpointManager& cp, const StateTransferRequestMsg& probe,
    ReplicaId self) {
  if (!chunked() || !cp.has_shippable() ||
      cp.snapshot_cert().seq <= probe.have_seq) {
    return std::nullopt;
  }
  const ChunkedSnapshot* snap = donor_snapshot(cp);
  StateManifestMsg m;
  m.donor = self;
  m.seq = cp.snapshot_cert().seq;
  m.cert = cp.snapshot_cert();
  m.chunk_root = snap->chunk_root();
  m.chunk_count = snap->chunk_count();
  m.chunk_size = snap->chunk_size();
  m.total_bytes = snap->total_bytes();

  // Delta section: only when the probe's base is a retired pair whose chunk
  // hashes are still held, under the identical transfer identity the fetcher
  // computed locally (root mismatch means different bytes — e.g. the fetcher's
  // disk rotted — and silently diffing would waste its round).
  if (!delta_enabled_ || probe.base_seq == 0 || probe.base_seq >= m.seq) return m;
  auto it = donor_history_.find(probe.base_seq);
  if (it == donor_history_.end() ||
      !(it->second.transfer_root == probe.base_root) ||
      it->second.chunk_size != chunk_size_) {
    return m;  // unknown base: full manifest
  }
  // The diff is a pure function of (base checkpoint, current pair): memoize
  // it so the retry probes a still-behind fetcher re-broadcasts every tick
  // don't re-walk every chunk hash per donor.
  if (diff_base_seq_ != probe.base_seq || diff_target_seq_ != donor_seq_) {
    diff_base_seq_ = probe.base_seq;
    diff_target_seq_ = donor_seq_;
    diff_bitmap_.assign((snap->chunk_count() + 7) / 8, 0);
    diff_base_map_.clear();
    // Content-addressed diff: a target chunk is unchanged if *any* base
    // chunk holds identical bytes (same leaf hash), so runs that shifted by
    // whole chunks still seed. Prefer the same index when available.
    const std::vector<Digest>& base_leaves = it->second.leaves;
    std::map<Digest, uint32_t> base_by_hash;
    for (uint32_t j = 0; j < base_leaves.size(); ++j) {
      base_by_hash.emplace(base_leaves[j], j);
    }
    const std::vector<Digest>& target_leaves = snap->leaf_hashes();
    for (uint32_t i = 0; i < snap->chunk_count(); ++i) {
      std::optional<uint32_t> j;
      if (i < base_leaves.size() && base_leaves[i] == target_leaves[i]) {
        j = i;
      } else if (auto hit = base_by_hash.find(target_leaves[i]);
                 hit != base_by_hash.end()) {
        j = hit->second;
      }
      if (j) {
        diff_base_map_.push_back(*j);
      } else {
        diff_bitmap_[i / 8] |= static_cast<uint8_t>(1u << (i % 8));
      }
    }
  }
  if (diff_base_map_.empty()) return m;  // degenerate delta: full manifest
  m.base_seq = probe.base_seq;
  m.delta_bitmap = diff_bitmap_;
  m.base_map = diff_base_map_;
  return m;
}

std::vector<StateChunkMsg> StateTransferManager::make_chunks(
    const CheckpointManager& cp, const StateChunkRequestMsg& req, ReplicaId self,
    RuntimeStats& stats, NodeId requester_node) {
  std::vector<StateChunkMsg> out;
  if (!chunked() || !cp.has_shippable() || cp.snapshot_cert().seq != req.seq) {
    return out;  // checkpoint advanced past the request: fetcher re-probes
  }
  const ChunkedSnapshot* snap = donor_snapshot(cp);
  // Match on the geometry-bound transfer key: a request for a transfer this
  // donor does not recognize (e.g. forged geometry over the honest root) is
  // ignored, so an honest donor can never be blamed for a liar's manifest.
  if (!(snap->transfer_root() == req.chunk_root)) return out;
  size_t limit = std::min<size_t>(req.indices.size(), max_chunks_per_request_);
  std::vector<uint32_t> deferred;
  for (size_t i = 0; i < limit; ++i) {
    uint32_t index = req.indices[i];
    if (index >= snap->chunk_count()) continue;
    if (donor_chunks_per_tick_ > 0 &&
        donor_served_this_tick_ >= donor_chunks_per_tick_) {
      // Rate limit hit: the remainder is re-served on the donor tick, never
      // silently dropped (the fetcher would strike this donor for sitting on
      // a request it never refused).
      deferred.push_back(index);
      continue;
    }
    ++donor_served_this_tick_;
    StateChunkMsg m;
    m.donor = self;
    m.seq = req.seq;
    m.chunk_root = snap->transfer_root();
    m.index = index;
    m.chunk_count = snap->chunk_count();
    m.data = to_bytes(snap->chunk(as_span(cp.snapshot()), index));
    m.proof = snap->proof(index);
    // Bytes are counted fetcher-side only (on verified store), so summing
    // the counter across a cluster yields the snapshot size once — not
    // once per role, and not inflated by dropped or duplicate serves.
    ++stats.state_transfer_chunks_served;
    out.push_back(std::move(m));
  }
  if (!deferred.empty()) {
    // Dedup against what this requester already has queued for the same
    // transfer (its retry ticks re-request chunks the limiter is still
    // sitting on), and bound the queue — overflow falls back to the
    // fetcher's retry rather than growing the donor's memory under the very
    // overload the limiter exists to bound.
    std::set<uint32_t> queued;
    size_t queue_total = 0;
    for (const DeferredRequest& q : donor_deferred_) {
      queue_total += q.req.indices.size();
      if (q.req.requester == req.requester && q.req.seq == req.seq &&
          q.req.chunk_root == req.chunk_root) {
        queued.insert(q.req.indices.begin(), q.req.indices.end());
      }
    }
    StateChunkRequestMsg rest = req;
    rest.indices.clear();
    for (uint32_t index : deferred) {
      if (!queued.count(index)) rest.indices.push_back(index);
    }
    if (!rest.indices.empty()) {
      // Overflow drops are counted too — an operator watching the throttle
      // counter must see the load the limiter turned away, not only the part
      // it could queue.
      stats.donor_chunks_throttled += rest.indices.size();
      if (queue_total < kMaxDeferredChunks) {
        donor_deferred_.push_back({requester_node, std::move(rest)});
      }
    }
  }
  return out;
}

std::vector<std::pair<NodeId, StateChunkMsg>>
StateTransferManager::on_donor_tick(const CheckpointManager& cp, ReplicaId self,
                                    RuntimeStats& stats) {
  donor_served_this_tick_ = 0;
  std::vector<DeferredRequest> pending = std::move(donor_deferred_);
  donor_deferred_.clear();
  std::vector<std::pair<NodeId, StateChunkMsg>> out;
  for (DeferredRequest& d : pending) {
    // make_chunks re-validates against the now-current shippable pair (stale
    // deferred requests fall out; the fetcher's retry tick covers them) and
    // re-defers whatever exceeds this tick's budget.
    for (StateChunkMsg& c : make_chunks(cp, d.req, self, stats, d.node)) {
      out.emplace_back(d.node, std::move(c));
    }
  }
  return out;
}

}  // namespace sbft::runtime
