#include "runtime/state_transfer.h"

#include <algorithm>

#include "common/check.h"
#include "common/serde.h"
#include "crypto/sha256.h"
#include "runtime/checkpoint_manager.h"
#include "runtime/replica_runtime.h"

namespace sbft::runtime {

// ---------------------------------------------------------------------------
// ChunkedSnapshot

ChunkedSnapshot::ChunkedSnapshot(ByteSpan envelope, uint32_t chunk_size)
    : chunk_size_(chunk_size), total_bytes_(envelope.size()) {
  SBFT_CHECK(!envelope.empty());
  SBFT_CHECK(chunk_size_ > 0);
  std::vector<Digest> leaves;
  leaves.reserve(envelope.size() / chunk_size_ + 1);
  for (size_t off = 0; off < envelope.size(); off += chunk_size_) {
    size_t len = std::min<size_t>(chunk_size_, envelope.size() - off);
    leaves.push_back(chunk_leaf(envelope.subspan(off, len)));
  }
  tree_ = std::make_unique<merkle::BlockMerkleTree>(std::move(leaves));
  transfer_root_ = make_transfer_root(tree_->root(), chunk_size_, chunk_count(),
                                      total_bytes_);
}

Digest ChunkedSnapshot::make_transfer_root(const Digest& tree_root,
                                           uint32_t chunk_size,
                                           uint32_t chunk_count,
                                           uint64_t total_bytes) {
  Writer w;
  w.str("sbft.state-transfer");
  w.digest(tree_root);
  w.u32(chunk_size);
  w.u32(chunk_count);
  w.u64(total_bytes);
  return crypto::sha256(as_span(w.data()));
}

ByteSpan ChunkedSnapshot::chunk(ByteSpan envelope, uint32_t index) const {
  SBFT_CHECK(envelope.size() == total_bytes_);
  SBFT_CHECK(index < chunk_count());
  size_t off = static_cast<size_t>(index) * chunk_size_;
  size_t len = std::min<size_t>(chunk_size_, envelope.size() - off);
  return envelope.subspan(off, len);
}

// ---------------------------------------------------------------------------
// Fetcher

void StateTransferManager::reset_fetch_state() {
  target_cert_ = ExecCertificate{};
  manifest_donor_ = 0;
  chunk_root_ = Digest{};
  transfer_root_ = Digest{};
  chunk_count_ = 0;
  target_chunk_size_ = 0;
  total_bytes_ = 0;
  chunks_.clear();
  received_ = 0;
  donors_.clear();
  strikes_.clear();
  struck_out_.clear();
  unplanned_.clear();
  outstanding_.clear();
  outstanding_by_donor_.clear();
  delivered_since_tick_.clear();
}

void StateTransferManager::retarget(const StateManifestMsg& m) {
  reset_fetch_state();
  target_cert_ = m.cert;
  manifest_donor_ = m.donor;
  chunk_root_ = m.chunk_root;
  transfer_root_ = ChunkedSnapshot::make_transfer_root(
      m.chunk_root, m.chunk_size, m.chunk_count, m.total_bytes);
  chunk_count_ = m.chunk_count;
  target_chunk_size_ = m.chunk_size;
  total_bytes_ = m.total_bytes;
  chunks_.assign(chunk_count_, Bytes{});
  for (uint32_t i = 0; i < chunk_count_; ++i) unplanned_.insert(unplanned_.end(), i);
  donors_.push_back(m.donor);
}

bool StateTransferManager::on_manifest(const StateManifestMsg& m,
                                       SeqNum last_executed) {
  if (!active_ || m.seq <= last_executed) return false;
  if (excluded_.count(m.donor)) return false;
  // Geometry sanity: the chunk grid must tile total_bytes exactly.
  if (m.cert.seq != m.seq || m.chunk_size == 0 || m.chunk_count == 0 ||
      m.total_bytes == 0 || m.total_bytes > kMaxTotalBytes ||
      m.chunk_count > kMaxChunks) {
    return false;
  }
  uint64_t expect_count =
      (m.total_bytes + m.chunk_size - 1) / m.chunk_size;
  if (expect_count != m.chunk_count) return false;

  // Manifests name a *transfer*: the chunk tree root bound to its geometry.
  // Honest replicas derive identical envelopes (hence identical transfers)
  // for a given checkpoint, so two same-seq manifests naming different
  // transfers means one of them lied — about the root or about the grid.
  Digest incoming = ChunkedSnapshot::make_transfer_root(
      m.chunk_root, m.chunk_size, m.chunk_count, m.total_bytes);

  // Same seq, different transfer: first manifest wins while any of its
  // donors is still answering. But once every donor of the adopted transfer
  // is dead, excluded, or struck out, it is unobtainable — a live network
  // offering a different transfer for the same seq means the adopted
  // manifest was the lie. Drop it (excluding its sender) and let this
  // manifest re-target; without this, a Byzantine donor could wedge the
  // fetch forever by advertising a fabricated transfer and going silent.
  if (has_target() && m.seq == target_cert_.seq &&
      !(incoming == transfer_root_)) {
    // struck_out_, not strikes_: planning-time forgiveness must not erase
    // the evidence that the adopted transfer's donors are all unresponsive.
    bool donors_dead = true;
    for (ReplicaId d : donors_) {
      if (!struck_out_.count(d)) donors_dead = false;
    }
    if (!donors_dead) return false;
    manifest_failed();
  }
  if (!has_target() || m.seq > target_cert_.seq) {
    retarget(m);
    return true;
  }
  if (m.seq == target_cert_.seq && incoming == transfer_root_) {
    // Another replica holds the same transfer: register it as a donor.
    if (std::find(donors_.begin(), donors_.end(), m.donor) == donors_.end()) {
      donors_.push_back(m.donor);
      return true;
    }
  }
  return false;
}

StateTransferManager::ChunkVerdict StateTransferManager::on_chunk(
    const StateChunkMsg& m, RuntimeStats& stats) {
  // Messages match on the geometry-bound transfer key; the Merkle proof
  // below verifies against the tree root that key commits to.
  if (!has_target() || m.seq != target_cert_.seq ||
      !(m.chunk_root == transfer_root_)) {
    return ChunkVerdict::kRejected;
  }
  bool valid = m.index < chunk_count_ && m.chunk_count == chunk_count_ &&
               !m.data.empty() && m.data.size() <= target_chunk_size_ &&
               m.proof.index == m.index && m.proof.leaf_count == chunk_count_ &&
               merkle::BlockMerkleTree::verify(
                   chunk_root_, ChunkedSnapshot::chunk_leaf(as_span(m.data)),
                   m.proof);
  if (!valid) {
    ++stats.state_transfer_invalid_chunks;
    excluded_.insert(m.donor);
    donors_.erase(std::remove(donors_.begin(), donors_.end(), m.donor),
                  donors_.end());
    // Everything outstanding at the bad donor becomes re-plannable right now.
    if (auto it = outstanding_by_donor_.find(m.donor);
        it != outstanding_by_donor_.end()) {
      for (uint32_t i : it->second) {
        outstanding_.erase(i);
        if (chunks_[i].empty()) unplanned_.insert(i);
      }
      outstanding_by_donor_.erase(it);
    }
    // An invalid chunk from the replica whose manifest we adopted makes the
    // whole target suspect (it authored the chunk root): drop it now so
    // honest same-seq manifests can re-target on the next probe, instead of
    // waiting for a completion that may never come.
    if (m.donor == manifest_donor_) manifest_failed();
    return ChunkVerdict::kInvalid;
  }
  // A verified chunk proves the donor is alive and serving, even when it
  // loses a re-plan race and arrives as a duplicate — credit it before the
  // duplicate check so the retry tick never strikes an active donor, and
  // clear any strike history it accumulated while unreachable.
  delivered_since_tick_.insert(m.donor);
  strikes_.erase(m.donor);
  struck_out_.erase(m.donor);
  if (!chunks_[m.index].empty()) return ChunkVerdict::kDuplicate;
  chunks_[m.index] = m.data;
  ++received_;
  ++stats.state_transfer_chunks_fetched;
  stats.state_transfer_bytes_transferred += m.data.size();
  unplanned_.erase(m.index);
  outstanding_.erase(m.index);
  if (auto it = outstanding_by_donor_.find(m.donor);
      it != outstanding_by_donor_.end()) {
    it->second.erase(m.index);
  }
  return received_ == chunk_count_ ? ChunkVerdict::kCompleted
                                   : ChunkVerdict::kStored;
}

std::vector<std::pair<ReplicaId, StateChunkRequestMsg>>
StateTransferManager::plan_requests(ReplicaId self) {
  std::vector<std::pair<ReplicaId, StateChunkRequestMsg>> out;
  if (!has_target() || received_ == chunk_count_) return out;

  // Usable donors: not excluded (erased already), preferring ones that have
  // not struck out; if every donor struck out, forgive — the alternative is
  // giving up with partial data in hand.
  std::vector<ReplicaId> pool;
  for (ReplicaId d : donors_) {
    if (strikes_[d] < kStrikeLimit) pool.push_back(d);
  }
  if (pool.empty()) {
    strikes_.clear();
    pool = donors_;
  }
  if (pool.empty()) return out;

  std::map<ReplicaId, StateChunkRequestMsg> batch;
  size_t cursor = rotation_ % pool.size();
  for (auto it = unplanned_.begin(); it != unplanned_.end();) {
    uint32_t i = *it;
    // Round-robin over donors with capacity left this plan.
    ReplicaId donor = 0;
    for (size_t probe = 0; probe < pool.size(); ++probe) {
      ReplicaId cand = pool[(cursor + probe) % pool.size()];
      if (batch[cand].indices.size() < max_chunks_per_request_) {
        donor = cand;
        cursor = (cursor + probe + 1) % pool.size();
        break;
      }
    }
    if (donor == 0) break;  // every donor's batch is full; wait for arrivals
    StateChunkRequestMsg& req = batch[donor];
    if (req.indices.empty()) {
      req.requester = self;
      req.seq = target_cert_.seq;
      req.chunk_root = transfer_root_;
    }
    req.indices.push_back(i);
    it = unplanned_.erase(it);
    outstanding_.insert(i);
    outstanding_by_donor_[donor].insert(i);
  }
  for (auto& [donor, req] : batch) {
    if (!req.indices.empty()) out.emplace_back(donor, std::move(req));
  }
  return out;
}

bool StateTransferManager::on_retry(RuntimeStats& stats) {
  if (!active_) return false;
  // Strike donors that sat on outstanding requests without delivering, and
  // make everything they sat on plannable again.
  for (const auto& [donor, indices] : outstanding_by_donor_) {
    if (indices.empty() || delivered_since_tick_.count(donor)) continue;
    if (++strikes_[donor] >= kStrikeLimit) struck_out_.insert(donor);
  }
  for (uint32_t i : outstanding_) {
    if (chunks_.empty() || chunks_[i].empty()) unplanned_.insert(i);
  }
  outstanding_.clear();
  outstanding_by_donor_.clear();
  delivered_since_tick_.clear();
  ++rotation_;
  bool resuming = has_target() && received_ > 0 && received_ < chunk_count_;
  if (resuming) ++stats.state_transfer_resumes;
  return resuming;
}

StateTransferManager::RetryTick StateTransferManager::on_retry_tick(
    SeqNum last_executed, bool behind, RuntimeStats& stats) {
  // The fetch became moot: caught up to (or past) the target through the
  // ordering protocol, or no manifest yet and no demonstrable lag remains.
  if (has_target() && target_cert_.seq <= last_executed) finish();
  if (active_ && !has_target() && !behind) finish();
  if (!active_) return {/*stop=*/true, /*probe=*/false};
  on_retry(stats);
  // Re-broadcast the probe while no manifest was adopted, every donor went
  // bad, or every registered donor has struck out (all crashed/partitioned:
  // plan_requests will forgive and keep retrying them, but only a fresh
  // probe lets replicas that acquired the checkpoint since then register).
  // struck_out_ persists across planning-time forgiveness, so this decision
  // — like on_manifest's re-target — cannot be erased by a re-plan.
  bool all_struck = !donors_.empty();
  for (ReplicaId d : donors_) {
    if (!struck_out_.count(d)) all_struck = false;
  }
  return {/*stop=*/false,
          /*probe=*/!has_target() || donors_.empty() || all_struck};
}

Bytes StateTransferManager::take_envelope() {
  SBFT_CHECK(has_target() && received_ == chunk_count_);
  Bytes envelope;
  envelope.reserve(total_bytes_);
  for (const Bytes& c : chunks_) {
    envelope.insert(envelope.end(), c.begin(), c.end());
  }
  return envelope;
}

bool StateTransferManager::on_adopt_result(bool adopted, SeqNum last_executed) {
  if (adopted) {
    finish();
    return false;
  }
  if (target_cert_.seq <= last_executed) {
    // Became stale while fetching (the replica caught up through the
    // ordering protocol); nothing went wrong — the retry timer lapses.
    finish();
    return false;
  }
  // The assembled envelope failed the certified state-root check: the
  // manifest sender lied. Exclude it and re-probe from the survivors.
  manifest_failed();
  return true;
}

void StateTransferManager::manifest_failed() {
  excluded_.insert(manifest_donor_);
  reset_fetch_state();
  // Stays active (and excluded_ is kept): the caller re-probes and the fetch
  // restarts against the remaining replicas.
}

void StateTransferManager::finish() {
  active_ = false;
  reset_fetch_state();
  excluded_.clear();
  rotation_ = 0;
}

// ---------------------------------------------------------------------------
// Donor

const ChunkedSnapshot* StateTransferManager::donor_snapshot(
    const CheckpointManager& cp) {
  if (!cp.has_shippable()) return nullptr;
  if (donor_seq_ != cp.snapshot_cert().seq || !donor_chunks_) {
    donor_chunks_ =
        std::make_unique<ChunkedSnapshot>(as_span(cp.snapshot()), chunk_size_);
    donor_seq_ = cp.snapshot_cert().seq;
  }
  return donor_chunks_.get();
}

std::optional<StateManifestMsg> StateTransferManager::make_manifest(
    const CheckpointManager& cp, SeqNum have_seq, ReplicaId self) {
  if (!chunked() || !cp.has_shippable() || cp.snapshot_cert().seq <= have_seq) {
    return std::nullopt;
  }
  const ChunkedSnapshot* snap = donor_snapshot(cp);
  StateManifestMsg m;
  m.donor = self;
  m.seq = cp.snapshot_cert().seq;
  m.cert = cp.snapshot_cert();
  m.chunk_root = snap->chunk_root();
  m.chunk_count = snap->chunk_count();
  m.chunk_size = snap->chunk_size();
  m.total_bytes = snap->total_bytes();
  return m;
}

std::vector<StateChunkMsg> StateTransferManager::make_chunks(
    const CheckpointManager& cp, const StateChunkRequestMsg& req, ReplicaId self,
    RuntimeStats& stats) {
  std::vector<StateChunkMsg> out;
  if (!chunked() || !cp.has_shippable() || cp.snapshot_cert().seq != req.seq) {
    return out;  // checkpoint advanced past the request: fetcher re-probes
  }
  const ChunkedSnapshot* snap = donor_snapshot(cp);
  // Match on the geometry-bound transfer key: a request for a transfer this
  // donor does not recognize (e.g. forged geometry over the honest root) is
  // ignored, so an honest donor can never be blamed for a liar's manifest.
  if (!(snap->transfer_root() == req.chunk_root)) return out;
  size_t limit = std::min<size_t>(req.indices.size(), max_chunks_per_request_);
  for (size_t i = 0; i < limit; ++i) {
    uint32_t index = req.indices[i];
    if (index >= snap->chunk_count()) continue;
    StateChunkMsg m;
    m.donor = self;
    m.seq = req.seq;
    m.chunk_root = snap->transfer_root();
    m.index = index;
    m.chunk_count = snap->chunk_count();
    m.data = to_bytes(snap->chunk(as_span(cp.snapshot()), index));
    m.proof = snap->proof(index);
    // Bytes are counted fetcher-side only (on verified store), so summing
    // the counter across a cluster yields the snapshot size once — not
    // once per role, and not inflated by dropped or duplicate serves.
    ++stats.state_transfer_chunks_served;
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace sbft::runtime
