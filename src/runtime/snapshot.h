// Checkpoint snapshot envelope.
//
// A checkpoint snapshot as shipped in WAL records and state-transfer replies
// is more than the service state: the per-client reply cache rides along so a
// recovered replica suppresses duplicates of pre-checkpoint requests instead
// of re-executing them. The envelope frames both parts:
//
//   [8-byte magic "SBFTSNAP"][u16 version][bytes service_state][bytes replies]
//
// The service part is the component verified against the certificate's
// state_root; the reply cache is covered by the local WAL's crash-fault trust
// (and, over state transfer, by the same authenticated-channel assumption the
// snapshot ride-along metadata already relies on — see README §durability).
// decode falls back to treating the whole input as a bare service snapshot
// (the pre-envelope format) with an empty reply cache, so logs written before
// this format remain recoverable.
#pragma once

#include "runtime/reply_cache.h"

namespace sbft::runtime {

struct CheckpointSnapshot {
  Bytes service_state;
  ReplyCache replies;
};

Bytes encode_checkpoint_snapshot(ByteSpan service_state, const ReplyCache& replies);
/// Inputs without the envelope magic decode as a bare service snapshot (a
/// malformed service part is caught downstream, by IService::restore and the
/// state-root check). An input that *carries* the magic but is malformed —
/// unknown version, broken framing, corrupt reply-cache section — returns
/// nullopt: the cache has no state-root covering it, and silently dropping
/// it would reintroduce the duplicate re-execution hazard the envelope
/// exists to close. Callers treat nullopt like a corrupt snapshot (abort
/// recovery / reject the transfer).
std::optional<CheckpointSnapshot> decode_checkpoint_snapshot(ByteSpan data);

}  // namespace sbft::runtime
