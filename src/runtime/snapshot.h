// Checkpoint snapshot envelope.
//
// A checkpoint snapshot as shipped in WAL records and state-transfer replies
// is more than the service state: the per-client reply cache rides along so a
// recovered replica suppresses duplicates of pre-checkpoint requests instead
// of re-executing them, (version 3) the membership section so recovering
// and joining replicas learn the roster from the snapshot itself
// (docs/reconfiguration.md), and (version 4) the marker-executor section so
// cross-shard lock/transaction state survives state transfer exactly like
// the reply cache does (docs/sharding.md). The envelope frames all parts.
// Version 4 (current) is *chunk-aligned* so the delta state-transfer path can
// diff consecutive checkpoints chunk-for-chunk (docs/state_transfer.md):
//
//   [8-byte magic "SBFTSNAP"][u16 version=4][u32 align]
//   [u64 service_len][u64 replies_len][u64 membership_len][u64 marker_len]
//   [zero pad to align]
//   [service_state, zero-padded to a multiple of align]
//   [replies][membership][marker]
//
// `align` equals the cluster's state-transfer chunk size (1 when chunking is
// off), so the service serializer's page-aligned sections land exactly on
// chunk boundaries of the envelope: an unmutated section occupies
// byte-identical chunks across consecutive checkpoints. The mutable
// reply-cache, membership, and marker sections ride at the tail where they
// can only dirty the last chunks. Version 3 (no marker section), version 2
// (no membership), and version 1 ([bytes service_state][bytes replies],
// unaligned) are still decoded (snapshots persisted in older WALs); an empty
// marker section encodes as version 3 so deployments without a shard layer
// produce byte-identical envelopes to the previous release.
//
// The service part is the component verified against the certificate's
// state_root; the reply cache and membership section are covered by the local
// WAL's crash-fault trust (and, over state transfer, by the same
// authenticated-channel/quorum assumptions the snapshot ride-along metadata
// already relies on — see README §durability and docs/reconfiguration.md).
// decode falls back to treating the whole input as a bare service snapshot
// (the pre-envelope format) with an empty reply cache, so logs written before
// this format remain recoverable.
#pragma once

#include "runtime/reply_cache.h"

namespace sbft::runtime {

struct CheckpointSnapshot {
  Bytes service_state;
  ReplyCache replies;
  Bytes membership;  // MembershipManager section; empty on pre-v3 envelopes
  Bytes marker;      // IMarkerExecutor section; empty on pre-v4 envelopes
};

/// `align` is the chunk-stability unit (pass the state-transfer chunk size);
/// <= 1 emits an unpadded envelope. `membership` is the encoded
/// MembershipManager section (empty when membership is unconfigured);
/// `marker` the IMarkerExecutor section (empty without a shard layer).
Bytes encode_checkpoint_snapshot(ByteSpan service_state, const ReplyCache& replies,
                                 uint32_t align = 1, ByteSpan membership = {},
                                 ByteSpan marker = {});
/// Inputs without the envelope magic decode as a bare service snapshot (a
/// malformed service part is caught downstream, by IService::restore and the
/// state-root check). An input that *carries* the magic but is malformed —
/// unknown version, broken framing, corrupt reply-cache section — returns
/// nullopt: the cache has no state-root covering it, and silently dropping
/// it would reintroduce the duplicate re-execution hazard the envelope
/// exists to close. Callers treat nullopt like a corrupt snapshot (abort
/// recovery / reject the transfer).
std::optional<CheckpointSnapshot> decode_checkpoint_snapshot(ByteSpan data);

}  // namespace sbft::runtime
