// Marker-request executor interface (docs/sharding.md).
//
// Reconfiguration (PR 5) established the marker-request pattern: a reserved
// request ordered through the normal agreement path whose execution mutates a
// side-car state machine instead of the replicated service. The cross-shard
// transaction layer (src/shard) generalizes it: Prepare requests lock and
// validate keys in a deterministic lock table, decision markers apply or
// release them. This interface is the runtime-facing half of that contract —
// the runtime (and recovery replay, which must mirror live execution
// byte-for-byte) routes claimed requests here, and includes the executor's
// serialized state in every checkpoint snapshot envelope so lock state
// survives state transfer exactly like the reply cache does.
//
// The ordering engines use the network-facing half: they forward cross-group
// transaction traffic into on_network(), drain outbound() sends, and order
// the marker requests the executor asks for (take_marker_requests) exactly
// like PR 5's reconfiguration blocks. All hooks are synchronous and the
// executor never touches the simulator — determinism stays with the caller.
#pragma once

#include <utility>
#include <vector>

#include "kv/service.h"
#include "proto/message.h"
#include "sim/cost_model.h"
#include "sim/simulator.h"

namespace sbft::runtime {

class IMarkerExecutor {
 public:
  virtual ~IMarkerExecutor() = default;

  // --- execution half (ReplicaRuntime + recovery replay) ---------------------

  /// True when this executor owns `req` (reserved client id or magic-prefixed
  /// op). Claimed requests never reach IService::execute directly.
  virtual bool claims(const Request& req) const = 0;

  /// Executes a claimed request at sequence `s`. Must be deterministic given
  /// identical executor/service state — every replica of the group orders the
  /// same blocks, so lock outcomes agree. May mutate the service (applying a
  /// committed transaction's operations). Returns the reply value.
  virtual Bytes execute_marker(const Request& req, SeqNum s,
                               IService& service) = 0;

  /// Simulated CPU cost of the most recent execute_marker call.
  virtual int64_t last_execute_cost_us(const sim::CostModel&) const { return 0; }

  /// Serialized executor state for the checkpoint snapshot envelope, and its
  /// inverse (state transfer / recovery). Must round-trip byte-identically.
  virtual Bytes snapshot() const = 0;
  virtual bool restore(ByteSpan data) = 0;

  // --- network half (ordering engines) ---------------------------------------

  /// Cross-group transaction message (TxVoteMsg / TxDecisionMsg) delivered to
  /// this replica's node; may queue outbound sends and marker requests.
  virtual void on_network(NodeId /*from*/, const Message& /*msg*/,
                          sim::SimTime /*now*/) {}

  /// Periodic retry tick (vote re-sends, decision re-broadcasts, marker
  /// re-enqueues). 0 from tick_interval_us disables the timer.
  virtual void on_tick(sim::SimTime /*now*/) {}
  virtual int64_t tick_interval_us() const { return 0; }

  /// Sends queued by execution/network/tick hooks, pre-resolved to node ids
  /// (the executor owns the deployment directory; engines just send).
  virtual std::vector<std::pair<NodeId, MessagePtr>> take_outbound() {
    return {};
  }

  /// Marker requests awaiting ordering. The primary enqueues them into its
  /// batch queue (deduped by (client, timestamp)); backups drop them — the
  /// tick re-surfaces markers that never committed.
  virtual std::vector<Request> take_marker_requests() { return {}; }
};

}  // namespace sbft::runtime
