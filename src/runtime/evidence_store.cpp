#include "runtime/evidence_store.h"

#include <utility>

namespace sbft::runtime {

bool EvidenceStore::record_prepared(SeqNum s, ViewNum view,
                                    const Digest& digest, Bytes sig,
                                    std::optional<Block> block) {
  SlotEvidenceRecord& rec = slots_[s];
  if (rec.has_prepared && rec.prepared_view > view) return false;
  rec.has_prepared = true;
  rec.prepared_view = view;
  rec.prepared_digest = digest;
  rec.prepared_sig = std::move(sig);
  if (block.has_value()) rec.prepared_block = std::move(block);
  return true;
}

bool EvidenceStore::record_fast_proof(SeqNum s, ViewNum view,
                                      const Digest& digest, Bytes sig) {
  SlotEvidenceRecord& rec = slots_[s];
  if (rec.has_fast_proof) return false;
  rec.has_fast_proof = true;
  rec.fast_view = view;
  rec.fast_digest = digest;
  rec.fast_sig = std::move(sig);
  return true;
}

bool EvidenceStore::record_slow_proof(SeqNum s, ViewNum view,
                                      const Digest& digest, Bytes inner_sig,
                                      Bytes sig) {
  SlotEvidenceRecord& rec = slots_[s];
  if (rec.has_slow_proof) return false;
  rec.has_slow_proof = true;
  rec.slow_view = view;
  rec.slow_digest = digest;
  rec.slow_inner_sig = std::move(inner_sig);
  rec.slow_sig = std::move(sig);
  return true;
}

const SlotEvidenceRecord* EvidenceStore::find(SeqNum s) const {
  auto it = slots_.find(s);
  return it == slots_.end() ? nullptr : &it->second;
}

void EvidenceStore::for_each_in(
    SeqNum lo, SeqNum hi,
    const std::function<void(SeqNum, const SlotEvidenceRecord&)>& fn) const {
  for (auto it = slots_.upper_bound(lo); it != slots_.end() && it->first <= hi;
       ++it) {
    fn(it->first, it->second);
  }
}

void EvidenceStore::gc_through(SeqNum stable) {
  slots_.erase(slots_.begin(), slots_.upper_bound(stable));
}

}  // namespace sbft::runtime
