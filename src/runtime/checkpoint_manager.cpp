#include "runtime/checkpoint_manager.h"

namespace sbft::runtime {

void CheckpointManager::capture_pending(SeqNum s, Bytes snapshot_envelope) {
  pending_seq_ = s;
  pending_ = std::move(snapshot_envelope);
}

void CheckpointManager::adopt(const ExecCertificate& cert, Bytes snapshot_envelope) {
  ls_ = cert.seq;
  stable_cert_ = cert;
  snapshot_cert_ = cert;
  snapshot_ = std::move(snapshot_envelope);
  pending_seq_ = 0;
  pending_ = {};
}

void CheckpointManager::restore(const ExecCertificate& cert, Bytes snapshot_envelope,
                                SeqNum pending_seq, Bytes pending_envelope) {
  ls_ = cert.seq;
  stable_cert_ = cert;
  snapshot_cert_ = cert;
  snapshot_ = std::move(snapshot_envelope);
  pending_seq_ = pending_seq;
  pending_ = std::move(pending_envelope);
}

}  // namespace sbft::runtime
