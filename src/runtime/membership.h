// Group reconfiguration: membership epochs and their lifecycle
// (docs/reconfiguration.md is the normative description — keep in sync).
//
// Membership changes follow PBFT's reconfiguration-through-ordered-blocks
// approach: a ReconfigDelta is ordered like any request (a reserved marker
// request, client id 0), *staged* when that block executes, and *activated*
// at the next stable checkpoint boundary — producing a new epoch (id, replica
// set, f/c and therefore all quorum sizes). Both ordering engines re-derive
// quorum/collector/primary math from the active epoch, and the epoch rides in
// the checkpoint snapshot envelope (version 3) so recovering and joining
// replicas learn the roster from state transfer itself.
//
// The activation boundary gives a clean epoch cut: every slot <= the boundary
// is ordered (and, under SBFT, threshold-signed) in the old epoch, every slot
// beyond it in the new one. Engines wedge proposals past a pending boundary
// until the checkpoint is stable, so no honest replica ever votes for a
// post-boundary slot under pre-boundary keys.
#pragma once

#include <optional>
#include <vector>

#include "common/bytes.h"
#include "proto/config.h"
#include "proto/message.h"

namespace sbft::runtime {

/// One membership epoch: the replica set plus the fault parameters the quorum
/// sizes derive from. Member ids need not be contiguous (removals leave
/// holes); the *rank* of a member — its index in the id-sorted member list —
/// is the per-epoch signer index used by threshold schemes dealt for the
/// epoch's roster.
struct MembershipEpoch {
  uint64_t epoch = 0;      // 0 = genesis
  uint32_t f = 0;
  uint32_t c = 0;
  SeqNum activated_at = 0;  // checkpoint seq the epoch took effect at
  std::vector<ReplicaInfo> members;  // sorted by replica id

  uint32_t n() const { return static_cast<uint32_t>(members.size()); }
  // Quorum formulas of ProtocolConfig, over the epoch's f and c. Validation
  // guarantees n() == 3f + 2c + 1, so the formulas keep their meaning.
  uint32_t fast_quorum() const { return 3 * f + c + 1; }
  uint32_t slow_quorum() const { return 2 * f + c + 1; }
  uint32_t exec_quorum() const { return f + 1; }
  uint32_t view_change_quorum() const { return 2 * f + 2 * c + 1; }
  uint32_t num_collectors() const { return c + 1; }

  /// Round-robin primary over the id-sorted member list.
  ReplicaId primary_of(ViewNum v) const {
    return members[static_cast<size_t>(v % n())].id;
  }
  bool contains(ReplicaId r) const { return rank_of(r) >= 0; }
  /// 0-based index of `r` in the id-sorted member list; -1 when absent.
  /// rank_of(r) + 1 is r's signer index in the epoch's threshold schemes.
  int rank_of(ReplicaId r) const;
  /// Network node of member `r`; members only (SBFT_CHECKed).
  NodeId node_of(ReplicaId r) const;

  /// `base` with f and c replaced by the epoch's, so n()/quorum helpers and
  /// every pure function taking a ProtocolConfig (view-change validation)
  /// compute against the epoch roster size.
  ProtocolConfig derive_config(ProtocolConfig base) const {
    base.f = f;
    base.c = c;
    return base;
  }
};

/// A staged (executed but not yet active) reconfiguration.
struct PendingReconfig {
  ReconfigDelta delta;
  SeqNum activation_seq = 0;  // first checkpoint boundary >= execution seq
  uint64_t target_epoch = 0;  // active().epoch + 1 at staging time
};

/// Tracks the active epoch, the staged reconfiguration, and the epoch history
/// of one replica. Owned by ReplicaRuntime; the ordering engines read the
/// active epoch for all quorum/primary/address math. Plain value type: it is
/// copied through recovery and serialized into checkpoint envelopes (the
/// membership section rides next to the reply cache, under the same local
/// WAL / authenticated-channel trust — see docs/reconfiguration.md).
class MembershipManager {
 public:
  MembershipManager() = default;

  /// Installs the genesis epoch (epoch 0). `members` must be non-empty and
  /// id-sorted entries are normalized here.
  void init_genesis(uint32_t f, uint32_t c, std::vector<ReplicaInfo> members);
  bool configured() const { return !epochs_.empty(); }

  const MembershipEpoch& active() const { return epochs_.back(); }
  /// Epoch governing slot `s`: the newest epoch with activated_at < s. Slots
  /// at the boundary itself still belong to the epoch that ordered them.
  const MembershipEpoch& epoch_for_seq(SeqNum s) const;
  bool is_member(ReplicaId r) const {
    return configured() && active().contains(r);
  }
  const std::vector<MembershipEpoch>& history() const { return epochs_; }

  const std::optional<PendingReconfig>& pending() const { return pending_; }
  /// Checkpoint boundary a staged reconfiguration activates at (0: none).
  SeqNum pending_activation() const {
    return pending_ ? pending_->activation_seq : 0;
  }

  /// Stages a delta executed at sequence `exec_seq` (checkpoint interval
  /// `interval`). Validation is deterministic — every replica accepts or
  /// rejects identically: adds must be new ids/nodes, removes must be current
  /// members, the resulting roster must satisfy |members| == 3f + 2c + 1 with
  /// f >= 1, and at most one reconfiguration may be in flight.
  bool stage(const ReconfigDelta& delta, SeqNum exec_seq, uint64_t interval);

  /// Activates the staged reconfiguration once `stable_seq` reaches its
  /// boundary. Returns true when a new epoch took effect.
  bool activate_up_to(SeqNum stable_seq);

  /// Membership section of the checkpoint snapshot envelope: the active epoch
  /// plus any staged reconfiguration. Empty when unconfigured.
  Bytes encode() const;
  /// Installs the state carried by a fetched/recovered envelope. Never
  /// regresses: a section whose epoch is older than the local active epoch is
  /// ignored. Malformed sections are ignored too (the section has no
  /// state-root covering it; a lying donor is bounded by quorum trust at the
  /// protocol layer). Returns true when anything was adopted.
  bool restore(ByteSpan section);

 private:
  /// Sizing-law validation shared by activation and restore: f >= 1,
  /// |members| == 3f + 2c + 1, id-sorted unique members.
  static bool epoch_well_formed(const MembershipEpoch& e);

  std::vector<MembershipEpoch> epochs_;  // activation order; back() is active
  std::optional<PendingReconfig> pending_;
};

}  // namespace sbft::runtime
