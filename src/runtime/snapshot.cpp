#include "runtime/snapshot.h"

#include <cstring>

#include "common/serde.h"

namespace sbft::runtime {

namespace {
constexpr char kMagic[8] = {'S', 'B', 'F', 'T', 'S', 'N', 'A', 'P'};
constexpr uint16_t kVersion = 1;
}  // namespace

Bytes encode_checkpoint_snapshot(ByteSpan service_state, const ReplyCache& replies) {
  Writer w;
  w.raw(ByteSpan{reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic)});
  w.u16(kVersion);
  w.bytes(service_state);
  w.bytes(as_span(replies.encode()));
  return std::move(w).take();
}

std::optional<CheckpointSnapshot> decode_checkpoint_snapshot(ByteSpan data) {
  CheckpointSnapshot out;
  if (data.size() < sizeof(kMagic) + 2 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    out.service_state.assign(data.begin(), data.end());  // bare legacy snapshot
    return out;
  }
  Reader r(ByteSpan{data.data() + sizeof(kMagic), data.size() - sizeof(kMagic)});
  uint16_t version = r.u16();
  Bytes service_state = r.bytes();
  Bytes replies = r.bytes();
  if (version != kVersion || !r.at_end()) return std::nullopt;
  auto cache = ReplyCache::decode(as_span(replies));
  if (!cache) return std::nullopt;
  out.service_state = std::move(service_state);
  out.replies = std::move(*cache);
  return out;
}

}  // namespace sbft::runtime
