#include "runtime/snapshot.h"

#include <cstring>

#include "common/serde.h"

namespace sbft::runtime {

namespace {
constexpr char kMagic[8] = {'S', 'B', 'F', 'T', 'S', 'N', 'A', 'P'};
constexpr uint16_t kVersionFlat = 1;     // [bytes service][bytes replies]
constexpr uint16_t kVersionAligned = 2;  // chunk-aligned sections (see header)
constexpr uint16_t kVersionMembership = 3;  // + membership tail section
constexpr uint16_t kVersionMarker = 4;      // + marker-executor tail section
constexpr uint32_t kMaxAlign = 1u << 26;

size_t align_up(size_t n, uint32_t align) {
  return align > 1 ? (n + align - 1) / align * align : n;
}
}  // namespace

Bytes encode_checkpoint_snapshot(ByteSpan service_state, const ReplyCache& replies,
                                 uint32_t align, ByteSpan membership,
                                 ByteSpan marker) {
  if (align == 0) align = 1;
  // Alignment buys chunk-stable deltas, at up to ~2 chunks of padding. For a
  // state smaller than a few chunks that padding dominates (and a delta could
  // never save much anyway): emit the compact form. The gate is a pure
  // function of the state, so every replica picks the same layout.
  if (service_state.size() < 4ull * align) align = 1;
  Bytes reply_bytes = replies.encode();
  Writer w;
  w.raw(ByteSpan{reinterpret_cast<const uint8_t*>(kMagic), sizeof(kMagic)});
  // An empty marker section stays on the previous version so non-shard
  // deployments emit byte-identical envelopes to the prior release.
  w.u16(marker.empty() ? kVersionMembership : kVersionMarker);
  w.u32(align);
  w.u64(service_state.size());
  w.u64(reply_bytes.size());
  w.u64(membership.size());
  if (!marker.empty()) w.u64(marker.size());
  while (w.size() % align != 0) w.u8(0);  // service starts chunk-aligned
  w.raw(service_state);
  while (w.size() % align != 0) w.u8(0);  // mutable tail dirties only the end
  w.raw(as_span(reply_bytes));
  w.raw(membership);
  w.raw(marker);
  return std::move(w).take();
}

std::optional<CheckpointSnapshot> decode_checkpoint_snapshot(ByteSpan data) {
  CheckpointSnapshot out;
  if (data.size() < sizeof(kMagic) + 2 ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    out.service_state.assign(data.begin(), data.end());  // bare legacy snapshot
    return out;
  }
  Reader r(ByteSpan{data.data() + sizeof(kMagic), data.size() - sizeof(kMagic)});
  uint16_t version = r.u16();
  if (version == kVersionFlat) {
    Bytes service_state = r.bytes();
    Bytes replies = r.bytes();
    if (!r.at_end()) return std::nullopt;
    auto cache = ReplyCache::decode(as_span(replies));
    if (!cache) return std::nullopt;
    out.service_state = std::move(service_state);
    out.replies = std::move(*cache);
    return out;
  }
  if (version != kVersionAligned && version != kVersionMembership &&
      version != kVersionMarker) {
    return std::nullopt;
  }
  uint32_t align = r.u32();
  uint64_t service_len = r.u64();
  uint64_t replies_len = r.u64();
  uint64_t membership_len = version >= kVersionMembership ? r.u64() : 0;
  uint64_t marker_len = version >= kVersionMarker ? r.u64() : 0;
  if (!r.ok() || align == 0 || align > kMaxAlign) return std::nullopt;
  if (service_len > data.size() || replies_len > data.size() ||
      membership_len > data.size() || marker_len > data.size()) {
    return std::nullopt;
  }
  size_t len_fields = version >= kVersionMarker      ? 32
                      : version >= kVersionMembership ? 24
                                                      : 16;
  size_t header = align_up(sizeof(kMagic) + 2 + 4 + len_fields, align);
  size_t service_end = header + align_up(service_len, align);
  if (service_end > data.size() ||
      data.size() != service_end + replies_len + membership_len + marker_len) {
    return std::nullopt;
  }
  auto cache = ReplyCache::decode(data.subspan(service_end, replies_len));
  if (!cache) return std::nullopt;
  out.service_state = to_bytes(data.subspan(header, service_len));
  out.replies = std::move(*cache);
  out.membership = to_bytes(data.subspan(service_end + replies_len, membership_len));
  out.marker =
      to_bytes(data.subspan(service_end + replies_len + membership_len, marker_len));
  return out;
}

}  // namespace sbft::runtime
