#include "runtime/replica_runtime.h"

#include "common/check.h"
#include "crypto/sha256.h"
#include "merkle/merkle_tree.h"
#include "recovery/recovery_manager.h"
#include "runtime/snapshot.h"

namespace sbft::runtime {

ReplicaRuntime::ReplicaRuntime(RuntimeOptions options,
                               std::unique_ptr<IService> service)
    : opts_(std::move(options)),
      trace_(opts_.tracer ? *opts_.tracer : obs::Tracer::nop()),
      service_(std::move(service)),
      checkpoints_(opts_.checkpoint_interval),
      state_transfer_(opts_.state_transfer_chunk_size,
                      opts_.state_transfer_max_chunks_per_request,
                      opts_.state_transfer_donor_chunks_per_tick,
                      opts_.state_transfer_delta_enabled,
                      opts_.state_transfer_delta_history) {
  // Every service instance this runtime ever executes on carries the same
  // chunk hint, so snapshot bytes are identical across replicas (the delta
  // path compares them chunk-for-chunk).
  service_->set_snapshot_chunk_hint(opts_.state_transfer_chunk_size);
  exec_digests_[0] = genesis_exec_digest();
  if (!opts_.bootstrap_members.empty()) {
    membership_.init_genesis(opts_.membership_f, opts_.membership_c,
                             opts_.bootstrap_members);
  }
}

void ReplicaRuntime::note_membership_change(bool was_member, sim::SimTime now) {
  ++stats_.epochs_activated;
  epoch_changed_ = true;
  uint64_t epoch = membership_.active().epoch;
  trace_.instant(now, obs::Category::kReconfig, obs::ev::kEpochActivated, 0, 0,
                 0, "epoch", epoch);
  if (!was_member && membership_.is_member(opts_.self)) {
    ++stats_.joins_completed;
    trace_.instant(now, obs::Category::kReconfig, obs::ev::kEpochJoined, 0, 0,
                   0, "epoch", epoch);
  }
}

std::optional<RecoveredProtocolState> ReplicaRuntime::recover() {
  if (!opts_.ledger && !opts_.wal) return std::nullopt;
  recovery::RecoveryManager manager(opts_.ledger, opts_.wal,
                                    opts_.checkpoint_interval,
                                    opts_.state_transfer_chunk_size,
                                    opts_.marker_executor);
  auto recovered = manager.recover([this] { return service_->clone_empty(); });
  if (!recovered) return std::nullopt;  // fresh storage, or snapshot corrupt

  service_ = std::move(recovered->service);
  service_->set_snapshot_chunk_hint(opts_.state_transfer_chunk_size);
  // Membership as of the crash (checkpoint envelope + replayed markers); a
  // pre-membership log leaves the bootstrap roster in place.
  if (recovered->membership.configured()) {
    membership_ = std::move(recovered->membership);
    epoch_changed_ = membership_.active().epoch > 0;
  }
  le_ = recovered->last_executed;
  replies_ = std::move(recovered->reply_cache);
  exec_digests_ = std::move(recovered->exec_digests);
  exec_digests_.emplace(0, genesis_exec_digest());
  if (recovered->last_stable > 0) {
    checkpoints_.restore(recovered->checkpoint, std::move(recovered->snapshot),
                         recovered->snapshot_seq,
                         std::move(recovered->snapshot_at));
  } else if (recovered->snapshot_seq > 0) {
    checkpoints_.capture_pending(recovered->snapshot_seq,
                                 std::move(recovered->snapshot_at));
  }

  // Reinstall execution records for the replayed suffix so the replica serves
  // retries and block fetches exactly as its previous incarnation would have.
  for (recovery::ReplayedBlock& rb : recovered->replayed) {
    ExecutionRecord rec;
    rec.cert = rb.cert;
    rec.pp_view = rb.view;
    rec.block = std::move(rb.block);
    rec.values = std::move(rb.values);
    rec.leaves = std::move(rb.leaves);
    records_.emplace(rb.seq, std::move(rec));
  }

  stats_.recoveries = 1;
  stats_.blocks_replayed = recovered->replayed.size();
  if (opts_.wal) stats_.wal_bytes_written = opts_.wal->bytes_written();

  RecoveredProtocolState out;
  out.view = recovered->view;
  out.votes = std::move(recovered->votes);
  out.replayed_bytes = recovered->replayed_bytes;
  return out;
}

// ---------------------------------------------------------------------------
// Execution pipeline

ExecutionRecord& ReplicaRuntime::execute_block(SeqNum s, ViewNum pp_view,
                                               const Block& block,
                                               sim::ActorContext& ctx) {
  SBFT_CHECK(s == le_ + 1);
  ExecutionRecord rec;
  rec.block = block;
  rec.pp_view = pp_view;
  for (size_t l = 0; l < rec.block.requests.size(); ++l) {
    const Request& req = rec.block.requests[l];
    Bytes value;
    if (auto delta = decode_reconfig_request(req)) {
      // Reconfiguration marker: staged in the membership manager instead of
      // executed on the service (the service state — and therefore the
      // certified state root — is never touched by membership changes). The
      // outcome is deterministic, so every replica stages or rejects alike.
      bool staged = membership_.stage(*delta, s, opts_.checkpoint_interval);
      value = to_bytes(staged ? "RECONF" : "RECONF-REJECTED");
    } else if (req.client == kReconfigClient) {
      // Reserved client id without a valid marker payload: deterministic
      // no-op (defense in depth; engines already refuse client-0 requests
      // from the network).
      value = to_bytes("RECONF-REJECTED");
    } else if (req.client == kShardTxClient) {
      // Cross-shard decision marker: txids are unique but not monotone, so
      // the reply cache never sees this client — the executor dedups by txid
      // (docs/sharding.md). Without an executor the reserved id is a
      // deterministic no-op, mirroring the kReconfigClient defense.
      if (opts_.marker_executor != nullptr &&
          opts_.marker_executor->claims(req)) {
        value = opts_.marker_executor->execute_marker(req, s, *service_);
        ctx.charge(opts_.marker_executor->last_execute_cost_us(ctx.costs()));
        ++stats_.requests_executed;
      } else {
        value = to_bytes("TX-REJECTED");
      }
    } else if (const CachedReply* cached = replies_.find(req.client);
               cached != nullptr && req.timestamp <= cached->timestamp) {
      value = cached->value;  // duplicate: executed exactly once
      ++stats_.reply_cache_hits;
    } else if (opts_.marker_executor != nullptr &&
               opts_.marker_executor->claims(req)) {
      // Transaction Prepare from a real client: executed by the marker
      // executor (lock/validate, never the service), but cached like any
      // client request so retries are served without re-locking.
      value = opts_.marker_executor->execute_marker(req, s, *service_);
      ctx.charge(opts_.marker_executor->last_execute_cost_us(ctx.costs()));
      replies_.store(req.client, req.timestamp, s, l, value);
      ++stats_.requests_executed;
    } else {
      value = service_->execute(as_span(req.op));
      ctx.charge(service_->last_execute_cost_us(ctx.costs()));
      replies_.store(req.client, req.timestamp, s, l, value);
      ++stats_.requests_executed;
    }
    rec.leaves.push_back(
        exec_leaf(req.client, req.timestamp, crypto::sha256(as_span(value))));
    rec.values.push_back(std::move(value));
  }

  ExecCertificate cert;
  cert.seq = s;
  cert.state_root = service_->state_digest();
  cert.ops_root = rec.leaves.empty() ? empty_ops_root()
                                     : merkle::BlockMerkleTree(rec.leaves).root();
  cert.prev_exec_digest = exec_digests_[s - 1];
  exec_digests_[s] = cert.exec_digest();
  rec.cert = cert;

  // Persist the decision block (§IX: transactions persist to disk).
  ctx.charge(ctx.costs().persist_us(rec.block.wire_size()));
  if (opts_.ledger) {
    opts_.ledger->append_block(
        s, as_span(encode_message(Message(PrePrepareMsg{s, pp_view, rec.block}))));
  }
  le_ = s;
  ++stats_.blocks_executed;
  trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kExecute, s, s,
                 pp_view, "digest", obs::digest_prefix(exec_digests_[s].data()));

  // Capture the checkpoint snapshot while the service state still equals the
  // state the certificate describes; the reply cache rides along so recovery
  // suppresses pre-checkpoint duplicates (charged as a bulk hash).
  if (opts_.checkpoint_interval > 0 && s % opts_.checkpoint_interval == 0) {
    Bytes envelope = snapshot_envelope();
    ctx.charge(ctx.costs().hash_us(envelope.size()));
    checkpoints_.capture_pending(s, std::move(envelope));
    trace_.instant(ctx.now(), obs::Category::kCheckpoint,
                   obs::ev::kCheckpointCaptured, 0, s);
  }

  rec.executed_at = ctx.now();
  auto [it, inserted] = records_.emplace(s, std::move(rec));
  SBFT_CHECK(inserted);
  return it->second;
}

std::optional<Digest> ReplicaRuntime::exec_digest_of(SeqNum s) const {
  auto it = exec_digests_.find(s);
  if (it == exec_digests_.end()) return std::nullopt;
  return it->second;
}

ExecutionRecord* ReplicaRuntime::record(SeqNum s) {
  auto it = records_.find(s);
  return it == records_.end() ? nullptr : &it->second;
}

const ExecutionRecord* ReplicaRuntime::record(SeqNum s) const {
  auto it = records_.find(s);
  return it == records_.end() ? nullptr : &it->second;
}

const CachedReply* ReplicaRuntime::cached_reply(ClientId client,
                                                uint64_t timestamp) {
  const CachedReply* cached = replies_.find(client);
  if (cached == nullptr || timestamp > cached->timestamp) return nullptr;
  ++stats_.reply_cache_hits;
  return cached;
}

// ---------------------------------------------------------------------------
// Checkpoints

bool ReplicaRuntime::advance_stable(ExecCertificate cert, sim::ActorContext& ctx) {
  if (opts_.checkpoint_interval == 0) return false;
  if (cert.seq <= checkpoints_.last_stable() ||
      cert.seq % opts_.checkpoint_interval != 0)
    return false;
  bool recorded = checkpoints_.make_stable(cert, le_, [&] {
    Bytes envelope = snapshot_envelope();
    ctx.charge(ctx.costs().hash_us(envelope.size()));
    return envelope;
  });
  if (recorded) {
    trace_.instant(ctx.now(), obs::Category::kCheckpoint,
                   obs::ev::kCheckpointStable, 0, cert.seq, 0, "digest",
                   obs::digest_prefix(cert.state_root.data()));
    wal_record_checkpoint();
    // Seal the pair into the donor chunk cache now (retiring the previous
    // pair's chunk hashes as a delta base); the rebuild hashes the envelope.
    if (state_transfer_.note_checkpoint(checkpoints_)) {
      ctx.charge(ctx.costs().hash_us(checkpoints_.snapshot().size()));
    }
  }
  // Keep the checkpointed record itself (serves acks/fetches for stragglers).
  records_.erase(records_.begin(),
                 records_.lower_bound(checkpoints_.last_stable()));
  // A staged reconfiguration takes effect the moment its boundary checkpoint
  // is stable (docs/reconfiguration.md): the engine re-derives quorums from
  // the new epoch before any post-boundary slot is voted on.
  bool was_member = membership_.is_member(opts_.self);
  if (membership_.activate_up_to(checkpoints_.last_stable())) {
    note_membership_change(was_member, ctx.now());
  }
  return true;
}

bool ReplicaRuntime::adopt_checkpoint(const ExecCertificate& cert,
                                      ByteSpan snapshot_envelope_bytes,
                                      sim::ActorContext& ctx) {
  if (cert.seq <= le_) return false;
  auto fresh = service_->clone_empty();
  fresh->set_snapshot_chunk_hint(opts_.state_transfer_chunk_size);
  auto decoded = decode_checkpoint_snapshot(snapshot_envelope_bytes);
  ctx.charge(ctx.costs().hash_us(snapshot_envelope_bytes.size()));
  if (!decoded) return false;  // corrupt envelope
  if (!fresh->restore(as_span(decoded->service_state))) return false;
  if (!(fresh->state_digest() == cert.state_root)) return false;  // forged

  service_ = std::move(fresh);
  le_ = cert.seq;
  // The snapshot's cache can only be newer than ours, but a legacy envelope
  // carries none — keep our own entries where they win.
  replies_.absorb(std::move(decoded->replies));
  // The membership section moves the roster forward (never back): a joining
  // replica learns the epoch that admitted it from the snapshot itself, and a
  // staged-but-unactivated reconfiguration survives the transfer.
  bool was_member = membership_.is_member(opts_.self);
  uint64_t epoch_before =
      membership_.configured() ? membership_.active().epoch : 0;
  membership_.restore(as_span(decoded->membership));
  membership_.activate_up_to(cert.seq);
  if (membership_.configured() && membership_.active().epoch != epoch_before) {
    note_membership_change(was_member, ctx.now());
  }
  // The marker section replaces the executor's lock/transaction state with
  // the donors' view at this checkpoint, so later markers execute against the
  // same state on every replica of the group (docs/sharding.md).
  if (opts_.marker_executor != nullptr) {
    opts_.marker_executor->restore(as_span(decoded->marker));
  }
  exec_digests_[cert.seq] = cert.exec_digest();
  checkpoints_.adopt(cert, to_bytes(snapshot_envelope_bytes));
  trace_.instant(ctx.now(), obs::Category::kCheckpoint,
                 obs::ev::kCheckpointAdopted, 0, cert.seq, 0, "digest",
                 obs::digest_prefix(exec_digests_[cert.seq].data()));
  wal_record_checkpoint();
  // The adopted pair becomes this replica's donor view (and its delta base
  // the next time it falls behind).
  if (state_transfer_.note_checkpoint(checkpoints_)) {
    ctx.charge(ctx.costs().hash_us(checkpoints_.snapshot().size()));
  }
  records_.erase(records_.begin(), records_.lower_bound(cert.seq));
  return true;
}

// ---------------------------------------------------------------------------
// WAL

void ReplicaRuntime::wal_record_view(ViewNum v) {
  if (!opts_.wal) return;
  opts_.wal->record_view(v);
  stats_.wal_bytes_written = opts_.wal->bytes_written();
}

void ReplicaRuntime::wal_record_vote(SeqNum s, ViewNum v,
                                     const Digest& block_digest) {
  if (!opts_.wal) return;
  opts_.wal->record_vote(s, v, block_digest);
  stats_.wal_bytes_written = opts_.wal->bytes_written();
}

void ReplicaRuntime::wal_record_checkpoint() {
  if (!opts_.wal || !checkpoints_.has_shippable()) return;
  opts_.wal->record_checkpoint(checkpoints_.snapshot_cert(),
                               as_span(checkpoints_.snapshot()));
  stats_.wal_bytes_written = opts_.wal->bytes_written();
}

Bytes ReplicaRuntime::snapshot_envelope() const {
  // Align the envelope to the transfer chunk grid so the service serializer's
  // page-aligned sections land exactly on chunk boundaries (delta transfer
  // compares the two grids chunk-for-chunk). The membership and marker
  // sections ride at the mutable tail next to the reply cache.
  Bytes marker;
  if (opts_.marker_executor != nullptr) marker = opts_.marker_executor->snapshot();
  return encode_checkpoint_snapshot(as_span(service_->snapshot()), replies_,
                                    opts_.state_transfer_chunk_size,
                                    as_span(membership_.encode()),
                                    as_span(marker));
}

}  // namespace sbft::runtime
