// Merkle trees (§IV): the authenticated data interface SBFT uses so that a
// client can accept a result from a single replica.
//
// Two structures:
//  * BlockMerkleTree — ordered tree over the operations (and their outputs)
//    of one decision block; proves "operation o was executed as the l-th
//    operation of block s with output val".
//  * SparseMerkleTree — authenticated map for the service state; proves
//    key/value membership against the state root.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.h"

namespace sbft::merkle {

/// Domain-separated hashing so leaves can never be confused with interior
/// nodes (classic second-preimage hardening).
Digest leaf_hash(ByteSpan data);
Digest node_hash(const Digest& left, const Digest& right);

// ---------------------------------------------------------------------------
// Ordered tree over a block's operations.

struct BlockProof {
  uint64_t index = 0;        // position l of the operation in the block
  uint64_t leaf_count = 0;   // number of operations in the block
  std::vector<Digest> path;  // sibling hashes, leaf level first

  Bytes encode() const;
  static std::optional<BlockProof> decode(ByteSpan data);
  size_t wire_size() const { return 16 + path.size() * 32; }
};

class BlockMerkleTree {
 public:
  /// Builds the tree over already-hashed leaves (use leaf_hash on payloads).
  explicit BlockMerkleTree(std::vector<Digest> leaves);

  const Digest& root() const { return levels_.back()[0]; }
  uint64_t leaf_count() const { return static_cast<uint64_t>(levels_[0].size()); }
  /// The leaf digests the tree was built over (index order). State transfer
  /// diffs two snapshots' trees leaf-by-leaf to build delta manifests.
  const std::vector<Digest>& leaves() const { return levels_[0]; }
  BlockProof prove(uint64_t index) const;

  /// Verifies that `leaf` is at `proof.index` under `root`.
  static bool verify(const Digest& root, const Digest& leaf, const BlockProof& proof);

 private:
  // levels_[0] = leaves (padded is not stored; odd nodes are promoted).
  std::vector<std::vector<Digest>> levels_;
};

// ---------------------------------------------------------------------------
// Sparse Merkle tree for the service state.
//
// Keys are mapped to a 64-bit path (first 8 bytes of SHA-256 of the key);
// depth-64 is collision-safe at the scales this repository runs (birthday
// bound ~2^-24 at one million keys). Empty subtrees hash to per-level default
// digests, so storage is proportional to the number of live keys.

struct SmtProof {
  uint64_t path = 0;          // leaf index of the key
  uint64_t nondefault_mask = 0;  // bit i set => sibling at level i is explicit
  std::vector<Digest> siblings;  // non-default siblings, leaf level first

  Bytes encode() const;
  static std::optional<SmtProof> decode(ByteSpan data);
  size_t wire_size() const { return 16 + siblings.size() * 32; }
};

class SparseMerkleTree {
 public:
  static constexpr int kDepth = 64;

  SparseMerkleTree();

  /// Sets the leaf for `key` to leaf_hash(key || value-binding). A zero
  /// digest deletes the leaf (resets to default).
  void update(ByteSpan key, const Digest& leaf);
  std::optional<Digest> leaf(ByteSpan key) const;
  const Digest& root() const { return root_; }
  size_t size() const { return leaves_.size(); }

  SmtProof prove(ByteSpan key) const;
  /// Verifies that `key` maps to `leaf` (or is absent if leaf==nullopt) under
  /// `root`.
  static bool verify(const Digest& root, ByteSpan key,
                     const std::optional<Digest>& leaf, const SmtProof& proof);

  static uint64_t key_path(ByteSpan key);

 private:
  struct NodeKey {
    int level;       // 0 = leaf level, kDepth = root
    uint64_t index;  // node index within the level
    auto operator<=>(const NodeKey&) const = default;
  };

  Digest node(int level, uint64_t index) const;
  static const std::vector<Digest>& default_hashes();

  // Ordered maps, not hash maps: the state root these trees produce flows
  // into checkpoint certificates and snapshots, so no container here may
  // expose hash-seed-dependent iteration order (lint:determinism). Lookups
  // are point-addressed; ordering also makes a future ranged diff trivial.
  std::map<NodeKey, Digest> nodes_;
  std::map<uint64_t, Digest> leaves_;
  Digest root_;
};

}  // namespace sbft::merkle
