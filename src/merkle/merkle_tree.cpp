#include "merkle/merkle_tree.h"

#include "common/check.h"
#include "common/serde.h"
#include "crypto/sha256.h"

namespace sbft::merkle {

using crypto::Sha256;

Digest leaf_hash(ByteSpan data) {
  Sha256 h;
  uint8_t tag = 0x00;
  h.update(ByteSpan{&tag, 1});
  h.update(data);
  return h.finish();
}

Digest node_hash(const Digest& left, const Digest& right) {
  Sha256 h;
  uint8_t tag = 0x01;
  h.update(ByteSpan{&tag, 1});
  h.update(as_span(left));
  h.update(as_span(right));
  return h.finish();
}

// ---------------------------------------------------------------------------
// BlockMerkleTree

BlockMerkleTree::BlockMerkleTree(std::vector<Digest> leaves) {
  SBFT_CHECK(!leaves.empty());
  levels_.push_back(std::move(leaves));
  while (levels_.back().size() > 1) {
    const auto& prev = levels_.back();
    std::vector<Digest> next;
    next.reserve((prev.size() + 1) / 2);
    for (size_t i = 0; i + 1 < prev.size(); i += 2)
      next.push_back(node_hash(prev[i], prev[i + 1]));
    if (prev.size() % 2 == 1) next.push_back(prev.back());  // promote odd node
    levels_.push_back(std::move(next));
  }
}

BlockProof BlockMerkleTree::prove(uint64_t index) const {
  SBFT_CHECK(index < leaf_count());
  BlockProof proof;
  proof.index = index;
  proof.leaf_count = leaf_count();
  uint64_t i = index;
  for (size_t level = 0; level + 1 < levels_.size(); ++level) {
    const auto& nodes = levels_[level];
    uint64_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < nodes.size()) {
      proof.path.push_back(nodes[sibling]);
    }
    // When i is a promoted odd node (no sibling) nothing is appended; the
    // verifier reproduces the same promotion rule from leaf_count.
    i /= 2;
  }
  return proof;
}

bool BlockMerkleTree::verify(const Digest& root, const Digest& leaf,
                             const BlockProof& proof) {
  if (proof.leaf_count == 0 || proof.index >= proof.leaf_count) return false;
  Digest cur = leaf;
  uint64_t i = proof.index;
  uint64_t width = proof.leaf_count;
  size_t used = 0;
  while (width > 1) {
    uint64_t sibling = (i % 2 == 0) ? i + 1 : i - 1;
    if (sibling < width) {
      if (used >= proof.path.size()) return false;
      const Digest& sib = proof.path[used++];
      cur = (i % 2 == 0) ? node_hash(cur, sib) : node_hash(sib, cur);
    }
    i /= 2;
    width = (width + 1) / 2;
  }
  return used == proof.path.size() && digest_equal(cur, root);
}

Bytes BlockProof::encode() const {
  Writer w;
  w.u64(index);
  w.u64(leaf_count);
  w.u32(static_cast<uint32_t>(path.size()));
  for (const Digest& d : path) w.digest(d);
  return std::move(w).take();
}

std::optional<BlockProof> BlockProof::decode(ByteSpan data) {
  Reader r(data);
  BlockProof p;
  p.index = r.u64();
  p.leaf_count = r.u64();
  uint32_t n = r.u32();
  if (n > 64) return std::nullopt;
  for (uint32_t i = 0; i < n; ++i) p.path.push_back(r.digest());
  if (!r.at_end()) return std::nullopt;
  return p;
}

// ---------------------------------------------------------------------------
// SparseMerkleTree

const std::vector<Digest>& SparseMerkleTree::default_hashes() {
  static const std::vector<Digest> defaults = [] {
    std::vector<Digest> d(kDepth + 1);
    d[0] = crypto::sha256("sbft.smt.empty-leaf");
    for (int i = 1; i <= kDepth; ++i) d[i] = node_hash(d[i - 1], d[i - 1]);
    return d;
  }();
  return defaults;
}

SparseMerkleTree::SparseMerkleTree() { root_ = default_hashes()[kDepth]; }

uint64_t SparseMerkleTree::key_path(ByteSpan key) {
  Digest d = crypto::sha256(key);
  uint64_t path = 0;
  for (int i = 0; i < 8; ++i) path = (path << 8) | d[static_cast<size_t>(i)];
  return path;
}

Digest SparseMerkleTree::node(int level, uint64_t index) const {
  if (level == 0) {
    auto it = leaves_.find(index);
    return it == leaves_.end() ? default_hashes()[0] : it->second;
  }
  auto it = nodes_.find(NodeKey{level, index});
  return it == nodes_.end() ? default_hashes()[static_cast<size_t>(level)] : it->second;
}

void SparseMerkleTree::update(ByteSpan key, const Digest& leaf) {
  uint64_t path = key_path(key);
  Digest zero{};
  if (digest_equal(leaf, zero)) {
    leaves_.erase(path);
  } else {
    leaves_[path] = leaf;
  }
  // Recompute the path to the root.
  uint64_t index = path;
  for (int level = 1; level <= kDepth; ++level) {
    uint64_t child = index;
    index >>= 1;
    Digest left = node(level - 1, child & ~1ull);
    Digest right = node(level - 1, (child & ~1ull) | 1ull);
    Digest h = node_hash(left, right);
    if (digest_equal(h, default_hashes()[static_cast<size_t>(level)])) {
      nodes_.erase(NodeKey{level, index});
    } else {
      nodes_[NodeKey{level, index}] = h;
    }
  }
  root_ = node(kDepth, 0);
}

std::optional<Digest> SparseMerkleTree::leaf(ByteSpan key) const {
  auto it = leaves_.find(key_path(key));
  if (it == leaves_.end()) return std::nullopt;
  return it->second;
}

SmtProof SparseMerkleTree::prove(ByteSpan key) const {
  SmtProof proof;
  proof.path = key_path(key);
  uint64_t index = proof.path;
  for (int level = 0; level < kDepth; ++level) {
    Digest sib = node(level, index ^ 1ull);
    if (!digest_equal(sib, default_hashes()[static_cast<size_t>(level)])) {
      proof.nondefault_mask |= 1ull << level;
      proof.siblings.push_back(sib);
    }
    index >>= 1;
  }
  return proof;
}

bool SparseMerkleTree::verify(const Digest& root, ByteSpan key,
                              const std::optional<Digest>& leaf,
                              const SmtProof& proof) {
  if (proof.path != key_path(key)) return false;
  Digest cur = leaf.value_or(default_hashes()[0]);
  uint64_t index = proof.path;
  size_t used = 0;
  for (int level = 0; level < kDepth; ++level) {
    Digest sib;
    if (proof.nondefault_mask & (1ull << level)) {
      if (used >= proof.siblings.size()) return false;
      sib = proof.siblings[used++];
    } else {
      sib = default_hashes()[static_cast<size_t>(level)];
    }
    cur = (index & 1) ? node_hash(sib, cur) : node_hash(cur, sib);
    index >>= 1;
  }
  return used == proof.siblings.size() && digest_equal(cur, root);
}

Bytes SmtProof::encode() const {
  Writer w;
  w.u64(path);
  w.u64(nondefault_mask);
  w.u32(static_cast<uint32_t>(siblings.size()));
  for (const Digest& d : siblings) w.digest(d);
  return std::move(w).take();
}

std::optional<SmtProof> SmtProof::decode(ByteSpan data) {
  Reader r(data);
  SmtProof p;
  p.path = r.u64();
  p.nondefault_mask = r.u64();
  uint32_t n = r.u32();
  if (n > SparseMerkleTree::kDepth) return std::nullopt;
  for (uint32_t i = 0; i < n; ++i) p.siblings.push_back(r.digest());
  if (!r.at_end()) return std::nullopt;
  return p;
}

}  // namespace sbft::merkle
