// Deterministic cross-shard transaction state machine (docs/sharding.md).
//
// The execution half of a replica's shard layer: a key lock table plus the
// per-transaction prepared/decided registers, mutated ONLY by ordered
// requests (Prepare markers and TxDecision markers), so every replica of a
// group holds identical TxManager state after executing the same block
// prefix. Nothing here touches the network or the clock — that side lives in
// ShardExecutor. The whole state serializes into the checkpoint snapshot
// envelope's marker section, which is how locks survive state transfer,
// crash recovery, and joiner bootstrap exactly like the reply cache does.
//
// Lifecycle of a transaction in one group:
//   prepare(tx)  — locks this group's keys if all are free (vote commit) or
//                  leaves them untouched on conflict (vote abort),
//   decide(d)    — commit: applies this group's operations to the service
//                  and releases the locks; abort: just releases. Idempotent
//                  by txid; an abort decision may precede the local prepare
//                  (another group's conflict aborted the transaction first),
//                  in which case the late prepare returns the decision
//                  instead of taking locks.
#pragma once

#include <map>
#include <optional>

#include "kv/service.h"
#include "proto/message.h"

namespace sbft::shard {

/// A transaction this group prepared and has not yet decided.
struct PreparedTx {
  ShardTx tx;
  ClientId client = 0;  // Prepare sender; TxResultMsgs go to this node
  bool vote_commit = false;
};

class TxManager {
 public:
  /// Executes an ordered Prepare. Returns the reply value: "TX-PREPARED"
  /// (all of this group's keys locked), "TX-CONFLICT" (some key held by
  /// another transaction — vote abort), "TX-ABORTED"/"TX-COMMITTED" (the
  /// decision already executed; no locks taken), or "TX-REJECTED" (this
  /// group is not a participant / malformed ops).
  Bytes prepare(const ShardTx& tx, ClientId client, uint32_t group);

  /// Executes an ordered decision (certificates already validated by the
  /// caller). Commit applies this group's slice to `service` and releases
  /// its locks; abort only releases. Returns "TX-COMMITTED"/"TX-ABORTED",
  /// idempotently for replays, or "TX-REJECTED" for a commit decision with
  /// no matching prepare (unreachable with valid certificates: a commit
  /// carries this group's own f+1 votes, which only exist after its prepare
  /// ordered — kept as a deterministic guard).
  Bytes decide(const TxDecision& decision, uint32_t group, IService& service);

  const PreparedTx* prepared(uint64_t txid) const;
  std::optional<bool> decided(uint64_t txid) const;
  /// Prepared-and-undecided transactions (vote retry iterates these).
  const std::map<uint64_t, PreparedTx>& prepared_txs() const { return prepared_; }
  /// Every decision this group executed (the deployment's atomicity audit
  /// cross-checks these maps across groups).
  const std::map<uint64_t, bool>& decided_txs() const { return decided_; }
  size_t locked_keys() const { return locks_.size(); }
  /// Service operations applied by the most recent decide (cost charging).
  uint64_t last_applied_ops() const { return last_applied_ops_; }

  /// Checkpoint marker-section serde; must round-trip byte-identically
  /// (consecutive identical states encode identically — the delta state
  /// transfer path compares envelopes chunk-for-chunk).
  Bytes snapshot() const;
  bool restore(ByteSpan data);

 private:
  std::map<Bytes, uint64_t> locks_;        // key -> holding txid
  std::map<uint64_t, PreparedTx> prepared_;  // undecided only
  std::map<uint64_t, bool> decided_;       // txid -> committed
  uint64_t last_applied_ops_ = 0;
};

}  // namespace sbft::shard
