#include "shard/shard_executor.h"

#include <algorithm>

namespace sbft::shard {

ShardExecutor::ShardExecutor(ShardExecutorOptions options)
    : opts_(std::move(options)) {
  SBFT_CHECK(opts_.directory != nullptr && opts_.auth != nullptr);
  SBFT_CHECK(opts_.replica >= 1);
}

bool ShardExecutor::claims(const Request& req) const {
  if (req.client == kShardTxClient) {
    return decode_tx_decision_request(req).has_value();
  }
  return decode_tx_prepare_request(req).has_value();
}

Bytes ShardExecutor::execute_marker(const Request& req, SeqNum /*s*/,
                                    IService& service) {
  last_applied_ops_ = 0;
  if (req.client == kShardTxClient) {
    auto d = decode_tx_decision_request(req);
    if (!d) return to_bytes("TX-REJECTED");
    const bool replay = tm_.decided(d->txid).has_value();
    if (!replay && !validate_decision(*d)) return to_bytes("TX-REJECTED");
    // Capture the prepared record before decide() consumes it: the decision
    // broadcast needs the participant set and the result needs the client.
    const PreparedTx* p = tm_.prepared(d->txid);
    const ClientId client = p != nullptr ? p->client : 0;
    const ShardTx tx = p != nullptr ? p->tx : ShardTx{};
    Bytes value = tm_.decide(*d, opts_.group, service);
    last_applied_ops_ = tm_.last_applied_ops();
    if (replay || value == to_bytes("TX-REJECTED")) return value;

    d->commit ? ++commits_ : ++aborts_;
    pending_decisions_.erase(d->txid);
    votes_.erase(d->txid);
    decided_log_[d->txid] = *d;
    if (p != nullptr && tx.coordinator == opts_.group) {
      // Coordinator replicas relay the ordered decision to the other
      // participant groups, which order the same self-certifying marker.
      auto msg = make_message(TxDecisionMsg{d->txid, d->commit, d->certs});
      for (const TxShardOps& s : tx.shards) {
        if (s.group == opts_.group) continue;
        for (NodeId node : opts_.directory->replica_nodes(s.group)) {
          outbound_.emplace_back(node, msg);
        }
      }
    }
    if (p != nullptr) {
      outbound_.emplace_back(
          client, make_message(
                      TxResultMsg{d->txid, opts_.group, opts_.replica, d->commit}));
    }
    return value;
  }

  auto tx = decode_tx_prepare_request(req);
  if (!tx) return to_bytes("TX-REJECTED");
  const auto decided_before = tm_.decided(tx->txid);
  Bytes value = tm_.prepare(*tx, req.client, opts_.group);
  if (decided_before.has_value()) {
    // The decision outran this group's prepare; the client may still be
    // waiting on this group's result.
    outbound_.emplace_back(
        req.client, make_message(TxResultMsg{tx->txid, opts_.group, opts_.replica,
                                             *decided_before}));
    return value;
  }
  if (const PreparedTx* p = tm_.prepared(tx->txid); p != nullptr) {
    send_vote(*p);
  }
  return value;
}

int64_t ShardExecutor::last_execute_cost_us(const sim::CostModel& costs) const {
  // Lock/validate bookkeeping plus the applied service operations.
  return costs.hash_us(64) +
         static_cast<int64_t>(last_applied_ops_) * costs.kv_op_us;
}

Bytes ShardExecutor::snapshot() const { return tm_.snapshot(); }

bool ShardExecutor::restore(ByteSpan data) {
  // The deterministic half comes from the envelope; the volatile half is
  // per-replica in-flight state that retries rebuild.
  votes_.clear();
  pending_decisions_.clear();
  decided_log_.clear();
  outbound_.clear();
  marker_requests_.clear();
  last_applied_ops_ = 0;
  return tm_.restore(data);
}

void ShardExecutor::send_vote(const PreparedTx& p) {
  const uint64_t txid = p.tx.txid;
  TxVoteMsg v;
  v.txid = txid;
  v.group = opts_.group;
  v.replica = opts_.replica;
  v.commit = p.vote_commit;
  v.sig = opts_.auth->sign(txid, opts_.group, opts_.replica, p.vote_commit);
  const NodeId self =
      opts_.directory->replica_nodes(opts_.group)[opts_.replica - 1];
  auto msg = make_message(v);
  for (NodeId node : opts_.directory->replica_nodes(p.tx.coordinator)) {
    if (node == self) {
      // Own vote tallies locally (we are a coordinator-group replica).
      votes_[txid][v.group].emplace(v.replica, TxVote{v.replica, v.commit, v.sig});
    } else {
      outbound_.emplace_back(node, msg);
    }
  }
  if (p.tx.coordinator == opts_.group) maybe_build_decision(txid, p.tx);
}

void ShardExecutor::maybe_build_decision(uint64_t txid, const ShardTx& tx) {
  if (tm_.decided(txid).has_value() || pending_decisions_.count(txid) != 0) return;
  auto vit = votes_.find(txid);
  if (vit == votes_.end()) return;
  const uint32_t quorum = opts_.f + 1;

  auto cert_of = [&](uint32_t group, bool commit) -> std::optional<TxGroupCert> {
    auto git = vit->second.find(group);
    if (git == vit->second.end()) return std::nullopt;
    TxGroupCert cert;
    cert.group = group;
    cert.commit = commit;
    for (const auto& [replica, vote] : git->second) {
      if (vote.commit != commit) continue;
      cert.votes.push_back(vote);
      if (cert.votes.size() >= quorum) return cert;
    }
    return std::nullopt;
  };

  // Any group's f+1 abort votes aborts the transaction outright.
  for (const TxShardOps& s : tx.shards) {
    if (auto cert = cert_of(s.group, false)) {
      stage_decision(TxDecision{txid, false, {std::move(*cert)}});
      return;
    }
  }
  // Commit needs a certified commit vote from EVERY participant group.
  TxDecision d;
  d.txid = txid;
  d.commit = true;
  for (const TxShardOps& s : tx.shards) {
    auto cert = cert_of(s.group, true);
    if (!cert) return;  // some group still short of quorum
    d.certs.push_back(std::move(*cert));
  }
  stage_decision(std::move(d));
}

bool ShardExecutor::validate_decision(const TxDecision& d) const {
  const uint32_t quorum = opts_.f + 1;
  auto cert_valid = [&](const TxGroupCert& cert) {
    if (cert.group >= opts_.directory->num_groups()) return false;
    const uint32_t size = opts_.directory->group_size(cert.group);
    std::vector<ReplicaId> seen;
    uint32_t good = 0;
    for (const TxVote& v : cert.votes) {
      if (v.commit != cert.commit) continue;
      if (v.replica == 0 || v.replica > size) continue;
      if (std::find(seen.begin(), seen.end(), v.replica) != seen.end()) continue;
      if (!opts_.auth->verify(d.txid, cert.group, v.replica, v.commit,
                              as_span(v.sig))) {
        continue;
      }
      seen.push_back(v.replica);
      ++good;
    }
    return good >= quorum;
  };

  if (!d.commit) {
    // One certified abort vote set from any participant group suffices.
    return std::any_of(d.certs.begin(), d.certs.end(), [&](const TxGroupCert& c) {
      return !c.commit && cert_valid(c);
    });
  }
  // Commit: a certified commit vote from every participant group. The
  // participant set comes from the locally prepared transaction — which must
  // exist, since a valid commit carries this group's own votes and those are
  // only emitted after the local prepare ordered (see tx_manager.h).
  const PreparedTx* p = tm_.prepared(d.txid);
  if (p == nullptr) return false;
  for (const TxShardOps& s : p->tx.shards) {
    bool covered = std::any_of(d.certs.begin(), d.certs.end(),
                               [&](const TxGroupCert& c) {
                                 return c.group == s.group && c.commit &&
                                        cert_valid(c);
                               });
    if (!covered) return false;
  }
  return true;
}

void ShardExecutor::stage_decision(TxDecision d) {
  marker_requests_.push_back(make_tx_decision_request(d));
  pending_decisions_.emplace(d.txid, std::move(d));
}

void ShardExecutor::on_network(NodeId from, const Message& msg,
                               sim::SimTime /*now*/) {
  if (const auto* v = std::get_if<TxVoteMsg>(&msg)) {
    if (auto it = decided_log_.find(v->txid); it != decided_log_.end()) {
      // Late vote for a decided transaction: the sender's group is still
      // waiting for the decision — re-answer with it.
      outbound_.emplace_back(from, make_message(TxDecisionMsg{
                                       v->txid, it->second.commit,
                                       it->second.certs}));
      return;
    }
    if (tm_.decided(v->txid).has_value()) return;
    if (v->group >= opts_.directory->num_groups()) return;
    if (v->replica == 0 || v->replica > opts_.directory->group_size(v->group)) return;
    // The simulated network authenticates channels: the sender's node must
    // match the claimed (group, replica) identity.
    if (opts_.directory->replica_nodes(v->group)[v->replica - 1] != from) return;
    if (!opts_.auth->verify(v->txid, v->group, v->replica, v->commit,
                            as_span(v->sig))) {
      return;
    }
    votes_[v->txid][v->group].emplace(v->replica,
                                      TxVote{v->replica, v->commit, v->sig});
    if (const PreparedTx* p = tm_.prepared(v->txid);
        p != nullptr && p->tx.coordinator == opts_.group) {
      maybe_build_decision(v->txid, p->tx);
    }
    return;
  }
  if (const auto* dm = std::get_if<TxDecisionMsg>(&msg)) {
    if (tm_.decided(dm->txid).has_value()) return;
    if (pending_decisions_.count(dm->txid) != 0) return;
    TxDecision d{dm->txid, dm->commit, dm->certs};
    // Cheap pre-filter; the binding check happens deterministically when the
    // ordered marker executes. A replica that has not yet executed its own
    // prepare rejects here and recovers via the vote-retry round trip.
    if (!validate_decision(d)) return;
    stage_decision(std::move(d));
    return;
  }
}

void ShardExecutor::on_tick(sim::SimTime /*now*/) {
  // Re-send votes for transactions stuck in prepared: covers lost votes and
  // coordinator-side restarts (the coordinator answers decided transactions
  // from its decision log).
  for (const auto& [txid, p] : tm_.prepared_txs()) send_vote(p);
  // Re-queue staged decisions: covers a primary crash that dropped the
  // marker queue before ordering (the new primary re-surfaces them here).
  for (const auto& [txid, d] : pending_decisions_) {
    marker_requests_.push_back(make_tx_decision_request(d));
  }
}

std::vector<std::pair<NodeId, MessagePtr>> ShardExecutor::take_outbound() {
  return std::exchange(outbound_, {});
}

std::vector<Request> ShardExecutor::take_marker_requests() {
  return std::exchange(marker_requests_, {});
}

}  // namespace sbft::shard
