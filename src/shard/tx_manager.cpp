#include "shard/tx_manager.h"

#include "common/serde.h"
#include "kv/kv_service.h"

namespace sbft::shard {

namespace {
const TxShardOps* slice_of(const ShardTx& tx, uint32_t group) {
  for (const TxShardOps& s : tx.shards) {
    if (s.group == group) return &s;
  }
  return nullptr;
}

Bytes decision_value(bool committed) {
  return to_bytes(committed ? "TX-COMMITTED" : "TX-ABORTED");
}
}  // namespace

Bytes TxManager::prepare(const ShardTx& tx, ClientId client, uint32_t group) {
  last_applied_ops_ = 0;
  if (auto it = decided_.find(tx.txid); it != decided_.end()) {
    // The decision raced ahead of this group's prepare (a conflict elsewhere
    // aborted the transaction before we ordered it). Serve the outcome; the
    // keys were never locked here, so there is nothing to take or release.
    return decision_value(it->second);
  }
  if (auto it = prepared_.find(tx.txid); it != prepared_.end()) {
    return to_bytes(it->second.vote_commit ? "TX-PREPARED" : "TX-CONFLICT");
  }
  const TxShardOps* slice = slice_of(tx, group);
  if (slice == nullptr || slice->ops.empty()) return to_bytes("TX-REJECTED");

  PreparedTx p;
  p.tx = tx;
  p.client = client;
  p.vote_commit = true;
  std::vector<Bytes> keys;
  for (const Bytes& op : slice->ops) {
    auto decoded = kv::decode_op(as_span(op));
    if (!decoded || decoded->type == kv::OpType::kBatch) {
      p.vote_commit = false;  // unlockable op — vote abort
      break;
    }
    auto it = locks_.find(decoded->key);
    if (it != locks_.end() && it->second != tx.txid) {
      p.vote_commit = false;  // key held by another in-flight transaction
      break;
    }
    keys.push_back(decoded->key);
  }
  if (p.vote_commit) {
    for (const Bytes& key : keys) locks_[key] = tx.txid;
  }
  Bytes value = to_bytes(p.vote_commit ? "TX-PREPARED" : "TX-CONFLICT");
  prepared_.emplace(tx.txid, std::move(p));
  return value;
}

Bytes TxManager::decide(const TxDecision& decision, uint32_t group,
                        IService& service) {
  last_applied_ops_ = 0;
  if (auto it = decided_.find(decision.txid); it != decided_.end()) {
    return decision_value(it->second);  // replayed marker: idempotent
  }
  auto pit = prepared_.find(decision.txid);
  if (decision.commit && pit == prepared_.end()) {
    return to_bytes("TX-REJECTED");  // see header: unreachable with valid certs
  }
  if (pit != prepared_.end()) {
    const PreparedTx& p = pit->second;
    if (decision.commit) {
      const TxShardOps* slice = slice_of(p.tx, group);
      for (const Bytes& op : slice->ops) {
        service.execute(as_span(op));
        ++last_applied_ops_;
      }
    }
    // Release exactly the locks this transaction holds (a conflicting
    // prepare never took any).
    for (auto it = locks_.begin(); it != locks_.end();) {
      it = it->second == decision.txid ? locks_.erase(it) : std::next(it);
    }
    prepared_.erase(pit);
  }
  decided_[decision.txid] = decision.commit;
  return decision_value(decision.commit);
}

const PreparedTx* TxManager::prepared(uint64_t txid) const {
  auto it = prepared_.find(txid);
  return it == prepared_.end() ? nullptr : &it->second;
}

std::optional<bool> TxManager::decided(uint64_t txid) const {
  auto it = decided_.find(txid);
  if (it == decided_.end()) return std::nullopt;
  return it->second;
}

Bytes TxManager::snapshot() const {
  Writer w;
  w.u32(1);  // version
  w.u64(locks_.size());
  for (const auto& [key, txid] : locks_) {
    w.bytes(as_span(key));
    w.u64(txid);
  }
  w.u64(prepared_.size());
  for (const auto& [txid, p] : prepared_) {
    w.u64(txid);
    w.u32(p.client);
    w.boolean(p.vote_commit);
    w.bytes(as_span(encode_shard_tx(p.tx)));
  }
  w.u64(decided_.size());
  for (const auto& [txid, committed] : decided_) {
    w.u64(txid);
    w.boolean(committed);
  }
  return std::move(w).take();
}

bool TxManager::restore(ByteSpan data) {
  locks_.clear();
  prepared_.clear();
  decided_.clear();
  last_applied_ops_ = 0;
  if (data.empty()) return true;  // pre-shard envelope or fresh boot
  Reader r(data);
  if (r.u32() != 1) return false;
  uint64_t num_locks = r.u64();
  for (uint64_t i = 0; r.ok() && i < num_locks; ++i) {
    Bytes key = r.bytes();
    uint64_t txid = r.u64();
    locks_.emplace(std::move(key), txid);
  }
  uint64_t num_prepared = r.u64();
  for (uint64_t i = 0; r.ok() && i < num_prepared; ++i) {
    uint64_t txid = r.u64();
    PreparedTx p;
    p.client = r.u32();
    p.vote_commit = r.boolean();
    auto tx = decode_shard_tx(as_span(r.bytes()));
    if (!tx) return false;
    p.tx = std::move(*tx);
    prepared_.emplace(txid, std::move(p));
  }
  uint64_t num_decided = r.u64();
  for (uint64_t i = 0; r.ok() && i < num_decided; ++i) {
    uint64_t txid = r.u64();
    decided_[txid] = r.boolean();
  }
  return r.at_end();
}

}  // namespace sbft::shard
