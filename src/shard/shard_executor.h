// Per-replica shard layer: marker execution + cross-group 2PC traffic.
//
// One ShardExecutor backs each replica of a sharded deployment, implementing
// runtime::IMarkerExecutor (docs/sharding.md). It splits cleanly in two:
//
//   Deterministic half (snapshotted): the TxManager — lock table and
//   prepared/decided registers — mutated only by ordered Prepare and
//   decision markers, identical across the group's replicas.
//
//   Volatile half (per-replica, rebuilt by retries after crash or state
//   transfer): coordinator vote tallies, decisions awaiting own-group
//   ordering, queued sends. This mirrors how an ordering engine's in-flight
//   message state is volatile while its ledger is durable.
//
// Message flow for a transaction (coordinator = lowest participant group):
//   1. every participant group orders the client's Prepare; each replica
//      executing it sends a TxAuth-signed TxVoteMsg to ALL replicas of the
//      coordinator group,
//   2. a coordinator replica holding f+1 matching votes from EVERY group
//      builds the commit TxDecision (or the abort one, from any group's f+1
//      abort votes) and asks its engine to order it as a marker request,
//   3. executing the ordered decision, coordinator replicas broadcast
//      TxDecisionMsg to the other participant groups' replicas, which order
//      the same self-certifying marker in their own groups,
//   4. every replica executing a decision sends TxResultMsg to the client,
//      which completes on f+1 matching results from every participant group.
//
// A forged or replayed decision is neutralized at execution: certificates
// are validated deterministically by every replica before TxManager applies
// anything, so a Byzantine primary can at worst order a marker that the
// whole group rejects alike.
#pragma once

#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "runtime/marker_executor.h"
#include "shard/directory.h"
#include "shard/tx_auth.h"
#include "shard/tx_manager.h"

namespace sbft::shard {

struct ShardExecutorOptions {
  uint32_t group = 0;
  ReplicaId replica = 0;
  uint32_t f = 1;  // per-group fault bound (uniform across the deployment)
  std::shared_ptr<const Directory> directory;
  std::shared_ptr<const TxAuth> auth;
  /// Retry cadence: undecided prepared transactions re-send their vote, and
  /// pending decisions re-enter the marker queue (covers primary crashes
  /// that dropped the queue). 0 disables the tick.
  int64_t tick_interval_us = 100'000;
};

class ShardExecutor final : public runtime::IMarkerExecutor {
 public:
  explicit ShardExecutor(ShardExecutorOptions options);

  // --- execution half (ordered requests; deterministic) ----------------------
  bool claims(const Request& req) const override;
  Bytes execute_marker(const Request& req, SeqNum s, IService& service) override;
  int64_t last_execute_cost_us(const sim::CostModel& costs) const override;
  Bytes snapshot() const override;
  bool restore(ByteSpan data) override;

  // --- network half (volatile; per-replica) ----------------------------------
  void on_network(NodeId from, const Message& msg, sim::SimTime now) override;
  void on_tick(sim::SimTime now) override;
  int64_t tick_interval_us() const override { return opts_.tick_interval_us; }
  std::vector<std::pair<NodeId, MessagePtr>> take_outbound() override;
  std::vector<Request> take_marker_requests() override;

  const TxManager& tx_manager() const { return tm_; }
  uint64_t commits() const { return commits_; }
  uint64_t aborts() const { return aborts_; }

 private:
  /// Queues this replica's signed vote to every coordinator-group replica.
  void send_vote(const PreparedTx& p);
  /// Coordinator role: if `txid` now has a decisive vote set (f+1 commit
  /// from every participant, or f+1 abort from one), stage its decision for
  /// own-group ordering.
  void maybe_build_decision(uint64_t txid, const ShardTx& tx);
  /// Deterministic certificate check every replica applies before deciding.
  bool validate_decision(const TxDecision& d) const;
  void stage_decision(TxDecision d);

  ShardExecutorOptions opts_;
  TxManager tm_;

  // Volatile state below — deliberately excluded from snapshot()/restore().
  // Coordinator vote tallies: txid -> group -> replica -> vote.
  std::map<uint64_t, std::map<uint32_t, std::map<ReplicaId, TxVote>>> votes_;
  // Decisions staged for own-group ordering, kept until executed (the tick
  // re-queues them if a primary crash dropped the marker queue).
  std::map<uint64_t, TxDecision> pending_decisions_;
  // Executed decisions kept for late-vote re-answers (coordinator role).
  std::map<uint64_t, TxDecision> decided_log_;
  std::vector<std::pair<NodeId, MessagePtr>> outbound_;
  std::vector<Request> marker_requests_;
  uint64_t last_applied_ops_ = 0;
  uint64_t commits_ = 0;
  uint64_t aborts_ = 0;
};

}  // namespace sbft::shard
