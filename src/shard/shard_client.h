// Deployment-level client: multiplexes per-group sessions over the router.
//
// A ShardClient runs the closed-loop workload of a sharded deployment
// (docs/sharding.md). Each request is routed by key:
//
//   single-shard (the common case) — the request goes to exactly the owning
//   group and completes through that group's ordinary client protocol: SBFT
//   single execute-ack verified against the group's execution certificate,
//   or the f+1 matching-replies fallback. No 2PC, no cross-group traffic —
//   which is what makes aggregate throughput scale with the group count.
//
//   cross-shard — keys map to several groups: the client builds a ShardTx,
//   sends the same Prepare to every participant group (each orders it
//   independently), and completes once f+1 replicas of EVERY participant
//   group report the same TxResultMsg outcome. Replies to retransmitted
//   prepares that already carry the decision ("TX-COMMITTED"/"TX-ABORTED")
//   count toward the same tally, covering lost result messages.
//
// ClientId == NodeId globally across the deployment, exactly like in-group
// clients: reply caches and execution leaves key on the client id.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "core/client.h"
#include "shard/router.h"

namespace sbft::shard {

/// What the client must know about one group to talk to it.
struct ShardGroupView {
  ProtocolConfig config;
  core::ReplicaCrypto crypto;  // verifier-only view of the group's keys
  std::vector<NodeId> replica_nodes;  // replica-id order
};

struct ShardClientOptions {
  ClientId id = 0;  // must equal the client's simulator node id
  uint64_t num_requests = 1000;
  std::shared_ptr<const Router> router;
  std::vector<ShardGroupView> groups;  // index == group id
  /// Every Nth request (1-based) is a two-key cross-shard transfer;
  /// 0 disables cross-shard traffic entirely.
  uint32_t cross_shard_every = 0;
  /// Distinct keys the workload draws from (smaller => more lock conflicts).
  uint32_t keyspace = 100'000;
  size_t signature_size = 256;
  int64_t retry_timeout_us = 4'000'000;
};

struct ShardClientRecord {
  sim::SimTime completed_at = 0;
  int64_t latency_us = 0;
  bool cross_shard = false;
  bool committed = true;  // false only for aborted cross-shard transactions
};

class ShardClient final : public sim::IActor {
 public:
  explicit ShardClient(ShardClientOptions options);

  void on_start(sim::ActorContext& ctx) override;
  void on_message(NodeId from, const Message& msg, sim::ActorContext& ctx) override;
  void on_timer(uint64_t id, sim::ActorContext& ctx) override;

  uint64_t completed() const { return records_.size(); }
  uint64_t retries() const { return retries_; }
  uint64_t cross_shard_commits() const { return cross_commits_; }
  uint64_t cross_shard_aborts() const { return cross_aborts_; }
  const std::vector<ShardClientRecord>& records() const { return records_; }
  bool done() const {
    return opts_.num_requests != 0 && completed() >= opts_.num_requests;
  }

 private:
  void send_next(sim::ActorContext& ctx);
  void send_current(bool broadcast, sim::ActorContext& ctx);
  void complete(bool committed, sim::ActorContext& ctx);
  /// Group whose replica block contains `node`; nullopt for foreign nodes.
  std::optional<uint32_t> group_of_node(NodeId node) const;
  /// Records one cross-shard outcome report and completes when every
  /// participant group reached its f+1 threshold.
  void tally_tx_result(uint32_t group, ReplicaId replica, bool committed,
                       sim::ActorContext& ctx);

  ShardClientOptions opts_;
  std::vector<size_t> hints_;  // per-group believed-primary index
  uint64_t timestamp_ = 0;
  bool outstanding_ = false;
  sim::SimTime sent_at_ = 0;
  uint64_t retries_ = 0;
  uint64_t timer_gen_ = 0;

  // Current request (kept for retransmission).
  bool cross_shard_ = false;
  uint32_t target_group_ = 0;          // single-shard: owning group
  Bytes current_op_;                   // single-shard: encoded KV op
  ShardTx current_tx_;                 // cross-shard: the full transaction
  std::vector<uint32_t> tx_groups_;    // cross-shard: participant groups

  // Single-shard f+1 fallback tally: replica -> value digest.
  std::map<ReplicaId, Digest> reply_tally_;
  // Cross-shard tally: group -> replica -> reported outcome.
  std::map<uint32_t, std::map<ReplicaId, bool>> tx_tally_;

  uint64_t cross_commits_ = 0;
  uint64_t cross_aborts_ = 0;
  std::vector<ShardClientRecord> records_;
};

}  // namespace sbft::shard
