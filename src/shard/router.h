// Deterministic key -> group router (docs/sharding.md).
//
// A deployment hash-partitions the keyspace across its BFT groups: every
// client, replica, and audit computes the same owner for a key from nothing
// but the key bytes and the group count, so routing needs no directory
// lookups and no coordination. FNV-1a keeps the hash cheap (routing runs on
// the client's critical path for every request) and stable across platforms.
#pragma once

#include "common/bytes.h"

namespace sbft::shard {

class Router {
 public:
  explicit Router(uint32_t num_groups) : num_groups_(num_groups ? num_groups : 1) {}

  uint32_t num_groups() const { return num_groups_; }

  /// Owning group of `key`, in [0, num_groups).
  uint32_t group_of(ByteSpan key) const {
    // FNV-1a 64-bit.
    uint64_t h = 14695981039346656037ull;
    for (uint8_t b : key) {
      h ^= b;
      h *= 1099511628211ull;
    }
    return static_cast<uint32_t>(h % num_groups_);
  }

 private:
  uint32_t num_groups_;
};

}  // namespace sbft::shard
