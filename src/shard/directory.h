// Deployment directory: which network nodes host each group's replicas.
//
// Built once by shard::Deployment as it constructs its groups and shared
// read-only afterwards (executors and clients resolve vote/decision/result
// targets through it at runtime). Replica ids are group-local (1..n); node
// ids are global across the deployment's shared network.
#pragma once

#include <vector>

#include "common/check.h"
#include "proto/types.h"

namespace sbft::shard {

class Directory {
 public:
  /// Registers the next group's replica nodes, in replica-id order
  /// (replica r of the group sits at nodes[r - 1]).
  void add_group(std::vector<NodeId> nodes) { groups_.push_back(std::move(nodes)); }

  uint32_t num_groups() const { return static_cast<uint32_t>(groups_.size()); }

  const std::vector<NodeId>& replica_nodes(uint32_t group) const {
    SBFT_CHECK(group < groups_.size());
    return groups_[group];
  }

  /// Group size (replica count) — bounds-checks replica ids in votes.
  uint32_t group_size(uint32_t group) const {
    return static_cast<uint32_t>(replica_nodes(group).size());
  }

 private:
  std::vector<std::vector<NodeId>> groups_;
};

}  // namespace sbft::shard
