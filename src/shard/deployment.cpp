#include "shard/deployment.h"

#include <algorithm>

namespace sbft::shard {

Deployment::Deployment(DeploymentOptions options) : opts_(std::move(options)) {
  SBFT_CHECK(opts_.num_groups >= 1);
  harness::ClusterOptions base = opts_.group;
  base.num_clients = 0;  // clients live at the deployment level
  if (base.topology.region_latency_us.empty()) base.topology = sim::lan_topology();
  net_ = std::make_unique<sim::Network>(sim_, base.topology, base.costs, opts_.seed);

  Rng secret_rng(opts_.seed ^ 0x2fc7u);
  auth_ = std::make_shared<TxAuth>(secret_rng.bytes(32));
  router_ = std::make_shared<Router>(opts_.num_groups);

  // Uniform groups make the node plan known before any group is built:
  // group g's replicas occupy nodes [g*n, g*n+n) — asserted below.
  const ProtocolConfig gcfg = base.make_config();
  const uint32_t n = gcfg.n();
  auto directory = std::make_shared<Directory>();
  for (uint32_t g = 0; g < opts_.num_groups; ++g) {
    std::vector<NodeId> nodes;
    for (uint32_t r = 0; r < n; ++r) nodes.push_back(g * n + r);
    directory->add_group(std::move(nodes));
  }
  directory_ = std::move(directory);

  for (uint32_t g = 0; g < opts_.num_groups; ++g) {
    harness::ClusterOptions co = base;
    co.seed = opts_.seed + 1000ull * (g + 1);  // independent per-group streams
    co.marker_executor_factory = [this, g, f = gcfg.f](ReplicaId r, NodeId) {
      ShardExecutorOptions so;
      so.group = g;
      so.replica = r;
      so.f = f;
      so.directory = directory_;
      so.auth = auth_;
      return std::make_shared<ShardExecutor>(std::move(so));
    };
    groups_.push_back(std::make_unique<harness::Cluster>(std::move(co), sim_, *net_));
    SBFT_CHECK(groups_.back()->node_base() == g * n);
  }

  std::vector<ShardGroupView> views;
  for (uint32_t g = 0; g < opts_.num_groups; ++g) {
    ShardGroupView v;
    v.config = groups_[g]->config();
    v.crypto = groups_[g]->verifier_crypto();
    v.replica_nodes = directory_->replica_nodes(g);
    views.push_back(std::move(v));
  }
  for (uint32_t i = 0; i < opts_.num_clients; ++i) {
    ShardClientOptions so;
    so.id = net_->num_nodes();  // next node id — asserted below
    so.num_requests = opts_.requests_per_client;
    so.router = router_;
    so.groups = views;
    so.cross_shard_every = opts_.cross_shard_every;
    so.keyspace = opts_.keyspace;
    so.retry_timeout_us = gcfg.client_retry_timeout_us;
    auto client = std::make_unique<ShardClient>(std::move(so));
    NodeId node = net_->add_node(client.get());
    SBFT_CHECK(node == opts_.num_groups * n + i);
    clients_.push_back(std::move(client));
  }
}

Deployment::~Deployment() = default;

void Deployment::start() {
  if (started_) return;
  started_ = true;
  net_->start();
}

void Deployment::run_for(sim::SimTime sim_time_us) {
  start();
  sim_.run_until(sim_.now() + sim_time_us);
}

bool Deployment::run_until_done(sim::SimTime deadline_us) {
  start();
  auto all_done = [&] {
    return std::all_of(clients_.begin(), clients_.end(),
                       [](const auto& c) { return c->done(); });
  };
  while (sim_.now() < deadline_us) {
    if (all_done()) return true;
    if (sim_.idle()) return false;  // deadlock would be a bug; surface it
    sim_.run_until(std::min(deadline_us, sim_.now() + 50'000));
  }
  return all_done();
}

ShardExecutor& Deployment::executor(uint32_t g, ReplicaId r) {
  return static_cast<ShardExecutor&>(*group(g).replica(r).marker_executor());
}

const ShardExecutor& Deployment::executor(uint32_t g, ReplicaId r) const {
  return static_cast<const ShardExecutor&>(*group(g).replica(r).marker_executor());
}

uint64_t Deployment::total_completed() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->completed();
  return total;
}

uint64_t Deployment::cross_shard_commits() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->cross_shard_commits();
  return total;
}

uint64_t Deployment::cross_shard_aborts() const {
  uint64_t total = 0;
  for (const auto& c : clients_) total += c->cross_shard_aborts();
  return total;
}

std::vector<std::string> Deployment::audit_cross_shard_atomicity() const {
  std::vector<std::string> problems;
  // txid -> first decision seen (per group, and deployment-wide).
  std::map<std::pair<uint64_t, uint32_t>, bool> group_decision;
  std::map<uint64_t, bool> global_decision;
  for (uint32_t g = 0; g < num_groups(); ++g) {
    for (ReplicaId r = 1; r <= group(g).num_replicas(); ++r) {
      for (const auto& [txid, committed] :
           executor(g, r).tx_manager().decided_txs()) {
        auto [git, ginserted] = group_decision.emplace(std::pair{txid, g}, committed);
        if (!ginserted && git->second != committed) {
          problems.push_back("group " + std::to_string(g) +
                             " split on tx " + std::to_string(txid));
        }
        auto [it, inserted] = global_decision.emplace(txid, committed);
        if (!inserted && it->second != committed) {
          problems.push_back("tx " + std::to_string(txid) +
                             " committed in one group, aborted in another (seen in group " +
                             std::to_string(g) + ")");
        }
      }
    }
  }
  return problems;
}

obs::MetricsRegistry Deployment::merged_metrics() const {
  obs::MetricsRegistry out;
  for (uint32_t g = 0; g < num_groups(); ++g) {
    obs::MetricsRegistry folded;
    uint64_t decisions_commit = 0;
    uint64_t decisions_abort = 0;
    for (ReplicaId r = 1; r <= group(g).num_replicas(); ++r) {
      folded.merge(*group(g).replica(r).metrics());
      decisions_commit = std::max(decisions_commit, executor(g, r).commits());
      decisions_abort = std::max(decisions_abort, executor(g, r).aborts());
    }
    const std::string prefix = "shard" + std::to_string(g) + ".";
    folded.for_each_counter(
        [&](const std::string& name, uint64_t v) { out.add(prefix + name, v); });
    folded.for_each_gauge(
        [&](const std::string& name, double v) { out.gauge(prefix + name) = v; });
    folded.for_each_histogram([&](const std::string& name, const obs::Histogram& h) {
      out.histogram(prefix + name).merge(h);
    });
    // Group-level 2PC outcome counters: the max over replicas (each counts
    // its own executions; the most advanced replica has the group's total).
    out.add(prefix + "tx.commits", decisions_commit);
    out.add(prefix + "tx.aborts", decisions_abort);
  }
  return out;
}

}  // namespace sbft::shard
