#include "shard/tx_auth.h"

#include "common/serde.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"

namespace sbft::shard {

namespace {
Digest vote_mac(const Bytes& secret, uint64_t txid, uint32_t group,
                ReplicaId replica, bool commit) {
  // Per-replica derived key, so one replica's authenticator never verifies
  // under another's identity (same construction as pbft::CheckpointAuth).
  Writer key;
  key.raw(as_span(secret));
  key.u32(group);
  key.u32(replica);
  Digest replica_key = crypto::sha256(as_span(key.data()));
  Writer msg;
  msg.str("shard.txvote");
  msg.u64(txid);
  msg.u32(group);
  msg.u32(replica);
  msg.boolean(commit);
  return crypto::hmac_sha256(as_span(replica_key), as_span(msg.data()));
}
}  // namespace

Bytes TxAuth::sign(uint64_t txid, uint32_t group, ReplicaId replica,
                   bool commit) const {
  Digest mac = vote_mac(secret_, txid, group, replica, commit);
  return Bytes(mac.begin(), mac.end());
}

bool TxAuth::verify(uint64_t txid, uint32_t group, ReplicaId replica, bool commit,
                    ByteSpan sig) const {
  Digest mac = vote_mac(secret_, txid, group, replica, commit);
  if (sig.size() != mac.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < mac.size(); ++i) diff |= static_cast<uint8_t>(sig[i] ^ mac[i]);
  return diff == 0;
}

}  // namespace sbft::shard
