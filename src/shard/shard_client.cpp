#include "shard/shard_client.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "kv/kv_service.h"

namespace sbft::shard {

ShardClient::ShardClient(ShardClientOptions options) : opts_(std::move(options)) {
  SBFT_CHECK(opts_.router != nullptr);
  SBFT_CHECK(opts_.groups.size() == opts_.router->num_groups());
  SBFT_CHECK(!opts_.groups.empty());
  for (const ShardGroupView& g : opts_.groups) {
    SBFT_CHECK(!g.replica_nodes.empty());
  }
  hints_.assign(opts_.groups.size(), 0);
}

void ShardClient::on_start(sim::ActorContext& ctx) { send_next(ctx); }

void ShardClient::send_next(sim::ActorContext& ctx) {
  if (done()) return;
  ++timestamp_;
  outstanding_ = true;
  sent_at_ = ctx.now();
  reply_tally_.clear();
  tx_tally_.clear();
  tx_groups_.clear();

  const uint64_t index = completed();
  auto make_key = [&] {
    return to_bytes("key-" + std::to_string(ctx.rng().below(opts_.keyspace)));
  };
  cross_shard_ = opts_.cross_shard_every != 0 && opts_.groups.size() > 1 &&
                 (index + 1) % opts_.cross_shard_every == 0;
  if (cross_shard_) {
    // A two-key transfer across distinct groups; a bounded draw, falling back
    // to a single-shard request on the (vanishing) chance of no second group.
    Bytes k1 = make_key();
    const uint32_t g1 = opts_.router->group_of(as_span(k1));
    Bytes k2;
    uint32_t g2 = g1;
    for (int tries = 0; tries < 64 && g2 == g1; ++tries) {
      k2 = make_key();
      g2 = opts_.router->group_of(as_span(k2));
    }
    if (g2 == g1) {
      cross_shard_ = false;
    } else {
      const Bytes tag = to_bytes("t" + std::to_string(opts_.id) + "-" +
                                 std::to_string(index));
      std::map<uint32_t, std::vector<Bytes>> slices;
      slices[g1].push_back(kv::encode_put(as_span(k1), as_span(tag)));
      slices[g2].push_back(kv::encode_put(as_span(k2), as_span(tag)));
      current_tx_ = ShardTx{};
      current_tx_.txid = (static_cast<uint64_t>(opts_.id) << 32) | timestamp_;
      for (auto& [g, ops] : slices) {  // std::map: groups come out ascending
        current_tx_.shards.push_back({g, std::move(ops)});
        tx_groups_.push_back(g);
      }
      current_tx_.coordinator = current_tx_.shards.front().group;
    }
  }
  if (!cross_shard_) {
    Bytes key = make_key();
    target_group_ = opts_.router->group_of(as_span(key));
    const Bytes value = to_bytes("v" + std::to_string(index));
    current_op_ = kv::encode_put(as_span(key), as_span(value));
  }

  ctx.charge(ctx.costs().rsa_sign_us);
  send_current(/*broadcast=*/false, ctx);
  ctx.set_timer(opts_.retry_timeout_us, ++timer_gen_);
}

void ShardClient::send_current(bool broadcast, sim::ActorContext& ctx) {
  if (cross_shard_) {
    Request req = make_tx_prepare_request(current_tx_, opts_.id, timestamp_);
    req.client_sig = Bytes(opts_.signature_size, 0xab);
    auto msg = make_message(ClientRequestMsg{std::move(req)});
    // Every participant group orders its own copy of the Prepare.
    for (uint32_t g : tx_groups_) {
      const ShardGroupView& view = opts_.groups[g];
      if (broadcast) {
        for (NodeId node : view.replica_nodes) ctx.send(node, msg);
      } else {
        ctx.send(view.replica_nodes[hints_[g]], msg);
      }
    }
    return;
  }
  Request req;
  req.client = opts_.id;
  req.timestamp = timestamp_;
  req.op = current_op_;
  req.client_sig = Bytes(opts_.signature_size, 0xab);
  auto msg = make_message(ClientRequestMsg{std::move(req)});
  const ShardGroupView& view = opts_.groups[target_group_];
  if (broadcast) {
    for (NodeId node : view.replica_nodes) ctx.send(node, msg);
  } else {
    ctx.send(view.replica_nodes[hints_[target_group_]], msg);
  }
}

void ShardClient::complete(bool committed, sim::ActorContext& ctx) {
  outstanding_ = false;
  ShardClientRecord rec;
  rec.completed_at = ctx.now();
  rec.latency_us = ctx.now() - sent_at_;
  rec.cross_shard = cross_shard_;
  rec.committed = committed;
  if (cross_shard_) committed ? ++cross_commits_ : ++cross_aborts_;
  records_.push_back(rec);
  send_next(ctx);
}

std::optional<uint32_t> ShardClient::group_of_node(NodeId node) const {
  for (uint32_t g = 0; g < opts_.groups.size(); ++g) {
    const auto& nodes = opts_.groups[g].replica_nodes;
    if (std::find(nodes.begin(), nodes.end(), node) != nodes.end()) return g;
  }
  return std::nullopt;
}

void ShardClient::tally_tx_result(uint32_t group, ReplicaId replica,
                                  bool committed, sim::ActorContext& ctx) {
  if (std::find(tx_groups_.begin(), tx_groups_.end(), group) == tx_groups_.end()) {
    return;
  }
  tx_tally_[group][replica] = committed;
  // Complete once every participant group reached f+1 matching outcomes.
  bool all_committed = true;
  for (uint32_t g : tx_groups_) {
    const uint32_t quorum = opts_.groups[g].config.f + 1;
    uint32_t yes = 0;
    uint32_t no = 0;
    if (auto it = tx_tally_.find(g); it != tx_tally_.end()) {
      for (const auto& [r, c] : it->second) c ? ++yes : ++no;
    }
    if (no >= quorum) {
      all_committed = false;
    } else if (yes < quorum) {
      return;  // this group has not certified an outcome yet
    }
  }
  complete(all_committed, ctx);
}

void ShardClient::on_message(NodeId from, const Message& msg,
                             sim::ActorContext& ctx) {
  if (!outstanding_) return;
  if (const auto* ack = std::get_if<ExecuteAckMsg>(&msg)) {
    if (cross_shard_) return;  // prepare acks do not decide a transaction
    if (ack->client != opts_.id || ack->timestamp != timestamp_) return;
    ctx.charge(ctx.costs().hash_us(512));
    ctx.charge(ctx.costs().bls_verify_combined_us);
    if (!core::verify_execute_ack(opts_.groups[target_group_].crypto, opts_.id,
                                  *ack)) {
      return;
    }
    complete(/*committed=*/true, ctx);
    return;
  }
  if (const auto* reply = std::get_if<ClientReplyMsg>(&msg)) {
    if (reply->client != opts_.id || reply->timestamp != timestamp_) return;
    auto g = group_of_node(from);
    if (!g) return;
    ctx.charge(ctx.costs().rsa_verify_us);
    if (cross_shard_) {
      // A retransmitted Prepare executed after the decision replies with the
      // outcome from the group's cache — as good as a TxResultMsg.
      if (reply->value == to_bytes("TX-COMMITTED")) {
        tally_tx_result(*g, reply->replica, true, ctx);
      } else if (reply->value == to_bytes("TX-ABORTED")) {
        tally_tx_result(*g, reply->replica, false, ctx);
      }
      return;
    }
    if (*g != target_group_) return;
    const ShardGroupView& view = opts_.groups[target_group_];
    if (reply->replica == 0 || reply->replica > view.config.n()) return;
    reply_tally_[reply->replica] = crypto::sha256(as_span(reply->value));
    std::map<Digest, uint32_t> counts;
    for (const auto& [replica, digest] : reply_tally_) ++counts[digest];
    for (const auto& [digest, count] : counts) {
      if (count >= view.config.f + 1) {
        complete(/*committed=*/true, ctx);
        return;
      }
    }
    return;
  }
  if (const auto* res = std::get_if<TxResultMsg>(&msg)) {
    if (!cross_shard_ || res->txid != current_tx_.txid) return;
    if (res->group >= opts_.groups.size()) return;
    const ShardGroupView& view = opts_.groups[res->group];
    if (res->replica == 0 || res->replica > view.replica_nodes.size()) return;
    // Channel authentication: the sender node must be the claimed replica.
    if (view.replica_nodes[res->replica - 1] != from) return;
    tally_tx_result(res->group, res->replica, res->committed, ctx);
    return;
  }
}

void ShardClient::on_timer(uint64_t id, sim::ActorContext& ctx) {
  if (!outstanding_ || id != timer_gen_) return;
  ++retries_;
  if (cross_shard_) {
    for (uint32_t g : tx_groups_) {
      hints_[g] = (hints_[g] + 1) % opts_.groups[g].replica_nodes.size();
    }
  } else {
    hints_[target_group_] =
        (hints_[target_group_] + 1) % opts_.groups[target_group_].replica_nodes.size();
  }
  send_current(/*broadcast=*/true, ctx);
  ctx.set_timer(opts_.retry_timeout_us, ++timer_gen_);
}

}  // namespace sbft::shard
