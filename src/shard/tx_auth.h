// Cross-shard vote authentication (docs/sharding.md).
//
// A TxVote certifies that a specific replica of a specific group voted to
// commit or abort a transaction. Votes cross group boundaries (participant
// replicas send them to the coordinator group) and later ride inside ordered
// TxDecision markers, so they need an authenticator every replica of the
// deployment can verify deterministically at execution time. Modeled on the
// PBFT checkpoint authority (pbft::CheckpointAuth): a deployment-wide shared
// secret with a per-replica derived key, standing in for the per-replica
// signatures a real deployment would use. Fault model caveat: a Byzantine
// replica knowing the shared secret could forge other replicas' votes; the
// simulated deployment uses Byzantine *schedules*, not vote forgery, so the
// HMAC stands in for signatures exactly the way CheckpointAuth does.
#pragma once

#include "common/bytes.h"
#include "proto/types.h"

namespace sbft::shard {

class TxAuth {
 public:
  explicit TxAuth(Bytes secret) : secret_(std::move(secret)) {}

  /// HMAC over (txid, group, replica, commit) under the replica-derived key.
  Bytes sign(uint64_t txid, uint32_t group, ReplicaId replica, bool commit) const;
  bool verify(uint64_t txid, uint32_t group, ReplicaId replica, bool commit,
              ByteSpan sig) const;

 private:
  Bytes secret_;
};

}  // namespace sbft::shard
