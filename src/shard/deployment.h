// Multi-group sharded deployment (docs/sharding.md).
//
// A Deployment instantiates N independent BFT groups — each a full
// harness::Cluster with its own roster, primary, checkpointing, and WAL
// stream — embedded in ONE shared simulator and network, plus the shard
// fabric connecting them: the hash-partitioned Router, the node Directory,
// the TxAuth vote-signing secret, and deployment-level ShardClients that
// multiplex per-group sessions.
//
// Node layout (all groups are uniform, n replicas each):
//   [0, n)        group 0 replicas     (replica r at node r-1)
//   [n, 2n)       group 1 replicas
//   ...
//   [G*n, ...)    shard clients        (ClientId == NodeId, globally unique)
//
// Single-shard requests touch exactly one group and scale with the group
// count; multi-key transactions cross groups through BFT 2PC, driven by the
// per-replica ShardExecutors (see shard_executor.h for the message flow).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "harness/cluster.h"
#include "shard/directory.h"
#include "shard/router.h"
#include "shard/shard_client.h"
#include "shard/shard_executor.h"

namespace sbft::shard {

struct DeploymentOptions {
  uint32_t num_groups = 2;
  /// Template applied to every group (protocol kind, f, costs, topology,
  /// faults…). num_clients inside it is ignored — clients live at the
  /// deployment level; per-group seeds are derived from `seed`.
  harness::ClusterOptions group;
  uint32_t num_clients = 4;
  uint64_t requests_per_client = 1000;
  /// Every Nth client request is a two-key cross-shard transfer (0 = none).
  uint32_t cross_shard_every = 0;
  uint32_t keyspace = 100'000;
  uint64_t seed = 1;
};

class Deployment {
 public:
  explicit Deployment(DeploymentOptions options);
  ~Deployment();

  Deployment(const Deployment&) = delete;
  Deployment& operator=(const Deployment&) = delete;

  void run_for(sim::SimTime sim_time_us);
  /// Runs until every shard client finished its budget or the deadline hit.
  bool run_until_done(sim::SimTime deadline_us);

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return *net_; }
  const Router& router() const { return *router_; }
  const Directory& directory() const { return *directory_; }

  uint32_t num_groups() const { return static_cast<uint32_t>(groups_.size()); }
  harness::Cluster& group(uint32_t g) { return *groups_.at(g); }
  const harness::Cluster& group(uint32_t g) const { return *groups_.at(g); }

  size_t num_clients() const { return clients_.size(); }
  ShardClient& client(size_t i) { return *clients_.at(i); }

  /// The shard layer of one replica (every replica of a deployment has one).
  ShardExecutor& executor(uint32_t g, ReplicaId r);
  const ShardExecutor& executor(uint32_t g, ReplicaId r) const;

  uint64_t total_completed() const;
  /// Client-observed cross-shard outcomes (the bench's headline counters).
  uint64_t cross_shard_commits() const;
  uint64_t cross_shard_aborts() const;

  /// Atomicity audit across the whole deployment: for every transaction id,
  /// all replicas of a group that decided it agree, and all groups that
  /// decided it agree — a commit in one shard with an abort in another is
  /// exactly the half-applied transfer 2PC must rule out. Empty when clean.
  std::vector<std::string> audit_cross_shard_atomicity() const;

  /// Every group's replica registries merged under a "shard<g>." namespace
  /// (plus deployment-level "shard<g>.tx.*" decision counters), so one JSON
  /// dump shows per-shard protocol behaviour side by side.
  obs::MetricsRegistry merged_metrics() const;

 private:
  void start();

  DeploymentOptions opts_;
  sim::Simulator sim_;
  std::unique_ptr<sim::Network> net_;
  std::shared_ptr<Directory> directory_;
  std::shared_ptr<TxAuth> auth_;
  std::shared_ptr<Router> router_;
  std::vector<std::unique_ptr<harness::Cluster>> groups_;
  std::vector<std::unique_ptr<ShardClient>> clients_;
  bool started_ = false;
};

}  // namespace sbft::shard
