// Cluster builder: assembles a full simulated deployment — replicas of the
// chosen protocol variant, closed-loop clients, WAN topology, cost model,
// fault injection — and provides the safety audit used by tests.
//
// Every replica, regardless of protocol, sits behind a ReplicaHandle that
// owns its durable storage and exposes stats/ledger/WAL uniformly, so the
// crash / restart / disk-wipe / rolling-restart scenario family runs on SBFT
// variants and the PBFT baseline through the identical API.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include <string>

#include "core/client.h"
#include "core/replica.h"
#include "harness/audit.h"
#include "harness/replica_handle.h"
#include "harness/workload.h"
#include "obs/trace_checker.h"
#include "pbft/pbft_replica.h"
#include "recovery/wal.h"
#include "sim/network.h"
#include "sim/simulator.h"
#include "storage/ledger_storage.h"

namespace sbft::harness {

/// The five evaluated systems (§IX).
enum class ProtocolKind {
  kPbft,            // scale-optimized PBFT baseline
  kLinearPbft,      // + ingredient 1 (collectors, threshold signatures)
  kLinearPbftFast,  // + ingredient 2 (fast path)
  kSbft,            // + ingredient 3 (execution collector); c adds ingredient 4
};

const char* protocol_name(ProtocolKind kind);

struct ClusterOptions {
  ProtocolKind kind = ProtocolKind::kSbft;
  uint32_t f = 1;
  uint32_t c = 0;  // only meaningful for kSbft (redundant collectors)
  uint32_t num_clients = 4;
  uint64_t requests_per_client = 1000;
  sim::Topology topology;
  sim::CostModel costs;
  uint64_t seed = 1;

  // CPU lanes per replica node (docs/performance.md): lane 0 runs the serial
  // handler path, extra lanes absorb offloaded signature verification.
  // 0 = use costs.cores_per_replica (default 1, the classic serial node).
  // Clients always keep one lane. replica_cores overrides individual
  // replicas (e.g. one under-provisioned straggler in a multi-core fleet).
  uint32_t cores_per_replica = 0;
  std::map<ReplicaId, uint32_t> replica_cores;

  /// Service run by every replica; defaults to FastKvService.
  std::function<std::unique_ptr<IService>()> service_factory;
  /// Client operation generator; defaults to the single-put KV workload.
  std::function<Bytes(uint64_t, Rng&)> op_factory;
  /// Per-client generator factory (takes the ClientId); overrides op_factory
  /// when set — used by workloads with per-client identity (eth workload).
  std::function<std::function<Bytes(uint64_t, Rng&)>(ClientId)> per_client_op_factory;

  // Fault injection (applied before start).
  uint32_t crash_replicas = 0;      // crash this many non-primary replicas
  uint32_t straggler_replicas = 0;  // slow (4x CPU, +20ms) non-primary replicas
  core::ReplicaBehavior byzantine_behavior = core::ReplicaBehavior::kHonest;
  uint32_t byzantine_replicas = 0;  // replicas given byzantine_behavior
  // Replicas that bit-flip every state-transfer chunk they serve as donors
  // (fetchers must detect the corruption by Merkle verification and fetch the
  // chunk from another donor). Works on every protocol — the corruption sits
  // in the shared chunk-serving path, not in an ordering engine.
  std::vector<ReplicaId> corrupt_chunk_replicas;
  // PBFT-only fault: replicas that answer state-transfer probes with a
  // fabricated-but-root-consistent checkpoint (defeated by the quorum
  // checkpoint certificate, ProtocolConfig::pbft_verify_checkpoint_certs).
  std::vector<ReplicaId> fabricate_checkpoint_replicas;

  // Durability: give every replica a memory-backed ledger + WAL owned by its
  // handle, so a replica can be killed and restarted (the handles stand in
  // for the disk that survives the process). No effect on simulated cost.
  bool durability = true;

  /// Scheduled kill-and-restart fault scenario (any protocol). Chain several
  /// events for rolling restarts; set wipe_storage to model disk loss (the
  /// replica comes back empty and must state-transfer).
  struct RestartEvent {
    sim::SimTime crash_at_us = 0;
    sim::SimTime restart_at_us = 0;  // <= crash_at_us: crash only, no restart
    ReplicaId replica = 0;           // 0: auto-pick a distinct non-primary backup
    bool wipe_storage = false;
  };
  std::vector<RestartEvent> restart_schedule;

  // Structured protocol tracing (docs/observability.md). Off by default;
  // enabling it never perturbs the simulation (tracers only record, they
  // never touch timers, the network, or any RNG).
  bool tracing = false;
  size_t trace_capacity = 65536;  // events retained per replica (ring buffer)

  // Use real Shoup threshold-RSA keys instead of the simulated-BLS scheme.
  // Slower (real modular exponentiation per share); meant for small-n tests
  // that exercise the protocol with genuine cryptography.
  bool use_real_threshold_crypto = false;
  int threshold_rsa_bits = 384;

  // Optional overrides applied to the derived ProtocolConfig.
  std::function<void(ProtocolConfig&)> tweak_config;

  /// Per-replica cross-shard marker executor (docs/sharding.md): called at
  /// build time with the replica id and the network node it will occupy. The
  /// handle keeps the executor alive across incarnations — recovery and
  /// state transfer restore its state, the way the ledger survives a crash.
  /// Null (the default) runs the group without a shard layer.
  std::function<std::shared_ptr<runtime::IMarkerExecutor>(ReplicaId, NodeId)>
      marker_executor_factory;

  ProtocolConfig make_config() const;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions options);
  /// Embeds the cluster as one *shard* of a multi-group deployment
  /// (src/shard/Deployment): nodes are added to the caller's shared network
  /// starting at its current node count, and the caller drives the shared
  /// simulator (run_for / run_until_done must not be used — the deployment
  /// starts the network and pumps the loop). Both references must outlive
  /// the cluster.
  Cluster(ClusterOptions options, sim::Simulator& sim, sim::Network& net);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Starts all nodes and runs until `sim_time_us` of virtual time passed.
  void run_for(sim::SimTime sim_time_us);
  /// Runs until every client finished its request budget or the deadline hit.
  /// Returns true if all clients finished.
  bool run_until_done(sim::SimTime deadline_us);

  sim::Simulator& simulator() { return *sim_; }
  sim::Network& network() { return *net_; }
  /// First network node this cluster occupies (0 unless embedded in a
  /// deployment); replicas sit at node_base()..node_base()+n-1, clients after.
  NodeId node_base() const { return node_base_; }
  const ClusterOptions& options() const { return opts_; }
  const ProtocolConfig& config() const { return config_; }

  uint32_t n() const { return config_.n(); }
  /// Verifier-only view of this group's keys — what a deployment-level shard
  /// client needs to check execute-acks coming from this group.
  core::ReplicaCrypto verifier_crypto() const {
    return core::ReplicaCrypto::verifier_only(keys_);
  }
  std::shared_ptr<const core::EpochKeyTable> epoch_keys() const {
    return epoch_keys_;
  }
  core::SbftClient& client(size_t i) { return *clients_[i]; }
  size_t num_clients() const { return clients_.size(); }

  /// Uniform, protocol-agnostic access to a replica (stats, storage, ids).
  ReplicaHandle& replica(ReplicaId id) { return replicas_.at(id - 1); }
  const ReplicaHandle& replica(ReplicaId id) const { return replicas_.at(id - 1); }
  core::SbftReplica* sbft_replica(ReplicaId id);  // null for kPbft clusters
  pbft::PbftReplica* pbft_replica(ReplicaId id);  // null for SBFT clusters

  // --- group reconfiguration (docs/reconfiguration.md) -----------------------
  /// Builds a new replica slot (next id, fresh wiped storage, recovering
  /// boot) and admits its node to the network. The replica bootstraps with
  /// the *current* roster — which does not contain it — and joins once a
  /// ReconfigBlockMsg naming it activates. Call before submit_reconfig.
  ReplicaId add_replica();
  /// Submits an add/remove reconfiguration to the running cluster: deals and
  /// provisions the next epoch's threshold keys (SBFT), builds the
  /// ReconfigBlockMsg, and injects it to every current member (the primary
  /// orders it; it takes effect at the next stable checkpoint). `adds` name
  /// replicas created via add_replica.
  void submit_reconfig(const std::vector<ReplicaId>& adds,
                       const std::vector<ReplicaId>& removes, uint32_t new_f,
                       uint32_t new_c = 0);
  /// Roster the harness believes active/incoming (updated by submit_reconfig).
  const std::vector<ReplicaInfo>& current_members() const {
    return current_members_;
  }
  size_t num_replicas() const { return replicas_.size(); }

  // --- crash / restart (any protocol) ----------------------------------------
  /// Crashes the replica's node (id↔node translation via its handle).
  void crash_replica(ReplicaId r);
  /// Rebuilds a crashed replica from its surviving ledger + WAL handles and
  /// re-admits it to the network; with wipe_storage the handles are replaced
  /// by empty ones first (disk loss — recovery must go via state transfer).
  void restart_replica(ReplicaId r, bool wipe_storage = false);
  std::shared_ptr<storage::ILedgerStorage> replica_ledger(ReplicaId r) {
    return replica(r).ledger();
  }
  std::shared_ptr<recovery::IReplicaWal> replica_wal(ReplicaId r) {
    return replica(r).wal();
  }

  // --- network partitions (any protocol) -------------------------------------
  /// Isolates `side` from every other node (replicas and clients): cuts each
  /// pair link crossing the boundary. Composes with earlier partitions.
  void partition(const std::vector<ReplicaId>& side);
  /// Clears every link-level fault (pair cuts, directional blocks, per-link
  /// delays, reordering, drop probability) in one stroke.
  void heal_partitions();

  SeqNum min_executed() const;
  SeqNum max_executed() const;
  uint64_t total_fast_commits() const;
  uint64_t total_slow_commits() const;
  uint64_t total_view_changes() const;
  uint64_t total_recoveries() const;
  uint64_t total_wal_bytes_written() const;

  /// Theorem VI.1 audit: every pair of replicas that committed a block at the
  /// same sequence number committed the same block. Returns false (and the
  /// offending sequence via *bad_seq) on divergence.
  bool check_agreement(SeqNum* bad_seq = nullptr) const;

  // --- end-of-run audits (harness/audit.h; the fuzzer's cluster oracle) ------
  /// State-root convergence across live roster members (call after healing
  /// every fault and letting traffic settle). Empty when clean.
  std::vector<std::string> audit_state_convergence() const;
  /// Cross-replica reply-cache consistency. Empty when clean.
  std::vector<std::string> audit_reply_caches() const;

  // --- observability (docs/observability.md) ---------------------------------
  /// Per-replica tracers in replica-id order (empty unless options().tracing).
  std::vector<const obs::Tracer*> tracers() const;
  /// Chrome-trace-event JSON over every replica's events (Perfetto-loadable).
  std::string trace_json() const;
  /// Writes trace_json() to `path`; false on I/O failure.
  bool dump_trace(const std::string& path) const;
  /// Cross-replica invariant audit over the recorded traces (agreement on
  /// executed digests, no double execution, fast commits backed by quorum
  /// proofs, state-transfer sessions terminate).
  obs::CheckReport check_trace() const;

 private:
  void build();
  void build_replica(ReplicaHandle& handle, core::ReplicaBehavior behavior,
                     bool recovering);
  /// CPU lanes for replica r: replica_cores override, else cores_per_replica,
  /// else the cost model's default (min 1).
  uint32_t cores_for(ReplicaId r) const;

  ClusterOptions opts_;
  ProtocolConfig config_;
  // Owned for a standalone cluster; null (borrowing the deployment's shared
  // instances via the raw pointers) when embedded as a shard.
  std::unique_ptr<sim::Simulator> owned_sim_;
  std::unique_ptr<sim::Network> owned_net_;
  sim::Simulator* sim_ = nullptr;
  sim::Network* net_ = nullptr;
  NodeId node_base_ = 0;
  core::ClusterKeys keys_;
  // Reconfiguration material: per-epoch threshold keys (SBFT; shared with
  // replicas and clients) and the PBFT checkpoint signing authority.
  std::shared_ptr<core::EpochKeyTable> epoch_keys_;
  std::shared_ptr<pbft::CheckpointAuth> checkpoint_auth_;
  std::vector<ReplicaInfo> current_members_;  // harness' view of the roster
  uint32_t current_f_ = 0;
  uint32_t current_c_ = 0;
  uint64_t next_epoch_ = 1;
  std::vector<ReplicaHandle> replicas_;  // index r - 1
  std::vector<std::unique_ptr<core::SbftClient>> clients_;
  bool started_ = false;
};

}  // namespace sbft::harness
