// Latency/throughput aggregation over client completion records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "harness/cluster.h"

namespace sbft::harness {

struct LatencySummary {
  uint64_t count = 0;
  double mean_ms = 0;
  double median_ms = 0;
  double p95_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
};

LatencySummary summarize_latencies(const std::vector<int64_t>& latencies_us);

struct RunMetrics {
  uint64_t requests_completed = 0;
  double requests_per_second = 0;
  double ops_per_second = 0;  // requests * ops_per_request
  LatencySummary latency;
  double fast_ack_fraction = 0;  // accepted via a single execute-ack
  uint64_t fast_commits = 0;
  uint64_t slow_commits = 0;
  uint64_t view_changes = 0;
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  // Durability / crash recovery (fault experiments report recovery cost).
  uint64_t recoveries = 0;
  uint64_t wal_bytes_written = 0;
  // Chunked state transfer (summed over replicas; docs/state_transfer.md).
  uint64_t state_transfer_chunks_served = 0;
  uint64_t state_transfer_chunks_fetched = 0;
  uint64_t state_transfer_invalid_chunks = 0;
  uint64_t state_transfer_resumes = 0;
  uint64_t state_transfer_bytes_transferred = 0;
  // Delta state transfer + donor-side rate limiting (docs/state_transfer.md).
  uint64_t delta_chunks_skipped = 0;
  uint64_t delta_bytes_saved = 0;
  uint64_t donor_chunks_throttled = 0;
  // Group reconfiguration (summed over replicas; docs/reconfiguration.md).
  uint64_t epochs_activated = 0;
  uint64_t joins_completed = 0;
};

/// Gathers metrics for completions inside [from_us, to_us) of simulated time.
RunMetrics collect_metrics(Cluster& cluster, sim::SimTime from_us, sim::SimTime to_us,
                           uint32_t ops_per_request);

/// Formats a fixed-width table row; the benches share this printer.
std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths);

}  // namespace sbft::harness
