// Latency/throughput aggregation over client completion records, plus the
// shared table/JSON emission helpers the benches use (docs/observability.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "harness/cluster.h"
#include "obs/metrics.h"

namespace sbft::harness {

struct LatencySummary {
  uint64_t count = 0;
  double mean_ms = 0;
  double median_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  double p999_ms = 0;
  double min_ms = 0;
  double max_ms = 0;
};

LatencySummary summarize_latencies(const std::vector<int64_t>& latencies_us);

/// One measurement window's worth of results. Every protocol/runtime counter
/// lives in the registry under its stats name ("fast_commits",
/// "state_transfer_resumes", ...) plus the network totals ("messages_sent",
/// "bytes_sent") — adding a counter at an increment site needs no change
/// here. Per-stage latency histograms from every replica are merged in too.
struct RunMetrics {
  uint64_t requests_completed = 0;
  double requests_per_second = 0;
  double ops_per_second = 0;  // requests * ops_per_request
  LatencySummary latency;
  double fast_ack_fraction = 0;  // accepted via a single execute-ack
  obs::MetricsRegistry registry;

  /// Counter by stats name; 0 if never incremented.
  uint64_t counter(std::string_view name) const { return registry.value(name); }
};

/// Gathers metrics for completions inside [from_us, to_us) of simulated time.
RunMetrics collect_metrics(Cluster& cluster, sim::SimTime from_us, sim::SimTime to_us,
                           uint32_t ops_per_request);

/// Formats a fixed-width table row; the benches share this printer.
std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths);

/// Minimal one-object JSON line builder — the shared emission path for bench
/// JSON output (no external JSON dependency).
class JsonWriter {
 public:
  JsonWriter& field(std::string_view name, uint64_t value);
  JsonWriter& field(std::string_view name, int64_t value);
  JsonWriter& field(std::string_view name, double value);
  JsonWriter& field(std::string_view name, std::string_view value);  // quoted
  /// Embeds pre-rendered JSON (an object or array) verbatim.
  JsonWriter& field_raw(std::string_view name, std::string_view raw_json);

  /// The finished object, e.g. {"a":1,"b":"x"}.
  std::string str() const { return body_ + "}"; }

 private:
  void key(std::string_view name);
  std::string body_ = "{";
};

/// Canonical JSON rendering of a RunMetrics: throughput/latency fields plus
/// the full registry (counters + histogram summaries) under "registry".
std::string metrics_json(const RunMetrics& m);

}  // namespace sbft::harness
