// Cluster-level end-of-run audits (the non-trace half of the fuzzer's
// invariant oracle; docs/fuzzing.md).
//
// The audits are pure functions over snapshots of replica state so the
// invariant checker itself is unit-testable — true-positive and true-negative
// cases in tests/fuzz_test.cpp construct views by hand. Cluster wraps them
// with accessors that collect the views from live replicas.
//
//   * State-root convergence: after every fault is healed and traffic has
//     settled, every live roster member must have executed at least up to the
//     cluster's highest stable checkpoint, and any two live members with the
//     same execution cursor must hold byte-identical service state roots.
//   * Reply-cache consistency: replicas agree on what they replied — two
//     caches holding the same client timestamp must hold the same (seq,
//     value), and a newer timestamp can never map to an older sequence.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "proto/types.h"
#include "runtime/reply_cache.h"

namespace sbft::harness {

/// Per-replica snapshot the convergence audit consumes.
struct ReplicaStateView {
  ReplicaId id = 0;
  bool live = false;    // node is up (not crashed)
  bool member = true;   // part of the active roster (a removed replica is not)
  SeqNum executed = 0;  // last executed sequence number
  SeqNum stable = 0;    // last stable checkpoint sequence
  Digest state_root{};  // service state digest at `executed`
};

/// State-root convergence audit; one message per violation, empty when clean.
std::vector<std::string> audit_state_convergence(
    const std::vector<ReplicaStateView>& views);

/// Reply-cache consistency audit over (replica id, cache) pairs.
std::vector<std::string> audit_reply_caches(
    const std::vector<std::pair<ReplicaId, const runtime::ReplyCache*>>& caches);

}  // namespace sbft::harness
