#include "harness/metrics.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace sbft::harness {

LatencySummary summarize_latencies(const std::vector<int64_t>& latencies_us) {
  LatencySummary out;
  if (latencies_us.empty()) return out;
  std::vector<int64_t> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  out.count = sorted.size();
  out.mean_ms = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
                static_cast<double>(sorted.size()) / 1000.0;
  out.median_ms = static_cast<double>(sorted[sorted.size() / 2]) / 1000.0;
  out.p95_ms = static_cast<double>(sorted[sorted.size() * 95 / 100]) / 1000.0;
  out.min_ms = static_cast<double>(sorted.front()) / 1000.0;
  out.max_ms = static_cast<double>(sorted.back()) / 1000.0;
  return out;
}

RunMetrics collect_metrics(Cluster& cluster, sim::SimTime from_us, sim::SimTime to_us,
                           uint32_t ops_per_request) {
  RunMetrics m;
  std::vector<int64_t> latencies;
  uint64_t fast_acks = 0;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    for (const core::ClientRecord& rec : cluster.client(i).records()) {
      if (rec.completed_at < from_us || rec.completed_at >= to_us) continue;
      ++m.requests_completed;
      latencies.push_back(rec.latency_us);
      if (rec.via_fast_ack) ++fast_acks;
    }
  }
  double window_s = static_cast<double>(to_us - from_us) / 1e6;
  if (window_s > 0) {
    m.requests_per_second = static_cast<double>(m.requests_completed) / window_s;
    m.ops_per_second = m.requests_per_second * ops_per_request;
  }
  m.latency = summarize_latencies(latencies);
  if (m.requests_completed > 0) {
    m.fast_ack_fraction =
        static_cast<double>(fast_acks) / static_cast<double>(m.requests_completed);
  }
  m.fast_commits = cluster.total_fast_commits();
  m.slow_commits = cluster.total_slow_commits();
  m.view_changes = cluster.total_view_changes();
  m.recoveries = cluster.total_recoveries();
  m.wal_bytes_written = cluster.total_wal_bytes_written();
  for (ReplicaId r = 1; r <= cluster.num_replicas(); ++r) {
    const runtime::RuntimeStats& rs = cluster.replica(r).runtime_stats();
    m.state_transfer_chunks_served += rs.state_transfer_chunks_served;
    m.state_transfer_chunks_fetched += rs.state_transfer_chunks_fetched;
    m.state_transfer_invalid_chunks += rs.state_transfer_invalid_chunks;
    m.state_transfer_resumes += rs.state_transfer_resumes;
    m.state_transfer_bytes_transferred += rs.state_transfer_bytes_transferred;
    m.delta_chunks_skipped += rs.delta_chunks_skipped;
    m.delta_bytes_saved += rs.delta_bytes_saved;
    m.donor_chunks_throttled += rs.donor_chunks_throttled;
    m.epochs_activated += rs.epochs_activated;
    m.joins_completed += rs.joins_completed;
  }
  auto totals = cluster.network().total_stats();
  m.messages_sent = totals.count;
  m.bytes_sent = totals.bytes;
  return m;
}

std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths) {
  std::ostringstream out;
  for (size_t i = 0; i < cells.size(); ++i) {
    int width = i < widths.size() ? widths[i] : 12;
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < width) {
      cell.append(static_cast<size_t>(width - static_cast<int>(cell.size())), ' ');
    }
    out << cell << ' ';
  }
  return out.str();
}

}  // namespace sbft::harness
