#include "harness/metrics.h"

#include <algorithm>
#include <cstdio>
#include <numeric>
#include <sstream>

namespace sbft::harness {

LatencySummary summarize_latencies(const std::vector<int64_t>& latencies_us) {
  LatencySummary out;
  if (latencies_us.empty()) return out;
  std::vector<int64_t> sorted = latencies_us;
  std::sort(sorted.begin(), sorted.end());
  out.count = sorted.size();
  out.mean_ms = std::accumulate(sorted.begin(), sorted.end(), 0.0) /
                static_cast<double>(sorted.size()) / 1000.0;
  out.median_ms = static_cast<double>(sorted[sorted.size() / 2]) / 1000.0;
  out.p95_ms = static_cast<double>(sorted[sorted.size() * 95 / 100]) / 1000.0;
  out.p99_ms = static_cast<double>(sorted[sorted.size() * 99 / 100]) / 1000.0;
  out.p999_ms = static_cast<double>(sorted[sorted.size() * 999 / 1000]) / 1000.0;
  out.min_ms = static_cast<double>(sorted.front()) / 1000.0;
  out.max_ms = static_cast<double>(sorted.back()) / 1000.0;
  return out;
}

RunMetrics collect_metrics(Cluster& cluster, sim::SimTime from_us, sim::SimTime to_us,
                           uint32_t ops_per_request) {
  RunMetrics m;
  std::vector<int64_t> latencies;
  uint64_t fast_acks = 0;
  for (size_t i = 0; i < cluster.num_clients(); ++i) {
    for (const core::ClientRecord& rec : cluster.client(i).records()) {
      if (rec.completed_at < from_us || rec.completed_at >= to_us) continue;
      ++m.requests_completed;
      latencies.push_back(rec.latency_us);
      if (rec.via_fast_ack) ++fast_acks;
    }
  }
  double window_s = static_cast<double>(to_us - from_us) / 1e6;
  if (window_s > 0) {
    m.requests_per_second = static_cast<double>(m.requests_completed) / window_s;
    m.ops_per_second = m.requests_per_second * ops_per_request;
  }
  m.latency = summarize_latencies(latencies);
  if (m.requests_completed > 0) {
    m.fast_ack_fraction =
        static_cast<double>(fast_acks) / static_cast<double>(m.requests_completed);
  }
  // Every replica's counters fold into the registry by name — the stats
  // structs enumerate themselves, so new counters flow through untouched.
  for (ReplicaId r = 1; r <= cluster.num_replicas(); ++r) {
    const ReplicaHandle& h = cluster.replica(r);
    h.for_each_stat(
        [&](std::string_view name, uint64_t value) { m.registry.add(name, value); });
    if (h.metrics()) m.registry.merge(*h.metrics());
  }
  // Per-lane CPU utilization (docs/performance.md). Lane 0 is the serial
  // handler lane; lanes >= 1 absorb offloaded signature verification. The
  // network tracks these per node across incarnations, so they come from
  // the network rather than the replica stats.
  sim::Network& net = cluster.network();
  for (ReplicaId r = 1; r <= cluster.num_replicas(); ++r) {
    NodeId node = cluster.replica(r).node();
    const std::vector<int64_t>& lanes = net.lane_used_us(node);
    for (size_t lane = 0; lane < lanes.size(); ++lane) {
      uint64_t used = static_cast<uint64_t>(lanes[lane]);
      m.registry.counter("cpu_used_us") += used;
      m.registry.counter(lane == 0 ? "cpu_lane0_used_us"
                                   : "cpu_worker_used_us") += used;
      m.registry.histogram("cpu.lane_used_us").record(lanes[lane]);
    }
    m.registry.counter("cpu_offloads_run") += net.offloads_run(node);
  }
  // WAL bytes come from the durable handles, not the replica stats: the
  // handle's counter spans every incarnation of a restarted replica.
  m.registry.counter("wal_bytes_written") = cluster.total_wal_bytes_written();
  auto totals = cluster.network().total_stats();
  m.registry.counter("messages_sent") = totals.count;
  m.registry.counter("bytes_sent") = totals.bytes;
  return m;
}

std::string format_row(const std::vector<std::string>& cells,
                       const std::vector<int>& widths) {
  std::ostringstream out;
  for (size_t i = 0; i < cells.size(); ++i) {
    int width = i < widths.size() ? widths[i] : 12;
    std::string cell = cells[i];
    if (static_cast<int>(cell.size()) < width) {
      cell.append(static_cast<size_t>(width - static_cast<int>(cell.size())), ' ');
    }
    out << cell << ' ';
  }
  return out.str();
}

void JsonWriter::key(std::string_view name) {
  if (body_.size() > 1) body_ += ',';
  body_ += '"';
  body_ += name;
  body_ += "\":";
}

JsonWriter& JsonWriter::field(std::string_view name, uint64_t value) {
  key(name);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, int64_t value) {
  key(name);
  body_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  key(name);
  body_ += buf;
  return *this;
}

JsonWriter& JsonWriter::field(std::string_view name, std::string_view value) {
  key(name);
  body_ += '"';
  body_ += value;  // callers pass identifier-like strings; no escaping needed
  body_ += '"';
  return *this;
}

JsonWriter& JsonWriter::field_raw(std::string_view name, std::string_view raw_json) {
  key(name);
  body_ += raw_json;
  return *this;
}

std::string metrics_json(const RunMetrics& m) {
  JsonWriter lat;
  lat.field("count", m.latency.count)
      .field("mean_ms", m.latency.mean_ms)
      .field("median_ms", m.latency.median_ms)
      .field("p95_ms", m.latency.p95_ms)
      .field("p99_ms", m.latency.p99_ms)
      .field("p999_ms", m.latency.p999_ms)
      .field("min_ms", m.latency.min_ms)
      .field("max_ms", m.latency.max_ms);
  JsonWriter w;
  w.field("requests_completed", m.requests_completed)
      .field("requests_per_second", m.requests_per_second)
      .field("ops_per_second", m.ops_per_second)
      .field("fast_ack_fraction", m.fast_ack_fraction)
      .field_raw("latency", lat.str())
      .field_raw("registry", m.registry.to_json());
  return w.str();
}

}  // namespace sbft::harness
