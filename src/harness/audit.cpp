#include "harness/audit.h"

#include <algorithm>

#include "common/bytes.h"

namespace sbft::harness {

std::vector<std::string> audit_state_convergence(
    const std::vector<ReplicaStateView>& views) {
  std::vector<std::string> violations;

  SeqNum max_stable = 0;
  for (const ReplicaStateView& v : views) {
    if (v.member) max_stable = std::max(max_stable, v.stable);
  }

  for (const ReplicaStateView& v : views) {
    if (!v.live || !v.member) continue;
    if (v.executed < max_stable) {
      violations.push_back(
          "convergence: replica " + std::to_string(v.id) + " executed only " +
          std::to_string(v.executed) + " but the cluster's stable frontier is " +
          std::to_string(max_stable));
    }
  }

  for (size_t i = 0; i < views.size(); ++i) {
    const ReplicaStateView& a = views[i];
    if (!a.live || !a.member || a.executed == 0) continue;
    for (size_t j = i + 1; j < views.size(); ++j) {
      const ReplicaStateView& b = views[j];
      if (!b.live || !b.member || b.executed != a.executed) continue;
      if (!(a.state_root == b.state_root)) {
        violations.push_back(
            "convergence: replicas " + std::to_string(a.id) + " and " +
            std::to_string(b.id) + " both executed up to " +
            std::to_string(a.executed) + " but hold different state roots");
      }
    }
  }
  return violations;
}

std::vector<std::string> audit_reply_caches(
    const std::vector<std::pair<ReplicaId, const runtime::ReplyCache*>>&
        caches) {
  std::vector<std::string> violations;
  for (size_t i = 0; i < caches.size(); ++i) {
    const auto& [ra, ca] = caches[i];
    if (ca == nullptr) continue;
    for (size_t j = i + 1; j < caches.size(); ++j) {
      const auto& [rb, cb] = caches[j];
      if (cb == nullptr) continue;
      for (const auto& [client, ea] : ca->entries()) {
        const runtime::CachedReply* eb = cb->find(client);
        if (eb == nullptr) continue;
        if (ea.timestamp == eb->timestamp) {
          if (ea.seq != eb->seq || ea.value != eb->value) {
            violations.push_back(
                "reply-cache: client " + std::to_string(client) +
                " timestamp " + std::to_string(ea.timestamp) + ": replica " +
                std::to_string(ra) + " cached (seq " + std::to_string(ea.seq) +
                ") but replica " + std::to_string(rb) + " cached (seq " +
                std::to_string(eb->seq) + ") with " +
                (ea.value != eb->value ? "different" : "equal") + " values");
          }
        } else {
          // Timestamps are client-monotone and execute in order, so the
          // newer timestamp must sit at the same or a later sequence.
          const auto& newer = ea.timestamp > eb->timestamp ? ea : *eb;
          const auto& older = ea.timestamp > eb->timestamp ? *eb : ea;
          if (newer.seq < older.seq) {
            violations.push_back(
                "reply-cache: client " + std::to_string(client) +
                " timestamp " + std::to_string(newer.timestamp) +
                " executed at seq " + std::to_string(newer.seq) +
                " before timestamp " + std::to_string(older.timestamp) +
                " at seq " + std::to_string(older.seq) +
                " (ordering inverted between replicas " + std::to_string(ra) +
                " and " + std::to_string(rb) + ")");
          }
        }
      }
    }
  }
  return violations;
}

}  // namespace sbft::harness
