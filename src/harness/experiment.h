// Experiment runner shared by the benchmark binaries: configures a cluster
// for one (protocol, clients, failures, batching) point, runs warmup +
// measurement windows of simulated time, and returns the paper-style row.
#pragma once

#include <string>

#include "harness/cluster.h"
#include "harness/metrics.h"

namespace sbft::harness {

struct ExperimentPoint {
  ProtocolKind kind = ProtocolKind::kSbft;
  uint32_t f = 64;
  uint32_t c = 0;
  uint32_t num_clients = 4;
  uint32_t ops_per_request = 1;   // 64 = the paper's batching mode
  uint32_t cores = 0;      // CPU lanes per replica; 0 = cost-model default (1)
  uint64_t window = 0;     // ProtocolConfig::win override; 0 = keep default
  uint32_t max_batch = 0;  // ProtocolConfig::max_batch override; 0 = default
  // ProtocolConfig::adaptive_batching override: -1 = keep default, 0 = force
  // static max_batch blocks, 1 = force the §VIII adaptive controller.
  int adaptive = -1;
  uint32_t crash_replicas = 0;
  uint32_t straggler_replicas = 0;
  sim::SimTime warmup_us = 1'000'000;
  sim::SimTime measure_us = 4'000'000;
  uint64_t seed = 7;
  sim::Topology topology;  // defaults to continent scale
  std::function<void(ClusterOptions&)> tweak;  // optional extra configuration
};

struct ExperimentResult {
  RunMetrics metrics;
  bool agreement_ok = true;
  uint64_t sim_events = 0;
};

ExperimentResult run_point(const ExperimentPoint& point);

/// Like run_point, but memoizes results in a per-build on-disk cache keyed by
/// the point's parameters, so fig3 reuses fig2's sweep (and re-runs are free).
/// Points with a custom `tweak` are never cached (the closure is opaque).
ExperimentResult run_point_cached(const ExperimentPoint& point);

/// True when SBFT_BENCH_FULL=1: run the paper's full sweeps instead of the
/// reduced default grid.
bool bench_full_mode();

/// Reduced/full client-count grid for fig2/fig3 (paper: 4..256).
std::vector<uint32_t> bench_client_grid();

}  // namespace sbft::harness
