#include "harness/workload.h"

#include <algorithm>
#include <cstdio>
#include <memory>

#include "common/serde.h"
#include "kv/kv_service.h"

namespace sbft::harness {

std::function<Bytes(uint64_t, Rng&)> kv_op_factory(KvWorkloadOptions options) {
  return [options](uint64_t /*request_index*/, Rng& rng) -> Bytes {
    auto one_op = [&]() {
      Bytes key(options.key_size);
      uint64_t k = rng.below(options.key_space);
      for (size_t i = 0; i < sizeof(k) && i < key.size(); ++i)
        key[i] = static_cast<uint8_t>(k >> (8 * i));
      Bytes value = rng.bytes(options.value_size);
      return kv::encode_put(as_span(key), as_span(value));
    };
    if (options.ops_per_request <= 1) return one_op();
    std::vector<Bytes> ops;
    ops.reserve(options.ops_per_request);
    for (uint32_t i = 0; i < options.ops_per_request; ++i) ops.push_back(one_op());
    return kv::encode_batch(ops);
  };
}

std::function<Bytes(uint64_t, Rng&)> hot_range_kv_op_factory(
    uint32_t key_space, uint32_t hot, uint32_t value_size,
    uint32_t ops_per_request) {
  auto next = std::make_shared<uint64_t>(0);
  return [=](uint64_t, Rng& rng) -> Bytes {
    std::vector<Bytes> ops;
    ops.reserve(ops_per_request);
    for (uint32_t i = 0; i < ops_per_request; ++i) {
      uint64_t n = (*next)++;
      uint32_t key = n < key_space ? static_cast<uint32_t>(n) : rng.below(hot);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "key-%06u", key);
      ops.push_back(kv::encode_put(as_span(to_bytes(buf)),
                                   as_span(rng.bytes(value_size))));
    }
    return kv::encode_batch(ops);
  };
}

namespace {
constexpr uint32_t kFastKvMagic = 0x32564b46;  // "FKV2"
constexpr size_t kShardBytes = 16;             // two u64 accumulators

/// Shards-per-section for a given pad unit: each section occupies exactly
/// `page` bytes (shard records never straddle a section boundary), so one
/// mutated shard dirties one aligned chunk of the snapshot.
size_t shards_per_section(uint32_t page) {
  return std::max<size_t>(1, page / kShardBytes);
}
}  // namespace

FastKvService::FastKvService(uint32_t shards) { reset_shards(shards); }

void FastKvService::reset_shards(uint32_t shards) {
  shards_.assign(std::max<uint32_t>(1, shards), Shard{});
  for (size_t i = 0; i < shards_.size(); ++i) {
    shards_[i].acc0 = 0x243f6a8885a308d3ull ^ (i * 0x9e3779b97f4a7c15ull);
    shards_[i].acc1 = 0x13198a2e03707344ull + i;
  }
  digest0_ = 0;
  digest1_ = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto [m0, m1] = shard_mix(i, shards_[i]);
    digest0_ += m0;
    digest1_ ^= m1;
  }
  ops_ = 0;
}

std::pair<uint64_t, uint64_t> FastKvService::shard_mix(size_t i, const Shard& s) {
  uint64_t m0 = (s.acc0 + i + 1) * 0x9e3779b97f4a7c15ull;
  uint64_t m1 = (s.acc1 ^ (i * 0x2545f4914f6cdd1dull)) * 0x100000001b3ull;
  return {m0, m1};
}

Bytes FastKvService::execute(ByteSpan op) {
  // Count constituent operations of a kBatch wrapper for cost reporting.
  last_op_count_ = 1;
  if (!op.empty() && op[0] == static_cast<uint8_t>(kv::OpType::kBatch)) {
    Reader r(op.subspan(1));
    last_op_count_ = std::max<uint64_t>(1, r.u32());
  }
  // Rolling digest: mixes length and a bounded prefix of the payload into one
  // content-selected shard; cheap and deterministic, and any divergence in
  // the executed stream diverges the digest.
  uint64_t h = fnv1a(op.subspan(0, std::min<size_t>(op.size(), 64)));
  size_t idx = static_cast<size_t>(h % shards_.size());
  Shard& s = shards_[idx];
  auto [old0, old1] = shard_mix(idx, s);
  s.acc0 = (s.acc0 ^ h) * 0x100000001b3ull + op.size();
  s.acc1 = (s.acc1 + h) ^ (s.acc1 << 13) ^ (s.acc1 >> 7);
  auto [new0, new1] = shard_mix(idx, s);
  digest0_ += new0 - old0;  // wrapping: the sum commitment stays incremental
  digest1_ ^= old1 ^ new1;
  ++ops_;
  return to_bytes("OK");
}

Bytes FastKvService::query(ByteSpan) const { return {}; }

Digest FastKvService::state_digest() const {
  Digest d{};
  uint64_t shards = shards_.size();
  for (int i = 0; i < 8; ++i) {
    d[static_cast<size_t>(i)] = static_cast<uint8_t>(digest0_ >> (8 * i));
    d[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(digest1_ >> (8 * i));
    d[static_cast<size_t>(16 + i)] = static_cast<uint8_t>(ops_ >> (8 * i));
    d[static_cast<size_t>(24 + i)] = static_cast<uint8_t>(shards >> (8 * i));
  }
  return d;
}

Bytes FastKvService::snapshot() const {
  // Paged layout (chunk-stable, docs/state_transfer.md): header padded to the
  // page, then sections of shards_per_section records each padded to the
  // page. Padding is skipped for states smaller than a few pages — there a
  // delta could never save much and the zeros would dominate; the gate is a
  // pure function of (shard count, page), so every replica picks the same
  // layout. The page rides in the header, making restore self-describing.
  uint32_t page = snapshot_page_;
  if (page <= 1 || shards_.size() * kShardBytes < 4ull * page) page = 1;
  Writer w;
  w.u32(kFastKvMagic);
  w.u32(static_cast<uint32_t>(shards_.size()));
  w.u32(page);
  w.u64(ops_);
  if (page > 1) {
    while (w.size() % page != 0) w.u8(0);
    size_t per_section = shards_per_section(page);
    for (size_t i = 0; i < shards_.size(); ++i) {
      w.u64(shards_[i].acc0);
      w.u64(shards_[i].acc1);
      if ((i + 1) % per_section == 0 || i + 1 == shards_.size()) {
        while (w.size() % page != 0) w.u8(0);
      }
    }
  } else {
    for (const Shard& s : shards_) {
      w.u64(s.acc0);
      w.u64(s.acc1);
    }
  }
  return std::move(w).take();
}

bool FastKvService::restore(ByteSpan snapshot) {
  Reader r(snapshot);
  if (r.u32() != kFastKvMagic) return false;
  uint32_t shards = r.u32();
  uint32_t page = r.u32();
  uint64_t ops = r.u64();
  if (!r.ok() || shards == 0 || shards > (1u << 24)) return false;
  std::vector<Shard> loaded(shards);
  if (page > 1) {
    r.skip((page - r.pos() % page) % page);
    size_t per_section = shards_per_section(page);
    for (size_t i = 0; i < shards; ++i) {
      loaded[i].acc0 = r.u64();
      loaded[i].acc1 = r.u64();
      if ((i + 1) % per_section == 0 || i + 1 == shards) {
        r.skip((page - r.pos() % page) % page);
      }
    }
  } else {
    for (size_t i = 0; i < shards; ++i) {
      loaded[i].acc0 = r.u64();
      loaded[i].acc1 = r.u64();
    }
  }
  if (!r.at_end()) return false;
  shards_ = std::move(loaded);
  ops_ = ops;
  digest0_ = 0;
  digest1_ = 0;
  for (size_t i = 0; i < shards_.size(); ++i) {
    auto [m0, m1] = shard_mix(i, shards_[i]);
    digest0_ += m0;
    digest1_ ^= m1;
  }
  return true;
}

std::unique_ptr<IService> FastKvService::clone_empty() const {
  return std::make_unique<FastKvService>(shard_count());
}

}  // namespace sbft::harness
