#include "harness/workload.h"

#include <cstdio>
#include <memory>

#include "common/serde.h"
#include "kv/kv_service.h"

namespace sbft::harness {

std::function<Bytes(uint64_t, Rng&)> kv_op_factory(KvWorkloadOptions options) {
  return [options](uint64_t /*request_index*/, Rng& rng) -> Bytes {
    auto one_op = [&]() {
      Bytes key(options.key_size);
      uint64_t k = rng.below(options.key_space);
      for (size_t i = 0; i < sizeof(k) && i < key.size(); ++i)
        key[i] = static_cast<uint8_t>(k >> (8 * i));
      Bytes value = rng.bytes(options.value_size);
      return kv::encode_put(as_span(key), as_span(value));
    };
    if (options.ops_per_request <= 1) return one_op();
    std::vector<Bytes> ops;
    ops.reserve(options.ops_per_request);
    for (uint32_t i = 0; i < options.ops_per_request; ++i) ops.push_back(one_op());
    return kv::encode_batch(ops);
  };
}

std::function<Bytes(uint64_t, Rng&)> hot_range_kv_op_factory(
    uint32_t key_space, uint32_t hot, uint32_t value_size,
    uint32_t ops_per_request) {
  auto next = std::make_shared<uint64_t>(0);
  return [=](uint64_t, Rng& rng) -> Bytes {
    std::vector<Bytes> ops;
    ops.reserve(ops_per_request);
    for (uint32_t i = 0; i < ops_per_request; ++i) {
      uint64_t n = (*next)++;
      uint32_t key = n < key_space ? static_cast<uint32_t>(n) : rng.below(hot);
      char buf[16];
      std::snprintf(buf, sizeof(buf), "key-%06u", key);
      ops.push_back(kv::encode_put(as_span(to_bytes(buf)),
                                   as_span(rng.bytes(value_size))));
    }
    return kv::encode_batch(ops);
  };
}

Bytes FastKvService::execute(ByteSpan op) {
  // Count constituent operations of a kBatch wrapper for cost reporting.
  last_op_count_ = 1;
  if (!op.empty() && op[0] == static_cast<uint8_t>(kv::OpType::kBatch)) {
    Reader r(op.subspan(1));
    last_op_count_ = std::max<uint64_t>(1, r.u32());
  }
  // Rolling digest: mixes length and a bounded prefix of the payload; cheap
  // and deterministic, and any divergence in the executed stream diverges
  // the digest.
  uint64_t h = fnv1a(op.subspan(0, std::min<size_t>(op.size(), 64)));
  acc0_ = (acc0_ ^ h) * 0x100000001b3ull + op.size();
  acc1_ = (acc1_ + h) ^ (acc1_ << 13) ^ (acc1_ >> 7);
  ++ops_;
  return to_bytes("OK");
}

Bytes FastKvService::query(ByteSpan) const { return {}; }

Digest FastKvService::state_digest() const {
  Digest d{};
  for (int i = 0; i < 8; ++i) {
    d[static_cast<size_t>(i)] = static_cast<uint8_t>(acc0_ >> (8 * i));
    d[static_cast<size_t>(8 + i)] = static_cast<uint8_t>(acc1_ >> (8 * i));
    d[static_cast<size_t>(16 + i)] = static_cast<uint8_t>(ops_ >> (8 * i));
  }
  return d;
}

Bytes FastKvService::snapshot() const {
  Writer w;
  w.u64(acc0_);
  w.u64(acc1_);
  w.u64(ops_);
  return std::move(w).take();
}

bool FastKvService::restore(ByteSpan snapshot) {
  Reader r(snapshot);
  acc0_ = r.u64();
  acc1_ = r.u64();
  ops_ = r.u64();
  return r.at_end();
}

std::unique_ptr<IService> FastKvService::clone_empty() const {
  return std::make_unique<FastKvService>();
}

}  // namespace sbft::harness
