// Protocol-agnostic replica handle.
//
// The cluster builds one handle per replica slot regardless of which ordering
// engine backs it (SBFT variants or the PBFT baseline). The handle owns the
// replica object *and* its durable storage (ledger + WAL, which stand in for
// the disk that survives the process), exposes the uniform introspection the
// harness/tests/benches need — view, executed/stable sequences, runtime
// stats, committed digests — and is the single place where replica ids map
// to network node ids. Crash/restart/disk-wipe scenarios therefore run
// identically on every protocol.
#pragma once

#include <memory>
#include <optional>

#include "core/replica.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pbft/pbft_replica.h"
#include "recovery/wal.h"
#include "runtime/replica_runtime.h"
#include "storage/ledger_storage.h"

namespace sbft::harness {

class ReplicaHandle {
 public:
  ReplicaHandle() = default;

  ReplicaId id() const { return id_; }
  /// Network node this replica occupies — the only id↔node translation the
  /// harness uses (never hand-compute r - 1).
  NodeId node() const { return node_; }

  core::SbftReplica* sbft() const { return sbft_.get(); }
  pbft::PbftReplica* pbft() const { return pbft_.get(); }
  sim::IActor* actor() const {
    return sbft_ ? static_cast<sim::IActor*>(sbft_.get())
                 : static_cast<sim::IActor*>(pbft_.get());
  }

  // --- uniform introspection -------------------------------------------------
  ViewNum view() const { return sbft_ ? sbft_->view() : pbft_->view(); }
  SeqNum last_executed() const {
    return sbft_ ? sbft_->last_executed() : pbft_->last_executed();
  }
  SeqNum last_stable() const {
    return sbft_ ? sbft_->last_stable() : pbft_->last_stable();
  }
  const IService& service() const {
    return sbft_ ? sbft_->service() : pbft_->service();
  }
  const runtime::ReplicaRuntime& runtime() const {
    return sbft_ ? sbft_->runtime() : pbft_->runtime();
  }
  const runtime::RuntimeStats& runtime_stats() const { return runtime().stats(); }
  uint64_t view_changes() const {
    return sbft_ ? sbft_->stats().view_changes : pbft_->stats().view_changes;
  }
  std::optional<Digest> committed_digest_of(SeqNum s) const {
    return sbft_ ? sbft_->committed_digest_of(s) : pbft_->committed_digest_of(s);
  }

  /// Visits every protocol + runtime counter as (name, value) — the generic
  /// path metrics collection walks instead of copying fields one by one.
  template <typename Fn>
  void for_each_stat(Fn&& fn) const {
    if (sbft_) {
      sbft_->stats().for_each(fn);
    } else {
      pbft_->stats().for_each(fn);
    }
  }

  // --- durable storage (outlives replica incarnations) -----------------------
  std::shared_ptr<storage::ILedgerStorage> ledger() const { return ledger_; }
  std::shared_ptr<recovery::IReplicaWal> wal() const { return wal_; }

  // --- observability (outlives replica incarnations, like the disk) ----------
  /// Null unless the cluster was built with tracing enabled.
  std::shared_ptr<obs::Tracer> tracer() const { return tracer_; }
  std::shared_ptr<obs::MetricsRegistry> metrics() const { return metrics_; }

  /// Cross-shard marker executor (docs/sharding.md); null without a shard
  /// layer. Outlives replica incarnations — recovery restores its state.
  std::shared_ptr<runtime::IMarkerExecutor> marker_executor() const {
    return marker_executor_;
  }

 private:
  friend class Cluster;

  ReplicaId id_ = 0;
  NodeId node_ = 0;
  std::unique_ptr<core::SbftReplica> sbft_;
  std::unique_ptr<pbft::PbftReplica> pbft_;
  std::shared_ptr<storage::ILedgerStorage> ledger_;
  std::shared_ptr<recovery::IReplicaWal> wal_;
  std::shared_ptr<obs::Tracer> tracer_;
  std::shared_ptr<obs::MetricsRegistry> metrics_;
  std::shared_ptr<runtime::IMarkerExecutor> marker_executor_;
};

}  // namespace sbft::harness
