// Key-value benchmark workload (§IX "Measurements"): every request is a put
// of a random value to a random key; in batching mode a request carries 64
// operations. Also provides FastKvService, a deterministic lightweight state
// machine used by the large protocol sweeps (DESIGN.md §3: the authenticated
// KV store is exercised by tests/examples/smart-contract runs; the fig2/fig3
// sweeps use this O(1)-digest service so a laptop can simulate 209 replicas).
#pragma once

#include <functional>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "kv/service.h"

namespace sbft::harness {

struct KvWorkloadOptions {
  uint32_t ops_per_request = 1;  // 64 in the paper's batching mode
  uint32_t key_space = 100'000;
  uint32_t key_size = 16;
  uint32_t value_size = 32;
};

/// Factory compatible with ClientOptions::op_factory.
std::function<Bytes(uint64_t, Rng&)> kv_op_factory(KvWorkloadOptions options);

/// KV workload whose steady state mutates only a small hot prefix of an
/// otherwise cold keyspace — the briefly-behind delta state-transfer
/// scenario (docs/state_transfer.md): the first `key_space` ops populate
/// every key ("key-%06u") once, all later writes hit keys [0, hot). Each
/// request batches `ops_per_request` puts of `value_size`-byte random
/// values. The phase counter is shared across every copy of the returned
/// generator (all clients of one cluster).
std::function<Bytes(uint64_t, Rng&)> hot_range_kv_op_factory(
    uint32_t key_space, uint32_t hot, uint32_t value_size,
    uint32_t ops_per_request);

/// Deterministic O(1)-digest replicated service for protocol benchmarks.
/// The digest is a rolling non-cryptographic commitment over the executed
/// operation stream — protocol-visible behaviour (determinism, digest
/// equality across replicas, divergence on different histories) is preserved
/// at negligible simulation cost.
///
/// State is *sharded*: each operation folds into one of `shards` accumulator
/// pairs (chosen by an op-content hash), and the snapshot groups shards into
/// sections zero-padded to set_snapshot_chunk_hint — so a burst of operations
/// perturbs only the sections of the shards it touched, and delta state
/// transfer moves just those chunks (docs/state_transfer.md; previously this
/// service ignored the hint and every delta degraded to a full fetch). The
/// global digest stays O(1) per op: an incremental commitment over the shard
/// accumulators is maintained alongside them.
class FastKvService final : public IService {
 public:
  explicit FastKvService(uint32_t shards = 2048);

  Bytes execute(ByteSpan op) override;
  Bytes query(ByteSpan q) const override;
  Digest state_digest() const override;
  Bytes snapshot() const override;
  bool restore(ByteSpan snapshot) override;
  void set_snapshot_chunk_hint(uint32_t page) override { snapshot_page_ = page; }
  std::unique_ptr<IService> clone_empty() const override;
  int64_t last_execute_cost_us(const sim::CostModel& costs) const override {
    return costs.kv_op_us * static_cast<int64_t>(last_op_count_);
  }
  uint32_t shard_count() const { return static_cast<uint32_t>(shards_.size()); }

 private:
  struct Shard {
    uint64_t acc0 = 0;
    uint64_t acc1 = 0;
  };
  /// Commitment contribution of shard `i` (added into the running digest
  /// sums; subtracted/re-added when the shard mutates).
  static std::pair<uint64_t, uint64_t> shard_mix(size_t i, const Shard& s);
  void reset_shards(uint32_t shards);

  std::vector<Shard> shards_;
  uint64_t digest0_ = 0;  // wrapping sum over shard_mix().first
  uint64_t digest1_ = 0;  // xor over shard_mix().second
  uint64_t ops_ = 0;
  uint64_t last_op_count_ = 1;
  uint32_t snapshot_page_ = 0;  // section pad unit; <= 1 disables padding
};

}  // namespace sbft::harness
