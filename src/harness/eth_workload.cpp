#include "harness/eth_workload.h"

#include "common/serde.h"
#include "crypto/sha256.h"
#include "evm/contracts.h"

namespace sbft::harness {

namespace {

evm::Address address_from(std::string_view domain, uint64_t id, uint64_t salt = 0) {
  Writer w;
  w.str(domain);
  w.u64(id);
  w.u64(salt);
  Digest d = crypto::sha256(as_span(w.data()));
  evm::Address a{};
  std::copy(d.begin(), d.begin() + 20, a.begin());
  return a;
}

evm::U256 account_word(const evm::Address& a) {
  return evm::U256::from_bytes_be(ByteSpan{a.data(), a.size()});
}

}  // namespace

evm::Address eth_account_of(ClientId id) { return address_from("sbft.eth.acct", id); }

evm::Address eth_token_of(ClientId id) {
  // The deployer address is unique per client, so its first creation (nonce
  // 0) has a precomputable contract address.
  return evm::EvmLedgerService::derive_address(address_from("sbft.eth.deployer", id),
                                               0);
}

std::function<Bytes(uint64_t, Rng&)> eth_op_factory(ClientId id,
                                                    EthWorkloadOptions options) {
  return [id, options](uint64_t request_index, Rng& rng) -> Bytes {
    const evm::Address self = eth_account_of(id);
    const evm::Address deployer = address_from("sbft.eth.deployer", id);
    const evm::Address token = eth_token_of(id);

    if (request_index == 0) {
      // Bootstrap: deploy the token and mint a balance.
      std::vector<Bytes> txs;
      evm::CreateTx create;
      create.sender = deployer;
      create.code = evm::token_contract();
      txs.push_back(evm::encode_create(create));
      evm::CallTx mint;
      mint.sender = self;
      mint.contract = token;
      mint.calldata = evm::token_call_mint(account_word(self), evm::U256(1'000'000'000));
      mint.gas_limit = options.gas_limit;
      txs.push_back(evm::encode_call(mint));
      return evm::encode_tx_batch(txs);
    }

    std::vector<Bytes> txs;
    txs.reserve(options.txs_per_request);
    for (uint32_t i = 0; i < options.txs_per_request; ++i) {
      if (rng.chance(options.create_fraction)) {
        // Fresh deployer per creation: the trace's long tail of new contracts.
        evm::CreateTx create;
        create.sender = address_from("sbft.eth.deployer", id,
                                     request_index * 1000 + i + 1);
        create.code = evm::token_contract();
        txs.push_back(evm::encode_create(create));
        continue;
      }
      evm::CallTx call;
      call.sender = self;
      call.contract = token;
      evm::Address to = address_from("sbft.eth.acct", rng.below(1 << 20));
      call.calldata = evm::token_call_transfer(account_word(to), evm::U256(1));
      // Pad calldata to model real transaction sizes (extra bytes are ignored
      // by the contract's CALLDATALOAD offsets).
      Bytes padding = rng.bytes(options.tx_padding_bytes);
      call.calldata.insert(call.calldata.end(), padding.begin(), padding.end());
      call.gas_limit = options.gas_limit;
      txs.push_back(evm::encode_call(call));
    }
    return evm::encode_tx_batch(txs);
  };
}

}  // namespace sbft::harness
