#include "harness/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace sbft::harness {

bool bench_full_mode() {
  const char* env = std::getenv("SBFT_BENCH_FULL");
  return env != nullptr && env[0] == '1';
}

std::vector<uint32_t> bench_client_grid() {
  if (bench_full_mode()) return {4, 32, 64, 128, 192, 256};
  return {4, 64, 256};
}

ExperimentResult run_point(const ExperimentPoint& point) {
  ClusterOptions opts;
  opts.kind = point.kind;
  opts.f = point.f;
  opts.c = point.c;
  opts.num_clients = point.num_clients;
  opts.requests_per_client = 0;  // run for the whole window
  opts.topology = point.topology.region_latency_us.empty() ? sim::continent_topology()
                                                           : point.topology;
  opts.seed = point.seed;
  opts.crash_replicas = point.crash_replicas;
  opts.straggler_replicas = point.straggler_replicas;
  opts.cores_per_replica = point.cores;
  KvWorkloadOptions workload;
  workload.ops_per_request = point.ops_per_request;
  opts.op_factory = kv_op_factory(workload);
  if (point.window > 0 || point.max_batch > 0 || point.adaptive >= 0) {
    uint64_t win = point.window;
    uint32_t max_batch = point.max_batch;
    int adaptive = point.adaptive;
    opts.tweak_config = [win, max_batch, adaptive](ProtocolConfig& cfg) {
      if (win > 0) cfg.win = win;
      if (max_batch > 0) cfg.max_batch = max_batch;
      if (adaptive >= 0) cfg.adaptive_batching = adaptive != 0;
    };
  }
  if (point.tweak) point.tweak(opts);

  Cluster cluster(std::move(opts));
  cluster.run_for(point.warmup_us);
  sim::SimTime from = cluster.simulator().now();
  cluster.run_for(point.measure_us);
  sim::SimTime to = cluster.simulator().now();

  ExperimentResult result;
  result.metrics = collect_metrics(cluster, from, to, point.ops_per_request);
  result.agreement_ok = cluster.check_agreement();
  result.sim_events = cluster.simulator().events_processed();
  return result;
}

namespace {

std::string cache_key(const ExperimentPoint& p) {
  std::ostringstream key;
  key << "k" << static_cast<int>(p.kind) << "_f" << p.f << "_c" << p.c << "_cl"
      << p.num_clients << "_b" << p.ops_per_request << "_cr" << p.crash_replicas
      << "_st" << p.straggler_replicas << "_w" << p.warmup_us << "_m"
      << p.measure_us << "_s" << p.seed << "_co" << p.cores << "_wn" << p.window
      << "_mb" << p.max_batch << "_ad" << p.adaptive << "_t"
      << (p.topology.region_latency_us.empty() ? "continent" : p.topology.name);
  return key.str();
}

std::filesystem::path cache_dir() {
  return std::filesystem::temp_directory_path() / "sbft-bench-cache";
}

// Cache schema version: bump whenever the serialized shape changes so stale
// files from older builds re-run instead of mis-parsing.
constexpr int kCacheVersion = 4;

bool load_cached(const std::filesystem::path& file, ExperimentResult* out) {
  std::ifstream in(file);
  if (!in) return false;
  int version = 0;
  in >> version;
  if (version != kCacheVersion) return false;
  int agreement = 0;
  RunMetrics& m = out->metrics;
  in >> m.requests_completed >> m.requests_per_second >> m.ops_per_second >>
      m.latency.count >> m.latency.mean_ms >> m.latency.median_ms >>
      m.latency.p95_ms >> m.latency.p99_ms >> m.latency.p999_ms >>
      m.latency.min_ms >> m.latency.max_ms >> m.fast_ack_fraction >> agreement >>
      out->sim_events;
  size_t num_counters = 0;
  in >> num_counters;
  for (size_t i = 0; i < num_counters && in; ++i) {
    std::string name;
    uint64_t value = 0;
    in >> name >> value;
    m.registry.counter(name) = value;
  }
  if (!in) return false;
  out->agreement_ok = agreement != 0;
  return true;
}

void store_cached(const std::filesystem::path& file, const ExperimentResult& r) {
  std::error_code ec;
  std::filesystem::create_directories(cache_dir(), ec);
  std::ofstream out(file);
  const RunMetrics& m = r.metrics;
  out << kCacheVersion << ' ' << m.requests_completed << ' '
      << m.requests_per_second << ' ' << m.ops_per_second << ' '
      << m.latency.count << ' ' << m.latency.mean_ms << ' ' << m.latency.median_ms
      << ' ' << m.latency.p95_ms << ' ' << m.latency.p99_ms << ' '
      << m.latency.p999_ms << ' ' << m.latency.min_ms << ' ' << m.latency.max_ms
      << ' ' << m.fast_ack_fraction << ' ' << (r.agreement_ok ? 1 : 0) << ' '
      << r.sim_events << '\n';
  // Counters by name (names never contain whitespace); histograms are not
  // cached — a cache hit keeps the table counters, which is all the benches
  // read through run_point_cached.
  size_t num_counters = 0;
  m.registry.for_each_counter([&](const std::string&, uint64_t) { ++num_counters; });
  out << num_counters;
  m.registry.for_each_counter([&](const std::string& name, uint64_t value) {
    out << ' ' << name << ' ' << value;
  });
  out << '\n';
}

}  // namespace

ExperimentResult run_point_cached(const ExperimentPoint& point) {
  if (point.tweak) return run_point(point);  // closures are not hashable
  std::filesystem::path file = cache_dir() / (cache_key(point) + ".txt");
  ExperimentResult cached;
  if (load_cached(file, &cached)) return cached;
  ExperimentResult fresh = run_point(point);
  store_cached(file, fresh);
  return fresh;
}

}  // namespace sbft::harness
