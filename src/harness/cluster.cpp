#include "harness/cluster.h"

#include <algorithm>

namespace sbft::harness {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPbft: return "PBFT";
    case ProtocolKind::kLinearPbft: return "Linear-PBFT";
    case ProtocolKind::kLinearPbftFast: return "Linear-PBFT+FastPath";
    case ProtocolKind::kSbft: return "SBFT";
  }
  return "?";
}

ProtocolConfig ClusterOptions::make_config() const {
  ProtocolConfig config;
  config.f = f;
  config.c = kind == ProtocolKind::kSbft ? c : 0;
  switch (kind) {
    case ProtocolKind::kPbft:
    case ProtocolKind::kLinearPbft:
      config.fast_path_enabled = false;
      config.execution_collector = false;
      break;
    case ProtocolKind::kLinearPbftFast:
      config.fast_path_enabled = true;
      config.execution_collector = false;
      break;
    case ProtocolKind::kSbft:
      config.fast_path_enabled = true;
      config.execution_collector = true;
      break;
  }
  if (tweak_config) {
    ProtocolConfig copy = config;
    tweak_config(copy);
    return copy;
  }
  return config;
}

Cluster::Cluster(ClusterOptions options)
    : opts_(std::move(options)), config_(opts_.make_config()) {
  if (opts_.topology.region_latency_us.empty()) opts_.topology = sim::lan_topology();
  if (!opts_.service_factory) {
    opts_.service_factory = [] { return std::make_unique<FastKvService>(); };
  }
  if (!opts_.op_factory) opts_.op_factory = kv_op_factory({});
  build();
}

Cluster::~Cluster() = default;

void Cluster::build_replica(ReplicaHandle& handle, core::ReplicaBehavior behavior,
                            bool recovering) {
  bool corrupt_chunks =
      std::find(opts_.corrupt_chunk_replicas.begin(),
                opts_.corrupt_chunk_replicas.end(),
                handle.id_) != opts_.corrupt_chunk_replicas.end();
  if (opts_.kind == ProtocolKind::kPbft) {
    pbft::PbftOptions po;
    po.config = config_;
    po.id = handle.id_;
    po.ledger = handle.ledger_;
    po.wal = handle.wal_;
    po.recovering = recovering;
    po.corrupt_state_chunks = corrupt_chunks;
    handle.pbft_ =
        std::make_unique<pbft::PbftReplica>(std::move(po), opts_.service_factory());
  } else {
    core::ReplicaOptions ro;
    ro.config = config_;
    ro.id = handle.id_;
    ro.crypto = core::ReplicaCrypto::for_replica(keys_, handle.id_);
    ro.behavior = behavior;
    ro.ledger = handle.ledger_;
    ro.wal = handle.wal_;
    ro.recovering = recovering;
    ro.corrupt_state_chunks = corrupt_chunks;
    handle.sbft_ =
        std::make_unique<core::SbftReplica>(std::move(ro), opts_.service_factory());
  }
}

void Cluster::build() {
  // Byzantine behaviours are implemented by the SBFT engine only; fail loudly
  // rather than running a "byzantine" PBFT cluster all-honest. (Crash /
  // straggler / restart faults are network-level and work on every protocol.)
  SBFT_CHECK(opts_.kind != ProtocolKind::kPbft || opts_.byzantine_replicas == 0);
  net_ = std::make_unique<sim::Network>(sim_, opts_.topology, opts_.costs, opts_.seed);
  Rng key_rng(opts_.seed ^ 0x5bf7u);
  keys_ = opts_.use_real_threshold_crypto
              ? core::ClusterKeys::generate_rsa(key_rng, config_,
                                                opts_.threshold_rsa_bits)
              : core::ClusterKeys::generate(key_rng, config_);

  const uint32_t n = config_.n();
  const ReplicaId primary0 = config_.primary_of(0);

  // Fault roles are drawn first (replica behaviour is fixed at construction).
  // The view-0 primary is never selected: the paper's failure scenarios crash
  // backups, and primary failure is exercised by the view-change tests.
  Rng fault_rng(opts_.seed ^ 0xfau);
  std::vector<ReplicaId> backups;
  for (ReplicaId r = 1; r <= n; ++r) {
    if (r != primary0) backups.push_back(r);
  }
  for (size_t i = backups.size(); i > 1; --i) {
    std::swap(backups[i - 1], backups[fault_rng.below(i)]);
  }
  std::vector<core::ReplicaBehavior> behavior(n + 1, core::ReplicaBehavior::kHonest);
  std::vector<ReplicaId> to_crash;
  std::vector<ReplicaId> to_slow;
  size_t cursor = 0;
  for (uint32_t i = 0; i < opts_.crash_replicas && cursor < backups.size(); ++i) {
    to_crash.push_back(backups[cursor++]);
  }
  for (uint32_t i = 0; i < opts_.straggler_replicas && cursor < backups.size(); ++i) {
    to_slow.push_back(backups[cursor++]);
  }
  for (uint32_t i = 0; i < opts_.byzantine_replicas && cursor < backups.size(); ++i) {
    behavior[backups[cursor++]] = opts_.byzantine_behavior;
  }

  // Replicas occupy node ids 0..n-1; the authoritative replica->node mapping
  // lives in each ReplicaHandle.
  replicas_.resize(n);
  for (ReplicaId r = 1; r <= n; ++r) {
    ReplicaHandle& handle = replicas_[r - 1];
    handle.id_ = r;
    if (opts_.durability) {
      handle.ledger_ = std::make_shared<storage::MemoryLedgerStorage>();
      handle.wal_ = std::make_shared<recovery::MemoryWal>();
    }
    build_replica(handle, behavior[r], /*recovering=*/false);
    handle.node_ = net_->add_node(handle.actor());
    SBFT_CHECK(handle.node_ == r - 1);  // replicas are added first
  }

  // Clients occupy node ids n..n+k-1; ClientId == NodeId.
  for (uint32_t i = 0; i < opts_.num_clients; ++i) {
    core::ClientOptions co;
    co.config = config_;
    co.crypto = core::ReplicaCrypto::verifier_only(keys_);
    co.num_requests = opts_.requests_per_client;
    co.id = n + i;
    co.op_factory = opts_.per_client_op_factory ? opts_.per_client_op_factory(co.id)
                                                : opts_.op_factory;
    auto client = std::make_unique<core::SbftClient>(std::move(co));
    NodeId node = net_->add_node(client.get());
    SBFT_CHECK(node == n + i);
    clients_.push_back(std::move(client));
  }

  for (ReplicaId r : to_crash) net_->crash(replica(r).node());
  for (ReplicaId r : to_slow) {
    net_->set_cpu_factor(replica(r).node(), 4.0);
    net_->set_extra_latency(replica(r).node(), 20'000);
  }

  // Scheduled kill-and-restart scenarios (rolling restarts chain events);
  // available on every protocol.
  for (const ClusterOptions::RestartEvent& ev : opts_.restart_schedule) {
    ReplicaId target = ev.replica;
    if (target == 0 && cursor < backups.size()) target = backups[cursor++];
    if (target == 0) continue;  // no backup left to assign
    sim_.schedule(ev.crash_at_us, [this, target] { crash_replica(target); });
    if (ev.restart_at_us > ev.crash_at_us) {
      sim_.schedule(ev.restart_at_us, [this, target, wipe = ev.wipe_storage] {
        restart_replica(target, wipe);
      });
    }
  }
}

void Cluster::restart_replica(ReplicaId r, bool wipe_storage) {
  ReplicaHandle& handle = replica(r);
  SBFT_CHECK(net_->crashed(handle.node()));
  if (wipe_storage || !handle.ledger_) {
    handle.ledger_ = std::make_shared<storage::MemoryLedgerStorage>();
  }
  if (wipe_storage || !handle.wal_) {
    handle.wal_ = std::make_shared<recovery::MemoryWal>();
  }
  build_replica(handle, core::ReplicaBehavior::kHonest, /*recovering=*/true);
  net_->restart(handle.node(), handle.actor());
}

void Cluster::run_for(sim::SimTime sim_time_us) {
  if (!started_) {
    started_ = true;
    net_->start();
  }
  sim_.run_until(sim_.now() + sim_time_us);
}

bool Cluster::run_until_done(sim::SimTime deadline_us) {
  if (!started_) {
    started_ = true;
    net_->start();
  }
  while (sim_.now() < deadline_us) {
    bool all_done = std::all_of(clients_.begin(), clients_.end(),
                                [](const auto& c) { return c->done(); });
    if (all_done) return true;
    if (sim_.idle()) return false;  // deadlock would be a bug; surface it
    sim_.run_until(std::min(deadline_us, sim_.now() + 50'000));
  }
  return std::all_of(clients_.begin(), clients_.end(),
                     [](const auto& c) { return c->done(); });
}

core::SbftReplica* Cluster::sbft_replica(ReplicaId id) { return replica(id).sbft(); }

pbft::PbftReplica* Cluster::pbft_replica(ReplicaId id) { return replica(id).pbft(); }

SeqNum Cluster::min_executed() const {
  SeqNum lo = UINT64_MAX;
  for (const ReplicaHandle& h : replicas_) {
    if (net_->crashed(h.node())) continue;
    lo = std::min(lo, h.last_executed());
  }
  return lo == UINT64_MAX ? 0 : lo;
}

SeqNum Cluster::max_executed() const {
  SeqNum hi = 0;
  for (const ReplicaHandle& h : replicas_) hi = std::max(hi, h.last_executed());
  return hi;
}

uint64_t Cluster::total_fast_commits() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) {
    if (h.sbft()) total += h.sbft()->stats().fast_commits;
  }
  return total;
}

uint64_t Cluster::total_slow_commits() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) {
    if (h.sbft()) total += h.sbft()->stats().slow_commits;
  }
  return total;
}

uint64_t Cluster::total_recoveries() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) total += h.runtime_stats().recoveries;
  return total;
}

uint64_t Cluster::total_wal_bytes_written() const {
  // Sum over the durable handles, not the replica stats: the handle's counter
  // spans every incarnation of the replica.
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) {
    if (h.wal()) total += h.wal()->bytes_written();
  }
  return total;
}

uint64_t Cluster::total_view_changes() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) total += h.view_changes();
  return total;
}

bool Cluster::check_agreement(SeqNum* bad_seq) const {
  SeqNum hi = max_executed();
  for (SeqNum s = 1; s <= hi; ++s) {
    std::optional<Digest> expect;
    for (const ReplicaHandle& h : replicas_) {
      std::optional<Digest> got = h.committed_digest_of(s);
      if (!got) continue;
      if (!expect) {
        expect = got;
      } else if (!(*expect == *got)) {
        if (bad_seq) *bad_seq = s;
        return false;
      }
    }
  }
  return true;
}

}  // namespace sbft::harness
