#include "harness/cluster.h"

#include <algorithm>

#include "obs/trace_export.h"

namespace sbft::harness {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPbft: return "PBFT";
    case ProtocolKind::kLinearPbft: return "Linear-PBFT";
    case ProtocolKind::kLinearPbftFast: return "Linear-PBFT+FastPath";
    case ProtocolKind::kSbft: return "SBFT";
  }
  return "?";
}

ProtocolConfig ClusterOptions::make_config() const {
  ProtocolConfig config;
  config.f = f;
  config.c = kind == ProtocolKind::kSbft ? c : 0;
  switch (kind) {
    case ProtocolKind::kPbft:
    case ProtocolKind::kLinearPbft:
      config.fast_path_enabled = false;
      config.execution_collector = false;
      break;
    case ProtocolKind::kLinearPbftFast:
      config.fast_path_enabled = true;
      config.execution_collector = false;
      break;
    case ProtocolKind::kSbft:
      config.fast_path_enabled = true;
      config.execution_collector = true;
      break;
  }
  if (tweak_config) {
    ProtocolConfig copy = config;
    tweak_config(copy);
    return copy;
  }
  return config;
}

Cluster::Cluster(ClusterOptions options)
    : opts_(std::move(options)), config_(opts_.make_config()) {
  if (opts_.topology.region_latency_us.empty()) opts_.topology = sim::lan_topology();
  if (!opts_.service_factory) {
    opts_.service_factory = [] { return std::make_unique<FastKvService>(); };
  }
  if (!opts_.op_factory) opts_.op_factory = kv_op_factory({});
  owned_sim_ = std::make_unique<sim::Simulator>();
  sim_ = owned_sim_.get();
  owned_net_ =
      std::make_unique<sim::Network>(*sim_, opts_.topology, opts_.costs, opts_.seed);
  net_ = owned_net_.get();
  build();
}

Cluster::Cluster(ClusterOptions options, sim::Simulator& sim, sim::Network& net)
    : opts_(std::move(options)), config_(opts_.make_config()) {
  if (!opts_.service_factory) {
    opts_.service_factory = [] { return std::make_unique<FastKvService>(); };
  }
  if (!opts_.op_factory) opts_.op_factory = kv_op_factory({});
  sim_ = &sim;
  net_ = &net;
  build();
}

Cluster::~Cluster() = default;

void Cluster::build_replica(ReplicaHandle& handle, core::ReplicaBehavior behavior,
                            bool recovering) {
  bool corrupt_chunks =
      std::find(opts_.corrupt_chunk_replicas.begin(),
                opts_.corrupt_chunk_replicas.end(),
                handle.id_) != opts_.corrupt_chunk_replicas.end();
  // Every replica bootstraps with the harness' current roster view: for the
  // genesis build this is exactly the genesis mapping, for joiners the roster
  // that does not yet contain them, and for restarts the newest one (their
  // WAL may know better — membership recovery wins then).
  if (opts_.kind == ProtocolKind::kPbft) {
    pbft::PbftOptions po;
    po.config = config_;
    po.id = handle.id_;
    po.ledger = handle.ledger_;
    po.wal = handle.wal_;
    po.recovering = recovering;
    po.corrupt_state_chunks = corrupt_chunks;
    po.fabricate_checkpoint =
        std::find(opts_.fabricate_checkpoint_replicas.begin(),
                  opts_.fabricate_checkpoint_replicas.end(),
                  handle.id_) != opts_.fabricate_checkpoint_replicas.end();
    po.checkpoint_auth = checkpoint_auth_;
    po.roster = current_members_;
    po.roster_f = current_f_;
    po.tracer = handle.tracer_;
    po.metrics = handle.metrics_;
    po.marker_executor = handle.marker_executor_.get();
    handle.pbft_ =
        std::make_unique<pbft::PbftReplica>(std::move(po), opts_.service_factory());
  } else {
    core::ReplicaOptions ro;
    ro.config = config_;
    ro.id = handle.id_;
    // A joiner holds no genesis signer slot: verifier-only epoch-0 view (its
    // signers come from the epoch that admits it, via epoch_keys).
    ro.crypto = handle.id_ <= config_.n()
                    ? core::ReplicaCrypto::for_replica(keys_, handle.id_)
                    : core::ReplicaCrypto::verifier_only(keys_);
    ro.behavior = behavior;
    ro.ledger = handle.ledger_;
    ro.wal = handle.wal_;
    ro.recovering = recovering;
    ro.corrupt_state_chunks = corrupt_chunks;
    ro.roster = current_members_;
    ro.roster_f = current_f_;
    ro.roster_c = current_c_;
    ro.epoch_keys = epoch_keys_;
    ro.tracer = handle.tracer_;
    ro.metrics = handle.metrics_;
    ro.marker_executor = handle.marker_executor_.get();
    handle.sbft_ =
        std::make_unique<core::SbftReplica>(std::move(ro), opts_.service_factory());
  }
}

void Cluster::build() {
  // Byzantine behaviours are implemented by the SBFT engine only; fail loudly
  // rather than running a "byzantine" PBFT cluster all-honest. (Crash /
  // straggler / restart faults are network-level and work on every protocol.)
  SBFT_CHECK(opts_.kind != ProtocolKind::kPbft || opts_.byzantine_replicas == 0);
  // Embedded as a shard, the cluster's node block starts where the shared
  // network currently ends; standalone it starts at 0.
  node_base_ = net_->num_nodes();
  Rng key_rng(opts_.seed ^ 0x5bf7u);
  keys_ = opts_.use_real_threshold_crypto
              ? core::ClusterKeys::generate_rsa(key_rng, config_,
                                                opts_.threshold_rsa_bits)
              : core::ClusterKeys::generate(key_rng, config_);
  epoch_keys_ = std::make_shared<core::EpochKeyTable>();
  checkpoint_auth_ = std::make_shared<pbft::CheckpointAuth>(
      key_rng.bytes(32));  // cluster checkpoint-signing secret

  const uint32_t n = config_.n();
  current_f_ = config_.f;
  current_c_ = config_.c;
  for (ReplicaId r = 1; r <= n; ++r) {
    current_members_.push_back({r, node_base_ + r - 1});
  }
  const ReplicaId primary0 = config_.primary_of(0);

  // Fault roles are drawn first (replica behaviour is fixed at construction).
  // The view-0 primary is never selected: the paper's failure scenarios crash
  // backups, and primary failure is exercised by the view-change tests.
  Rng fault_rng(opts_.seed ^ 0xfau);
  std::vector<ReplicaId> backups;
  for (ReplicaId r = 1; r <= n; ++r) {
    if (r != primary0) backups.push_back(r);
  }
  for (size_t i = backups.size(); i > 1; --i) {
    std::swap(backups[i - 1], backups[fault_rng.below(i)]);
  }
  std::vector<core::ReplicaBehavior> behavior(n + 1, core::ReplicaBehavior::kHonest);
  std::vector<ReplicaId> to_crash;
  std::vector<ReplicaId> to_slow;
  size_t cursor = 0;
  for (uint32_t i = 0; i < opts_.crash_replicas && cursor < backups.size(); ++i) {
    to_crash.push_back(backups[cursor++]);
  }
  for (uint32_t i = 0; i < opts_.straggler_replicas && cursor < backups.size(); ++i) {
    to_slow.push_back(backups[cursor++]);
  }
  for (uint32_t i = 0; i < opts_.byzantine_replicas && cursor < backups.size(); ++i) {
    behavior[backups[cursor++]] = opts_.byzantine_behavior;
  }

  // Replicas occupy node ids node_base..node_base+n-1; the authoritative
  // replica->node mapping lives in each ReplicaHandle.
  replicas_.resize(n);
  for (ReplicaId r = 1; r <= n; ++r) {
    ReplicaHandle& handle = replicas_[r - 1];
    handle.id_ = r;
    if (opts_.durability) {
      handle.ledger_ = std::make_shared<storage::MemoryLedgerStorage>();
      handle.wal_ = std::make_shared<recovery::MemoryWal>();
    }
    handle.metrics_ = std::make_shared<obs::MetricsRegistry>();
    if (opts_.tracing) {
      handle.tracer_ = std::make_shared<obs::Tracer>(r, opts_.trace_capacity);
    }
    if (opts_.marker_executor_factory) {
      handle.marker_executor_ =
          opts_.marker_executor_factory(r, node_base_ + r - 1);
    }
    build_replica(handle, behavior[r], /*recovering=*/false);
    handle.node_ = net_->add_node(handle.actor());
    SBFT_CHECK(handle.node_ == node_base_ + r - 1);  // replicas are added first
    net_->set_cores(handle.node_, cores_for(r));
  }

  // Clients occupy the node ids after the replica block; ClientId == NodeId
  // (globally unique across a deployment's groups — reply caches and exec
  // leaves key on the client id).
  for (uint32_t i = 0; i < opts_.num_clients; ++i) {
    core::ClientOptions co;
    co.config = config_;
    co.retry_timeout_us = config_.client_retry_timeout_us;
    co.crypto = core::ReplicaCrypto::verifier_only(keys_);
    co.epoch_keys = epoch_keys_;
    const ClientId cid = node_base_ + n + i;
    co.num_requests = opts_.requests_per_client;
    co.id = cid;
    for (const ReplicaInfo& m : current_members_) {
      co.replica_nodes.push_back(m.node);
    }
    co.op_factory = opts_.per_client_op_factory ? opts_.per_client_op_factory(cid)
                                                : opts_.op_factory;
    auto client = std::make_unique<core::SbftClient>(std::move(co));
    NodeId node = net_->add_node(client.get());
    SBFT_CHECK(node == cid);
    clients_.push_back(std::move(client));
  }

  for (ReplicaId r : to_crash) net_->crash(replica(r).node());
  for (ReplicaId r : to_slow) {
    net_->set_cpu_factor(replica(r).node(), 4.0);
    net_->set_extra_latency(replica(r).node(), 20'000);
  }

  // Scheduled kill-and-restart scenarios (rolling restarts chain events);
  // available on every protocol.
  for (const ClusterOptions::RestartEvent& ev : opts_.restart_schedule) {
    ReplicaId target = ev.replica;
    if (target == 0 && cursor < backups.size()) target = backups[cursor++];
    if (target == 0) continue;  // no backup left to assign
    sim_->schedule(ev.crash_at_us, [this, target] { crash_replica(target); });
    if (ev.restart_at_us > ev.crash_at_us) {
      sim_->schedule(ev.restart_at_us, [this, target, wipe = ev.wipe_storage] {
        restart_replica(target, wipe);
      });
    }
  }
}

uint32_t Cluster::cores_for(ReplicaId r) const {
  if (auto it = opts_.replica_cores.find(r); it != opts_.replica_cores.end()) {
    return std::max<uint32_t>(1, it->second);
  }
  if (opts_.cores_per_replica > 0) return opts_.cores_per_replica;
  return std::max<uint32_t>(1, opts_.costs.cores_per_replica);
}

ReplicaId Cluster::add_replica() {
  ReplicaHandle handle;
  handle.id_ = static_cast<ReplicaId>(replicas_.size() + 1);
  if (opts_.durability) {
    handle.ledger_ = std::make_shared<storage::MemoryLedgerStorage>();
    handle.wal_ = std::make_shared<recovery::MemoryWal>();
  }
  handle.metrics_ = std::make_shared<obs::MetricsRegistry>();
  if (opts_.tracing) {
    handle.tracer_ =
        std::make_shared<obs::Tracer>(handle.id_, opts_.trace_capacity);
  }
  if (opts_.marker_executor_factory) {
    // The joiner takes the next node id the shared network will hand out.
    handle.marker_executor_ =
        opts_.marker_executor_factory(handle.id_, net_->num_nodes());
  }
  // The joiner bootstraps as a wiped recovering fetcher against the current
  // roster (which does not contain it); it participates only after an epoch
  // admitting it activates and arrives via state transfer.
  build_replica(handle, core::ReplicaBehavior::kHonest, /*recovering=*/true);
  handle.node_ = net_->add_node(handle.actor());
  net_->set_cores(handle.node_, cores_for(handle.id_));
  ReplicaId id = handle.id_;
  replicas_.push_back(std::move(handle));
  if (started_) net_->start_node(replicas_.back().node_);
  return id;
}

void Cluster::submit_reconfig(const std::vector<ReplicaId>& adds,
                              const std::vector<ReplicaId>& removes,
                              uint32_t new_f, uint32_t new_c) {
  ReconfigDelta delta;
  for (ReplicaId id : adds) delta.adds.push_back({id, replica(id).node()});
  delta.removes = removes;
  delta.new_f = new_f;
  delta.new_c = opts_.kind == ProtocolKind::kSbft ? new_c : 0;

  // Harness view of the post-activation roster (epoch-key dealing and future
  // joiner bootstraps read it).
  std::vector<ReplicaInfo> next = current_members_;
  next.erase(std::remove_if(next.begin(), next.end(),
                            [&](const ReplicaInfo& m) {
                              return std::find(removes.begin(), removes.end(),
                                               m.id) != removes.end();
                            }),
             next.end());
  for (const ReplicaInfo& add : delta.adds) next.push_back(add);
  std::sort(next.begin(), next.end(),
            [](const ReplicaInfo& a, const ReplicaInfo& b) { return a.id < b.id; });
  SBFT_CHECK(next.size() == 3ull * new_f + 2ull * delta.new_c + 1);

  if (opts_.kind != ProtocolKind::kPbft) {
    // Trusted-dealer re-keying for the new roster (docs/reconfiguration.md):
    // signer index k belongs to the member of epoch rank k-1. Real threshold
    // RSA would need a re-dealing ceremony; the sim-BLS scheme is what the
    // reconfiguration scenarios run.
    SBFT_CHECK(!opts_.use_real_threshold_crypto);
    Rng epoch_rng(opts_.seed ^ (0xec0cull + next_epoch_));
    epoch_keys_->provision(
        next_epoch_, core::ClusterKeys::generate_for(
                         epoch_rng, static_cast<uint32_t>(next.size()), new_f,
                         delta.new_c));
  }

  // Inject the administrative request to every current member; whichever is
  // primary orders it.
  auto msg = make_message(ReconfigBlockMsg{delta, next_epoch_});
  for (const ReplicaInfo& m : current_members_) {
    net_->inject(m.node, m.node, msg);
  }
  current_members_ = std::move(next);
  current_f_ = new_f;
  current_c_ = delta.new_c;
  ++next_epoch_;
}

void Cluster::crash_replica(ReplicaId r) {
  ReplicaHandle& handle = replica(r);
  net_->crash(handle.node());
  // Lifecycle marker: lets trace consumers segment the stream by incarnation
  // (a restarted replica's execution cursor may legitimately move back).
  if (handle.tracer_) {
    handle.tracer_->instant(sim_->now(), obs::Category::kSlot,
                            obs::ev::kReplicaCrashed);
  }
}

void Cluster::restart_replica(ReplicaId r, bool wipe_storage) {
  ReplicaHandle& handle = replica(r);
  SBFT_CHECK(net_->crashed(handle.node()));
  if (wipe_storage || !handle.ledger_) {
    handle.ledger_ = std::make_shared<storage::MemoryLedgerStorage>();
  }
  if (wipe_storage || !handle.wal_) {
    handle.wal_ = std::make_shared<recovery::MemoryWal>();
  }
  // The tracer and registry survive the restart like the disk does: the new
  // incarnation appends to the same stream, after a restart marker.
  if (handle.tracer_) {
    handle.tracer_->instant(sim_->now(), obs::Category::kSlot,
                            obs::ev::kReplicaRestarted, 0, 0, 0, "wiped",
                            wipe_storage ? 1 : 0);
  }
  build_replica(handle, core::ReplicaBehavior::kHonest, /*recovering=*/true);
  net_->restart(handle.node(), handle.actor());
}

void Cluster::run_for(sim::SimTime sim_time_us) {
  if (!started_) {
    started_ = true;
    net_->start();
  }
  sim_->run_until(sim_->now() + sim_time_us);
}

bool Cluster::run_until_done(sim::SimTime deadline_us) {
  if (!started_) {
    started_ = true;
    net_->start();
  }
  while (sim_->now() < deadline_us) {
    bool all_done = std::all_of(clients_.begin(), clients_.end(),
                                [](const auto& c) { return c->done(); });
    if (all_done) return true;
    if (sim_->idle()) return false;  // deadlock would be a bug; surface it
    sim_->run_until(std::min(deadline_us, sim_->now() + 50'000));
  }
  return std::all_of(clients_.begin(), clients_.end(),
                     [](const auto& c) { return c->done(); });
}

core::SbftReplica* Cluster::sbft_replica(ReplicaId id) { return replica(id).sbft(); }

pbft::PbftReplica* Cluster::pbft_replica(ReplicaId id) { return replica(id).pbft(); }

void Cluster::partition(const std::vector<ReplicaId>& side) {
  std::vector<NodeId> inside;
  for (ReplicaId r : side) inside.push_back(replica(r).node());
  auto is_inside = [&](NodeId n) {
    return std::find(inside.begin(), inside.end(), n) != inside.end();
  };
  NodeId total = net_->num_nodes();
  for (NodeId a : inside) {
    for (NodeId b = 0; b < total; ++b) {
      if (a != b && !is_inside(b)) net_->disconnect(a, b);
    }
  }
}

void Cluster::heal_partitions() { net_->clear_link_faults(); }

std::vector<std::string> Cluster::audit_state_convergence() const {
  std::vector<ReplicaStateView> views;
  for (const ReplicaHandle& h : replicas_) {
    ReplicaStateView v;
    v.id = h.id();
    v.live = !net_->crashed(h.node());
    v.member = std::any_of(
        current_members_.begin(), current_members_.end(),
        [&](const ReplicaInfo& m) { return m.id == h.id(); });
    v.executed = h.last_executed();
    v.stable = h.last_stable();
    v.state_root = h.service().state_digest();
    views.push_back(std::move(v));
  }
  return harness::audit_state_convergence(views);
}

std::vector<std::string> Cluster::audit_reply_caches() const {
  std::vector<std::pair<ReplicaId, const runtime::ReplyCache*>> caches;
  for (const ReplicaHandle& h : replicas_) {
    caches.emplace_back(h.id(), &h.runtime().replies());
  }
  return harness::audit_reply_caches(caches);
}

SeqNum Cluster::min_executed() const {
  SeqNum lo = UINT64_MAX;
  for (const ReplicaHandle& h : replicas_) {
    if (net_->crashed(h.node())) continue;
    lo = std::min(lo, h.last_executed());
  }
  return lo == UINT64_MAX ? 0 : lo;
}

SeqNum Cluster::max_executed() const {
  SeqNum hi = 0;
  for (const ReplicaHandle& h : replicas_) hi = std::max(hi, h.last_executed());
  return hi;
}

uint64_t Cluster::total_fast_commits() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) {
    if (h.sbft()) total += h.sbft()->stats().fast_commits;
  }
  return total;
}

uint64_t Cluster::total_slow_commits() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) {
    if (h.sbft()) total += h.sbft()->stats().slow_commits;
  }
  return total;
}

uint64_t Cluster::total_recoveries() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) total += h.runtime_stats().recoveries;
  return total;
}

uint64_t Cluster::total_wal_bytes_written() const {
  // Sum over the durable handles, not the replica stats: the handle's counter
  // spans every incarnation of the replica.
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) {
    if (h.wal()) total += h.wal()->bytes_written();
  }
  return total;
}

uint64_t Cluster::total_view_changes() const {
  uint64_t total = 0;
  for (const ReplicaHandle& h : replicas_) total += h.view_changes();
  return total;
}

std::vector<const obs::Tracer*> Cluster::tracers() const {
  std::vector<const obs::Tracer*> out;
  for (const ReplicaHandle& h : replicas_) {
    if (h.tracer()) out.push_back(h.tracer().get());
  }
  return out;
}

std::string Cluster::trace_json() const { return obs::chrome_trace_json(tracers()); }

bool Cluster::dump_trace(const std::string& path) const {
  return obs::write_chrome_trace(path, tracers());
}

obs::CheckReport Cluster::check_trace() const {
  // The fast-quorum invariant only applies when a fast path exists; PBFT and
  // Linear-PBFT commit through prepare/commit quorums exclusively.
  obs::TraceChecker checker(config_.fast_path_enabled ? config_.fast_quorum()
                                                      : 0);
  for (const ReplicaHandle& h : replicas_) {
    if (h.tracer()) {
      checker.add_replica(h.id(), h.tracer()->events(), h.tracer()->dropped());
    }
  }
  return checker.run();
}

bool Cluster::check_agreement(SeqNum* bad_seq) const {
  SeqNum hi = max_executed();
  for (SeqNum s = 1; s <= hi; ++s) {
    std::optional<Digest> expect;
    for (const ReplicaHandle& h : replicas_) {
      std::optional<Digest> got = h.committed_digest_of(s);
      if (!got) continue;
      if (!expect) {
        expect = got;
      } else if (!(*expect == *got)) {
        if (bad_seq) *bad_seq = s;
        return false;
      }
    }
  }
  return true;
}

}  // namespace sbft::harness
