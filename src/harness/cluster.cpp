#include "harness/cluster.h"

#include <algorithm>

namespace sbft::harness {

const char* protocol_name(ProtocolKind kind) {
  switch (kind) {
    case ProtocolKind::kPbft: return "PBFT";
    case ProtocolKind::kLinearPbft: return "Linear-PBFT";
    case ProtocolKind::kLinearPbftFast: return "Linear-PBFT+FastPath";
    case ProtocolKind::kSbft: return "SBFT";
  }
  return "?";
}

ProtocolConfig ClusterOptions::make_config() const {
  ProtocolConfig config;
  config.f = f;
  config.c = kind == ProtocolKind::kSbft ? c : 0;
  switch (kind) {
    case ProtocolKind::kPbft:
    case ProtocolKind::kLinearPbft:
      config.fast_path_enabled = false;
      config.execution_collector = false;
      break;
    case ProtocolKind::kLinearPbftFast:
      config.fast_path_enabled = true;
      config.execution_collector = false;
      break;
    case ProtocolKind::kSbft:
      config.fast_path_enabled = true;
      config.execution_collector = true;
      break;
  }
  if (tweak_config) {
    ProtocolConfig copy = config;
    tweak_config(copy);
    return copy;
  }
  return config;
}

Cluster::Cluster(ClusterOptions options)
    : opts_(std::move(options)), config_(opts_.make_config()) {
  if (opts_.topology.region_latency_us.empty()) opts_.topology = sim::lan_topology();
  if (!opts_.service_factory) {
    opts_.service_factory = [] { return std::make_unique<FastKvService>(); };
  }
  if (!opts_.op_factory) opts_.op_factory = kv_op_factory({});
  build();
}

Cluster::~Cluster() = default;

void Cluster::build() {
  net_ = std::make_unique<sim::Network>(sim_, opts_.topology, opts_.costs, opts_.seed);
  Rng key_rng(opts_.seed ^ 0x5bf7u);
  keys_ = opts_.use_real_threshold_crypto
              ? core::ClusterKeys::generate_rsa(key_rng, config_,
                                                opts_.threshold_rsa_bits)
              : core::ClusterKeys::generate(key_rng, config_);

  const uint32_t n = config_.n();
  const ReplicaId primary0 = config_.primary_of(0);

  // Fault roles are drawn first (replica behaviour is fixed at construction).
  // The view-0 primary is never selected: the paper's failure scenarios crash
  // backups, and primary failure is exercised by the view-change tests.
  Rng fault_rng(opts_.seed ^ 0xfau);
  std::vector<ReplicaId> backups;
  for (ReplicaId r = 1; r <= n; ++r) {
    if (r != primary0) backups.push_back(r);
  }
  for (size_t i = backups.size(); i > 1; --i) {
    std::swap(backups[i - 1], backups[fault_rng.below(i)]);
  }
  std::vector<core::ReplicaBehavior> behavior(n + 1, core::ReplicaBehavior::kHonest);
  std::vector<ReplicaId> to_crash;
  std::vector<ReplicaId> to_slow;
  size_t cursor = 0;
  for (uint32_t i = 0; i < opts_.crash_replicas && cursor < backups.size(); ++i) {
    to_crash.push_back(backups[cursor++]);
  }
  for (uint32_t i = 0; i < opts_.straggler_replicas && cursor < backups.size(); ++i) {
    to_slow.push_back(backups[cursor++]);
  }
  for (uint32_t i = 0; i < opts_.byzantine_replicas && cursor < backups.size(); ++i) {
    behavior[backups[cursor++]] = opts_.byzantine_behavior;
  }

  // Replicas occupy node ids 0..n-1 (replica r => node r-1).
  const bool durable = opts_.durability && opts_.kind != ProtocolKind::kPbft;
  if (durable) {
    ledgers_.resize(n);
    wals_.resize(n);
    for (uint32_t i = 0; i < n; ++i) {
      ledgers_[i] = std::make_shared<storage::MemoryLedgerStorage>();
      wals_[i] = std::make_shared<recovery::MemoryWal>();
    }
  }
  for (ReplicaId r = 1; r <= n; ++r) {
    if (opts_.kind == ProtocolKind::kPbft) {
      pbft::PbftOptions po;
      po.config = config_;
      po.id = r;
      auto replica = std::make_unique<pbft::PbftReplica>(std::move(po),
                                                         opts_.service_factory());
      NodeId node = net_->add_node(replica.get());
      SBFT_CHECK(node == r - 1);
      pbft_replicas_.push_back(std::move(replica));
    } else {
      core::ReplicaOptions ro;
      ro.config = config_;
      ro.id = r;
      ro.crypto = core::ReplicaCrypto::for_replica(keys_, r);
      ro.behavior = behavior[r];
      if (durable) {
        ro.ledger = ledgers_[r - 1];
        ro.wal = wals_[r - 1];
      }
      auto replica =
          std::make_unique<core::SbftReplica>(std::move(ro), opts_.service_factory());
      NodeId node = net_->add_node(replica.get());
      SBFT_CHECK(node == r - 1);
      sbft_replicas_.push_back(std::move(replica));
    }
  }

  // Clients occupy node ids n..n+k-1; ClientId == NodeId.
  for (uint32_t i = 0; i < opts_.num_clients; ++i) {
    core::ClientOptions co;
    co.config = config_;
    co.crypto = core::ReplicaCrypto::verifier_only(keys_);
    co.num_requests = opts_.requests_per_client;
    co.id = n + i;
    co.op_factory = opts_.per_client_op_factory ? opts_.per_client_op_factory(co.id)
                                                : opts_.op_factory;
    auto client = std::make_unique<core::SbftClient>(std::move(co));
    NodeId node = net_->add_node(client.get());
    SBFT_CHECK(node == n + i);
    clients_.push_back(std::move(client));
  }

  for (ReplicaId r : to_crash) net_->crash(r - 1);
  for (ReplicaId r : to_slow) {
    net_->set_cpu_factor(r - 1, 4.0);
    net_->set_extra_latency(r - 1, 20'000);
  }

  // Scheduled kill-and-restart scenarios (rolling restarts chain events).
  for (const ClusterOptions::RestartEvent& ev : opts_.restart_schedule) {
    SBFT_CHECK(opts_.kind != ProtocolKind::kPbft);
    ReplicaId target = ev.replica;
    if (target == 0 && cursor < backups.size()) target = backups[cursor++];
    if (target == 0) continue;  // no backup left to assign
    sim_.schedule(ev.crash_at_us, [this, target] { net_->crash(target - 1); });
    if (ev.restart_at_us > ev.crash_at_us) {
      sim_.schedule(ev.restart_at_us, [this, target, wipe = ev.wipe_storage] {
        restart_replica(target, wipe);
      });
    }
  }
}

void Cluster::restart_replica(ReplicaId r, bool wipe_storage) {
  SBFT_CHECK(!sbft_replicas_.empty());  // restart is an SBFT-variant feature
  SBFT_CHECK(net_->crashed(r - 1));
  if (ledgers_.empty()) ledgers_.resize(config_.n());
  if (wals_.empty()) wals_.resize(config_.n());
  if (wipe_storage || !ledgers_[r - 1]) {
    ledgers_[r - 1] = std::make_shared<storage::MemoryLedgerStorage>();
  }
  if (wipe_storage || !wals_[r - 1]) {
    wals_[r - 1] = std::make_shared<recovery::MemoryWal>();
  }
  core::ReplicaOptions ro;
  ro.config = config_;
  ro.id = r;
  ro.crypto = core::ReplicaCrypto::for_replica(keys_, r);
  ro.ledger = ledgers_[r - 1];
  ro.wal = wals_[r - 1];
  ro.recovering = true;
  auto replica =
      std::make_unique<core::SbftReplica>(std::move(ro), opts_.service_factory());
  net_->restart(r - 1, replica.get());
  sbft_replicas_[r - 1] = std::move(replica);
}

void Cluster::run_for(sim::SimTime sim_time_us) {
  if (!started_) {
    started_ = true;
    net_->start();
  }
  sim_.run_until(sim_.now() + sim_time_us);
}

bool Cluster::run_until_done(sim::SimTime deadline_us) {
  if (!started_) {
    started_ = true;
    net_->start();
  }
  while (sim_.now() < deadline_us) {
    bool all_done = std::all_of(clients_.begin(), clients_.end(),
                                [](const auto& c) { return c->done(); });
    if (all_done) return true;
    if (sim_.idle()) return false;  // deadlock would be a bug; surface it
    sim_.run_until(std::min(deadline_us, sim_.now() + 50'000));
  }
  return std::all_of(clients_.begin(), clients_.end(),
                     [](const auto& c) { return c->done(); });
}

core::SbftReplica* Cluster::sbft_replica(ReplicaId id) {
  if (sbft_replicas_.empty()) return nullptr;
  return sbft_replicas_.at(id - 1).get();
}

pbft::PbftReplica* Cluster::pbft_replica(ReplicaId id) {
  if (pbft_replicas_.empty()) return nullptr;
  return pbft_replicas_.at(id - 1).get();
}

SeqNum Cluster::min_executed() const {
  SeqNum lo = UINT64_MAX;
  for (ReplicaId r = 1; r <= config_.n(); ++r) {
    if (net_->crashed(r - 1)) continue;
    SeqNum le = sbft_replicas_.empty() ? pbft_replicas_[r - 1]->last_executed()
                                       : sbft_replicas_[r - 1]->last_executed();
    lo = std::min(lo, le);
  }
  return lo == UINT64_MAX ? 0 : lo;
}

SeqNum Cluster::max_executed() const {
  SeqNum hi = 0;
  for (ReplicaId r = 1; r <= config_.n(); ++r) {
    SeqNum le = sbft_replicas_.empty() ? pbft_replicas_[r - 1]->last_executed()
                                       : sbft_replicas_[r - 1]->last_executed();
    hi = std::max(hi, le);
  }
  return hi;
}

uint64_t Cluster::total_fast_commits() const {
  uint64_t total = 0;
  for (const auto& r : sbft_replicas_) total += r->stats().fast_commits;
  return total;
}

uint64_t Cluster::total_slow_commits() const {
  uint64_t total = 0;
  for (const auto& r : sbft_replicas_) total += r->stats().slow_commits;
  return total;
}

uint64_t Cluster::total_recoveries() const {
  uint64_t total = 0;
  for (const auto& r : sbft_replicas_) total += r->stats().recoveries;
  return total;
}

uint64_t Cluster::total_wal_bytes_written() const {
  // Sum over the durable handles, not the replica stats: the handle's counter
  // spans every incarnation of the replica.
  uint64_t total = 0;
  for (const auto& w : wals_) {
    if (w) total += w->bytes_written();
  }
  return total;
}

uint64_t Cluster::total_view_changes() const {
  uint64_t total = 0;
  for (const auto& r : sbft_replicas_) total += r->stats().view_changes;
  for (const auto& r : pbft_replicas_) total += r->stats().view_changes;
  return total;
}

bool Cluster::check_agreement(SeqNum* bad_seq) const {
  SeqNum hi = max_executed();
  for (SeqNum s = 1; s <= hi; ++s) {
    std::optional<Digest> expect;
    for (ReplicaId r = 1; r <= config_.n(); ++r) {
      std::optional<Digest> got =
          sbft_replicas_.empty() ? pbft_replicas_[r - 1]->committed_digest_of(s)
                                 : sbft_replicas_[r - 1]->committed_digest_of(s);
      if (!got) continue;
      if (!expect) {
        expect = got;
      } else if (!(*expect == *got)) {
        if (bad_seq) *bad_seq = s;
        return false;
      }
    }
  }
  return true;
}

}  // namespace sbft::harness
