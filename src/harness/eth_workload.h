// Ethereum-like smart-contract workload (§IX "Smart-Contract benchmark";
// DESIGN.md §3 substitution 3 for the paper's 500k-transaction mainnet trace).
//
// Each client deploys its own ERC-20-style token contract on its first
// request (contract addresses are precomputable because creation uses a
// per-sender nonce), mints itself a balance, and then issues batches of
// ~50 transfer transactions padded to ~12KB per request, with ~1% contract
// creations mixed in — matching the trace's ~5000 creations per 500k txs.
#pragma once

#include <functional>

#include "common/bytes.h"
#include "common/rng.h"
#include "evm/evm_service.h"
#include "proto/types.h"

namespace sbft::harness {

struct EthWorkloadOptions {
  uint32_t txs_per_request = 50;   // ~12KB batches
  uint32_t tx_padding_bytes = 150; // pads calldata to realistic tx sizes
  double create_fraction = 0.01;   // ~1% creations (5000 / 500k)
  uint64_t gas_limit = 400'000;
};

/// Deterministic account address for client `id`.
evm::Address eth_account_of(ClientId id);
/// Deterministic token-contract address deployed by client `id`.
evm::Address eth_token_of(ClientId id);

/// Factory compatible with ClientOptions::op_factory for client `id`.
/// Request 0 deploys the client's token and mints its balance; later
/// requests are transfer batches with occasional creations.
std::function<Bytes(uint64_t, Rng&)> eth_op_factory(ClientId id,
                                                    EthWorkloadOptions options);

}  // namespace sbft::harness
