// The PBFT baseline reuses the SBFT client: a PBFT cluster never emits
// execute-acks, so the client naturally completes through the f+1 matching
// ClientReply path — exactly the acknowledgement pattern PBFT prescribes.
// This translation unit exists to give the pbft library its own client entry
// point and a named alias.
#include "pbft/pbft_client.h"

namespace sbft::pbft {}  // namespace sbft::pbft
