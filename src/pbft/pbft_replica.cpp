#include "pbft/pbft_replica.h"

#include <algorithm>

#include "common/serde.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "runtime/snapshot.h"

namespace sbft::pbft {

namespace {
enum TimerKind : uint64_t {
  kBatchTimer = 1,
  kProgressTimer = 2,
  kStateTransferTimer = 3,
  kDonorTickTimer = 4,  // drain chunk serves the donor rate limiter deferred
  kShardTickTimer = 5,  // marker executor retry cadence (docs/sharding.md)
};
uint64_t timer_id(TimerKind kind, uint64_t payload) {
  return (static_cast<uint64_t>(kind) << 48) | payload;
}
TimerKind timer_kind(uint64_t id) { return static_cast<TimerKind>(id >> 48); }

runtime::RuntimeOptions make_runtime_options(const PbftOptions& opts) {
  runtime::RuntimeOptions ro;
  ro.checkpoint_interval = opts.config.checkpoint_interval();
  ro.ledger = opts.ledger;
  ro.wal = opts.wal;
  ro.state_transfer_chunk_size = opts.config.state_transfer_chunk_size;
  ro.state_transfer_max_chunks_per_request =
      opts.config.state_transfer_max_chunks_per_request;
  ro.state_transfer_delta_enabled = opts.config.state_transfer_delta_enabled;
  ro.state_transfer_donor_chunks_per_tick =
      opts.config.state_transfer_donor_chunks_per_tick;
  ro.state_transfer_delta_history = opts.config.state_transfer_delta_history;
  ro.self = opts.id;
  ro.tracer = opts.tracer;
  ro.marker_executor = opts.marker_executor;
  if (!opts.roster.empty()) {
    ro.membership_f = opts.roster_f > 0 ? opts.roster_f : opts.config.f;
    ro.membership_c = 0;
    ro.bootstrap_members = opts.roster;
  } else {
    ro.membership_f = opts.config.f;
    ro.membership_c = 0;
    for (ReplicaId r = 1; r <= opts.config.n(); ++r) {
      ro.bootstrap_members.push_back({r, r - 1});
    }
  }
  return ro;
}
}  // namespace

Bytes CheckpointAuth::sign(ReplicaId replica, SeqNum seq,
                          const Digest& state_root) const {
  Writer key;
  key.raw(as_span(secret_));
  key.u32(replica);
  Digest replica_key = crypto::sha256(as_span(key.data()));
  Writer msg;
  msg.str("pbft.checkpoint");
  msg.u64(seq);
  msg.digest(state_root);
  Digest mac = crypto::hmac_sha256(as_span(replica_key), as_span(msg.data()));
  return Bytes(mac.begin(), mac.end());
}

bool CheckpointAuth::verify(ReplicaId replica, SeqNum seq,
                            const Digest& state_root, ByteSpan sig) const {
  Bytes expect = sign(replica, seq, state_root);
  return sig.size() == expect.size() &&
         std::equal(sig.begin(), sig.end(), expect.begin());
}

PbftReplica::PbftReplica(PbftOptions options, std::unique_ptr<IService> service)
    : opts_(std::move(options)),
      runtime_(make_runtime_options(opts_), std::move(service)),
      trace_(opts_.tracer ? *opts_.tracer : obs::Tracer::nop()),
      metrics_(opts_.metrics ? opts_.metrics
                             : std::make_shared<obs::MetricsRegistry>()),
      h_pp_to_commit_(&metrics_->histogram("stage.pp_to_commit_us")),
      h_commit_to_exec_(&metrics_->histogram("stage.commit_to_exec_us")),
      cfg_(opts_.config) {
  SBFT_CHECK(opts_.config.c == 0);  // PBFT sizing: n = 3f + 1
  SBFT_CHECK(opts_.id >= 1 &&
             (!opts_.roster.empty() || opts_.id <= opts_.config.n()));
  recover_from_storage();
  // See the SBFT engine: a recovered non-member re-retires; only a replica
  // with no local evidence (a joiner, or a wiped removed member that will
  // retire on its first adopted epoch) keeps probing for admission.
  cfg_ = epoch().derive_config(opts_.config);
  runtime_.take_epoch_change();
  retired_ = !runtime_.membership().is_member(opts_.id) &&
             (!opts_.recovering || runtime_.stats().recoveries > 0);
}

NodeId PbftReplica::node_of(ReplicaId r) const {
  const runtime::MembershipManager& m = runtime_.membership();
  if (!m.configured()) return r - 1;
  for (auto it = m.history().rbegin(); it != m.history().rend(); ++it) {
    if (int rank = it->rank_of(r); rank >= 0) {
      return it->members[static_cast<size_t>(rank)].node;
    }
  }
  if (m.pending()) {
    for (const ReplicaInfo& add : m.pending()->delta.adds) {
      if (add.id == r) return add.node;
    }
  }
  return r - 1;
}

SeqNum PbftReplica::reconfig_gate() const {
  if (SeqNum staged = runtime_.membership().pending_activation(); staged > 0) {
    return staged;
  }
  return shadow_gate_ > le() ? shadow_gate_ : 0;
}

void PbftReplica::maybe_refresh_epoch(sim::ActorContext& ctx) {
  if (!runtime_.take_epoch_change()) return;
  cfg_ = epoch().derive_config(opts_.config);
  shadow_gate_ = 0;
  if (!runtime_.membership().is_member(opts_.id)) {
    retired_ = true;
    trace_.instant(ctx.now(), obs::Category::kReconfig, obs::ev::kEpochRetired,
                   0, 0, 0, "epoch", epoch().epoch);
    in_view_change_ = false;
    pending_.clear();
    pending_keys_.clear();
    return;
  }
  retired_ = false;
  if (is_primary()) {
    ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
    try_propose(ctx);
  }
}

void PbftReplica::recover_from_storage() {
  auto recovered = runtime_.recover();
  if (!recovered) return;  // fresh storage, or snapshot failed verification

  view_ = recovered->view;
  vc_target_ = view_;
  progress_marker_ = le();
  next_seq_ = recovered->install_votes(wal_votes_, le() + 1);
  recovered_replay_bytes_ = recovered->replayed_bytes;
}

void PbftReplica::on_start(sim::ActorContext& ctx) {
  // Boot-time replay cost: reading the ledger suffix back and re-executing it
  // is charged like the sequential I/O that produced it.
  if (recovered_replay_bytes_ > 0) {
    ctx.charge(ctx.costs().persist_us(recovered_replay_bytes_));
  }
  if (is_primary()) {
    ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
  }
  if (opts_.marker_executor != nullptr &&
      opts_.marker_executor->tick_interval_us() > 0) {
    ctx.set_timer(opts_.marker_executor->tick_interval_us(),
                  timer_id(kShardTickTimer, 0));
  }
  // Recovery replay may have re-run shard decisions whose results the
  // outside world never saw (crash between execute and send): flush them.
  pump_marker_executor(ctx);
  // A restarted replica may have slept through checkpoints (or lost its disk
  // entirely): probe a peer for a newer stable checkpoint right away.
  if (opts_.recovering) request_state_transfer(ctx);
}

PbftStats PbftReplica::stats() const {
  PbftStats merged = stats_;
  // The protocol-agnostic counters live in the runtime; the base subobject of
  // stats_ stays zero, so slicing the runtime's copy in is a plain overwrite.
  static_cast<runtime::RuntimeStats&>(merged) = runtime_.stats();
  return merged;
}

std::optional<Digest> PbftReplica::committed_digest_of(SeqNum s) const {
  auto it = slots_.find(s);
  if (it != slots_.end() && it->second.committed) return it->second.block_digest;
  if (const runtime::ExecutionRecord* rec = runtime_.record(s)) {
    return rec->block.digest();
  }
  return std::nullopt;
}

void PbftReplica::broadcast(sim::ActorContext& ctx, MessagePtr msg) {
  for (const ReplicaInfo& m : epoch().members) ctx.send(m.node, msg);
}

void PbftReplica::arm_progress_timer(sim::ActorContext& ctx) {
  if (progress_timer_armed_) return;
  progress_timer_armed_ = true;
  int64_t backoff = opts_.config.view_change_timeout_us
                    << std::min<uint32_t>(vc_attempts_, 6);
  ctx.set_timer(backoff, timer_id(kProgressTimer, 0));
}

void PbftReplica::on_message(NodeId from, const Message& msg, sim::ActorContext& ctx) {
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, ClientRequestMsg>) {
          handle_client_request(from, m, ctx);
        } else if constexpr (std::is_same_v<T, PrePrepareMsg>) {
          handle_pre_prepare(from, m, ctx);
        } else if constexpr (std::is_same_v<T, PbftPrepareMsg>) {
          handle_prepare(m, ctx);
        } else if constexpr (std::is_same_v<T, PbftCommitMsg>) {
          handle_commit(m, ctx);
        } else if constexpr (std::is_same_v<T, PbftCheckpointMsg>) {
          handle_checkpoint(m, ctx);
        } else if constexpr (std::is_same_v<T, PbftViewChangeMsg>) {
          handle_view_change(m, ctx);
        } else if constexpr (std::is_same_v<T, PbftNewViewMsg>) {
          handle_new_view(from, m, ctx);
        } else if constexpr (std::is_same_v<T, StateTransferRequestMsg>) {
          handle_state_transfer_request(from, m, ctx);
        } else if constexpr (std::is_same_v<T, StateTransferReplyMsg>) {
          handle_state_transfer_reply(m, ctx);
        } else if constexpr (std::is_same_v<T, StateManifestMsg>) {
          handle_state_manifest(from, m, ctx);
        } else if constexpr (std::is_same_v<T, StateChunkRequestMsg>) {
          handle_state_chunk_request(from, m, ctx);
        } else if constexpr (std::is_same_v<T, StateChunkMsg>) {
          handle_state_chunk(from, m, ctx);
        } else if constexpr (std::is_same_v<T, ReconfigBlockMsg>) {
          handle_reconfig_block(m, ctx);
        } else if constexpr (std::is_same_v<T, TxVoteMsg> ||
                             std::is_same_v<T, TxDecisionMsg>) {
          // Cross-shard 2PC traffic belongs to the marker executor; the pump
          // below relays its responses and stages decision markers.
          if (opts_.marker_executor != nullptr) {
            opts_.marker_executor->on_network(from, msg, ctx.now());
          }
        }
      },
      msg);
  pump_marker_executor(ctx);
}

void PbftReplica::on_timer(uint64_t id, sim::ActorContext& ctx) {
  switch (timer_kind(id)) {
    case kBatchTimer: {
      if (is_primary() && !in_view_change_) try_propose(ctx, /*flush_partial=*/true);
      if (is_primary()) {
        ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
      }
      break;
    }
    case kProgressTimer: {
      progress_timer_armed_ = false;
      bool outstanding = !pending_.empty() || forwarded_waiting_ ||
                         (!slots_.empty() && slots_.rbegin()->first > le()) ||
                         in_view_change_;
      if (le() > progress_marker_) {
        progress_marker_ = le();
        forwarded_waiting_ = false;
        if (outstanding) arm_progress_timer(ctx);
        break;
      }
      // If f+1 checkpoint votes prove the cluster executed past us, the
      // stall is not the primary's fault — we missed (or are dropping, if a
      // view change is pending) the traffic for slots a quorum already
      // garbage-collected. Fetch the checkpoint; escalating the view change
      // alone cannot recover the gap (schedule fuzzer, seed 91).
      if (outstanding && checkpoint_evidence_frontier() > le()) {
        request_state_transfer(ctx);
      }
      if (outstanding) start_view_change(std::max(view_, vc_target_) + 1, ctx);
      break;
    }
    case kStateTransferTimer: {
      runtime::StateTransferManager& st = runtime_.state_transfer();
      if (st.chunked()) {
        // Single retry loop; the stop/probe decisions live in the manager,
        // shared with the SBFT engine.
        auto tick = st.on_retry_tick(le(), state_transfer_behind(), runtime_.stats());
        if (tick.stop) {
          st_inflight_ = false;
          if (st_span_open_ && !state_transfer_behind()) {
            st_span_open_ = false;
            trace_.end(ctx.now(), obs::Category::kStateTransfer,
                       obs::ev::kStateTransfer, st_session_, le());
          }
          // The fetch that just ended may have become moot for its *target*
          // while the replica fell behind a newer checkpoint (the cluster
          // moved on mid-fetch): start over, like the legacy path below.
          if (state_transfer_behind()) request_state_transfer(ctx);
          break;
        }
        if (tick.probe) {
          broadcast_state_probe(ctx);
        } else {
          trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                         obs::ev::kStResume, st_session_, le());
        }
        send_chunk_requests(ctx);
        ctx.set_timer(opts_.config.state_transfer_retry_us,
                      timer_id(kStateTransferTimer, 0));
        break;
      }
      st_inflight_ = false;
      if (st_span_open_ && !state_transfer_behind()) {
        st_span_open_ = false;
        trace_.end(ctx.now(), obs::Category::kStateTransfer,
                   obs::ev::kStateTransfer, st_session_, le());
      }
      // Retry while a true gap persists — or while a wiped/restarted replica
      // has yet to obtain any checkpoint (its boot probe may have picked a
      // peer with nothing to ship).
      if (state_transfer_behind()) request_state_transfer(ctx);
      break;
    }
    case kDonorTickTimer: {
      donor_tick_armed_ = false;
      runtime::StateTransferManager& st = runtime_.state_transfer();
      for (auto& [node, chunk] : st.on_donor_tick(
               runtime_.checkpoints(), opts_.id, runtime_.stats())) {
        ctx.charge(ctx.costs().hash_us(chunk.data.size()));
        if (opts_.corrupt_state_chunks && !chunk.data.empty()) {
          chunk.data[0] ^= 0xff;
        }
        ctx.send(node, make_message(std::move(chunk)));
      }
      arm_donor_tick(ctx);
      break;
    }
    case kShardTickTimer: {
      if (opts_.marker_executor != nullptr) {
        opts_.marker_executor->on_tick(ctx.now());
        ctx.set_timer(opts_.marker_executor->tick_interval_us(),
                      timer_id(kShardTickTimer, 0));
      }
      break;
    }
  }
  pump_marker_executor(ctx);
}

// ---------------------------------------------------------------------------
// Normal case

void PbftReplica::handle_client_request(NodeId from, const ClientRequestMsg& m,
                                        sim::ActorContext& ctx) {
  const Request& req = m.request;
  // Reserved marker ids: reconfiguration blocks and shard 2PC decisions are
  // built internally, never accepted from the wire as client requests.
  if (req.client == kReconfigClient || req.client == kShardTxClient) return;
  // Request signature verification runs on a worker lane when available;
  // admission continues serially in the completion.
  ctx.offload(ctx.costs().rsa_verify_us,
              [this, from, req](sim::ActorContext& c) {
                admit_client_request(from, req, c);
              });
}

void PbftReplica::admit_client_request(NodeId from, const Request& req,
                                       sim::ActorContext& ctx) {
  if (const runtime::CachedReply* cached =
          runtime_.cached_reply(req.client, req.timestamp)) {
    ClientReplyMsg reply;
    reply.replica = opts_.id;
    reply.client = req.client;
    reply.timestamp = cached->timestamp;
    reply.seq = cached->seq;
    reply.value = cached->value;
    trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kReplyCached, 0,
                   cached->seq, 0, "client", req.client);
    ctx.send(req.client, make_message(std::move(reply)));
    return;
  }
  if (retired_) return;  // drained: serves caches only, never orders
  if (is_primary() && !in_view_change_) {
    auto key = std::make_pair(req.client, req.timestamp);
    if (pending_keys_.insert(key).second) {
      pending_.push_back(req);
      trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kRequestAdmitted,
                     0, 0, view_, "client", req.client);
    }
    try_propose(ctx);
  } else if (from == req.client) {
    ctx.send(node_of(epoch().primary_of(view_)),
             make_message(ClientRequestMsg{req}));
    forwarded_waiting_ = true;
    arm_progress_timer(ctx);
  }
}

void PbftReplica::handle_reconfig_block(const ReconfigBlockMsg& m,
                                        sim::ActorContext& ctx) {
  // Administrative channel (docs/reconfiguration.md): ordered as a marker
  // request; validation repeats deterministically at execution.
  if (retired_ || !is_primary() || in_view_change_) return;
  auto key = std::make_pair(kReconfigClient, m.nonce);
  if (pending_keys_.insert(key).second) {
    pending_.push_back(make_reconfig_request(m.delta, m.nonce));
  }
  try_propose(ctx, /*flush_partial=*/true);
}

void PbftReplica::pump_marker_executor(sim::ActorContext& ctx) {
  runtime::IMarkerExecutor* ex = opts_.marker_executor;
  if (ex == nullptr) return;
  // Relay whatever the executor queued while handling ordered markers or
  // cross-group messages (votes, decision broadcasts, client results).
  for (auto& [node, msg] : ex->take_outbound()) ctx.send(node, std::move(msg));
  // Decision markers the executor wants ordered go through the primary's
  // pending queue like reconfiguration blocks; on a backup they are dropped
  // here and re-staged by the executor's tick (possibly under a new primary).
  if (retired_ || !is_primary() || in_view_change_) {
    ex->take_marker_requests();
    return;
  }
  bool queued = false;
  for (Request& req : ex->take_marker_requests()) {
    auto key = std::make_pair(req.client, req.timestamp);
    if (pending_keys_.insert(key).second) {
      pending_.push_back(std::move(req));
      queued = true;
    }
  }
  if (queued) try_propose(ctx, /*flush_partial=*/true);
}

uint32_t PbftReplica::adaptive_batch_size() const {
  if (!opts_.config.adaptive_batching) return opts_.config.max_batch;
  // Same controller as SBFT (§VIII): EWMA of outstanding demand (queued +
  // proposed-but-unexecuted requests). Unlike SBFT, blocks absorb the whole
  // estimate: PBFT pays O(n^2) messages per block, so fuller-but-fewer
  // blocks beat pipelining two half-size ones.
  uint64_t size = static_cast<uint64_t>(avg_pending_) + 1;
  return static_cast<uint32_t>(
      std::clamp<uint64_t>(size, 1, opts_.config.max_batch));
}

void PbftReplica::try_propose(sim::ActorContext& ctx, bool flush_partial) {
  if (!is_primary() || in_view_change_ || retired_) return;
  uint64_t in_flight_reqs = 0;
  for (auto it = slots_.upper_bound(le());
       it != slots_.end() && it->first < next_seq_; ++it) {
    if (it->second.block) in_flight_reqs += it->second.block->requests.size();
  }
  avg_pending_ = 0.8 * avg_pending_ +
                 0.2 * static_cast<double>(pending_.size() + in_flight_reqs);
  const uint64_t window = std::max<uint64_t>(1, opts_.config.win / 4);
  while (!pending_.empty()) {
    const Request& head = pending_.front();
    if (runtime_.replies().is_duplicate(head.client, head.timestamp)) {
      pending_keys_.erase({head.client, head.timestamp});
      pending_.pop_front();
      continue;
    }
    if (next_seq_ - 1 - le() >= window) return;
    if (next_seq_ > ls() + opts_.config.win) return;
    // Reconfiguration wedge: slots beyond a pending activation boundary wait
    // for the new epoch (docs/reconfiguration.md).
    if (SeqNum gate = reconfig_gate(); gate > 0 && next_seq_ > gate) return;
    // Batching: the adaptive `batch` value is the *minimum* operations per
    // block (§VIII); partial blocks only leave on the batch timer.
    const uint32_t want = adaptive_batch_size();
    if (pending_.size() < want && !flush_partial) return;
    Block block;
    while (!pending_.empty() && block.requests.size() < want) {
      Request r = std::move(pending_.front());
      pending_.pop_front();
      pending_keys_.erase({r.client, r.timestamp});
      block.requests.push_back(std::move(r));
    }
    SeqNum s = next_seq_++;
    ctx.charge(ctx.costs().hash_us(block.wire_size()) + ctx.costs().rsa_sign_us);
    broadcast(ctx, make_message(PrePrepareMsg{s, view_, std::move(block)}));
  }

  // Primary-driven no-op fill (docs/reconfiguration.md): a staged
  // reconfiguration activates only when the checkpoint at its boundary
  // becomes stable, which needs the boundary slot to commit. With no client
  // traffic the batch timer fills the remaining slots with empty blocks.
  if (flush_partial && pending_.empty()) {
    SeqNum gate = reconfig_gate();
    while (gate > 0 && next_seq_ <= gate && next_seq_ - 1 - le() < window &&
           next_seq_ <= ls() + opts_.config.win) {
      Block block;
      SeqNum s = next_seq_++;
      ++stats_.noop_fill_blocks;
      ctx.charge(ctx.costs().hash_us(block.wire_size()) + ctx.costs().rsa_sign_us);
      broadcast(ctx, make_message(PrePrepareMsg{s, view_, std::move(block)}));
    }
  }
}

void PbftReplica::handle_pre_prepare(NodeId from, const PrePrepareMsg& m,
                                     sim::ActorContext& ctx) {
  if (in_view_change_ || m.view != view_ || retired_) return;
  // Slot-scoped proposer check: the slot's epoch elects its primary
  // (lint:epoch_math), even though the window+wedge guards below keep every
  // admitted seq inside the live epoch.
  if (from != node_of(epoch_for_seq(m.seq).primary_of(m.view))) return;
  if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
  if (SeqNum gate = reconfig_gate(); gate > 0 && m.seq > gate) return;
  Slot& sl = slots_[m.seq];
  if (sl.has_pp && sl.pp_view >= m.view) return;
  // Verify the primary's signature and every client request signature on a
  // worker lane; acceptance (WAL vote, prepare broadcast) continues serially.
  // The entry guards re-run in the completion.
  int64_t cost = ctx.costs().rsa_verify_us *
                 static_cast<int64_t>(1 + m.block.requests.size());
  ctx.offload(cost, [this, seq = m.seq, v = m.view,
                     block = m.block](sim::ActorContext& c) mutable {
    if (in_view_change_ || v != view_ || retired_) return;
    if (seq <= ls() || seq > ls() + opts_.config.win) return;
    if (SeqNum gate = reconfig_gate(); gate > 0 && seq > gate) return;
    accept_pre_prepare(seq, v, std::move(block), c);
  });
}

void PbftReplica::accept_pre_prepare(SeqNum s, ViewNum v, Block block,
                                     sim::ActorContext& ctx) {
  if (retired_) return;
  // Only members of the slot's epoch vote (a joiner hears the enlarged
  // cluster's broadcasts before it has adopted the epoch that admits it).
  if (!epoch_for_seq(s).contains(opts_.id)) return;
  Slot& sl = slots_[s];
  Digest digest = block.digest();
  // Shadow of the activation boundary (see the SBFT engine): slots beyond a
  // marker-bearing block wait until the marker executes and stages.
  for (const Request& req : block.requests) {
    if (decode_reconfig_request(req)) {
      uint64_t interval = opts_.config.checkpoint_interval();
      SeqNum boundary = (s + interval - 1) / interval * interval;
      shadow_gate_ = std::max(shadow_gate_, boundary);
    }
  }
  // Anti-equivocation across restarts: a previous incarnation's persisted
  // vote at this (or a later) view binds this one to the same digest.
  if (auto wv = wal_votes_.find(s);
      wv != wal_votes_.end() && wv->second.first >= v &&
      !(wv->second.second == digest)) {
    return;
  }
  // Write-ahead contract: the vote is durable before the prepare leaves.
  runtime_.wal_record_vote(s, v, digest);
  sl.has_pp = true;
  sl.pp_view = v;
  sl.block_digest = digest;
  sl.h = slot_hash(s, v, sl.block_digest);
  sl.block = std::move(block);
  sl.pp_time = ctx.now();
  // Slot span id folds the view in: re-accepting the slot at a higher view
  // (after a view change) opens a fresh span rather than reusing the old id.
  trace_.begin(ctx.now(), obs::Category::kSlot, obs::ev::kSlot, (v << 32) | s,
               s, v);
  ctx.charge(ctx.costs().hash_us(64));

  if (!sl.sent_prepare) {
    sl.sent_prepare = true;
    sl.prepares.insert(opts_.id);
    ctx.charge(ctx.costs().rsa_sign_us);  // sign once, broadcast copies
    broadcast(ctx, make_message(PbftPrepareMsg{s, v, sl.h, opts_.id}));
  }
  arm_progress_timer(ctx);
  check_prepared(s, ctx);
}

void PbftReplica::handle_prepare(const PbftPrepareMsg& m, sim::ActorContext& ctx) {
  if (in_view_change_ || m.view != view_ || retired_) return;
  if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
  if (!epoch_for_seq(m.seq).contains(m.replica)) return;
  // The all-to-all quadratic verification cost — the offload is what lets a
  // multi-core PBFT replica absorb 3f+1 prepares per slot in parallel.
  ctx.offload(ctx.costs().rsa_verify_us, [this, m](sim::ActorContext& c) {
    if (in_view_change_ || m.view != view_ || retired_) return;
    if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
    Slot& sl = slots_[m.seq];
    if (sl.has_pp && !(m.h == sl.h)) return;
    sl.prepares.insert(m.replica);
    check_prepared(m.seq, c);
  });
}

void PbftReplica::check_prepared(SeqNum s, sim::ActorContext& ctx) {
  Slot& sl = slots_[s];
  if (sl.prepared || !sl.has_pp) return;
  if (sl.prepares.size() < epoch_for_seq(s).slow_quorum()) return;  // 2f+1
  sl.prepared = true;
  // Runtime evidence layer (shared with SBFT): a PBFT view change re-ships
  // the prepared certificate's block, so the record carries it.
  runtime_.evidence().record_prepared(s, sl.pp_view, sl.h, /*sig=*/{},
                                      sl.block);
  trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kPrepareFormed,
                 (sl.pp_view << 32) | s, s, sl.pp_view, "prepares",
                 sl.prepares.size());
  if (!sl.sent_commit) {
    sl.sent_commit = true;
    sl.commits.insert(opts_.id);
    ctx.charge(ctx.costs().rsa_sign_us);
    broadcast(ctx, make_message(PbftCommitMsg{s, sl.pp_view, sl.h, opts_.id}));
  }
  check_committed(s, ctx);
}

void PbftReplica::handle_commit(const PbftCommitMsg& m, sim::ActorContext& ctx) {
  if (in_view_change_ || m.view != view_ || retired_) return;
  if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
  if (!epoch_for_seq(m.seq).contains(m.replica)) return;
  ctx.offload(ctx.costs().rsa_verify_us, [this, m](sim::ActorContext& c) {
    if (in_view_change_ || m.view != view_ || retired_) return;
    if (m.seq <= ls() || m.seq > ls() + opts_.config.win) return;
    Slot& sl = slots_[m.seq];
    if (sl.has_pp && !(m.h == sl.h)) return;
    sl.commits.insert(m.replica);
    check_committed(m.seq, c);
  });
}

void PbftReplica::check_committed(SeqNum s, sim::ActorContext& ctx) {
  Slot& sl = slots_[s];
  if (sl.committed || !sl.prepared) return;
  if (sl.commits.size() < epoch_for_seq(s).slow_quorum()) return;  // 2f+1
  sl.committed = true;
  sl.commit_time = ctx.now();
  if (sl.pp_time > 0) h_pp_to_commit_->record(ctx.now() - sl.pp_time);
  // PBFT's three-phase commit is the slow path by construction.
  trace_.instant(ctx.now(), obs::Category::kSlot, obs::ev::kCommitSlow,
                 (sl.pp_view << 32) | s, s, sl.pp_view, "digest",
                 obs::digest_prefix(sl.block_digest.data()));
  try_execute(ctx);
}

void PbftReplica::try_execute(sim::ActorContext& ctx) {
  for (;;) {
    SeqNum s = le() + 1;
    auto it = slots_.find(s);
    if (it == slots_.end() || !it->second.committed || !it->second.block) return;
    Slot& sl = it->second;
    // The runtime executes the block (dedup through the reply cache),
    // persists it, and captures the checkpoint snapshot at interval
    // multiples.
    runtime::ExecutionRecord& rec =
        runtime_.execute_block(s, sl.pp_view, *sl.block, ctx);
    if (sl.commit_time > 0) h_commit_to_exec_->record(ctx.now() - sl.commit_time);
    trace_.end(ctx.now(), obs::Category::kSlot, obs::ev::kSlot,
               (sl.pp_view << 32) | s, s, sl.pp_view);
    for (size_t l = 0; l < rec.block.requests.size(); ++l) {
      const Request& req = rec.block.requests[l];
      ClientReplyMsg reply;
      reply.replica = opts_.id;
      reply.client = req.client;
      reply.timestamp = req.timestamp;
      reply.seq = s;
      reply.value = rec.values[l];
      ctx.charge(ctx.costs().rsa_sign_us / 4);  // replies signed, amortized batch
      ctx.send(req.client, make_message(std::move(reply)));
    }

    // Quadratic PBFT checkpoint protocol (§V-F contrasts against this). The
    // vote carries this replica's checkpoint signature — f+1 of them form
    // the weak certificate state transfer ships, and donors attach up to
    // 2f+1 when available (docs/reconfiguration.md).
    if (s % opts_.config.checkpoint_interval() == 0) {
      ctx.charge(ctx.costs().rsa_sign_us);
      PbftCheckpointMsg ckpt{s, rec.cert.state_root, opts_.id, {}};
      if (opts_.checkpoint_auth) {
        ckpt.sig = opts_.checkpoint_auth->sign(opts_.id, s, rec.cert.state_root);
      }
      broadcast(ctx, make_message(std::move(ckpt)));
    }
  }
}

/// A true execution gap: the replica cannot execute its next sequence from
/// the slots it holds, while evidence exists that the cluster moved past it.
///
/// Two shapes qualify. No pre-prepare for the next sequence while later
/// slots exist: those blocks were delivered while this replica was away and
/// will never be re-sent — only a newer checkpoint can close the gap. (A
/// merely *lagging* replica, whose next slot is present but not yet
/// committed, needs no state transfer.)
///
/// Or an *uncommitted pre-prepare from an older view* for the next sequence:
/// prepares and commits are matched against the current view, and a
/// new-view that re-chose the slot would have replaced pp_view via the
/// normal acceptance path, so a stale pp can never complete — it is as good
/// as missing, with no "later slots" requirement (the checkpoint evidence
/// that gates the state-transfer triggers is itself the proof that the
/// cluster moved on). Found by the schedule fuzzer (seed 91): the old
/// primary, stranded by a partition and then by a solo view change, kept
/// its own dead view-0 pre-prepare as its *only* slot past le(), which
/// defeated every checkpoint-evidence state-transfer trigger forever.
bool PbftReplica::execution_gap() const {
  if (slots_.empty()) return false;
  auto next = slots_.find(le() + 1);
  if (next != slots_.end() && next->second.has_pp) {
    return !next->second.committed && next->second.pp_view < view_;
  }
  return slots_.rbegin()->first > le() + 1;
}

SeqNum PbftReplica::checkpoint_evidence_frontier() const {
  SeqNum best = 0;
  for (const auto& [seq, digests] : checkpoint_votes_) {
    for (const auto& [digest, votes] : digests) {
      if (votes.size() >= epoch_for_seq(seq).exec_quorum()) {
        best = std::max(best, seq);
        break;
      }
    }
  }
  return best;
}

void PbftReplica::handle_checkpoint(const PbftCheckpointMsg& m, sim::ActorContext& ctx) {
  // Votes for the *current* stable checkpoint keep accumulating (f+1 make it
  // stable and servable; donors still like to ship up to 2f+1 shares); only
  // strictly older ones are dropped.
  if (m.seq < ls()) return;
  if (!epoch_for_seq(m.seq).contains(m.replica)) return;
  ctx.offload(ctx.costs().rsa_verify_us, [this, m](sim::ActorContext& c) {
    handle_checkpoint_verified(m, c);
  });
}

void PbftReplica::handle_checkpoint_verified(const PbftCheckpointMsg& m,
                                             sim::ActorContext& ctx) {
  if (m.seq < ls()) return;  // stability may have advanced mid-verification
  // A signature that fails verification never enters the vote set — the
  // checkpoint protocol itself is hardened, not just state transfer.
  if (opts_.checkpoint_auth &&
      !opts_.checkpoint_auth->verify(m.replica, m.seq, m.state_digest,
                                     as_span(m.sig))) {
    return;
  }
  auto& votes = checkpoint_votes_[m.seq][m.state_digest];
  votes.emplace(m.replica, m.sig);
  if (m.seq == ls()) return;  // already stable: certificate material only
  if (votes.size() < epoch_for_seq(m.seq).exec_quorum()) return;  // f+1
  if (m.seq > le()) {
    // A stable checkpoint exists beyond what we executed. If we truly slept
    // through the missing blocks (restart, partition), catch up via state
    // transfer; if we merely lag with the slots in hand, just execute.
    // Three silent-sleep shapes need the extra triggers (schedule fuzzer,
    // seeds 5 and 91): an *empty* slot map (a replica that adopted a
    // checkpoint far behind the live frontier drops every current
    // pre-prepare as out-of-window); a stable checkpoint a full window past
    // le() — by then the quorum has garbage-collected the votes for our next
    // slot, so a pre-prepare we hold without its prepares will never
    // complete; and a *pending view change* — while it lasts this replica
    // drops prepares and commits, so the slots in hand cannot complete
    // either, and checkpoint evidence arriving now means a quorum is
    // executing in a view we left (a solo view change nobody joins wedges
    // forever otherwise).
    if (execution_gap() || slots_.empty() || in_view_change_ ||
        m.seq > le() + opts_.config.win) {
      request_state_transfer(ctx);
    }
    return;
  }
  // Advance through the runtime: promotes the snapshot captured when m.seq
  // executed, persists the checkpoint to the WAL, GCs execution records.
  if (const runtime::ExecutionRecord* rec = runtime_.record(m.seq)) {
    runtime_.advance_stable(rec->cert, ctx);
    maybe_refresh_epoch(ctx);
  }
  slots_.erase(slots_.begin(), slots_.lower_bound(ls() + 1));
  runtime_.evidence().gc_through(ls());
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.lower_bound(ls()));
}

// ---------------------------------------------------------------------------
// State transfer (checkpoint shipping; crash-fault trust model, see header;
// chunked protocol spec in docs/state_transfer.md)

bool PbftReplica::state_transfer_behind() const {
  return execution_gap() || (opts_.recovering && le() == 0 && ls() == 0) ||
         (!retired_ && !runtime_.membership().is_member(opts_.id));
}

std::vector<CheckpointSigShare> PbftReplica::checkpoint_proof_for(
    const ExecCertificate& cert) const {
  std::vector<CheckpointSigShare> proof;
  if (!opts_.checkpoint_auth) return proof;
  const runtime::MembershipEpoch& e = epoch_for_seq(cert.seq);
  // A weak certificate (f+1 distinct voters, PBFT §state transfer) is what a
  // fetcher needs; ship the full 2f+1 when available, but do not refuse to
  // serve below it — a checkpoint can legitimately stabilize inside a group
  // of exactly f+1 executors while the rest of the cluster is partitioned or
  // crashed, and then 2f+1 matching votes never exist at all (schedule
  // fuzzer, seed 91: frontier 16 was only ever executed by 4 of 7 replicas
  // with f=2, so donors holding 4 shares starved every fetcher forever).
  uint32_t floor = e.exec_quorum();
  uint32_t want = 2 * e.f + 1;
  auto seq_it = checkpoint_votes_.find(cert.seq);
  if (seq_it != checkpoint_votes_.end()) {
    if (auto digest_it = seq_it->second.find(cert.state_root);
        digest_it != seq_it->second.end() && digest_it->second.size() >= floor) {
      for (const auto& [replica, sig] : digest_it->second) {
        proof.push_back({replica, sig});
        if (proof.size() == want) break;
      }
      return proof;
    }
  }
  // No own votes (checkpoint adopted via state transfer): re-serve the proof
  // that vouched for it to us.
  if (cert.seq == adopted_proof_seq_ && cert.state_root == adopted_proof_root_) {
    return adopted_proof_;
  }
  return proof;
}

bool PbftReplica::verify_checkpoint_proof(
    const ExecCertificate& cert, const std::vector<CheckpointSigShare>& proof,
    sim::ActorContext& ctx) {
  if (!opts_.config.pbft_verify_checkpoint_certs || !opts_.checkpoint_auth) {
    return true;  // trust-the-channel mode (the pre-certificate behaviour)
  }
  const runtime::MembershipEpoch& e = epoch_for_seq(cert.seq);
  // PBFT's weak-certificate rule covers exactly this adoption decision: f+1
  // distinct shares contain at least one honest voucher, and that honest
  // replica only voted after executing the committed prefix the checkpoint
  // summarizes (the snapshot itself is still verified against the
  // certificate's state root chunk by chunk). Demanding the full 2f+1 here
  // is stronger than the stability rule the protocol itself runs on (f+1
  // votes advance ls()) and deadlocks in two fuzzer-found shapes: a wiped
  // fetcher whose boot roster outgrew the epoch that stabilized the
  // checkpoint (seed 5 — the old epoch's 2f+1 can be smaller than the boot
  // roster's), and a frontier only ever executed by an f+1-sized fragment
  // of the cluster, where 2f+1 matching votes never come to exist (seed 91).
  uint32_t need = e.exec_quorum();
  ctx.charge(ctx.costs().rsa_verify_us * static_cast<int64_t>(proof.size()));
  std::set<ReplicaId> valid;
  for (const CheckpointSigShare& s : proof) {
    if (!e.contains(s.replica) || valid.count(s.replica)) continue;
    if (opts_.checkpoint_auth->verify(s.replica, cert.seq, cert.state_root,
                                      as_span(s.sig))) {
      valid.insert(s.replica);
      if (valid.size() >= need) {
        // Remember the newest verified proof: if this replica ends up
        // adopting the checkpoint it holds no votes of its own, and this is
        // what it re-serves as a donor (checkpoint_proof_for).
        if (cert.seq >= adopted_proof_seq_) {
          adopted_proof_seq_ = cert.seq;
          adopted_proof_root_ = cert.state_root;
          adopted_proof_ = proof;
        }
        return true;
      }
    }
  }
  ++stats_.checkpoint_certs_rejected;
  trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                 obs::ev::kStCertRejected, st_session_, cert.seq, 0, "valid_sigs",
                 valid.size());
  return false;
}

void PbftReplica::request_state_transfer(sim::ActorContext& ctx) {
  if (retired_) return;  // drained: serves state, never fetches newer state
  runtime::StateTransferManager& st = runtime_.state_transfer();
  if (st.chunked()) {
    if (st.active()) return;  // a fetch round is already running
    ++runtime_.stats().state_transfers;
    if (!st_span_open_) {
      st_span_open_ = true;
      trace_.begin(ctx.now(), obs::Category::kStateTransfer,
                   obs::ev::kStateTransfer, ++st_session_, le());
    }
    broadcast_state_probe(ctx);
    if (!st_inflight_) {
      st_inflight_ = true;  // retry timer armed
      ctx.set_timer(opts_.config.state_transfer_retry_us,
                    timer_id(kStateTransferTimer, 0));
    }
    return;
  }
  if (st_inflight_) return;
  st_inflight_ = true;
  ++runtime_.stats().state_transfers;
  if (!st_span_open_) {
    st_span_open_ = true;
    trace_.begin(ctx.now(), obs::Category::kStateTransfer,
                 obs::ev::kStateTransfer, ++st_session_, le());
  }
  // Ask a pseudo-random member; retry rotates the choice.
  const auto& members = epoch().members;
  ReplicaId peer = members[ctx.rng().below(members.size())].id;
  if (peer == opts_.id) {
    peer = members[(epoch().rank_of(peer) + 1) % members.size()].id;
  }
  StateTransferRequestMsg req;
  req.requester = opts_.id;
  req.have_seq = le();
  ctx.send(node_of(peer), make_message(std::move(req)));
  ctx.set_timer(opts_.config.view_change_timeout_us,
                timer_id(kStateTransferTimer, 0));
}

std::optional<StateManifestMsg> PbftReplica::fabricate_manifest(
    const StateTransferRequestMsg& probe, sim::ActorContext& ctx) {
  // Build (once) a self-consistent but invented checkpoint: a fresh service
  // with a divergent history, its envelope, and a certificate whose state
  // root genuinely matches — the fabrication the quorum checkpoint
  // certificate exists to defeat. Advertised well ahead of the cluster so a
  // trusting fetcher always retargets onto it.
  uint64_t interval = opts_.config.checkpoint_interval();
  if (fake_envelope_.empty()) {
    auto evil = runtime_.service().clone_empty();
    evil->set_snapshot_chunk_hint(opts_.config.state_transfer_chunk_size);
    evil->execute(as_span(to_bytes("fabricated-history")));
    fake_cert_.seq = ((ls() + probe.have_seq) / interval + 64) * interval;
    fake_cert_.state_root = evil->state_digest();
    fake_cert_.ops_root = empty_ops_root();
    fake_cert_.prev_exec_digest = genesis_exec_digest();
    fake_envelope_ = runtime::encode_checkpoint_snapshot(
        as_span(evil->snapshot()), runtime::ReplyCache{},
        opts_.config.state_transfer_chunk_size,
        as_span(runtime_.membership().encode()));
    fake_chunks_ = std::make_unique<runtime::ChunkedSnapshot>(
        as_span(fake_envelope_), opts_.config.state_transfer_chunk_size);
    ctx.charge(ctx.costs().hash_us(fake_envelope_.size()));
  }
  if (fake_cert_.seq <= probe.have_seq) return std::nullopt;
  StateManifestMsg m;
  m.donor = opts_.id;
  m.seq = fake_cert_.seq;
  m.cert = fake_cert_;
  m.chunk_root = fake_chunks_->chunk_root();
  m.chunk_count = fake_chunks_->chunk_count();
  m.chunk_size = fake_chunks_->chunk_size();
  m.total_bytes = fake_chunks_->total_bytes();
  // The best forgery available: its own signature. 1 < f+1 (the
  // weak-certificate floor), which is the entire point of the certificate.
  if (opts_.checkpoint_auth) {
    m.checkpoint_proof.push_back(
        {opts_.id, opts_.checkpoint_auth->sign(opts_.id, fake_cert_.seq,
                                               fake_cert_.state_root)});
  }
  return m;
}

void PbftReplica::handle_state_transfer_request(NodeId from,
                                                const StateTransferRequestMsg& m,
                                                sim::ActorContext& ctx) {
  // Ship the consistent (certificate, snapshot) pair captured when the
  // checkpoint executed. No pi signature here — the weak checkpoint
  // certificate (f+1 distinct CheckpointSigShares, up to 2f+1 shipped) is
  // what vouches for the checkpoint's legitimacy. Replies go to the
  // requesting *node*: a joining replica is not in any epoch the donor
  // holds yet.
  runtime::StateTransferManager& st = runtime_.state_transfer();
  if (opts_.fabricate_checkpoint && st.chunked()) {
    if (auto fake = fabricate_manifest(m, ctx)) {
      ctx.send(from, make_message(std::move(*fake)));
    }
    return;
  }
  const runtime::CheckpointManager& cp = runtime_.checkpoints();
  if (!cp.has_shippable() || cp.snapshot_cert().seq <= m.have_seq) return;
  if (st.chunked()) {
    // Building the chunk tree hashes the whole envelope — charged only when
    // the cache is cold for this checkpoint, not on every repeated probe
    // (note_checkpoint keeps it warm in steady state).
    bool cold = st.donor_cached_seq() != cp.snapshot_cert().seq;
    auto manifest = st.make_manifest(cp, m, opts_.id);
    if (!manifest) return;
    manifest->checkpoint_proof = checkpoint_proof_for(manifest->cert);
    if (cold) ctx.charge(ctx.costs().hash_us(cp.snapshot().size()));
    ctx.send(from, make_message(std::move(*manifest)));
    return;
  }
  StateTransferReplyMsg reply;
  reply.seq = cp.snapshot_cert().seq;
  reply.cert = cp.snapshot_cert();
  reply.service_snapshot = cp.snapshot();
  reply.checkpoint_proof = checkpoint_proof_for(reply.cert);
  ctx.charge(ctx.costs().hash_us(cp.snapshot().size()));
  ctx.send(from, make_message(std::move(reply)));
}

void PbftReplica::handle_state_transfer_reply(const StateTransferReplyMsg& m,
                                              sim::ActorContext& ctx) {
  if (m.seq <= le()) {
    st_inflight_ = false;
    if (st_span_open_ && !state_transfer_behind()) {
      st_span_open_ = false;
      trace_.end(ctx.now(), obs::Category::kStateTransfer,
                 obs::ev::kStateTransfer, st_session_, le());
    }
    return;
  }
  if (m.cert.seq != m.seq) return;
  // A monolithic reply without a weak checkpoint certificate (f+1 distinct
  // shares) is exactly the single-donor trust the certificate removes.
  if (!verify_checkpoint_proof(m.cert, m.checkpoint_proof, ctx)) return;
  // The runtime verifies the snapshot envelope against the certificate's
  // state root, installs the service + reply cache, and records the
  // checkpoint in the WAL.
  if (!runtime_.adopt_checkpoint(m.cert, as_span(m.service_snapshot), ctx)) return;
  slots_.erase(slots_.begin(), slots_.upper_bound(m.seq));
  runtime_.evidence().gc_through(m.seq);
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.lower_bound(m.seq));
  progress_marker_ = le();
  st_inflight_ = false;
  trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStAdopt,
                 st_session_, m.seq);
  if (st_span_open_) {
    st_span_open_ = false;
    trace_.end(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStateTransfer,
               st_session_, m.seq);
  }
  maybe_refresh_epoch(ctx);
  try_execute(ctx);
}

void PbftReplica::handle_state_manifest(NodeId from, const StateManifestMsg& m,
                                        sim::ActorContext& ctx) {
  runtime::StateTransferManager& st = runtime_.state_transfer();
  if (!st.chunked() || !st.active() || m.seq <= le()) return;
  // The donor field must match the authenticated channel's sender: donor
  // identity drives registration and (on an invalid chunk) exclusion, so a
  // faulty replica must not be able to impersonate honest donors.
  if (from != node_of(m.donor)) return;
  // Weak checkpoint certificate: f+1 distinct signed checkpoint digests
  // (at least one honest voucher) must back the manifest's certificate, so a
  // single faulty donor cannot feed a fabricated-but-root-consistent
  // checkpoint (PBFT has no pi threshold signature; this is its equivalent).
  // An unverifiable manifest is ignored rather than excluding its donor: an
  // honest donor may simply not have gathered f+1 matching signatures *yet*
  // and will re-offer a complete certificate on a later probe.
  if (st.donor_excluded(m.donor)) return;
  if (!verify_checkpoint_proof(m.cert, m.checkpoint_proof, ctx)) return;
  if (st.on_manifest(m, le(), runtime_.checkpoints(), runtime_.stats())) {
    trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStManifest,
                   st_session_, m.seq, 0, "donor", m.donor);
    // A delta manifest may have seeded every chunk from the local base — the
    // fetch can be complete without a single wire chunk.
    if (st.fetch_complete()) {
      complete_chunked_transfer(ctx);
    } else {
      send_chunk_requests(ctx);
    }
  }
}

void PbftReplica::handle_state_chunk_request(NodeId from,
                                             const StateChunkRequestMsg& m,
                                             sim::ActorContext& ctx) {
  // The fabricating donor serves its invented envelope with perfectly valid
  // Merkle proofs — per-chunk verification cannot catch it; only the
  // checkpoint certificate (or the final state-root check) can.
  if (opts_.fabricate_checkpoint && fake_chunks_ &&
      m.chunk_root == fake_chunks_->transfer_root() && m.seq == fake_cert_.seq) {
    size_t limit = std::min<size_t>(
        m.indices.size(), opts_.config.state_transfer_max_chunks_per_request);
    for (size_t i = 0; i < limit; ++i) {
      uint32_t index = m.indices[i];
      if (index >= fake_chunks_->chunk_count()) continue;
      StateChunkMsg c;
      c.donor = opts_.id;
      c.seq = fake_cert_.seq;
      c.chunk_root = fake_chunks_->transfer_root();
      c.index = index;
      c.chunk_count = fake_chunks_->chunk_count();
      c.data = to_bytes(fake_chunks_->chunk(as_span(fake_envelope_), index));
      c.proof = fake_chunks_->proof(index);
      ctx.charge(ctx.costs().hash_us(c.data.size()));
      ctx.send(from, make_message(std::move(c)));
    }
    return;
  }
  std::vector<StateChunkMsg> chunks = runtime_.state_transfer().make_chunks(
      runtime_.checkpoints(), m, opts_.id, runtime_.stats(), from);
  for (StateChunkMsg& c : chunks) {
    ctx.charge(ctx.costs().hash_us(c.data.size()));
    if (opts_.corrupt_state_chunks && !c.data.empty()) c.data[0] ^= 0xff;
    ctx.send(from, make_message(std::move(c)));
  }
  arm_donor_tick(ctx);
}

void PbftReplica::broadcast_state_probe(sim::ActorContext& ctx) {
  runtime::StateTransferManager& st = runtime_.state_transfer();
  const runtime::CheckpointManager& cp = runtime_.checkpoints();
  // The probe advertises this replica's retained checkpoint as the delta
  // base; computing its transfer root chunk-hashes the local snapshot when
  // the donor cache is cold (mirrors the manifest-side cold charge).
  bool cold =
      cp.has_shippable() && st.donor_cached_seq() != cp.snapshot_cert().seq;
  StateTransferRequestMsg probe = st.make_probe(cp, opts_.id, le());
  if (cold && probe.base_seq > 0) {
    ctx.charge(ctx.costs().hash_us(cp.snapshot().size()));
  }
  trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStProbe,
                 st_session_, le());
  broadcast(ctx, make_message(std::move(probe)));
}

void PbftReplica::arm_donor_tick(sim::ActorContext& ctx) {
  if (donor_tick_armed_ || !runtime_.state_transfer().donor_tick_needed()) return;
  donor_tick_armed_ = true;
  ctx.set_timer(opts_.config.state_transfer_donor_tick_us,
                timer_id(kDonorTickTimer, 0));
}

void PbftReplica::handle_state_chunk(NodeId from, const StateChunkMsg& m,
                                     sim::ActorContext& ctx) {
  // Spoofed donor ids could exclude honest donors (see handle_state_manifest).
  if (from != node_of(m.donor)) return;
  runtime::StateTransferManager& st = runtime_.state_transfer();
  ctx.charge(ctx.costs().hash_us(m.data.size()));  // leaf hash + proof path
  using Verdict = runtime::StateTransferManager::ChunkVerdict;
  switch (Verdict verdict = st.on_chunk(m, runtime_.stats()); verdict) {
    case Verdict::kCompleted:
      trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                     obs::ev::kStChunkStored, st_session_, m.seq, 0, "index",
                     m.index);
      complete_chunked_transfer(ctx);
      break;
    case Verdict::kStored:
    case Verdict::kInvalid:
      trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                     verdict == Verdict::kStored ? obs::ev::kStChunkStored
                                                 : obs::ev::kStChunkInvalid,
                     st_session_, m.seq, 0,
                     verdict == Verdict::kStored ? "index" : "donor",
                     verdict == Verdict::kStored ? m.index : m.donor);
      send_chunk_requests(ctx);
      break;
    case Verdict::kDuplicate:
    case Verdict::kRejected:
      break;
  }
}

void PbftReplica::send_chunk_requests(sim::ActorContext& ctx) {
  for (auto& [donor, req] : runtime_.state_transfer().plan_requests(opts_.id)) {
    ctx.send(node_of(donor), make_message(std::move(req)));
  }
}

void PbftReplica::complete_chunked_transfer(sim::ActorContext& ctx) {
  runtime::StateTransferManager& st = runtime_.state_transfer();
  ExecCertificate cert = st.target_cert();
  Bytes envelope = st.take_envelope();
  bool adopted = runtime_.adopt_checkpoint(cert, as_span(envelope), ctx);
  // The stale-target vs lying-manifest distinction lives in the manager,
  // shared with the SBFT engine.
  if (st.on_adopt_result(adopted, le())) broadcast_state_probe(ctx);
  if (!adopted) {
    // Session stays open: the retry tick re-probes or stops it.
    trace_.instant(ctx.now(), obs::Category::kStateTransfer,
                   obs::ev::kStAdoptFailed, st_session_, cert.seq);
    return;
  }
  trace_.instant(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStAdopt,
                 st_session_, cert.seq, 0, "digest",
                 obs::digest_prefix(cert.exec_digest().data()));
  if (st_span_open_) {
    st_span_open_ = false;
    trace_.end(ctx.now(), obs::Category::kStateTransfer, obs::ev::kStateTransfer,
               st_session_, cert.seq);
  }
  slots_.erase(slots_.begin(), slots_.upper_bound(cert.seq));
  runtime_.evidence().gc_through(cert.seq);
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.lower_bound(cert.seq));
  progress_marker_ = le();
  maybe_refresh_epoch(ctx);
  try_execute(ctx);
}

// ---------------------------------------------------------------------------
// View change

void PbftReplica::start_view_change(ViewNum target, sim::ActorContext& ctx) {
  if (target <= view_ || retired_) return;
  if (in_view_change_ && target <= vc_target_) return;
  in_view_change_ = true;
  vc_target_ = target;
  ++vc_attempts_;
  ++stats_.view_changes;
  // One span per view-change session; escalating the target supersedes the
  // open span (see the SBFT engine).
  if (vc_span_ != 0 && vc_span_ != target) {
    trace_.end(ctx.now(), obs::Category::kViewChange, obs::ev::kViewChange,
               vc_span_, 0, vc_span_, "superseded", 1);
    vc_span_ = 0;
  }
  if (vc_span_ == 0) {
    vc_span_ = target;
    trace_.begin(ctx.now(), obs::Category::kViewChange, obs::ev::kViewChange,
                 target, 0, target);
  }

  PbftViewChangeMsg msg;
  msg.sender = opts_.id;
  msg.next_view = target;
  msg.ls = ls();
  runtime_.evidence().for_each_in(
      ls(), ls() + opts_.config.win,
      [&msg](SeqNum s, const runtime::SlotEvidenceRecord& ev) {
        if (!ev.has_prepared || !ev.prepared_block) return;
        PbftPreparedCert cert;
        cert.seq = s;
        cert.view = ev.prepared_view;
        cert.h = ev.prepared_digest;
        cert.block = *ev.prepared_block;
        msg.prepared.push_back(std::move(cert));
      });
  vc_msgs_[target][opts_.id] = msg;
  ctx.charge(ctx.costs().rsa_sign_us);
  broadcast(ctx, make_message(PbftViewChangeMsg(msg)));
  arm_progress_timer(ctx);
}

void PbftReplica::handle_view_change(const PbftViewChangeMsg& m,
                                     sim::ActorContext& ctx) {
  if (m.next_view <= view_ || retired_) return;
  if (!epoch().contains(m.sender)) return;
  ctx.charge(ctx.costs().rsa_verify_us);
  vc_msgs_[m.next_view][m.sender] = m;

  if (vc_msgs_[m.next_view].size() >= cfg_.f + 1 && m.next_view > vc_target_) {
    start_view_change(m.next_view, ctx);
  }
  if (epoch().primary_of(m.next_view) == opts_.id && !new_view_sent_ &&
      vc_msgs_[m.next_view].size() >= cfg_.view_change_quorum()) {
    PbftNewViewMsg nv;
    nv.view = m.next_view;
    for (const auto& [sender, proof] : vc_msgs_[m.next_view]) {
      nv.proofs.push_back(proof);
      if (nv.proofs.size() == cfg_.view_change_quorum()) break;
    }
    new_view_sent_ = true;
    trace_.instant(ctx.now(), obs::Category::kViewChange, obs::ev::kNewViewSent,
                   vc_span_, 0, m.next_view);
    ctx.charge(ctx.costs().rsa_sign_us);
    broadcast(ctx, make_message(PbftNewViewMsg(nv)));
    enter_new_view(nv, ctx);
  }
}

void PbftReplica::handle_new_view(NodeId from, const PbftNewViewMsg& m,
                                  sim::ActorContext& ctx) {
  if (m.view <= view_ || retired_) return;
  if (from != node_of(epoch().primary_of(m.view))) return;
  if (m.proofs.size() < cfg_.view_change_quorum()) return;
  ctx.charge(ctx.costs().rsa_verify_us *
             static_cast<int64_t>(m.proofs.size()));
  enter_new_view(m, ctx);
}

void PbftReplica::enter_new_view(const PbftNewViewMsg& m, sim::ActorContext& ctx) {
  view_ = m.view;
  in_view_change_ = false;
  vc_target_ = m.view;
  vc_attempts_ = 0;
  new_view_sent_ = false;
  if (vc_span_ != 0) {
    trace_.end(ctx.now(), obs::Category::kViewChange, obs::ev::kViewChange,
               vc_span_, 0, m.view, "entered_view", m.view);
    vc_span_ = 0;
  } else {
    // Entered without a local view-change session (caught up via new-view).
    trace_.instant(ctx.now(), obs::Category::kViewChange, obs::ev::kViewEntered,
                   0, 0, m.view);
  }
  vc_msgs_.erase(vc_msgs_.begin(), vc_msgs_.upper_bound(m.view));
  runtime_.wal_record_view(m.view);

  // Re-propose the highest-view prepared certificate per slot; no-op gaps.
  SeqNum max_ls = ls();
  for (const auto& proof : m.proofs) max_ls = std::max(max_ls, proof.ls);
  std::map<SeqNum, const PbftPreparedCert*> adopted;
  SeqNum max_seq = max_ls;
  for (const auto& proof : m.proofs) {
    for (const auto& cert : proof.prepared) {
      if (cert.seq <= max_ls) continue;
      auto [it, inserted] = adopted.emplace(cert.seq, &cert);
      if (!inserted && cert.view > it->second->view) it->second = &cert;
      max_seq = std::max(max_seq, cert.seq);
    }
  }
  for (SeqNum s = max_ls + 1; s <= max_seq; ++s) {
    if (s <= le()) continue;
    auto it = adopted.find(s);
    Block block = it != adopted.end() ? it->second->block : Block{};
    slots_[s] = Slot{};  // reset votes from the old view
    accept_pre_prepare(s, m.view, std::move(block), ctx);
  }
  next_seq_ = std::max(next_seq_, max_seq + 1);
  progress_marker_ = le();
  if (is_primary()) {
    ctx.set_timer(opts_.config.batch_timeout_us, timer_id(kBatchTimer, 0));
    try_propose(ctx);
  }
  arm_progress_timer(ctx);
}

}  // namespace sbft::pbft
