// PBFT client: identical closed-loop behaviour to the SBFT client, but the
// cluster never sends execute-acks so every request completes via f+1
// matching replies (the paper's "previous systems required clients to wait
// for f+1 replies", §V-A).
#pragma once

#include "core/client.h"

namespace sbft::pbft {

using PbftClient = core::SbftClient;
using PbftClientOptions = core::ClientOptions;

}  // namespace sbft::pbft
